package dgr_test

// The benchmark harness: one benchmark per experiment of EXPERIMENTS.md
// (each also self-validates the paper's property it reproduces) plus
// microbenchmarks of the machine's hot paths. `go run ./cmd/dgr-bench`
// prints the full experiment tables; these wrappers make every experiment
// runnable under `go test -bench`.

import (
	"fmt"
	"testing"

	"dgr"
	"dgr/internal/exp"
	"dgr/internal/workload"
)

// runExperiment executes a registered experiment b.N times (Quick mode, so
// bench sweeps stay tractable) and fails the benchmark if the experiment's
// self-validation fails.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(exp.Config{Quick: true, Seed: int64(i)}); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// E1 / Figure 3-1: deadlocked computation x = x+1.
func BenchmarkFig31Deadlock(b *testing.B) { runExperiment(b, "fig31") }

// E2 / Figure 3-2: vital, eager, irrelevant and reserve tasks.
func BenchmarkFig32TaskTypes(b *testing.B) { runExperiment(b, "fig32") }

// E3 / Figure 3-3: reachability-set Venn relationships.
func BenchmarkVennFig33(b *testing.B) { runExperiment(b, "venn") }

// E4 / §4.2: the add-reference/delete-reference race under marking.
func BenchmarkMutatorRace(b *testing.B) { runExperiment(b, "race") }

// E5 / Theorem 1: GAR(t_b) ⊆ GAR' ⊆ GAR(t_c).
func BenchmarkTheorem1(b *testing.B) { runExperiment(b, "thm1") }

// E6 / Theorem 2: DL(t_a) ⊆ DL' ⊆ DL(t_c) with M_T before M_R.
func BenchmarkTheorem2(b *testing.B) { runExperiment(b, "thm2") }

// E7: marking throughput scalability across PEs.
func BenchmarkMarkScalability(b *testing.B) { runExperiment(b, "scale") }

// E8: concurrent marking vs stop-the-world pauses.
func BenchmarkConcurrentVsStopWorld(b *testing.B) { runExperiment(b, "pause") }

// E9: marking vs reference counting (cyclic garbage, messages).
func BenchmarkVsRefcount(b *testing.B) { runExperiment(b, "refcount") }

// E10: irrelevant-task expungement on runaway speculation.
func BenchmarkIrrelevantTasks(b *testing.B) { runExperiment(b, "irrelevant") }

// E11: eager→vital task reprioritization.
func BenchmarkPriorityUpgrade(b *testing.B) { runExperiment(b, "priority") }

// E12 / §6: M_T frequency ablation.
func BenchmarkMTFrequency(b *testing.B) { runExperiment(b, "mtfreq") }

// E13 / §6: per-vertex space overhead of the marking fields.
func BenchmarkSpaceOverhead(b *testing.B) { runExperiment(b, "space") }

// E14: end-to-end corpus profile.
func BenchmarkCorpusPrograms(b *testing.B) { runExperiment(b, "programs") }

// E15: inter-PE fabric batching throughput (batched must beat unbatched).
func BenchmarkFabricBatching(b *testing.B) { runExperiment(b, "fabric") }

// E16: evaluation over a lossy fabric (exactly-once under injected drops).
func BenchmarkFabricLoss(b *testing.B) { runExperiment(b, "fabdrop") }

// BenchmarkReduce measures end-to-end reduction throughput (compile + run
// + concurrent GC) for the corpus programs on a deterministic machine.
func BenchmarkReduce(b *testing.B) {
	for _, name := range []string{"fib", "fac", "sumsquares", "churn"} {
		p := workload.Programs[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var tasks int64
			for i := 0; i < b.N; i++ {
				m := dgr.New(dgr.Options{PEs: 4, Seed: int64(i), Capacity: 1 << 16})
				v, err := m.Eval(p.Src)
				if err != nil {
					b.Fatal(err)
				}
				if v.Int != p.Want {
					b.Fatalf("%s = %v, want %d", name, v, p.Want)
				}
				tasks += m.Stats().TasksExecuted
				m.Close()
			}
			b.ReportMetric(float64(tasks)/float64(b.N), "tasks/op")
		})
	}
}

// BenchmarkReducePEs measures the same program across PE counts in
// parallel mode.
func BenchmarkReducePEs(b *testing.B) {
	p := workload.Programs["fib"]
	for _, pes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pes=%d", pes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := dgr.New(dgr.Options{PEs: pes, Parallel: true, Capacity: 1 << 16})
				v, err := m.Eval(p.Src)
				if err != nil {
					b.Fatal(err)
				}
				if v.Int != p.Want {
					b.Fatalf("fib = %v", v)
				}
				m.Close()
			}
		})
	}
}

// BenchmarkCompile measures the front end alone.
func BenchmarkCompile(b *testing.B) {
	p := workload.Programs["primes"]
	for i := 0; i < b.N; i++ {
		m := dgr.New(dgr.Options{PEs: 1, Capacity: 1 << 14})
		if _, err := m.Compile(p.Src); err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

// BenchmarkGCCycle measures one mark/restructure cycle over a live heap.
func BenchmarkGCCycle(b *testing.B) {
	m := dgr.New(dgr.Options{PEs: 4, Seed: 1, Capacity: 1 << 16})
	defer m.Close()
	// Populate a live heap.
	if _, err := m.Eval(workload.Programs["sumsquares"].Src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := m.RunGC()
		if !rep.Completed {
			b.Fatal("cycle incomplete")
		}
	}
}
