// Package dgr is a distributed graph-reduction runtime with decentralized
// concurrent garbage collection, deadlock detection, and dynamic task
// management — a full implementation of Paul Hudak's "Distributed Task and
// Memory Management" (PODC 1983).
//
// A Machine bundles the computation-graph store, N processing elements,
// the reduction engine, and the mark/restructure collector. Programs in
// the small functional language are compiled to Turner-style combinator
// graphs and reduced demand-driven across the PEs, while the collector's
// M_R and M_T marking processes run concurrently with the mutation,
// reclaiming garbage (including cycles), expunging irrelevant speculative
// tasks, reprioritizing task pools, and reporting deadlocked vertices.
//
//	m := dgr.New(dgr.Options{PEs: 4})
//	defer m.Close()
//	v, err := m.Eval(`let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 20`)
package dgr

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dgr/internal/check"
	"dgr/internal/core"
	"dgr/internal/fabric"
	"dgr/internal/gm"
	"dgr/internal/graph"
	"dgr/internal/lang"
	"dgr/internal/metrics"
	"dgr/internal/obs"
	"dgr/internal/reduce"
	"dgr/internal/sched"
	"dgr/internal/task"
	"dgr/internal/trace"
)

// Re-exported result and identifier types.
type (
	// Value is a weak-head-normal-form result.
	Value = reduce.Value
	// NodeID identifies a vertex in the machine's computation graph.
	NodeID = graph.VertexID
	// Stats is a snapshot of the machine's counters.
	Stats = metrics.Snapshot
	// GCReport summarizes one mark/restructure cycle.
	GCReport = core.CycleReport
)

// Engine names accepted by Options.Engine.
const (
	// EngineInterp is the interpreted Turner-combinator backend.
	EngineInterp = "interp"
	// EngineCompiled is the compiled supercombinator backend.
	EngineCompiled = "compiled"
)

// Errors returned by evaluation.
var (
	// ErrDeadlock: the computation can never complete; the collector
	// identified deadlocked vertices (DL_v = R_v − T).
	ErrDeadlock = errors.New("dgr: computation deadlocked")
	// ErrStuck: evaluation quiesced without a value and without detected
	// deadlock — check RuntimeErrors (e.g. type errors).
	ErrStuck = errors.New("dgr: evaluation stuck")
	// ErrBudget: the step/time budget was exhausted (likely divergence).
	ErrBudget = errors.New("dgr: evaluation budget exhausted")
	// ErrClosed: the machine has been closed.
	ErrClosed = errors.New("dgr: machine closed")
)

// Options configures a Machine. The zero value is usable: one PE,
// deterministic scheduling, no speculation, M_T every 4th cycle.
type Options struct {
	// PEs is the number of processing elements (default 1).
	PEs int
	// Engine selects the reduction backend: "interp" (default) reduces
	// Turner-combinator graphs one rewrite at a time; "compiled"
	// lambda-lifts programs into supercombinators whose bodies execute as
	// compiled instruction sequences (internal/gm), building each result
	// subgraph in one task execution. Both backends share the vertex-level
	// args/req-args discipline, so marking, deadlock detection, and the
	// invariant checker behave identically.
	Engine string
	// Parallel runs one goroutine per PE plus a background collector;
	// otherwise the machine is deterministic (seeded) and driven by Eval.
	Parallel bool
	// Seed drives deterministic scheduling.
	Seed int64
	// SpeculativeIf eagerly evaluates both if branches (§3.2).
	SpeculativeIf bool
	// MTEvery runs deadlock detection every k-th GC cycle (default 4;
	// 0 disables M_T).
	MTEvery int
	// Capacity pre-allocates the free list (default 1<<16 vertices).
	Capacity int
	// GCInterval is how many deterministic steps run between collector
	// cycles during Eval (default 20000).
	GCInterval int
	// MaxSteps bounds one deterministic Eval (default 200 million).
	MaxSteps int
	// Timeout bounds one parallel Eval (default 30s).
	Timeout time.Duration
	// Pace idles the parallel collector between cycles (default 100µs).
	Pace time.Duration
	// Adversarial, in deterministic mode, pops uniformly random tasks
	// instead of respecting priority bands (interleaving stress).
	Adversarial bool
	// DisableSteal turns cross-PE work stealing off. Stealing is on by
	// default in parallel mode (an idle PE takes a batch from the tail of
	// the most-loaded peer's pool) and never applies to deterministic mode.
	DisableSteal bool
	// StealBatch caps how many tasks one steal moves (default 32).
	StealBatch int

	// Fabric routes every cross-partition spawn through a simulated
	// inter-PE network with batching, latency, loss, and at-least-once
	// redelivery instead of pushing directly into the destination pool.
	// The remaining fields tune it (zero values get fabric defaults:
	// BatchSize 16, FlushEvery 100µs, RetryEvery derived).
	Fabric bool
	// BatchSize flushes a link's outbox at this many buffered tasks.
	BatchSize int
	// FlushEvery flushes an outbox when its oldest task is this old.
	FlushEvery time.Duration
	// DropRate injects per-transmission loss (clamped to 0.95); delivery
	// stays exactly-once end to end via ack/retry/dedup.
	DropRate float64
	// LinkLatency delays every transmission; Jitter adds a uniform random
	// extra; ReorderRate holds batches back behind later traffic.
	LinkLatency time.Duration
	Jitter      time.Duration
	ReorderRate float64
	// RetryEvery is the retransmission timeout for unacked batches.
	RetryEvery time.Duration

	// TraceCapacity, when positive, retains the last N machine events
	// (fabric message lifecycle among them) for WriteTraceJSONL.
	TraceCapacity int

	// Obs enables the unified observability layer (internal/obs): span
	// tracing of collector phases, per-PE execution batches, and fabric
	// flights; per-PE time-series with quantile summaries; a flight recorder
	// of recent scheduler/collector/fabric events; and the Prometheus/JSON
	// exposition methods (WriteSpansJSONL, WriteFlightJSONL,
	// WritePrometheus, WriteSnapshotJSON). When off, instrumented hot paths
	// pay a single pointer test and schedules are bit-identical to an
	// uninstrumented build.
	Obs bool
	// ObsSpanCapacity bounds the span ring (default 4096).
	ObsSpanCapacity int
	// ObsFlightCapacity bounds each flight-recorder shard (default 1024).
	ObsFlightCapacity int
	// ObsSeriesCapacity bounds each time-series ring (default 512).
	ObsSeriesCapacity int
	// ObsSampleEvery is the parallel-mode sampling period (default 5ms);
	// deterministic machines sample at collector cycle ends instead.
	ObsSampleEvery time.Duration
	// ObsFlightDir, when non-empty (implies Obs), auto-dumps the flight
	// recorder as JSONL into this directory the first time an Eval returns
	// ErrDeadlock, ErrStuck, or the invariant checker reports a violation,
	// leaving a diagnosable artifact for intermittent failures.
	ObsFlightDir string

	// TraceRate enables causal task-lineage tracing: each Eval is
	// head-sampled at this rate (1.0 = every request), and a sampled
	// request's full causal history — spawn DAG, steals, fabric hops,
	// collector-phase overlap — is recorded as wall-clock spans for
	// assembly and critical-path analysis (WriteTracesJSON,
	// `dgr-trace analyze`). 0 with a nil TraceSink disables tracing; the
	// instrumented hot paths then pay a single pointer test and schedules
	// stay bit-identical. Independent of Obs.
	TraceRate float64
	// TraceSink, when non-nil, shares an externally owned lineage sink
	// instead of building a private one — the serving layer pools machines
	// behind one sink so a request's spans land in one ring regardless of
	// which machine served it. Implies tracing; sampling decisions are
	// then the sink owner's (originate contexts via EvalNodeTraced).
	TraceSink *obs.TraceSink
	// TraceSpanCapacity bounds the private trace sink's span ring
	// (default 1<<16); ignored when TraceSink is supplied.
	TraceSpanCapacity int

	// Check enables the always-on invariant checker: marking invariants
	// (Figure 4-2), inflight conservation, band consistency, and mt-cnt
	// underflow are asserted at sample points throughout the run. Inspect
	// results with CheckErr / CheckViolations.
	Check bool
	// CheckEvery samples every k-th task execution (default 256; only
	// meaningful with Check). Cycle-end and quiescence sample points always
	// run when Check is on.
	CheckEvery int
	// RecordSchedule logs the execution schedule — (pe, task) order plus
	// collector cycle events — for deterministic replay. Retrieve with
	// ScheduleEvents / WriteScheduleJSONL and re-drive with ReplaySchedule.
	RecordSchedule bool
	// FaultSkipMark, when n > 0, silently drops a deterministic 1/n of
	// child mark tasks (test-only): it manufactures a marking-invariant
	// violation for validating the checker and the replay pipeline. The
	// selection hashes (parent, child, epoch), so a replayed schedule
	// reproduces the recorded run's faults exactly.
	FaultSkipMark int64
}

func (o Options) withDefaults() Options {
	if o.PEs < 1 {
		o.PEs = 1
	}
	if o.Engine == "" {
		o.Engine = EngineInterp
	}
	if o.MTEvery == 0 {
		o.MTEvery = 4
	} else if o.MTEvery < 0 {
		o.MTEvery = 0
	}
	if o.Capacity <= 0 {
		o.Capacity = 1 << 16
	}
	if o.GCInterval <= 0 {
		o.GCInterval = 20000
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200_000_000
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Pace <= 0 {
		o.Pace = 100 * time.Microsecond
	}
	if o.Check && o.CheckEvery <= 0 {
		o.CheckEvery = 256
	}
	if o.ObsFlightDir != "" {
		o.Obs = true
	}
	return o
}

// Machine is a distributed graph-reduction machine.
type Machine struct {
	opts      Options
	store     *graph.Store
	mach      *sched.Machine
	marker    *core.Marker
	mut       *core.Mutator
	engine    *reduce.Engine
	prog      *gm.Program
	collector *core.Collector
	counters  *metrics.Counters
	fab       *fabric.Fabric
	tracer    *trace.Tracer
	checker   *check.Checker
	recorder  *check.Recorder
	obs       *obs.Obs
	lineage   *obs.TraceSink
	// flightOnce gates the flight-recorder auto-dump: the first failure
	// (deadlock or invariant violation) writes the artifact; later ones
	// would only overwrite the fresh evidence. flightPath publishes the
	// written artifact's path (it may be written from a PE goroutine via
	// the checker's OnViolation hook, hence the atomic).
	flightOnce sync.Once
	flightPath atomic.Value
	// closed is atomic so a machine pool (internal/serve) can race Close
	// against exposition reads without a data race; the first Close wins.
	closed atomic.Bool
}

// New builds a machine. Parallel machines start their PEs and collector
// immediately; Close must be called to stop them.
func New(opts Options) *Machine {
	opts = opts.withDefaults()
	counters := &metrics.Counters{}
	store := graph.NewStore(graph.Config{
		Partitions: opts.PEs,
		Capacity:   opts.Capacity,
	})
	mode := sched.Deterministic
	if opts.Parallel {
		mode = sched.Parallel
	}
	var tracer *trace.Tracer
	if opts.TraceCapacity > 0 {
		tracer = trace.NewTracer(opts.TraceCapacity)
	}
	// The observability layer's sources close over the machine and collector
	// assigned below (the same late-binding pattern the checker uses): no
	// source is read until a collector cycle runs or the sampler starts,
	// both strictly after New finishes wiring.
	var mach *sched.Machine
	var collector *core.Collector
	var ob *obs.Obs
	if opts.Obs {
		ob = obs.New(obs.Options{
			PEs:            opts.PEs,
			Parallel:       opts.Parallel,
			SpanCapacity:   opts.ObsSpanCapacity,
			FlightCapacity: opts.ObsFlightCapacity,
			SeriesCapacity: opts.ObsSeriesCapacity,
			SampleEvery:    opts.ObsSampleEvery,
			KindNames:      task.KindNameTable(),
			Sources: obs.Sources{
				// BandLens returns [task.NumBands]int; compiling it as an
				// [obs.Bands]int asserts the two constants agree.
				QueueDepths: func(pe int) [obs.Bands]int { return mach.Pool(pe).BandLens() },
				FreeOf:      store.FreeCountOf,
				FreeTotal:   store.FreeCount,
				Heap:        store.Len,
				Inflight:    func() int64 { return mach.Inflight() },
				InTransit:   func() int64 { return mach.InTransit() },
				Cycles:      func() int64 { return collector.Cycles() },
				Deadlocked:  func() int { return len(collector.Deadlocked()) },
			},
		})
	}
	// The lineage sink is shared (serving layer) or private; either way it
	// is threaded through every causal edge: scheduler spawns/execs/steals,
	// fabric hops, collector phases, and the reduction engine's
	// vertex-carried propagation.
	lineage := opts.TraceSink
	if lineage == nil && opts.TraceRate > 0 {
		lineage = obs.NewTraceSink(opts.TraceSpanCapacity, opts.TraceRate)
	}
	var fab *fabric.Fabric
	if opts.Fabric {
		fab = fabric.New(fabric.Config{
			PEs:         opts.PEs,
			Parallel:    opts.Parallel,
			Seed:        opts.Seed,
			BatchSize:   opts.BatchSize,
			FlushEvery:  opts.FlushEvery,
			LinkLatency: opts.LinkLatency,
			Jitter:      opts.Jitter,
			DropRate:    opts.DropRate,
			ReorderRate: opts.ReorderRate,
			RetryEvery:  opts.RetryEvery,
			Counters:    counters,
			Tracer:      tracer,
			Obs:         ob,
			Trace:       lineage,
		})
	}
	// The checker and recorder hook into the scheduler, but both need the
	// machine (and marker) that sched.New builds — so the hooks close over
	// variables assigned below, before any task can execute (deterministic
	// machines run nothing during New; parallel machines Start last).
	var checker *check.Checker
	var recorder *check.Recorder
	schedCfg := sched.Config{
		PEs:         opts.PEs,
		Mode:        mode,
		Seed:        opts.Seed,
		Adversarial: opts.Adversarial,
		Steal:       opts.Parallel && !opts.DisableSteal,
		StealBatch:  opts.StealBatch,
		PartOf:      store.PartitionOf,
		Counters:    counters,
		Fabric:      fab,
		Obs:         ob,
		Trace:       lineage,
	}
	if opts.RecordSchedule {
		recorder = check.NewRecorder()
		schedCfg.OnExecute = recorder.OnExecute
	}
	if opts.Check {
		schedCfg.AfterExecute = func(seq uint64, pe int, t task.Task) {
			checker.AfterExecute(seq, pe, t)
		}
	}
	mach = sched.New(schedCfg)
	marker := core.NewMarker(store, mach, counters)
	if opts.FaultSkipMark > 0 {
		marker.SetFaultSkipMark(opts.FaultSkipMark)
	}
	if opts.Check {
		checker = &check.Checker{
			Store: store, Marker: marker, Mach: mach,
			Counters: counters, Tracer: tracer,
			Every: uint64(opts.CheckEvery), Parallel: opts.Parallel,
		}
	}
	mut := core.NewMutator(store, marker, mach, counters)
	var prog *gm.Program
	if opts.Engine == EngineCompiled {
		prog = gm.NewProgram()
	}
	engine := reduce.New(store, mach, mut, reduce.Config{
		SpeculativeIf: opts.SpeculativeIf,
		Prog:          prog,
		Counters:      counters,
		Tracing:       lineage != nil,
	})
	mach.SetHandler(core.NewDispatcher(marker, engine))
	collCfg := core.CollectorConfig{
		MTEvery: opts.MTEvery,
		Pace:    opts.Pace,
		Obs:     ob,
		Trace:   lineage,
		OnDeadlock: func(ids []graph.VertexID) {
			// Footnote 5: resolve pending is-bottom probes that are
			// themselves deadlocked, and un-record them (they now have a
			// value — deliberate non-monotonicity).
			if resolved := engine.ResolveBottomProbes(ids); len(resolved) > 0 {
				collector.Forget(resolved)
			}
		},
	}
	if recorder != nil {
		collCfg.Recorder = recorder
	}
	if checker != nil {
		collCfg.AfterCycle = checker.AtCycleEnd
		collCfg.AfterPhase = checker.AtPhaseEnd
	}
	collector = core.NewCollector(store, marker, mach, counters, collCfg)
	if checker != nil {
		// Late binding, as above: the checker's confirmed-verdict invariant
		// reads the collector, which needs the machine the checker hooks.
		checker.Coll = collector
	}
	m := &Machine{
		opts: opts, store: store, mach: mach, marker: marker,
		mut: mut, engine: engine, prog: prog, collector: collector,
		counters: counters,
		fab:      fab, tracer: tracer, checker: checker, recorder: recorder,
		obs: ob, lineage: lineage,
	}
	if checker != nil && (ob != nil || lineage != nil) {
		checker.OnViolation = func() {
			// A violation flips the sink to always-sample so every request
			// after the failure carries a full trace.
			m.lineage.Force()
			m.dumpFlight("violation")
		}
	}
	if opts.Parallel {
		mach.Start()
		if ob != nil {
			ob.StartSampler()
		}
	}
	return m
}

// dumpFlight writes the flight recorder into Options.ObsFlightDir (once per
// machine, first failure wins) and returns the artifact path, or "" when
// nothing was written (obs off, no dir configured, or already dumped). The
// dump's final line records the deadlock detector's verdict state —
// confirmed (two-phase) versus still-pending candidates — so a stuck or
// deadlocked run's artifact says how far detection had progressed.
func (m *Machine) dumpFlight(reason string) string {
	if m.obs == nil || m.opts.ObsFlightDir == "" {
		return ""
	}
	path := ""
	m.flightOnce.Do(func() {
		p := filepath.Join(m.opts.ObsFlightDir,
			fmt.Sprintf("dgr-flight-%s-%d.jsonl", reason, time.Now().UnixNano()))
		f, err := os.Create(p)
		if err != nil {
			return
		}
		defer f.Close()
		if m.obs.WriteFlightJSONL(f) == nil {
			verdicts := struct {
				Ev        string   `json:"ev"`
				Reason    string   `json:"reason"`
				Epoch     uint64   `json:"verdict_epoch"`
				Confirmed []NodeID `json:"confirmed,omitempty"`
				Pending   []NodeID `json:"pending,omitempty"`
			}{
				Ev: "verdicts", Reason: reason,
				Epoch:     m.collector.VerdictEpoch(),
				Confirmed: m.collector.Deadlocked(),
				Pending:   m.collector.PendingDeadlocked(),
			}
			_ = json.NewEncoder(f).Encode(verdicts)
			path = p
			m.flightPath.Store(p)
		}
	})
	return path
}

// FlightDumpPath returns the path of the flight-recorder artifact this
// machine auto-dumped on its first deadlock or invariant violation, or ""
// when none was written (no failure, or Options.ObsFlightDir unset).
func (m *Machine) FlightDumpPath() string {
	if p, ok := m.flightPath.Load().(string); ok {
		return p
	}
	return ""
}

// Close stops the PEs and the collector of a parallel machine. It is
// idempotent (and safe to race from multiple goroutines: one closer wins,
// the rest return immediately).
func (m *Machine) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	if m.opts.Parallel {
		m.collector.Stop()
		if m.checker != nil {
			// With the collector stopped and the PEs idle (if the run
			// completed), this is the parallel machine's one stable point
			// for the full quiescence checks; the checker skips, rather
			// than fails, if tasks are still in flight.
			m.checker.AtQuiescence()
		}
		m.mach.Stop() // also flushes and closes the fabric
	} else if m.fab != nil {
		m.fab.Close()
	}
	// After Stop/wg.Wait (parallel) or with nothing executing
	// (deterministic), closing obs may safely flush open batch spans.
	m.obs.Close()
}

// Compile translates a program to a reducible graph and returns its root:
// a Turner-combinator graph under the interpreted engine, a
// supercombinator-calling graph (with bodies registered in the machine's
// gm.Program) under the compiled engine.
func (m *Machine) Compile(src string) (NodeID, error) {
	if m.closed.Load() {
		return 0, ErrClosed
	}
	var v *graph.Vertex
	var err error
	if m.prog != nil {
		v, err = lang.CompileSupers(m.store, m.prog, src)
	} else {
		v, err = lang.CompileString(m.store, src)
	}
	if err != nil {
		return 0, err
	}
	return v.ID, nil
}

// Eval compiles and evaluates a program to WHNF. In parallel mode the
// compile and re-rooting are fenced against the concurrent collection loop:
// a cycle that started from a previous program's root mid-compile would
// otherwise sweep the fresh, not-yet-rooted graph on the next cycle.
func (m *Machine) Eval(src string) (Value, error) {
	if m.opts.Parallel {
		m.collector.Pause()
	}
	root, err := m.Compile(src)
	if err == nil {
		m.collector.SetRoot(root)
	}
	if m.opts.Parallel {
		m.collector.Resume()
	}
	if err != nil {
		return Value{}, err
	}
	return m.EvalNode(root)
}

// EvalNode evaluates an existing graph node to WHNF, running the collector
// alongside the reduction. With lineage tracing on, the evaluation is
// head-sampled at Options.TraceRate and, when chosen, originates its own
// trace.
func (m *Machine) EvalNode(root NodeID) (Value, error) {
	var tr uint64
	if m.lineage.Sample() {
		tr = m.lineage.NewTrace()
	}
	return m.EvalNodeTraced(root, tr, 0)
}

// EvalNodeTraced evaluates root to WHNF under an externally originated
// trace context: the evaluation envelope is recorded as an "eval" span with
// the given parent (the serving layer passes its request span), and every
// task the reduction spawns inherits the trace through the graph. A zero
// trace runs untraced; the sampling decision belongs to the caller.
func (m *Machine) EvalNodeTraced(root NodeID, tr uint64, parent uint32) (Value, error) {
	if m.closed.Load() {
		return Value{}, ErrClosed
	}
	m.collector.SetRoot(root)
	if m.lineage == nil {
		tr = 0
	}
	var span uint32
	var start int64
	if tr != 0 {
		span = m.lineage.NewSpan()
		start = time.Now().UnixNano()
	}
	ch := m.engine.DemandTraced(root, tr, span)
	var v Value
	var err error
	if m.opts.Parallel {
		v, err = m.waitParallel(ch)
	} else {
		v, err = m.pumpDeterministic(root, ch)
	}
	if span != 0 {
		m.lineage.Record(obs.TraceSpan{Trace: tr, Span: span, Parent: parent,
			Name: "eval", Cat: obs.CatEval, PE: obs.TIDEval,
			Start: start, End: time.Now().UnixNano()})
	}
	if err != nil && (errors.Is(err, ErrStuck) || errors.Is(err, ErrDeadlock)) {
		// Failures flip the sink sticky so everything after is traced.
		m.lineage.Force()
	}
	return v, err
}

func (m *Machine) pumpDeterministic(root NodeID, ch <-chan Value) (Value, error) {
	// Eval completion is a safe point: close open execution batches and
	// accrue pending counters so post-eval exposition reads exact totals.
	defer m.obs.FlushBatches()
	steps := 0
	quietCycles := 0
	for steps < m.opts.MaxSteps {
		n := m.mach.RunUntil(func() bool { return len(ch) > 0 }, m.opts.GCInterval)
		steps += n
		select {
		case v := <-ch:
			if errs := m.engine.Errors(); len(errs) > 0 {
				return v, fmt.Errorf("%w: %v", ErrStuck, errs[0])
			}
			return v, nil
		default:
		}
		rep := m.collector.RunCycle()
		// The cycle's marking pump interleaves reduction, so the value may
		// have been delivered mid-cycle; it is authoritative over any stale
		// deadlock record (a deadlocked subterm does not block a completed
		// root).
		select {
		case v := <-ch:
			if errs := m.engine.Errors(); len(errs) > 0 {
				return v, fmt.Errorf("%w: %v", ErrStuck, errs[0])
			}
			return v, nil
		default:
		}
		if m.checker != nil && m.mach.Inflight() == 0 {
			m.checker.AtQuiescence()
		}
		if m.mach.Inflight() == 0 {
			// Quiescent without a value: deadlocked, erroneous, or waiting
			// on tasks the collector just expunged. Give the detector two
			// full M_T passes (candidate + confirmation) before concluding.
			quietCycles++
			// A vertex stuck on a runtime (type) error is semantically ⊥
			// and will be reported deadlocked by M_T/M_R; surface the
			// error itself as the diagnosis.
			if errs := m.engine.Errors(); len(errs) > 0 {
				return Value{}, fmt.Errorf("%w: %v", ErrStuck, errs[0])
			}
			if n, ok := m.collector.TerminalVerdict(); ok {
				m.dumpFlight("deadlock")
				return Value{}, fmt.Errorf("%w: %d vertices", ErrDeadlock, n)
			}
			if quietCycles >= maxQuietCycles(m.opts.MTEvery) {
				m.dumpFlight("stuck")
				return Value{}, ErrStuck
			}
		} else {
			quietCycles = 0
		}
		_ = rep
	}
	return Value{}, ErrBudget
}

// maxQuietCycles ensures at least two M_T phases run while quiescent: the
// first can only nominate a deadlock candidate, the second confirms it
// (two-phase verdict), so concluding ErrStuck any earlier would shadow a
// real deadlock still awaiting confirmation.
func maxQuietCycles(mtEvery int) int {
	if mtEvery <= 0 {
		return 2
	}
	return 2*mtEvery + 1
}

func (m *Machine) waitParallel(ch <-chan Value) (Value, error) {
	m.collector.Start()
	deadline := time.NewTimer(m.opts.Timeout)
	defer deadline.Stop()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	// Quiet-cycle tracking for ErrStuck (see below): the collector cycle at
	// which the reduction counter last changed, and that counter's value.
	quietBase := int64(-1)
	baseRed := int64(0)
	for {
		select {
		case v := <-ch:
			if errs := m.engine.Errors(); len(errs) > 0 {
				return v, fmt.Errorf("%w: %v", ErrStuck, errs[0])
			}
			return v, nil
		case <-ticker.C:
			// Prefer a delivered value: select picks ready cases at random,
			// so without this drain a completed computation could be
			// misreported via a stale deadlock record.
			select {
			case v := <-ch:
				if errs := m.engine.Errors(); len(errs) > 0 {
					return v, fmt.Errorf("%w: %v", ErrStuck, errs[0])
				}
				return v, nil
			default:
			}
			// TerminalVerdict evaluates "confirmed deadlock ∧ inflight == 0"
			// under the collector's verdict lock, so the pair is one reading
			// rather than the old racy two-instant check.
			if n, ok := m.collector.TerminalVerdict(); ok {
				m.dumpFlight("deadlock")
				return Value{}, fmt.Errorf("%w: %d vertices", ErrDeadlock, n)
			}
			if m.mach.Inflight() == 0 {
				if errs := m.engine.Errors(); len(errs) > 0 {
					return Value{}, fmt.Errorf("%w: %v", ErrStuck, errs[0])
				}
				// Quiescent, no value, no errors, no confirmed deadlock.
				// Mirror pumpDeterministic's quiet-cycle logic: if no
				// reduction work has happened for maxQuietCycles collector
				// cycles, the machine is stuck, not merely slow. Collector
				// marking traffic makes Inflight bounce, so progress is
				// measured by the reduction-task counter, and patience is
				// measured in collector cycles so at least two M_T passes
				// (candidate + confirmation) get to run first.
				red := m.counters.ReductionTasks.Load()
				cyc := m.collector.Cycles()
				if quietBase < 0 || red != baseRed {
					quietBase, baseRed = cyc, red
				} else if cyc-quietBase > int64(maxQuietCycles(m.opts.MTEvery)) {
					m.dumpFlight("stuck")
					return Value{}, ErrStuck
				}
			} else {
				quietBase = -1
			}
		case <-deadline.C:
			return Value{}, ErrBudget
		}
	}
}

// EvalTraced compiles and evaluates a program under an externally
// originated trace context (see EvalNodeTraced); the serving layer calls
// it with each sampled request's trace and request span.
func (m *Machine) EvalTraced(src string, tr uint64, parent uint32) (Value, error) {
	if m.opts.Parallel {
		m.collector.Pause()
	}
	root, err := m.Compile(src)
	if err == nil {
		m.collector.SetRoot(root)
	}
	if m.opts.Parallel {
		m.collector.Resume()
	}
	if err != nil {
		return Value{}, err
	}
	return m.EvalNodeTraced(root, tr, parent)
}

// EvalList evaluates a program expected to yield a (finite) list, forcing
// every element.
func (m *Machine) EvalList(src string) ([]Value, error) {
	return m.EvalListTraced(src, 0, 0)
}

// EvalListTraced is EvalList under an externally originated trace context:
// the spine and every element evaluation record sibling "eval" spans under
// the same parent.
func (m *Machine) EvalListTraced(src string, tr uint64, parent uint32) ([]Value, error) {
	root, err := m.Compile(src)
	if err != nil {
		return nil, err
	}
	var out []Value
	cur := root
	for {
		v, err := m.EvalNodeTraced(cur, tr, parent)
		if err != nil {
			return out, err
		}
		switch v.Kind {
		case graph.KindNil:
			return out, nil
		case graph.KindCons:
			h, t, ok := m.engine.ConsParts(v.ID)
			if !ok {
				return out, fmt.Errorf("dgr: malformed cons at v%d", v.ID)
			}
			hv, err := m.EvalNodeTraced(h, tr, parent)
			if err != nil {
				return out, err
			}
			out = append(out, hv)
			cur = t
		default:
			return out, fmt.Errorf("dgr: expected list, got %s", v.Kind)
		}
	}
}

// RunGC runs one explicit mark/restructure cycle (deterministic machines;
// parallel machines collect continuously while evaluating).
func (m *Machine) RunGC() GCReport {
	return m.collector.RunCycle()
}

// Pump executes up to max tasks on a deterministic machine without running
// the collector, returning the number executed. It is a low-level hook for
// harnesses that orchestrate GC themselves.
func (m *Machine) Pump(max int) int {
	return m.mach.RunUntil(func() bool { return false }, max)
}

// Quiescent reports whether no tasks are queued or executing.
func (m *Machine) Quiescent() bool { return m.mach.Inflight() == 0 }

// InflightTasks reports the number of queued-plus-executing tasks (the
// live gauge the serving layer's pooled exposition aggregates).
func (m *Machine) InflightTasks() int64 { return m.mach.Inflight() }

// DemandNode spawns the initial <-,root> task and returns the channel that
// will receive the WHNF value — without driving the machine (harness hook;
// normal callers use EvalNode).
func (m *Machine) DemandNode(root NodeID) <-chan Value {
	m.collector.SetRoot(root)
	return m.engine.Demand(root)
}

// Stats snapshots the machine's counters.
func (m *Machine) Stats() Stats { return m.counters.Snapshot() }

// FabricStats returns per-link fabric traffic summaries, ordered by
// (from, to) PE pair. It is nil when Options.Fabric is off.
func (m *Machine) FabricStats() []fabric.LinkStat {
	if m.fab == nil {
		return nil
	}
	return m.fab.LinkStats()
}

// WriteTraceJSONL writes the retained machine events (message lifecycle
// included) as JSON Lines. It errors unless Options.TraceCapacity was set.
func (m *Machine) WriteTraceJSONL(w io.Writer) error {
	if m.tracer == nil {
		return errors.New("dgr: tracing disabled (set Options.TraceCapacity)")
	}
	return m.tracer.WriteJSONL(w)
}

// TraceSink returns the machine's lineage sink (shared or private), or nil
// when lineage tracing is off.
func (m *Machine) TraceSink() *obs.TraceSink { return m.lineage }

// WriteTracesJSON writes the retained lineage traces — each assembled back
// into its spawn DAG with critical-path analysis and per-category blame —
// as an obs.TraceDoc. It errors unless lineage tracing is enabled (set
// Options.TraceRate or Options.TraceSink).
func (m *Machine) WriteTracesJSON(w io.Writer) error {
	if m.lineage == nil {
		return errors.New("dgr: lineage tracing disabled (set Options.TraceRate or Options.TraceSink)")
	}
	return obs.WriteTracesJSON(w, m.lineage)
}

var errObsDisabled = errors.New("dgr: observability disabled (set Options.Obs)")

// WriteSpansJSONL writes the retained observation spans (collector phases,
// per-PE execution batches, fabric flights) as chrome://tracing-compatible
// JSON Lines. It errors unless Options.Obs is on.
func (m *Machine) WriteSpansJSONL(w io.Writer) error {
	if m.obs == nil {
		return errObsDisabled
	}
	return m.obs.WriteSpansJSONL(w)
}

// WriteFlightJSONL writes the flight recorder's retained events (recent
// executions and collector/fabric activity, timestamp-merged) as JSON
// Lines. It errors unless Options.Obs is on.
func (m *Machine) WriteFlightJSONL(w io.Writer) error {
	if m.obs == nil {
		return errObsDisabled
	}
	return m.obs.WriteFlightJSONL(w)
}

// ObsSeries returns a snapshot of the sampled per-PE and machine-wide
// time-series with quantile summaries, or nil unless Options.Obs is on.
func (m *Machine) ObsSeries() *obs.SeriesSnap { return m.obs.Series() }

// ObsSampleNow takes one time-series sample immediately (deterministic
// machines otherwise sample only at collector cycle ends). No-op when
// Options.Obs is off.
func (m *Machine) ObsSampleNow() { m.obs.SampleNow() }

// promData assembles the live gauge set for the Prometheus exposition.
func (m *Machine) promData() obs.PromData {
	d := obs.PromData{
		Stats:      m.counters.Snapshot(),
		PEs:        m.opts.PEs,
		Heap:       m.store.Len(),
		Free:       m.store.FreeCount(),
		Inflight:   m.mach.Inflight(),
		InTransit:  m.mach.InTransit(),
		Deadlocked: len(m.collector.Deadlocked()),

		FreePerPart: make([]int, m.opts.PEs),
		PoolBands:   make([][obs.Bands]int, m.opts.PEs),
		ExecsPerPE:  make([]int64, m.opts.PEs),
		Utils:       make([]float64, m.opts.PEs),
	}
	snap := m.obs.Series()
	execs := m.mach.ExecutionsByPE()
	for pe := 0; pe < m.opts.PEs; pe++ {
		d.FreePerPart[pe] = m.store.FreeCountOf(pe)
		d.PoolBands[pe] = m.mach.Pool(pe).BandLens()
		// The scheduler's own per-PE counters, not the obs batches: they
		// count every execution (including those before obs batching
		// flushed), which is the balance view stealing is judged by.
		d.ExecsPerPE[pe] = int64(execs[pe])
		if snap != nil && len(snap.PE[pe]) > 0 {
			d.Utils[pe] = snap.PE[pe][len(snap.PE[pe])-1].Util
		}
	}
	return d
}

// WritePrometheus renders the machine's counters and live gauges in the
// Prometheus text exposition format. It errors unless Options.Obs is on.
func (m *Machine) WritePrometheus(w io.Writer) error {
	if m.obs == nil {
		return errObsDisabled
	}
	return obs.WritePrometheus(w, m.promData())
}

// WriteSnapshotJSON writes a one-shot JSON digest of the machine: counters,
// graph occupancy, per-PE pool depths and execution counts, the sampled
// time-series, and any recorded invariant violations. It errors unless
// Options.Obs is on.
func (m *Machine) WriteSnapshotJSON(w io.Writer) error {
	if m.obs == nil {
		return errObsDisabled
	}
	d := m.promData()
	dead := m.collector.Deadlocked()
	out := struct {
		Now         int64             `json:"now_ns"`
		PEs         int               `json:"pes"`
		Parallel    bool              `json:"parallel"`
		Heap        int               `json:"heap"`
		Free        int               `json:"free"`
		FreePerPart []int             `json:"free_per_part"`
		Inflight    int64             `json:"inflight"`
		InTransit   int64             `json:"in_transit"`
		Cycles      int64             `json:"cycles"`
		Executions  uint64            `json:"executions"`
		Deadlocked  []NodeID          `json:"deadlocked,omitempty"`
		Steals      int64             `json:"steals"`
		StolenTasks int64             `json:"stolen_tasks"`
		IdlePolls   int64             `json:"idle_polls"`
		Pools       [][obs.Bands]int  `json:"pools"`
		ExecsPerPE  []int64           `json:"execs_per_pe"`
		Utils       []float64         `json:"utils"`
		Stats       metrics.Snapshot  `json:"stats"`
		Series      *obs.SeriesSnap   `json:"series"`
		Violations  []string          `json:"violations,omitempty"`
		FlightLast  []obs.FlightEvent `json:"flight_last,omitempty"`
	}{
		Now: m.obs.Now(), PEs: d.PEs, Parallel: m.opts.Parallel,
		Heap: d.Heap, Free: d.Free, FreePerPart: d.FreePerPart,
		Inflight: d.Inflight, InTransit: d.InTransit,
		Cycles: m.collector.Cycles(), Executions: m.mach.Executions(),
		Deadlocked: dead,
		Steals:     d.Stats.Steals, StolenTasks: d.Stats.StolenTasks,
		IdlePolls: d.Stats.IdlePolls,
		Pools:     d.PoolBands, ExecsPerPE: d.ExecsPerPE,
		Utils: d.Utils, Stats: d.Stats, Series: m.obs.Series(),
		Violations: m.CheckViolations(),
	}
	if evs := m.obs.FlightEvents(); len(evs) > 16 {
		out.FlightLast = evs[len(evs)-16:]
	} else {
		out.FlightLast = evs
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteGraphDOT renders the current computation graph as Graphviz DOT, with
// the collector's root double-circled and deadlocked vertices highlighted.
// Take it while the machine is quiescent for a consistent picture.
func (m *Machine) WriteGraphDOT(w io.Writer) error {
	hl := make(map[graph.VertexID]string)
	for _, id := range m.collector.Deadlocked() {
		hl[id] = "red"
	}
	return trace.WriteDOT(w, m.store.Snapshot(), m.collector.Root(), trace.DOTOptions{
		Highlight: hl,
	})
}

// Root returns the collector's current computation root (the last node
// passed to EvalNode / DemandNode).
func (m *Machine) Root() NodeID { return m.collector.Root() }

// CheckViolations returns the invariant violations recorded so far. It is
// empty unless Options.Check is on (and, one hopes, even then).
func (m *Machine) CheckViolations() []string {
	if m.checker == nil {
		return nil
	}
	return m.checker.Violations()
}

// CheckErr summarizes recorded invariant violations as a single error, nil
// when the run is clean or checking is off.
func (m *Machine) CheckErr() error {
	if m.checker == nil {
		return nil
	}
	return m.checker.Err()
}

// ScheduleEvents returns the recorded schedule. It errors unless
// Options.RecordSchedule was set.
func (m *Machine) ScheduleEvents() ([]check.Event, error) {
	if m.recorder == nil {
		return nil, errors.New("dgr: schedule recording disabled (set Options.RecordSchedule)")
	}
	return m.recorder.Events(), nil
}

// WriteScheduleJSONL writes the recorded schedule as JSON Lines. It errors
// unless Options.RecordSchedule was set.
func (m *Machine) WriteScheduleJSONL(w io.Writer) error {
	if m.recorder == nil {
		return errors.New("dgr: schedule recording disabled (set Options.RecordSchedule)")
	}
	return m.recorder.WriteJSONL(w)
}

// ReplaySchedule re-drives this machine from a recorded schedule instead of
// the scheduler's own policy: the root demand is spawned, then tasks
// execute in exactly the logged order, with collector cycles at their
// logged positions. The machine must be deterministic, without a fabric,
// freshly built with the same program, seed, and PE count as the recorded
// run. It returns the first divergence as an error; a clean replay of a
// violating run reproduces the violation (see CheckErr) at the same step.
func (m *Machine) ReplaySchedule(root NodeID, events []check.Event) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if m.opts.Parallel {
		return errors.New("dgr: ReplaySchedule requires a deterministic machine")
	}
	if m.fab != nil {
		return errors.New("dgr: ReplaySchedule requires a machine without a fabric (the log order subsumes delivery)")
	}
	m.collector.SetRoot(root)
	m.engine.Demand(root)
	rp := &check.Replayer{Mach: m.mach, Coll: m.collector}
	return rp.Run(events)
}

// Deadlocked returns every vertex the collector has identified as
// deadlocked so far.
func (m *Machine) Deadlocked() []NodeID { return m.collector.Deadlocked() }

// RuntimeErrors returns runtime (type) errors raised by the reduction
// engine.
func (m *Machine) RuntimeErrors() []error { return m.engine.Errors() }

// ExecsPerPE reports how many tasks each PE has executed so far — the
// execution-balance view work stealing is judged by (a heavily skewed
// distribution with stealing on means the thieves never got traction).
func (m *Machine) ExecsPerPE() []uint64 { return m.mach.ExecutionsByPE() }

// FreeVertices reports |F|, the current size of the free list.
func (m *Machine) FreeVertices() int { return m.store.FreeCount() }

// TotalVertices reports |V|.
func (m *Machine) TotalVertices() int { return m.store.Len() }

// Snapshot returns an immutable copy of the current computation graph (for
// analysis and DOT export). Take it while the machine is quiescent for a
// consistent picture.
func (m *Machine) Snapshot() *graph.Snapshot { return m.store.Snapshot() }
