package dgr

import (
	"errors"
	"testing"

	"dgr/internal/graph"
	"dgr/internal/workload"
)

func TestEvalSimple(t *testing.T) {
	m := New(Options{PEs: 2, Seed: 1})
	defer m.Close()
	v, err := m.Eval("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != graph.KindInt || v.Int != 7 {
		t.Fatalf("value = %v, want 7", v)
	}
}

func TestEvalCorpus(t *testing.T) {
	for name, p := range workload.Programs {
		t.Run(name, func(t *testing.T) {
			m := New(Options{PEs: 4, Seed: 2})
			defer m.Close()
			v, err := m.Eval(p.Src)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int != p.Want {
				t.Fatalf("%s = %v, want %d", name, v, p.Want)
			}
		})
	}
}

func TestEvalCorpusSpeculative(t *testing.T) {
	for name, p := range workload.Programs {
		if name == "primes" || name == "churn" {
			continue // speculative infinite-list programs need many GC rounds; covered in benches
		}
		t.Run(name, func(t *testing.T) {
			m := New(Options{PEs: 4, Seed: 3, SpeculativeIf: true, GCInterval: 3000})
			defer m.Close()
			v, err := m.Eval(p.Src)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int != p.Want {
				t.Fatalf("%s = %v, want %d", name, v, p.Want)
			}
		})
	}
}

func TestEvalParallel(t *testing.T) {
	m := New(Options{PEs: 4, Parallel: true})
	defer m.Close()
	v, err := m.Eval("let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 15")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 610 {
		t.Fatalf("fib 15 = %v", v)
	}
	if m.Stats().TasksExecuted == 0 {
		t.Fatal("no tasks recorded")
	}
}

func TestEvalDeadlock(t *testing.T) {
	m := New(Options{PEs: 2, Seed: 4, MTEvery: 1})
	defer m.Close()
	_, err := m.Eval("let x = x + 1 in x")
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if len(m.Deadlocked()) == 0 {
		t.Fatal("no deadlocked vertices reported")
	}
}

func TestEvalDeadlockDetectionDisabled(t *testing.T) {
	// With M_T disabled the machine still notices it is stuck, just
	// without the deadlock diagnosis.
	m := New(Options{PEs: 1, Seed: 5, MTEvery: -1})
	defer m.Close()
	_, err := m.Eval("let x = x + 1 in x")
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
}

func TestEvalTypeError(t *testing.T) {
	m := New(Options{PEs: 1, Seed: 6})
	defer m.Close()
	_, err := m.Eval("1 + true")
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
	if len(m.RuntimeErrors()) == 0 {
		t.Fatal("runtime error not surfaced")
	}
}

func TestEvalParseError(t *testing.T) {
	m := New(Options{PEs: 1})
	defer m.Close()
	if _, err := m.Eval("1 +"); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

func TestEvalBudget(t *testing.T) {
	m := New(Options{PEs: 1, Seed: 7, MaxSteps: 5000, GCInterval: 1000})
	defer m.Close()
	_, err := m.Eval("let loop n = loop (n + 1) in loop 0")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestEvalList(t *testing.T) {
	m := New(Options{PEs: 2, Seed: 8})
	defer m.Close()
	vals, err := m.EvalList(`let map f xs = if isnil xs then [] else f (head xs) : map f (tail xs)
	                         in map (\x. x * 10) [1, 2, 3]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0].Int != 10 || vals[1].Int != 20 || vals[2].Int != 30 {
		t.Fatalf("list = %v", vals)
	}
}

func TestGCReclaimsDuringEval(t *testing.T) {
	m := New(Options{PEs: 2, Seed: 9, GCInterval: 2000, Capacity: 8192})
	defer m.Close()
	v, err := m.Eval(workload.Programs["churn"].Src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != workload.Programs["churn"].Want {
		t.Fatalf("churn = %v", v)
	}
	s := m.Stats()
	if s.Reclaimed == 0 {
		t.Fatal("churn workload should have produced reclaimable garbage")
	}
	if s.Cycles == 0 {
		t.Fatal("no GC cycles ran")
	}
}

func TestCloseIdempotent(t *testing.T) {
	m := New(Options{PEs: 2, Parallel: true})
	m.Close()
	m.Close()
	if _, err := m.Eval("1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestStatsAndIntrospection(t *testing.T) {
	m := New(Options{PEs: 2, Seed: 10, Capacity: 256})
	defer m.Close()
	total := m.TotalVertices()
	free := m.FreeVertices()
	if total != 256 || free != 256 {
		t.Fatalf("total=%d free=%d", total, free)
	}
	if _, err := m.Eval("2 + 2"); err != nil {
		t.Fatal(err)
	}
	if m.FreeVertices() >= free {
		t.Fatal("allocation did not consume free vertices")
	}
	snap := m.Snapshot()
	if snap.Len() != m.TotalVertices() {
		t.Fatal("snapshot size mismatch")
	}
	rep := m.RunGC()
	if !rep.Completed {
		t.Fatal("explicit GC cycle failed")
	}
}

func TestDeterministicReproducibility(t *testing.T) {
	run := func() Stats {
		m := New(Options{PEs: 3, Seed: 42})
		defer m.Close()
		if _, err := m.Eval(workload.Programs["fib"].Src); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	a, bS := run(), run()
	if a.TasksExecuted != bS.TasksExecuted || a.Rewrites != bS.Rewrites {
		t.Fatalf("deterministic runs diverged: %+v vs %+v", a, bS)
	}
}

func TestIsBottomRecovery(t *testing.T) {
	// Footnote 5: is-bottom allows recovery from a deadlocked
	// subcomputation. x = x+1 deadlocks; the probe resolves true once the
	// detector finds it, and the overall program completes.
	m := New(Options{PEs: 2, Seed: 11, MTEvery: 1})
	defer m.Close()
	v, err := m.Eval(`let x = x + 1 in if isbottom x then 0 - 1 else x`)
	if err != nil {
		t.Fatalf("recovery failed: %v (deadlocked: %v)", err, m.Deadlocked())
	}
	if v.Int != -1 {
		t.Fatalf("recovered value = %v, want -1", v)
	}
	// The probe was forgotten, but the knot itself may remain recorded;
	// either way the machine keeps working.
	v2, err := m.Eval("21 * 2")
	if err != nil || v2.Int != 42 {
		t.Fatalf("machine unhealthy after recovery: %v %v", v2, err)
	}
}

func TestIsBottomFalseOnValue(t *testing.T) {
	m := New(Options{PEs: 2, Seed: 12, MTEvery: 1})
	defer m.Close()
	v, err := m.Eval("if isbottom (2 + 3) then 1 else 2")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 2 {
		t.Fatalf("isbottom of a value = %v, want branch 2", v)
	}
}
