// Package refcount implements the distributed reference-counting collector
// that §4 names as the prevailing alternative for distributed garbage
// collection — and whose deficiencies motivate the paper's marking
// algorithm: it cannot reclaim self-referencing structures, and it cannot
// perform the tracing necessary to identify task types or deadlock.
//
// Counts are maintained by increment/decrement messages processed from a
// queue, modelling the message traffic a real distributed RC scheme pays on
// every pointer mutation. Cross-partition messages are counted separately.
package refcount

import (
	"dgr/internal/graph"
	"dgr/internal/metrics"
)

// message is one reference-count adjustment in flight.
type message struct {
	from  graph.VertexID // holder of the reference (for message locality)
	to    graph.VertexID
	delta int64
}

// Collector is a reference-counting collector over a Store. It is not safe
// for concurrent use; the benchmarks drive it from the mutator thread, as a
// real RC scheme's write barrier would.
type Collector struct {
	store    *graph.Store
	counters *metrics.Counters

	counts map[graph.VertexID]int64
	queue  []message

	// rooted vertices are never reclaimed (the computation root and
	// registered external handles).
	rooted map[graph.VertexID]bool

	msgs       int64
	remoteMsgs int64
	freed      int64
}

// New builds a collector. counters may be nil.
func New(store *graph.Store, counters *metrics.Counters) *Collector {
	return &Collector{
		store:    store,
		counters: counters,
		counts:   make(map[graph.VertexID]int64),
		rooted:   make(map[graph.VertexID]bool),
	}
}

// Root registers a vertex as externally held (count +1, never collected
// while rooted).
func (c *Collector) Root(id graph.VertexID) {
	c.rooted[id] = true
	c.counts[id]++
}

// Unroot drops the external reference, enqueueing a decrement.
func (c *Collector) Unroot(id graph.VertexID) {
	if !c.rooted[id] {
		return
	}
	delete(c.rooted, id)
	c.queue = append(c.queue, message{from: graph.NilVertex, to: id, delta: -1})
}

// InitFromGraph (re)derives all counts from the current edges. Call once
// after graph construction.
func (c *Collector) InitFromGraph() {
	c.store.ForEach(func(v *graph.Vertex) {
		v.Lock()
		defer v.Unlock()
		if v.Kind == graph.KindFree {
			return
		}
		for _, a := range v.Args {
			c.counts[a]++
		}
	})
}

// AddRef records a new reference from → to (write barrier on edge
// creation): one RC message.
func (c *Collector) AddRef(from, to graph.VertexID) {
	c.queue = append(c.queue, message{from: from, to: to, delta: 1})
}

// DropRef records a removed reference from → to: one RC message.
func (c *Collector) DropRef(from, to graph.VertexID) {
	c.queue = append(c.queue, message{from: from, to: to, delta: -1})
}

// Process drains the message queue, reclaiming vertices whose count
// reaches zero (recursively enqueueing decrements for their children). It
// returns the number of vertices reclaimed by this drain.
func (c *Collector) Process() int {
	freedNow := 0
	for len(c.queue) > 0 {
		m := c.queue[0]
		c.queue = c.queue[1:]
		c.msgs++
		if m.from != graph.NilVertex &&
			c.store.PartitionOf(m.from) != c.store.PartitionOf(m.to) {
			c.remoteMsgs++
		}
		c.counts[m.to] += m.delta
		if c.counts[m.to] > 0 || c.rooted[m.to] {
			continue
		}
		v := c.store.Vertex(m.to)
		if v == nil {
			continue
		}
		v.Lock()
		if v.Kind == graph.KindFree {
			v.Unlock()
			continue
		}
		children := append([]graph.VertexID(nil), v.Args...)
		v.Unlock()
		for _, ch := range children {
			c.queue = append(c.queue, message{from: m.to, to: ch, delta: -1})
		}
		c.store.Release(v)
		delete(c.counts, m.to)
		freedNow++
		c.freed++
	}
	if c.counters != nil {
		c.counters.Reclaimed.Add(int64(freedNow))
	}
	return freedNow
}

// Stats reports cumulative message and reclamation counts.
func (c *Collector) Stats() (msgs, remote, freed int64) {
	return c.msgs, c.remoteMsgs, c.freed
}

// Count returns the current reference count of id.
func (c *Collector) Count(id graph.VertexID) int64 { return c.counts[id] }
