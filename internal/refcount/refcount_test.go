package refcount

import (
	"testing"

	"dgr/internal/graph"
	"dgr/internal/metrics"
)

func build(t *testing.T, n int) (*graph.Store, []*graph.Vertex) {
	t.Helper()
	s := graph.NewStore(graph.Config{Partitions: 2, Capacity: n})
	vs := make([]*graph.Vertex, n)
	for i := range vs {
		v, err := s.Alloc(i%2, graph.KindApply, 0)
		if err != nil {
			t.Fatal(err)
		}
		vs[i] = v
	}
	return s, vs
}

func edge(a, b *graph.Vertex) {
	a.Lock()
	a.AddArg(b.ID, graph.ReqNone)
	a.Unlock()
}

func TestRefcountReclaimsAcyclicGarbage(t *testing.T) {
	s, vs := build(t, 4)
	root, a, b, c := vs[0], vs[1], vs[2], vs[3]
	edge(root, a)
	edge(a, b)
	edge(a, c)

	col := New(s, &metrics.Counters{})
	col.Root(root.ID)
	col.InitFromGraph()

	// Drop root→a: a, b, c all become garbage; RC reclaims the chain.
	root.Lock()
	root.RemoveArg(a.ID)
	root.Unlock()
	col.DropRef(root.ID, a.ID)
	freed := col.Process()
	if freed != 3 {
		t.Fatalf("freed = %d, want 3", freed)
	}
	if !s.IsFree(a.ID) || !s.IsFree(b.ID) || !s.IsFree(c.ID) {
		t.Fatal("chain not reclaimed")
	}
	if s.IsFree(root.ID) {
		t.Fatal("rooted vertex reclaimed")
	}
}

func TestRefcountCannotReclaimCycles(t *testing.T) {
	// The deficiency §4 cites: a detached cycle keeps nonzero counts
	// forever.
	s, vs := build(t, 4)
	root, c1, c2, c3 := vs[0], vs[1], vs[2], vs[3]
	edge(root, c1)
	edge(c1, c2)
	edge(c2, c3)
	edge(c3, c1) // cycle c1→c2→c3→c1

	col := New(s, nil)
	col.Root(root.ID)
	col.InitFromGraph()

	root.Lock()
	root.RemoveArg(c1.ID)
	root.Unlock()
	col.DropRef(root.ID, c1.ID)
	freed := col.Process()
	if freed != 0 {
		t.Fatalf("freed = %d, want 0 (cycles are unreclaimable by RC)", freed)
	}
	if s.IsFree(c1.ID) || s.IsFree(c2.ID) || s.IsFree(c3.ID) {
		t.Fatal("cycle members incorrectly reclaimed")
	}
	// The internal cycle edges keep the counts at exactly 1.
	if col.Count(c1.ID) != 1 || col.Count(c2.ID) != 1 || col.Count(c3.ID) != 1 {
		t.Fatalf("cycle counts = %d %d %d, want 1 1 1",
			col.Count(c1.ID), col.Count(c2.ID), col.Count(c3.ID))
	}
}

func TestRefcountMessageCounting(t *testing.T) {
	s, vs := build(t, 3)
	root, a, b := vs[0], vs[1], vs[2]
	edge(root, a)
	edge(a, b)
	col := New(s, nil)
	col.Root(root.ID)
	col.InitFromGraph()

	// Vertices alternate partitions (Alloc i%2): root and b share one,
	// a the other.
	root.Lock()
	root.RemoveArg(a.ID)
	root.Unlock()
	col.DropRef(root.ID, a.ID)
	col.Process()
	msgs, remote, freed := col.Stats()
	if msgs != 2 || freed != 2 {
		t.Fatalf("msgs=%d freed=%d, want 2/2", msgs, freed)
	}
	if remote != 2 {
		// root(p0)→a(p1) and a(p1)→b(p0) both cross partitions.
		t.Fatalf("remote=%d, want 2", remote)
	}
}

func TestRefcountAddRef(t *testing.T) {
	s, vs := build(t, 3)
	root, a, b := vs[0], vs[1], vs[2]
	edge(root, a)
	col := New(s, nil)
	col.Root(root.ID)
	col.InitFromGraph()

	// New edge a→b then drop root→a: b survives until a's children decs
	// arrive; everything acyclic is reclaimed.
	edge(a, b)
	col.AddRef(a.ID, b.ID)
	root.Lock()
	root.RemoveArg(a.ID)
	root.Unlock()
	col.DropRef(root.ID, a.ID)
	if freed := col.Process(); freed != 2 {
		t.Fatalf("freed = %d, want 2", freed)
	}
}

func TestUnroot(t *testing.T) {
	s, vs := build(t, 2)
	root, a := vs[0], vs[1]
	edge(root, a)
	col := New(s, nil)
	col.Root(root.ID)
	col.InitFromGraph()
	col.Unroot(root.ID)
	if freed := col.Process(); freed != 2 {
		t.Fatalf("freed = %d, want 2", freed)
	}
	col.Unroot(root.ID) // idempotent
	col.Process()
}
