// Package stopworld implements the conventional stop-the-world baseline:
// halt every processing element, mark sequentially from the root with a
// centralized stack, sweep, and resume. It is the collector the paper's
// decentralized concurrent algorithm is designed to supersede ("this would
// require that the computation be halted while marking takes place...
// most marking algorithms are sequential and use a centralized control",
// §4), and provides the pause-time baseline for experiment E8.
package stopworld

import (
	"time"

	"dgr/internal/graph"
	"dgr/internal/metrics"
)

// Result summarizes one stop-the-world collection.
type Result struct {
	// Marked is the number of live vertices traced.
	Marked int
	// Reclaimed is the number of garbage vertices returned to F.
	Reclaimed int
	// Pause is how long the world was stopped.
	Pause time.Duration
}

// Collect performs one stop-the-world collection: the caller must
// guarantee the mutator is halted for the duration (in deterministic
// harnesses, simply do not step the machine; in parallel harnesses, stop
// the PEs first). counters may be nil.
func Collect(store *graph.Store, counters *metrics.Counters, roots ...graph.VertexID) Result {
	start := time.Now()

	// Mark: sequential, centralized stack.
	live := make(map[graph.VertexID]bool)
	stack := append([]graph.VertexID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == graph.NilVertex || live[id] {
			continue
		}
		v := store.Vertex(id)
		if v == nil {
			continue
		}
		live[id] = true
		v.Lock()
		stack = append(stack, v.Args...)
		v.Unlock()
	}

	// Sweep.
	var garbage []*graph.Vertex
	store.ForEach(func(v *graph.Vertex) {
		v.Lock()
		free := v.Kind == graph.KindFree
		v.Unlock()
		if !free && !live[v.ID] {
			garbage = append(garbage, v)
		}
	})
	store.ReleaseBatch(garbage)

	res := Result{
		Marked:    len(live),
		Reclaimed: len(garbage),
		Pause:     time.Since(start),
	}
	if counters != nil {
		counters.Reclaimed.Add(int64(res.Reclaimed))
		counters.ObservePause(res.Pause.Nanoseconds())
	}
	return res
}
