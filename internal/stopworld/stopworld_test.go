package stopworld

import (
	"testing"

	"dgr/internal/graph"
	"dgr/internal/metrics"
)

func TestCollect(t *testing.T) {
	s := graph.NewStore(graph.Config{Partitions: 2, Capacity: 8})
	alloc := func() *graph.Vertex {
		v, err := s.Alloc(0, graph.KindApply, 0)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	edge := func(a, b *graph.Vertex) {
		a.Lock()
		a.AddArg(b.ID, graph.ReqNone)
		a.Unlock()
	}
	root := alloc()
	live := alloc()
	g1 := alloc()
	g2 := alloc()
	cyc := alloc()
	edge(root, live)
	edge(g1, g2)
	edge(cyc, cyc) // cyclic garbage: stop-the-world marking reclaims it too

	var c metrics.Counters
	res := Collect(s, &c, root.ID)
	if res.Marked != 2 {
		t.Fatalf("marked = %d, want 2", res.Marked)
	}
	if res.Reclaimed != 3 {
		t.Fatalf("reclaimed = %d, want 3", res.Reclaimed)
	}
	if !s.IsFree(g1.ID) || !s.IsFree(g2.ID) || !s.IsFree(cyc.ID) {
		t.Fatal("garbage not reclaimed")
	}
	if s.IsFree(root.ID) || s.IsFree(live.ID) {
		t.Fatal("live vertices reclaimed")
	}
	if res.Pause <= 0 {
		t.Fatal("pause not measured")
	}
	if c.MaxPauseNs.Load() <= 0 {
		t.Fatal("pause not recorded in counters")
	}
}

func TestCollectMultipleRoots(t *testing.T) {
	s := graph.NewStore(graph.Config{Partitions: 1, Capacity: 3})
	a, _ := s.Alloc(0, graph.KindApply, 0)
	b, _ := s.Alloc(0, graph.KindApply, 0)
	c, _ := s.Alloc(0, graph.KindApply, 0)
	_ = c
	res := Collect(s, nil, a.ID, b.ID)
	if res.Marked != 2 || res.Reclaimed != 1 {
		t.Fatalf("marked=%d reclaimed=%d, want 2/1", res.Marked, res.Reclaimed)
	}
}
