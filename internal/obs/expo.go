package obs

import (
	"fmt"
	"io"

	"dgr/internal/metrics"
)

// WriteSpansJSONL writes the retained spans as chrome://tracing-compatible
// JSON Lines: one complete-duration ("ph":"X") event per line, timestamps
// and durations in microseconds on the layer's monotonic clock. Load the
// lines (wrapped in a JSON array) in chrome://tracing or Perfetto; PEs
// appear as tids 0..n-1, the collector as tid -1, the fabric as tid -2.
func (o *Obs) WriteSpansJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	for _, s := range o.Spans() {
		_, err := fmt.Fprintf(w,
			`{"name":%q,"cat":%q,"ph":"X","pid":0,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"n":%d}}`+"\n",
			s.Name, s.Cat, s.TID, float64(s.Start)/1e3, float64(s.Dur)/1e3, s.N)
		if err != nil {
			return err
		}
	}
	return nil
}

// PromData is everything the Prometheus exposition renders: the shared
// counters plus live machine gauges. Slices indexed by PE; nil slices are
// simply omitted from the output.
type PromData struct {
	Stats       metrics.Snapshot
	PEs         int
	Heap, Free  int
	FreePerPart []int
	Inflight    int64
	InTransit   int64
	Deadlocked  int
	PoolBands   [][Bands]int // per-PE queue depth per band
	Utils       []float64    // per-PE utilization (latest sample window)
	ExecsPerPE  []int64      // per-PE cumulative executions

	// Tenants, when non-empty, adds the serving layer's per-tenant series
	// (tenant-labeled counters and gauges) to the exposition.
	Tenants []TenantProm
}

// TenantProm is one tenant's serving-layer metric row. The serving layer
// (internal/serve) fills these from its admission and cache accounting;
// latency quantiles come from the per-tenant log2 histogram.
type TenantProm struct {
	Name      string
	Requests  int64 // submissions (admitted + rejected)
	Admitted  int64
	Completed int64
	Failed    int64
	// Rejections by structured cause.
	RejectedQueue    int64
	RejectedInflight int64
	RejectedQuota    int64
	// Memo-cache outcomes, one per admitted request.
	CacheHits   int64
	CacheMisses int64
	// Live admission state.
	Inflight        int64
	ChargedVertices int64
	VertexQuota     int64
	// Completed-request latency quantiles, microseconds.
	LatencyP50Us int64
	LatencyP95Us int64
	// Lineage exemplar: the slowest traced request so far ("" when the
	// tenant has no traced requests), linking the latency series to a
	// concrete trace in /debug/traces.json.
	SlowestTraceID string
	SlowestUs      int64
}

// writeTenants renders the tenant-labeled serving series. Counters first,
// then gauges, each series listing every tenant under one header.
func writeTenants(p func(format string, args ...any), ts []TenantProm) {
	counter := func(name, help string, get func(TenantProm) int64) {
		p("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, t := range ts {
			p("%s{tenant=%q} %d\n", name, t.Name, get(t))
		}
	}
	gauge := func(name, help string, get func(TenantProm) int64) {
		p("# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, t := range ts {
			p("%s{tenant=%q} %d\n", name, t.Name, get(t))
		}
	}
	counter("dgr_tenant_requests_total", "Evaluation submissions per tenant.",
		func(t TenantProm) int64 { return t.Requests })
	counter("dgr_tenant_admitted_total", "Submissions admitted past quota checks.",
		func(t TenantProm) int64 { return t.Admitted })
	counter("dgr_tenant_completed_total", "Evaluations finished successfully.",
		func(t TenantProm) int64 { return t.Completed })
	counter("dgr_tenant_failed_total", "Evaluations finished with an error.",
		func(t TenantProm) int64 { return t.Failed })
	counter("dgr_tenant_rejected_queue_total", "Rejections: admission queue full.",
		func(t TenantProm) int64 { return t.RejectedQueue })
	counter("dgr_tenant_rejected_inflight_total", "Rejections: tenant in-flight limit.",
		func(t TenantProm) int64 { return t.RejectedInflight })
	counter("dgr_tenant_rejected_quota_total", "Rejections: tenant vertex quota.",
		func(t TenantProm) int64 { return t.RejectedQuota })
	counter("dgr_tenant_cache_hits_total", "Memo-cache hits (reduction skipped).",
		func(t TenantProm) int64 { return t.CacheHits })
	counter("dgr_tenant_cache_misses_total", "Memo-cache misses (reduction ran).",
		func(t TenantProm) int64 { return t.CacheMisses })
	gauge("dgr_tenant_inflight", "Queued plus running requests.",
		func(t TenantProm) int64 { return t.Inflight })
	gauge("dgr_tenant_charged_vertices", "Graph vertices charged against the quota.",
		func(t TenantProm) int64 { return t.ChargedVertices })
	gauge("dgr_tenant_vertex_quota", "Configured graph-vertex quota.",
		func(t TenantProm) int64 { return t.VertexQuota })
	gauge("dgr_tenant_latency_p50_us", "Median request latency, microseconds.",
		func(t TenantProm) int64 { return t.LatencyP50Us })
	gauge("dgr_tenant_latency_p95_us", "95th-percentile request latency, microseconds.",
		func(t TenantProm) int64 { return t.LatencyP95Us })
	// Exemplar series: value is the slowest traced request's latency, the
	// trace label points into /debug/traces.json.
	emitted := false
	for _, t := range ts {
		if t.SlowestTraceID == "" {
			continue
		}
		if !emitted {
			p("# HELP dgr_tenant_slowest_trace_us Latency of the tenant's slowest traced request; the trace label is its lineage trace ID.\n")
			p("# TYPE dgr_tenant_slowest_trace_us gauge\n")
			emitted = true
		}
		p("dgr_tenant_slowest_trace_us{tenant=%q,trace=%q} %d\n", t.Name, t.SlowestTraceID, t.SlowestUs)
	}
}

// WritePrometheus renders d in the Prometheus text exposition format
// (version 0.0.4). Counter totals come from the metrics snapshot; gauges
// from the live machine; the fabric latency histogram is rendered with its
// native log2 bucket bounds.
func WritePrometheus(w io.Writer, d PromData) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	counter := func(name, help string, v int64) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		p("# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	s := d.Stats
	counter("dgr_tasks_executed_total", "Task executions across all PEs.", s.TasksExecuted)
	counter("dgr_reduction_tasks_total", "Demand/result/reduce executions.", s.ReductionTasks)
	counter("dgr_mark_tasks_total", "Mark task executions.", s.MarkTasks)
	counter("dgr_return_tasks_total", "Return task executions.", s.ReturnTasks)
	counter("dgr_remote_messages_total", "Tasks spawned across partitions.", s.RemoteMessages)
	counter("dgr_local_messages_total", "Tasks spawned within a partition.", s.LocalMessages)
	counter("dgr_rewrites_total", "Combinator/primitive graph rewrites.", s.Rewrites)
	counter("dgr_allocations_total", "Vertices taken from the free set.", s.Allocations)
	counter("dgr_reclaimed_total", "Vertices returned to the free set.", s.Reclaimed)
	counter("dgr_gc_cycles_total", "Completed mark/restructure cycles.", s.Cycles)
	counter("dgr_mt_runs_total", "Cycles that included an M_T phase.", s.MTRuns)
	counter("dgr_expunged_total", "Irrelevant tasks deleted.", s.Expunged)
	counter("dgr_reprioritized_total", "Tasks whose band changed in restructuring.", s.Reprioritized)
	counter("dgr_deadlocked_found_total", "Vertices reported deadlocked.", s.DeadlockedFound)
	counter("dgr_check_violations_total", "Invariant violations reported.", s.CheckViolations)
	counter("dgr_steals_total", "Successful cross-PE steal operations (batches taken).", s.Steals)
	counter("dgr_stolen_tasks_total", "Tasks moved between PE pools by stealing.", s.StolenTasks)
	counter("dgr_idle_polls_total", "Times a PE found no work in its own pool or any peer's.", s.IdlePolls)

	if s.FabricSent > 0 {
		counter("dgr_fabric_sent_total", "Tasks handed to the fabric.", s.FabricSent)
		counter("dgr_fabric_delivered_total", "Tasks delivered by the fabric.", s.FabricDelivered)
		counter("dgr_fabric_batches_total", "Batches flushed onto links.", s.FabricBatches)
		counter("dgr_fabric_dropped_total", "Batch transmissions lost.", s.FabricDropped)
		counter("dgr_fabric_retries_total", "Batch retransmissions.", s.FabricRetries)
		h := s.FabricLatency
		p("# HELP dgr_fabric_latency_us Enqueue-to-delivery latency, microseconds.\n")
		p("# TYPE dgr_fabric_latency_us histogram\n")
		var cum int64
		for b, c := range h {
			cum += c
			p("dgr_fabric_latency_us_bucket{le=\"%d\"} %d\n", int64(1)<<b, cum)
		}
		p("dgr_fabric_latency_us_bucket{le=\"+Inf\"} %d\n", cum)
		p("dgr_fabric_latency_us_count %d\n", cum)
	}

	if len(d.Tenants) > 0 {
		writeTenants(p, d.Tenants)
	}

	gauge("dgr_pes", "Processing elements.", int64(d.PEs))
	gauge("dgr_heap_vertices", "Vertices in the arena (|V|).", int64(d.Heap))
	gauge("dgr_free_vertices", "Free vertices (|F|).", int64(d.Free))
	gauge("dgr_inflight_tasks", "Queued plus executing tasks.", d.Inflight)
	gauge("dgr_in_transit_tasks", "Tasks inside the inter-PE fabric.", d.InTransit)
	gauge("dgr_deadlocked_vertices", "Vertices identified as deadlocked.", int64(d.Deadlocked))

	if len(d.FreePerPart) > 0 {
		p("# HELP dgr_partition_free_vertices Free vertices per graph partition.\n")
		p("# TYPE dgr_partition_free_vertices gauge\n")
		for part, n := range d.FreePerPart {
			p("dgr_partition_free_vertices{part=\"%d\"} %d\n", part, n)
		}
	}
	if len(d.PoolBands) > 0 {
		p("# HELP dgr_pe_queue_depth Queued tasks per PE and priority band.\n")
		p("# TYPE dgr_pe_queue_depth gauge\n")
		for pe, bands := range d.PoolBands {
			for b, n := range bands {
				p("dgr_pe_queue_depth{pe=\"%d\",band=%q} %d\n", pe, BandNames[b], n)
			}
		}
	}
	if len(d.Utils) > 0 {
		p("# HELP dgr_pe_utilization Fraction of the last sample interval spent executing.\n")
		p("# TYPE dgr_pe_utilization gauge\n")
		for pe, u := range d.Utils {
			p("dgr_pe_utilization{pe=\"%d\"} %.6f\n", pe, u)
		}
	}
	if len(d.ExecsPerPE) > 0 {
		p("# HELP dgr_pe_tasks_executed_total Task executions per PE.\n")
		p("# TYPE dgr_pe_tasks_executed_total counter\n")
		for pe, n := range d.ExecsPerPE {
			p("dgr_pe_tasks_executed_total{pe=\"%d\"} %d\n", pe, n)
		}
	}
	return err
}
