package obs

// Causal task-lineage tracing: a TraceSink collects wall-clock spans stamped
// with (trace ID, span ID, parent span ID) across every causal edge of the
// system — request admission, task spawn, steal, fabric hop, collector
// phase — and this file also holds the offline half: assembling the spans of
// one trace back into its spawn DAG and computing the critical path with
// per-category blame (exec / queue-wait / steal / fabric / gc-overlap).
//
// The sink is deliberately independent of *Obs: the per-PE span slices and
// flight rings run on each machine's private monotonic clock, while one
// TraceSink is shared by the serving layer and every pooled machine, so
// lineage spans use wall-clock UnixNano (Go's time.Now carries a monotonic
// reading within the process, so in-process deltas stay consistent).

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Trace-span categories. Blame accounting keys off Cat, so producers must
// use these exact strings.
const (
	CatExec   = "exec"   // a task execution on a PE
	CatSteal  = "steal"  // a cross-PE steal (point span on the stolen task)
	CatFabric = "fabric" // a fabric hop or retry on an in-transit task
	CatServe  = "serve"  // serving-layer phases: request/admission/memo/settle
	CatEval   = "eval"   // one machine evaluation (root of the task subtree)
	CatGC     = "gc"     // a collector phase interval (global, Trace == 0)
	CatQueue  = "queue"  // synthesized: pool wait between spawn and execution
)

// TraceSpan is one record in a causal trace. Start/End are wall-clock
// UnixNano. Queue, set on exec spans, is Start minus the task's spawn time
// (the pre-execution wait the blame pass decomposes into fabric / steal /
// queue). Trace == 0 marks a global interval (collector phases) that is not
// part of any one trace but is overlapped against all of them.
type TraceSpan struct {
	Trace  uint64 `json:"trace,omitempty"`
	Span   uint32 `json:"span"`
	Parent uint32 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Cat    string `json:"cat"`
	PE     int    `json:"pe"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Queue  int64  `json:"queue_ns,omitempty"`
	N      int64  `json:"n,omitempty"`
	Note   string `json:"note,omitempty"`
}

// TraceSink is the shared lineage collector: a mutex-guarded ring of
// TraceSpans plus the trace/span ID allocators and the head-sampling state.
// All methods are safe for concurrent use. A nil *TraceSink is inert.
type TraceSink struct {
	mu   sync.Mutex
	ring []TraceSpan
	next uint64 // total spans ever recorded; ring index = next % len
	// Global (Trace 0) collector intervals live in their own, smaller ring:
	// the collector cycles endlessly, so sharing the main ring would let gc
	// records evict trace spans on an idle server.
	glob     []TraceSpan
	globNext uint64

	rate    atomic.Uint64 // math.Float64bits of the sampling rate
	acc     atomic.Uint64 // sampling accumulator (requests seen)
	force   atomic.Bool   // sticky always-sample, set on violation/stuck
	spanID  atomic.Uint32
	traceID atomic.Uint64
}

// NewTraceSink returns a sink retaining the last capacity spans (default
// 1<<16) and head-sampling traces at rate (clamped to [0,1]).
func NewTraceSink(capacity int, rate float64) *TraceSink {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	globCap := capacity / 8
	if globCap < 1024 {
		globCap = 1024
	}
	s := &TraceSink{
		ring: make([]TraceSpan, 0, capacity),
		glob: make([]TraceSpan, 0, globCap),
	}
	s.SetRate(rate)
	return s
}

// SetRate updates the head-sampling rate (clamped to [0,1]).
func (s *TraceSink) SetRate(r float64) {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	s.rate.Store(math.Float64bits(r))
}

// Rate returns the configured head-sampling rate.
func (s *TraceSink) Rate() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.rate.Load())
}

// Force switches the sink into always-sample mode — called when the machine
// reports a violation, a deadlock, or ErrStuck, so every request after a
// failure is traced regardless of the rate knob. Sticky until ClearForce.
func (s *TraceSink) Force() {
	if s != nil {
		s.force.Store(true)
	}
}

// Forced reports whether the sink is in always-sample mode.
func (s *TraceSink) Forced() bool { return s != nil && s.force.Load() }

// ClearForce returns the sink to rate-based sampling.
func (s *TraceSink) ClearForce() {
	if s != nil {
		s.force.Store(false)
	}
}

// Sample makes one head-sampling decision: deterministic rate-accumulator
// sampling (every 1/rate-th request), overridden to true while forced.
func (s *TraceSink) Sample() bool {
	if s == nil {
		return false
	}
	if s.force.Load() {
		return true
	}
	rate := math.Float64frombits(s.rate.Load())
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	n := s.acc.Add(1)
	return uint64(float64(n)*rate) > uint64(float64(n-1)*rate)
}

// NewTrace allocates a fresh nonzero trace ID.
func (s *TraceSink) NewTrace() uint64 { return s.traceID.Add(1) }

// NewSpan allocates a fresh nonzero span ID.
func (s *TraceSink) NewSpan() uint32 {
	id := s.spanID.Add(1)
	for id == 0 { // wrapped: 0 means "no span"
		id = s.spanID.Add(1)
	}
	return id
}

// Record appends one span, evicting the oldest when the ring is full.
func (s *TraceSink) Record(sp TraceSpan) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, sp)
	} else {
		s.ring[s.next%uint64(cap(s.ring))] = sp
	}
	s.next++
	s.mu.Unlock()
}

// Exec records a task execution span: the scheduler's per-traced-task path.
func (s *TraceSink) Exec(trace uint64, span, parent uint32, name string, pe int, born, start, end int64) {
	var queue int64
	if born > 0 && start > born {
		queue = start - born
	}
	s.Record(TraceSpan{Trace: trace, Span: span, Parent: parent, Name: name,
		Cat: CatExec, PE: pe, Start: start, End: end, Queue: queue})
}

// Global records a collector phase interval. It belongs to no single trace
// (Trace 0); the blame pass overlaps it against exec segments.
func (s *TraceSink) Global(name string, pe int, start, end int64) {
	if s == nil {
		return
	}
	sp := TraceSpan{Span: s.NewSpan(), Name: name, Cat: CatGC, PE: pe, Start: start, End: end}
	s.mu.Lock()
	if len(s.glob) < cap(s.glob) {
		s.glob = append(s.glob, sp)
	} else {
		s.glob[s.globNext%uint64(cap(s.glob))] = sp
	}
	s.globNext++
	s.mu.Unlock()
}

// Spans returns the retained spans (trace spans followed by global
// collector intervals), oldest first within each class, plus how many
// trace spans were evicted from the ring.
func (s *TraceSink) Spans() (spans []TraceSpan, dropped uint64) {
	if s == nil {
		return nil, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSpan, 0, len(s.ring)+len(s.glob))
	if len(s.ring) < cap(s.ring) {
		out = append(out, s.ring...)
	} else {
		n := uint64(cap(s.ring))
		dropped = s.next - n
		for i := s.next - n; i < s.next; i++ {
			out = append(out, s.ring[i%n])
		}
	}
	if len(s.glob) < cap(s.glob) {
		out = append(out, s.glob...)
	} else {
		n := uint64(cap(s.glob))
		for i := s.globNext - n; i < s.globNext; i++ {
			out = append(out, s.glob[i%n])
		}
	}
	return out, dropped
}

// --- Assembly: spans back into per-trace spawn DAGs -----------------------

// TraceNode is one span with its causal children, Start-ordered.
type TraceNode struct {
	TraceSpan
	Children []*TraceNode
}

// TraceAssembly is one reconstructed trace: the spawn DAG (as a forest —
// normally a single root, the serving layer's request span or a machine's
// eval span) plus flat access to every span.
type TraceAssembly struct {
	ID      uint64
	Start   int64
	End     int64
	Roots   []*TraceNode
	Spans   []TraceSpan
	Orphans int // spans whose recorded parent was evicted from the ring
}

// AssembleTraces groups spans by trace ID and rebuilds each trace's DAG;
// global (Trace 0) collector intervals come back separately for overlap
// blame. Spans whose parent is missing become extra roots and are counted
// as orphans.
func AssembleTraces(spans []TraceSpan) (traces []*TraceAssembly, globals []TraceSpan) {
	byTrace := map[uint64][]TraceSpan{}
	for _, sp := range spans {
		if sp.Trace == 0 {
			globals = append(globals, sp)
			continue
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	sort.Slice(globals, func(i, j int) bool { return globals[i].Start < globals[j].Start })
	ids := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ts := byTrace[id]
		sort.Slice(ts, func(i, j int) bool { return ts[i].Start < ts[j].Start })
		asm := &TraceAssembly{ID: id, Spans: ts, Start: ts[0].Start, End: ts[0].End}
		nodes := make(map[uint32]*TraceNode, len(ts))
		for i := range ts {
			nodes[ts[i].Span] = &TraceNode{TraceSpan: ts[i]}
			if ts[i].Start < asm.Start {
				asm.Start = ts[i].Start
			}
			if ts[i].End > asm.End {
				asm.End = ts[i].End
			}
		}
		for i := range ts {
			n := nodes[ts[i].Span]
			if p, ok := nodes[ts[i].Parent]; ok && ts[i].Parent != ts[i].Span {
				p.Children = append(p.Children, n)
				continue
			}
			if ts[i].Parent != 0 {
				asm.Orphans++
			}
			asm.Roots = append(asm.Roots, n)
		}
		traces = append(traces, asm)
	}
	return traces, globals
}

// --- Critical path + per-category blame -----------------------------------

// CritSegment is one contiguous slice of a trace's critical path, blamed to
// one category.
type CritSegment struct {
	Cat   string `json:"cat"`
	Name  string `json:"name"`
	Span  uint32 `json:"span"`
	PE    int    `json:"pe"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// CritReport is the critical-path analysis of one trace: the path segments
// (oldest first) and the per-category blame totals. The segments partition
// the root span's interval, so the blame categories sum to (within clock
// granularity) the measured trace latency.
type CritReport struct {
	Trace   uint64           `json:"trace"`
	Start   int64            `json:"start"`
	End     int64            `json:"end"`
	TotalNs int64            `json:"total_ns"`
	Blame   map[string]int64 `json:"blame_ns"`
	Path    []CritSegment    `json:"path"`
}

// CriticalPath walks tr's DAG backward from the end of its root span,
// repeatedly descending into the child whose completion gated the parent's
// (latest End not after the cursor), chaining across siblings the same way,
// and decomposing each task's pre-execution wait into fabric-hop, post-steal,
// and plain queue time using the span's Queue window and its annotation
// children. Exec time overlapping a global collector interval is re-blamed
// to gc.
func CriticalPath(tr *TraceAssembly, globals []TraceSpan) CritReport {
	rep := CritReport{Trace: tr.ID, Start: tr.Start, End: tr.End,
		Blame: map[string]int64{}}
	if len(tr.Roots) == 0 {
		return rep
	}
	// Root: the widest root span (the request/eval envelope).
	root := tr.Roots[0]
	for _, r := range tr.Roots[1:] {
		if r.End-r.Start > root.End-root.Start {
			root = r
		}
	}
	rep.Start, rep.End = root.Start, root.End
	rep.TotalNs = root.End - root.Start
	// Spawned tasks outlive the span that spawned them, so the backward
	// walk keys on each subtree's completion time (max End over the node
	// and all descendants), not the node's own End.
	fin := map[*TraceNode]int64{}
	for _, r := range tr.Roots {
		finishOf(r, fin)
	}
	var segs []CritSegment
	chain(root, root.End, fin, &segs)
	// chain emits newest-first; reverse and fold gc overlap.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	segs = carveGC(segs, globals)
	for _, sg := range segs {
		if d := sg.End - sg.Start; d > 0 {
			rep.Blame[sg.Cat] += d
		}
	}
	rep.Path = segs
	return rep
}

// blameCat maps a span's category to its blame bucket: machine evaluation
// envelopes count as exec work; serving-layer phase spans as serve overhead.
func blameCat(sp *TraceSpan) string {
	switch sp.Cat {
	case CatExec, CatEval:
		return CatExec
	case CatSteal, CatFabric, CatGC, CatQueue:
		return sp.Cat
	default:
		return CatServe
	}
}

// finishOf computes each subtree's completion time: the max End over the
// node and every descendant (a spawned task's exec span routinely ends
// after its parent's does).
func finishOf(node *TraceNode, fin map[*TraceNode]int64) int64 {
	f := node.End
	for _, c := range node.Children {
		if cf := finishOf(c, fin); cf > f {
			f = cf
		}
	}
	fin[node] = f
	return f
}

// chain appends (newest-first) the critical segments of node's subtree that
// cover (chainStart(node), cursor]. The walk is backward: the child whose
// subtree completed last (at or before the cursor) gated the parent, so
// charge the gap after it to the parent, recurse into it, and continue from
// where its own chain started.
func chain(node *TraceNode, cursor int64, fin map[*TraceNode]int64, segs *[]CritSegment) int64 {
	if f := fin[node]; cursor > f {
		cursor = f
	}
	// Children whose subtrees completed inside the causal window (after
	// this task started) are causal work; children that finished before
	// Start (fabric hops, steal points) are pre-execution annotations
	// handled by the wait pass below.
	for cursor > node.Start {
		var best *TraceNode
		var bestFin int64
		for _, c := range node.Children {
			cf := fin[c]
			if cf > cursor || cf <= node.Start {
				continue
			}
			if best == nil || cf > bestFin {
				best, bestFin = c, cf
			}
		}
		if best == nil {
			break
		}
		if cursor > bestFin {
			*segs = append(*segs, CritSegment{Cat: blameCat(&node.TraceSpan),
				Name: node.Name, Span: node.Span, PE: node.PE, Start: bestFin, End: cursor})
		}
		prev := cursor
		cursor = chain(best, bestFin, fin, segs)
		if cursor >= bestFin {
			cursor = best.Start
		}
		if cursor >= prev { // zero-width child at the cursor: force progress
			break
		}
	}
	if cursor > node.End {
		// Unattributed subtree time after this span's own end still
		// belongs to its category, keeping the segments a partition.
		*segs = append(*segs, CritSegment{Cat: blameCat(&node.TraceSpan),
			Name: node.Name, Span: node.Span, PE: node.PE, Start: node.End, End: cursor})
		cursor = node.End
	}
	if cursor > node.Start {
		*segs = append(*segs, CritSegment{Cat: blameCat(&node.TraceSpan),
			Name: node.Name, Span: node.Span, PE: node.PE, Start: node.Start, End: cursor})
		cursor = node.Start
	}
	// Pre-execution wait: decompose (Born, Start] backward through the
	// node's annotation children — a fabric hop's interval is fabric time, a
	// steal point converts the wait after it into post-steal (thief pool)
	// wait, and whatever remains is plain queue wait on the spawning PE.
	if node.Queue <= 0 {
		return cursor
	}
	born := node.Start - node.Queue
	for cursor > born {
		var best *TraceNode
		for _, c := range node.Children {
			if c.Cat != CatFabric && c.Cat != CatSteal {
				continue
			}
			if c.End > cursor || c.End <= born {
				continue
			}
			if best == nil || c.End > best.End {
				best = c
			}
		}
		if best == nil {
			break
		}
		if cursor > best.End {
			waitCat := CatQueue
			if best.Cat == CatSteal {
				waitCat = CatSteal
			}
			*segs = append(*segs, CritSegment{Cat: waitCat, Name: "wait",
				Span: node.Span, PE: node.PE, Start: best.End, End: cursor})
		}
		if best.End > best.Start {
			*segs = append(*segs, CritSegment{Cat: best.Cat, Name: best.Name,
				Span: best.Span, PE: best.PE, Start: max64(best.Start, born), End: best.End})
		}
		if best.Start >= cursor { // zero-width annotation at the cursor
			break
		}
		cursor = best.Start
	}
	if cursor > born {
		*segs = append(*segs, CritSegment{Cat: CatQueue, Name: "wait",
			Span: node.Span, PE: node.PE, Start: born, End: cursor})
		cursor = born
	}
	return cursor
}

// carveGC splits exec segments where they overlap a global collector
// interval, re-blaming the overlap to gc. Segments arrive and leave oldest
// first; globals must be Start-sorted.
func carveGC(segs []CritSegment, globals []TraceSpan) []CritSegment {
	if len(globals) == 0 {
		return segs
	}
	var out []CritSegment
	for _, sg := range segs {
		if sg.Cat != CatExec {
			out = append(out, sg)
			continue
		}
		cur := sg.Start
		for _, g := range globals {
			if g.End <= cur || g.Start >= sg.End {
				continue
			}
			if g.Start > cur {
				pre := sg
				pre.Start, pre.End = cur, g.Start
				out = append(out, pre)
			}
			gcSeg := sg
			gcSeg.Cat, gcSeg.Name = CatGC, g.Name
			gcSeg.Start, gcSeg.End = max64(cur, g.Start), min64(sg.End, g.End)
			out = append(out, gcSeg)
			cur = gcSeg.End
			if cur >= sg.End {
				break
			}
		}
		if cur < sg.End {
			tail := sg
			tail.Start = cur
			out = append(out, tail)
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
