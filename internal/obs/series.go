package obs

import (
	"math"
	"sort"
	"sync"
)

// PEPoint is one per-PE time-series sample.
type PEPoint struct {
	// TS is nanoseconds on the layer's monotonic clock.
	TS int64 `json:"ts"`
	// Bands is the PE's pool depth per priority band (reserve..marking).
	Bands [Bands]int `json:"bands"`
	// Util is the fraction of the sampling interval the PE spent executing
	// tasks, in [0,1].
	Util float64 `json:"util"`
	// Execs is the PE's cumulative task-execution count.
	Execs int64 `json:"execs"`
	// Free is the free-vertex count of the PE's graph partition.
	Free int `json:"free"`
}

// MachPoint is one machine-wide time-series sample.
type MachPoint struct {
	TS         int64 `json:"ts"`
	Inflight   int64 `json:"inflight"`
	InTransit  int64 `json:"in_transit"`
	Cycles     int64 `json:"cycles"`
	Free       int   `json:"free"`
	Heap       int   `json:"heap"`
	Deadlocked int   `json:"deadlocked"`
}

// series holds the bounded sample history. One mutex guards everything:
// sampling happens a few hundred times a second at most.
type series struct {
	o   *Obs
	cap int

	mu       sync.Mutex
	pe       [][]PEPoint // ring per PE
	mach     []MachPoint // machine ring
	next     uint64
	lastTS   int64
	lastBusy []int64
}

func newSeries(o *Obs, pes, capacity int) *series {
	s := &series{
		o:        o,
		cap:      capacity,
		pe:       make([][]PEPoint, pes),
		mach:     make([]MachPoint, capacity),
		lastBusy: make([]int64, pes),
	}
	for i := range s.pe {
		s.pe[i] = make([]PEPoint, capacity)
	}
	return s
}

func (s *series) sample() {
	src := s.o.opts.Sources
	now := s.o.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	interval := now - s.lastTS
	slot := s.next % uint64(s.cap)
	for pe := range s.pe {
		p := PEPoint{TS: now, Execs: s.o.slots[pe].execs.Load()}
		if src.QueueDepths != nil {
			p.Bands = src.QueueDepths(pe)
		}
		if src.FreeOf != nil {
			p.Free = src.FreeOf(pe)
		}
		busy := s.o.slots[pe].busyNs.Load()
		if interval > 0 {
			p.Util = math.Min(1, float64(busy-s.lastBusy[pe])/float64(interval))
		}
		s.lastBusy[pe] = busy
		s.pe[pe][slot] = p
	}
	mp := MachPoint{TS: now}
	if src.Inflight != nil {
		mp.Inflight = src.Inflight()
	}
	if src.InTransit != nil {
		mp.InTransit = src.InTransit()
	}
	if src.Cycles != nil {
		mp.Cycles = src.Cycles()
	}
	if src.FreeTotal != nil {
		mp.Free = src.FreeTotal()
	}
	if src.Heap != nil {
		mp.Heap = src.Heap()
	}
	if src.Deadlocked != nil {
		mp.Deadlocked = src.Deadlocked()
	}
	s.mach[slot] = mp
	s.next++
	s.lastTS = now
}

// SeriesSnap is a point-in-time copy of the sampled series, oldest sample
// first, plus per-PE summary quantiles over the retained window.
type SeriesSnap struct {
	// PE[i] is PE i's retained samples.
	PE [][]PEPoint `json:"pe"`
	// Mach is the machine-wide retained samples.
	Mach []MachPoint `json:"mach"`
	// Summary[i] summarizes PE i's retained window.
	Summary []PESummary `json:"summary"`
}

// PESummary is quantile/extreme digest of one PE's retained window.
type PESummary struct {
	// Samples is the number of retained samples.
	Samples int `json:"samples"`
	// UtilP50 and UtilP95 are utilization quantiles.
	UtilP50 float64 `json:"util_p50"`
	UtilP95 float64 `json:"util_p95"`
	// DepthP50, DepthP95, DepthMax digest total queue depth.
	DepthP50 int `json:"depth_p50"`
	DepthP95 int `json:"depth_p95"`
	DepthMax int `json:"depth_max"`
	// Execs is the PE's cumulative execution count at the newest sample.
	Execs int64 `json:"execs"`
}

func (s *series) snapshot() *SeriesSnap {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	retained := uint64(s.cap)
	start := uint64(0)
	if n > retained {
		start = n - retained
	}
	snap := &SeriesSnap{
		PE:      make([][]PEPoint, len(s.pe)),
		Summary: make([]PESummary, len(s.pe)),
	}
	for i := start; i < n; i++ {
		slot := i % uint64(s.cap)
		snap.Mach = append(snap.Mach, s.mach[slot])
		for pe := range s.pe {
			snap.PE[pe] = append(snap.PE[pe], s.pe[pe][slot])
		}
	}
	for pe := range snap.PE {
		snap.Summary[pe] = summarize(snap.PE[pe])
	}
	return snap
}

func summarize(pts []PEPoint) PESummary {
	sum := PESummary{Samples: len(pts)}
	if len(pts) == 0 {
		return sum
	}
	utils := make([]float64, len(pts))
	depths := make([]int, len(pts))
	for i, p := range pts {
		utils[i] = p.Util
		d := 0
		for _, b := range p.Bands {
			d += b
		}
		depths[i] = d
		if d > sum.DepthMax {
			sum.DepthMax = d
		}
	}
	sort.Float64s(utils)
	sort.Ints(depths)
	sum.UtilP50 = utils[quantIdx(len(utils), 0.50)]
	sum.UtilP95 = utils[quantIdx(len(utils), 0.95)]
	sum.DepthP50 = depths[quantIdx(len(depths), 0.50)]
	sum.DepthP95 = depths[quantIdx(len(depths), 0.95)]
	sum.Execs = pts[len(pts)-1].Execs
	return sum
}

// quantIdx returns the index of the q-quantile in a sorted slice of n
// elements (nearest-rank).
func quantIdx(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
