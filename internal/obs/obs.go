// Package obs is the machine's unified observability layer: monotonic-clock
// span tracing for collector phases, per-PE execution batches, and fabric
// batch flights; per-PE time-series sampled into fixed-size ring buffers;
// Prometheus-text and JSON exposition helpers; and a flight recorder — a
// bounded ring of recent timestamped scheduler/collector/fabric events that
// is dumped when the machine misbehaves (ErrDeadlock, invariant violation),
// so intermittent failures leave a diagnosable artifact instead of a shrug.
//
// Every recording method is nil-safe: a nil *Obs is the disabled layer, and
// callers on hot paths pay exactly one pointer test. With obs enabled the
// steady-state hot path (TaskStart/TaskEnd) costs a few plain single-writer
// field updates and one lock-free ring write per task; the monotonic clock
// is read and the sampled counters accrued once per clockTasks executions
// (exactly at idle transitions) — no locks, no allocation.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Bands is the number of task-pool priority bands, mirrored from
// internal/task (obs must stay a leaf package; the dgr facade's wiring
// fails to compile if the two constants ever diverge).
const Bands = 4

// BandNames labels the bands, lowest to highest, matching internal/task's
// BandReserve..BandMarking order.
var BandNames = [Bands]string{"reserve", "eager", "vital", "marking"}

// Options sizes the layer's bounded buffers. Zero values get defaults.
type Options struct {
	// PEs is the number of processing elements (required, ≥1).
	PEs int
	// Parallel tells the layer whether PE goroutines run concurrently
	// (gates which goroutine may flush per-PE batch spans).
	Parallel bool
	// SpanCapacity bounds the span ring (default 4096).
	SpanCapacity int
	// FlightCapacity bounds each flight-recorder shard (default 1024).
	FlightCapacity int
	// SeriesCapacity bounds each time-series ring (default 512 samples).
	SeriesCapacity int
	// SampleEvery is the parallel-mode sampling period (default 5ms).
	SampleEvery time.Duration
	// KindNames maps numeric task-kind values to names for flight-recorder
	// dumps (index = kind value). Unknown kinds render as "kind(N)".
	KindNames []string
	// Sources supplies the live machine state the sampler and exposition
	// read. Individual funcs may be nil (their series read as zero).
	Sources Sources
}

// Sources are closures over the machine the layer observes. obs is a leaf
// package, so the scheduler, store, and fabric are reached only through
// these.
type Sources struct {
	// QueueDepths returns PE pe's pool depth per priority band.
	QueueDepths func(pe int) [Bands]int
	// FreeOf returns the free-vertex count of partition part.
	FreeOf func(part int) int
	// FreeTotal returns |F| and Heap returns |V|.
	FreeTotal func() int
	Heap      func() int
	// Inflight returns queued+executing tasks; InTransit those inside the
	// fabric.
	Inflight  func() int64
	InTransit func() int64
	// Cycles returns completed collector cycles; Deadlocked the number of
	// vertices reported deadlocked.
	Cycles     func() int64
	Deadlocked func() int
}

// Span is one completed timed operation. Start and Dur are nanoseconds on
// the layer's monotonic clock (Start is since New).
type Span struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	TID   int    `json:"tid"`
	Start int64  `json:"start"`
	Dur   int64  `json:"dur"`
	N     int64  `json:"n,omitempty"` // operation count (tasks in a batch, …)
}

// Well-known span TIDs for non-PE actors.
const (
	TIDCollector = -1
	TIDFabric    = -2
	// TIDEval marks machine-level evaluation envelopes and serving-layer
	// phase spans in lineage traces (no single PE owns them).
	TIDEval = -3
)

// peSlot is one PE's hot-path accounting. Only PE pe's goroutine writes the
// plain fields; the sampler reads the atomics. Padded so neighboring PEs
// never share a cache line.
type peSlot struct {
	last       int64 // clock at the previous accrual (or idle-resume TaskStart)
	idle       bool  // next TaskStart must re-read the clock
	pending    int32 // executions since the previous accrual
	batchStart int64 // clock at the batch's first task
	batchN     int64 // tasks executed in the open batch
	busyNs     atomic.Int64
	execs      atomic.Int64
	_          [80]byte
}

// maxBatchSpan splits an open per-PE execution batch so a long busy period
// still produces periodic spans instead of one giant one.
const maxBatchSpan = 10 * time.Millisecond

// clockTasks is how many task executions share one clock read in the steady
// state. Busy-time and execution counters accrue exactly at every idle
// transition and safe point, and within clockTasks-1 executions otherwise.
const clockTasks = 32

// Obs is the observability hub. Use New; a nil *Obs is the disabled layer
// and every method is a cheap no-op on it.
type Obs struct {
	opts  Options
	epoch time.Time

	slots []peSlot

	spanMu   sync.Mutex
	spans    []Span
	spanNext uint64

	flight *Flight
	series *series

	samplerStop chan struct{}
	samplerWG   sync.WaitGroup
}

// New builds the layer. It does not start the sampler goroutine; call
// StartSampler in parallel mode (deterministic machines sample at collector
// cycle ends instead).
func New(opts Options) *Obs {
	if opts.PEs < 1 {
		opts.PEs = 1
	}
	if opts.SpanCapacity <= 0 {
		opts.SpanCapacity = 4096
	}
	if opts.FlightCapacity <= 0 {
		opts.FlightCapacity = 1024
	}
	if opts.SeriesCapacity <= 0 {
		opts.SeriesCapacity = 512
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 5 * time.Millisecond
	}
	o := &Obs{
		opts:   opts,
		epoch:  time.Now(),
		slots:  make([]peSlot, opts.PEs),
		spans:  make([]Span, opts.SpanCapacity),
		flight: newFlight(opts.PEs, opts.FlightCapacity, opts.KindNames),
	}
	for i := range o.slots {
		o.slots[i].idle = true
	}
	o.series = newSeries(o, opts.PEs, opts.SeriesCapacity)
	return o
}

// Now returns nanoseconds on the layer's monotonic clock (0 for nil).
func (o *Obs) Now() int64 {
	if o == nil {
		return 0
	}
	return int64(time.Since(o.epoch))
}

// PEs returns the PE count the layer was built for (0 for nil).
func (o *Obs) PEs() int {
	if o == nil {
		return 0
	}
	return o.opts.PEs
}

// Span records a completed span that began at start (a prior Now value);
// the duration is measured to the current clock. n is an optional
// operation count.
func (o *Obs) Span(name, cat string, tid int, start, n int64) {
	if o == nil {
		return
	}
	o.spanMu.Lock()
	o.spans[o.spanNext%uint64(len(o.spans))] = Span{
		Name: name, Cat: cat, TID: tid, Start: start, Dur: o.Now() - start, N: n,
	}
	o.spanNext++
	o.spanMu.Unlock()
}

// Spans returns the retained spans in recording order.
func (o *Obs) Spans() []Span {
	if o == nil {
		return nil
	}
	o.spanMu.Lock()
	defer o.spanMu.Unlock()
	n := uint64(len(o.spans))
	start := uint64(0)
	if o.spanNext > n {
		start = o.spanNext - n
	}
	out := make([]Span, 0, o.spanNext-start)
	for i := start; i < o.spanNext; i++ {
		out = append(out, o.spans[i%n])
	}
	return out
}

// TaskStart marks the beginning of a task execution on PE pe. Steady-state
// hot path: one branch. The clock is only read when the PE resumes from
// idle (or from a flushed safe point); otherwise the previous TaskEnd's
// timestamp doubles as this task's start, charging the scheduler's pop
// overhead to busy time — the honest reading for a utilization metric.
func (o *Obs) TaskStart(pe int) {
	if o == nil {
		return
	}
	s := &o.slots[pe]
	if s.idle {
		s.last = o.Now()
		s.idle = false
	}
}

// TaskEnd marks the end of a task execution on PE pe: it counts the task
// into the open execution-batch span, and appends an execution event (the
// task's numeric kind and endpoints) to the flight recorder. Steady-state
// hot path: a few plain single-writer fields plus one lock-free ring write;
// the clock is read and the busy/exec atomics accrued once per clockTasks
// executions (and exactly at every idle transition), so Execs/BusyNs lag
// live execution by at most clockTasks-1 tasks. Kind values are named in
// dumps via Options.KindNames.
func (o *Obs) TaskEnd(pe int, kind uint8, src, dst uint64) {
	if o == nil {
		return
	}
	s := &o.slots[pe]
	if s.batchN == 0 {
		s.batchStart = s.last
	}
	s.batchN++
	s.pending++
	if s.pending >= clockTasks {
		o.accrue(s)
		if s.last-s.batchStart >= int64(maxBatchSpan) {
			o.flushBatch(pe)
		}
	}
	o.flight.noteExec(pe, s.last, kind, src, dst)
}

// accrue reads the clock and folds the pending executions into the sampled
// busy-time and execution counters. Caller must be slot s's single writer.
func (o *Obs) accrue(s *peSlot) {
	now := o.Now()
	s.busyNs.Add(now - s.last)
	s.execs.Add(int64(s.pending))
	s.pending = 0
	s.last = now
}

// PEIdle marks PE pe transitioning to idle (its pool drained): pending
// busy time and execution counts accrue exactly, the open execution batch,
// if any, is closed into a span, and the next TaskStart re-reads the clock
// so the wait is not charged as busy time. Must be called from PE pe's own
// goroutine.
func (o *Obs) PEIdle(pe int) {
	if o == nil {
		return
	}
	s := &o.slots[pe]
	if s.pending > 0 {
		o.accrue(s)
	}
	o.flushBatch(pe)
	s.idle = true
}

// flushBatch closes PE pe's open execution batch into a span. Caller must
// be the only writer of pe's slot (PE goroutine, or the single driver
// thread in deterministic mode).
func (o *Obs) flushBatch(pe int) {
	s := &o.slots[pe]
	if s.batchN == 0 {
		return
	}
	o.Span("pe-batch", "sched", pe, s.batchStart, s.batchN)
	s.batchN = 0
}

// FlushBatches closes every PE's open batch and marks the PEs idle (the
// time until their next task is not execution). Only safe when no PE is
// executing (deterministic safe point, or after Stop in parallel mode).
func (o *Obs) FlushBatches() {
	if o == nil {
		return
	}
	for pe := range o.slots {
		s := &o.slots[pe]
		if s.pending > 0 {
			o.accrue(s)
		}
		o.flushBatch(pe)
		s.idle = true
	}
}

// BusyNs returns PE pe's accumulated execution time. Between accrual points
// it lags live execution by up to clockTasks-1 tasks; every idle transition
// and FlushBatches safe point makes it exact.
func (o *Obs) BusyNs(pe int) int64 {
	if o == nil {
		return 0
	}
	return o.slots[pe].busyNs.Load()
}

// Execs returns PE pe's execution count, with the same accrual lag as
// BusyNs.
func (o *Obs) Execs(pe int) int64 {
	if o == nil {
		return 0
	}
	return o.slots[pe].execs.Load()
}

// Event appends a non-execution event to the flight recorder (TIDCollector
// events get their own shard; everything else shares the fabric's). note
// should be preformatted; these events are rare enough that an allocation
// is acceptable.
func (o *Obs) Event(pe int, kind string, src, dst uint64, note string) {
	if o == nil {
		return
	}
	o.flight.note(pe, o.Now(), kind, src, dst, note)
}

// FlightEvents returns the flight recorder's retained events merged across
// shards in timestamp order.
func (o *Obs) FlightEvents() []FlightEvent {
	if o == nil {
		return nil
	}
	return o.flight.events()
}

// StartSampler launches the sampling goroutine (parallel machines). It is
// idempotent; Close stops it.
func (o *Obs) StartSampler() {
	if o == nil || o.samplerStop != nil {
		return
	}
	o.samplerStop = make(chan struct{})
	stop := o.samplerStop
	o.samplerWG.Add(1)
	go func() {
		defer o.samplerWG.Done()
		t := time.NewTicker(o.opts.SampleEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				o.SampleNow()
			}
		}
	}()
}

// SampleNow takes one time-series sample immediately. Deterministic
// machines call it at collector cycle ends; the sampler goroutine calls it
// on its period. Safe for concurrent use.
func (o *Obs) SampleNow() {
	if o == nil {
		return
	}
	o.series.sample()
	if !o.opts.Parallel {
		// Deterministic safe point: close open execution batches so span
		// export between cycles sees them.
		o.FlushBatches()
	}
}

// Series returns a snapshot of the sampled time-series.
func (o *Obs) Series() *SeriesSnap {
	if o == nil {
		return nil
	}
	return o.series.snapshot()
}

// Close stops the sampler and closes any open batch spans.
func (o *Obs) Close() {
	if o == nil {
		return
	}
	if o.samplerStop != nil {
		close(o.samplerStop)
		o.samplerWG.Wait()
		o.samplerStop = nil
	}
	o.FlushBatches()
}
