package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// FlightEvent is one entry in the flight recorder: a timestamped scheduler,
// collector, or fabric occurrence. TS is nanoseconds on the layer's
// monotonic clock; PE is the acting processing element, or TIDCollector /
// TIDFabric for the non-PE actors.
type FlightEvent struct {
	TS   int64  `json:"ts"`
	PE   int    `json:"pe"`
	Kind string `json:"kind"`
	Src  uint64 `json:"src,omitempty"`
	Dst  uint64 `json:"dst,omitempty"`
	Note string `json:"note,omitempty"`
}

// peExec is one task execution in a PE's ring, packed into two atomic
// words: when holds ts<<8|kind (56 bits of monotonic nanoseconds — ample —
// plus the numeric task kind), ends holds src<<32|dst (vertex IDs are 32
// bits). The ring has a single writer (the PE's goroutine, or the driver
// thread in deterministic mode) so stores never contend, and a dump racing
// the writer can at worst read a torn *entry* (words from two executions),
// never unsafe memory — which is why the entry holds a numeric kind instead
// of a string.
type peExec struct {
	when atomic.Uint64
	ends atomic.Uint64
}

// peRing is a lock-free single-writer ring of executions.
type peRing struct {
	ring []peExec
	mask uint64
	next atomic.Uint64
	_    [32]byte // keep neighboring PEs off this cache line
}

// flightShard is a mutex-guarded ring for the rare collector/fabric events,
// which carry preformatted note strings.
type flightShard struct {
	mu   sync.Mutex
	ring []FlightEvent
	next uint64
}

// Flight is the recorder: per-execution events go to per-PE lock-free
// rings; collector and fabric events to two mutex shards. Dumps merge
// everything by timestamp.
type Flight struct {
	pe        []peRing
	coll, fab flightShard
	kindNames []string
}

func newFlight(pes, capacity int, kindNames []string) *Flight {
	cap2 := 1
	for cap2 < capacity {
		cap2 <<= 1
	}
	f := &Flight{pe: make([]peRing, pes), kindNames: kindNames}
	for i := range f.pe {
		f.pe[i].ring = make([]peExec, cap2)
		f.pe[i].mask = uint64(cap2 - 1)
	}
	f.coll.ring = make([]FlightEvent, capacity)
	f.fab.ring = make([]FlightEvent, capacity)
	return f
}

// noteExec records one task execution on PE pe's ring: two uncontended
// atomic stores and a head publish. This is the scheduler's per-task path.
func (f *Flight) noteExec(pe int, ts int64, kind uint8, src, dst uint64) {
	r := &f.pe[pe]
	n := r.next.Load()
	e := &r.ring[n&r.mask]
	e.when.Store(uint64(ts)<<8 | uint64(kind))
	e.ends.Store(src<<32 | dst&0xffffffff)
	r.next.Store(n + 1)
}

// note records a collector or fabric event (any non-collector actor folds
// onto the fabric shard; these paths are rare enough for a mutex).
func (f *Flight) note(pe int, ts int64, kind string, src, dst uint64, note string) {
	sh := &f.fab
	if pe == TIDCollector {
		sh = &f.coll
	}
	sh.mu.Lock()
	sh.ring[sh.next%uint64(len(sh.ring))] = FlightEvent{
		TS: ts, PE: pe, Kind: kind, Src: src, Dst: dst, Note: note,
	}
	sh.next++
	sh.mu.Unlock()
}

func (f *Flight) kindName(k uint8) string {
	if int(k) < len(f.kindNames) && f.kindNames[k] != "" {
		return f.kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// events returns every retained event across rings and shards, oldest
// first. A dump racing a still-executing PE may mix the fields of the
// couple of entries at that ring's head; dumps happen on failure or
// exposition, where that imprecision is acceptable.
func (f *Flight) events() []FlightEvent {
	var out []FlightEvent
	for pe := range f.pe {
		r := &f.pe[pe]
		n := r.next.Load()
		start := uint64(0)
		if n > uint64(len(r.ring)) {
			start = n - uint64(len(r.ring))
		}
		for i := start; i < n; i++ {
			e := &r.ring[i&r.mask]
			when, ends := e.when.Load(), e.ends.Load()
			out = append(out, FlightEvent{
				TS:   int64(when >> 8),
				PE:   pe,
				Kind: f.kindName(uint8(when)),
				Src:  ends >> 32,
				Dst:  ends & 0xffffffff,
			})
		}
	}
	for _, sh := range []*flightShard{&f.coll, &f.fab} {
		sh.mu.Lock()
		n := uint64(len(sh.ring))
		start := uint64(0)
		if sh.next > n {
			start = sh.next - n
		}
		for j := start; j < sh.next; j++ {
			out = append(out, sh.ring[j%n])
		}
		sh.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// WriteFlightJSONL dumps the flight recorder as JSON Lines, oldest event
// first — the artifact the machine writes automatically when it reports
// ErrDeadlock or an invariant violation.
func (o *Obs) WriteFlightJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range o.flight.events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
