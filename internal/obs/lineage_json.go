package obs

// JSON exposition of assembled lineage traces: the document served at
// /debug/traces.json (serving layer), written by Machine.WriteTracesJSON,
// and consumed by `dgr-trace analyze`. The analyzer recomputes the critical
// path from the raw spans when asked, so the document carries both.

import (
	"encoding/json"
	"io"
)

// TraceDoc is the lineage exposition document: every assembled trace with
// its critical-path analysis, plus the global collector intervals they
// overlap and how many trace spans the sink's ring has evicted.
type TraceDoc struct {
	Traces  []TraceReport `json:"traces"`
	Globals []TraceSpan   `json:"globals,omitempty"`
	Dropped uint64        `json:"dropped,omitempty"`
}

// TraceReport is one assembled trace: its raw spans (Start-ordered) and the
// critical path with per-category blame.
type TraceReport struct {
	ID      uint64      `json:"id"`
	Start   int64       `json:"start"`
	End     int64       `json:"end"`
	TotalNs int64       `json:"total_ns"`
	Orphans int         `json:"orphans,omitempty"`
	Spans   []TraceSpan `json:"spans"`
	Crit    CritReport  `json:"critical"`
}

// BuildTraceDoc drains the sink's retained spans into the exposition
// document, assembling each trace and running the critical-path analysis.
func BuildTraceDoc(s *TraceSink) TraceDoc {
	spans, dropped := s.Spans()
	traces, globals := AssembleTraces(spans)
	doc := TraceDoc{Globals: globals, Dropped: dropped}
	for _, tr := range traces {
		crit := CriticalPath(tr, globals)
		doc.Traces = append(doc.Traces, TraceReport{
			ID: tr.ID, Start: tr.Start, End: tr.End,
			TotalNs: crit.TotalNs, Orphans: tr.Orphans,
			Spans: tr.Spans, Crit: crit,
		})
	}
	return doc
}

// WriteTracesJSON writes the sink's assembled traces as an indented
// TraceDoc.
func WriteTracesJSON(w io.Writer, s *TraceSink) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildTraceDoc(s))
}
