package obs

import "testing"

// A hand-built request trace exercising every span kind the runtime emits:
//
//	request [0,1000]
//	├── admission [0,50]       (serve)
//	├── queue-wait [50,200]    (queue)
//	├── eval [200,950]         (eval)
//	│   └── demand exec [250,400] Queue=30 (born 220)
//	│       └── result exec [500,900] Queue=100 (born 400)
//	│           └── steal point @450
//	└── settle [950,1000]      (serve)
//	global gc interval [300,350]
func testSpans() []TraceSpan {
	return []TraceSpan{
		{Trace: 7, Span: 1, Name: "request", Cat: CatServe, PE: TIDEval, Start: 0, End: 1000},
		{Trace: 7, Span: 2, Parent: 1, Name: "admission", Cat: CatServe, PE: TIDEval, Start: 0, End: 50},
		{Trace: 7, Span: 3, Parent: 1, Name: "queue-wait", Cat: CatQueue, PE: TIDEval, Start: 50, End: 200},
		{Trace: 7, Span: 4, Parent: 1, Name: "eval", Cat: CatEval, PE: TIDEval, Start: 200, End: 950},
		{Trace: 7, Span: 5, Parent: 4, Name: "demand", Cat: CatExec, PE: 0, Start: 250, End: 400, Queue: 30},
		{Trace: 7, Span: 6, Parent: 5, Name: "result", Cat: CatExec, PE: 1, Start: 500, End: 900, Queue: 100},
		{Trace: 7, Span: 7, Parent: 6, Name: "steal", Cat: CatSteal, PE: 1, Start: 450, End: 450},
		{Trace: 7, Span: 8, Parent: 1, Name: "settle", Cat: CatServe, PE: TIDEval, Start: 950, End: 1000},
		{Span: 9, Name: "M_R", Cat: CatGC, PE: TIDCollector, Start: 300, End: 350},
	}
}

func TestAssembleTracesRebuildsDAG(t *testing.T) {
	traces, globals := AssembleTraces(testSpans())
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	if len(globals) != 1 || globals[0].Name != "M_R" {
		t.Fatalf("globals = %+v, want one M_R interval", globals)
	}
	tr := traces[0]
	if tr.ID != 7 || tr.Orphans != 0 {
		t.Fatalf("ID=%d orphans=%d, want 7/0", tr.ID, tr.Orphans)
	}
	if tr.Start != 0 || tr.End != 1000 {
		t.Fatalf("bounds [%d,%d], want [0,1000]", tr.Start, tr.End)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "request" {
		t.Fatalf("roots = %d (%v), want the single request span", len(tr.Roots), tr.Roots)
	}
	root := tr.Roots[0]
	if len(root.Children) != 4 {
		t.Fatalf("request children = %d, want 4", len(root.Children))
	}
	var eval *TraceNode
	for _, c := range root.Children {
		if c.Name == "eval" {
			eval = c
		}
	}
	if eval == nil {
		t.Fatal("eval span not a child of request")
	}
	if len(eval.Children) != 1 || eval.Children[0].Name != "demand" {
		t.Fatalf("eval children = %+v, want [demand]", eval.Children)
	}
	demand := eval.Children[0]
	if len(demand.Children) != 1 || demand.Children[0].Name != "result" {
		t.Fatalf("demand children = %+v, want [result]", demand.Children)
	}
	result := demand.Children[0]
	if len(result.Children) != 1 || result.Children[0].Cat != CatSteal {
		t.Fatalf("result children = %+v, want [steal]", result.Children)
	}
}

func TestAssembleTracesOrphans(t *testing.T) {
	spans := testSpans()[4:6] // demand+result; their parents are missing
	traces, _ := AssembleTraces(spans)
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	// demand's parent (4) was evicted: it becomes a root and counts as an
	// orphan; result still hangs off demand.
	if tr.Orphans != 1 || len(tr.Roots) != 1 || tr.Roots[0].Name != "demand" {
		t.Fatalf("orphans=%d roots=%v, want 1 orphan rooted at demand", tr.Orphans, tr.Roots)
	}
}

func TestCriticalPathBlame(t *testing.T) {
	traces, globals := AssembleTraces(testSpans())
	rep := CriticalPath(traces[0], globals)
	if rep.TotalNs != 1000 {
		t.Fatalf("TotalNs = %d, want 1000", rep.TotalNs)
	}
	// The segments must partition [0,1000]: contiguous, no overlap.
	var sum int64
	cursor := rep.Start
	for i, sg := range rep.Path {
		if sg.Start != cursor {
			t.Fatalf("segment %d starts at %d, want %d (gap or overlap)", i, sg.Start, cursor)
		}
		if sg.End < sg.Start {
			t.Fatalf("segment %d inverted: [%d,%d]", i, sg.Start, sg.End)
		}
		sum += sg.End - sg.Start
		cursor = sg.End
	}
	if cursor != rep.End {
		t.Fatalf("path ends at %d, want %d", cursor, rep.End)
	}
	if sum != rep.TotalNs {
		t.Fatalf("segments sum to %d, want %d", sum, rep.TotalNs)
	}
	want := map[string]int64{
		// 950→1000 settle + 0→50 admission.
		CatServe: 100,
		// Exec work: result [500,900], demand [250,400] minus the gc carve
		// [300,350], eval remainder [200,220] + tail-gap [900,950].
		CatExec: 570,
		// The global M_R interval overlapping demand's execution.
		CatGC: 50,
		// Post-steal wait [450,500] on the thief's pool.
		CatSteal: 50,
		// queue-wait [50,200] + pre-steal wait [400,450] + demand's own
		// spawn-to-exec wait [220,250].
		CatQueue: 230,
	}
	for cat, ns := range want {
		if rep.Blame[cat] != ns {
			t.Errorf("blame[%s] = %d, want %d (full: %v)", cat, rep.Blame[cat], ns, rep.Blame)
		}
	}
	var total int64
	for _, ns := range rep.Blame {
		total += ns
	}
	if total != rep.TotalNs {
		t.Errorf("blame sums to %d, want %d", total, rep.TotalNs)
	}
}

func TestTraceSinkSampling(t *testing.T) {
	s := NewTraceSink(64, 0.25)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("rate 0.25 over 400 decisions: %d sampled, want exactly 100 (deterministic accumulator)", hits)
	}
	s.Force()
	for i := 0; i < 10; i++ {
		if !s.Sample() {
			t.Fatal("forced sink must sample every request")
		}
	}
	s.ClearForce()
	if s.Rate() != 0.25 {
		t.Fatalf("Rate = %v, want 0.25", s.Rate())
	}
	var nilSink *TraceSink
	if nilSink.Sample() || nilSink.Rate() != 0 {
		t.Fatal("nil sink must be inert")
	}
	nilSink.Force() // must not panic
	nilSink.Record(TraceSpan{})
}

func TestTraceSinkEviction(t *testing.T) {
	s := NewTraceSink(4, 1)
	for i := 0; i < 10; i++ {
		s.Record(TraceSpan{Trace: 1, Span: uint32(i + 1), Start: int64(i)})
	}
	spans, dropped := s.Spans()
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(spans) != 4 || spans[0].Span != 7 || spans[3].Span != 10 {
		t.Fatalf("retained %+v, want spans 7..10 oldest-first", spans)
	}
	// Global intervals survive in their own ring even when trace spans
	// churn: the collector cycles forever on an idle server.
	s.Global("M_T", TIDCollector, 1, 2)
	for i := 0; i < 8; i++ {
		s.Record(TraceSpan{Trace: 2, Span: uint32(100 + i)})
	}
	spans, _ = s.Spans()
	foundGlobal := false
	for _, sp := range spans {
		if sp.Trace == 0 && sp.Name == "M_T" {
			foundGlobal = true
		}
	}
	if !foundGlobal {
		t.Fatal("global collector interval evicted by trace-span churn")
	}
}
