package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"dgr/internal/metrics"
)

// TestNilSafety exercises every recording path on a nil *Obs — the disabled
// layer must be a total no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var o *Obs
	o.TaskStart(0)
	o.TaskEnd(0, 1, 1, 2)
	o.PEIdle(0)
	o.FlushBatches()
	o.Span("x", "y", 0, 0, 0)
	o.Event(0, "k", 0, 0, "")
	o.SampleNow()
	o.StartSampler()
	o.Close()
	if o.Now() != 0 || o.PEs() != 0 || o.Spans() != nil || o.FlightEvents() != nil || o.Series() != nil {
		t.Fatal("nil Obs returned non-zero data")
	}
	if err := o.WriteSpansJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteFlightJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanRingAndJSONL(t *testing.T) {
	o := New(Options{PEs: 2, SpanCapacity: 4})
	for i := 0; i < 6; i++ {
		start := o.Now()
		o.Span("s", "cat", i, start, int64(i))
	}
	spans := o.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4 (capacity)", len(spans))
	}
	if spans[0].TID != 2 || spans[3].TID != 5 {
		t.Fatalf("ring kept wrong window: %+v", spans)
	}

	var buf bytes.Buffer
	if err := o.WriteSpansJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var ev struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if ev.Ph != "X" || ev.Name != "s" {
			t.Fatalf("bad chrome trace event: %+v", ev)
		}
	}
	if lines != 4 {
		t.Fatalf("JSONL lines = %d, want 4", lines)
	}
}

func TestTaskAccounting(t *testing.T) {
	o := New(Options{PEs: 2})
	for i := 0; i < 5; i++ {
		o.TaskStart(1)
		o.TaskEnd(1, 1, uint64(i), uint64(i+1))
	}
	// The batch is still open: no pe-batch span until idle.
	for _, s := range o.Spans() {
		if s.Name == "pe-batch" {
			t.Fatal("batch span recorded before PEIdle")
		}
	}
	o.PEIdle(1) // accrual point: counters become exact
	if o.Execs(1) != 5 {
		t.Fatalf("Execs = %d, want 5", o.Execs(1))
	}
	if o.Execs(0) != 0 {
		t.Fatalf("PE 0 executed nothing but Execs = %d", o.Execs(0))
	}
	if o.BusyNs(1) < 0 {
		t.Fatalf("negative busy time %d", o.BusyNs(1))
	}
	found := false
	for _, s := range o.Spans() {
		if s.Name == "pe-batch" && s.TID == 1 && s.N == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no pe-batch span with 5 tasks after PEIdle; spans: %+v", o.Spans())
	}
	// Idle with no open batch records nothing new.
	n := len(o.Spans())
	o.PEIdle(1)
	if len(o.Spans()) != n {
		t.Fatal("empty batch flushed into a span")
	}
}

func TestFlightRecorder(t *testing.T) {
	o := New(Options{PEs: 2, FlightCapacity: 8, KindNames: []string{"", "demand"}})
	o.Event(TIDCollector, "cycle.start", 0, 0, "n=1")
	for i := 0; i < 12; i++ { // overflow PE 0's shard
		o.TaskStart(0)
		o.TaskEnd(0, 1, uint64(i), uint64(i+100))
	}
	o.Event(TIDFabric, "fab.flush", 0, 0, "seq=1")
	evs := o.FlightEvents()
	// PE 0's shard retains the last 8 execs; the other shards keep their one
	// event each.
	var execs, coll, fab int
	for _, e := range evs {
		switch {
		case e.Kind == "demand":
			execs++
		case e.PE == TIDCollector:
			coll++
		case e.PE == TIDFabric:
			fab++
		}
	}
	if execs != 8 || coll != 1 || fab != 1 {
		t.Fatalf("execs=%d coll=%d fab=%d, want 8/1/1", execs, coll, fab)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatal("flight events not merged in timestamp order")
		}
	}
	var buf bytes.Buffer
	if err := o.WriteFlightJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(evs) {
		t.Fatalf("JSONL lines = %d, want %d", got, len(evs))
	}
}

func TestSeriesSamplingAndQuantiles(t *testing.T) {
	depth := 0
	o := New(Options{
		PEs:            1,
		SeriesCapacity: 4,
		Sources: Sources{
			QueueDepths: func(pe int) [Bands]int { return [Bands]int{depth, 0, 0, 0} },
			FreeOf:      func(part int) int { return 10 },
			FreeTotal:   func() int { return 10 },
			Heap:        func() int { return 20 },
			Inflight:    func() int64 { return 3 },
			Cycles:      func() int64 { return 7 },
		},
	})
	for i := 0; i < 6; i++ { // wrap the 4-sample ring
		depth = i * 10
		o.SampleNow()
	}
	snap := o.Series()
	if len(snap.PE[0]) != 4 || len(snap.Mach) != 4 {
		t.Fatalf("retained %d/%d samples, want 4", len(snap.PE[0]), len(snap.Mach))
	}
	// Oldest retained sample is i=2 (depth 20), newest i=5 (depth 50).
	if snap.PE[0][0].Bands[0] != 20 || snap.PE[0][3].Bands[0] != 50 {
		t.Fatalf("ring window wrong: %+v", snap.PE[0])
	}
	sum := snap.Summary[0]
	if sum.Samples != 4 || sum.DepthMax != 50 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.DepthP50 != 30 || sum.DepthP95 != 50 {
		t.Fatalf("quantiles p50=%d p95=%d, want 30/50", sum.DepthP50, sum.DepthP95)
	}
	if snap.Mach[3].Inflight != 3 || snap.Mach[3].Cycles != 7 || snap.Mach[3].Heap != 20 {
		t.Fatalf("machine sample = %+v", snap.Mach[3])
	}
}

func TestSamplerGoroutine(t *testing.T) {
	o := New(Options{PEs: 1, Parallel: true, SampleEvery: time.Millisecond})
	o.StartSampler()
	deadline := time.Now().Add(2 * time.Second)
	for len(o.Series().Mach) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no samples")
		}
		time.Sleep(time.Millisecond)
	}
	o.Close()
	n := len(o.Series().Mach)
	time.Sleep(5 * time.Millisecond)
	if len(o.Series().Mach) != n {
		t.Fatal("sampler still running after Close")
	}
}

// TestConcurrentRecording drives every shard concurrently under -race.
func TestConcurrentRecording(t *testing.T) {
	o := New(Options{PEs: 4, Parallel: true})
	var wg sync.WaitGroup
	for pe := 0; pe < 4; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.TaskStart(pe)
				o.TaskEnd(pe, 1, uint64(i), uint64(i))
				if i%100 == 0 {
					o.PEIdle(pe)
				}
			}
			o.PEIdle(pe)
		}(pe)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			o.Event(TIDCollector, "cycle", 0, 0, "")
			o.Span("M_R", "collector", TIDCollector, o.Now(), 1)
			o.series.sample()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			o.Series()
			o.FlightEvents()
			o.Spans()
		}
	}()
	wg.Wait()
	total := int64(0)
	for pe := 0; pe < 4; pe++ {
		total += o.Execs(pe)
	}
	if total != 2000 {
		t.Fatalf("execs = %d, want 2000", total)
	}
}

func TestWritePrometheus(t *testing.T) {
	var hist metrics.Counters
	hist.FabricLatency.Observe(3)
	hist.FabricLatency.Observe(100)
	s := hist.Snapshot()
	s.TasksExecuted = 42
	s.FabricSent = 2

	var buf bytes.Buffer
	err := WritePrometheus(&buf, PromData{
		Stats:       s,
		PEs:         2,
		Heap:        100,
		Free:        60,
		FreePerPart: []int{30, 30},
		Inflight:    5,
		PoolBands:   [][Bands]int{{1, 0, 2, 0}, {0, 0, 0, 3}},
		Utils:       []float64{0.5, 0.25},
		ExecsPerPE:  []int64{21, 21},
		Tenants: []TenantProm{{
			Name: "alice", Requests: 7, Admitted: 6, Completed: 5, Failed: 1,
			RejectedQuota: 1, CacheHits: 2, CacheMisses: 4,
			Inflight: 1, ChargedVertices: 2048, VertexQuota: 32768,
			LatencyP50Us: 120, LatencyP95Us: 900,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dgr_tasks_executed_total 42",
		"dgr_free_vertices 60",
		`dgr_partition_free_vertices{part="1"} 30`,
		`dgr_pe_queue_depth{pe="0",band="vital"} 2`,
		`dgr_pe_queue_depth{pe="1",band="marking"} 3`,
		`dgr_pe_utilization{pe="1"} 0.250000`,
		`dgr_pe_tasks_executed_total{pe="0"} 21`,
		"dgr_fabric_latency_us_count 2",
		"# TYPE dgr_tasks_executed_total counter",
		"# TYPE dgr_inflight_tasks gauge",
		`dgr_tenant_requests_total{tenant="alice"} 7`,
		`dgr_tenant_rejected_quota_total{tenant="alice"} 1`,
		`dgr_tenant_cache_hits_total{tenant="alice"} 2`,
		`dgr_tenant_charged_vertices{tenant="alice"} 2048`,
		`dgr_tenant_latency_p95_us{tenant="alice"} 900`,
		"# TYPE dgr_tenant_requests_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Histogram buckets must be cumulative.
	if !strings.Contains(out, `dgr_fabric_latency_us_bucket{le="+Inf"} 2`) {
		t.Error("histogram +Inf bucket wrong")
	}
}
