package lang

import (
	"fmt"
	"math/rand"
	"testing"

	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/reduce"
	"dgr/internal/sched"
)

// runOnEngine compiles src and reduces it on a deterministic machine,
// returning the value (ok=false when the computation produced none, e.g.
// deadlock) and any runtime errors.
func runOnEngine(t *testing.T, src string, pes int, seed int64, speculative bool) (reduce.Value, bool, []error) {
	t.Helper()
	store := graph.NewStore(graph.Config{Partitions: pes, Capacity: 4096})
	counters := &metrics.Counters{}
	mach := sched.New(sched.Config{
		PEs: pes, Mode: sched.Deterministic, Seed: seed,
		PartOf: store.PartitionOf, Counters: counters,
	})
	marker := core.NewMarker(store, mach, counters)
	mut := core.NewMutator(store, marker, mach, counters)
	eng := reduce.New(store, mach, mut, reduce.Config{SpeculativeIf: speculative, Counters: counters})
	mach.SetHandler(core.NewDispatcher(marker, eng))

	root, err := CompileString(store, src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	ch := eng.Demand(root.ID)
	if _, ok := mach.RunToQuiescence(20_000_000); !ok {
		t.Fatalf("%q: machine did not quiesce", src)
	}
	select {
	case v := <-ch:
		return v, true, eng.Errors()
	default:
		return reduce.Value{}, false, eng.Errors()
	}
}

// engineInt asserts src reduces to an integer.
func engineInt(t *testing.T, src string, want int64) {
	t.Helper()
	v, ok, errs := runOnEngine(t, src, 4, 1, false)
	if len(errs) != 0 {
		t.Fatalf("%q: runtime errors %v", src, errs)
	}
	if !ok {
		t.Fatalf("%q: no value", src)
	}
	if v.Kind != graph.KindInt || v.Int != want {
		t.Fatalf("%q = %v, want %d", src, v, want)
	}
}

func TestCompiledPrograms(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(\\x. x + 1) 41", 42},
		{"(\\x y. x * y) 6 7", 42},
		{"(\\f x. f (f x)) (\\x. x + 3) 0", 6},
		{"let fac n = if n == 0 then 1 else n * fac (n - 1) in fac 10", 3628800},
		{"let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 12", 144},
		{"let twice f x = f (f x) in twice (\\x. x + 1) 5", 7},
		{"let compose f g x = f (g x) in compose neg neg 3", 3},
		{"head [5, bottom]", 5},
		{"let k x y = x in k 3 bottom", 3},
		{"let ones = 1 : ones in head (tail ones)", 1},
		{"fix (\\f. \\n. if n == 0 then 1 else n * f (n - 1)) 5", 120},
		{"seq (1 + 1) 9", 9},
		{"spec bottom 9", 9},
		{"par (1 + 1) 9", 9},
		{`let map f xs = if isnil xs then [] else f (head xs) : map f (tail xs);
		      sum xs = if isnil xs then 0 else head xs + sum (tail xs)
		  in sum (map (\x. x * x) [1,2,3,4])`, 30},
		{`let even n = if n == 0 then 1 else odd (n - 1);
		      odd n = if n == 0 then 0 else even (n - 1)
		  in even 10`, 1},
		{`let take n xs = if n == 0 then [] else head xs : take (n - 1) (tail xs);
		      nats = let from n = n : from (n + 1) in from 0;
		      sum xs = if isnil xs then 0 else head xs + sum (tail xs)
		  in sum (take 10 nats)`, 45},
		{"let x = 3; y = x + x in y * x", 18},
		// Inner lets capturing lambda parameters (desugared to
		// applications; self-recursive ones via fix).
		{"let f n = let a = n + 1 in a * a in f 4", 25},
		{"let f n = let a = n + 1; b = a + n in a * b in f 3", 28},
		{"let g n = let loop k = if k == 0 then 0 else n + loop (k - 1) in loop 3 in g 5", 15},
		{`let fib n = if n < 2 then n
		            else let a = fib (n - 1); b = fib (n - 2) in a + b
		  in fib 12`, 144},
	}
	for _, tt := range tests {
		t.Run(tt.src[:min(20, len(tt.src))], func(t *testing.T) {
			engineInt(t, tt.src, tt.want)
		})
	}
}

func TestCompiledProgramsSpeculative(t *testing.T) {
	// With speculative if, dead branches must not change results — even
	// when the dead branch is ⊥ (the speculation goes quiet, the chosen
	// branch wins).
	tests := []struct {
		src  string
		want int64
	}{
		{"if 1 < 2 then 10 else bottom", 10},
		{"if 2 < 1 then bottom else 20", 20},
	}
	for _, tt := range tests {
		for seed := int64(0); seed < 5; seed++ {
			v, ok, errs := runOnEngine(t, tt.src, 4, seed, true)
			if len(errs) != 0 {
				t.Fatalf("%q seed %d: errors %v", tt.src, seed, errs)
			}
			if !ok || v.Int != tt.want {
				t.Fatalf("%q seed %d = %v (ok=%v), want %d", tt.src, seed, v, ok, tt.want)
			}
		}
	}
}

// TestSpeculativeRecursionNeedsGC demonstrates §3.2 item 3 end-to-end:
// speculating the else branch of fac recurses on n-1 forever (fac(-1),
// fac(-2), ...), an unbounded irrelevant workload. Without the collector
// the machine never quiesces; with mark/restructure cycles expunging
// irrelevant tasks (Property 6), the computation converges to the right
// answer.
func TestSpeculativeRecursionNeedsGC(t *testing.T) {
	src := "let fac n = if n == 0 then 1 else n * fac (n - 1) in fac 8"

	store := graph.NewStore(graph.Config{Partitions: 4, Capacity: 4096})
	counters := &metrics.Counters{}
	mach := sched.New(sched.Config{
		PEs: 4, Mode: sched.Deterministic, Seed: 7,
		PartOf: store.PartitionOf, Counters: counters,
	})
	marker := core.NewMarker(store, mach, counters)
	mut := core.NewMutator(store, marker, mach, counters)
	eng := reduce.New(store, mach, mut, reduce.Config{SpeculativeIf: true, Counters: counters})
	mach.SetHandler(core.NewDispatcher(marker, eng))

	root, err := CompileString(store, src)
	if err != nil {
		t.Fatal(err)
	}
	col := core.NewCollector(store, marker, mach, counters, core.CollectorConfig{Root: root.ID})

	ch := eng.Demand(root.ID)
	done := false
	for i := 0; i < 400 && !done; i++ {
		mach.RunUntil(func() bool { return len(ch) > 0 }, 3000)
		select {
		case v := <-ch:
			if v.Kind != graph.KindInt || v.Int != 40320 {
				t.Fatalf("fac 8 = %v, want 40320", v)
			}
			done = true
		default:
			col.RunCycle()
		}
	}
	if !done {
		t.Fatal("speculative fac did not converge even with GC")
	}
	if errs := eng.Errors(); len(errs) != 0 {
		t.Fatalf("runtime errors: %v", errs)
	}
	// After the value arrives, the remaining speculative work is all
	// irrelevant; GC cycles expunge it and the machine drains. Without
	// expunging it would spin forever (fac(-1), fac(-2), ...).
	for i := 0; i < 100 && mach.Inflight() > 0; i++ {
		mach.RunUntil(func() bool { return false }, 3000)
		col.RunCycle()
	}
	if mach.Inflight() != 0 {
		t.Fatalf("machine still busy after GC cycles: %d tasks", mach.Inflight())
	}
	if counters.Expunged.Load() == 0 {
		t.Fatal("expected irrelevant tasks to have been expunged")
	}
}

func TestCompiledDeadlock(t *testing.T) {
	v, ok, errs := runOnEngine(t, "let x = x + 1 in x", 2, 1, false)
	if ok {
		t.Fatalf("x=x+1 produced %v", v)
	}
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

func TestBracketAbstractionStructure(t *testing.T) {
	// η-optimization: \x. f x compiles to just f.
	c := NewCompiler(graph.NewStore(graph.Config{Partitions: 1, Capacity: 64}))
	tm, err := c.toTerm(mustParse(t, "\\x. neg x"), map[string]term{})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := tm.(tPrim); !ok || p.p != graph.PrimNeg {
		t.Fatalf("eta-reduction failed: %T %v", tm, tm)
	}
	// K-optimization: \x. 5 is K 5.
	term2, _ := c.toTerm(mustParse(t, "\\x. 5"), map[string]term{})
	app, ok := term2.(tApp)
	if !ok {
		t.Fatalf("\\x.5 = %T", term2)
	}
	if cb, ok := app.fun.(tComb); !ok || cb.c != graph.CombK {
		t.Fatal("\\x.5 should compile to K 5")
	}
	// Identity: \x. x is I.
	term3, _ := c.toTerm(mustParse(t, "\\x. x"), map[string]term{})
	if cb, ok := term3.(tComb); !ok || cb.c != graph.CombI {
		t.Fatalf("\\x.x = %v", term3)
	}
}

func TestCompileErrors(t *testing.T) {
	store := graph.NewStore(graph.Config{Partitions: 1, Capacity: 64})
	if _, err := CompileString(store, "unboundvar"); err == nil {
		t.Fatal("unbound variable should fail compilation")
	}
	if _, err := CompileString(store, "1 +"); err == nil {
		t.Fatal("parse error should surface")
	}
}

// genProgram generates a random closed integer-valued program together
// with let-bound unary integer functions, by construction type-correct.
type progGen struct {
	rng  *rand.Rand
	vars []string // in-scope int variables
	funs []string // in-scope unary int→int functions
}

func (g *progGen) intExpr(depth int) string {
	if depth <= 0 {
		if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
			return g.vars[g.rng.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.rng.Intn(20))
	}
	switch g.rng.Intn(7) {
	case 0, 1:
		ops := []string{"+", "-", "*"}
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1),
			ops[g.rng.Intn(len(ops))], g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(if %s then %s else %s)",
			g.boolExpr(depth-1), g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		if len(g.funs) > 0 {
			return fmt.Sprintf("(%s %s)", g.funs[g.rng.Intn(len(g.funs))], g.intExpr(depth-1))
		}
		return g.intExpr(depth - 1)
	case 4:
		// immediately applied lambda
		v := fmt.Sprintf("v%d", len(g.vars))
		g.vars = append(g.vars, v)
		body := g.intExpr(depth - 1)
		g.vars = g.vars[:len(g.vars)-1]
		return fmt.Sprintf("((\\%s. %s) %s)", v, body, g.intExpr(depth-1))
	case 5:
		return fmt.Sprintf("(neg %s)", g.intExpr(depth-1))
	default:
		return g.intExpr(depth - 1)
	}
}

func (g *progGen) boolExpr(depth int) string {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return "true"
		}
		return "false"
	}
	switch g.rng.Intn(4) {
	case 0:
		cmps := []string{"==", "/=", "<", "<=", ">", ">="}
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1),
			cmps[g.rng.Intn(len(cmps))], g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(not %s)", g.boolExpr(depth-1))
	}
}

func (g *progGen) program() string {
	// A couple of simple unary functions, then an int expression.
	g.funs = []string{"half", "sq"}
	body := g.intExpr(3 + g.rng.Intn(2))
	return fmt.Sprintf("let half x = x / 2; sq x = x * x in %s", body)
}

// TestDifferentialRandomPrograms cross-validates the combinator compiler +
// distributed reduction engine against the reference interpreter on random
// programs.
func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		src := g.program()

		want, err := NewInterp(2_000_000).EvalString(src)
		if err != nil {
			t.Fatalf("seed %d: interpreter failed on %q: %v", seed, src, err)
		}
		wi, ok := want.(IInt)
		if !ok {
			t.Fatalf("seed %d: interpreter value %T", seed, want)
		}

		for _, spec := range []bool{false, true} {
			v, got, errs := runOnEngine(t, src, 1+int(seed%4), seed, spec)
			if len(errs) != 0 {
				t.Fatalf("seed %d spec=%v: engine errors %v on %q", seed, spec, errs, src)
			}
			if !got {
				t.Fatalf("seed %d spec=%v: engine produced no value on %q", seed, spec, src)
			}
			if v.Kind != graph.KindInt || v.Int != int64(wi) {
				t.Fatalf("seed %d spec=%v: engine=%v interp=%d on %q", seed, spec, v, wi, src)
			}
		}
	}
}

func TestInnerLetMutualRecursionRejected(t *testing.T) {
	store := graph.NewStore(graph.Config{Partitions: 1, Capacity: 256})
	// even captures the enclosing parameter n AND references the later
	// binding odd: not expressible by either compilation strategy.
	src := `let f n = let even k = if k == 0 then n else odd (k - 1);
	                      odd k = even (k - 1)
	                  in even 4
	        in f 9`
	if _, err := CompileString(store, src); err == nil {
		t.Fatal("mutual recursion in a parameter-capturing let should be rejected")
	}
	// Without capture, mutual recursion is fine (graph knots).
	ok := `let even k = if k == 0 then true else odd (k - 1);
	           odd k = if k == 0 then false else even (k - 1)
	       in even 4`
	if _, err := CompileString(store, ok); err != nil {
		t.Fatalf("parameter-free mutual recursion should compile: %v", err)
	}
}

func TestInnerLetDifferential(t *testing.T) {
	// The desugared let path must agree with the interpreter.
	srcs := []string{
		"let f n = let a = n * 2 in a + a in f 7",
		"let f x y = let s = x + y; d = x - y in s * d in f 9 4",
		"(\\n. let sq = n * n in sq + 1) 6",
	}
	for _, src := range srcs {
		want, err := NewInterp(100000).EvalString(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		v, ok, errs := runOnEngine(t, src, 2, 1, false)
		if len(errs) != 0 || !ok {
			t.Fatalf("%q: ok=%v errs=%v", src, ok, errs)
		}
		if v.Int != int64(want.(IInt)) {
			t.Fatalf("%q: engine=%d interp=%d", src, v.Int, int64(want.(IInt)))
		}
	}
}
