package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// lexError reports a lexical error with position info.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("line %d: %s", e.line, e.msg)
}

// lex tokenizes src. Comments run from "--" or "#" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' || (c == '-' && i+1 < n && src[i+1] == '-'):
			for i < n && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{kind: tokInt, text: src[i:j], pos: i, line: line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			text := src[i:j]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: text, pos: i, line: line})
			i = j
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i, line: line})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i, line: line})
			i++
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, text: "[", pos: i, line: line})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, text: "]", pos: i, line: line})
			i++
		default:
			op, ok := lexOp(src[i:])
			if !ok {
				return nil, &lexError{line: line, msg: fmt.Sprintf("unexpected character %q", c)}
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i, line: line})
			i += len(op)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: i, line: line})
	return toks, nil
}

// operators, longest first so prefixes match correctly.
var operators = []string{
	"==", "/=", "<=", ">=", "&&", "||",
	"+", "-", "*", "/", "%", "<", ">", ":", "=", ".", "\\", ";", ",",
}

func lexOp(s string) (string, bool) {
	for _, op := range operators {
		if strings.HasPrefix(s, op) {
			return op, true
		}
	}
	return "", false
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}
