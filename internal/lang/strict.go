package lang

import (
	"dgr/internal/graph"
)

// Strictness analysis over a lifted program: which parameters does each
// supercombinator certainly force on every path to WHNF of its body?
// The engine uses the result to demand strict operands before executing a
// compiled body, which in turn lets body execution constant-fold
// arithmetic, comparisons, and branch selection over the (now known)
// operand values.
//
// The analysis is the standard Mycroft iteration adapted to the lifted
// form: start from the bottom assumption (every supercombinator strict in
// every parameter — the ⊥ function is strict), recompute each body's
// needed-set under the current assumptions, and repeat until the masks
// stop changing. The chain is decreasing, so it terminates; the fixpoint
// conflates all bottoms (a deadlocked and a diverging operand are both ⊥),
// which is exactly the equivalence the machine's semantics grants.

// primStrict maps a primitive to its per-argument strictness. Primitives
// absent from the table contribute nothing (conservative). isbottom is
// deliberately absent: its deadlock probe must be registered by the
// primapp itself before its operand is demanded, so hoisting the demand
// to a caller would change which vertex the verdict lands on.
var primStrict = map[graph.Prim][]bool{
	graph.PrimAdd:    {true, true},
	graph.PrimSub:    {true, true},
	graph.PrimMul:    {true, true},
	graph.PrimDiv:    {true, true},
	graph.PrimMod:    {true, true},
	graph.PrimEq:     {true, true},
	graph.PrimNe:     {true, true},
	graph.PrimLt:     {true, true},
	graph.PrimLe:     {true, true},
	graph.PrimGt:     {true, true},
	graph.PrimGe:     {true, true},
	graph.PrimAnd:    {true, true},
	graph.PrimOr:     {true, true},
	graph.PrimNot:    {true},
	graph.PrimNeg:    {true},
	graph.PrimHead:   {true},
	graph.PrimTail:   {true},
	graph.PrimIsNil:  {true},
	graph.PrimIsPair: {true},
	graph.PrimSeq:    {true, true},
	graph.PrimPar:    {true, true},
	graph.PrimIf:     {true, false, false},
}

// strictMasks computes the per-parameter strictness mask of every
// supercombinator in the lifted program.
func strictMasks(sc *SCProg) map[string][]bool {
	assume := make(map[string][]bool, len(sc.Supers))
	for _, s := range sc.Supers {
		mask := make([]bool, s.Arity())
		for i := range mask {
			mask[i] = true
		}
		assume[s.Name] = mask
	}
	for round := 0; round < 20; round++ {
		changed := false
		for _, s := range sc.Supers {
			params := make(map[string]int, s.Arity())
			for i, p := range s.Params {
				params[p] = i
			}
			need := neededParams(s.Body, params, map[string]bool{}, assume)
			mask := assume[s.Name]
			for i := range mask {
				if mask[i] && !need[i] {
					mask[i] = false
					changed = true
				}
			}
		}
		if !changed {
			return assume
		}
	}
	// Safety valve: no fixpoint within the bound — claim nothing.
	for name, mask := range assume {
		for i := range mask {
			mask[i] = false
		}
		assume[name] = mask
	}
	return assume
}

// neededParams returns the parameter indices that WHNF of e certainly
// forces. params maps in-scope parameter names to indices; shadow holds
// names rebound by residual lets (treated as opaque — forcing a shared
// knot contributes nothing claimable about parameters).
func neededParams(e Expr, params map[string]int, shadow map[string]bool, assume map[string][]bool) map[int]bool {
	out := map[int]bool{}
	switch x := e.(type) {
	case Var:
		if shadow[x.Name] {
			return out
		}
		if i, ok := params[x.Name]; ok {
			out[i] = true
		}
		return out
	case IntLit, BoolLit, NilLit, Lam:
		return out
	case If:
		out = neededParams(x.Cond, params, shadow, assume)
		t := neededParams(x.Then, params, shadow, assume)
		el := neededParams(x.Else, params, shadow, assume)
		for i := range t {
			if el[i] {
				out[i] = true
			}
		}
		return out
	case Let:
		inner := copyBound(shadow)
		for _, b := range x.Binds {
			inner[b.Name] = true
		}
		return neededParams(x.Body, params, inner, assume)
	case App:
		head, args := spine(x)
		var strict []bool
		switch h := head.(type) {
		case Var:
			if shadow[h.Name] {
				return out
			}
			if i, ok := params[h.Name]; ok {
				// Calling an unknown function forces the function itself,
				// nothing claimable about its arguments.
				out[i] = true
				return out
			}
			if mask, ok := assume[h.Name]; ok {
				if len(args) < len(mask) {
					return out // partial application: already WHNF
				}
				strict = mask
			} else if k, val, ok := Builtin(h.Name); ok && k == graph.KindPrim {
				mask := primStrict[graph.Prim(val)]
				if len(args) < len(mask) {
					return out
				}
				strict = mask
			} else {
				return out
			}
		default:
			// An If/Let in head position: the head is forced.
			out = neededParams(head, params, shadow, assume)
		}
		for i, s := range strict {
			if !s || i >= len(args) {
				continue
			}
			for p := range neededParams(args[i], params, shadow, assume) {
				out[p] = true
			}
		}
		return out
	default:
		return out
	}
}
