package lang

import (
	"bufio"
	"os"
	"strings"
	"testing"
)

// TestDigestWhitespaceAndComments: sources that differ only in layout,
// comments, or redundant parentheses parse to the same tree and therefore
// share a digest.
func TestDigestWhitespaceAndComments(t *testing.T) {
	variants := []string{
		"let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 16",
		"let fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)\nin fib 16",
		`-- naive fibonacci
		let fib n =
		      if n < 2      # base case
		      then n
		      else fib (n-1) + fib (n-2)
		in fib 16`,
		"let fib n = (if (n < 2) then n else ((fib (n-1)) + (fib (n-2)))) in (fib 16)",
	}
	want, err := DigestString(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range variants[1:] {
		got, err := DigestString(src)
		if err != nil {
			t.Fatalf("variant %d: %v", i+1, err)
		}
		if got != want {
			t.Errorf("variant %d digest = %s, want %s", i+1, got, want)
		}
	}
}

// TestDigestDistinguishesPrograms: structurally distinct programs — and
// near-misses that could alias under a sloppy serialization — get distinct
// digests.
func TestDigestDistinguishesPrograms(t *testing.T) {
	srcs := []string{
		"1",
		"2",
		"true",
		"false",
		"[]",
		"1 + 2",
		"2 + 1",
		"(1 + 2) * 3",
		"1 + (2 * 3)",
		"\\x. x",
		"\\x y. x",
		"\\x. \\y. x", // same combinator, different surface arity split
		"let x = 1 in x",
		"let x = 1; y = 1 in x",
		"let xy = 1 in xy", // name-boundary near-miss vs the two-binding let
		"if true then 1 else 2",
		"if true then 2 else 1",
		"let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 16",
		"let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 17",
	}
	seen := map[string]string{}
	for _, src := range srcs {
		d, err := DigestString(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision: %q and %q both hash to %s", prev, src, d)
		}
		seen[d] = src
	}
}

func TestDigestParseError(t *testing.T) {
	if _, err := DigestString("let = in"); err == nil {
		t.Fatal("expected parse error")
	}
}

// TestDigestGolden pins the digest format: a changed serialization would
// silently split the serving layer's memo cache across versions, so any
// intentional format change must update testdata/digest.golden.
func TestDigestGolden(t *testing.T) {
	f, err := os.Open("testdata/digest.golden")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		want, src, ok := strings.Cut(text, "  ")
		if !ok {
			t.Fatalf("digest.golden:%d: malformed line %q", line, text)
		}
		got, err := DigestString(src)
		if err != nil {
			t.Fatalf("digest.golden:%d: %v", line, err)
		}
		if got != want {
			t.Errorf("digest.golden:%d: DigestString(%q) = %s, want %s", line, src, got, want)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}
