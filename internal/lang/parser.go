package lang

import "fmt"

// Parse parses a program (one expression) from source text.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

type parser struct {
	toks  []token
	i     int
	depth int
}

// maxParseDepth bounds expression nesting. Every nesting construct
// (parens, list brackets, lambda/let/if bodies, operator operands) routes
// through expr, so the guard caps parser recursion: pathological inputs
// like a megabyte of "(" fail cleanly instead of exhausting the stack.
const maxParseDepth = 4096

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectOp(op string) error {
	t := p.peek()
	if t.kind != tokOp || t.text != op {
		return p.errf("expected %q, found %q", op, t.text)
	}
	p.next()
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf("expected %q, found %q", kw, t.text)
	}
	p.next()
	return nil
}

// expr := lambda | let | if | binary
func (p *parser) expr() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, p.errf("expression nested deeper than %d", maxParseDepth)
	}
	t := p.peek()
	switch {
	case t.kind == tokOp && t.text == "\\":
		return p.lambda()
	case t.kind == tokKeyword && t.text == "let":
		return p.let()
	case t.kind == tokKeyword && t.text == "if":
		return p.ifExpr()
	default:
		return p.binary(0)
	}
}

func (p *parser) lambda() (Expr, error) {
	p.next() // backslash
	var params []string
	for p.peek().kind == tokIdent {
		params = append(params, p.next().text)
	}
	if len(params) == 0 {
		return nil, p.errf("lambda needs at least one parameter")
	}
	if err := p.expectOp("."); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	return Lam{Params: params, Body: body}, nil
}

func (p *parser) let() (Expr, error) {
	p.next() // let
	var binds []Bind
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected binding name, found %q", t.text)
		}
		name := p.next().text
		// Sugar: let f x y = e  ≡  let f = \x y. e
		var params []string
		for p.peek().kind == tokIdent {
			params = append(params, p.next().text)
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		if len(params) > 0 {
			val = Lam{Params: params, Body: val}
		}
		binds = append(binds, Bind{Name: name, Val: val})
		if t := p.peek(); t.kind == tokOp && t.text == ";" {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	return Let{Binds: binds, Body: body}, nil
}

func (p *parser) ifExpr() (Expr, error) {
	p.next() // if
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	thn, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.expr()
	if err != nil {
		return nil, err
	}
	return If{Cond: cond, Then: thn, Else: els}, nil
}

// binOp describes an infix operator.
type binOp struct {
	prec       int
	rightAssoc bool
	builtin    string // prefix builtin it desugars to
}

var binOps = map[string]binOp{
	"||": {prec: 1, builtin: "or"},
	"&&": {prec: 2, builtin: "and"},
	"==": {prec: 3, builtin: "__eq"},
	"/=": {prec: 3, builtin: "__ne"},
	"<":  {prec: 3, builtin: "__lt"},
	"<=": {prec: 3, builtin: "__le"},
	">":  {prec: 3, builtin: "__gt"},
	">=": {prec: 3, builtin: "__ge"},
	":":  {prec: 4, rightAssoc: true, builtin: "cons"},
	"+":  {prec: 5, builtin: "__add"},
	"-":  {prec: 5, builtin: "__sub"},
	"*":  {prec: 6, builtin: "__mul"},
	"/":  {prec: 6, builtin: "__div"},
	"%":  {prec: 6, builtin: "__mod"},
}

// binary parses infix expressions by precedence climbing. It carries its
// own depth guard: right-associative chains (`1:2:3:...`) recurse here
// without passing through expr.
func (p *parser) binary(minPrec int) (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, p.errf("expression nested deeper than %d", maxParseDepth)
	}
	lhs, err := p.application()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return lhs, nil
		}
		op, ok := binOps[t.text]
		if !ok || op.prec < minPrec {
			return lhs, nil
		}
		p.next()
		nextMin := op.prec + 1
		if op.rightAssoc {
			nextMin = op.prec
		}
		var rhs Expr
		// Allow lambda/let/if directly on the right of an operator.
		switch pt := p.peek(); {
		case pt.kind == tokOp && pt.text == "\\":
			rhs, err = p.lambda()
		case pt.kind == tokKeyword && (pt.text == "let" || pt.text == "if"):
			rhs, err = p.expr()
		default:
			rhs, err = p.binary(nextMin)
		}
		if err != nil {
			return nil, err
		}
		lhs = apps(Var{Name: op.builtin}, lhs, rhs)
	}
}

// application := atom atom*
func (p *parser) application() (Expr, error) {
	f, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.startsAtom() {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		f = App{Fun: f, Arg: a}
	}
	return f, nil
}

func (p *parser) startsAtom() bool {
	t := p.peek()
	switch t.kind {
	case tokInt, tokIdent, tokLParen, tokLBracket:
		return true
	case tokKeyword:
		return t.text == "true" || t.text == "false"
	default:
		return false
	}
}

func (p *parser) atom() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		var n int64
		for _, c := range t.text {
			n = n*10 + int64(c-'0')
		}
		return IntLit{Val: n}, nil
	case tokIdent:
		p.next()
		return Var{Name: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "true":
			p.next()
			return BoolLit{Val: true}, nil
		case "false":
			p.next()
			return BoolLit{Val: false}, nil
		}
		return nil, p.errf("unexpected keyword %q", t.text)
	case tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errf("expected ')', found %q", p.peek().text)
		}
		p.next()
		return e, nil
	case tokLBracket:
		return p.list()
	default:
		return nil, p.errf("unexpected %q", t.text)
	}
}

// list := '[' (expr (',' expr)*)? ']'  — sugar for cons chains.
func (p *parser) list() (Expr, error) {
	p.next() // [
	var elems []Expr
	if p.peek().kind != tokRBracket {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if t := p.peek(); t.kind == tokOp && t.text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if p.peek().kind != tokRBracket {
		return nil, p.errf("expected ']', found %q", p.peek().text)
	}
	p.next()
	var lst Expr = NilLit{}
	for i := len(elems) - 1; i >= 0; i-- {
		lst = apps(Var{Name: "cons"}, elems[i], lst)
	}
	return lst, nil
}
