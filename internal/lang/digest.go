package lang

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"strconv"
)

// Digest returns a canonical SHA-256 digest (hex) of an expression. The
// digest is computed over a tagged pre-order serialization of the AST, so
// two sources that parse to the same tree — regardless of whitespace,
// comments, or redundant parentheses — share a digest, while structurally
// distinct programs get distinct digests. The serving layer's memo cache
// keys normal forms by this value; its format is pinned by the golden file
// in testdata (changing it silently would split caches across versions).
func Digest(e Expr) string {
	h := sha256.New()
	writeExpr(h, e)
	return hex.EncodeToString(h.Sum(nil))
}

// DigestString parses src and returns its canonical digest.
func DigestString(src string) (string, error) {
	e, err := Parse(src)
	if err != nil {
		return "", err
	}
	return Digest(e), nil
}

// writeExpr emits a self-delimiting encoding: every node writes a one-byte
// tag, and variable-length payloads (names, binding lists) are length-
// prefixed so concatenations of sibling encodings cannot collide.
func writeExpr(h hash.Hash, e Expr) {
	switch x := e.(type) {
	case Var:
		writeTagged(h, 'V', x.Name)
	case IntLit:
		writeTagged(h, 'I', strconv.FormatInt(x.Val, 10))
	case BoolLit:
		if x.Val {
			writeTagged(h, 'B', "t")
		} else {
			writeTagged(h, 'B', "f")
		}
	case NilLit:
		writeTagged(h, 'N', "")
	case App:
		writeTagged(h, 'A', "")
		writeExpr(h, x.Fun)
		writeExpr(h, x.Arg)
	case If:
		writeTagged(h, 'C', "")
		writeExpr(h, x.Cond)
		writeExpr(h, x.Then)
		writeExpr(h, x.Else)
	case Lam:
		writeTagged(h, 'L', strconv.Itoa(len(x.Params)))
		for _, p := range x.Params {
			writeTagged(h, 'p', p)
		}
		writeExpr(h, x.Body)
	case Let:
		writeTagged(h, 'E', strconv.Itoa(len(x.Binds)))
		for _, b := range x.Binds {
			writeTagged(h, 'b', b.Name)
			writeExpr(h, b.Val)
		}
		writeExpr(h, x.Body)
	default:
		// Unknown node kinds must not silently alias an existing encoding.
		writeTagged(h, '?', fmt.Sprintf("%T", e))
	}
}

func writeTagged(h hash.Hash, tag byte, payload string) {
	fmt.Fprintf(h, "%c%d:%s", tag, len(payload), payload)
}
