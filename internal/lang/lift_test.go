package lang

import "testing"

// Lift builds a fresh supercombinator program; the input AST must come
// through untouched. The serving layer depends on this: a machine keys its
// memo cache on the canonical digest of the parsed program, then hands the
// same AST to the compiled back end — a mutating Lift would silently
// poison every digest computed after the first compiled run.
func TestLiftDoesNotMutateInput(t *testing.T) {
	srcs := []string{
		"let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 10",
		"let f = \\x. \\y. x + y in f 1 2",
		"let compose f g x = f (g x); inc n = n + 1 in compose inc inc 40",
		"let a = b + 1; b = a + 1 in a",
		"let upto a b = if a > b then [] else a : upto (a + 1) b in upto 1 5",
		"(\\x. x x) (\\x. 1)",
	}
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		before := Digest(e)
		if _, err := Lift(e); err != nil {
			t.Fatalf("lift %q: %v", src, err)
		}
		if after := Digest(e); after != before {
			t.Errorf("Lift mutated its input for %q: digest %s -> %s", src, before, after)
		}
	}

	// Generated programs sweep a wider range of shapes through the same
	// invariant.
	g := NewGen(4242, GenConfig{})
	for i := 0; i < 25; i++ {
		e, src, _ := g.Program()
		before := Digest(e)
		if _, err := Lift(e); err != nil {
			t.Fatalf("lift generated %q: %v", src, err)
		}
		if after := Digest(e); after != before {
			t.Errorf("Lift mutated generated program %q: digest %s -> %s", src, before, after)
		}
	}
}
