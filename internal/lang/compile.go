package lang

import (
	"fmt"

	"dgr/internal/graph"
)

// term is the compiler's intermediate representation: lambda-free
// applicative terms over graph leaves and still-to-abstract variables.
type term interface{ termNode() }

type tVar struct{ name string }
type tComb struct{ c graph.Comb }
type tPrim struct{ p graph.Prim }
type tInt struct{ n int64 }
type tBool struct{ v bool }
type tNil struct{}
type tLeaf struct{ v *graph.Vertex } // pre-allocated vertex (letrec holes)
type tApp struct{ fun, arg term }

func (tVar) termNode()  {}
func (tComb) termNode() {}
func (tPrim) termNode() {}
func (tInt) termNode()  {}
func (tBool) termNode() {}
func (tNil) termNode()  {}
func (tLeaf) termNode() {}
func (tApp) termNode()  {}

func ap(f, a term) term { return tApp{fun: f, arg: a} }

// builtins maps surface names to terms.
var builtins = map[string]term{
	"__add":    tPrim{p: graph.PrimAdd},
	"__sub":    tPrim{p: graph.PrimSub},
	"__mul":    tPrim{p: graph.PrimMul},
	"__div":    tPrim{p: graph.PrimDiv},
	"__mod":    tPrim{p: graph.PrimMod},
	"__eq":     tPrim{p: graph.PrimEq},
	"__ne":     tPrim{p: graph.PrimNe},
	"__lt":     tPrim{p: graph.PrimLt},
	"__le":     tPrim{p: graph.PrimLe},
	"__gt":     tPrim{p: graph.PrimGt},
	"__ge":     tPrim{p: graph.PrimGe},
	"and":      tPrim{p: graph.PrimAnd},
	"or":       tPrim{p: graph.PrimOr},
	"not":      tPrim{p: graph.PrimNot},
	"neg":      tPrim{p: graph.PrimNeg},
	"cons":     tPrim{p: graph.PrimCons},
	"head":     tPrim{p: graph.PrimHead},
	"tail":     tPrim{p: graph.PrimTail},
	"isnil":    tPrim{p: graph.PrimIsNil},
	"ispair":   tPrim{p: graph.PrimIsPair},
	"seq":      tPrim{p: graph.PrimSeq},
	"spec":     tPrim{p: graph.PrimSpec},
	"par":      tPrim{p: graph.PrimPar},
	"bottom":   tPrim{p: graph.PrimBottom},
	"isbottom": tPrim{p: graph.PrimIsBotOp},
	"fix":      tComb{c: graph.CombY},
}

// Builtin resolves a builtin surface name to its graph leaf label
// (KindPrim or KindComb). It is the compiled backend's view of the
// builtins table.
func Builtin(name string) (graph.Kind, int64, bool) {
	switch t := builtins[name].(type) {
	case tPrim:
		return graph.KindPrim, int64(t.p), true
	case tComb:
		return graph.KindComb, int64(t.c), true
	default:
		return 0, 0, false
	}
}

// Compiler translates expressions to combinator graphs.
type Compiler struct {
	store *graph.Store
	b     *graph.Builder
	combs map[graph.Comb]*graph.Vertex
	prims map[graph.Prim]*graph.Vertex
}

// NewCompiler builds a compiler allocating into store.
func NewCompiler(store *graph.Store) *Compiler {
	return &Compiler{
		store: store,
		b:     graph.NewBuilder(store, -1),
		combs: make(map[graph.Comb]*graph.Vertex),
		prims: make(map[graph.Prim]*graph.Vertex),
	}
}

// Compile translates an expression to a graph and returns its root vertex.
func (c *Compiler) Compile(e Expr) (*graph.Vertex, error) {
	t, err := c.toTerm(e, map[string]term{})
	if err != nil {
		return nil, err
	}
	v := c.emit(t)
	if err := c.b.Err(); err != nil {
		return nil, err
	}
	return v, nil
}

// CompileString parses and compiles a program.
func CompileString(store *graph.Store, src string) (*graph.Vertex, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return NewCompiler(store).Compile(e)
}

// toTerm desugars and bracket-abstracts an expression. env maps in-scope
// names to terms (tVar for lambda parameters, tLeaf holes for letrec
// bindings).
func (c *Compiler) toTerm(e Expr, env map[string]term) (term, error) {
	switch x := e.(type) {
	case Var:
		if t, ok := env[x.Name]; ok {
			return t, nil
		}
		if t, ok := builtins[x.Name]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("unbound variable %q", x.Name)
	case IntLit:
		return tInt{n: x.Val}, nil
	case BoolLit:
		return tBool{v: x.Val}, nil
	case NilLit:
		return tNil{}, nil
	case App:
		f, err := c.toTerm(x.Fun, env)
		if err != nil {
			return nil, err
		}
		a, err := c.toTerm(x.Arg, env)
		if err != nil {
			return nil, err
		}
		return ap(f, a), nil
	case If:
		cond, err := c.toTerm(x.Cond, env)
		if err != nil {
			return nil, err
		}
		thn, err := c.toTerm(x.Then, env)
		if err != nil {
			return nil, err
		}
		els, err := c.toTerm(x.Else, env)
		if err != nil {
			return nil, err
		}
		return ap(ap(ap(tPrim{p: graph.PrimIf}, cond), thn), els), nil
	case Lam:
		inner := copyEnv(env)
		for _, p := range x.Params {
			inner[p] = tVar{name: p}
		}
		body, err := c.toTerm(x.Body, inner)
		if err != nil {
			return nil, err
		}
		for i := len(x.Params) - 1; i >= 0; i-- {
			body = abstract(x.Params[i], body)
		}
		return body, nil
	case Let:
		// A binding that captures an enclosing lambda parameter cannot be
		// a static graph knot (its value differs per call); desugar such
		// lets to applications, with fix for self-recursive bindings.
		if capturesLambdaVar(x, env) {
			desugared, err := desugarLet(x)
			if err != nil {
				return nil, err
			}
			return c.toTerm(desugared, env)
		}
		// Otherwise the (possibly mutually recursive) bindings become
		// graph knots: each name is bound to a Hole vertex; binding bodies
		// are emitted and the holes back-patched to indirections, sharing
		// every binding's subgraph across all uses and calls.
		inner := copyEnv(env)
		holes := make([]*graph.Vertex, len(x.Binds))
		for i, b := range x.Binds {
			holes[i] = c.b.Hole()
			inner[b.Name] = tLeaf{v: holes[i]}
		}
		for i, b := range x.Binds {
			t, err := c.toTerm(b.Val, inner)
			if err != nil {
				return nil, err
			}
			c.b.Knot(holes[i], c.emit(t))
		}
		return c.toTerm(x.Body, inner)
	default:
		return nil, fmt.Errorf("unknown expression %T", e)
	}
}

// capturesLambdaVar reports whether any binding value of the let has a
// free variable that is currently bound to a lambda parameter (tVar).
func capturesLambdaVar(x Let, env map[string]term) bool {
	letNames := make(map[string]bool, len(x.Binds))
	for _, b := range x.Binds {
		letNames[b.Name] = true
	}
	for _, b := range x.Binds {
		free := map[string]bool{}
		freeVars(b.Val, copyBound(letNames), free)
		for name := range free {
			if _, isVar := env[name].(tVar); isVar {
				return true
			}
		}
	}
	return false
}

// desugarLet rewrites let x1 = e1; ...; xn = en in body into nested
// applications (\x1. ... (\xn. body) en' ...) e1', where a self-recursive
// ei becomes fix (\xi. ei). Forward and mutual references between the
// bindings are not expressible this way and are rejected.
func desugarLet(x Let) (Expr, error) {
	expr := x.Body
	for i := len(x.Binds) - 1; i >= 0; i-- {
		b := x.Binds[i]
		free := map[string]bool{}
		freeVars(b.Val, map[string]bool{}, free)
		for j := i + 1; j < len(x.Binds); j++ {
			if x.Binds[j].Name != b.Name && free[x.Binds[j].Name] {
				return nil, fmt.Errorf(
					"let binding %q refers to later binding %q while capturing a lambda parameter; mutual recursion is only supported for top-level (parameter-free) bindings",
					b.Name, x.Binds[j].Name)
			}
		}
		val := b.Val
		if free[b.Name] {
			val = App{Fun: Var{Name: "fix"}, Arg: Lam{Params: []string{b.Name}, Body: val}}
		}
		expr = App{Fun: Lam{Params: []string{b.Name}, Body: expr}, Arg: val}
	}
	return expr, nil
}

func copyEnv(env map[string]term) map[string]term {
	c := make(map[string]term, len(env))
	for k, v := range env {
		c[k] = v
	}
	return c
}

// occurs reports whether variable x appears free in t.
func occurs(x string, t term) bool {
	switch v := t.(type) {
	case tVar:
		return v.name == x
	case tApp:
		return occurs(x, v.fun) || occurs(x, v.arg)
	default:
		return false
	}
}

// abstract is Turner-style bracket abstraction of x out of t, producing a
// combinator term over S, K, I, B, C with the S', B', C' optimizations.
func abstract(x string, t term) term {
	if !occurs(x, t) {
		return ap(tComb{c: graph.CombK}, t)
	}
	switch v := t.(type) {
	case tVar: // occurs ⇒ v.name == x
		return tComb{c: graph.CombI}
	case tApp:
		fFree := occurs(x, v.fun)
		aFree := occurs(x, v.arg)
		switch {
		case fFree && aFree:
			fa := abstract(x, v.fun)
			aa := abstract(x, v.arg)
			// S (B k f) g → S' k f g
			if bk, k, f, ok := matchB(fa); ok && bk {
				return ap(ap(ap(tComb{c: graph.CombSP}, k), f), aa)
			}
			return ap(ap(tComb{c: graph.CombS}, fa), aa)
		case fFree:
			fa := abstract(x, v.fun)
			// C (B k f) g → C' k f g
			if bk, k, f, ok := matchB(fa); ok && bk {
				return ap(ap(ap(tComb{c: graph.CombCP}, k), f), v.arg)
			}
			return ap(ap(tComb{c: graph.CombC}, fa), v.arg)
		default: // aFree
			// η-reduction: λx. f x = f when x ∉ f.
			if av, ok := v.arg.(tVar); ok && av.name == x {
				return v.fun
			}
			aa := abstract(x, v.arg)
			// B (k f) g → B' k f g
			if ka, ok := v.fun.(tApp); ok {
				return ap(ap(ap(tComb{c: graph.CombBP}, ka.fun), ka.arg), aa)
			}
			return ap(ap(tComb{c: graph.CombB}, v.fun), aa)
		}
	default:
		// Unreachable: occurs(x, t) is false for every non-var, non-app.
		return ap(tComb{c: graph.CombK}, t)
	}
}

// matchB matches the shape ((B k) f).
func matchB(t term) (isB bool, k, f term, ok bool) {
	outer, okOuter := t.(tApp)
	if !okOuter {
		return false, nil, nil, false
	}
	inner, okInner := outer.fun.(tApp)
	if !okInner {
		return false, nil, nil, false
	}
	cb, okComb := inner.fun.(tComb)
	if !okComb || cb.c != graph.CombB {
		return false, nil, nil, false
	}
	return true, inner.arg, outer.arg, true
}

// emit lowers a term to graph vertices. Combinator and primitive leaves
// are shared; applications are fresh.
func (c *Compiler) emit(t term) *graph.Vertex {
	switch v := t.(type) {
	case tInt:
		return c.b.Int(v.n)
	case tBool:
		return c.b.Bool(v.v)
	case tNil:
		return c.b.Nil()
	case tComb:
		if lv, ok := c.combs[v.c]; ok {
			return lv
		}
		lv := c.b.Comb(v.c)
		c.combs[v.c] = lv
		return lv
	case tPrim:
		if lv, ok := c.prims[v.p]; ok {
			return lv
		}
		lv := c.b.Prim(v.p)
		c.prims[v.p] = lv
		return lv
	case tLeaf:
		return v.v
	case tApp:
		return c.b.App(c.emit(v.fun), c.emit(v.arg))
	case tVar:
		// A free variable survived abstraction: compiler bug or unbound
		// name that slipped through; emit a hole so it deadlocks visibly.
		return c.b.Hole()
	default:
		return c.b.Hole()
	}
}
