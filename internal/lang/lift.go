package lang

import (
	"fmt"
	"sort"
)

// SC is one lifted supercombinator: a closed function of Arity parameters
// whose body contains no lambdas (every nested lambda has itself been
// lifted and replaced by a partial application of its supercombinator to
// its free variables).
type SC struct {
	Name   string
	Params []string
	Body   Expr
}

// Arity returns the number of parameters the supercombinator consumes.
func (s SC) Arity() int { return len(s.Params) }

// SCProg is a lambda-lifted program: a table of supercombinators plus the
// lambda-free main expression. Supercombinator references appear in bodies
// and in Main as Var nodes whose name is the SC's Name; Index resolves
// them.
type SCProg struct {
	Supers []SC
	Main   Expr
	Index  map[string]int
}

// lifter carries the state of one lifting pass.
type lifter struct {
	supers []SC
	index  map[string]int
	n      int
}

// liftEnv classifies the names in scope during lifting.
type liftBinding int

const (
	bindParam liftBinding = iota // lambda parameter (a per-call value)
	bindLocal                    // non-lambda let binding (a shared graph knot)
	bindSuper                    // a lifted supercombinator reference
)

type liftEntry struct {
	class liftBinding
	// repl is the replacement expression for bindSuper entries: the
	// supercombinator applied to its captured free variables.
	repl Expr
}

// Lift lambda-lifts e into a supercombinator program (Johnsson-style: the
// free variables of each lambda become extra leading parameters, passed at
// every occurrence site). Let-bound lambdas become named supercombinators —
// mutual recursion resolves through the table, with the captured-variable
// sets closed transitively across the recursive group. Non-lambda let
// bindings are left in place (they compile to shared graph knots).
func Lift(e Expr) (*SCProg, error) {
	l := &lifter{index: make(map[string]int)}
	main, err := l.lift(e, map[string]liftEntry{})
	if err != nil {
		return nil, err
	}
	return &SCProg{Supers: l.supers, Main: main, Index: l.index}, nil
}

// fresh reserves the next supercombinator slot under a unique name.
func (l *lifter) fresh(hint string) (int, string) {
	idx := len(l.supers)
	name := fmt.Sprintf("$%d-%s", l.n, hint)
	l.n++
	l.supers = append(l.supers, SC{Name: name})
	l.index[name] = idx
	return idx, name
}

// capturedSet collects, into out, the names from free that are bound to
// parameters or locals in env. A free reference to an already-lifted
// supercombinator expands at the occurrence site to the SC applied to its
// own captured variables, so those variables are captured here too.
func capturedSet(free map[string]bool, env map[string]liftEntry, out map[string]bool) {
	for name := range free {
		ent, ok := env[name]
		if !ok {
			continue
		}
		switch ent.class {
		case bindParam, bindLocal:
			out[name] = true
		case bindSuper:
			replFree := map[string]bool{}
			freeVars(ent.repl, map[string]bool{}, replFree)
			for fv := range replFree {
				if e2, ok := env[fv]; ok && (e2.class == bindParam || e2.class == bindLocal) {
					out[fv] = true
				}
			}
		}
	}
}

// captured returns the free variables of e that a lifted lambda must
// receive as extra arguments, sorted for determinism.
func captured(e Expr, env map[string]liftEntry, exclude map[string]bool) []string {
	free := map[string]bool{}
	freeVars(e, copyBound(exclude), free)
	set := map[string]bool{}
	capturedSet(free, env, set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// flatten merges directly nested lambdas (\x. \y. e → \x y. e) so a
// curried definition lifts to one supercombinator of full arity. Merging
// stops at a shadowed parameter, where currying must stay observable.
func flatten(lam Lam) Lam {
	params := append([]string(nil), lam.Params...)
	body := lam.Body
	for {
		inner, ok := body.(Lam)
		if !ok {
			break
		}
		shadow := false
		seen := make(map[string]bool, len(params))
		for _, p := range params {
			seen[p] = true
		}
		for _, p := range inner.Params {
			if seen[p] {
				shadow = true
				break
			}
			seen[p] = true
		}
		if shadow {
			break
		}
		params = append(params, inner.Params...)
		body = inner.Body
	}
	return Lam{Params: params, Body: body}
}

// lift rewrites e, lifting every lambda out into l.supers.
func (l *lifter) lift(e Expr, env map[string]liftEntry) (Expr, error) {
	switch x := e.(type) {
	case Var:
		if ent, ok := env[x.Name]; ok && ent.class == bindSuper {
			return ent.repl, nil
		}
		return x, nil
	case IntLit, BoolLit, NilLit:
		return x, nil
	case App:
		f, err := l.lift(x.Fun, env)
		if err != nil {
			return nil, err
		}
		a, err := l.lift(x.Arg, env)
		if err != nil {
			return nil, err
		}
		return App{Fun: f, Arg: a}, nil
	case If:
		c, err := l.lift(x.Cond, env)
		if err != nil {
			return nil, err
		}
		t, err := l.lift(x.Then, env)
		if err != nil {
			return nil, err
		}
		els, err := l.lift(x.Else, env)
		if err != nil {
			return nil, err
		}
		return If{Cond: c, Then: t, Else: els}, nil
	case Lam:
		return l.liftLam(flatten(x), env, "lam")
	case Let:
		return l.liftLet(x, env)
	default:
		return nil, fmt.Errorf("lift: unknown expression %T", e)
	}
}

// liftLam lifts one anonymous lambda: its captured variables become extra
// leading parameters and the occurrence site becomes the supercombinator
// applied to those variables.
func (l *lifter) liftLam(lam Lam, env map[string]liftEntry, hint string) (Expr, error) {
	exclude := map[string]bool{}
	for _, p := range lam.Params {
		exclude[p] = true
	}
	extra := captured(lam.Body, env, exclude)

	idx, name := l.fresh(hint)
	inner := copyLiftEnv(env)
	for _, p := range extra {
		inner[p] = liftEntry{class: bindParam}
	}
	for _, p := range lam.Params {
		inner[p] = liftEntry{class: bindParam}
	}
	body, err := l.lift(lam.Body, inner)
	if err != nil {
		return nil, err
	}
	l.supers[idx] = SC{
		Name:   name,
		Params: append(append([]string(nil), extra...), lam.Params...),
		Body:   body,
	}
	repl := Expr(Var{Name: name})
	for _, p := range extra {
		repl = App{Fun: repl, Arg: Var{Name: p}}
	}
	return repl, nil
}

// liftLet lifts a let group: lambda-valued bindings become named
// supercombinators (with captured-variable sets closed over the mutually
// recursive group), non-lambda bindings survive as a residual Let.
func (l *lifter) liftLet(x Let, env map[string]liftEntry) (Expr, error) {
	// Partition the group.
	isFun := make(map[string]bool, len(x.Binds))
	lams := make(map[string]Lam, len(x.Binds))
	groupNames := make(map[string]bool, len(x.Binds))
	for _, b := range x.Binds {
		groupNames[b.Name] = true
		if lam, ok := b.Val.(Lam); ok {
			isFun[b.Name] = true
			lams[b.Name] = flatten(lam)
		}
	}

	// Captured variables of each function binding: free variables bound to
	// params/locals in the enclosing scope, or to non-lambda siblings of
	// this group, closed transitively through sibling function references.
	capt := make(map[string]map[string]bool)
	refs := make(map[string][]string)
	for name, lam := range lams {
		exclude := copyBound(groupNames)
		for _, p := range lam.Params {
			exclude[p] = true
		}
		free := map[string]bool{}
		freeVars(lam.Body, exclude, free)
		set := map[string]bool{}
		capturedSet(free, env, set)
		// Non-lambda siblings the function captures are locals of the
		// residual let: they too must be passed (their knot vertex is
		// shared, so sharing is preserved).
		innerFree := map[string]bool{}
		exclude2 := map[string]bool{}
		for _, p := range lam.Params {
			exclude2[p] = true
		}
		freeVars(lam.Body, exclude2, innerFree)
		for fv := range innerFree {
			if groupNames[fv] {
				if isFun[fv] {
					refs[name] = append(refs[name], fv)
				} else {
					set[fv] = true
				}
			}
		}
		capt[name] = set
	}
	// Transitive closure: f captures whatever the siblings it references
	// capture (those variables are passed through f's call sites).
	for changed := true; changed; {
		changed = false
		for name := range lams {
			for _, sib := range refs[name] {
				for v := range capt[sib] {
					if !capt[name][v] {
						capt[name][v] = true
						changed = true
					}
				}
			}
		}
	}

	// Reserve supercombinator slots (deterministic order: binding order),
	// and build the environment in which bodies and the residual let lift.
	inner := copyLiftEnv(env)
	extras := make(map[string][]string)
	scIdx := make(map[string]int)
	for _, b := range x.Binds {
		if !isFun[b.Name] {
			continue
		}
		var ex []string
		for v := range capt[b.Name] {
			ex = append(ex, v)
		}
		sort.Strings(ex)
		extras[b.Name] = ex
		idx, scName := l.fresh(b.Name)
		scIdx[b.Name] = idx
		repl := Expr(Var{Name: scName})
		for _, p := range ex {
			repl = App{Fun: repl, Arg: Var{Name: p}}
		}
		inner[b.Name] = liftEntry{class: bindSuper, repl: repl}
	}
	for _, b := range x.Binds {
		if !isFun[b.Name] {
			inner[b.Name] = liftEntry{class: bindLocal}
		}
	}

	// Lift the function bodies into their reserved slots.
	for _, b := range x.Binds {
		if !isFun[b.Name] {
			continue
		}
		lam := lams[b.Name]
		scEnv := copyLiftEnv(inner)
		for _, p := range extras[b.Name] {
			scEnv[p] = liftEntry{class: bindParam}
		}
		for _, p := range lam.Params {
			scEnv[p] = liftEntry{class: bindParam}
		}
		body, err := l.lift(lam.Body, scEnv)
		if err != nil {
			return nil, err
		}
		idx := scIdx[b.Name]
		l.supers[idx] = SC{
			Name:   l.supers[idx].Name,
			Params: append(append([]string(nil), extras[b.Name]...), lam.Params...),
			Body:   body,
		}
	}

	// Residual let of the non-lambda bindings (if any), around the lifted
	// body.
	var binds []Bind
	for _, b := range x.Binds {
		if isFun[b.Name] {
			continue
		}
		val, err := l.lift(b.Val, inner)
		if err != nil {
			return nil, err
		}
		binds = append(binds, Bind{Name: b.Name, Val: val})
	}
	body, err := l.lift(x.Body, inner)
	if err != nil {
		return nil, err
	}
	if len(binds) == 0 {
		return body, nil
	}
	return Let{Binds: binds, Body: body}, nil
}

func copyLiftEnv(env map[string]liftEntry) map[string]liftEntry {
	c := make(map[string]liftEntry, len(env))
	for k, v := range env {
		c[k] = v
	}
	return c
}
