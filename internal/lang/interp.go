package lang

import (
	"errors"
	"fmt"
)

// The reference interpreter: a direct call-by-need evaluator for the
// surface language, used as the semantic oracle in differential tests
// against the combinator-graph reduction engine.

// ErrFuel is returned when evaluation exceeds its step budget (the
// interpreter's stand-in for nontermination).
var ErrFuel = errors.New("lang: out of fuel")

// ErrBottom is returned when ⊥ is forced.
var ErrBottom = errors.New("lang: bottom forced")

// IValue is an interpreter value.
type IValue interface{ ivalue() }

// IInt is an integer value.
type IInt int64

// IBool is a boolean value.
type IBool bool

// INil is the empty list.
type INil struct{}

// ICons is a lazy pair.
type ICons struct{ Head, Tail *Thunk }

// IClosure is a lambda value.
type IClosure struct {
	Param string
	Rest  []string // remaining params for multi-parameter lambdas
	Body  Expr
	Env   *IEnv
}

// IPrimVal is a (possibly partially applied) builtin.
type IPrimVal struct {
	Name  string
	Arity int
	Args  []*Thunk
}

func (IInt) ivalue()     {}
func (IBool) ivalue()    {}
func (INil) ivalue()     {}
func (ICons) ivalue()    {}
func (IClosure) ivalue() {}
func (IPrimVal) ivalue() {}

// Thunk is a memoized suspended expression (or suspended computation, for
// knots like fix).
type Thunk struct {
	done    bool
	val     IValue
	expr    Expr
	env     *IEnv
	compute func() (IValue, error)
	busy    bool // blackhole: self-referential forcing ⇒ deadlock
}

// IEnv is a linked environment frame.
type IEnv struct {
	name  string
	thunk *Thunk
	next  *IEnv
}

func (e *IEnv) lookup(name string) (*Thunk, bool) {
	for f := e; f != nil; f = f.next {
		if f.name == name {
			return f.thunk, true
		}
	}
	return nil, false
}

// Interp evaluates expressions with a step budget.
type Interp struct {
	fuel int
}

// NewInterp builds an interpreter with the given step budget.
func NewInterp(fuel int) *Interp { return &Interp{fuel: fuel} }

// interpBuiltinArity maps builtin names usable as values to arities.
var interpBuiltinArity = map[string]int{
	"__add": 2, "__sub": 2, "__mul": 2, "__div": 2, "__mod": 2,
	"__eq": 2, "__ne": 2, "__lt": 2, "__le": 2, "__gt": 2, "__ge": 2,
	"and": 2, "or": 2, "not": 1, "neg": 1,
	"cons": 2, "head": 1, "tail": 1, "isnil": 1, "ispair": 1,
	"seq": 2, "spec": 2, "par": 2, "bottom": 0, "fix": 1, "isbottom": 1,
}

// Eval evaluates an expression to a value (WHNF).
func (in *Interp) Eval(e Expr) (IValue, error) {
	return in.eval(e, nil)
}

// EvalString parses and evaluates a program.
func (in *Interp) EvalString(src string) (IValue, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return in.Eval(e)
}

func (in *Interp) spend() error {
	in.fuel--
	if in.fuel < 0 {
		return ErrFuel
	}
	return nil
}

// Force evaluates a thunk to WHNF with memoization.
func (in *Interp) Force(t *Thunk) (IValue, error) {
	if t.done {
		return t.val, nil
	}
	if t.busy {
		return nil, ErrBottom // self-dependent value: deadlock
	}
	t.busy = true
	var v IValue
	var err error
	if t.compute != nil {
		v, err = t.compute()
	} else {
		v, err = in.eval(t.expr, t.env)
	}
	t.busy = false
	if err != nil {
		return nil, err
	}
	t.done = true
	t.val = v
	t.expr = nil
	t.env = nil
	t.compute = nil
	return v, nil
}

func (in *Interp) eval(e Expr, env *IEnv) (IValue, error) {
	if err := in.spend(); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case IntLit:
		return IInt(x.Val), nil
	case BoolLit:
		return IBool(x.Val), nil
	case NilLit:
		return INil{}, nil
	case Var:
		if t, ok := env.lookup(x.Name); ok {
			return in.Force(t)
		}
		if x.Name == "bottom" {
			return nil, ErrBottom
		}
		if ar, ok := interpBuiltinArity[x.Name]; ok {
			return IPrimVal{Name: x.Name, Arity: ar}, nil
		}
		return nil, fmt.Errorf("unbound variable %q", x.Name)
	case Lam:
		return IClosure{Param: x.Params[0], Rest: x.Params[1:], Body: x.Body, Env: env}, nil
	case If:
		c, err := in.eval(x.Cond, env)
		if err != nil {
			return nil, err
		}
		cb, ok := c.(IBool)
		if !ok {
			return nil, fmt.Errorf("if: non-boolean predicate %T", c)
		}
		if bool(cb) {
			return in.eval(x.Then, env)
		}
		return in.eval(x.Else, env)
	case Let:
		frame := env
		thunks := make([]*Thunk, len(x.Binds))
		for i, b := range x.Binds {
			thunks[i] = &Thunk{expr: b.Val}
			frame = &IEnv{name: b.Name, thunk: thunks[i], next: frame}
		}
		for _, t := range thunks {
			t.env = frame // recursive scope
		}
		return in.eval(x.Body, frame)
	case App:
		f, err := in.eval(x.Fun, env)
		if err != nil {
			return nil, err
		}
		arg := &Thunk{expr: x.Arg, env: env}
		return in.apply(f, arg)
	default:
		return nil, fmt.Errorf("unknown expression %T", e)
	}
}

func (in *Interp) apply(f IValue, arg *Thunk) (IValue, error) {
	if err := in.spend(); err != nil {
		return nil, err
	}
	switch fv := f.(type) {
	case IClosure:
		env := &IEnv{name: fv.Param, thunk: arg, next: fv.Env}
		if len(fv.Rest) > 0 {
			return IClosure{Param: fv.Rest[0], Rest: fv.Rest[1:], Body: fv.Body, Env: env}, nil
		}
		return in.eval(fv.Body, env)
	case IPrimVal:
		args := append(append([]*Thunk(nil), fv.Args...), arg)
		if len(args) < fv.Arity {
			return IPrimVal{Name: fv.Name, Arity: fv.Arity, Args: args}, nil
		}
		return in.prim(fv.Name, args)
	default:
		return nil, fmt.Errorf("cannot apply %T", f)
	}
}

func (in *Interp) forceInt(t *Thunk) (int64, error) {
	v, err := in.Force(t)
	if err != nil {
		return 0, err
	}
	i, ok := v.(IInt)
	if !ok {
		return 0, fmt.Errorf("expected int, got %T", v)
	}
	return int64(i), nil
}

func (in *Interp) forceBool(t *Thunk) (bool, error) {
	v, err := in.Force(t)
	if err != nil {
		return false, err
	}
	b, ok := v.(IBool)
	if !ok {
		return false, fmt.Errorf("expected bool, got %T", v)
	}
	return bool(b), nil
}

func (in *Interp) prim(name string, args []*Thunk) (IValue, error) {
	switch name {
	case "__add", "__sub", "__mul", "__div", "__mod":
		x, err := in.forceInt(args[0])
		if err != nil {
			return nil, err
		}
		y, err := in.forceInt(args[1])
		if err != nil {
			return nil, err
		}
		switch name {
		case "__add":
			return IInt(x + y), nil
		case "__sub":
			return IInt(x - y), nil
		case "__mul":
			return IInt(x * y), nil
		case "__div":
			if y == 0 {
				return nil, errors.New("division by zero")
			}
			return IInt(x / y), nil
		default:
			if y == 0 {
				return nil, errors.New("modulo by zero")
			}
			return IInt(x % y), nil
		}
	case "__eq", "__ne", "__lt", "__le", "__gt", "__ge":
		x, err := in.forceInt(args[0])
		if err != nil {
			return nil, err
		}
		y, err := in.forceInt(args[1])
		if err != nil {
			return nil, err
		}
		switch name {
		case "__eq":
			return IBool(x == y), nil
		case "__ne":
			return IBool(x != y), nil
		case "__lt":
			return IBool(x < y), nil
		case "__le":
			return IBool(x <= y), nil
		case "__gt":
			return IBool(x > y), nil
		default:
			return IBool(x >= y), nil
		}
	case "and", "or":
		x, err := in.forceBool(args[0])
		if err != nil {
			return nil, err
		}
		y, err := in.forceBool(args[1])
		if err != nil {
			return nil, err
		}
		if name == "and" {
			return IBool(x && y), nil
		}
		return IBool(x || y), nil
	case "not":
		x, err := in.forceBool(args[0])
		if err != nil {
			return nil, err
		}
		return IBool(!x), nil
	case "neg":
		x, err := in.forceInt(args[0])
		if err != nil {
			return nil, err
		}
		return IInt(-x), nil
	case "cons":
		return ICons{Head: args[0], Tail: args[1]}, nil
	case "head", "tail":
		v, err := in.Force(args[0])
		if err != nil {
			return nil, err
		}
		c, ok := v.(ICons)
		if !ok {
			return nil, fmt.Errorf("%s of non-pair %T", name, v)
		}
		if name == "head" {
			return in.Force(c.Head)
		}
		return in.Force(c.Tail)
	case "isnil":
		v, err := in.Force(args[0])
		if err != nil {
			return nil, err
		}
		_, ok := v.(INil)
		return IBool(ok), nil
	case "ispair":
		v, err := in.Force(args[0])
		if err != nil {
			return nil, err
		}
		_, ok := v.(ICons)
		return IBool(ok), nil
	case "seq":
		if _, err := in.Force(args[0]); err != nil {
			return nil, err
		}
		return in.Force(args[1])
	case "spec":
		// The interpreter does not speculate; spec a b ≡ b.
		return in.Force(args[1])
	case "par":
		if _, err := in.Force(args[0]); err != nil {
			return nil, err
		}
		return in.Force(args[1])
	case "isbottom":
		// Footnote 5's probe, in reference semantics: true iff forcing the
		// operand blackholes (self-dependency). Other errors propagate.
		v, err := in.Force(args[0])
		if errors.Is(err, ErrBottom) {
			return IBool(true), nil
		}
		if err != nil {
			return nil, err
		}
		_ = v
		return IBool(false), nil
	case "fix":
		// fix f = f (fix f), lazily: the argument thunk computes the same
		// application, so a function strict in its own fixpoint blackholes
		// (ErrBottom), mirroring the engine's cyclic-knot deadlock.
		fv, err := in.Force(args[0])
		if err != nil {
			return nil, err
		}
		self := &Thunk{}
		self.compute = func() (IValue, error) { return in.apply(fv, self) }
		return in.apply(fv, self)
	default:
		return nil, fmt.Errorf("unknown builtin %q", name)
	}
}
