package lang

import (
	"fmt"

	"dgr/internal/gm"
	"dgr/internal/graph"
)

// CompileSupers parses, lambda-lifts, and compiles a program. The
// supercombinators are registered in prog; the returned vertex is the root
// of the main expression's graph.
func CompileSupers(store *graph.Store, prog *gm.Program, src string) (*graph.Vertex, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sc, err := Lift(e)
	if err != nil {
		return nil, err
	}
	return CompileLifted(store, prog, sc)
}

// CompileLifted registers the lifted program's supercombinators in prog
// and emits the main expression as a graph rooted at the returned vertex.
// Mutually recursive supercombinators resolve through the table: indices
// are assigned to the whole batch before any body is compiled.
func CompileLifted(store *graph.Store, prog *gm.Program, sc *SCProg) (*graph.Vertex, error) {
	base := prog.Len()
	scIdx := make(map[string]int, len(sc.Supers))
	for name, i := range sc.Index {
		scIdx[name] = base + i
	}
	masks := strictMasks(sc)
	compiled := make([]*gm.Super, len(sc.Supers))
	for i, s := range sc.Supers {
		sup, err := compileSuper(s, scIdx)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		sup.Strict = masks[s.Name]
		compiled[i] = sup
	}
	if got := prog.AddBatch(compiled); got != base {
		return nil, fmt.Errorf("gm: concurrent compile moved the table base (%d != %d)", got, base)
	}
	em := &emitter{
		b:      graph.NewBuilder(store, -1),
		scIdx:  scIdx,
		combs:  make(map[graph.Comb]*graph.Vertex),
		prims:  make(map[graph.Prim]*graph.Vertex),
		supers: make(map[int]*graph.Vertex),
	}
	root, err := em.emit(sc.Main, map[string]*graph.Vertex{})
	if err != nil {
		return nil, err
	}
	if err := em.b.Err(); err != nil {
		return nil, err
	}
	return root, nil
}

// ---- supercombinator body → instructions ----

// binding classifies a name in scope inside a supercombinator body.
type binding struct {
	isLocal bool
	idx     int // parameter position or local slot
}

// bodyCompiler compiles one supercombinator body to instructions,
// tracking the stack height and local-slot usage.
type bodyCompiler struct {
	scIdx   map[string]int
	code    []gm.Instr
	nlocals int
	depth   int
	maxHigh int
}

func compileSuper(s SC, scIdx map[string]int) (*gm.Super, error) {
	c := &bodyCompiler{scIdx: scIdx}
	env := make(map[string]binding, len(s.Params))
	for i, p := range s.Params {
		env[p] = binding{idx: i}
	}
	if err := c.expr(s.Body, env); err != nil {
		return nil, err
	}
	c.patchTail()
	return &gm.Super{
		Name:    s.Name,
		Arity:   s.Arity(),
		Code:    c.code,
		NLocals: c.nlocals,
		MaxHigh: c.maxHigh,
	}, nil
}

// emit appends an instruction, tracking the stack effect.
func (c *bodyCompiler) emit(in gm.Instr, pushPop int) {
	c.code = append(c.code, in)
	c.depth += pushPop
	if c.depth > c.maxHigh {
		c.maxHigh = c.depth
	}
}

// patchTail rewrites the final value-producing instruction into its
// terminal Update form, so the redex root is written directly instead of
// through an extra indirection vertex.
func (c *bodyCompiler) patchTail() {
	last := &c.code[len(c.code)-1]
	switch last.Op {
	case gm.OpMkApp:
		last.Op = gm.OpUpdateApp
	case gm.OpMkPrimApp:
		last.Op = gm.OpUpdatePrimApp
	case gm.OpPushInt:
		*last = gm.Instr{Op: gm.OpUpdateLeaf, A: int64(graph.KindInt), B: last.A}
	case gm.OpPushBool:
		*last = gm.Instr{Op: gm.OpUpdateLeaf, A: int64(graph.KindBool), B: last.A}
	case gm.OpPushNil:
		*last = gm.Instr{Op: gm.OpUpdateLeaf, A: int64(graph.KindNil)}
	case gm.OpPushSuper:
		*last = gm.Instr{Op: gm.OpUpdateLeaf, A: int64(graph.KindSuper), B: last.A}
	case gm.OpPushComb:
		*last = gm.Instr{Op: gm.OpUpdateLeaf, A: int64(graph.KindComb), B: last.A}
	case gm.OpPushPrim:
		*last = gm.Instr{Op: gm.OpUpdateLeaf, A: int64(graph.KindPrim), B: last.A}
	default:
		// OpPushArg, OpPushLocal: the result is an existing vertex; the
		// root collapses to an indirection.
		c.emit(gm.Instr{Op: gm.OpUpdate}, -1)
	}
}

// spine decomposes nested applications into head and argument list.
func spine(e Expr) (Expr, []Expr) {
	var args []Expr
	for {
		app, ok := e.(App)
		if !ok {
			break
		}
		args = append(args, app.Arg)
		e = app.Fun
	}
	for i, j := 0, len(args)-1; i < j; i, j = i+1, j-1 {
		args[i], args[j] = args[j], args[i]
	}
	return e, args
}

// expr compiles e, leaving one vertex on the stack.
func (c *bodyCompiler) expr(e Expr, env map[string]binding) error {
	switch x := e.(type) {
	case Var:
		return c.name(x.Name, env)
	case IntLit:
		c.emit(gm.Instr{Op: gm.OpPushInt, A: x.Val}, 1)
	case BoolLit:
		var n int64
		if x.Val {
			n = 1
		}
		c.emit(gm.Instr{Op: gm.OpPushBool, A: n}, 1)
	case NilLit:
		c.emit(gm.Instr{Op: gm.OpPushNil}, 1)
	case If:
		for _, sub := range []Expr{x.Cond, x.Then, x.Else} {
			if err := c.expr(sub, env); err != nil {
				return err
			}
		}
		c.emit(gm.Instr{Op: gm.OpMkPrimApp, A: int64(graph.PrimIf), B: 3}, 1-3)
	case App:
		return c.app(x, env)
	case Let:
		return c.let(x, env)
	case Lam:
		return fmt.Errorf("gm: lambda survived lifting")
	default:
		return fmt.Errorf("gm: unknown expression %T", e)
	}
	return nil
}

// app compiles an application spine. A head that statically saturates a
// strict primitive becomes one flattened primapp vertex — the big win over
// interpreted combinator rewriting, which reaches the same flat form only
// after several spine-collection task steps.
func (c *bodyCompiler) app(e App, env map[string]binding) error {
	head, args := spine(e)
	if v, ok := head.(Var); ok {
		if _, bound := env[v.Name]; !bound {
			if _, sc := c.scIdx[v.Name]; !sc {
				if k, val, ok := Builtin(v.Name); ok && k == graph.KindPrim {
					p := graph.Prim(val)
					if ar := p.Arity(); ar > 0 && len(args) >= ar {
						for _, a := range args[:ar] {
							if err := c.expr(a, env); err != nil {
								return err
							}
						}
						c.emit(gm.Instr{Op: gm.OpMkPrimApp, A: val, B: int64(ar)}, 1-ar)
						return c.apps(args[ar:], env)
					}
				}
			}
		}
	}
	if err := c.expr(head, env); err != nil {
		return err
	}
	return c.apps(args, env)
}

// apps applies the already-pushed function to each argument in turn.
func (c *bodyCompiler) apps(args []Expr, env map[string]binding) error {
	for _, a := range args {
		if err := c.expr(a, env); err != nil {
			return err
		}
		c.emit(gm.Instr{Op: gm.OpMkApp}, -1)
	}
	return nil
}

// name compiles a variable reference.
func (c *bodyCompiler) name(name string, env map[string]binding) error {
	if b, ok := env[name]; ok {
		if b.isLocal {
			c.emit(gm.Instr{Op: gm.OpPushLocal, A: int64(b.idx)}, 1)
		} else {
			c.emit(gm.Instr{Op: gm.OpPushArg, A: int64(b.idx)}, 1)
		}
		return nil
	}
	if idx, ok := c.scIdx[name]; ok {
		c.emit(gm.Instr{Op: gm.OpPushSuper, A: int64(idx)}, 1)
		return nil
	}
	if k, val, ok := Builtin(name); ok {
		if k == graph.KindComb {
			c.emit(gm.Instr{Op: gm.OpPushComb, A: val}, 1)
		} else {
			c.emit(gm.Instr{Op: gm.OpPushPrim, A: val}, 1)
		}
		return nil
	}
	return fmt.Errorf("gm: unbound variable %q", name)
}

// let compiles a residual (non-lambda) let group: each binding gets a
// per-invocation hole slot, bodies are built referencing the holes, and
// the holes are knotted — the same shared-knot shape the interpreted
// compiler builds statically, but per call.
func (c *bodyCompiler) let(x Let, env map[string]binding) error {
	inner := make(map[string]binding, len(env)+len(x.Binds))
	for k, v := range env {
		inner[k] = v
	}
	slots := make([]int, len(x.Binds))
	for i, b := range x.Binds {
		slots[i] = c.nlocals
		c.nlocals++
		c.emit(gm.Instr{Op: gm.OpMkHole, A: int64(slots[i])}, 0)
		inner[b.Name] = binding{isLocal: true, idx: slots[i]}
	}
	for i, b := range x.Binds {
		if err := c.expr(b.Val, inner); err != nil {
			return err
		}
		c.emit(gm.Instr{Op: gm.OpKnot, A: int64(slots[i])}, -1)
	}
	return c.expr(x.Body, inner)
}

// ---- main-expression emission ----

// emitter lowers the lambda-free main expression to graph vertices,
// sharing leaf vertices per compile (the same discipline as the
// interpreted compiler) and building static knots for top-level lets.
type emitter struct {
	b      *graph.Builder
	scIdx  map[string]int
	combs  map[graph.Comb]*graph.Vertex
	prims  map[graph.Prim]*graph.Vertex
	supers map[int]*graph.Vertex
}

func (em *emitter) emit(e Expr, env map[string]*graph.Vertex) (*graph.Vertex, error) {
	switch x := e.(type) {
	case Var:
		return em.name(x.Name, env)
	case IntLit:
		return em.b.Int(x.Val), nil
	case BoolLit:
		return em.b.Bool(x.Val), nil
	case NilLit:
		return em.b.Nil(), nil
	case If:
		c, err := em.emit(x.Cond, env)
		if err != nil {
			return nil, err
		}
		t, err := em.emit(x.Then, env)
		if err != nil {
			return nil, err
		}
		els, err := em.emit(x.Else, env)
		if err != nil {
			return nil, err
		}
		return em.b.PrimApp(graph.PrimIf, c, t, els), nil
	case App:
		return em.app(x, env)
	case Let:
		inner := make(map[string]*graph.Vertex, len(env)+len(x.Binds))
		for k, v := range env {
			inner[k] = v
		}
		holes := make([]*graph.Vertex, len(x.Binds))
		for i, b := range x.Binds {
			holes[i] = em.b.Hole()
			inner[b.Name] = holes[i]
		}
		for i, b := range x.Binds {
			v, err := em.emit(b.Val, inner)
			if err != nil {
				return nil, err
			}
			em.b.Knot(holes[i], v)
		}
		return em.emit(x.Body, inner)
	case Lam:
		return nil, fmt.Errorf("gm: lambda survived lifting")
	default:
		return nil, fmt.Errorf("gm: unknown expression %T", e)
	}
}

func (em *emitter) app(e App, env map[string]*graph.Vertex) (*graph.Vertex, error) {
	head, args := spine(e)
	// Statically saturated strict primitives flatten here too, so the main
	// graph starts in the same normal shape compiled bodies build.
	if v, ok := head.(Var); ok {
		_, bound := env[v.Name]
		_, sc := em.scIdx[v.Name]
		if !bound && !sc {
			if k, val, ok := Builtin(v.Name); ok && k == graph.KindPrim {
				p := graph.Prim(val)
				if ar := p.Arity(); ar > 0 && len(args) >= ar {
					ops := make([]*graph.Vertex, ar)
					for i, a := range args[:ar] {
						w, err := em.emit(a, env)
						if err != nil {
							return nil, err
						}
						ops[i] = w
					}
					f := em.b.PrimApp(p, ops...)
					return em.apps(f, args[ar:], env)
				}
			}
		}
	}
	f, err := em.emit(head, env)
	if err != nil {
		return nil, err
	}
	return em.apps(f, args, env)
}

func (em *emitter) apps(f *graph.Vertex, args []Expr, env map[string]*graph.Vertex) (*graph.Vertex, error) {
	for _, a := range args {
		w, err := em.emit(a, env)
		if err != nil {
			return nil, err
		}
		f = em.b.App(f, w)
	}
	return f, nil
}

func (em *emitter) name(name string, env map[string]*graph.Vertex) (*graph.Vertex, error) {
	if v, ok := env[name]; ok {
		return v, nil
	}
	if idx, ok := em.scIdx[name]; ok {
		if v, ok := em.supers[idx]; ok {
			return v, nil
		}
		v := em.b.Super(idx)
		em.supers[idx] = v
		return v, nil
	}
	if k, val, ok := Builtin(name); ok {
		if k == graph.KindComb {
			c := graph.Comb(val)
			if v, ok := em.combs[c]; ok {
				return v, nil
			}
			v := em.b.Comb(c)
			em.combs[c] = v
			return v, nil
		}
		p := graph.Prim(val)
		if v, ok := em.prims[p]; ok {
			return v, nil
		}
		v := em.b.Prim(p)
		em.prims[p] = v
		return v, nil
	}
	return nil, fmt.Errorf("gm: unbound variable %q", name)
}
