package lang

import (
	"fmt"
	"math/rand"
)

// This file is the property-based term generator behind the cross-engine
// differential harness (root differential_test.go) and `dgr-check -gen`:
// seeded random generation of well-typed closed programs whose reference
// value the tree-walking interpreter computes, plus greedy shrinking by
// subterm replacement for minimizing failures.

// GenConfig tunes the generator.
type GenConfig struct {
	// MaxDepth bounds expression nesting (default 5).
	MaxDepth int
	// Fuel is the interpreter budget used to validate candidates
	// (default 400_000). Candidates that exhaust it are discarded, so
	// every generated program terminates quickly on the real machine too.
	Fuel int
	// MaxRetries bounds the generate-validate loop (default 200).
	MaxRetries int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 5
	}
	if c.Fuel <= 0 {
		c.Fuel = 400_000
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 200
	}
	return c
}

// Gen is a seeded well-typed term generator. Generation is type-directed
// over int, bool, and int-list, so every term is closed and well-typed by
// construction; recursion only enters through a fixed set of structurally
// terminating templates (counted loops, bounded list builds), and every
// candidate is validated against the reference interpreter before it is
// returned — a program the interpreter cannot finish within the fuel
// budget is discarded, never emitted.
type Gen struct {
	rng *rand.Rand
	cfg GenConfig
}

// NewGen builds a generator from a seed. The same seed yields the same
// program sequence.
func NewGen(seed int64, cfg GenConfig) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg.withDefaults()}
}

// genType is the generator's little type universe.
type genType int

const (
	tyInt genType = iota
	tyBool
	tyList // list of int
)

// genVar is a variable in scope with its type.
type genVar struct {
	name string
	ty   genType
}

// genState carries one program's generation scope.
type genState struct {
	rng  *rand.Rand
	vars []genVar
	n    int
}

func (s *genState) fresh(hint string) string {
	s.n++
	return fmt.Sprintf("%s%d", hint, s.n)
}

func (s *genState) ofType(ty genType) []genVar {
	var out []genVar
	for _, v := range s.vars {
		if v.ty == ty {
			out = append(out, v)
		}
	}
	return out
}

// Program generates one validated program: the expression, its rendered
// source, and the reference value the interpreter computed for it. Every
// generated program has integer result type. It panics only if MaxRetries
// consecutive candidates fail validation, which a sane configuration never
// approaches.
func (g *Gen) Program() (Expr, string, int64) {
	for try := 0; try < g.cfg.MaxRetries; try++ {
		st := &genState{rng: g.rng}
		e := st.intExpr(g.cfg.MaxDepth)
		want, ok := RefValue(e, g.cfg.Fuel)
		if !ok {
			continue
		}
		return e, e.String(), want
	}
	panic("lang: generator exhausted retries (every candidate failed interpreter validation)")
}

// RefValue evaluates e with the reference interpreter under the given
// fuel budget and reports its integer value. ok is false when the
// interpreter errors (fuel, bottom, or a non-integer result).
func RefValue(e Expr, fuel int) (int64, bool) {
	v, err := NewInterp(fuel).Eval(e)
	if err != nil {
		return 0, false
	}
	n, ok := v.(IInt)
	return int64(n), ok
}

// intExpr generates an int-typed expression.
func (s *genState) intExpr(depth int) Expr {
	if depth <= 0 {
		return s.intLeaf()
	}
	switch s.rng.Intn(10) {
	case 0, 1:
		return s.intLeaf()
	case 2, 3: // arithmetic
		op := [...]string{"+", "-", "*"}[s.rng.Intn(3)]
		return s.binop(op, s.intExpr(depth-1), s.intExpr(depth-1))
	case 4: // guarded division/modulus: divisor is a nonzero literal
		op := "/"
		if s.rng.Intn(2) == 0 {
			op = "%"
		}
		d := int64(s.rng.Intn(7) + 1)
		return s.binop(op, s.intExpr(depth-1), IntLit{Val: d})
	case 5: // conditional
		return If{
			Cond: s.boolExpr(depth - 1),
			Then: s.intExpr(depth - 1),
			Else: s.intExpr(depth - 1),
		}
	case 6: // let-bound value
		name := s.fresh("v")
		val := s.intExpr(depth - 1)
		saved := len(s.vars)
		s.vars = append(s.vars, genVar{name: name, ty: tyInt})
		body := s.intExpr(depth - 1)
		s.vars = s.vars[:saved]
		return Let{Binds: []Bind{{Name: name, Val: val}}, Body: body}
	case 7: // lambda applied immediately (exercises lifting + saturation)
		return s.applyLambda(depth)
	case 8: // structurally terminating recursion template
		return s.recursion(depth)
	default: // fold a generated list
		return s.listFold(depth)
	}
}

// intLeaf generates a depth-0 int expression: a literal or an in-scope
// int variable.
func (s *genState) intLeaf() Expr {
	if vs := s.ofType(tyInt); len(vs) > 0 && s.rng.Intn(2) == 0 {
		return Var{Name: vs[s.rng.Intn(len(vs))].name}
	}
	// Non-negative only: the surface syntax has no negative literals, so
	// a negative IntLit would not re-parse from its rendering. Negative
	// runtime values still arise through subtraction.
	return IntLit{Val: int64(s.rng.Intn(13))}
}

// boolExpr generates a bool-typed expression.
func (s *genState) boolExpr(depth int) Expr {
	if depth <= 0 {
		return BoolLit{Val: s.rng.Intn(2) == 0}
	}
	switch s.rng.Intn(6) {
	case 0:
		return BoolLit{Val: s.rng.Intn(2) == 0}
	case 1, 2: // comparison
		op := [...]string{"__lt", "__le", "__gt", "__ge", "__eq", "__ne"}[s.rng.Intn(6)]
		return apps(Var{Name: op}, s.intExpr(depth-1), s.intExpr(depth-1))
	case 3:
		return apps(Var{Name: "and"}, s.boolExpr(depth-1), s.boolExpr(depth-1))
	case 4:
		return apps(Var{Name: "or"}, s.boolExpr(depth-1), s.boolExpr(depth-1))
	default:
		return apps(Var{Name: "not"}, s.boolExpr(depth-1))
	}
}

// binop builds a primitive arithmetic application via the surface
// builtins, so rendered programs read naturally after String().
func (s *genState) binop(op string, a, b Expr) Expr {
	name := map[string]string{
		"+": "__add", "-": "__sub", "*": "__mul", "/": "__div", "%": "__mod",
	}[op]
	return apps(Var{Name: name}, a, b)
}

// applyLambda generates a lambda of 1-2 int parameters applied to
// matching arguments — the shape that stresses lambda lifting, capture
// computation, and supercombinator saturation.
func (s *genState) applyLambda(depth int) Expr {
	nparams := s.rng.Intn(2) + 1
	params := make([]string, nparams)
	saved := len(s.vars)
	for i := range params {
		params[i] = s.fresh("p")
		s.vars = append(s.vars, genVar{name: params[i], ty: tyInt})
	}
	body := s.intExpr(depth - 1)
	s.vars = s.vars[:saved]
	e := Expr(Lam{Params: params, Body: body})
	for range params {
		e = App{Fun: e, Arg: s.intExpr(depth - 1)}
	}
	return e
}

// recursion generates a counted loop:
//
//	let f n acc = if n <= 0 then acc else f (n-1) (step) in f k seed
//
// The counter strictly decreases, so termination is structural.
func (s *genState) recursion(depth int) Expr {
	f := s.fresh("f")
	n := s.fresh("n")
	acc := s.fresh("k")
	saved := len(s.vars)
	s.vars = append(s.vars, genVar{name: n, ty: tyInt}, genVar{name: acc, ty: tyInt})
	step := s.binop([...]string{"+", "-", "*"}[s.rng.Intn(3)],
		Var{Name: acc}, s.intExpr(depth-2))
	s.vars = s.vars[:saved]
	body := If{
		Cond: apps(Var{Name: "__le"}, Var{Name: n}, IntLit{Val: 0}),
		Then: Var{Name: acc},
		Else: apps(Var{Name: f},
			s.binop("-", Var{Name: n}, IntLit{Val: 1}), step),
	}
	return Let{
		Binds: []Bind{{Name: f, Val: Lam{Params: []string{n, acc}, Body: body}}},
		Body: apps(Var{Name: f},
			IntLit{Val: int64(s.rng.Intn(8) + 1)}, s.intExpr(depth-1)),
	}
}

// listFold generates a bounded list build followed by a sum fold —
// list-typed structure consumed back down to an int.
func (s *genState) listFold(depth int) Expr {
	up := s.fresh("u")
	sum := s.fresh("s")
	a, b, xs := s.fresh("x"), s.fresh("y"), s.fresh("l")
	upto := Lam{Params: []string{a, b}, Body: If{
		Cond: apps(Var{Name: "__gt"}, Var{Name: a}, Var{Name: b}),
		Then: NilLit{},
		Else: apps(Var{Name: "cons"}, Var{Name: a},
			apps(Var{Name: up}, s.binop("+", Var{Name: a}, IntLit{Val: 1}), Var{Name: b})),
	}}
	sumf := Lam{Params: []string{xs}, Body: If{
		Cond: apps(Var{Name: "isnil"}, Var{Name: xs}),
		Then: IntLit{Val: 0},
		Else: s.binop("+", apps(Var{Name: "head"}, Var{Name: xs}),
			apps(Var{Name: sum}, apps(Var{Name: "tail"}, Var{Name: xs}))),
	}}
	lo := int64(s.rng.Intn(5))
	return Let{
		Binds: []Bind{{Name: up, Val: upto}, {Name: sum, Val: sumf}},
		Body: apps(Var{Name: sum},
			apps(Var{Name: up}, IntLit{Val: lo}, IntLit{Val: lo + int64(s.rng.Intn(8))})),
	}
}

// ---- shrinking ----

// Shrink returns simpler candidate replacements for e, largest-first:
// every direct subexpression (hull removal), then e with single subterm
// positions replaced by a literal. Candidates are not guaranteed
// well-typed — callers re-validate with the interpreter, which the
// failure predicate in ShrinkWhile does implicitly.
func Shrink(e Expr) []Expr {
	var out []Expr
	switch x := e.(type) {
	case App:
		out = append(out, x.Fun, x.Arg)
		for _, f := range Shrink(x.Fun) {
			out = append(out, App{Fun: f, Arg: x.Arg})
		}
		for _, a := range Shrink(x.Arg) {
			out = append(out, App{Fun: x.Fun, Arg: a})
		}
	case If:
		out = append(out, x.Then, x.Else)
		for _, c := range Shrink(x.Cond) {
			out = append(out, If{Cond: c, Then: x.Then, Else: x.Else})
		}
		for _, t := range Shrink(x.Then) {
			out = append(out, If{Cond: x.Cond, Then: t, Else: x.Else})
		}
		for _, el := range Shrink(x.Else) {
			out = append(out, If{Cond: x.Cond, Then: x.Then, Else: el})
		}
	case Let:
		out = append(out, x.Body)
		for _, b := range Shrink(x.Body) {
			out = append(out, Let{Binds: x.Binds, Body: b})
		}
		for i, bind := range x.Binds {
			for _, v := range Shrink(bind.Val) {
				binds := append([]Bind(nil), x.Binds...)
				binds[i] = Bind{Name: bind.Name, Val: v}
				out = append(out, Let{Binds: binds, Body: x.Body})
			}
		}
	case Lam:
		for _, b := range Shrink(x.Body) {
			out = append(out, Lam{Params: x.Params, Body: b})
		}
	}
	// Last resort: collapse the whole position to a literal.
	if _, isLit := e.(IntLit); !isLit {
		out = append(out, IntLit{Val: 0})
	}
	return out
}

// ShrinkWhile greedily minimizes a failing expression: as long as some
// shrink candidate still satisfies fails, descend into it. fails must
// treat ill-typed or invalid candidates as non-failing (e.g. by checking
// they still evaluate under the reference interpreter first). maxSteps
// bounds the descent.
func ShrinkWhile(e Expr, maxSteps int, fails func(Expr) bool) Expr {
	for step := 0; step < maxSteps; step++ {
		progressed := false
		for _, cand := range Shrink(e) {
			if fails(cand) {
				e = cand
				progressed = true
				break
			}
		}
		if !progressed {
			return e
		}
	}
	return e
}
