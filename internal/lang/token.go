// Package lang provides the small functional language front end: lexer,
// parser, a call-by-need reference interpreter, and the Turner-style
// bracket-abstraction compiler from lambda terms to S/K/I/B/C/S'/B'/C'
// combinator graphs consumed by the reduction engine.
//
// The surface language:
//
//	expr   := \x y. expr                      -- lambda (right-assoc body)
//	        | let x = e; y = e in expr        -- mutually recursive bindings
//	        | if e then e else e
//	        | e || e | e && e                 -- boolean (strict)
//	        | e == e | e /= e | < <= > >=     -- comparison
//	        | e + e | e - e | e * e / e % e   -- arithmetic
//	        | e : e                           -- cons (right-assoc)
//	        | e e                             -- application (left-assoc)
//	        | ints, true, false, [e, e, ...], identifiers, (e)
//
// Builtins: head tail cons isnil ispair not neg seq spec par bottom fix.
package lang

type tokenKind uint8

const (
	tokEOF tokenKind = iota + 1
	tokInt
	tokIdent
	tokKeyword // let in if then else true false
	tokOp      // + - * / % == /= < <= > >= && || : = . \ ; ,
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

var keywords = map[string]bool{
	"let": true, "in": true, "if": true, "then": true, "else": true,
	"true": true, "false": true,
}
