package lang

import (
	"testing"
)

// TestGenDeterministic: the same seed yields the same program sequence.
func TestGenDeterministic(t *testing.T) {
	a := NewGen(42, GenConfig{})
	b := NewGen(42, GenConfig{})
	for i := 0; i < 20; i++ {
		_, sa, va := a.Program()
		_, sb, vb := b.Program()
		if sa != sb || va != vb {
			t.Fatalf("program %d diverged under the same seed:\n%s = %d\n%s = %d", i, sa, va, sb, vb)
		}
	}
}

// TestGenValidWellTyped: every generated program parses back from its
// rendering to the same digest, lifts without error into lambda-free
// supercombinators, and re-evaluates to the reported reference value.
func TestGenValidWellTyped(t *testing.T) {
	g := NewGen(7, GenConfig{})
	for i := 0; i < 50; i++ {
		e, src, want := g.Program()
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("program %d: rendering does not re-parse: %v\n%s", i, err, src)
		}
		if Digest(e) != Digest(back) {
			t.Fatalf("program %d: rendering round-trip changed the term\n%s", i, src)
		}
		sc, err := Lift(e)
		if err != nil {
			t.Fatalf("program %d: lift: %v\n%s", i, err, src)
		}
		for _, s := range sc.Supers {
			assertLambdaFree(t, s.Body, src)
		}
		assertLambdaFree(t, sc.Main, src)
		got, ok := RefValue(e, 1_000_000)
		if !ok || got != want {
			t.Fatalf("program %d: reference value unstable: got (%d,%v) want %d\n%s", i, got, ok, want, src)
		}
	}
}

func assertLambdaFree(t *testing.T, e Expr, src string) {
	t.Helper()
	switch x := e.(type) {
	case Lam:
		t.Fatalf("lambda survived lifting in\n%s", src)
	case App:
		assertLambdaFree(t, x.Fun, src)
		assertLambdaFree(t, x.Arg, src)
	case If:
		assertLambdaFree(t, x.Cond, src)
		assertLambdaFree(t, x.Then, src)
		assertLambdaFree(t, x.Else, src)
	case Let:
		for _, b := range x.Binds {
			assertLambdaFree(t, b.Val, src)
		}
		assertLambdaFree(t, x.Body, src)
	}
}

// TestShrinkWhile: shrinking a term against a monotone failure predicate
// terminates and lands on a still-failing, no-larger term.
func TestShrinkWhile(t *testing.T) {
	g := NewGen(99, GenConfig{})
	e, _, _ := g.Program()
	// Failure predicate: "evaluates under the interpreter to an even
	// value". Arbitrary but re-checkable, and treats invalid candidates
	// as non-failing, as the contract requires.
	fails := func(c Expr) bool {
		v, ok := RefValue(c, 400_000)
		return ok && v%2 == 0
	}
	if !fails(e) {
		e = IntLit{Val: 4} // make the predicate hold to exercise the loop
	}
	min := ShrinkWhile(e, 100, fails)
	if !fails(min) {
		t.Fatalf("shrinking lost the failure: %s", min)
	}
	if len(min.String()) > len(e.String()) {
		t.Fatalf("shrinking grew the term: %s -> %s", e, min)
	}
}
