package lang

import (
	"fmt"
	"strings"
)

// Expr is a surface-syntax expression.
type Expr interface {
	exprNode()
	String() string
}

// Var references a bound name or builtin.
type Var struct{ Name string }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// BoolLit is a boolean literal.
type BoolLit struct{ Val bool }

// NilLit is the empty list [].
type NilLit struct{}

// Lam is a lambda abstraction of one or more parameters.
type Lam struct {
	Params []string
	Body   Expr
}

// App is a function application.
type App struct{ Fun, Arg Expr }

// If is the conditional.
type If struct{ Cond, Then, Else Expr }

// Bind is one let binding.
type Bind struct {
	Name string
	Val  Expr
}

// Let is a mutually recursive let ... in.
type Let struct {
	Binds []Bind
	Body  Expr
}

func (Var) exprNode()     {}
func (IntLit) exprNode()  {}
func (BoolLit) exprNode() {}
func (NilLit) exprNode()  {}
func (Lam) exprNode()     {}
func (App) exprNode()     {}
func (If) exprNode()      {}
func (Let) exprNode()     {}

func (e Var) String() string    { return e.Name }
func (e IntLit) String() string { return fmt.Sprintf("%d", e.Val) }
func (e BoolLit) String() string {
	if e.Val {
		return "true"
	}
	return "false"
}
func (NilLit) String() string { return "[]" }
func (e Lam) String() string {
	return fmt.Sprintf("(\\%s. %s)", strings.Join(e.Params, " "), e.Body)
}
func (e App) String() string { return fmt.Sprintf("(%s %s)", e.Fun, e.Arg) }
func (e If) String() string {
	return fmt.Sprintf("(if %s then %s else %s)", e.Cond, e.Then, e.Else)
}
func (e Let) String() string {
	parts := make([]string, len(e.Binds))
	for i, b := range e.Binds {
		parts[i] = fmt.Sprintf("%s = %s", b.Name, b.Val)
	}
	return fmt.Sprintf("(let %s in %s)", strings.Join(parts, "; "), e.Body)
}

// apps left-folds applications.
func apps(f Expr, args ...Expr) Expr {
	for _, a := range args {
		f = App{Fun: f, Arg: a}
	}
	return f
}

// freeVars collects the free variables of e into out.
func freeVars(e Expr, bound map[string]bool, out map[string]bool) {
	switch x := e.(type) {
	case Var:
		if !bound[x.Name] {
			out[x.Name] = true
		}
	case Lam:
		inner := copyBound(bound)
		for _, p := range x.Params {
			inner[p] = true
		}
		freeVars(x.Body, inner, out)
	case App:
		freeVars(x.Fun, bound, out)
		freeVars(x.Arg, bound, out)
	case If:
		freeVars(x.Cond, bound, out)
		freeVars(x.Then, bound, out)
		freeVars(x.Else, bound, out)
	case Let:
		inner := copyBound(bound)
		for _, b := range x.Binds {
			inner[b.Name] = true
		}
		for _, b := range x.Binds {
			freeVars(b.Val, inner, out)
		}
		freeVars(x.Body, inner, out)
	}
}

func copyBound(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
