package lang

import (
	"errors"
	"testing"
)

func evalInt(t *testing.T, src string) int64 {
	t.Helper()
	v, err := NewInterp(1_000_000).EvalString(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	i, ok := v.(IInt)
	if !ok {
		t.Fatalf("eval %q = %T, want int", src, v)
	}
	return int64(i)
}

func evalBool(t *testing.T, src string) bool {
	t.Helper()
	v, err := NewInterp(1_000_000).EvalString(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	b, ok := v.(IBool)
	if !ok {
		t.Fatalf("eval %q = %T, want bool", src, v)
	}
	return bool(b)
}

func TestInterpArithmetic(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"neg 5", -5},
		{"0 - 7", -7},
	}
	for _, tt := range tests {
		if got := evalInt(t, tt.src); got != tt.want {
			t.Errorf("%q = %d, want %d", tt.src, got, tt.want)
		}
	}
}

func TestInterpRecursion(t *testing.T) {
	if got := evalInt(t, "let fac n = if n == 0 then 1 else n * fac (n - 1) in fac 10"); got != 3628800 {
		t.Fatalf("fac 10 = %d", got)
	}
	if got := evalInt(t, "let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 15"); got != 610 {
		t.Fatalf("fib 15 = %d", got)
	}
	if !evalBool(t, "let even n = if n == 0 then true else odd (n - 1); odd n = if n == 0 then false else even (n - 1) in even 10") {
		t.Fatal("mutual recursion broken")
	}
}

func TestInterpHigherOrder(t *testing.T) {
	if got := evalInt(t, "let twice f x = f (f x) in twice (\\x. x + 1) 5"); got != 7 {
		t.Fatalf("twice = %d", got)
	}
	if got := evalInt(t, "let compose f g x = f (g x) in compose neg neg 3"); got != 3 {
		t.Fatalf("compose = %d", got)
	}
}

func TestInterpLists(t *testing.T) {
	src := `let map f xs = if isnil xs then [] else f (head xs) : map f (tail xs);
	            sum xs = if isnil xs then 0 else head xs + sum (tail xs)
	        in sum (map (\x. x * x) [1,2,3,4])`
	if got := evalInt(t, src); got != 30 {
		t.Fatalf("sum of squares = %d", got)
	}
}

func TestInterpLaziness(t *testing.T) {
	if got := evalInt(t, "let ones = 1 : ones in head (tail ones)"); got != 1 {
		t.Fatalf("infinite list head = %d", got)
	}
	if got := evalInt(t, "head [5, bottom]"); got != 5 {
		t.Fatalf("lazy list elem = %d", got)
	}
	if got := evalInt(t, "let k x y = x in k 3 bottom"); got != 3 {
		t.Fatalf("lazy k = %d", got)
	}
}

func TestInterpFix(t *testing.T) {
	if got := evalInt(t, "fix (\\f. \\n. if n == 0 then 1 else n * f (n - 1)) 5"); got != 120 {
		t.Fatalf("fix fac 5 = %d", got)
	}
}

func TestInterpSeqSpecPar(t *testing.T) {
	if got := evalInt(t, "seq (1 + 1) 9"); got != 9 {
		t.Fatal("seq")
	}
	if got := evalInt(t, "spec (1 + 1) 9"); got != 9 {
		t.Fatal("spec")
	}
	if got := evalInt(t, "par (1 + 1) 9"); got != 9 {
		t.Fatal("par")
	}
	// seq forces its first argument.
	if _, err := NewInterp(1000).EvalString("seq bottom 9"); !errors.Is(err, ErrBottom) {
		t.Fatalf("seq bottom: err = %v", err)
	}
	// spec does not (in the reference semantics).
	if got := evalInt(t, "spec bottom 9"); got != 9 {
		t.Fatal("spec bottom")
	}
}

func TestInterpDeadlock(t *testing.T) {
	_, err := NewInterp(1000).EvalString("let x = x + 1 in x")
	if !errors.Is(err, ErrBottom) {
		t.Fatalf("x = x+1: err = %v, want ErrBottom", err)
	}
}

func TestInterpFuel(t *testing.T) {
	_, err := NewInterp(1000).EvalString("let loop n = loop (n + 1) in loop 0")
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("divergence: err = %v, want ErrFuel", err)
	}
}

func TestInterpErrors(t *testing.T) {
	bad := []string{
		"1 / 0",
		"1 % 0",
		"1 + true",
		"if 1 then 2 else 3",
		"head 5",
		"unboundname",
		"5 6",
	}
	for _, src := range bad {
		if _, err := NewInterp(10000).EvalString(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestInterpIsBottom(t *testing.T) {
	if !evalBool(t, "isbottom (let x = x + 1 in x)") {
		t.Fatal("isbottom of a knot should be true")
	}
	if evalBool(t, "isbottom (1 + 1)") {
		t.Fatal("isbottom of a value should be false")
	}
}
