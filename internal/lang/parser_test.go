package lang

import (
	"fmt"
	"math/rand"
	"testing"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func TestParseGolden(t *testing.T) {
	tests := []struct{ src, want string }{
		{"1 + 2 * 3", "((__add 1) ((__mul 2) 3))"},
		{"(1 + 2) * 3", "((__mul ((__add 1) 2)) 3)"},
		{"f x y", "((f x) y)"},
		{"\\x. x + 1", "(\\x. ((__add x) 1))"},
		{"\\x y. x", "(\\x y. x)"},
		{"if a then b else c", "(if a then b else c)"},
		{"let x = 1 in x", "(let x = 1 in x)"},
		{"let f x = x; g = 2 in f g", "(let f = (\\x. x); g = 2 in (f g))"},
		{"[1, 2]", "((cons 1) ((cons 2) []))"},
		{"1 : 2 : []", "((cons 1) ((cons 2) []))"},
		{"a == b && c < d", "((and ((__eq a) b)) ((__lt c) d))"},
		{"true || false", "((or true) false)"},
		{"x /= y", "((__ne x) y)"},
		{"1 - 2 - 3", "((__sub ((__sub 1) 2)) 3)"}, // left assoc
		{"f (g x)", "(f (g x))"},
		{"10 % 3", "((__mod 10) 3)"},
		{"x >= y", "((__ge x) y)"},
		{"not true", "(not true)"},
		{"[]", "[]"},
		{"-- comment\n42", "42"},
		{"# also comment\n42", "42"},
	}
	for _, tt := range tests {
		got := mustParse(t, tt.src).String()
		if got != tt.want {
			t.Errorf("parse %q = %s, want %s", tt.src, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1",
		"[1, 2",
		"let x 1 in x",
		"let in x",
		"if a then b",
		"\\. x",
		"\\x x",
		"1 2 )",
		"?",
		"let x = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestParseOperatorRightOperandForms(t *testing.T) {
	// Lambdas/ifs directly to the right of an operator.
	mustParse(t, "1 + if true then 2 else 3")
	mustParse(t, "0 - \\x. x") // lambda after operator parses (nonsense but legal)
	// A lambda argument must be parenthesized.
	if _, err := Parse("twice \\x. x"); err == nil {
		t.Fatal("unparenthesized lambda argument should not parse")
	}
}

func TestFreeVars(t *testing.T) {
	e := mustParse(t, "\\x. x + y + (let z = w in z)")
	out := map[string]bool{}
	freeVars(e, map[string]bool{}, out)
	if !out["y"] || !out["w"] {
		t.Fatalf("free vars = %v, want y and w", out)
	}
	if out["x"] || out["z"] {
		t.Fatalf("bound vars leaked: %v", out)
	}
	// Builtins appear free; that is fine for this helper.
	if !out["__add"] {
		t.Fatalf("desugared builtin missing: %v", out)
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("a\nbb\n  c")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].line != 1 || toks[1].line != 2 || toks[2].line != 3 {
		t.Fatalf("line numbers wrong: %+v", toks)
	}
}

func TestLexerError(t *testing.T) {
	if _, err := lex("a ? b"); err == nil {
		t.Fatal("expected lexer error for '?'")
	}
}

// genExpr builds a random well-formed expression for round-trip testing.
func genExpr(rng *rand.Rand, depth int, scope []string) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return IntLit{Val: int64(rng.Intn(100))}
		case 1:
			return BoolLit{Val: rng.Intn(2) == 0}
		case 2:
			if len(scope) > 0 {
				return Var{Name: scope[rng.Intn(len(scope))]}
			}
			return IntLit{Val: 1}
		default:
			return NilLit{}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return App{Fun: genExpr(rng, depth-1, scope), Arg: genExpr(rng, depth-1, scope)}
	case 1:
		p := fmt.Sprintf("p%d", len(scope))
		return Lam{Params: []string{p}, Body: genExpr(rng, depth-1, append(scope, p))}
	case 2:
		return If{
			Cond: genExpr(rng, depth-1, scope),
			Then: genExpr(rng, depth-1, scope),
			Else: genExpr(rng, depth-1, scope),
		}
	case 3:
		n := fmt.Sprintf("b%d", len(scope))
		inner := append(scope, n)
		return Let{
			Binds: []Bind{{Name: n, Val: genExpr(rng, depth-1, inner)}},
			Body:  genExpr(rng, depth-1, inner),
		}
	default:
		return genExpr(rng, depth-1, scope)
	}
}

// TestParseRoundTrip: printing and re-parsing a random AST is a fixpoint
// (String renders fully parenthesized, so one round trip normalizes).
func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		e := genExpr(rng, 4, nil)
		src := e.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", src, err)
		}
		if parsed.String() != src {
			t.Fatalf("round trip changed:\n  orig: %s\n  got:  %s", src, parsed.String())
		}
	}
}
