package lang

import (
	"strings"
	"testing"

	"dgr/internal/gm"
	"dgr/internal/graph"
)

// Fuzz targets for the language front end. The contract under fuzzing is
// "no panic, no hang": arbitrary input must either produce a value or a
// Go error. Semantic correctness is the differential harness's job; these
// targets protect the lexer/parser/lifter/compilers from crash bugs on
// adversarial input (deep nesting, stray operators, huge literals).

// fuzzSeeds exercises every syntactic construct at least once; the same
// list seeds all three targets so a parser seed that reaches the compiler
// stays interesting there.
var fuzzSeeds = []string{
	"1 + 2 * 3",
	"let f = \\x. x + 1 in f 41",
	"let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 10",
	"let x = x + 1 in x",
	"if true then 1 else 2",
	"[1, 2, 3]",
	"1 : 2 : []",
	"head [1]",
	"let a = b + 1; b = a + 1 in a",
	"\\x. \\y. x y",
	"let tak x y z = if y >= x then z else tak (tak (x-1) y z) (tak (y-1) z x) (tak (z-1) x y) in tak 4 2 1",
	"((((((1))))))",
	"- 1",
	"let in 1",
	"[",
	"1 +",
	"seq bottom 1",
	"isbottom (let x = x in x)",
}

// FuzzLex: the lexer must terminate without panicking on arbitrary bytes.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add("\x00\xff")
	f.Add(strings.Repeat("~", 64))
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		_, _ = lex(src)
	})
}

// FuzzParse: parse, and when parsing succeeds, require that the printed
// form re-parses (String is the generator's bridge into Machine.Eval, so
// a print/re-parse gap is a real bug, not fuzz noise). Negative literals
// are the one known asymmetry: they only arise from evaluation, never
// from parsing, so printed output cannot contain them here.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add(strings.Repeat("(", 1<<12))
	f.Add(strings.Repeat("1:", 1<<12) + "1")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		e, err := Parse(src)
		if err != nil {
			return
		}
		printed := e.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %v\nsrc: %q\nprinted: %q", err, src, printed)
		}
		if Digest(back) != Digest(e) {
			t.Fatalf("print/re-parse changed the program\nsrc: %q\nprinted: %q", src, printed)
		}
	})
}

// FuzzCompile: everything that parses must survive both back ends — the
// interpreter-path graph compiler and the lift + supercombinator
// compiler — returning either a root vertex or an error.
func FuzzCompile(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		if _, err := Parse(src); err != nil {
			return
		}
		store := graph.NewStore(graph.Config{Capacity: 1 << 12})
		_, _ = CompileString(store, src)
		store2 := graph.NewStore(graph.Config{Capacity: 1 << 12})
		_, _ = CompileSupers(store2, gm.NewProgram(), src)
	})
}
