// Package task defines the unit of work of Hudak's model — a task <s,d>
// propagating from a source vertex to a destination vertex — together with
// the per-PE task pools that hold unexecuted tasks.
//
// Both reduction-process tasks (demand, result, reduce) and marking-process
// tasks (mark, return) share the <s,d> representation, as in the paper. Task
// pools are priority-banded because §3.2 requires vital tasks to outrank
// eager ones and the restructuring phase dynamically reprioritizes tasks.
package task

import (
	"fmt"

	"dgr/internal/graph"
)

// Kind discriminates task behavior.
type Kind uint8

// Task kinds. Demand/Result/Reduce belong to the reduction process;
// Mark/Return belong to the marking processes M_R and M_T.
const (
	// Demand is <s,d> requesting the value of d on behalf of s. Req carries
	// the request kind (vital or eager).
	Demand Kind = iota + 1
	// Result is <s,d> returning to d the fact that s has reached weak head
	// normal form; d reads s's value from the graph.
	Result
	// Reduce is <-,d>: continue the reduction of d (self-scheduled
	// continuation after a rewrite or an arrived result).
	Reduce
	// Mark is the mark task of Figures 4-1/5-1/5-3: Dst is the vertex to
	// mark, Src is the marking-tree parent, Ctx selects M_R or M_T, and
	// Prior is the mark2 priority (ignored by M_T).
	Mark
	// Return is return1: Dst is the marking-tree parent to notify; Src is
	// the returning vertex (diagnostic only). Dst == NilVertex addresses
	// the collector's rootpar.
	Return
)

var kindNames = [...]string{
	Demand: "demand",
	Result: "result",
	Reduce: "reduce",
	Mark:   "mark",
	Return: "return",
}

// KindNameTable returns a copy of the kind-name table indexed by numeric
// Kind value, for observers that record kinds as raw bytes.
func KindNameTable() []string { return append([]string(nil), kindNames[:]...) }

// String returns the task kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("task(%d)", uint8(k))
}

// IsMarking reports whether the kind belongs to a marking process.
func (k Kind) IsMarking() bool { return k == Mark || k == Return }

// IsReduction reports whether the kind belongs to the reduction process.
func (k Kind) IsReduction() bool { return k == Demand || k == Result || k == Reduce }

// Priority bands for pool scheduling, from lowest to highest. Marking tasks
// get their own top band so the endless GC cycles make progress even under
// reduction load; within the reduction process, bands implement the paper's
// vital > eager > reserve ordering.
const (
	BandReserve uint8 = iota
	BandEager
	BandVital
	BandMarking
	numBands
)

// NumBands is the number of priority bands a pool schedules over.
const NumBands = int(numBands)

// Task is an unexecuted task <s,d>. The zero value is invalid.
type Task struct {
	Kind Kind
	// Src is the source vertex s (NilVertex when the source is irrelevant,
	// written <-,d> in the paper).
	Src graph.VertexID
	// Dst is the destination vertex d; the task executes on the PE owning d.
	Dst graph.VertexID
	// Req is the request kind for Demand tasks.
	Req graph.ReqKind
	// Ctx selects the marking context for Mark/Return tasks.
	Ctx graph.Ctx
	// Prior is the mark2 marking priority (3 vital / 2 eager / 1 reserve).
	Prior uint8
	// Epoch tags Mark/Return tasks with their marking cycle so tasks that
	// straddle a cycle boundary (e.g. spawned by a cooperating mutator just
	// as the cycle completes) are dropped instead of corrupting the next
	// cycle's mt-cnt accounting.
	Epoch uint64
	// Band caches the scheduling band; set by Band() when pushed.
	Band uint8

	// Trace is the causal-lineage trace ID this task belongs to, or 0 for
	// an untraced task (the common case — lineage is head-sampled). The
	// field rides alongside scheduling state and is never consulted by the
	// scheduler, pools, or marking machinery, so stamping it cannot perturb
	// a schedule.
	Trace uint64
	// Spans packs this task's own span ID (high 32 bits) and its causal
	// parent's span ID (low 32 bits). Zero halves mean "not yet assigned" /
	// "no parent". Meaningful only when Trace != 0.
	Spans uint64
	// Born is the wall-clock UnixNano at which the task was spawned,
	// stamped only for traced tasks; exec-start minus Born is the task's
	// queue wait (plus any fabric transit, which hop spans subtract out).
	Born int64
}

// Span returns the task's own span ID (0 = unassigned).
func (t Task) Span() uint32 { return uint32(t.Spans >> 32) }

// ParentSpan returns the span ID of the task's causal parent (0 = root).
func (t Task) ParentSpan() uint32 { return uint32(t.Spans) }

// SetSpan assigns the task's own span ID, preserving the parent half.
func (t *Task) SetSpan(id uint32) { t.Spans = uint64(id)<<32 | t.Spans&0xffffffff }

// SetParentSpan assigns the causal parent's span ID, preserving the own half.
func (t *Task) SetParentSpan(id uint32) { t.Spans = t.Spans&^uint64(0xffffffff) | uint64(id) }

// ComputeBand derives the scheduling band from the task's kind and request
// kind / priority.
func (t Task) ComputeBand() uint8 {
	switch t.Kind {
	case Mark, Return:
		return BandMarking
	case Demand:
		switch t.Req {
		case graph.ReqVital:
			return BandVital
		case graph.ReqEager:
			return BandEager
		default:
			return BandReserve
		}
	case Result, Reduce:
		// Results and continuations inherit vital urgency: they unblock
		// waiting computations.
		return BandVital
	default:
		return BandReserve
	}
}

// String renders the task for diagnostics.
func (t Task) String() string {
	switch t.Kind {
	case Mark:
		return fmt.Sprintf("mark%s<%d,%d,p%d>", t.Ctx, t.Src, t.Dst, t.Prior)
	case Return:
		return fmt.Sprintf("return%s<%d,%d>", t.Ctx, t.Src, t.Dst)
	case Demand:
		return fmt.Sprintf("demand<%d,%d,%s>", t.Src, t.Dst, t.Req)
	case Result:
		return fmt.Sprintf("result<%d,%d>", t.Src, t.Dst)
	case Reduce:
		return fmt.Sprintf("reduce<-,%d>", t.Dst)
	default:
		return fmt.Sprintf("%s<%d,%d>", t.Kind, t.Src, t.Dst)
	}
}
