package task

import (
	"math/rand"
	"sync"

	"dgr/internal/graph"
)

// Pool is the per-PE taskpool(i) of §5.2: all unexecuted tasks whose
// destination resides on that PE. It is safe for concurrent use. Tasks are
// held in priority bands (marking > vital > eager > reserve) with FIFO order
// within a band.
type Pool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	bands [numBands][]Task
	n     int
	// closed stops blocking waiters.
	closed bool
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Push enqueues a task, computing its band.
func (p *Pool) Push(t Task) {
	t.Band = t.ComputeBand()
	p.mu.Lock()
	p.bands[t.Band] = append(p.bands[t.Band], t)
	p.n++
	p.mu.Unlock()
	p.cond.Signal()
}

// PushBatch enqueues a batch of tasks under one lock acquisition and one
// wakeup — the amortization the inter-PE fabric's coalescing buys: a link
// delivers a whole batch into the destination pool at the cost of a single
// message.
func (p *Pool) PushBatch(ts []Task) {
	if len(ts) == 0 {
		return
	}
	p.mu.Lock()
	for _, t := range ts {
		t.Band = t.ComputeBand()
		p.bands[t.Band] = append(p.bands[t.Band], t)
	}
	p.n += len(ts)
	p.mu.Unlock()
	if len(ts) == 1 {
		p.cond.Signal()
	} else {
		p.cond.Broadcast()
	}
}

// Len returns the number of queued tasks.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// TryPop removes and returns the highest-band task, FIFO within a band.
func (p *Pool) TryPop() (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.popLocked()
}

func (p *Pool) popLocked() (Task, bool) {
	if p.n == 0 {
		return Task{}, false
	}
	for b := int(numBands) - 1; b >= 0; b-- {
		if len(p.bands[b]) > 0 {
			t := p.bands[b][0]
			p.bands[b] = p.bands[b][1:]
			p.n--
			return t, true
		}
	}
	return Task{}, false
}

// TryPopWhere removes and returns the first queued task (scanning bands
// high to low, FIFO within a band) for which pred returns true. It is the
// schedule replayer's selection primitive: a recorded log, not the
// scheduler's policy, decides which task runs next.
func (p *Pool) TryPopWhere(pred func(Task) bool) (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for b := int(numBands) - 1; b >= 0; b-- {
		for i, t := range p.bands[b] {
			if pred(t) {
				p.bands[b] = append(p.bands[b][:i], p.bands[b][i+1:]...)
				p.n--
				return t, true
			}
		}
	}
	return Task{}, false
}

// TryPopRandom removes a uniformly random queued task (adversarial
// scheduling for interleaving tests). rng must not be shared across
// goroutines.
func (p *Pool) TryPopRandom(rng *rand.Rand) (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n == 0 {
		return Task{}, false
	}
	k := rng.Intn(p.n)
	for b := range p.bands {
		if k < len(p.bands[b]) {
			t := p.bands[b][k]
			p.bands[b] = append(p.bands[b][:k], p.bands[b][k+1:]...)
			p.n--
			return t, true
		}
		k -= len(p.bands[b])
	}
	return Task{}, false // unreachable
}

// PopWait blocks until a task is available or the pool is closed. The
// second return is false only after Close.
func (p *Pool) PopWait() (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if t, ok := p.popLocked(); ok {
			return t, true
		}
		if p.closed {
			return Task{}, false
		}
		p.cond.Wait()
	}
}

// Close wakes all blocked waiters; subsequent PopWait calls drain remaining
// tasks and then return false.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Kick wakes one waiter without pushing (used when external state such as a
// stop flag changed).
func (p *Pool) Kick() { p.cond.Broadcast() }

// Each calls fn for every queued task under the pool lock. fn must not call
// back into the pool. This is the taskpool snapshot M_T uses to build
// taskroot_i. When an inter-PE fabric is wired in, a spawned task may also
// be in transit between pools, so M_T combines this with the fabric's own
// Each to keep every live task observable.
func (p *Pool) Each(fn func(Task)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for b := range p.bands {
		for _, t := range p.bands[b] {
			fn(t)
		}
	}
}

// Expunge removes every task for which pred returns true and reports how
// many were removed. This implements the restructuring phase's deletion of
// irrelevant tasks.
func (p *Pool) Expunge(pred func(Task) bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	removed := 0
	for b := range p.bands {
		kept := p.bands[b][:0]
		for _, t := range p.bands[b] {
			if pred(t) {
				removed++
				continue
			}
			kept = append(kept, t)
		}
		p.bands[b] = kept
	}
	p.n -= removed
	return removed
}

// Reprioritize recomputes each queued task's request kind via fn (given the
// task, returns the new request kind) and moves tasks between bands
// accordingly. It implements §3.2's dynamic prioritization: after a marking
// cycle, a task's priority is re-derived from the priority its destination
// was marked with. It returns the number of tasks whose band changed.
func (p *Pool) Reprioritize(fn func(Task) graph.ReqKind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	changed := 0
	var moved []Task
	for b := range p.bands {
		kept := p.bands[b][:0]
		for _, t := range p.bands[b] {
			if t.Kind != Demand {
				kept = append(kept, t)
				continue
			}
			nk := fn(t)
			if nk == t.Req {
				kept = append(kept, t)
				continue
			}
			t.Req = nk
			nb := t.ComputeBand()
			if nb == t.Band {
				kept = append(kept, t)
				continue
			}
			t.Band = nb
			moved = append(moved, t)
			changed++
		}
		p.bands[b] = kept
	}
	for _, t := range moved {
		p.bands[t.Band] = append(p.bands[t.Band], t)
	}
	return changed
}
