package task

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dgr/internal/graph"
)

// Pool is the per-PE taskpool(i) of §5.2: all unexecuted tasks whose
// destination resides on that PE. It is safe for concurrent use. Tasks are
// held in priority bands (marking > vital > eager > reserve) with FIFO order
// within a band; each band is a growable ring buffer, so the steady-state
// push/pop cycle of a busy PE allocates nothing.
type Pool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	bands [numBands]ring
	n     int
	// waiters counts goroutines blocked in PopWait; wakeups are issued
	// only when someone can actually consume them.
	waiters int
	// closed stops blocking waiters.
	closed bool
	// onPop, when set, observes every popped task while the pool lock is
	// still held. Because Each holds the same lock, any observer that reads
	// both is guaranteed one of the two views of a task: still queued (Each
	// sees it) or already popped (onPop fired first). The collector's
	// deadlock-verdict watch relies on this to close the window in which a
	// popped-but-not-yet-published task is invisible to M_T's snapshot.
	onPop func(Task)
	// onTake, when set, observes every task consumed through TryPop — the
	// parallel PE loop's pop path — while the pool lock is still held. The
	// scheduler uses it to publish the task as the owning PE's in-execution
	// task before the pool lock is released: without it, a task is invisible
	// to both the queued-task snapshot and the current-task view between the
	// pop and the executor's own publish — a window a taskpool snapshot
	// (M_T's troot) could land in. It does not fire for StealInto's moves
	// (the task stays in pool custody) nor for the deterministic selection
	// primitives TryPopWhere/TryPopRandom, whose single-threaded callers
	// execute the task synchronously with no invisibility window.
	onTake func(Task)
	// seq is a process-global creation number; StealInto acquires the two
	// pool locks in seq order so concurrent steals in opposite directions
	// cannot deadlock.
	seq uint64
}

// poolSeq numbers pools at creation for StealInto's lock ordering.
var poolSeq atomic.Uint64

// NewPool returns an empty pool.
func NewPool() *Pool {
	p := &Pool{seq: poolSeq.Add(1)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// SetOnPop installs (or, with nil, clears) the pop observer. The hook runs
// under the pool lock and must not call back into the pool. It is armed
// only while a deadlock verdict is pending, so the steady-state pop path
// pays a nil check.
func (p *Pool) SetOnPop(fn func(Task)) {
	p.mu.Lock()
	p.onPop = fn
	p.mu.Unlock()
}

// SetOnTake installs (or, with nil, clears) the consumption observer. The
// hook runs under the pool lock for every task popped for execution (but
// not for tasks moved by StealInto) and must not call back into the pool.
func (p *Pool) SetOnTake(fn func(Task)) {
	p.mu.Lock()
	p.onTake = fn
	p.mu.Unlock()
}

// Wakeup policy: every push wakes exactly as many waiters as it queued
// tasks (capped at the number of goroutines actually blocked), via one
// Signal per wakeable task. Signal wakes at most one waiter, each woken
// waiter consumes at least one task or re-waits, so this is sufficient for
// progress without Broadcast's thundering herd — a Broadcast on an n-PE
// machine wakes n goroutines to fight over one pool lock even when only
// one of them can pop. When no waiter is blocked, no wakeup is issued at
// all.
func (p *Pool) wake(pushed, waiters int) {
	if waiters < pushed {
		pushed = waiters
	}
	for i := 0; i < pushed; i++ {
		p.cond.Signal()
	}
}

// Push enqueues a task, computing its band.
func (p *Pool) Push(t Task) {
	t.Band = t.ComputeBand()
	p.mu.Lock()
	p.bands[t.Band].push(t)
	p.n++
	waiters := p.waiters
	p.mu.Unlock()
	p.wake(1, waiters)
}

// PushBatch enqueues a batch of tasks under one lock acquisition — the
// amortization the inter-PE fabric's coalescing buys: a link delivers a
// whole batch into the destination pool at the cost of a single message.
// See wake for the wakeup policy (one Signal per consumable task).
func (p *Pool) PushBatch(ts []Task) {
	if len(ts) == 0 {
		return
	}
	p.mu.Lock()
	for _, t := range ts {
		t.Band = t.ComputeBand()
		p.bands[t.Band].push(t)
	}
	p.n += len(ts)
	waiters := p.waiters
	p.mu.Unlock()
	p.wake(len(ts), waiters)
}

// Len returns the number of queued tasks.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// BandLens returns the queued-task count per priority band, lowest band
// first. One lock acquisition; used by the observability sampler.
func (p *Pool) BandLens() [NumBands]int {
	var out [NumBands]int
	p.mu.Lock()
	for b := range p.bands {
		out[b] = p.bands[b].len()
	}
	p.mu.Unlock()
	return out
}

// TryPop removes and returns the highest-band task, FIFO within a band.
func (p *Pool) TryPop() (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.popLocked()
}

func (p *Pool) popLocked() (Task, bool) {
	if p.n == 0 {
		return Task{}, false
	}
	for b := int(numBands) - 1; b >= 0; b-- {
		if p.bands[b].len() > 0 {
			p.n--
			t := p.bands[b].popFront()
			if p.onPop != nil {
				p.onPop(t)
			}
			if p.onTake != nil {
				p.onTake(t)
			}
			return t, true
		}
	}
	return Task{}, false
}

// TryPopWhere removes and returns the first queued task (scanning bands
// high to low, FIFO within a band) for which pred returns true. It is the
// schedule replayer's selection primitive: a recorded log, not the
// scheduler's policy, decides which task runs next.
func (p *Pool) TryPopWhere(pred func(Task) bool) (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for b := int(numBands) - 1; b >= 0; b-- {
		r := &p.bands[b]
		for i := 0; i < r.len(); i++ {
			if pred(*r.at(i)) {
				p.n--
				t := r.removeAt(i)
				if p.onPop != nil {
					p.onPop(t)
				}
				return t, true
			}
		}
	}
	return Task{}, false
}

// TryPopRandom removes a uniformly random queued task (adversarial
// scheduling for interleaving tests). rng must not be shared across
// goroutines.
func (p *Pool) TryPopRandom(rng *rand.Rand) (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n == 0 {
		return Task{}, false
	}
	k := rng.Intn(p.n)
	for b := range p.bands {
		if k < p.bands[b].len() {
			p.n--
			t := p.bands[b].removeAt(k)
			if p.onPop != nil {
				p.onPop(t)
			}
			return t, true
		}
		k -= p.bands[b].len()
	}
	return Task{}, false // unreachable
}

// PopWait blocks until a task is available or the pool is closed. The
// second return is false only after Close.
func (p *Pool) PopWait() (Task, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if t, ok := p.popLocked(); ok {
			return t, true
		}
		if p.closed {
			return Task{}, false
		}
		p.waiters++
		p.cond.Wait()
		p.waiters--
	}
}

// PopWaitFor blocks until a task is available, the pool is closed, or d
// elapses. closed is true only after Close; a (zero, false, false) return
// means the wait timed out. The stealing PE loop uses it as a timed park:
// park briefly on the own pool, and on timeout go back to scanning peers —
// a plain PopWait would strand an idle PE forever while a neighbor's queue
// grows with partition-local work it could have stolen.
func (p *Pool) PopWaitFor(d time.Duration) (t Task, ok bool, closed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.popLocked(); ok {
		return t, true, false
	}
	if p.closed {
		return Task{}, false, true
	}
	// sync.Cond has no timed wait; an AfterFunc flips a flag under the pool
	// lock and broadcasts. The broadcast is rare (one per expired park) so
	// the thundering herd the Signal policy avoids is not reintroduced.
	expired := false
	tm := time.AfterFunc(d, func() {
		p.mu.Lock()
		expired = true
		p.mu.Unlock()
		p.cond.Broadcast()
	})
	defer tm.Stop()
	for {
		if t, ok := p.popLocked(); ok {
			return t, true, false
		}
		if p.closed {
			return Task{}, false, true
		}
		if expired {
			return Task{}, false, false
		}
		p.waiters++
		p.cond.Wait()
		p.waiters--
	}
}

// StealInto moves up to max tasks from the tails of p's band rings into the
// same bands of dst, highest band first, and returns how many moved. Both
// pool locks are held for the transfer — acquired in pool-creation order so
// opposite-direction steals cannot deadlock — which keeps every task in
// pool custody throughout: an M_T taskpool snapshot (Each takes the same
// locks) sees each task in exactly one of the two pools. p's onPop observer
// fires for every stolen task, so an armed deadlock-verdict watch counts a
// steal as reduction activity exactly like a pop; a task that leaves the
// victim after its pool was snapshotted can therefore never silently escape
// a pending verdict's re-animation veto.
//
// Tails, not heads: the victim keeps the oldest work in each band (what it
// will pop next), and the stolen tasks retain their relative FIFO order at
// the thief's tail.
// each, when non-nil, additionally observes every moved task under the same
// locks (the scheduler records lineage steal spans through it).
func (p *Pool) StealInto(dst *Pool, max int, each func(Task)) int {
	if p == dst || max <= 0 {
		return 0
	}
	first, second := p, dst
	if dst.seq < p.seq {
		first, second = dst, p
	}
	first.mu.Lock()
	second.mu.Lock()
	defer first.mu.Unlock()
	defer second.mu.Unlock()

	moved := 0
	for b := int(numBands) - 1; b >= 0 && moved < max; b-- {
		r := &p.bands[b]
		cnt := r.len()
		if cnt > max-moved {
			cnt = max - moved
		}
		if cnt == 0 {
			continue
		}
		// Copy the tail segment in FIFO order, then truncate the victim band.
		start := r.len() - cnt
		for i := 0; i < cnt; i++ {
			t := *r.at(start + i)
			if p.onPop != nil {
				p.onPop(t)
			}
			if each != nil {
				each(t)
			}
			dst.bands[b].push(t)
		}
		r.n -= cnt
		moved += cnt
	}
	if moved > 0 {
		p.n -= moved
		dst.n += moved
		dst.wake(moved, dst.waiters)
	}
	return moved
}

// EachAcross calls fn for every task queued in any of the pools while
// holding EVERY pool lock simultaneously, acquired in pool-creation (seq)
// order — the same global order StealInto uses, so the two can never
// deadlock. This is the atomic whole-machine snapshot M_T's troot needs
// once work stealing is on: a pool-by-pool scan can be raced by a steal
// that moves a batch from a not-yet-scanned pool into an already-scanned
// one, hiding queued tasks from the snapshot entirely. Because StealInto
// holds both pool locks for the transfer, a scan that holds all locks sees
// every task in pool custody exactly once. fn must not call back into any
// of the pools.
func EachAcross(pools []*Pool, fn func(Task)) {
	ordered := append([]*Pool(nil), pools...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	for _, p := range ordered {
		p.mu.Lock()
	}
	defer func() {
		for i := len(ordered) - 1; i >= 0; i-- {
			ordered[i].mu.Unlock()
		}
	}()
	for _, p := range ordered {
		for b := range p.bands {
			r := &p.bands[b]
			for i := 0; i < r.len(); i++ {
				fn(*r.at(i))
			}
		}
	}
}

// Close wakes all blocked waiters; subsequent PopWait calls drain remaining
// tasks and then return false.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Kick wakes all waiters without pushing (used when external state such as
// a stop flag changed; correctness requires every waiter to re-check, so
// this is the one deliberate Broadcast besides Close).
func (p *Pool) Kick() { p.cond.Broadcast() }

// Each calls fn for every queued task under the pool lock. fn must not call
// back into the pool. This is the taskpool snapshot M_T uses to build
// taskroot_i. When an inter-PE fabric is wired in, a spawned task may also
// be in transit between pools, so M_T combines this with the fabric's own
// Each to keep every live task observable.
func (p *Pool) Each(fn func(Task)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for b := range p.bands {
		r := &p.bands[b]
		for i := 0; i < r.len(); i++ {
			fn(*r.at(i))
		}
	}
}

// Expunge removes every task for which pred returns true and reports how
// many were removed. This implements the restructuring phase's deletion of
// irrelevant tasks.
func (p *Pool) Expunge(pred func(Task) bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	removed := 0
	for b := range p.bands {
		removed += p.bands[b].filter(func(t *Task) bool { return !pred(*t) })
	}
	p.n -= removed
	return removed
}

// Reprioritize recomputes each queued task's request kind via fn (given the
// task, returns the new request kind) and moves tasks between bands
// accordingly. It implements §3.2's dynamic prioritization: after a marking
// cycle, a task's priority is re-derived from the priority its destination
// was marked with. It returns the number of tasks whose band changed.
func (p *Pool) Reprioritize(fn func(Task) graph.ReqKind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	changed := 0
	var moved []Task
	for b := range p.bands {
		p.bands[b].filter(func(t *Task) bool {
			if t.Kind != Demand {
				return true
			}
			nk := fn(*t)
			if nk == t.Req {
				return true
			}
			t.Req = nk
			nb := t.ComputeBand()
			if nb == t.Band {
				return true
			}
			t.Band = nb
			moved = append(moved, *t)
			changed++
			return false
		})
	}
	for _, t := range moved {
		p.bands[t.Band].push(t)
	}
	return changed
}
