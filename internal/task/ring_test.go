package task

import (
	"math/rand"
	"testing"

	"dgr/internal/graph"
)

func ringTasks(r *ring) []int64 {
	out := make([]int64, 0, r.len())
	for i := 0; i < r.len(); i++ {
		out = append(out, int64(r.at(i).Dst))
	}
	return out
}

func TestRingFIFOWraparound(t *testing.T) {
	var r ring
	// Interleave pushes and pops so head wraps the initial capacity many
	// times while the ring stays small.
	next, expect := int64(0), int64(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			r.push(Task{Dst: vid(next)})
			next++
		}
		for i := 0; i < 2; i++ {
			got := r.popFront()
			if int64(got.Dst) != expect {
				t.Fatalf("round %d: popped %d, want %d", round, got.Dst, expect)
			}
			expect++
		}
	}
	if r.len() != 100 {
		t.Fatalf("len = %d, want 100", r.len())
	}
	for ; expect < next; expect++ {
		if got := r.popFront(); int64(got.Dst) != expect {
			t.Fatalf("drain: popped %d, want %d", got.Dst, expect)
		}
	}
	if r.len() != 0 {
		t.Fatalf("len = %d, want 0", r.len())
	}
}

func vid(n int64) graph.VertexID { return graph.VertexID(n) }

func TestRingRemoveAtPreservesOrder(t *testing.T) {
	// Remove from every position of a wrapped ring; remaining order must be
	// FIFO order minus the removed element.
	for remove := 0; remove < 7; remove++ {
		var r ring
		// Force wrap: fill past initial cap boundary with pops in between.
		for i := 0; i < 20; i++ {
			r.push(Task{Dst: vid(int64(i))})
		}
		for i := 0; i < 13; i++ {
			r.popFront()
		}
		// ring now holds 13..19 (7 tasks), wrapped in a cap-16 buffer.
		got := r.removeAt(remove)
		if int64(got.Dst) != int64(13+remove) {
			t.Fatalf("removeAt(%d) = %d, want %d", remove, got.Dst, 13+remove)
		}
		var want []int64
		for i := int64(13); i < 20; i++ {
			if i != int64(13+remove) {
				want = append(want, i)
			}
		}
		rest := ringTasks(&r)
		if len(rest) != len(want) {
			t.Fatalf("after removeAt(%d): %v, want %v", remove, rest, want)
		}
		for i := range want {
			if rest[i] != want[i] {
				t.Fatalf("after removeAt(%d): %v, want %v", remove, rest, want)
			}
		}
	}
}

func TestRingFilterInPlace(t *testing.T) {
	var r ring
	for i := 0; i < 40; i++ {
		r.push(Task{Dst: vid(int64(i))})
	}
	for i := 0; i < 25; i++ { // wrap
		r.popFront()
		r.push(Task{Dst: vid(int64(40 + i))})
	}
	// Keep even Dst only, and bump Prior through the pointer to check
	// mutation retention.
	removed := r.filter(func(tk *Task) bool {
		if tk.Dst%2 != 0 {
			return false
		}
		tk.Prior = 9
		return true
	})
	if removed != 20 {
		t.Fatalf("removed = %d, want 20", removed)
	}
	prev := int64(-1)
	for i := 0; i < r.len(); i++ {
		tk := r.at(i)
		if tk.Dst%2 != 0 {
			t.Fatalf("odd survivor %d", tk.Dst)
		}
		if tk.Prior != 9 {
			t.Fatalf("filter dropped mutation on %d", tk.Dst)
		}
		if int64(tk.Dst) <= prev {
			t.Fatalf("order broken at %d after %d", tk.Dst, prev)
		}
		prev = int64(tk.Dst)
	}
}

// TestRingMatchesSliceModel drives ring and a plain-slice model with the
// same random operation sequence and requires identical observable state
// throughout — the semantics-identity argument for swapping the pool's
// band storage.
func TestRingMatchesSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r ring
	var model []Task
	for op := 0; op < 5000; op++ {
		switch k := rng.Intn(4); {
		case k == 0 || len(model) == 0:
			tk := Task{Dst: vid(int64(op)), Kind: Demand}
			r.push(tk)
			model = append(model, tk)
		case k == 1:
			got := r.popFront()
			want := model[0]
			model = model[1:]
			if got != want {
				t.Fatalf("op %d: popFront = %v, want %v", op, got, want)
			}
		case k == 2:
			i := rng.Intn(len(model))
			got := r.removeAt(i)
			want := model[i]
			model = append(model[:i], model[i+1:]...)
			if got != want {
				t.Fatalf("op %d: removeAt(%d) = %v, want %v", op, i, got, want)
			}
		default:
			cut := graph.VertexID(rng.Intn(3))
			r.filter(func(tk *Task) bool { return tk.Dst%3 != cut })
			kept := model[:0]
			for _, tk := range model {
				if tk.Dst%3 != cut {
					kept = append(kept, tk)
				}
			}
			model = kept
		}
		if r.len() != len(model) {
			t.Fatalf("op %d: len = %d, model %d", op, r.len(), len(model))
		}
		for i := range model {
			if *r.at(i) != model[i] {
				t.Fatalf("op %d: at(%d) = %v, model %v", op, i, *r.at(i), model[i])
			}
		}
	}
}
