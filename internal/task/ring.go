package task

// ring is a growable FIFO ring buffer of tasks: the storage behind one
// priority band of a Pool. The old implementation held each band in a
// plain slice and popped with bands[b] = bands[b][1:], which both leaks
// (the backing array retains every already-popped head until the next
// append reallocates) and churns allocations under steady push/pop. A
// ring pops by advancing an index, so steady-state traffic runs entirely
// inside one reused buffer; it grows by doubling only when the band's
// high-water mark rises.
//
// Task holds no pointers, so popped slots need no clearing for the GC.
// Capacity is always a power of two (or zero) so position arithmetic is a
// mask, not a modulo.
type ring struct {
	buf  []Task
	head int // index of the FIFO-first element; meaningful only when n > 0
	n    int
}

// len returns the number of queued tasks.
func (r *ring) len() int { return r.n }

// at returns a pointer to the i-th task in FIFO order (0 = front).
// The pointer is invalidated by any push or grow.
func (r *ring) at(i int) *Task {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// push appends t at the tail.
func (r *ring) push(t Task) {
	if r.n == len(r.buf) {
		r.grow(r.n + 1)
	}
	*r.at(r.n) = t
	r.n++
}

// grow reallocates to the smallest power-of-two capacity holding at least
// need, unwrapping the live elements to the front.
func (r *ring) grow(need int) {
	newCap := len(r.buf)
	if newCap == 0 {
		newCap = 16
	}
	for newCap < need {
		newCap *= 2
	}
	buf := make([]Task, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = *r.at(i)
	}
	r.buf = buf
	r.head = 0
}

// popFront removes and returns the FIFO-first task. The ring must be
// non-empty.
func (r *ring) popFront() Task {
	t := *r.at(0)
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return t
}

// removeAt removes and returns the i-th task in FIFO order, preserving the
// order of the remaining tasks. It shifts whichever side of i is shorter.
func (r *ring) removeAt(i int) Task {
	t := *r.at(i)
	if i < r.n-1-i {
		// Shift the front segment [0, i) back by one and advance head.
		for j := i; j > 0; j-- {
			*r.at(j) = *r.at(j - 1)
		}
		r.head = (r.head + 1) & (len(r.buf) - 1)
	} else {
		// Shift the tail segment (i, n) forward by one.
		for j := i; j < r.n-1; j++ {
			*r.at(j) = *r.at(j + 1)
		}
	}
	r.n--
	return t
}

// filter keeps only the tasks for which keep returns true, preserving FIFO
// order, and returns how many were removed. keep is called in FIFO order
// and may mutate the task through the pointer; mutations to kept tasks are
// retained in place.
func (r *ring) filter(keep func(*Task) bool) int {
	w := 0
	for i := 0; i < r.n; i++ {
		t := *r.at(i)
		if keep(&t) {
			*r.at(w) = t
			w++
		}
	}
	removed := r.n - w
	r.n = w
	return removed
}
