package task

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dgr/internal/graph"
)

func TestKindPredicates(t *testing.T) {
	if !Mark.IsMarking() || !Return.IsMarking() {
		t.Fatal("marking predicates wrong")
	}
	if Mark.IsReduction() || !Demand.IsReduction() || !Result.IsReduction() || !Reduce.IsReduction() {
		t.Fatal("reduction predicates wrong")
	}
	if Demand.String() != "demand" || Kind(99).String() != "task(99)" {
		t.Fatal("kind names wrong")
	}
}

func TestComputeBand(t *testing.T) {
	tests := []struct {
		task Task
		want uint8
	}{
		{Task{Kind: Mark}, BandMarking},
		{Task{Kind: Return}, BandMarking},
		{Task{Kind: Demand, Req: graph.ReqVital}, BandVital},
		{Task{Kind: Demand, Req: graph.ReqEager}, BandEager},
		{Task{Kind: Demand, Req: graph.ReqNone}, BandReserve},
		{Task{Kind: Result}, BandVital},
		{Task{Kind: Reduce}, BandVital},
	}
	for _, tt := range tests {
		if got := tt.task.ComputeBand(); got != tt.want {
			t.Errorf("%v band = %d, want %d", tt.task, got, tt.want)
		}
	}
}

func TestPoolPriorityOrder(t *testing.T) {
	p := NewPool()
	p.Push(Task{Kind: Demand, Dst: 1, Req: graph.ReqEager})
	p.Push(Task{Kind: Demand, Dst: 2, Req: graph.ReqVital})
	p.Push(Task{Kind: Mark, Dst: 3})
	p.Push(Task{Kind: Demand, Dst: 4, Req: graph.ReqNone})
	p.Push(Task{Kind: Demand, Dst: 5, Req: graph.ReqVital})

	wantOrder := []graph.VertexID{3, 2, 5, 1, 4} // marking, vital FIFO, eager, reserve
	for i, want := range wantOrder {
		tk, ok := p.TryPop()
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if tk.Dst != want {
			t.Fatalf("pop %d = dst %d, want %d", i, tk.Dst, want)
		}
	}
	if _, ok := p.TryPop(); ok {
		t.Fatal("pool should be empty")
	}
}

func TestPoolLen(t *testing.T) {
	p := NewPool()
	if p.Len() != 0 {
		t.Fatal("new pool not empty")
	}
	p.Push(Task{Kind: Reduce, Dst: 1})
	p.Push(Task{Kind: Reduce, Dst: 2})
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.TryPop()
	if p.Len() != 1 {
		t.Fatalf("Len after pop = %d", p.Len())
	}
}

func TestPoolPopRandomExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPool()
	seen := map[graph.VertexID]bool{}
	for i := 1; i <= 20; i++ {
		p.Push(Task{Kind: Demand, Dst: graph.VertexID(i), Req: graph.ReqKind(i % 3)})
	}
	for i := 0; i < 20; i++ {
		tk, ok := p.TryPopRandom(rng)
		if !ok {
			t.Fatalf("pop %d: empty", i)
		}
		if seen[tk.Dst] {
			t.Fatalf("task %d popped twice", tk.Dst)
		}
		seen[tk.Dst] = true
	}
	if _, ok := p.TryPopRandom(rng); ok {
		t.Fatal("pool should be empty")
	}
}

func TestPoolPopWaitClose(t *testing.T) {
	p := NewPool()
	done := make(chan Task, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk, ok := p.PopWait()
		if ok {
			done <- tk
		}
		close(done)
	}()
	p.Push(Task{Kind: Reduce, Dst: 42})
	tk, ok := <-done
	if !ok || tk.Dst != 42 {
		t.Fatalf("PopWait = %v, %v", tk, ok)
	}
	wg.Wait()

	// After Close, PopWait drains then reports closed.
	p.Push(Task{Kind: Reduce, Dst: 1})
	p.Close()
	if tk, ok := p.PopWait(); !ok || tk.Dst != 1 {
		t.Fatalf("drain after close = %v, %v", tk, ok)
	}
	if _, ok := p.PopWait(); ok {
		t.Fatal("PopWait on closed empty pool should report closed")
	}
}

func TestPoolEach(t *testing.T) {
	p := NewPool()
	p.Push(Task{Kind: Demand, Src: 1, Dst: 2, Req: graph.ReqVital})
	p.Push(Task{Kind: Mark, Dst: 3})
	var got []Task
	p.Each(func(tk Task) { got = append(got, tk) })
	if len(got) != 2 {
		t.Fatalf("Each visited %d tasks", len(got))
	}
}

func TestPoolExpunge(t *testing.T) {
	p := NewPool()
	for i := 1; i <= 10; i++ {
		p.Push(Task{Kind: Demand, Dst: graph.VertexID(i), Req: graph.ReqEager})
	}
	n := p.Expunge(func(tk Task) bool { return tk.Dst%2 == 0 })
	if n != 5 {
		t.Fatalf("expunged %d, want 5", n)
	}
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	p.Each(func(tk Task) {
		if tk.Dst%2 == 0 {
			t.Errorf("task %d should have been expunged", tk.Dst)
		}
	})
}

func TestPoolReprioritize(t *testing.T) {
	p := NewPool()
	p.Push(Task{Kind: Demand, Dst: 1, Req: graph.ReqEager})
	p.Push(Task{Kind: Demand, Dst: 2, Req: graph.ReqVital})
	p.Push(Task{Kind: Mark, Dst: 3}) // non-demand: untouched

	// Upgrade everything to vital.
	changed := p.Reprioritize(func(tk Task) graph.ReqKind { return graph.ReqVital })
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	// Mark first, then the two now-vital demands; dst=2 was already in the
	// vital band so it precedes the moved dst=1.
	order := []graph.VertexID{3, 2, 1}
	for i, want := range order {
		tk, ok := p.TryPop()
		if !ok || tk.Dst != want {
			t.Fatalf("pop %d = %v (ok=%v), want dst %d", i, tk, ok, want)
		}
		if tk.Kind == Demand && tk.Req != graph.ReqVital {
			t.Fatalf("task %v not upgraded", tk)
		}
	}
}

func TestPoolReprioritizeNoDoubleVisit(t *testing.T) {
	// A Demand moved to a not-yet-processed higher band must not be
	// re-visited in the same pass: moved tasks are appended only after the
	// band sweep completes. Count fn invocations per task to prove it.
	p := NewPool()
	const n = 50
	for i := 1; i <= n; i++ {
		// Alternate reserve/eager/vital so moves go both up and down.
		p.Push(Task{Kind: Demand, Dst: graph.VertexID(i), Req: graph.ReqKind(i % 3)})
	}
	calls := map[graph.VertexID]int{}
	changed := p.Reprioritize(func(tk Task) graph.ReqKind {
		calls[tk.Dst]++
		// Invert priority: reserve→vital, vital→reserve, eager stays.
		switch tk.Req {
		case graph.ReqNone:
			return graph.ReqVital
		case graph.ReqVital:
			return graph.ReqNone
		default:
			return tk.Req
		}
	})
	for id, c := range calls {
		if c != 1 {
			t.Fatalf("fn called %d times for task %d, want exactly 1", c, id)
		}
	}
	if len(calls) != n {
		t.Fatalf("fn visited %d tasks, want %d", len(calls), n)
	}
	if p.Len() != n {
		t.Fatalf("Len = %d after reprioritize, want %d", p.Len(), n)
	}
	// reserve↔vital both moved; eager (i%3==1) stayed.
	wantChanged := 0
	for i := 1; i <= n; i++ {
		if i%3 != 1 {
			wantChanged++
		}
	}
	if changed != wantChanged {
		t.Fatalf("changed = %d, want %d", changed, wantChanged)
	}
	// Every task still present exactly once, with Band matching Req.
	seen := map[graph.VertexID]int{}
	for {
		tk, ok := p.TryPop()
		if !ok {
			break
		}
		seen[tk.Dst]++
		if want := tk.ComputeBand(); tk.Band != want {
			t.Fatalf("task %d band %d != ComputeBand %d", tk.Dst, tk.Band, want)
		}
	}
	for i := 1; i <= n; i++ {
		if seen[graph.VertexID(i)] != 1 {
			t.Fatalf("task %d popped %d times", i, seen[graph.VertexID(i)])
		}
	}
}

func TestPoolReprioritizeQuickConservation(t *testing.T) {
	// Property: Reprioritize interleaved with Expunge and adversarial
	// TryPopRandom never double-counts, loses, or duplicates a task.
	f := func(dsts []uint16, reqs []uint8, seed int64) bool {
		if len(dsts) == 0 {
			return true
		}
		p := NewPool()
		// remaining[id] tracks how many tasks for id should still be in
		// the pool; every pop decrements it, every expunge zeroes it.
		remaining := map[graph.VertexID]int{}
		for i, d := range dsts {
			id := graph.VertexID(d)%97 + 1
			p.Push(Task{Kind: Demand, Dst: id, Req: graph.ReqKind(i % 3)})
			remaining[id]++
		}
		rng := rand.New(rand.NewSource(seed))
		for p.Len() > 0 {
			switch rng.Intn(4) {
			case 0: // reprioritize to a destination-derived kind
				p.Reprioritize(func(tk Task) graph.ReqKind {
					if len(reqs) == 0 {
						return graph.ReqVital
					}
					return graph.ReqKind(reqs[int(tk.Dst)%len(reqs)] % 3)
				})
			case 1: // expunge one id
				cut := graph.VertexID(rng.Intn(97) + 1)
				n := p.Expunge(func(tk Task) bool { return tk.Dst == cut })
				if n != remaining[cut] {
					return false // lost or duplicated a task of this id
				}
				remaining[cut] = 0
			case 2: // adversarial random pop
				if tk, ok := p.TryPopRandom(rng); ok {
					remaining[tk.Dst]--
				}
			default: // priority pop
				if tk, ok := p.TryPop(); ok {
					remaining[tk.Dst]--
				}
			}
		}
		for _, n := range remaining {
			if n != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPoolTryPopWhere(t *testing.T) {
	p := NewPool()
	p.Push(Task{Kind: Demand, Dst: 1, Req: graph.ReqEager})
	p.Push(Task{Kind: Mark, Dst: 2})
	p.Push(Task{Kind: Demand, Dst: 3, Req: graph.ReqVital})
	p.Push(Task{Kind: Demand, Dst: 1, Req: graph.ReqVital})

	// Predicate picks a specific task regardless of band order.
	tk, ok := p.TryPopWhere(func(q Task) bool { return q.Dst == 1 && q.Kind == Demand && q.Req == graph.ReqEager })
	if !ok || tk.Dst != 1 || tk.Req != graph.ReqEager {
		t.Fatalf("TryPopWhere = %+v ok=%v", tk, ok)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	// High bands are scanned first: a catch-all predicate gets the mark.
	tk, ok = p.TryPopWhere(func(Task) bool { return true })
	if !ok || tk.Kind != Mark {
		t.Fatalf("catch-all popped %+v, want the mark task", tk)
	}
	// No match leaves the pool untouched.
	if _, ok := p.TryPopWhere(func(Task) bool { return false }); ok {
		t.Fatal("no-match TryPopWhere returned a task")
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
}

func TestTaskString(t *testing.T) {
	tk := Task{Kind: Mark, Src: 1, Dst: 2, Ctx: graph.CtxR, Prior: 3}
	if got := tk.String(); got != "markR<1,2,p3>" {
		t.Fatalf("String = %q", got)
	}
	tk2 := Task{Kind: Demand, Src: 3, Dst: 4, Req: graph.ReqEager}
	if got := tk2.String(); got != "demand<3,4,eager>" {
		t.Fatalf("String = %q", got)
	}
}

func TestPoolQuickConservation(t *testing.T) {
	// Property: every pushed task is popped exactly once, regardless of
	// the mix of priority and random pops.
	f := func(dsts []uint16, seed int64) bool {
		if len(dsts) == 0 {
			return true
		}
		p := NewPool()
		want := map[graph.VertexID]int{}
		for i, d := range dsts {
			id := graph.VertexID(d) + 1
			p.Push(Task{Kind: Demand, Dst: id, Req: graph.ReqKind(i % 3)})
			want[id]++
		}
		rng := rand.New(rand.NewSource(seed))
		got := map[graph.VertexID]int{}
		for p.Len() > 0 {
			var tk Task
			var ok bool
			if rng.Intn(2) == 0 {
				tk, ok = p.TryPop()
			} else {
				tk, ok = p.TryPopRandom(rng)
			}
			if !ok {
				return false
			}
			got[tk.Dst]++
		}
		if len(got) != len(want) {
			return false
		}
		for id, n := range want {
			if got[id] != n {
				return false
			}
		}
		_, ok := p.TryPop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoolQuickBandOrder(t *testing.T) {
	// Property: priority pops never yield a lower band before a higher
	// band that was present at pop time.
	f := func(kinds []uint8) bool {
		p := NewPool()
		for _, k := range kinds {
			p.Push(Task{Kind: Demand, Dst: 1, Req: graph.ReqKind(k % 3)})
		}
		lastBand := int(numBands)
		counts := make([]int, numBands)
		p.mu.Lock()
		for b := range p.bands {
			counts[b] = p.bands[b].len()
		}
		p.mu.Unlock()
		for {
			tk, ok := p.TryPop()
			if !ok {
				return true
			}
			b := int(tk.Band)
			// A higher band must have been empty when we popped b.
			for hb := b + 1; hb < int(numBands); hb++ {
				if counts[hb] > 0 {
					return false
				}
			}
			counts[b]--
			_ = lastBand
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoolPushBatch(t *testing.T) {
	p := NewPool()
	p.PushBatch([]Task{
		{Kind: Demand, Dst: 1, Req: graph.ReqNone},
		{Kind: Mark, Dst: 2},
		{Kind: Demand, Dst: 3, Req: graph.ReqVital},
	})
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	// Band order must hold across a batch push: marking first, then vital,
	// then the reserve-band demand.
	wantDst := []graph.VertexID{2, 3, 1}
	for i, want := range wantDst {
		tk, ok := p.TryPop()
		if !ok || tk.Dst != want {
			t.Fatalf("pop %d = %+v ok=%v, want dst %d", i, tk, ok, want)
		}
	}
	p.PushBatch(nil)
	if p.Len() != 0 {
		t.Fatalf("empty batch changed Len to %d", p.Len())
	}
}

func TestPoolPushBatchWakesWaiters(t *testing.T) {
	p := NewPool()
	const waiters = 4
	var wg sync.WaitGroup
	got := make(chan Task, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tk, ok := p.PopWait(); ok {
				got <- tk
			}
		}()
	}
	batch := make([]Task, waiters)
	for i := range batch {
		batch[i] = Task{Kind: Demand, Dst: graph.VertexID(i + 1), Req: graph.ReqVital}
	}
	p.PushBatch(batch)
	wg.Wait()
	close(got)
	if len(got) != waiters {
		t.Fatalf("only %d of %d waiters woke", len(got), waiters)
	}
}

func TestPoolStealInto(t *testing.T) {
	victim, thief := NewPool(), NewPool()
	// Two bands on the victim: vital v1..v4, reserve r11..r13.
	for i := 1; i <= 4; i++ {
		victim.Push(Task{Kind: Demand, Dst: graph.VertexID(i), Req: graph.ReqVital})
	}
	for i := 11; i <= 13; i++ {
		victim.Push(Task{Kind: Demand, Dst: graph.VertexID(i), Req: graph.ReqNone})
	}
	var popped []graph.VertexID
	victim.SetOnPop(func(tk Task) { popped = append(popped, tk.Dst) })

	// Steal 2: from the tail of the highest band, FIFO order retained.
	if n := victim.StealInto(thief, 2, nil); n != 2 {
		t.Fatalf("stole %d, want 2", n)
	}
	if victim.Len() != 5 || thief.Len() != 2 {
		t.Fatalf("lens after steal: victim=%d thief=%d, want 5/2", victim.Len(), thief.Len())
	}
	// Steal 3 more: the remaining vital tasks, then the reserve tail.
	if n := victim.StealInto(thief, 3, nil); n != 3 {
		t.Fatalf("second steal moved %d, want 3", n)
	}
	// Thief got the vital tail {3,4}, then vital {1,2}, then reserve {13};
	// within each band the pops come out FIFO in arrival order.
	wantThief := []graph.VertexID{3, 4, 1, 2, 13}
	for i, want := range wantThief {
		tk, ok := thief.TryPop()
		if !ok || tk.Dst != want {
			t.Fatalf("thief pop %d = %v/%v, want dst %d", i, tk.Dst, ok, want)
		}
	}
	// Victim kept the oldest reserve work.
	wantVictim := []graph.VertexID{11, 12}
	for i, want := range wantVictim {
		tk, ok := victim.TryPop()
		if !ok || tk.Dst != want {
			t.Fatalf("victim pop %d = %v/%v, want dst %d", i, tk.Dst, ok, want)
		}
	}
	// The victim's onPop observer saw every stolen task (the deadlock-verdict
	// watch's veto path) and then the 2 regular pops.
	if len(popped) != 7 {
		t.Fatalf("onPop fired %d times, want 7 (5 stolen + 2 popped): %v", len(popped), popped)
	}
	wantStolen := []graph.VertexID{3, 4, 1, 2, 13}
	for i, want := range wantStolen {
		if popped[i] != want {
			t.Fatalf("onPop order %v, stolen prefix should be %v", popped, wantStolen)
		}
	}
}

func TestPoolStealIntoLimitsAndSelf(t *testing.T) {
	a, b := NewPool(), NewPool()
	a.Push(Task{Kind: Reduce, Dst: 1})
	if n := a.StealInto(a, 5, nil); n != 0 {
		t.Fatalf("self-steal moved %d", n)
	}
	if n := a.StealInto(b, 0, nil); n != 0 {
		t.Fatalf("zero-max steal moved %d", n)
	}
	if n := a.StealInto(b, 5, nil); n != 1 {
		t.Fatalf("steal moved %d, want 1", n)
	}
	if n := a.StealInto(b, 5, nil); n != 0 {
		t.Fatalf("steal from empty moved %d", n)
	}
}

func TestPoolStealIntoConcurrentOppositeDirections(t *testing.T) {
	// Lock ordering: steals in both directions at once must not deadlock
	// and must conserve tasks.
	a, b := NewPool(), NewPool()
	for i := 0; i < 200; i++ {
		a.Push(Task{Kind: Reduce, Dst: graph.VertexID(i)})
		b.Push(Task{Kind: Reduce, Dst: graph.VertexID(1000 + i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					a.StealInto(b, 3, nil)
				} else {
					b.StealInto(a, 3, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	if total := a.Len() + b.Len(); total != 400 {
		t.Fatalf("tasks not conserved: %d, want 400", total)
	}
}

func TestPoolPopWaitFor(t *testing.T) {
	p := NewPool()
	// Timeout on an empty pool.
	if _, ok, closed := p.PopWaitFor(time.Millisecond); ok || closed {
		t.Fatalf("empty pool: ok=%v closed=%v, want timeout", ok, closed)
	}
	// Immediate pop when a task is queued.
	p.Push(Task{Kind: Reduce, Dst: 7})
	if tk, ok, _ := p.PopWaitFor(time.Millisecond); !ok || tk.Dst != 7 {
		t.Fatalf("queued pool: ok=%v dst=%v", ok, tk.Dst)
	}
	// A push during the wait delivers before the deadline.
	done := make(chan Task, 1)
	go func() {
		tk, ok, _ := p.PopWaitFor(time.Minute)
		if ok {
			done <- tk
		}
	}()
	time.Sleep(2 * time.Millisecond)
	p.Push(Task{Kind: Reduce, Dst: 8})
	select {
	case tk := <-done:
		if tk.Dst != 8 {
			t.Fatalf("delivered dst %d, want 8", tk.Dst)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push did not wake the timed waiter")
	}
	// Close wakes the waiter with closed=true.
	res := make(chan bool, 1)
	go func() {
		_, _, closed := p.PopWaitFor(time.Minute)
		res <- closed
	}()
	time.Sleep(2 * time.Millisecond)
	p.Close()
	select {
	case closed := <-res:
		if !closed {
			t.Fatal("Close did not report closed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the timed waiter")
	}
}
