package sched

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dgr/internal/fabric"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/task"
)

// partMod returns a PartOf function mapping vertex id → id % n.
func partMod(n int) func(graph.VertexID) int {
	return func(id graph.VertexID) int { return int(id) % n }
}

func TestDeterministicStepExecutesAll(t *testing.T) {
	m := New(Config{PEs: 4, Mode: Deterministic, Seed: 1, PartOf: partMod(4)})
	var executed []graph.VertexID
	m.SetHandler(HandlerFunc(func(tk task.Task) {
		executed = append(executed, tk.Dst)
	}))
	for i := 1; i <= 20; i++ {
		m.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
	}
	steps, quiesced := m.RunToQuiescence(0)
	if !quiesced {
		t.Fatal("did not quiesce")
	}
	if steps != 20 || len(executed) != 20 {
		t.Fatalf("steps=%d executed=%d, want 20", steps, len(executed))
	}
	if m.Inflight() != 0 {
		t.Fatalf("inflight = %d", m.Inflight())
	}
	if !m.Step() {
		// quiescent machine: Step returns false
	} else {
		t.Fatal("Step on quiescent machine executed something")
	}
}

func TestDeterministicReproducible(t *testing.T) {
	run := func(seed int64) []graph.VertexID {
		m := New(Config{PEs: 3, Mode: Deterministic, Seed: seed, Adversarial: true, PartOf: partMod(3)})
		var order []graph.VertexID
		m.SetHandler(HandlerFunc(func(tk task.Task) {
			order = append(order, tk.Dst)
			// Fan out some follow-up work.
			if tk.Dst < 10 {
				m.Spawn(task.Task{Kind: task.Reduce, Src: tk.Dst, Dst: tk.Dst + 10})
			}
		}))
		for i := 1; i <= 9; i++ {
			m.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
		}
		m.RunToQuiescence(0)
		return order
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("orders diverge at %d: %v vs %v", i, a, b)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("seeds 42 and 43 coincided (unlikely but legal)")
	}
}

func TestSpawnFromHandler(t *testing.T) {
	m := New(Config{PEs: 2, Mode: Deterministic, Seed: 7, PartOf: partMod(2)})
	var count int
	m.SetHandler(HandlerFunc(func(tk task.Task) {
		count++
		if tk.Dst < 100 {
			m.Spawn(task.Task{Kind: task.Reduce, Dst: tk.Dst + 1})
		}
	}))
	m.Spawn(task.Task{Kind: task.Reduce, Dst: 1})
	steps, ok := m.RunToQuiescence(0)
	if !ok || steps != 100 || count != 100 {
		t.Fatalf("steps=%d count=%d ok=%v, want 100/100/true", steps, count, ok)
	}
}

func TestRunUntil(t *testing.T) {
	m := New(Config{PEs: 1, Mode: Deterministic, Seed: 1, PartOf: partMod(1)})
	var count int
	m.SetHandler(HandlerFunc(func(tk task.Task) {
		count++
		m.Spawn(task.Task{Kind: task.Reduce, Dst: 1}) // endless
	}))
	m.Spawn(task.Task{Kind: task.Reduce, Dst: 1})
	steps := m.RunUntil(func() bool { return count >= 5 }, 0)
	if steps != 5 {
		t.Fatalf("steps = %d, want 5", steps)
	}
	steps = m.RunUntil(func() bool { return false }, 10)
	if steps != 10 {
		t.Fatalf("bounded steps = %d, want 10", steps)
	}
}

func TestMessageCounters(t *testing.T) {
	var c metrics.Counters
	m := New(Config{PEs: 2, Mode: Deterministic, Seed: 1, PartOf: partMod(2), Counters: &c})
	m.SetHandler(HandlerFunc(func(task.Task) {}))

	// Src 1 (PE 1) → Dst 2 (PE 0): remote.
	m.Spawn(task.Task{Kind: task.Reduce, Src: 1, Dst: 2})
	// Src 2 (PE 0) → Dst 4 (PE 0): local.
	m.Spawn(task.Task{Kind: task.Reduce, Src: 2, Dst: 4})
	// No source: counted local.
	m.Spawn(task.Task{Kind: task.Reduce, Dst: 5})
	m.RunToQuiescence(0)

	s := c.Snapshot()
	if s.RemoteMessages != 1 || s.LocalMessages != 2 {
		t.Fatalf("remote=%d local=%d, want 1/2", s.RemoteMessages, s.LocalMessages)
	}
	if s.TasksExecuted != 3 || s.ReductionTasks != 3 {
		t.Fatalf("executed=%d reduction=%d", s.TasksExecuted, s.ReductionTasks)
	}
}

func TestParallelMode(t *testing.T) {
	var c metrics.Counters
	m := New(Config{PEs: 4, Mode: Parallel, PartOf: partMod(4), Counters: &c})
	var count atomic.Int64
	var mu sync.Mutex
	perPE := map[int]int{}
	m.SetHandler(HandlerFunc(func(tk task.Task) {
		count.Add(1)
		mu.Lock()
		perPE[int(tk.Dst)%4]++
		mu.Unlock()
		if tk.Dst < 100 {
			m.Spawn(task.Task{Kind: task.Reduce, Src: tk.Dst, Dst: tk.Dst + 4})
		}
	}))
	m.Start()
	for i := 1; i <= 4; i++ {
		m.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
	}
	m.WaitQuiescent()
	m.Stop()

	// Chains 1,5,... spawn while Dst<100, so 97/98/99 spawn 101/102/103:
	// 103 executions total.
	if got := count.Load(); got != 103 {
		t.Fatalf("executed %d tasks, want 103", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for pe := 0; pe < 4; pe++ {
		if perPE[pe] == 0 {
			t.Errorf("PE %d executed nothing", pe)
		}
	}
}

func TestParallelStopIdempotent(t *testing.T) {
	m := New(Config{PEs: 2, Mode: Parallel, PartOf: partMod(2)})
	m.SetHandler(HandlerFunc(func(task.Task) {}))
	m.Start()
	m.Start() // second start is a no-op
	m.Stop()
	m.Stop() // second stop is a no-op
}

func TestPartOfOutOfRangePanics(t *testing.T) {
	// Regression: out-of-range partitions used to be silently clamped to
	// PE 0, masking broken PartOf functions and misclassifying local vs
	// remote messages. They must panic, naming the vertex and partition.
	m := New(Config{PEs: 2, Mode: Deterministic, Seed: 1,
		PartOf: func(id graph.VertexID) int { return 99 }})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("out-of-range PartOf did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "v5") || !strings.Contains(msg, "99") {
			t.Fatalf("panic message %v does not name vertex and partition", r)
		}
	}()
	m.PartOf(5)
}

func TestNewRequiresPartOf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without PartOf did not panic")
		}
	}()
	New(Config{PEs: 2, Mode: Deterministic, Seed: 1})
}

func TestWaitQuiescentDeterministic(t *testing.T) {
	// Regression: WaitQuiescent used to be a silent no-op in deterministic
	// mode even with tasks queued; it must report actual quiescence.
	m := New(Config{PEs: 1, Mode: Deterministic, Seed: 1, PartOf: partMod(1)})
	m.SetHandler(HandlerFunc(func(task.Task) {}))
	if !m.WaitQuiescent() {
		t.Fatal("empty machine reported non-quiescent")
	}
	m.Spawn(task.Task{Kind: task.Reduce, Dst: 1})
	if m.WaitQuiescent() {
		t.Fatal("machine with a queued task reported quiescent")
	}
	m.RunToQuiescence(0)
	if !m.WaitQuiescent() {
		t.Fatal("drained machine reported non-quiescent")
	}
}

func TestExecuteMatching(t *testing.T) {
	m := New(Config{PEs: 2, Mode: Deterministic, Seed: 1, PartOf: partMod(2)})
	var got []graph.VertexID
	m.SetHandler(HandlerFunc(func(tk task.Task) { got = append(got, tk.Dst) }))
	for i := 1; i <= 6; i++ {
		m.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
	}
	// Replay an explicit order: 4, 2, 6 on PE 0; 3, 1, 5 on PE 1.
	want := []graph.VertexID{4, 2, 6, 3, 1, 5}
	for _, id := range want {
		tk := task.Task{Kind: task.Reduce, Dst: id}
		pe := int(id) % 2
		if !m.ExecuteMatching(pe, func(q task.Task) bool { return q.Dst == id }, tk) {
			t.Fatalf("task for v%d not found on PE %d", id, pe)
		}
	}
	if m.Inflight() != 0 {
		t.Fatalf("inflight = %d after replaying all tasks", m.Inflight())
	}
	for i, id := range want {
		if got[i] != id {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	// No match → false, nothing executed.
	if m.ExecuteMatching(0, func(task.Task) bool { return true }, task.Task{}) {
		t.Fatal("ExecuteMatching on empty pool returned true")
	}
}

func TestMarkTaskCounters(t *testing.T) {
	var c metrics.Counters
	m := New(Config{PEs: 1, Mode: Deterministic, Seed: 1, PartOf: partMod(1), Counters: &c})
	m.SetHandler(HandlerFunc(func(task.Task) {}))
	m.Spawn(task.Task{Kind: task.Mark, Dst: 1})
	m.Spawn(task.Task{Kind: task.Return, Dst: 1})
	m.RunToQuiescence(0)
	s := c.Snapshot()
	if s.MarkTasks != 1 || s.ReturnTasks != 1 {
		t.Fatalf("mark=%d return=%d", s.MarkTasks, s.ReturnTasks)
	}
}

func TestExpungeAccounting(t *testing.T) {
	m := New(Config{PEs: 2, Mode: Deterministic, Seed: 1, PartOf: partMod(2)})
	m.SetHandler(HandlerFunc(func(task.Task) {}))
	for i := 1; i <= 10; i++ {
		m.Spawn(task.Task{Kind: task.Demand, Dst: graph.VertexID(i), Req: graph.ReqVital})
	}
	if m.Inflight() != 10 {
		t.Fatalf("inflight = %d", m.Inflight())
	}
	removed := 0
	for pe := 0; pe < 2; pe++ {
		removed += m.Expunge(pe, func(tk task.Task) bool { return tk.Dst%2 == 0 })
	}
	if removed != 5 {
		t.Fatalf("removed = %d, want 5", removed)
	}
	// Expunged tasks must not be waited for: inflight reflects removal.
	if m.Inflight() != 5 {
		t.Fatalf("inflight after expunge = %d, want 5", m.Inflight())
	}
	m.RunToQuiescence(0)
	if m.Inflight() != 0 {
		t.Fatalf("inflight after drain = %d, want 0", m.Inflight())
	}
}

func TestCurrentTasksParallel(t *testing.T) {
	m := New(Config{PEs: 2, Mode: Parallel, PartOf: partMod(2)})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	m.SetHandler(HandlerFunc(func(tk task.Task) {
		if tk.Dst == 1 {
			started <- struct{}{}
			<-release
		}
	}))
	m.Start()
	m.Spawn(task.Task{Kind: task.Reduce, Dst: 1})
	<-started
	cur := m.CurrentTasks()
	if len(cur) != 1 || cur[0].Dst != 1 {
		t.Fatalf("CurrentTasks = %v", cur)
	}
	close(release)
	m.WaitQuiescent()
	if got := m.CurrentTasks(); len(got) != 0 {
		t.Fatalf("CurrentTasks after quiescence = %v", got)
	}
	m.Stop()
}

func TestSpawnPlacementLocality(t *testing.T) {
	// Placement is locality-aware: a spawn is remote exactly when its
	// source vertex's partition differs from its destination's. Sourceless
	// spawns (root demands, collector root marks, self-continuations) are
	// injected by the co-resident host runtime and never cross partitions —
	// the old convention attributed them to PE 0, charging every external
	// spawn for another partition as a remote message (and, with a fabric,
	// a pointless network transit per M_T root).
	var c metrics.Counters
	m := New(Config{PEs: 2, Mode: Deterministic, Seed: 1, PartOf: partMod(2), Counters: &c})
	m.SetHandler(HandlerFunc(func(task.Task) {}))

	// Sourceless spawns of every kind, on both partitions: all local.
	m.Spawn(task.Task{Kind: task.Demand, Dst: 1, Req: graph.ReqVital})
	m.Spawn(task.Task{Kind: task.Mark, Dst: 3})
	m.Spawn(task.Task{Kind: task.Demand, Dst: 2, Req: graph.ReqVital})
	m.Spawn(task.Task{Kind: task.Reduce, Dst: 5})
	// Sourced spawns: remote iff the partitions differ.
	m.Spawn(task.Task{Kind: task.Reduce, Src: 1, Dst: 2}) // PE 1 → PE 0: remote
	m.Spawn(task.Task{Kind: task.Mark, Src: 2, Dst: 5})   // PE 0 → PE 1: remote
	m.Spawn(task.Task{Kind: task.Reduce, Src: 2, Dst: 4}) // PE 0 → PE 0: local
	m.RunToQuiescence(0)

	s := c.Snapshot()
	if s.RemoteMessages != 2 || s.LocalMessages != 5 {
		t.Fatalf("remote=%d local=%d, want 2/5", s.RemoteMessages, s.LocalMessages)
	}
}

func TestSpawnPlacementSourcelessBypassesFabric(t *testing.T) {
	// With a fabric wired in, sourceless spawns must land directly in the
	// destination pool — never in an outbox — since nothing actually
	// travels between partitions for a host-injected task.
	fab := fabric.New(fabric.Config{PEs: 2, Seed: 1, BatchSize: 100, FlushEvery: time.Hour})
	m := New(Config{PEs: 2, Mode: Deterministic, Seed: 1, PartOf: partMod(2), Fabric: fab})
	m.SetHandler(HandlerFunc(func(task.Task) {}))
	for i := 1; i <= 6; i++ {
		m.Spawn(task.Task{Kind: task.Demand, Dst: graph.VertexID(i), Req: graph.ReqVital})
	}
	if m.InTransit() != 0 {
		t.Fatalf("sourceless spawns entered the fabric: in-transit=%d", m.InTransit())
	}
	if got := m.Pool(0).Len() + m.Pool(1).Len(); got != 6 {
		t.Fatalf("pooled tasks = %d, want 6", got)
	}
	_, quiesced := m.RunToQuiescence(0)
	if !quiesced {
		t.Fatal("did not quiesce")
	}
}

func TestFabricDeterministicExactlyOnce(t *testing.T) {
	var c metrics.Counters
	fab := fabric.New(fabric.Config{
		PEs: 4, Seed: 11, BatchSize: 4, FlushEvery: 10 * time.Microsecond,
		LinkLatency: 5 * time.Microsecond, Jitter: 3 * time.Microsecond,
		DropRate: 0.3, ReorderRate: 0.1, Counters: &c,
	})
	m := New(Config{PEs: 4, Mode: Deterministic, Seed: 11, PartOf: partMod(4),
		Counters: &c, Fabric: fab})
	var executed atomic.Int64
	m.SetHandler(HandlerFunc(func(tk task.Task) {
		executed.Add(1)
		// Fan out one remote hop per task until id 400.
		if tk.Dst < 400 {
			m.Spawn(task.Task{Kind: task.Demand, Src: tk.Dst, Dst: tk.Dst + 1, Req: graph.ReqVital})
		}
	}))
	m.Spawn(task.Task{Kind: task.Demand, Src: 4, Dst: 1, Req: graph.ReqVital})
	_, quiesced := m.RunToQuiescence(0)
	if !quiesced {
		t.Fatal("did not quiesce")
	}
	// Every spawned task executes exactly once despite 30% loss.
	if got := executed.Load(); got != 400 {
		t.Fatalf("executed %d tasks, want 400", got)
	}
	s := c.Snapshot()
	if s.FabricSent != s.FabricDelivered {
		t.Fatalf("conservation: sent=%d delivered=%d", s.FabricSent, s.FabricDelivered)
	}
	if s.FabricSent != s.RemoteMessages {
		t.Fatalf("every remote message rides the fabric: fabric=%d remote=%d",
			s.FabricSent, s.RemoteMessages)
	}
	if s.FabricDropped == 0 {
		t.Fatal("no loss injected at 30% drop")
	}
	if m.InTransit() != 0 {
		t.Fatalf("in-transit after quiescence: %d", m.InTransit())
	}
}

func TestFabricDeterministicReproducible(t *testing.T) {
	run := func() (int64, metrics.Snapshot) {
		var c metrics.Counters
		fab := fabric.New(fabric.Config{
			PEs: 3, Seed: 21, BatchSize: 3, FlushEvery: 8 * time.Microsecond,
			LinkLatency: 4 * time.Microsecond, Jitter: 6 * time.Microsecond,
			DropRate: 0.2, ReorderRate: 0.2, Counters: &c,
		})
		m := New(Config{PEs: 3, Mode: Deterministic, Seed: 21, PartOf: partMod(3),
			Counters: &c, Fabric: fab})
		var sum atomic.Int64
		m.SetHandler(HandlerFunc(func(tk task.Task) {
			sum.Add(int64(tk.Dst))
			if tk.Dst < 200 {
				m.Spawn(task.Task{Kind: task.Demand, Src: tk.Dst, Dst: tk.Dst + 2, Req: graph.ReqVital})
			}
		}))
		m.Spawn(task.Task{Kind: task.Demand, Src: 3, Dst: 1, Req: graph.ReqVital})
		m.Spawn(task.Task{Kind: task.Demand, Src: 3, Dst: 2, Req: graph.ReqVital})
		m.RunToQuiescence(0)
		return sum.Load(), c.Snapshot()
	}
	sumA, statsA := run()
	sumB, statsB := run()
	if sumA != sumB || statsA != statsB {
		t.Fatalf("same seed diverged: sums %d vs %d\n a=%+v\n b=%+v", sumA, sumB, statsA, statsB)
	}
	if statsA.FabricDropped == 0 || statsA.FabricRetries == 0 {
		t.Fatalf("loss schedule missing: %+v", statsA)
	}
}

func TestFabricParallelDelivery(t *testing.T) {
	var c metrics.Counters
	fab := fabric.New(fabric.Config{
		PEs: 4, Parallel: true, Seed: 5, BatchSize: 8,
		FlushEvery: 100 * time.Microsecond, LinkLatency: 30 * time.Microsecond,
		DropRate: 0.05, Counters: &c,
	})
	m := New(Config{PEs: 4, Mode: Parallel, PartOf: partMod(4), Counters: &c, Fabric: fab})
	var count atomic.Int64
	m.SetHandler(HandlerFunc(func(tk task.Task) {
		count.Add(1)
		if tk.Dst < 1000 {
			m.Spawn(task.Task{Kind: task.Demand, Src: tk.Dst, Dst: tk.Dst + 1, Req: graph.ReqVital})
		}
	}))
	m.Start()
	m.Spawn(task.Task{Kind: task.Demand, Src: 4, Dst: 1, Req: graph.ReqVital})
	m.WaitQuiescent()
	m.Stop()
	if got := count.Load(); got != 1000 {
		t.Fatalf("executed %d tasks, want 1000", got)
	}
	s := c.Snapshot()
	if s.FabricSent != s.FabricDelivered {
		t.Fatalf("conservation: sent=%d delivered=%d", s.FabricSent, s.FabricDelivered)
	}
}

func TestFabricExpungeInTransit(t *testing.T) {
	fab := fabric.New(fabric.Config{
		PEs: 2, Seed: 1, BatchSize: 100, FlushEvery: time.Hour,
	})
	m := New(Config{PEs: 2, Mode: Deterministic, Seed: 1, PartOf: partMod(2), Fabric: fab})
	m.SetHandler(HandlerFunc(func(task.Task) {}))
	// Remote demands park in the outbox (huge batch + deadline).
	for i := 0; i < 6; i++ {
		m.Spawn(task.Task{Kind: task.Demand, Src: 2, Dst: graph.VertexID(2*i + 1), Req: graph.ReqVital})
	}
	if m.InTransit() != 6 || m.Inflight() != 6 {
		t.Fatalf("in-transit=%d inflight=%d, want 6/6", m.InTransit(), m.Inflight())
	}
	var seen int
	m.EachInTransit(func(task.Task) { seen++ })
	if seen != 6 {
		t.Fatalf("EachInTransit saw %d, want 6", seen)
	}
	n := m.ExpungeInTransit(func(tk task.Task) bool { return tk.Dst <= 5 })
	if n != 3 {
		t.Fatalf("expunged %d, want 3", n)
	}
	if m.Inflight() != 3 {
		t.Fatalf("inflight after expunge = %d, want 3", m.Inflight())
	}
	_, quiesced := m.RunToQuiescence(0)
	if !quiesced || m.Inflight() != 0 {
		t.Fatalf("quiesced=%v inflight=%d", quiesced, m.Inflight())
	}
}

func TestStealBalancesSkewedLoad(t *testing.T) {
	// Every vertex maps to partition 0: without stealing, PEs 1..3 would
	// never execute anything. With stealing on, the idle PEs drain PE 0's
	// queue and the steal counters record the traffic.
	var c metrics.Counters
	m := New(Config{PEs: 4, Mode: Parallel, Steal: true,
		PartOf: func(graph.VertexID) int { return 0 }, Counters: &c})
	var count atomic.Int64
	m.SetHandler(HandlerFunc(func(tk task.Task) {
		count.Add(1)
		// Simulated work so the queue stays non-empty long enough to steal.
		time.Sleep(50 * time.Microsecond)
	}))
	m.Start()
	for i := 1; i <= 400; i++ {
		m.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
	}
	m.WaitQuiescent()
	m.Stop()

	if got := count.Load(); got != 400 {
		t.Fatalf("executed %d tasks, want 400", got)
	}
	s := c.Snapshot()
	if s.Steals == 0 || s.StolenTasks == 0 {
		t.Fatalf("no stealing recorded on a fully skewed load: %+v", s)
	}
	execs := m.ExecutionsByPE()
	var total, others uint64
	for pe, n := range execs {
		total += n
		if pe != 0 {
			others += n
		}
	}
	if total != 400 {
		t.Fatalf("per-PE execution counts sum to %d, want 400 (%v)", total, execs)
	}
	if others == 0 {
		t.Fatalf("stealing moved work but only PE 0 executed: %v", execs)
	}
}

func TestStealNotesWatch(t *testing.T) {
	// A steal is a pop as far as a pending deadlock verdict is concerned:
	// moving a watched task between pools must touch the armed watch even
	// though the task never executes.
	m := New(Config{PEs: 2, Mode: Parallel, Steal: true, PartOf: partMod(2)})
	m.SetHandler(HandlerFunc(func(task.Task) {}))
	// Queue directly (machine not started: nothing pops).
	m.Pool(0).Push(task.Task{Kind: task.Demand, Dst: 42, Req: graph.ReqVital})
	m.Pool(0).Push(task.Task{Kind: task.Demand, Dst: 43, Req: graph.ReqVital})
	w := NewWatch([]graph.VertexID{42})
	m.SetWatch(w)
	if w.Touched() {
		t.Fatal("watch touched before any activity")
	}
	if n := m.Pool(0).StealInto(m.Pool(1), 2, nil); n != 2 {
		t.Fatalf("stole %d, want 2", n)
	}
	if !w.Touched() {
		t.Fatal("steal of a watched task did not touch the watch")
	}
	// Marking tasks must not touch a fresh watch, stolen or not.
	w2 := NewWatch([]graph.VertexID{99})
	m.SetWatch(w2)
	m.Pool(0).Push(task.Task{Kind: task.Mark, Dst: 99})
	if n := m.Pool(0).StealInto(m.Pool(1), 1, nil); n != 1 {
		t.Fatal("mark steal failed")
	}
	if w2.Touched() {
		t.Fatal("stolen mark task touched the watch (marking must not count)")
	}
}

func TestStealUnderWatchStress(t *testing.T) {
	// Stealing while a deadlock verdict is pending must never let a watched
	// task slip through unnoticed: however the pops and steals interleave,
	// by the time a watched task executes (or merely migrates), the watch is
	// touched. A false confirmation requires an untouched watch, so
	// Touched() here is the veto that keeps two-phase verdicts sound.
	for round := 0; round < 20; round++ {
		var c metrics.Counters
		m := New(Config{PEs: 4, Mode: Parallel, Steal: true,
			PartOf: func(graph.VertexID) int { return 0 }, Counters: &c})
		executed := make(chan graph.VertexID, 1024)
		m.SetHandler(HandlerFunc(func(tk task.Task) {
			if tk.Kind.IsReduction() {
				executed <- tk.Dst
			}
		}))
		const watched = graph.VertexID(7)
		w := NewWatch([]graph.VertexID{watched})
		m.SetWatch(w)
		m.Start()
		for i := 1; i <= 200; i++ {
			m.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i % 20)})
		}
		m.WaitQuiescent()
		m.Stop()
		close(executed)
		sawWatched := false
		for id := range executed {
			if id == watched {
				sawWatched = true
			}
		}
		if sawWatched && !w.Touched() {
			t.Fatalf("round %d: watched vertex executed but watch untouched", round)
		}
		if !w.Touched() {
			t.Fatalf("round %d: watch never touched despite watched spawns", round)
		}
	}
}
