// Package sched implements the processing elements (PEs) of the model: n
// autonomous workers, each owning one graph partition and one task pool, and
// executing tasks whose destination vertex lives on that partition.
//
// Two interchangeable execution modes are provided:
//
//   - Deterministic: a single thread repeatedly picks a pseudo-random
//     non-empty PE (seeded), pops one task and executes it. Every
//     interleaving of marking and mutation is reproducible from the seed,
//     which the concurrency property tests exploit.
//   - Parallel: one goroutine per PE, blocking on its pool. This is the
//     "real" distributed execution used by examples and throughput
//     benchmarks.
//
// Task spawns crossing a partition boundary are remote messages. Without a
// fabric they are pushed straight into the destination pool and merely
// counted; with Config.Fabric set they transit a simulated inter-PE network
// (internal/fabric) with batching, latency, loss, and at-least-once
// redelivery. In-transit tasks still count toward the inflight total, so
// quiescence detection and M_T's taskpool snapshot remain sound.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dgr/internal/fabric"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/obs"
	"dgr/internal/task"
)

// Mode selects the execution strategy.
type Mode uint8

// Execution modes.
const (
	// Deterministic executes tasks one at a time under a seeded RNG.
	Deterministic Mode = iota + 1
	// Parallel runs one goroutine per PE.
	Parallel
)

// ErrNotRunning is returned by operations that require Start in Parallel mode.
var ErrNotRunning = errors.New("sched: machine not running")

// Handler executes one task. Implementations (the marking engine and the
// reduction engine, composed by internal/core's dispatcher) call back into
// Machine.Spawn to propagate work.
type Handler interface {
	Handle(t task.Task)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(task.Task)

// Handle implements Handler.
func (f HandlerFunc) Handle(t task.Task) { f(t) }

// Watch observes the machine for reduction activity touching a fixed vertex
// set. The collector arms one over each pending (unconfirmed) deadlock
// verdict: any reduction task spawned, popped for execution, or delivered by
// the fabric whose source or destination lies in the watched set marks the
// watch touched, which vetoes confirmation at the next M_T cycle. Marking
// tasks deliberately do not count — M_R legally visits genuinely deadlocked
// vertices every cycle, and marking cannot re-animate anything.
type Watch struct {
	ids     map[graph.VertexID]bool
	touched atomic.Bool
}

// NewWatch builds a watch over ids. The set is immutable afterwards, so
// Note is safe from any goroutine.
func NewWatch(ids []graph.VertexID) *Watch {
	w := &Watch{ids: make(map[graph.VertexID]bool, len(ids))}
	for _, id := range ids {
		w.ids[id] = true
	}
	return w
}

// Touched reports whether any reduction activity reached the watched set.
func (w *Watch) Touched() bool { return w.touched.Load() }

// Note records one task event against the watch.
func (w *Watch) Note(t task.Task) {
	if !t.Kind.IsReduction() || w.touched.Load() {
		return
	}
	if w.ids[t.Src] || w.ids[t.Dst] {
		w.touched.Store(true)
	}
}

// Config parameterizes a Machine.
type Config struct {
	// PEs is the number of processing elements (≥1).
	PEs int
	// Mode selects deterministic or parallel execution.
	Mode Mode
	// Seed drives the deterministic scheduler's PE/task choices.
	Seed int64
	// Adversarial, in deterministic mode, pops a uniformly random task from
	// the chosen PE instead of respecting priority bands, maximizing
	// interleaving coverage.
	Adversarial bool
	// PartOf maps a vertex to its owning partition; required.
	PartOf func(graph.VertexID) int
	// Counters receives statistics; optional.
	Counters *metrics.Counters
	// Fabric, when non-nil, carries every cross-partition spawn through a
	// simulated inter-PE network. Local spawns bypass it. The machine owns
	// its lifecycle: Step pumps it (deterministic mode), Start starts its
	// pump and Stop closes it (parallel mode). The fabric's mode and seed
	// must match the machine's.
	Fabric *fabric.Fabric

	// Steal, in parallel mode, lets a PE whose band queues are empty take a
	// batch from the tail of the most-loaded peer's rings instead of
	// blocking. Deterministic mode ignores it (the seeded scheduler already
	// sees every pool, and schedules must stay byte-identical to the
	// recorded goldens).
	Steal bool
	// StealBatch caps the number of tasks one steal operation moves
	// (default 32); a steal takes at most half the victim's queue.
	StealBatch int

	// Obs, when non-nil, receives per-execution timing, batch spans, and
	// idle transitions. Every call is a nil-safe no-op when unset, so the
	// hot path pays one pointer test for the disabled layer.
	Obs *obs.Obs

	// Trace, when non-nil, receives causal-lineage spans for traced tasks:
	// a span ID is assigned at spawn, an exec span is recorded per traced
	// execution, and a steal point-span is recorded when a traced task
	// moves pools. Untraced tasks (Trace == 0 — everything unless a head-
	// sampled request stamped a context upstream) pay one field test.
	Trace *obs.TraceSink

	// OnSpawn, when set, observes every task entering the machine (before
	// routing). It must be fast and must not call back into the Machine;
	// it may run concurrently in parallel mode. The invariant checker uses
	// it for structural task validation at the spawn boundary.
	OnSpawn func(t task.Task)
	// OnExecute, when set, is called at the start of every task execution
	// with a globally ordered sequence number (0-based). In parallel mode
	// the numbering is the linearization of execution starts; the schedule
	// recorder uses it to log a replayable execution order. It must not
	// call back into the Machine.
	OnExecute func(seq uint64, pe int, t task.Task)
	// AfterExecute, when set, is called after every task execution
	// completes (accounting included). In deterministic mode this is a
	// safe point: no task is mid-execution and no vertex lock is held, so
	// the invariant checker can sweep the graph. In parallel mode other
	// PEs may still be executing; hooks must tolerate that.
	AfterExecute func(seq uint64, pe int, t task.Task)
}

// Machine is the PE ensemble.
type Machine struct {
	cfg     Config
	pools   []*task.Pool
	handler Handler
	fab     *fabric.Fabric

	// inflight counts queued + currently executing tasks. It is atomic so
	// the Spawn/execute hot path does not serialize the PEs; mu/cond are
	// only taken on the rare transition to zero (quiescence signal) and by
	// waiters.
	inflight atomic.Int64
	mu       sync.Mutex
	cond     *sync.Cond
	running  bool

	rng *rand.Rand // deterministic mode only

	// execSeq numbers task executions globally (the schedule recorder's
	// ordering); assigned at execution start.
	execSeq atomic.Uint64

	// current[i] publishes PE i's in-execution task, so M_T's troot
	// snapshot cannot miss a task that is neither queued nor finished.
	// Each slot is a preallocated per-PE struct guarded by its own (padded)
	// mutex: the previous atomic.Pointer design forced every execution to
	// heap-allocate a task copy for the pointer to point at — one
	// allocation per task on the hottest path in the machine. Readers
	// (CurrentTasks) are rare; writers only ever touch their own PE's
	// uncontended lock.
	current []curSlot

	// stepScratch is Step's reusable non-empty-PE selection buffer.
	// Deterministic mode is single-threaded by contract, so one buffer
	// per machine suffices and Step allocates nothing.
	stepScratch []int

	// watch is the collector's armed re-animation watch, nil when no
	// deadlock verdict is pending. The spawn/deliver hot paths pay one
	// atomic pointer load for it; the pop path pays a nil func check
	// (the pool hooks are installed only while a watch is armed).
	watch atomic.Pointer[Watch]

	stop chan struct{}
	wg   sync.WaitGroup
}

// curSlot is one PE's in-execution task slot. Padding keeps neighboring
// PEs' slots off each other's cache lines (each PE writes its slot twice
// per task). execs rides along under the same per-PE lock: it is the PE's
// execution count, incremented on a lock acquisition the hot path already
// pays, and read (rarely) by ExecutionsByPE for balance reporting.
type curSlot struct {
	mu    sync.Mutex
	t     task.Task
	valid bool
	execs uint64
	_     [16]byte
}

// New builds a machine. SetHandler must be called before any task executes.
// Config.PartOf is required: every vertex must map to a partition in
// [0, PEs); a PartOf that strays out of range masks misrouted messages, so
// the machine panics at the first offending lookup rather than clamping.
func New(cfg Config) *Machine {
	if cfg.PEs < 1 {
		cfg.PEs = 1
	}
	if cfg.Mode == 0 {
		cfg.Mode = Deterministic
	}
	if cfg.PartOf == nil {
		panic("sched: Config.PartOf is required")
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = defaultStealBatch
	}
	m := &Machine{
		cfg:   cfg,
		pools: make([]*task.Pool, cfg.PEs),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	m.cond = sync.NewCond(&m.mu)
	m.current = make([]curSlot, cfg.PEs)
	m.stepScratch = make([]int, 0, cfg.PEs)
	for i := range m.pools {
		m.pools[i] = task.NewPool()
		// Publish every consumed task as PE i's in-execution task while the
		// pool lock is still held (pool i is consumed only by PE i; stolen
		// tasks land in the thief's own pool before being popped). Between
		// the pop and execute's own publish a task would otherwise be
		// invisible to both EachQueued and CurrentTasks — M_T's troot
		// snapshot reads the pools first and the current slots second, so
		// with the pop-time publish every task is in at least one view at
		// every instant.
		slot := &m.current[i]
		m.pools[i].SetOnTake(func(t task.Task) {
			slot.mu.Lock()
			slot.t = t
			slot.valid = true
			slot.mu.Unlock()
		})
	}
	if cfg.Fabric != nil {
		m.fab = cfg.Fabric
		m.fab.SetDeliver(func(pe int, ts []task.Task) {
			// A delivery can re-animate a vertex under a pending deadlock
			// verdict; note it before the batch becomes poppable.
			if w := m.watch.Load(); w != nil {
				for _, t := range ts {
					w.Note(t)
				}
			}
			m.pools[pe].PushBatch(ts)
		})
	}
	return m
}

// SetWatch arms (or, with nil, clears) the re-animation watch over the task
// flow. While armed, every spawned, delivered, and popped task is noted
// against it. The pop-side note runs under the pool lock — the same lock
// M_T's taskpool snapshot (Pool.Each) takes — so for any task the snapshot
// either still sees it queued or the watch already saw it popped; the
// window in which a task is in neither view (popped but not yet published
// as executing) cannot hide a re-animation from the verdict judge.
func (m *Machine) SetWatch(w *Watch) {
	m.watch.Store(w)
	var fn func(task.Task)
	if w != nil {
		fn = w.Note
	}
	for _, p := range m.pools {
		p.SetOnPop(fn)
	}
}

// SetHandler installs the task executor. It must be called exactly once,
// before Start or Step.
func (m *Machine) SetHandler(h Handler) { m.handler = h }

// PEs returns the number of processing elements.
func (m *Machine) PEs() int { return m.cfg.PEs }

// Mode returns the execution mode.
func (m *Machine) Mode() Mode { return m.cfg.Mode }

// Pool returns the task pool of PE i (for the collector's taskpool snapshot,
// expunging, and reprioritization).
func (m *Machine) Pool(i int) *task.Pool { return m.pools[i] }

// PartOf returns the partition owning a vertex. A partition function that
// returns an out-of-range value is broken — silently clamping it to PE 0
// would misclassify local vs remote messages and misroute every task for
// the offending vertex — so PartOf panics instead, naming the vertex and
// the bad partition.
func (m *Machine) PartOf(id graph.VertexID) int {
	p := m.cfg.PartOf(id)
	if p < 0 || p >= m.cfg.PEs {
		panic(fmt.Sprintf("sched: PartOf(v%d) = %d, out of range [0,%d)", id, p, m.cfg.PEs))
	}
	return p
}

// originOf infers the PE a spawn originates on. A task with a source vertex
// is spawned by the PE executing at that vertex (handlers set Src to a
// vertex on the executing partition); it is remote exactly when the source
// and destination partitions differ. A sourceless spawn comes from outside
// the ensemble — the evaluator's root demand, the collector's root marks, a
// PE's self-continuation — and the injecting runtime is co-resident with
// every partition: it can hand the task to the destination pool directly,
// so no fabric hop (and no remote message) is charged. The previous
// convention pinned external spawns to PE 0, which made every M_T cycle pay
// one fabric transit per root on another partition — pure simulation
// artifact, since nothing actually travels between partitions.
func (m *Machine) originOf(t task.Task) int {
	if t.Src != graph.NilVertex {
		return m.PartOf(t.Src)
	}
	return m.PartOf(t.Dst)
}

// Spawn enqueues a task on the PE owning its destination. It corresponds to
// the paper's "spawn f(x)": no waiting is done for the completion of the
// task. A spawn whose origin differs from its destination partition is a
// remote message; with a fabric wired in it transits the network (and is
// counted inflight while in transit), otherwise it lands directly in the
// destination pool.
func (m *Machine) Spawn(t task.Task) {
	m.stampTrace(&t)
	if fn := m.cfg.OnSpawn; fn != nil {
		fn(t)
	}
	if w := m.watch.Load(); w != nil {
		w.Note(t)
	}
	dst := m.PartOf(t.Dst)
	origin := m.originOf(t)
	remote := origin != dst
	if c := m.cfg.Counters; c != nil {
		if remote {
			c.RemoteMessages.Add(1)
		} else {
			c.LocalMessages.Add(1)
		}
	}
	m.inflight.Add(1)
	if remote && m.fab != nil {
		m.fab.Enqueue(origin, dst, t)
		return
	}
	m.pools[dst].Push(t)
}

// SpawnBatch enqueues many tasks with one pool-lock acquisition per
// destination partition instead of one per task. The collector's marking
// cycles use it to seed a whole root set at once: an M_T frontier of
// thousands of roots fans out across the partitions as len(pools) batched
// pushes, so cycle seeding stops serializing on per-task lock traffic.
// Semantics match len(ts) Spawn calls exactly — same hooks, same counters,
// same per-pool FIFO order — so deterministic schedules are unchanged.
func (m *Machine) SpawnBatch(ts []task.Task) {
	if len(ts) == 0 {
		return
	}
	onSpawn := m.cfg.OnSpawn
	w := m.watch.Load()
	buckets := make([][]task.Task, m.cfg.PEs)
	var local, remote int64
	for _, t := range ts {
		m.stampTrace(&t)
		if onSpawn != nil {
			onSpawn(t)
		}
		if w != nil {
			w.Note(t)
		}
		dst := m.PartOf(t.Dst)
		if origin := m.originOf(t); origin != dst {
			remote++
			m.inflight.Add(1)
			if m.fab != nil {
				m.fab.Enqueue(origin, dst, t)
			} else {
				m.pools[dst].Push(t)
			}
			continue
		}
		local++
		buckets[dst] = append(buckets[dst], t)
	}
	for pe, b := range buckets {
		if len(b) == 0 {
			continue
		}
		m.inflight.Add(int64(len(b)))
		m.pools[pe].PushBatch(b)
	}
	if c := m.cfg.Counters; c != nil {
		if remote > 0 {
			c.RemoteMessages.Add(remote)
		}
		if local > 0 {
			c.LocalMessages.Add(local)
		}
	}
}

// stampTrace assigns a traced task its own lineage span ID and spawn
// timestamp before routing. Untraced tasks (the common case) pay one field
// test; with no sink configured a stray context is dropped instead of
// carried dead.
func (m *Machine) stampTrace(t *task.Task) {
	if t.Trace == 0 {
		return
	}
	s := m.cfg.Trace
	if s == nil {
		t.Trace, t.Spans, t.Born = 0, 0, 0
		return
	}
	if t.Span() == 0 {
		t.SetSpan(s.NewSpan())
	}
	if t.Born == 0 {
		t.Born = time.Now().UnixNano()
	}
}

// finish marks one task execution complete and signals quiescence waiters.
func (m *Machine) finish() {
	if m.inflight.Add(-1) == 0 {
		m.mu.Lock()
		m.mu.Unlock() // pairs with WaitQuiescent: no lost wakeup
		m.cond.Broadcast()
	}
}

// Inflight returns the number of queued plus executing tasks.
func (m *Machine) Inflight() int64 { return m.inflight.Load() }

// execute runs one task through the handler, with accounting. pe is the
// executing processing element, used to publish the in-execution task so a
// taskpool snapshot (M_T's troot) cannot miss a task that is neither queued
// nor finished.
func (m *Machine) execute(pe int, t task.Task) {
	seq := m.execSeq.Add(1) - 1
	if fn := m.cfg.OnExecute; fn != nil {
		fn(seq, pe, t)
	}
	if c := m.cfg.Counters; c != nil {
		c.TasksExecuted.Add(1)
		switch t.Kind {
		case task.Mark:
			c.MarkTasks.Add(1)
		case task.Return:
			c.ReturnTasks.Add(1)
		default:
			c.ReductionTasks.Add(1)
		}
	}
	slot := &m.current[pe]
	slot.mu.Lock()
	slot.t = t
	slot.valid = true
	slot.execs++
	slot.mu.Unlock()
	var traceStart int64
	if m.cfg.Trace != nil && t.Trace != 0 {
		traceStart = time.Now().UnixNano()
	}
	m.cfg.Obs.TaskStart(pe)
	m.handler.Handle(t)
	m.cfg.Obs.TaskEnd(pe, uint8(t.Kind), uint64(t.Src), uint64(t.Dst))
	if traceStart != 0 {
		m.cfg.Trace.Exec(t.Trace, t.Span(), t.ParentSpan(), t.Kind.String(),
			pe, t.Born, traceStart, time.Now().UnixNano())
	}
	slot.mu.Lock()
	slot.valid = false
	slot.mu.Unlock()
	m.finish()
	if fn := m.cfg.AfterExecute; fn != nil {
		fn(seq, pe, t)
	}
}

// Executions returns the number of task executions started so far.
func (m *Machine) Executions() uint64 { return m.execSeq.Load() }

// ExecutionsByPE returns each PE's execution count, indexed by PE. The
// benchmark harness derives execution-balance figures from it; unlike the
// observability layer's per-PE counters it is always available.
func (m *Machine) ExecutionsByPE() []uint64 {
	out := make([]uint64, len(m.current))
	for i := range m.current {
		s := &m.current[i]
		s.mu.Lock()
		out[i] = s.execs
		s.mu.Unlock()
	}
	return out
}

// Expunge removes queued tasks matching pred from PE pe's pool, keeping
// the in-flight accounting consistent (an expunged task will never execute,
// so it must not be waited for). It returns the number removed.
func (m *Machine) Expunge(pe int, pred func(task.Task) bool) int {
	n := m.pools[pe].Expunge(pred)
	if n > 0 && m.inflight.Add(int64(-n)) == 0 {
		m.mu.Lock()
		m.mu.Unlock() // pairs with WaitQuiescent: no lost wakeup
		m.cond.Broadcast()
	}
	return n
}

// EachQueued calls fn for every task queued in any PE's pool as one atomic
// observation: every pool lock is held for the duration (task.EachAcross),
// so a concurrent steal — which holds both affected pool locks — can never
// move a task from a not-yet-scanned pool into an already-scanned one and
// hide it. M_T's taskpool snapshot must use this instead of scanning
// Pool.Each pool by pool: a steal-hidden reduction task leaves its whole
// task-reachable subtree unmarked, and the verdict watch only covers the
// candidate vertices themselves, so the transitive miss would not be vetoed.
func (m *Machine) EachQueued(fn func(task.Task)) {
	task.EachAcross(m.pools, fn)
}

// EachInTransit calls fn for every task currently inside the fabric
// (buffered or on the wire). It is the in-transit complement to
// Pool.Each for M_T's taskpool snapshot; without a fabric it is a no-op.
func (m *Machine) EachInTransit(fn func(task.Task)) {
	if m.fab != nil {
		m.fab.Each(fn)
	}
}

// ExpungeInTransit removes in-transit tasks matching pred from the fabric,
// keeping inflight accounting consistent exactly like Expunge does for
// pooled tasks. It returns the number removed.
func (m *Machine) ExpungeInTransit(pred func(task.Task) bool) int {
	if m.fab == nil {
		return 0
	}
	n := m.fab.Expunge(pred)
	if n > 0 && m.inflight.Add(int64(-n)) == 0 {
		m.mu.Lock()
		m.mu.Unlock() // pairs with WaitQuiescent: no lost wakeup
		m.cond.Broadcast()
	}
	return n
}

// InTransit returns the number of tasks in fabric custody (0 without one).
func (m *Machine) InTransit() int64 {
	if m.fab == nil {
		return 0
	}
	return m.fab.Pending()
}

// Fabric returns the wired-in fabric, or nil.
func (m *Machine) Fabric() *fabric.Fabric { return m.fab }

// CurrentTasks returns a copy of the tasks currently being executed by the
// PEs (empty in deterministic mode when called between steps).
func (m *Machine) CurrentTasks() []task.Task {
	out := make([]task.Task, 0, len(m.current))
	for i := range m.current {
		s := &m.current[i]
		s.mu.Lock()
		if s.valid {
			out = append(out, s.t)
		}
		s.mu.Unlock()
	}
	return out
}

// Step executes one task in deterministic mode, picking a pseudo-random
// non-empty PE. One step is one tick of the fabric's virtual clock, so
// flushes, deliveries, and retransmissions interleave with task execution
// under the same seed; when every pool is empty but messages are in
// transit, the clock fast-forwards to the next fabric event. Step reports
// whether progress was made (false means the machine is quiescent).
func (m *Machine) Step() bool {
	if m.cfg.Mode != Deterministic {
		panic("sched: Step requires Deterministic mode")
	}
	if m.fab != nil {
		m.fab.Tick()
	}
	for {
		nonEmpty := m.stepScratch[:0]
		for i, p := range m.pools {
			if p.Len() > 0 {
				nonEmpty = append(nonEmpty, i)
			}
		}
		if len(nonEmpty) == 0 {
			if m.fab == nil || !m.fab.Advance() {
				return false
			}
			continue
		}
		pe := nonEmpty[m.rng.Intn(len(nonEmpty))]
		var t task.Task
		var ok bool
		if m.cfg.Adversarial {
			t, ok = m.pools[pe].TryPopRandom(m.rng)
		} else {
			t, ok = m.pools[pe].TryPop()
		}
		if !ok {
			return false
		}
		m.execute(pe, t)
		return true
	}
}

// ExecuteMatching pops the first task in PE pe's pool for which pred
// returns true and executes exec through the handler with full accounting.
// It is the schedule replayer's step primitive: instead of the seeded RNG
// choosing (pe, task), a recorded log does. exec is executed verbatim (not
// the pooled copy) so the handler sees exactly the recorded task even if
// restructuring reprioritized the pooled copy in the interim. It reports
// whether a matching task was found; deterministic mode only.
func (m *Machine) ExecuteMatching(pe int, pred func(task.Task) bool, exec task.Task) bool {
	if m.cfg.Mode != Deterministic {
		panic("sched: ExecuteMatching requires Deterministic mode")
	}
	if pe < 0 || pe >= len(m.pools) {
		return false
	}
	if _, ok := m.pools[pe].TryPopWhere(pred); !ok {
		return false
	}
	m.execute(pe, exec)
	return true
}

// RunUntil steps the deterministic machine until pred returns true or the
// machine quiesces or max steps elapse; it returns the number of steps taken.
// A max of 0 means no limit.
func (m *Machine) RunUntil(pred func() bool, max int) int {
	steps := 0
	for (max == 0 || steps < max) && !pred() {
		if !m.Step() {
			break
		}
		steps++
	}
	return steps
}

// RunToQuiescence steps the deterministic machine until no tasks remain or
// max steps elapse (0 = no limit); it returns the steps taken and whether
// quiescence was reached.
func (m *Machine) RunToQuiescence(max int) (int, bool) {
	steps := 0
	for max == 0 || steps < max {
		if !m.Step() {
			return steps, true
		}
		steps++
	}
	return steps, m.Inflight() == 0
}

// Start launches the PE goroutines in parallel mode.
func (m *Machine) Start() {
	if m.cfg.Mode != Parallel {
		panic("sched: Start requires Parallel mode")
	}
	m.mu.Lock()
	if m.running {
		m.mu.Unlock()
		return
	}
	m.running = true
	m.stop = make(chan struct{})
	m.mu.Unlock()

	if m.fab != nil {
		m.fab.Start()
	}
	for i := range m.pools {
		m.wg.Add(1)
		go m.peLoop(i)
	}
}

func (m *Machine) peLoop(i int) {
	defer m.wg.Done()
	o := m.cfg.Obs
	if !m.cfg.Steal {
		for {
			t, ok := m.pools[i].TryPop()
			if !ok {
				// About to block: close the open execution-batch span so the
				// trace shows the busy interval ending here, then wait.
				o.PEIdle(i)
				if t, ok = m.pools[i].PopWait(); !ok {
					return
				}
			}
			m.execute(i, t)
		}
	}
	// Stealing loop: own pool first, then the most-loaded peer, then a timed
	// park with backoff. The park must be timed, not indefinite: a push only
	// wakes the owning pool's waiter, so a PE blocked forever in PopWait
	// would never notice a peer's queue growing with partition-local work —
	// exactly the hot-partition pattern (fib's spine on one partition) that
	// stealing exists to flatten.
	park := stealParkMin
	for {
		t, ok := m.pools[i].TryPop()
		if !ok && m.stealFor(i) {
			t, ok = m.pools[i].TryPop()
		}
		if !ok {
			if c := m.cfg.Counters; c != nil {
				c.IdlePolls.Add(1)
			}
			o.PEIdle(i)
			var closed bool
			t, ok, closed = m.pools[i].PopWaitFor(park)
			if closed {
				return
			}
			if !ok {
				if park < stealParkMax {
					park *= 2
				}
				continue
			}
		}
		park = stealParkMin
		m.execute(i, t)
	}
}

// Stealing pacing: an idle PE re-scans peers after parking on its own pool
// for park, doubling from stealParkMin to stealParkMax while nothing turns
// up so a genuinely quiescent machine does not spin.
const (
	stealParkMin      = 50 * time.Microsecond
	stealParkMax      = 2 * time.Millisecond
	defaultStealBatch = 32
)

// stealFor moves a batch of tasks from the most-loaded peer's pool into PE
// pe's, reporting whether anything was stolen. Victims need at least two
// queued tasks (taking an owner's only task just migrates latency), and a
// steal takes at most half the victim's queue, capped at StealBatch.
func (m *Machine) stealFor(pe int) bool {
	victim, best := -1, 1
	for j := range m.pools {
		if j == pe {
			continue
		}
		if n := m.pools[j].Len(); n > best {
			victim, best = j, n
		}
	}
	if victim < 0 {
		return false
	}
	batch := best / 2
	if batch > m.cfg.StealBatch {
		batch = m.cfg.StealBatch
	}
	// For traced tasks, a steal is a causal hop worth a span: it explains
	// why the task's remaining queue wait happened on the thief's pool.
	var each func(task.Task)
	if s := m.cfg.Trace; s != nil {
		each = func(t task.Task) {
			if t.Trace == 0 {
				return
			}
			now := time.Now().UnixNano()
			s.Record(obs.TraceSpan{Trace: t.Trace, Span: s.NewSpan(),
				Parent: t.Span(), Name: "steal", Cat: obs.CatSteal, PE: pe,
				Start: now, End: now, N: int64(victim),
				Note: fmt.Sprintf("victim=%d thief=%d", victim, pe)})
		}
	}
	n := m.pools[victim].StealInto(m.pools[pe], batch, each)
	if n == 0 {
		return false
	}
	if c := m.cfg.Counters; c != nil {
		c.Steals.Add(1)
		c.StolenTasks.Add(int64(n))
	}
	return true
}

// Stop shuts the PE goroutines down after their pools drain of already
// popped tasks, and waits for them to exit. Remaining queued tasks are
// executed before each PE notices the close (Pool.PopWait drains first).
func (m *Machine) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	m.mu.Unlock()
	if m.fab != nil {
		// Push any buffered messages through before closing so queued work
		// reaches the pools, then stop the pump; late timer arrivals still
		// deliver, and post-close Enqueues bypass the network entirely.
		m.fab.Flush()
		m.fab.Close()
	}
	for _, p := range m.pools {
		p.Close()
	}
	m.wg.Wait()
}

// WaitQuiescent blocks until no tasks are queued or executing and reports
// whether quiescence was reached. In parallel mode it blocks (and always
// returns true); in deterministic mode nothing executes unless the caller
// pumps the machine, so blocking would deadlock — it instead reports the
// actual current quiescence status without waiting. A false return means
// tasks are still queued: use RunToQuiescence to drain them. Note that
// quiescence is only stable if nothing else (e.g. a collector goroutine)
// spawns new tasks.
func (m *Machine) WaitQuiescent() bool {
	if m.cfg.Mode == Deterministic {
		return m.inflight.Load() == 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.inflight.Load() != 0 {
		m.cond.Wait()
	}
	return true
}
