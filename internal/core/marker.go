// Package core implements the paper's primary contribution: the
// decentralized graph-marking algorithm that executes concurrently with
// graph mutation, the cooperating mutator primitives of Figure 4-2, and the
// endless mark/restructure collector cycles of §4–§5.
//
// Marking is realized as mark and return tasks flowing through the same PE
// machinery as the reduction process. The two marking processes M_R
// (Figure 5-1/5-2: mark2 from the root with priorities) and M_T
// (Figure 5-3: mark3 from the task pools) share one implementation
// parameterized by the marking context: context R traces args(v) and
// propagates min-priority; context T traces requested(v) ∪ (args(v) −
// req-args(v)) and ignores priority.
package core

import (
	"sync"
	"sync/atomic"

	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/task"
)

// Root names a starting vertex for a marking cycle. For M_R there is a
// single root with priority 3 ("we assume that the value of the root is
// essential to the overall computation", Figure 5-2); for M_T there is one
// root per task endpoint, standing in for the virtual troot/taskroot_i
// vertices of §5.2.
type Root struct {
	ID    graph.VertexID
	Prior uint8
}

// ctxState is the per-context cycle bookkeeping: the paper's rootpar/done
// protocol generalized to many roots.
type ctxState struct {
	epoch  atomic.Uint64
	active atomic.Bool

	mu           sync.Mutex
	pendingRoots int64
	done         chan struct{}

	// negCnt counts mt-cnt underflows — always zero in a correct run;
	// surfaced by the invariant checker.
	negCnt atomic.Int64
	// staleDropped counts epoch-mismatched marking tasks dropped.
	staleDropped atomic.Int64
}

// Marker executes mark and return tasks and tracks cycle completion for the
// two marking contexts.
type Marker struct {
	store    *graph.Store
	mach     *sched.Machine
	counters *metrics.Counters
	ctxs     [2]ctxState

	// faultSkipN, when n > 0, silently drops a deterministic 1/n of child
	// mark spawns (and their mt-cnt increments, so cycles still terminate).
	// Test-only: it manufactures a marking-invariant violation — an
	// unmarked vertex reachable from a marked parent — for validating the
	// invariant checker. Selection hashes (parent, child, epoch) rather
	// than counting calls, so a recorded parallel run and its serial replay
	// skip exactly the same marks regardless of execution order.
	faultSkipN atomic.Int64
}

// SetFaultSkipMark arms the test-only fault injector: a deterministic 1/n
// of child marks spawned by modify are skipped entirely. n <= 0 disarms it.
func (m *Marker) SetFaultSkipMark(n int64) { m.faultSkipN.Store(n) }

// NewMarker builds a marker over the given store and machine. counters may
// be nil.
func NewMarker(store *graph.Store, mach *sched.Machine, counters *metrics.Counters) *Marker {
	m := &Marker{store: store, mach: mach, counters: counters}
	for i := range m.ctxs {
		ch := make(chan struct{})
		close(ch) // no cycle yet: "done"
		m.ctxs[i].done = ch
	}
	return m
}

// Epoch returns the current cycle epoch of a context.
func (m *Marker) Epoch(c graph.Ctx) uint64 { return m.ctxs[c].epoch.Load() }

// Active reports whether a marking cycle is in progress for the context.
func (m *Marker) Active(c graph.Ctx) bool { return m.ctxs[c].active.Load() }

// Done reports whether the most recently started cycle for the context has
// completed (true if none was ever started).
func (m *Marker) Done(c graph.Ctx) bool { return !m.ctxs[c].active.Load() }

// UnderflowCount returns the number of mt-cnt underflows observed (must be 0).
func (m *Marker) UnderflowCount(c graph.Ctx) int64 { return m.ctxs[c].negCnt.Load() }

// StaleDropped returns the number of stale marking tasks dropped.
func (m *Marker) StaleDropped(c graph.Ctx) int64 { return m.ctxs[c].staleDropped.Load() }

// BeginCycle opens a new marking cycle for the context before its roots are
// known: it advances the epoch (implicitly unmarking every vertex) and marks
// the cycle active, holding one sentinel pending root that SeedRoots later
// releases. The returned channel is closed when every root's return has been
// received — the paper's "wait until done".
//
// Activating the cycle BEFORE the caller computes the root set is what makes
// M_T's taskpool snapshot sound in parallel mode: the snapshot is not atomic
// with respect to the PEs, and a reduction step can pass through instants
// where a waiting vertex's only task-reachability is the executing PE's
// program counter (e.g. complete() removes the requester backlink before it
// spawns the Result task that replaces it). With the cycle already active,
// every such spawn runs the cooperative hooks (Mutator.CoopTaskSpawn,
// coopTaskEdgeLocked) and registers still-unmarked endpoints as extra cycle
// roots — so any activity concurrent with the snapshot is covered by
// cooperation, and anything earlier is covered by the snapshot itself.
func (m *Marker) BeginCycle(c graph.Ctx) <-chan struct{} {
	st := &m.ctxs[c]
	st.mu.Lock()
	st.epoch.Add(1)
	st.pendingRoots = 1 // seeding sentinel, released by SeedRoots
	st.done = make(chan struct{})
	ch := st.done
	st.active.Store(true)
	st.mu.Unlock()
	return ch
}

// SeedRoots registers and spawns the cycle's root set, then releases
// BeginCycle's seeding sentinel (so an empty root set completes the cycle
// immediately, unless cooperation added roots in between).
func (m *Marker) SeedRoots(c graph.Ctx, roots []Root) {
	st := &m.ctxs[c]
	st.mu.Lock()
	epoch := st.epoch.Load()
	st.pendingRoots += int64(len(roots))
	st.mu.Unlock()

	if len(roots) > 0 {
		// Seed the whole frontier in one batch: SpawnBatch buckets the root
		// marks by destination partition and delivers each bucket under a
		// single pool lock, so an M_T cycle with thousands of taskpool roots
		// fans out across the PEs in O(partitions) lock acquisitions instead
		// of O(roots) — the seeding step no longer serializes the phase it
		// starts.
		ts := make([]task.Task, len(roots))
		for i, r := range roots {
			ts[i] = task.Task{
				Kind:  task.Mark,
				Src:   graph.NilVertex, // rootpar
				Dst:   r.ID,
				Ctx:   c,
				Prior: r.Prior,
				Epoch: epoch,
			}
		}
		m.mach.SpawnBatch(ts)
	}
	m.rootReturn(c) // release the seeding sentinel
}

// StartCycle begins a new marking cycle with a root set known up front:
// BeginCycle immediately followed by SeedRoots. M_R and schedule replay use
// it; M_T's live path interleaves its taskpool snapshot between the two
// halves (see BeginCycle).
func (m *Marker) StartCycle(c graph.Ctx, roots []Root) <-chan struct{} {
	ch := m.BeginCycle(c)
	m.SeedRoots(c, roots)
	return ch
}

// AddRootDuringCycle registers an extra root while a cycle is running. It is
// used by the cooperating mutator hooks when task activity reaches a vertex
// through an already-marked parent (so no transient vertex exists whose
// mt-cnt could account for the new work). Returns false — and does nothing —
// if the context's cycle is not active at this epoch.
func (m *Marker) AddRootDuringCycle(c graph.Ctx, id graph.VertexID, prior uint8) bool {
	st := &m.ctxs[c]
	st.mu.Lock()
	if !st.active.Load() {
		st.mu.Unlock()
		return false
	}
	epoch := st.epoch.Load()
	st.pendingRoots++
	st.mu.Unlock()

	m.mach.Spawn(task.Task{
		Kind:  task.Mark,
		Src:   graph.NilVertex,
		Dst:   id,
		Ctx:   c,
		Prior: prior,
		Epoch: epoch,
	})
	return true
}

// rootReturn processes a return addressed to rootpar.
func (m *Marker) rootReturn(c graph.Ctx) {
	st := &m.ctxs[c]
	st.mu.Lock()
	st.pendingRoots--
	if st.pendingRoots == 0 {
		st.active.Store(false)
		close(st.done)
	} else if st.pendingRoots < 0 {
		st.negCnt.Add(1)
		st.pendingRoots = 0
	}
	st.mu.Unlock()
}

// Handle executes a marking task. Non-marking tasks are ignored (the
// dispatcher routes them to the reduction engine).
func (m *Marker) Handle(t task.Task) {
	switch t.Kind {
	case task.Mark:
		m.handleMark(t)
	case task.Return:
		m.handleReturn(t)
	}
}

// handleMark is mark2 of Figure 5-1 (context R) and mark3 of Figure 5-3
// (context T). mark1 of Figure 4-1 is the degenerate case with a single
// priority.
func (m *Marker) handleMark(t task.Task) {
	st := &m.ctxs[t.Ctx]
	epoch := st.epoch.Load()
	if t.Epoch != epoch {
		st.staleDropped.Add(1)
		return
	}
	v := m.store.Vertex(t.Dst)
	if v == nil {
		m.spawnReturn(t.Ctx, t.Dst, t.Src, epoch)
		return
	}

	v.Lock()
	mc := v.CtxOf(t.Ctx)
	switch mc.StateAt(epoch) {
	case graph.Unmarked:
		m.modifyLocked(v, t.Ctx, epoch, t.Src, t.Prior)
	default:
		if t.Ctx == graph.CtxT || t.Prior <= mc.Prior {
			// Already (being) marked at sufficient priority: just release
			// our parent.
			v.Unlock()
			m.spawnReturn(t.Ctx, t.Dst, t.Src, epoch)
			return
		}
		// Re-mark at the higher priority (Figure 5-1): if v is transient,
		// release the old marking-tree parent first.
		if mc.State == graph.Transient {
			old := mc.MtPar
			m.spawnReturn(t.Ctx, t.Dst, old, epoch)
		}
		m.modifyLocked(v, t.Ctx, epoch, t.Src, t.Prior)
	}
	v.Unlock()
}

// modifyLocked is the modify(v,par,prior) procedure of Figure 5-1: touch v,
// record the marking-tree parent and priority, spawn mark tasks on the
// context's children, and mark immediately if there are none. The caller
// holds v's lock.
func (m *Marker) modifyLocked(v *graph.Vertex, c graph.Ctx, epoch uint64, par graph.VertexID, prior uint8) {
	mc := v.CtxOf(c)
	mc.Touch(epoch, par, prior)

	if c == graph.CtxR {
		for i, a := range v.Args {
			if m.faultDropsMark(v.ID, a, epoch) {
				continue
			}
			childPrior := min(prior, v.ReqKinds[i].Priority())
			m.spawnMark(c, v.ID, a, childPrior, epoch)
			mc.MtCnt++
		}
	} else {
		for _, a := range v.TaskChildren(nil) {
			if m.faultDropsMark(v.ID, a, epoch) {
				continue
			}
			m.spawnMark(c, v.ID, a, 0, epoch)
			mc.MtCnt++
		}
	}
	if mc.MtCnt == 0 {
		mc.State = graph.Marked
		m.spawnReturn(c, v.ID, par, epoch)
	}
}

// handleReturn is return1 of Figure 4-1.
func (m *Marker) handleReturn(t task.Task) {
	st := &m.ctxs[t.Ctx]
	epoch := st.epoch.Load()
	if t.Epoch != epoch {
		st.staleDropped.Add(1)
		return
	}
	if t.Dst == graph.NilVertex {
		m.rootReturn(t.Ctx)
		return
	}
	v := m.store.Vertex(t.Dst)
	if v == nil {
		return
	}
	v.Lock()
	mc := v.CtxOf(t.Ctx)
	if mc.Epoch != epoch {
		// A stale context here means the vertex was never touched this
		// cycle; the return is from dropped work.
		v.Unlock()
		st.staleDropped.Add(1)
		return
	}
	mc.MtCnt--
	if mc.MtCnt < 0 {
		mc.MtCnt = 0
		st.negCnt.Add(1)
	}
	if mc.MtCnt == 0 && mc.State == graph.Transient {
		mc.State = graph.Marked
		par := mc.MtPar
		v.Unlock()
		m.spawnReturn(t.Ctx, t.Dst, par, epoch)
		return
	}
	v.Unlock()
}

// faultDropsMark reports whether the armed fault injector claims this child
// mark. Disarmed (the normal case) it is a single atomic load. Armed, the
// decision is a pure function of (parent, child, epoch) — order-independent,
// so replay reproduces the recorded run's faults exactly.
func (m *Marker) faultDropsMark(par, child graph.VertexID, epoch uint64) bool {
	n := m.faultSkipN.Load()
	if n <= 0 {
		return false
	}
	h := uint64(par)*0x9E3779B97F4A7C15 ^ uint64(child)*0xBF58476D1CE4E5B9 ^ epoch*0x94D049BB133111EB
	h ^= h >> 31
	return h%uint64(n) == 0
}

// spawnMark enqueues a mark task.
func (m *Marker) spawnMark(c graph.Ctx, par, dst graph.VertexID, prior uint8, epoch uint64) {
	m.mach.Spawn(task.Task{Kind: task.Mark, Src: par, Dst: dst, Ctx: c, Prior: prior, Epoch: epoch})
}

// spawnReturn enqueues a return task to the marking-tree parent par (from
// vertex from, for diagnostics).
func (m *Marker) spawnReturn(c graph.Ctx, from, par graph.VertexID, epoch uint64) {
	m.mach.Spawn(task.Task{Kind: task.Return, Src: from, Dst: par, Ctx: c, Epoch: epoch})
}

// executeMarkLocked is the "execute mark1(c,b)" path of Figure 4-2's
// add-reference: run the mark logic on child synchronously so it is at
// least transient before the new reference is connected, preserving marking
// invariant 2 (a marked vertex never points to an unmarked vertex). The
// caller holds child's lock; par is the transient vertex whose mt-cnt was
// incremented for this mark.
func (m *Marker) executeMarkLocked(child *graph.Vertex, c graph.Ctx, epoch uint64, par graph.VertexID, prior uint8) {
	mc := child.CtxOf(c)
	if mc.StateAt(epoch) == graph.Unmarked {
		m.modifyLocked(child, c, epoch, par, prior)
		return
	}
	m.spawnReturn(c, child.ID, par, epoch)
}
