package core

import (
	"testing"

	"dgr/internal/graph"
)

func TestCollapseToIndOutsideMarking(t *testing.T) {
	r := newRig(t, 1, 1, false)
	v := r.vertex(graph.KindApply)
	mid := r.vertex(graph.KindApply)
	c := r.vertex(graph.KindInt)
	r.edge(v, mid, graph.ReqVital)
	r.edge(mid, c, graph.ReqVital)

	r.mut.CollapseToInd(v, c)
	v.Lock()
	defer v.Unlock()
	if v.Kind != graph.KindInd || len(v.Args) != 1 || v.Args[0] != c.ID {
		t.Fatalf("collapse: %+v", v)
	}
}

// TestCollapseToIndDuringMarking sweeps the K-reduction rewrite (collapse
// to a deep descendant) across marking interleavings: c must never be lost.
func TestCollapseToIndDuringMarking(t *testing.T) {
	for mutateAt := 0; mutateAt < 10; mutateAt++ {
		for seed := int64(0); seed < 6; seed++ {
			r := newRig(t, 2, seed, true)
			root := r.vertex(graph.KindApply)
			v := r.vertex(graph.KindApply)
			mid := r.vertex(graph.KindApply)
			c := r.vertex(graph.KindInt)
			other := r.vertex(graph.KindApply) // widens the cycle window
			r.edge(root, v, graph.ReqVital)
			r.edge(root, other, graph.ReqVital)
			chain := other
			for i := 0; i < 5; i++ {
				nxt := r.vertex(graph.KindApply)
				r.edge(chain, nxt, graph.ReqVital)
				chain = nxt
			}
			r.edge(v, mid, graph.ReqVital)
			r.edge(mid, c, graph.ReqVital)

			r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})
			steps, mutated := 0, false
			for !r.marker.Done(graph.CtxR) {
				if steps == mutateAt && !mutated {
					r.mut.CollapseToInd(v, c) // drops v→mid; mid becomes garbage
					mutated = true
				}
				if !r.mach.Step() {
					break
				}
				steps++
			}
			if !mutated || !r.marker.Done(graph.CtxR) {
				continue
			}
			if st := r.stateOf(c, graph.CtxR); st != graph.Marked {
				t.Fatalf("mutateAt=%d seed=%d: c lost (state %v)", mutateAt, seed, st)
			}
			if n := r.marker.UnderflowCount(graph.CtxR); n != 0 {
				t.Fatalf("mutateAt=%d seed=%d: underflows %d", mutateAt, seed, n)
			}
		}
	}
}

func TestMakeSelfKnotIdempotent(t *testing.T) {
	r := newRig(t, 1, 1, false)
	v := r.vertex(graph.KindApply)
	r.mut.MakeSelfKnot(v)
	r.mut.MakeSelfKnot(v)
	v.Lock()
	defer v.Unlock()
	count := 0
	for _, a := range v.Args {
		if a == v.ID {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("self edges = %d, want 1", count)
	}
	if len(v.Requested) != 1 || v.Requested[0].Src != v.ID {
		t.Fatalf("requested = %v", v.Requested)
	}
}

func TestAddRequesterCoopUpgrade(t *testing.T) {
	r := newRig(t, 1, 1, false)
	x := r.vertex(graph.KindApply)
	y := r.vertex(graph.KindApply)

	r.mut.AddRequesterCoop(y, x, graph.ReqEager)
	r.mut.AddRequesterCoop(y, x, graph.ReqVital) // upgrade, no duplicate
	r.mut.AddRequesterCoop(y, x, graph.ReqEager) // no downgrade
	y.Lock()
	defer y.Unlock()
	if len(y.Requested) != 1 {
		t.Fatalf("requesters = %v", y.Requested)
	}
	if y.Requested[0].Kind != graph.ReqVital {
		t.Fatalf("kind = %v, want vital", y.Requested[0].Kind)
	}
}

func TestRewriteSelfReference(t *testing.T) {
	// The Y-combinator shape: v rewired to reference itself must not
	// deadlock the primitive or corrupt marking.
	r := newRig(t, 1, 2, false)
	root := r.vertex(graph.KindApply)
	v := r.vertex(graph.KindApply)
	f := r.vertex(graph.KindComb)
	r.edge(root, v, graph.ReqVital)
	r.edge(v, f, graph.ReqVital)

	r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})
	r.mach.Step()
	r.mut.Rewrite(v, nil, []*graph.Vertex{f}, func() {
		v.Args = append(v.Args[:0], f.ID, v.ID)
		v.ReqKinds = append(v.ReqKinds[:0], graph.ReqNone, graph.ReqNone)
	})
	r.mach.RunUntil(func() bool { return r.marker.Done(graph.CtxR) }, 100000)
	if !r.marker.Done(graph.CtxR) {
		t.Fatal("marking did not terminate over self-edge")
	}
	r.assertMarked(graph.CtxR, root, v, f)
}

func TestRewriteFreshUnderActiveMT(t *testing.T) {
	// Rewrites during M_T must restamp fresh vertices so the deadlock
	// detector ignores them this cycle.
	r := newRig(t, 1, 3, false)
	start := r.vertex(graph.KindApply)
	chain := start
	for i := 0; i < 5; i++ {
		nxt := r.vertex(graph.KindApply)
		r.edge(chain, nxt, graph.ReqNone)
		chain = nxt
	}
	r.marker.StartCycle(graph.CtxT, []Root{{ID: start.ID}})
	r.mach.Step()

	n1, err := r.mut.Alloc(0, graph.KindApply, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.mut.Rewrite(chain, []*graph.Vertex{n1}, nil, func() {
		chain.AddArg(n1.ID, graph.ReqNone)
	})
	n1.Lock()
	stampT := n1.Red.AllocEpochT
	n1.Unlock()
	if stampT != r.marker.Epoch(graph.CtxT) {
		t.Fatalf("fresh vertex T-stamp %d, want %d", stampT, r.marker.Epoch(graph.CtxT))
	}
	r.mach.RunUntil(func() bool { return r.marker.Done(graph.CtxT) }, 100000)
}
