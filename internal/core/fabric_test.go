package core

import (
	"testing"
	"time"

	"dgr/internal/fabric"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/task"
)

// newFabricRig builds a deterministic rig whose cross-partition spawns
// transit a lossy inter-PE fabric.
func newFabricRig(t *testing.T, pes int, seed int64, fcfg fabric.Config) *rig {
	t.Helper()
	store := graph.NewStore(graph.Config{Partitions: pes, Capacity: 256})
	counters := &metrics.Counters{}
	fcfg.PEs = pes
	fcfg.Seed = seed
	fcfg.Counters = counters
	fab := fabric.New(fcfg)
	mach := sched.New(sched.Config{
		PEs:      pes,
		Mode:     sched.Deterministic,
		Seed:     seed,
		PartOf:   store.PartitionOf,
		Counters: counters,
		Fabric:   fab,
	})
	marker := NewMarker(store, mach, counters)
	mach.SetHandler(NewDispatcher(marker, nil))
	mut := NewMutator(store, marker, mach, counters)
	return &rig{t: t, store: store, mach: mach, marker: marker, mut: mut, counters: counters}
}

// vertexOn allocates a vertex on a specific partition.
func (r *rig) vertexOn(part int, kind graph.Kind) *graph.Vertex {
	r.t.Helper()
	v, err := r.store.Alloc(part, kind, 0)
	if err != nil {
		r.t.Fatal(err)
	}
	return v
}

// TestMarkingOverLossyFabric runs M_R over a graph deliberately spread
// across partitions, with every cross-PE mark/return subject to 10% drop:
// the at-least-once fabric must preserve Lemma 2 (all reachable vertices
// marked), the marking invariants, and mt-cnt conservation.
func TestMarkingOverLossyFabric(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := newFabricRig(t, 4, seed, fabric.Config{
			BatchSize:   4,
			FlushEvery:  10 * time.Microsecond,
			LinkLatency: 5 * time.Microsecond,
			Jitter:      3 * time.Microsecond,
			DropRate:    0.10,
			ReorderRate: 0.10,
		})
		// A chain that hops partitions on every edge, with a side tree.
		root := r.vertexOn(0, graph.KindApply)
		prev := root
		var all []*graph.Vertex
		all = append(all, root)
		for i := 1; i <= 20; i++ {
			v := r.vertexOn(i%4, graph.KindApply)
			r.edge(prev, v, graph.ReqVital)
			all = append(all, v)
			prev = v
		}
		for i := 0; i < 6; i++ {
			leaf := r.vertexOn((i+2)%4, graph.KindInt)
			r.edge(all[i*3], leaf, graph.ReqEager)
			all = append(all, leaf)
		}
		// Cross-partition garbage cycle, unreachable from root.
		g1 := r.vertexOn(1, graph.KindApply)
		g2 := r.vertexOn(2, graph.KindApply)
		g3 := r.vertexOn(3, graph.KindApply)
		r.edge(g1, g2, graph.ReqVital)
		r.edge(g2, g3, graph.ReqVital)
		r.edge(g3, g1, graph.ReqVital)

		r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
		r.assertMarked(graph.CtxR, all...)
		r.assertUnmarked(graph.CtxR, g1, g2, g3)
		if bad := CheckAllReachableMarked(r.store, r.marker, graph.CtxR, root.ID); len(bad) > 0 {
			t.Fatalf("seed %d: reachable-but-unmarked: %v", seed, bad)
		}
		r.assertNoViolations(graph.CtxR)
		s := r.counters.Snapshot()
		if s.FabricSent == 0 || s.FabricSent != s.FabricDelivered {
			t.Fatalf("seed %d: fabric sent=%d delivered=%d", seed, s.FabricSent, s.FabricDelivered)
		}
		if s.FabricDropped == 0 {
			t.Fatalf("seed %d: no loss injected (batches=%d)", seed, s.FabricBatches)
		}

		// A full collector cycle reclaims the cross-partition cycle.
		col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})
		rep := col.RunCycle()
		if !rep.Completed || rep.Reclaimed != 3 {
			t.Fatalf("seed %d: reclaimed=%d completed=%v, want 3/true", seed, rep.Reclaimed, rep.Completed)
		}
	}
}

// TestMTSeesInTransitTasks is the regression for M_T's taskpool snapshot:
// a demand task sitting in a fabric outbox (spawned, not yet delivered to
// any pool) must still act as a task root, or the subgraph it awaits would
// be misreported as deadlocked.
func TestMTSeesInTransitTasks(t *testing.T) {
	// A huge batch size and a deadline far beyond the snapshot point park
	// the remote demand in the outbox while taskRoots runs (the snapshot
	// happens before any pumping); the deadline stays reachable so the
	// cycle itself can complete.
	r := newFabricRig(t, 2, 4, fabric.Config{
		BatchSize:  1 << 20,
		FlushEvery: 200 * time.Microsecond,
	})
	root := r.vertexOn(0, graph.KindApply)
	// Genuinely deadlocked knot on PE 0.
	w := r.vertexOn(0, graph.KindApply)
	r.edge(root, w, graph.ReqVital)
	r.edge(w, w, graph.ReqVital)
	w.Lock()
	w.AddRequester(root.ID, graph.ReqVital)
	w.AddRequester(w.ID, graph.ReqVital)
	w.Unlock()

	// Live region: live1 on PE 0 demands live2 on PE 1; the demand is in
	// transit through the fabric at snapshot time.
	live1 := r.vertexOn(0, graph.KindApply)
	live2 := r.vertexOn(1, graph.KindApply)
	r.edge(root, live1, graph.ReqVital)
	r.edge(live1, live2, graph.ReqVital)
	live2.Lock()
	live2.AddRequester(live1.ID, graph.ReqVital)
	live2.Unlock()

	r.mach.SetHandler(NewDispatcher(r.marker, parkReducer(r.mach)))
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: live1.ID, Dst: live2.ID, Req: graph.ReqVital})
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: graph.NilVertex, Dst: root.ID, Req: graph.ReqVital})
	if r.mach.InTransit() == 0 {
		t.Fatal("test setup: cross-partition demand should be in transit")
	}

	var reported []graph.VertexID
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{
		Root:    root.ID,
		MTEvery: 1,
		OnDeadlock: func(ids []graph.VertexID) {
			reported = append(reported, ids...)
		},
	})
	rep := col.RunCycle()
	if !rep.MTRan {
		t.Fatal("M_T did not run")
	}
	// The in-transit-awaited vertices must not even be nominated.
	for _, id := range col.PendingDeadlocked() {
		if id == live1.ID || id == live2.ID {
			t.Fatalf("in-transit-awaited vertex v%d nominated as deadlock candidate (pending=%v)",
				id, col.PendingDeadlocked())
		}
	}
	// Second M_T pass confirms the untouched knot (two-phase verdict).
	col.RunCycle()
	for _, id := range reported {
		if id == live1.ID || id == live2.ID {
			t.Fatalf("in-transit-awaited vertex v%d misreported as deadlocked (reported=%v)",
				id, reported)
		}
	}
	if len(reported) != 1 || reported[0] != w.ID {
		t.Fatalf("deadlocked = %v, want exactly [%d]", reported, w.ID)
	}
}
