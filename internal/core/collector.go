package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/obs"
	"dgr/internal/sched"
	"dgr/internal/task"
)

// CollectorConfig parameterizes the endless mark/restructure cycles of §4.
type CollectorConfig struct {
	// Root is the distinguished root vertex of the computation; M_R marks
	// from it with priority 3.
	Root graph.VertexID
	// MTEvery runs the M_T (deadlock-detection) phase on every k-th cycle;
	// 0 disables M_T entirely ("in a system where deadlock is of no
	// concern, M_T may be eliminated altogether", §6). 1 runs it every
	// cycle.
	MTEvery int
	// OnDeadlock, if set, is called with the vertices newly identified as
	// deadlocked (members of DL'_v = R'_v − T').
	OnDeadlock func([]graph.VertexID)
	// Pace, in parallel mode, is the idle delay between cycles.
	Pace time.Duration
	// MaxStepsPerPhase bounds the deterministic pump per marking phase
	// (0 = unlimited). If the bound is hit the phase is abandoned and the
	// report's Completed flag is false.
	MaxStepsPerPhase int
	// Recorder, if set, observes the collector's nondeterministic decisions
	// (which marking cycles start with which roots, and when restructuring
	// runs) so a schedule recorder can log them for deterministic replay.
	Recorder CycleRecorder
	// AfterCycle, if set, is called with each cycle's report after the cycle
	// fully completes. In deterministic mode this is a safe point: no task
	// is mid-execution and no marking phase is active, so an invariant
	// checker may sweep the whole graph here.
	AfterCycle func(CycleReport)
	// AfterPhase, if set, is called immediately after a marking phase
	// completes, before anything else runs. This is the only point where
	// that context's marked closure is exact: cooperative marking stops at
	// completion, and later phases of the same cycle legally rewire edges
	// (most visibly for M_T, which runs before the whole M_R phase).
	AfterPhase func(ctx graph.Ctx)
	// Obs, when non-nil, receives per-phase spans (M_T, M_R, restructure,
	// sweep), cycle events for the flight recorder, and an end-of-cycle
	// time-series sample. All calls are nil-safe no-ops when unset.
	Obs *obs.Obs
	// Trace, when non-nil, receives each collector phase as a wall-clock
	// global interval so trace analysis can attribute the part of a traced
	// task's execution that overlapped collector work (gc-overlap blame).
	Trace *obs.TraceSink
}

// CycleRecorder observes cycle-level scheduling decisions. The M_T root set
// is a snapshot of the task pools and therefore schedule-dependent; replay
// must reuse the recorded roots rather than recompute them.
type CycleRecorder interface {
	// CycleStart fires immediately before a marking phase begins, with the
	// exact root set the phase will use.
	CycleStart(ctx graph.Ctx, roots []Root)
	// RestructureStart fires immediately before the restructuring phase.
	// sweep is the sweep scope the phase will use: 0 for a full-arena sweep,
	// k+1 for an incremental sweep of partition k only. The scope is a
	// scheduling decision (it depends on the cycle's mode and M_T rotation),
	// so replay must reuse the recorded value.
	RestructureStart(mtRan bool, sweep int)
}

// CycleReport summarizes one mark/restructure cycle.
type CycleReport struct {
	// Cycle is the 1-based cycle number.
	Cycle int64
	// MTRan reports whether the M_T phase executed this cycle.
	MTRan bool
	// Completed is false if a marking phase did not finish within the
	// deterministic step bound.
	Completed bool
	// Reclaimed is the number of garbage vertices returned to F.
	Reclaimed int
	// Deadlocked lists the vertices identified as deadlocked this cycle.
	Deadlocked []graph.VertexID
	// Expunged is the number of irrelevant tasks deleted from the pools.
	Expunged int
	// Reprioritized is the number of tasks whose priority band changed.
	Reprioritized int
	// Steps is the number of deterministic scheduler steps consumed by the
	// marking phases (0 in parallel mode).
	Steps int
	// Sweep is the restructuring phase's sweep scope: 0 for a full-arena
	// sweep, k+1 for an incremental sweep of partition k only.
	Sweep int
}

// Collector drives the endless cycle: (occasionally M_T, then) M_R, then
// the restructuring phase that returns garbage to F, expunges irrelevant
// tasks, reports deadlocked vertices, and reprioritizes the task pools.
type Collector struct {
	store    *graph.Store
	marker   *Marker
	mach     *sched.Machine
	counters *metrics.Counters
	cfg      CollectorConfig

	// pauseMu serializes whole cycles against harness critical sections
	// (Pause/Resume); RunCycle holds it for the cycle's duration.
	pauseMu sync.Mutex

	mu         sync.Mutex
	cycleN     int64
	lastTEpoch uint64 // T epoch of the most recent M_T run
	// nextSweep is the partition the next incremental sweep will cover.
	// Parallel-mode cycles without M_T sweep one partition per cycle in
	// rotation, bounding the per-cycle pause; M_T cycles always sweep the
	// full arena because dead-candidate detection and pending-verdict
	// re-detection both need a whole-arena view.
	nextSweep int

	// Two-phase deadlock verdict state. An M_T cycle's DL'_v computation
	// yields candidates, which go to pending with a sched.Watch armed over
	// them; the next M_T cycle confirms a candidate into deadSet only if it
	// was re-detected and no reduction activity touched the pending set in
	// between. deadSet therefore holds only confirmed verdicts.
	deadSet      map[graph.VertexID]bool
	pending      map[graph.VertexID]bool
	watch        *sched.Watch
	verdictEpoch uint64 // advances whenever deadSet changes

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCollector builds a collector. counters may be nil.
func NewCollector(store *graph.Store, marker *Marker, mach *sched.Machine, counters *metrics.Counters, cfg CollectorConfig) *Collector {
	return &Collector{
		store:    store,
		marker:   marker,
		mach:     mach,
		counters: counters,
		cfg:      cfg,
		deadSet:  make(map[graph.VertexID]bool),
		pending:  make(map[graph.VertexID]bool),
	}
}

// SetRoot changes the computation root (used by harnesses that rebuild the
// graph between runs).
func (c *Collector) SetRoot(root graph.VertexID) {
	c.mu.Lock()
	c.cfg.Root = root
	c.mu.Unlock()
}

// Pause blocks until any in-progress cycle completes and keeps new cycles
// from starting until Resume. Harnesses evaluating several programs on one
// live machine use it to make a compile + SetRoot sequence atomic with
// respect to the concurrent collection loop: without the fence, a cycle
// rooted at the previous program can start mid-compile and sweep the fresh,
// not-yet-rooted graph as garbage.
func (c *Collector) Pause() { c.pauseMu.Lock() }

// Resume releases a Pause.
func (c *Collector) Resume() { c.pauseMu.Unlock() }

// Root returns the current computation root.
func (c *Collector) Root() graph.VertexID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Root
}

// Cycles returns the number of completed cycles.
func (c *Collector) Cycles() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cycleN
}

// Forget removes vertices from the deadlock verdict record, both confirmed
// and pending. It exists for footnote 5's is-bottom recovery, which
// deliberately violates reduction axiom 4: a resolved probe produces a
// value after all, so it must not remain recorded (nor re-reported) as
// deadlocked.
func (c *Collector) Forget(ids []graph.VertexID) {
	c.mu.Lock()
	for _, id := range ids {
		if c.deadSet[id] {
			delete(c.deadSet, id)
			c.verdictEpoch++
		}
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// Deadlocked returns the confirmed-deadlocked set: vertices whose verdict
// survived a full M_T cycle untouched (deadlock is stable, reduction
// axiom 4, so a genuine verdict always confirms).
func (c *Collector) Deadlocked() []graph.VertexID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]graph.VertexID, 0, len(c.deadSet))
	for id := range c.deadSet {
		out = append(out, id)
	}
	return out
}

// PendingDeadlocked returns the candidate vertices detected by the most
// recent M_T cycle that have not yet been confirmed (or retracted) by a
// subsequent one.
func (c *Collector) PendingDeadlocked() []graph.VertexID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]graph.VertexID, 0, len(c.pending))
	for id := range c.pending {
		out = append(out, id)
	}
	return out
}

// VerdictEpoch returns a counter that advances every time the confirmed
// verdict set changes (confirmation, retraction of a confirmed entry via a
// sweep, or Forget). Callers can use an unchanged epoch across a pair of
// reads to know they observed one consistent verdict.
func (c *Collector) VerdictEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verdictEpoch
}

// TerminalVerdict evaluates the machine's terminal-deadlock condition — at
// least one confirmed-deadlocked vertex AND no task queued, in transit, or
// executing — as one atomic observation: both sides are read under the
// verdict lock that every confirmation holds, so a caller can never pair a
// stale verdict with a later quiescence (the TOCTOU the old
// Deadlocked()/Inflight() call pair allowed). It returns the confirmed
// count and whether the verdict is terminal.
func (c *Collector) TerminalVerdict() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.deadSet)
	return n, n > 0 && c.mach.Inflight() == 0
}

// taskRoots enumerates the marking roots for M_T: the source and
// destination of every reduction task queued in any pool, in transit
// through the inter-PE fabric, or currently executing. This realizes the
// virtual troot whose args are the taskroot_i vertices of §5.2; including
// in-transit tasks keeps the snapshot exhaustive when spawned work can sit
// in an outbox or on the wire, so a vertex awaited only by an undelivered
// message is never misreported as deadlocked.
func (c *Collector) taskRoots() []Root {
	seen := make(map[graph.VertexID]bool)
	add := func(t task.Task) {
		if !t.Kind.IsReduction() {
			return
		}
		if t.Src != graph.NilVertex {
			seen[t.Src] = true
		}
		if t.Dst != graph.NilVertex {
			seen[t.Dst] = true
		}
	}
	// Scan order follows the direction tasks move — fabric → pool → PE
	// slot — so a task migrating between custody domains mid-snapshot is
	// seen in at least one of them: a task that left the fabric before the
	// fabric scan is already queued when the pools are scanned, and a task
	// popped after the pool scan is published in its PE's current slot
	// under the pool lock (sched's pop-time publish) before the pop
	// completes. EachQueued, not pool-by-pool Each: with work stealing on,
	// only the all-locks-held scan is atomic against cross-pool movement
	// (see sched.Machine.EachQueued).
	c.mach.EachInTransit(add)
	c.mach.EachQueued(add)
	for _, t := range c.mach.CurrentTasks() {
		add(t)
	}
	roots := make([]Root, 0, len(seen))
	for id := range seen {
		roots = append(roots, Root{ID: id})
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	return roots
}

// mtDue reports whether cycle n (1-based) should run M_T.
func (c *Collector) mtDue(n int64) bool {
	return c.cfg.MTEvery > 0 && n%int64(c.cfg.MTEvery) == 0
}

// traceWallStart captures the wall clock at a phase start when lineage
// tracing is on (0 otherwise); pairs with tracePhase.
func (c *Collector) traceWallStart() int64 {
	if c.cfg.Trace == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// tracePhase records a finished collector phase as a global lineage
// interval, so trace analysis can blame the slice of a traced execution
// that overlapped collector work.
func (c *Collector) tracePhase(name string, wallStart int64) {
	if wallStart != 0 {
		c.cfg.Trace.Global(name, obs.TIDCollector, wallStart, time.Now().UnixNano())
	}
}

// RunCycle performs one full cycle. In deterministic mode it pumps the
// scheduler itself (interleaving marking with whatever reduction tasks are
// queued — this is the concurrent-marking execution); in parallel mode it
// blocks on the marker's done channels while the PEs run.
func (c *Collector) RunCycle() CycleReport {
	c.pauseMu.Lock()
	defer c.pauseMu.Unlock()

	c.mu.Lock()
	c.cycleN++
	n := c.cycleN
	root := c.cfg.Root
	c.mu.Unlock()

	rep := CycleReport{Cycle: n, Completed: true}
	o := c.cfg.Obs
	cycleStart := o.Now()
	o.Event(obs.TIDCollector, "cycle.start", uint64(root), 0, "")

	rRoots := []Root{{ID: root, Prior: graph.PriorVital}}
	if c.mtDue(n) && c.mach.Mode() == sched.Parallel {
		// Parallel mode overlaps the two marking phases: the contexts keep
		// disjoint per-vertex marking state (RCtx vs TCtx), so M_T and M_R
		// tasks interleave freely across the PEs and the cycle's marking
		// wall-time is max(M_T, M_R) instead of their sum. The sequential
		// order below is kept for deterministic mode, whose recorded
		// schedules and golden digests assume it.
		phaseStart := o.Now()
		wallStart := c.traceWallStart()
		// Activate the cycle before snapshotting the pools, so reduction
		// activity concurrent with the snapshot is covered by the
		// cooperative hooks rather than silently missed (see
		// Marker.BeginCycle).
		doneT := c.marker.BeginCycle(graph.CtxT)
		tRoots := c.taskRoots()
		if c.cfg.Recorder != nil {
			c.cfg.Recorder.CycleStart(graph.CtxT, tRoots)
		}
		c.marker.SeedRoots(graph.CtxT, tRoots)
		if c.cfg.Recorder != nil {
			c.cfg.Recorder.CycleStart(graph.CtxR, rRoots)
		}
		doneR := c.marker.StartCycle(graph.CtxR, rRoots)
		<-doneT
		c.mu.Lock()
		c.lastTEpoch = c.marker.Epoch(graph.CtxT)
		c.mu.Unlock()
		rep.MTRan = true
		o.Span("M_T", "collector", obs.TIDCollector, phaseStart, int64(len(tRoots)))
		c.tracePhase("M_T", wallStart)
		if c.counters != nil {
			c.counters.MTRuns.Add(1)
		}
		if c.cfg.AfterPhase != nil {
			c.cfg.AfterPhase(graph.CtxT)
		}
		<-doneR
		o.Span("M_R", "collector", obs.TIDCollector, phaseStart, 1)
		c.tracePhase("M_R", wallStart)
		if c.cfg.AfterPhase != nil {
			c.cfg.AfterPhase(graph.CtxR)
		}
	} else {
		if c.mtDue(n) {
			phaseStart := o.Now()
			wallStart := c.traceWallStart()
			// Activate before snapshotting, as in the overlap branch. In
			// deterministic mode nothing executes between the two halves,
			// so recorded schedules and golden digests are unchanged.
			done := c.marker.BeginCycle(graph.CtxT)
			roots := c.taskRoots()
			if c.cfg.Recorder != nil {
				c.cfg.Recorder.CycleStart(graph.CtxT, roots)
			}
			c.marker.SeedRoots(graph.CtxT, roots)
			rep.Steps += c.waitPhase(graph.CtxT, done, &rep)
			c.mu.Lock()
			c.lastTEpoch = c.marker.Epoch(graph.CtxT)
			c.mu.Unlock()
			rep.MTRan = rep.Completed
			o.Span("M_T", "collector", obs.TIDCollector, phaseStart, int64(len(roots)))
			c.tracePhase("M_T", wallStart)
			if c.counters != nil && rep.MTRan {
				c.counters.MTRuns.Add(1)
			}
			if rep.MTRan && c.cfg.AfterPhase != nil {
				c.cfg.AfterPhase(graph.CtxT)
			}
		}

		if rep.Completed {
			phaseStart := o.Now()
			wallStart := c.traceWallStart()
			if c.cfg.Recorder != nil {
				c.cfg.Recorder.CycleStart(graph.CtxR, rRoots)
			}
			done := c.marker.StartCycle(graph.CtxR, rRoots)
			rep.Steps += c.waitPhase(graph.CtxR, done, &rep)
			o.Span("M_R", "collector", obs.TIDCollector, phaseStart, 1)
			c.tracePhase("M_R", wallStart)
			if rep.Completed && c.cfg.AfterPhase != nil {
				c.cfg.AfterPhase(graph.CtxR)
			}
		}
	}

	if rep.Completed {
		rep.Sweep = c.sweepScope(rep.MTRan)
		if c.cfg.Recorder != nil {
			c.cfg.Recorder.RestructureStart(rep.MTRan, rep.Sweep)
		}
		phaseStart := o.Now()
		wallStart := c.traceWallStart()
		c.restructure(&rep)
		o.Span("restructure", "collector", obs.TIDCollector, phaseStart, int64(rep.Reclaimed))
		c.tracePhase("restructure", wallStart)
		if c.counters != nil {
			c.counters.Cycles.Add(1)
		}
	}
	o.Span("cycle", "collector", obs.TIDCollector, cycleStart, n)
	if o != nil {
		o.Event(obs.TIDCollector, "cycle.end", uint64(root), 0,
			fmt.Sprintf("reclaimed=%d expunged=%d reprio=%d deadlocked=%d",
				rep.Reclaimed, rep.Expunged, rep.Reprioritized, len(rep.Deadlocked)))
		o.SampleNow()
	}
	if c.cfg.AfterCycle != nil {
		c.cfg.AfterCycle(rep)
	}
	return rep
}

// ReplayCycleStart begins a marking phase with an explicitly recorded root
// set, for schedule replay. It performs RunCycle's per-phase bookkeeping
// (including the M_T epoch capture — safe immediately after StartCycle,
// since a context's epoch only advances at the next StartCycle) but leaves
// pumping the scheduler to the replayer, which executes the phase's tasks
// in recorded order.
func (c *Collector) ReplayCycleStart(ctx graph.Ctx, roots []Root) {
	c.marker.StartCycle(ctx, roots)
	if ctx == graph.CtxT {
		c.mu.Lock()
		c.lastTEpoch = c.marker.Epoch(graph.CtxT)
		c.mu.Unlock()
		if c.counters != nil {
			c.counters.MTRuns.Add(1)
		}
	}
}

// sweepScope decides the restructuring phase's sweep scope for a live
// cycle: 0 (full arena) or k+1 (partition k only). Parallel-mode cycles
// without M_T rotate through the partitions one per cycle, so the sweep's
// stop-the-arena work is bounded by one partition slice; M_T cycles and all
// deterministic cycles sweep everything (deadlock detection and golden
// schedules both depend on the full scan).
func (c *Collector) sweepScope(mtRan bool) int {
	if c.mach.Mode() != sched.Parallel || mtRan || c.store.Partitions() < 2 {
		return 0
	}
	c.mu.Lock()
	part := c.nextSweep
	c.nextSweep = (part + 1) % c.store.Partitions()
	c.mu.Unlock()
	return part + 1
}

// ReplayRestructure runs one restructuring phase at a recorded position in
// the schedule. mtRan is the recorded M_T flag for the cycle and sweep the
// recorded sweep scope (0 = full arena, k+1 = partition k); they gate
// deadlock detection and the sweep's coverage exactly as in the live run —
// an incremental sweep replayed as a full one would reclaim garbage cycles
// earlier than the recording did.
func (c *Collector) ReplayRestructure(mtRan bool, sweep int) CycleReport {
	c.mu.Lock()
	c.cycleN++
	rep := CycleReport{Cycle: c.cycleN, MTRan: mtRan, Completed: true, Sweep: sweep}
	c.mu.Unlock()
	c.restructure(&rep)
	if c.counters != nil {
		c.counters.Cycles.Add(1)
	}
	if c.cfg.AfterCycle != nil {
		c.cfg.AfterCycle(rep)
	}
	return rep
}

// waitPhase waits for a marking phase to finish, pumping the deterministic
// scheduler if needed. It returns the deterministic steps consumed.
func (c *Collector) waitPhase(ctx graph.Ctx, done <-chan struct{}, rep *CycleReport) int {
	if c.mach.Mode() == sched.Parallel {
		<-done
		return 0
	}
	steps := c.mach.RunUntil(func() bool { return c.marker.Done(ctx) }, c.cfg.MaxStepsPerPhase)
	if !c.marker.Done(ctx) {
		rep.Completed = false
	}
	return steps
}

// restructure is the restructuring phase: sweep garbage to F, detect
// deadlocked vertices, expunge irrelevant tasks, and reprioritize the task
// pools from the marked priorities. rep.Sweep scopes the sweep: 0 scans the
// full arena; k+1 scans only partition k (incremental mode — garbage in
// other partitions is simply collected on a later rotation, which is safe
// because unreachability is stable: nothing can re-reference a vertex no
// path reaches). The expunge below uses this cycle's garbageSet, so every
// task destined to a vertex freed THIS cycle is deleted in the same cycle
// regardless of scope — the invariant that makes freeing safe at all.
func (c *Collector) restructure(rep *CycleReport) {
	epochR := c.marker.Epoch(graph.CtxR)
	c.mu.Lock()
	epochT := c.lastTEpoch
	c.mu.Unlock()

	var garbage []*graph.Vertex
	garbageSet := make(map[graph.VertexID]bool)
	var dead []graph.VertexID

	o := c.cfg.Obs
	sweepStart := o.Now()
	forEach := c.store.ForEach
	if rep.Sweep > 0 {
		part := rep.Sweep - 1
		forEach = func(fn func(*graph.Vertex)) { c.store.ForEachInPartition(part, fn) }
	}
	forEach(func(v *graph.Vertex) {
		v.Lock()
		defer v.Unlock()
		if v.Kind == graph.KindFree {
			return
		}
		if v.Red.AllocEpoch >= epochR {
			// Allocated during this cycle: from F, not garbage (axiom 1).
			return
		}
		if v.RCtx.StateAt(epochR) == graph.Unmarked {
			garbage = append(garbage, v)
			garbageSet[v.ID] = true
			return
		}
		if rep.MTRan &&
			v.RCtx.PriorAt(epochR) == graph.PriorVital &&
			v.Red.AllocEpochT < epochT &&
			v.TCtx.StateAt(epochT) == graph.Unmarked &&
			!v.IsValueLocked() {
			// DL'_v = R'_v − T', excluding vertices that already hold
			// their value (they await nothing; after a computation
			// completes and the pools drain, T is empty but nothing is
			// deadlocked).
			dead = append(dead, v.ID)
		}
	})
	o.Span("sweep", "collector", obs.TIDCollector, sweepStart, int64(len(garbage)))

	// Expunge irrelevant tasks: every task whose destination is garbage
	// (Property 6: IRR = {<s,d> | d ∈ GAR}). The garbage set was computed
	// above, so the pool predicate needs no vertex locks (avoiding
	// pool→vertex lock nesting).
	irrelevant := func(t task.Task) bool {
		return t.Kind.IsReduction() && garbageSet[t.Dst]
	}
	for i := 0; i < c.mach.PEs(); i++ {
		rep.Expunged += c.mach.Expunge(i, irrelevant)
	}
	// An undelivered message to a reclaimed vertex is equally irrelevant:
	// delete it from the fabric so it neither executes nor holds up
	// quiescence.
	rep.Expunged += c.mach.ExpungeInTransit(irrelevant)

	// Reprioritize surviving demand tasks from the priority their
	// destination was marked with (§3.2 / §5): 3→vital, 2→eager,
	// 1→reserve. Destination priorities are pre-read into a map, again to
	// avoid nested locking from inside the pool.
	destPrior := make(map[graph.VertexID]uint8)
	for i := 0; i < c.mach.PEs(); i++ {
		c.mach.Pool(i).Each(func(t task.Task) {
			if t.Kind == task.Demand {
				destPrior[t.Dst] = 0
			}
		})
	}
	for id := range destPrior {
		if v := c.store.Vertex(id); v != nil {
			v.Lock()
			destPrior[id] = v.RCtx.PriorAt(epochR)
			v.Unlock()
		}
	}
	for i := 0; i < c.mach.PEs(); i++ {
		rep.Reprioritized += c.mach.Pool(i).Reprioritize(func(t task.Task) graph.ReqKind {
			switch destPrior[t.Dst] {
			case graph.PriorVital:
				return graph.ReqVital
			case graph.PriorEager:
				return graph.ReqEager
			case graph.PriorReserve:
				return graph.ReqNone
			default:
				return t.Req // unmarked (e.g. allocated mid-cycle): keep
			}
		})
	}

	// Return garbage to the free list — batched, one shard lock hold per
	// partition, so a big sweep doesn't serialize against the PEs'
	// allocation fast paths.
	c.store.ReleaseBatch(garbage)
	rep.Reclaimed = len(garbage)

	// Two-phase deadlock verdict. This cycle's candidate set DL'_v feeds
	// the report but is not yet believed: in parallel mode M_T's taskpool
	// snapshot races the PEs, so a reduction that re-animates a candidate
	// can hide between snapshot and verdict. A candidate becomes a
	// confirmed verdict only after it survives a full further M_T cycle —
	// still detected, with no reduction activity touching the pending set
	// (the armed sched.Watch) in between. A genuine deadlock always
	// survives, because deadlock is stable (reduction axiom 4); a racy
	// misdetection is either not re-detected (the next snapshot sees the
	// missed task or the delivered value) or touched, and is retracted.
	if rep.MTRan {
		rep.Deadlocked = dead
		confirmed, retracted := c.judgeVerdicts(dead, garbageSet)
		if retracted > 0 {
			if c.counters != nil {
				c.counters.DeadlockRetracted.Add(int64(retracted))
			}
			if o != nil {
				o.Event(obs.TIDCollector, "deadlock.retracted", 0, 0,
					fmt.Sprintf("n=%d", retracted))
			}
		}
		if len(confirmed) > 0 {
			if c.counters != nil {
				c.counters.DeadlockedFound.Add(int64(len(confirmed)))
			}
			if o != nil {
				o.Event(obs.TIDCollector, "deadlock.found", uint64(confirmed[0]), 0,
					fmt.Sprintf("n=%d", len(confirmed)))
			}
			if c.cfg.OnDeadlock != nil {
				c.cfg.OnDeadlock(confirmed)
			}
		} else if len(dead) > 0 && o != nil {
			o.Event(obs.TIDCollector, "deadlock.pending", uint64(dead[0]), 0,
				fmt.Sprintf("n=%d", len(dead)))
		}
	} else if len(garbageSet) > 0 {
		c.purgeVerdicts(garbageSet)
	}

	if c.counters != nil {
		c.counters.Reclaimed.Add(int64(rep.Reclaimed))
		c.counters.Expunged.Add(int64(rep.Expunged))
		c.counters.Reprioritized.Add(int64(rep.Reprioritized))
	}
}

// purgeVerdicts drops swept vertices from the verdict record. A reclaimed
// vertex's ID can be reused by an unrelated allocation (a root switch or
// is-bottom recovery can make a once-deadlocked knot garbage), and a stale
// record under a recycled ID would poison both the facade's deadlock check
// and the checker's confirmed-verdict oracle. Caller must not hold c.mu.
func (c *Collector) purgeVerdicts(garbage map[graph.VertexID]bool) {
	c.mu.Lock()
	for id := range garbage {
		if c.deadSet[id] {
			delete(c.deadSet, id)
			c.verdictEpoch++
		}
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// judgeVerdicts is the two-phase confirmation pass, run after every M_T
// cycle's restructure. dead is this cycle's candidate set DL'_v. A pending
// candidate from the previous M_T cycle is confirmed if it was re-detected
// with the watch untouched; it is retracted if it was not re-detected (the
// fresh snapshot saw the task or value the racy one missed); if it was
// touched but still detected, it stays a candidate for another cycle under
// a fresh watch. The surviving candidates become the new pending set.
// Returns the newly confirmed vertices (sorted) and the retraction count.
func (c *Collector) judgeVerdicts(dead []graph.VertexID, garbage map[graph.VertexID]bool) (confirmed []graph.VertexID, retracted int) {
	detected := make(map[graph.VertexID]bool, len(dead))
	for _, id := range dead {
		detected[id] = true
	}
	c.mu.Lock()
	for id := range garbage {
		if c.deadSet[id] {
			delete(c.deadSet, id)
			c.verdictEpoch++
		}
		delete(c.pending, id)
	}
	clean := c.watch != nil && !c.watch.Touched()
	for id := range c.pending {
		switch {
		case detected[id] && clean:
			if !c.deadSet[id] {
				c.deadSet[id] = true
				c.verdictEpoch++
				confirmed = append(confirmed, id)
			}
		case !detected[id]:
			retracted++
		}
	}
	next := make(map[graph.VertexID]bool, len(dead))
	for _, id := range dead {
		if !c.deadSet[id] {
			next[id] = true
		}
	}
	c.pending = next
	if len(next) > 0 {
		ids := make([]graph.VertexID, 0, len(next))
		for id := range next {
			ids = append(ids, id)
		}
		c.watch = sched.NewWatch(ids)
	} else {
		c.watch = nil
	}
	c.mach.SetWatch(c.watch)
	c.mu.Unlock()
	sort.Slice(confirmed, func(i, j int) bool { return confirmed[i] < confirmed[j] })
	return confirmed, retracted
}

// Start launches the endless collection loop in parallel mode.
func (c *Collector) Start() {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	stop := c.stop
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.RunCycle()
			if c.cfg.Pace > 0 {
				select {
				case <-stop:
					return
				case <-time.After(c.cfg.Pace):
				}
			}
		}
	}()
}

// Stop terminates the collection loop after the current cycle and waits for
// it to exit. It must be called before the machine is stopped (a cycle in
// progress blocks on marking completion).
func (c *Collector) Stop() {
	c.mu.Lock()
	stop := c.stop
	c.stop = nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	c.wg.Wait()
}
