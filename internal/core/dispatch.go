package core

import (
	"dgr/internal/sched"
	"dgr/internal/task"
)

// Dispatcher routes marking tasks to the Marker and reduction tasks to the
// reduction engine. It is the Handler installed on the PE machine, making
// the two processes share the same processing elements — marking executes
// "concurrently with the graph reduction process" by interleaving in the
// same pools.
type Dispatcher struct {
	marker  *Marker
	reducer sched.Handler
}

var _ sched.Handler = (*Dispatcher)(nil)

// NewDispatcher builds a dispatcher; reducer may be nil for marking-only
// machines (e.g. the basic-algorithm tests).
func NewDispatcher(marker *Marker, reducer sched.Handler) *Dispatcher {
	return &Dispatcher{marker: marker, reducer: reducer}
}

// SetReducer installs the reduction engine after construction (the engine
// needs the machine, which needs a handler first).
func (d *Dispatcher) SetReducer(r sched.Handler) { d.reducer = r }

// Handle implements sched.Handler.
func (d *Dispatcher) Handle(t task.Task) {
	if t.Kind.IsMarking() {
		d.marker.Handle(t)
		return
	}
	if d.reducer != nil {
		d.reducer.Handle(t)
	}
}
