package core

import (
	"math/rand"
	"testing"

	"dgr/internal/analysis"
	"dgr/internal/graph"
	"dgr/internal/task"
)

// TestMarkerMatchesOracleExactly: with the world quiescent (no mutation),
// a completed M_R cycle must mark exactly the oracle's R with exactly the
// oracle's priorities, and a completed M_T cycle must mark exactly T —
// Lemmas 1–4 collapse to set equality.
func TestMarkerMatchesOracleExactly(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, 1+int(seed%4), seed, seed%2 == 0)

		n := 10 + rng.Intn(50)
		vs := make([]*graph.Vertex, n)
		for i := range vs {
			vs[i] = r.vertex(graph.KindApply)
		}
		for i := 0; i < n*3; i++ {
			a := vs[rng.Intn(n)]
			b := vs[rng.Intn(n)]
			r.edge(a, b, graph.ReqKind(rng.Intn(3)))
		}
		for i := 0; i < n/3; i++ {
			r.request(vs[rng.Intn(n)], vs[rng.Intn(n)], graph.ReqKind(1+rng.Intn(2)))
		}
		root := vs[0]

		var tasks []task.Task
		for i := 0; i < 1+rng.Intn(4); i++ {
			tasks = append(tasks, task.Task{
				Kind: task.Demand,
				Src:  vs[rng.Intn(n)].ID,
				Dst:  vs[rng.Intn(n)].ID,
				Req:  graph.ReqVital,
			})
		}

		oracle := analysis.Analyze(r.store.Snapshot(), root.ID, tasks)

		// M_R: exact R and priorities.
		r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
		epochR := r.marker.Epoch(graph.CtxR)
		for _, v := range vs {
			v.Lock()
			st := v.RCtx.StateAt(epochR)
			prior := v.RCtx.PriorAt(epochR)
			v.Unlock()
			if oracle.R[v.ID] != (st == graph.Marked) {
				t.Fatalf("seed %d: v%d R-marked=%v oracle=%v", seed, v.ID, st == graph.Marked, oracle.R[v.ID])
			}
			if want := oracle.Prior[v.ID]; prior != want {
				t.Fatalf("seed %d: v%d prior=%d oracle=%d", seed, v.ID, prior, want)
			}
		}

		// M_T: exact T, rooted at the task endpoints.
		var roots []Root
		seen := map[graph.VertexID]bool{}
		for _, tk := range tasks {
			for _, id := range []graph.VertexID{tk.Src, tk.Dst} {
				if id != graph.NilVertex && !seen[id] {
					seen[id] = true
					roots = append(roots, Root{ID: id})
				}
			}
		}
		r.runCycle(graph.CtxT, roots...)
		epochT := r.marker.Epoch(graph.CtxT)
		for _, v := range vs {
			v.Lock()
			st := v.TCtx.StateAt(epochT)
			v.Unlock()
			if oracle.T[v.ID] != (st == graph.Marked) {
				t.Fatalf("seed %d: v%d T-marked=%v oracle=%v", seed, v.ID, st == graph.Marked, oracle.T[v.ID])
			}
		}
		r.assertNoViolations(graph.CtxR)
		r.assertNoViolations(graph.CtxT)
	}
}
