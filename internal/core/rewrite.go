package core

import "dgr/internal/graph"

// coopAttachLocked is the generalized attach cooperation used by the
// reduction engine's rewrites, where the new child c may be a deep
// descendant of parent (reached through an indirection chain or a partial
// application spine) rather than an adjacent grandchild. Both vertices are
// locked by the caller. The rule preserves the marking invariants for any
// attach:
//
//   - parent transient: spawn a mark on c counted against parent's mt-cnt
//     (exactly Figure 4-2's first case);
//   - parent marked: there is no transient vertex to count the mark
//     against, so register c as an extra root of the running cycle (the
//     marker's pendingRoots generalization of rootpar);
//   - parent unmarked: the eventual mark of parent traces the new edge.
//
// Cooperation only ever fires from transient/marked parents, which by M_R
// safety (Lemma 1) are never garbage — so garbage identification is not
// weakened by the conservative over-marking.
func (mu *Mutator) coopAttachLocked(parent, c *graph.Vertex, rk graph.ReqKind) {
	if mu.noCoop || parent == c {
		return
	}
	for _, ctx := range []graph.Ctx{graph.CtxR, graph.CtxT} {
		if !mu.marker.Active(ctx) {
			continue
		}
		epoch := mu.marker.Epoch(ctx)
		pc := parent.CtxOf(ctx)
		if c.CtxOf(ctx).StateAt(epoch) != graph.Unmarked {
			continue
		}
		prior := min(pc.Prior, rk.Priority())
		switch pc.StateAt(epoch) {
		case graph.Transient:
			mu.marker.spawnMark(ctx, parent.ID, c.ID, prior, epoch)
			pc.MtCnt++
			mu.coopCount()
		case graph.Marked:
			if mu.marker.AddRootDuringCycle(ctx, c.ID, prior) {
				mu.coopCount()
			}
		}
	}
}

// CollapseToInd rewrites v into an indirection to c, where c is an existing
// vertex currently reachable from v (e.g. through a partial-application
// spine or indirection chain) — the normal-order "result forwarding"
// rewrite used by K-reduction, if-selection and head/tail extraction. The
// new reference v→c is covered by the generalized attach cooperation.
func (mu *Mutator) CollapseToInd(v, c *graph.Vertex) {
	unlock := lockAll(v, c)
	defer unlock()
	mu.coopAttachLocked(v, c, graph.ReqNone)
	v.Kind = graph.KindInd
	v.Val = 0
	v.Args = append(v.Args[:0], c.ID)
	v.ReqKinds = append(v.ReqKinds[:0], graph.ReqNone)
}

// CollapseToIndDirect rewrites v into an indirection to its existing direct
// child c. No new reference is created (the edge v→c already exists), so no
// marking cooperation is required — only deletions of v's other edges.
func (mu *Mutator) CollapseToIndDirect(v, c *graph.Vertex) {
	unlock := lockAll(v, c)
	defer unlock()
	v.Kind = graph.KindInd
	v.Val = 0
	v.Args = append(v.Args[:0], c.ID)
	v.ReqKinds = append(v.ReqKinds[:0], graph.ReqNone)
}

// MakeSelfKnot gives v a vital self-dependency (v ∈ req-args_v(v) and
// v ∈ requested(v)) — the x = x+1 shape of Figure 3-1, used by the ⊥
// primitive. A self-edge needs no cooperation: a transient/marked v is
// itself already traced.
func (mu *Mutator) MakeSelfKnot(v *graph.Vertex) {
	unlock := lockAll(v)
	defer unlock()
	if !v.HasArg(v.ID) {
		v.AddArg(v.ID, graph.ReqVital)
		v.AddRequester(v.ID, graph.ReqVital)
	}
}

// Rewrite atomically rewires v's label and children through fn, with fresh
// vertices spliced in (ExpandNode semantics) and generalized attach
// cooperation applied to every child of v and of the fresh vertices after
// the splice. existing is the set of pre-existing vertices fn will
// reference; they are locked together with v and the fresh vertices.
//
// This is the engine-facing composition of the Figure 4-2 primitives for a
// combinator contraction: expand-node for the fresh subgraph plus
// add-reference cooperation for every deep operand that becomes newly
// referenced.
func (mu *Mutator) Rewrite(v *graph.Vertex, fresh, existing []*graph.Vertex, fn func()) {
	locks := make([]*graph.Vertex, 0, 2+len(fresh)+len(existing))
	locks = append(locks, v)
	locks = append(locks, fresh...)
	locks = append(locks, existing...)
	unlock := lockAll(locks...)
	defer unlock()

	for _, g := range fresh {
		g.Red.AllocEpoch = mu.marker.Epoch(graph.CtxR)
		g.Red.AllocEpochT = mu.marker.Epoch(graph.CtxT)
	}

	// expand-node's "if marked(a) then mark(g)".
	for _, ctx := range []graph.Ctx{graph.CtxR, graph.CtxT} {
		if mu.noCoop || !mu.marker.Active(ctx) {
			continue
		}
		epoch := mu.marker.Epoch(ctx)
		mc := v.CtxOf(ctx)
		if mc.StateAt(epoch) == graph.Marked {
			for _, g := range fresh {
				gc := g.CtxOf(ctx)
				gc.Epoch = epoch
				gc.MtCnt = 0
				gc.State = graph.Marked
				gc.MtPar = v.ID
				gc.Prior = mc.Prior
			}
			if len(fresh) > 0 {
				mu.coopCount()
			}
		}
	}

	fn()

	// Post-splice cooperation: every child edge of v and of the fresh
	// vertices is treated as an attach. byID lets us reuse already-locked
	// vertices; anything else is read fresh from the store (it is either
	// pre-existing-and-listed or a fresh vertex).
	byID := make(map[graph.VertexID]*graph.Vertex, len(locks))
	for _, l := range locks {
		byID[l.ID] = l
	}
	coverChildren := func(p *graph.Vertex) {
		for i, cid := range p.Args {
			c, ok := byID[cid]
			if !ok || c == p {
				continue
			}
			mu.coopAttachLocked(p, c, p.ReqKinds[i])
		}
	}
	coverChildren(v)
	for _, g := range fresh {
		coverChildren(g)
	}
}
