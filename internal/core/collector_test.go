package core

import (
	"testing"

	"dgr/internal/graph"
	"dgr/internal/sched"
	"dgr/internal/task"
)

// parkReducer re-spawns demand tasks unchanged so they stay in the pools
// for the duration of a collector cycle (static-scenario stand-in for the
// reduction engine).
func parkReducer(mach *sched.Machine) sched.Handler {
	return sched.HandlerFunc(func(t task.Task) {
		if t.Kind == task.Demand {
			mach.Spawn(t)
		}
	})
}

func newCollectorRig(t *testing.T, pes int, seed int64, cfg CollectorConfig) (*rig, *Collector) {
	r := newRig(t, pes, seed, false)
	col := NewCollector(r.store, r.marker, r.mach, r.counters, cfg)
	return r, col
}

func TestCollectorReclaimsGarbage(t *testing.T) {
	r, _ := newCollectorRig(t, 2, 1, CollectorConfig{})
	root := r.vertex(graph.KindApply)
	live := r.vertex(graph.KindInt)
	g1 := r.vertex(graph.KindApply)
	g2 := r.vertex(graph.KindInt)
	r.edge(root, live, graph.ReqVital)
	r.edge(g1, g2, graph.ReqVital) // unreachable pair

	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})
	freeBefore := r.store.FreeCount()
	rep := col.RunCycle()
	if !rep.Completed {
		t.Fatal("cycle incomplete")
	}
	if rep.Reclaimed != 2 {
		t.Fatalf("reclaimed = %d, want 2", rep.Reclaimed)
	}
	if got := r.store.FreeCount(); got != freeBefore+2 {
		t.Fatalf("free count = %d, want %d", got, freeBefore+2)
	}
	if !r.store.IsFree(g1.ID) || !r.store.IsFree(g2.ID) {
		t.Fatal("garbage vertices not freed")
	}
	if r.store.IsFree(root.ID) || r.store.IsFree(live.ID) {
		t.Fatal("live vertices were freed")
	}
}

func TestCollectorReclaimsCyclicGarbage(t *testing.T) {
	// The capability reference counting lacks (§4): self-referencing
	// structures are reclaimed by marking.
	r, _ := newCollectorRig(t, 2, 2, CollectorConfig{})
	root := r.vertex(graph.KindApply)
	c1 := r.vertex(graph.KindApply)
	c2 := r.vertex(graph.KindApply)
	c3 := r.vertex(graph.KindApply)
	r.edge(c1, c2, graph.ReqVital)
	r.edge(c2, c3, graph.ReqVital)
	r.edge(c3, c1, graph.ReqVital) // 3-cycle, unreachable
	selfy := r.vertex(graph.KindApply)
	r.edge(selfy, selfy, graph.ReqVital)

	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})
	rep := col.RunCycle()
	if rep.Reclaimed != 4 {
		t.Fatalf("reclaimed = %d, want 4 (cycle of 3 + self-loop)", rep.Reclaimed)
	}
}

func TestCollectorMultipleCycles(t *testing.T) {
	r, _ := newCollectorRig(t, 2, 3, CollectorConfig{})
	root := r.vertex(graph.KindApply)
	keep := r.vertex(graph.KindApply)
	r.edge(root, keep, graph.ReqVital)

	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})
	for i := 0; i < 3; i++ {
		col.RunCycle()
	}
	if got := col.Cycles(); got != 3 {
		t.Fatalf("cycles = %d", got)
	}

	// Disconnect keep; the next cycle reclaims it.
	r.mut.DeleteReference(root, keep)
	rep := col.RunCycle()
	if rep.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", rep.Reclaimed)
	}
	if !r.store.IsFree(keep.ID) {
		t.Fatal("keep not freed after disconnect")
	}
}

func TestCollectorDeadlockDetection(t *testing.T) {
	r := newRig(t, 2, 4, false)
	root := r.vertex(graph.KindApply)
	// Deadlocked region: root vitally depends on w; w vitally depends on
	// itself (the x = x+1 knot of Figure 3-1); no task can reach them.
	w := r.vertex(graph.KindApply)
	r.edge(root, w, graph.ReqVital)
	r.edge(w, w, graph.ReqVital)
	w.Lock()
	w.AddRequester(root.ID, graph.ReqVital)
	w.AddRequester(w.ID, graph.ReqVital)
	w.Unlock()

	// Live region: a queued task keeps live1/live2 task-reachable.
	live1 := r.vertex(graph.KindApply)
	live2 := r.vertex(graph.KindApply)
	r.edge(root, live1, graph.ReqVital)
	r.edge(live1, live2, graph.ReqVital)
	live2.Lock()
	live2.AddRequester(live1.ID, graph.ReqVital)
	live2.Unlock()

	// Install a parking reducer so the demand stays pooled.
	r.mach.SetHandler(NewDispatcher(r.marker, parkReducer(r.mach)))
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: live1.ID, Dst: live2.ID, Req: graph.ReqVital})
	// The root has an implicit task awaiting its value (<-,root>).
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: graph.NilVertex, Dst: root.ID, Req: graph.ReqVital})

	var reported []graph.VertexID
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{
		Root:    root.ID,
		MTEvery: 1,
		OnDeadlock: func(ids []graph.VertexID) {
			reported = append(reported, ids...)
		},
	})
	rep := col.RunCycle()
	if !rep.MTRan {
		t.Fatal("M_T did not run")
	}
	// Two-phase verdict: the first M_T pass only nominates a candidate.
	if len(reported) != 0 {
		t.Fatalf("deadlock reported after one M_T pass: %v", reported)
	}
	if got := col.Deadlocked(); len(got) != 0 {
		t.Fatalf("confirmed deadlocked after one M_T pass: %v", got)
	}
	if got := col.PendingDeadlocked(); len(got) != 1 || got[0] != w.ID {
		t.Fatalf("pending deadlocked = %v, want exactly [%d]", got, w.ID)
	}
	// The second pass re-detects the untouched candidate and confirms it.
	col.RunCycle()
	want := map[graph.VertexID]bool{w.ID: true}
	if len(reported) != 1 || !want[reported[0]] {
		t.Fatalf("deadlocked = %v, want exactly [%d]", reported, w.ID)
	}
	// Stability: a third cycle re-detects but does not re-report.
	reported = nil
	col.RunCycle()
	if len(reported) != 0 {
		t.Fatalf("deadlocked re-reported: %v", reported)
	}
	if got := col.Deadlocked(); len(got) != 1 || got[0] != w.ID {
		t.Fatalf("accumulated deadlocked = %v", got)
	}
}

func TestCollectorNoMTNoDeadlockReports(t *testing.T) {
	// With MTEvery=0, M_T never runs and deadlock is never reported
	// ("in a system where deadlock is of no concern, M_T may be eliminated
	// altogether", §6).
	r := newRig(t, 1, 5, false)
	root := r.vertex(graph.KindApply)
	w := r.vertex(graph.KindApply)
	r.edge(root, w, graph.ReqVital)
	r.edge(w, w, graph.ReqVital)

	called := false
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{
		Root:       root.ID,
		OnDeadlock: func([]graph.VertexID) { called = true },
	})
	rep := col.RunCycle()
	if rep.MTRan || called || len(rep.Deadlocked) != 0 {
		t.Fatalf("unexpected deadlock machinery: %+v called=%v", rep, called)
	}
}

func TestCollectorMTEveryK(t *testing.T) {
	r := newRig(t, 1, 6, false)
	root := r.vertex(graph.KindApply)
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{
		Root:    root.ID,
		MTEvery: 3,
	})
	mtRuns := 0
	for i := 0; i < 9; i++ {
		if col.RunCycle().MTRan {
			mtRuns++
		}
	}
	if mtRuns != 3 {
		t.Fatalf("MT ran %d times in 9 cycles with MTEvery=3, want 3", mtRuns)
	}
}

func TestCollectorExpungesIrrelevantTasks(t *testing.T) {
	r := newRig(t, 2, 7, false)
	root := r.vertex(graph.KindApply)
	live := r.vertex(graph.KindApply)
	r.edge(root, live, graph.ReqVital)
	gar := r.vertex(graph.KindApply) // unreachable: tasks to it are irrelevant

	r.mach.SetHandler(NewDispatcher(r.marker, parkReducer(r.mach)))
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: root.ID, Dst: live.ID, Req: graph.ReqVital})
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: root.ID, Dst: gar.ID, Req: graph.ReqEager})
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: live.ID, Dst: gar.ID, Req: graph.ReqEager})

	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})
	rep := col.RunCycle()
	if rep.Expunged != 2 {
		t.Fatalf("expunged = %d, want 2", rep.Expunged)
	}
	if rep.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1 (gar)", rep.Reclaimed)
	}
	// The surviving task is the one to live.
	left := 0
	for i := 0; i < r.mach.PEs(); i++ {
		r.mach.Pool(i).Each(func(tk task.Task) {
			if tk.Kind == task.Demand {
				left++
				if tk.Dst != live.ID {
					t.Errorf("surviving task %v should target live", tk)
				}
			}
		})
	}
	if left != 1 {
		t.Fatalf("surviving demands = %d, want 1", left)
	}
}

func TestCollectorReprioritizesTasks(t *testing.T) {
	r := newRig(t, 1, 8, false)
	root := r.vertex(graph.KindApply)
	d := r.vertex(graph.KindApply)
	// d is reachable only through an eager arc: its marked priority is 2.
	r.edge(root, d, graph.ReqEager)
	d.Lock()
	d.AddRequester(root.ID, graph.ReqEager)
	d.Unlock()

	r.mach.SetHandler(NewDispatcher(r.marker, parkReducer(r.mach)))
	// The queued demand claims to be vital; restructuring must downgrade it
	// to eager (prior(d) = 2).
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: root.ID, Dst: d.ID, Req: graph.ReqVital})

	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})
	rep := col.RunCycle()
	if rep.Reprioritized != 1 {
		t.Fatalf("reprioritized = %d, want 1", rep.Reprioritized)
	}
	found := false
	r.mach.Pool(0).Each(func(tk task.Task) {
		if tk.Kind == task.Demand && tk.Dst == d.ID {
			found = true
			if tk.Req != graph.ReqEager {
				t.Errorf("task req = %v, want eager", tk.Req)
			}
		}
	})
	if !found {
		t.Fatal("demand task disappeared")
	}
}

func TestCollectorFreshAllocationsSurviveCycle(t *testing.T) {
	// A vertex allocated during the marking phase is unreachable and
	// unmarked, but must not be reclaimed this cycle (reduction axiom 1).
	r := newRig(t, 1, 9, false)
	root := r.vertex(graph.KindApply)
	chain := root
	for i := 0; i < 8; i++ {
		nxt := r.vertex(graph.KindApply)
		r.edge(chain, nxt, graph.ReqVital)
		chain = nxt
	}
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})

	// Drive the cycle manually: start M_R, allocate mid-marking, finish.
	var fresh *graph.Vertex
	c := col
	c.mu.Lock()
	c.cycleN++
	c.mu.Unlock()
	done := r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})
	_ = done
	for i := 0; i < 3; i++ {
		r.mach.Step()
	}
	var err error
	fresh, err = r.mut.Alloc(0, graph.KindApply, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Splice the fresh vertex in (stamping its real alloc epochs), then cut
	// the edge again: it is now genuine garbage born this cycle.
	r.mut.ExpandNode(root, []*graph.Vertex{fresh}, func() {
		root.AddArg(fresh.ID, graph.ReqNone)
	})
	r.mut.DeleteReference(root, fresh)
	r.mach.RunUntil(func() bool { return r.marker.Done(graph.CtxR) }, 100000)
	rep := CycleReport{Cycle: 1, Completed: true}
	col.restructure(&rep)

	if r.store.IsFree(fresh.ID) {
		t.Fatal("fresh allocation reclaimed in its birth cycle")
	}
	if rep.Reclaimed != 0 {
		t.Fatalf("reclaimed = %d, want 0", rep.Reclaimed)
	}

	// The NEXT full cycle reclaims it (still unreachable).
	rep2 := col.RunCycle()
	if rep2.Reclaimed != 1 || !r.store.IsFree(fresh.ID) {
		t.Fatalf("second cycle reclaimed = %d (free=%v), want 1", rep2.Reclaimed, r.store.IsFree(fresh.ID))
	}
}

func TestCollectorStepBound(t *testing.T) {
	r := newRig(t, 1, 10, false)
	root := r.vertex(graph.KindApply)
	chain := root
	for i := 0; i < 50; i++ {
		nxt := r.vertex(graph.KindApply)
		r.edge(chain, nxt, graph.ReqVital)
		chain = nxt
	}
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{
		Root:             root.ID,
		MaxStepsPerPhase: 5, // far too few
	})
	rep := col.RunCycle()
	if rep.Completed {
		t.Fatal("cycle should have been abandoned")
	}
	if rep.Reclaimed != 0 {
		t.Fatal("abandoned cycle must not reclaim")
	}
}

func TestCollectorReprioritizesToReserve(t *testing.T) {
	// A destination reachable only through an unrequested arc is marked
	// with priority 1; its queued demand drops to the reserve band
	// (Property 5's reserve tasks get the lowest scheduling priority).
	r := newRig(t, 1, 11, false)
	root := r.vertex(graph.KindApply)
	d := r.vertex(graph.KindApply)
	r.edge(root, d, graph.ReqNone)

	r.mach.SetHandler(NewDispatcher(r.marker, parkReducer(r.mach)))
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: root.ID, Dst: d.ID, Req: graph.ReqVital})

	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})
	rep := col.RunCycle()
	if rep.Reprioritized != 1 {
		t.Fatalf("reprioritized = %d, want 1", rep.Reprioritized)
	}
	found := false
	r.mach.Pool(0).Each(func(tk task.Task) {
		if tk.Kind == task.Demand && tk.Dst == d.ID {
			found = true
			if tk.Req != graph.ReqNone || tk.Band != task.BandReserve {
				t.Errorf("task req=%v band=%d, want reserve", tk.Req, tk.Band)
			}
		}
	})
	if !found {
		t.Fatal("demand task disappeared")
	}
}

func TestCollectorForget(t *testing.T) {
	r := newRig(t, 1, 12, false)
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{})
	col.mu.Lock()
	col.deadSet[7] = true
	col.deadSet[9] = true
	col.mu.Unlock()
	col.Forget([]graph.VertexID{7})
	got := col.Deadlocked()
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("after Forget: %v", got)
	}
}

// deadlockKnot builds a rig with a self-knotted vertex w vitally demanded by
// root (the x = x+1 knot of Figure 3-1), a parked root demand keeping root
// task-reachable, and an MTEvery=1 collector reporting into *reported.
func deadlockKnot(t *testing.T, seed int64, reported *[]graph.VertexID) (*rig, *Collector, *graph.Vertex) {
	t.Helper()
	r := newRig(t, 2, seed, false)
	root := r.vertex(graph.KindApply)
	w := r.vertex(graph.KindApply)
	r.edge(root, w, graph.ReqVital)
	r.edge(w, w, graph.ReqVital)
	w.Lock()
	w.AddRequester(root.ID, graph.ReqVital)
	w.AddRequester(w.ID, graph.ReqVital)
	w.Unlock()
	r.mach.SetHandler(NewDispatcher(r.marker, parkReducer(r.mach)))
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: graph.NilVertex, Dst: root.ID, Req: graph.ReqVital})
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{
		Root:    root.ID,
		MTEvery: 1,
		OnDeadlock: func(ids []graph.VertexID) {
			*reported = append(*reported, ids...)
		},
	})
	return r, col, w
}

func TestCollectorVerdictRetractedOnNewTask(t *testing.T) {
	// A candidate that the next M_T snapshot finds task-reachable again is
	// retracted, not confirmed — the shape of the parallel false-deadlock
	// race, where the first snapshot missed a task the second one sees.
	var reported []graph.VertexID
	r, col, w := deadlockKnot(t, 41, &reported)
	col.RunCycle()
	if got := col.PendingDeadlocked(); len(got) != 1 || got[0] != w.ID {
		t.Fatalf("pending = %v, want [%d]", got, w.ID)
	}
	// The missed task materializes: w is demanded after all.
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: graph.NilVertex, Dst: w.ID, Req: graph.ReqVital})
	col.RunCycle()
	if len(reported) != 0 {
		t.Fatalf("retracted candidate was reported: %v", reported)
	}
	if got := col.Deadlocked(); len(got) != 0 {
		t.Fatalf("retracted candidate was confirmed: %v", got)
	}
	if got := col.PendingDeadlocked(); len(got) != 0 {
		t.Fatalf("retracted candidate still pending: %v", got)
	}
	if got := r.counters.DeadlockRetracted.Load(); got != 1 {
		t.Fatalf("DeadlockRetracted = %d, want 1", got)
	}
}

func TestCollectorVerdictTouchedStaysPending(t *testing.T) {
	// A candidate whose watch was touched stays pending even when
	// re-detected: the touch means reduction activity brushed the reported
	// set between the two snapshots, so the verdict waits for a clean cycle.
	// The steal below reproduces the pop→publish invisibility window: the
	// task leaves its pool (noting the watch under the pool lock) and is
	// never published, so the next snapshot cannot see it.
	var reported []graph.VertexID
	r, col, w := deadlockKnot(t, 42, &reported)
	col.RunCycle()
	if got := col.PendingDeadlocked(); len(got) != 1 || got[0] != w.ID {
		t.Fatalf("pending = %v, want [%d]", got, w.ID)
	}
	r.mach.Spawn(task.Task{Kind: task.Demand, Src: graph.NilVertex, Dst: w.ID, Req: graph.ReqVital})
	stolen := false
	for i := 0; i < r.mach.PEs(); i++ {
		if _, ok := r.mach.Pool(i).TryPopWhere(func(tk task.Task) bool {
			return tk.Kind == task.Demand && tk.Dst == w.ID
		}); ok {
			stolen = true
		}
	}
	if !stolen {
		t.Fatal("test setup: could not steal the demand on w")
	}
	col.RunCycle()
	if len(reported) != 0 || len(col.Deadlocked()) != 0 {
		t.Fatalf("touched candidate was confirmed: reported=%v dead=%v",
			reported, col.Deadlocked())
	}
	if got := col.PendingDeadlocked(); len(got) != 1 || got[0] != w.ID {
		t.Fatalf("touched candidate not re-nominated: pending=%v", got)
	}
	// A clean further cycle confirms (the knot really is deadlocked: the
	// stolen demand was never executed).
	col.RunCycle()
	if len(reported) != 1 || reported[0] != w.ID {
		t.Fatalf("reported = %v, want [%d]", reported, w.ID)
	}
}

func TestCollectorForgetAcrossMT(t *testing.T) {
	// Forget of a pending candidate and of a confirmed verdict, each across
	// an M_T boundary: the forgotten vertex must be re-nominated from
	// scratch (one full confirmation cycle again) and re-reported.
	var reported []graph.VertexID
	_, col, w := deadlockKnot(t, 43, &reported)

	// Forget while pending.
	col.RunCycle()
	if got := col.PendingDeadlocked(); len(got) != 1 || got[0] != w.ID {
		t.Fatalf("pending = %v, want [%d]", got, w.ID)
	}
	col.Forget([]graph.VertexID{w.ID})
	if got := col.PendingDeadlocked(); len(got) != 0 {
		t.Fatalf("pending after Forget = %v", got)
	}
	// The next cycle may only re-nominate, not confirm: confirmation
	// requires surviving a full cycle as a candidate, and the candidacy was
	// just forgotten.
	col.RunCycle()
	if len(reported) != 0 || len(col.Deadlocked()) != 0 {
		t.Fatalf("forgotten pending candidate confirmed early: reported=%v dead=%v",
			reported, col.Deadlocked())
	}
	col.RunCycle()
	if len(reported) != 1 || reported[0] != w.ID {
		t.Fatalf("reported = %v, want [%d]", reported, w.ID)
	}

	// Forget while confirmed (footnote 5's deliberate non-monotonicity).
	e0 := col.VerdictEpoch()
	col.Forget([]graph.VertexID{w.ID})
	if e1 := col.VerdictEpoch(); e1 <= e0 {
		t.Fatalf("verdict epoch did not advance on Forget: %d -> %d", e0, e1)
	}
	if got := col.Deadlocked(); len(got) != 0 {
		t.Fatalf("deadlocked after Forget = %v", got)
	}
	// Re-detection restarts the two-phase protocol: nominate, then confirm
	// and re-report.
	reported = nil
	col.RunCycle()
	if len(reported) != 0 {
		t.Fatalf("forgotten confirmed verdict re-reported without confirmation: %v", reported)
	}
	if got := col.PendingDeadlocked(); len(got) != 1 || got[0] != w.ID {
		t.Fatalf("pending after forget-confirmed = %v, want [%d]", got, w.ID)
	}
	col.RunCycle()
	if len(reported) != 1 || reported[0] != w.ID {
		t.Fatalf("re-reported = %v, want [%d]", reported, w.ID)
	}
}

// sweepFixture builds a 4-partition heap with a marked reachable chain and
// unreachable garbage spread over every partition, runs one M_R cycle, and
// returns the collector plus the IDs of the garbage vertices.
func sweepFixture(t *testing.T) (*rig, *Collector, []graph.VertexID) {
	t.Helper()
	r := newRig(t, 4, 17, false)
	root := r.vertex(graph.KindApply)
	live := root
	for i := 0; i < 7; i++ {
		nxt, err := r.store.Alloc(i%4, graph.KindApply, 0)
		if err != nil {
			t.Fatal(err)
		}
		r.edge(live, nxt, graph.ReqVital)
		live = nxt
	}
	var garbage []graph.VertexID
	for i := 0; i < 12; i++ {
		g, err := r.store.Alloc(i%4, graph.KindApply, 0)
		if err != nil {
			t.Fatal(err)
		}
		garbage = append(garbage, g.ID)
	}
	col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{Root: root.ID})
	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
	return r, col, garbage
}

func TestIncrementalSweepConservation(t *testing.T) {
	// The union of the four per-partition sweeps of one marking epoch frees
	// exactly the set a single full sweep would: unreachability is stable,
	// so rotating the scope delays reclamation but never changes it.
	rFull, colFull, garbFull := sweepFixture(t)
	full := colFull.ReplayRestructure(false, 0)

	rInc, colInc, garbInc := sweepFixture(t)
	var incTotal int64
	for part := 0; part < rInc.store.Partitions(); part++ {
		rep := colInc.ReplayRestructure(false, part+1)
		incTotal += int64(rep.Reclaimed)
	}

	if int64(full.Reclaimed) != incTotal {
		t.Fatalf("full sweep reclaimed %d, partition rotation reclaimed %d", full.Reclaimed, incTotal)
	}
	if full.Reclaimed == 0 {
		t.Fatal("fixture produced no garbage")
	}
	for i := range garbFull {
		if !rFull.store.IsFree(garbFull[i]) {
			t.Errorf("full sweep: garbage v%d not freed", garbFull[i])
		}
		if !rInc.store.IsFree(garbInc[i]) {
			t.Errorf("partition rotation: garbage v%d not freed", garbInc[i])
		}
	}
	// And the sweeps agree vertex by vertex across the whole arena, not
	// just on the planted garbage.
	if nf, ni := rFull.store.FreeCount(), rInc.store.FreeCount(); nf != ni {
		t.Fatalf("free counts diverge: full=%d incremental=%d", nf, ni)
	}
	for id := graph.VertexID(1); int(id) <= rFull.store.Len(); id++ {
		if rFull.store.IsFree(id) != rInc.store.IsFree(id) {
			t.Errorf("v%d: full free=%v, incremental free=%v", id, rFull.store.IsFree(id), rInc.store.IsFree(id))
		}
	}
}
