package core

import (
	"math/rand"
	"testing"

	"dgr/internal/analysis"
	"dgr/internal/graph"
	"dgr/internal/task"
)

// liveSet returns the vertices reachable from root via args right now.
func liveSet(store *graph.Store, root graph.VertexID) map[graph.VertexID]bool {
	seen := make(map[graph.VertexID]bool)
	stack := []graph.VertexID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == graph.NilVertex || seen[id] {
			continue
		}
		seen[id] = true
		v := store.Vertex(id)
		if v == nil {
			continue
		}
		v.Lock()
		stack = append(stack, v.Args...)
		v.Unlock()
	}
	return seen
}

// randomMutation performs one legal mutation on the live region through the
// cooperating primitives (the reduction process never mutates garbage, per
// reduction axiom 3).
func randomMutation(rng *rand.Rand, r *rig, root graph.VertexID) {
	live := liveSet(r.store, root)
	ids := make([]graph.VertexID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return
	}
	pick := func() *graph.Vertex { return r.store.Vertex(ids[rng.Intn(len(ids))]) }

	switch rng.Intn(4) {
	case 0: // delete a random edge from a live vertex
		a := pick()
		a.Lock()
		var b graph.VertexID
		if len(a.Args) > 0 {
			b = a.Args[rng.Intn(len(a.Args))]
		}
		a.Unlock()
		if b != graph.NilVertex {
			r.mut.DeleteReference(a, r.store.Vertex(b))
		}
	case 1: // add-reference over a random adjacent triple
		a := pick()
		a.Lock()
		var bid graph.VertexID
		if len(a.Args) > 0 {
			bid = a.Args[rng.Intn(len(a.Args))]
		}
		a.Unlock()
		if bid == graph.NilVertex {
			return
		}
		b := r.store.Vertex(bid)
		b.Lock()
		var cid graph.VertexID
		if len(b.Args) > 0 {
			cid = b.Args[rng.Intn(len(b.Args))]
		}
		b.Unlock()
		if cid == graph.NilVertex || cid == a.ID {
			return
		}
		r.mut.AddReference(a, b, r.store.Vertex(cid), graph.ReqKind(rng.Intn(3)))
	case 2: // expand-node: splice a fresh pair below a live vertex
		a := pick()
		n1, err := r.mut.Alloc(0, graph.KindApply, 0)
		if err != nil {
			return
		}
		n2, err := r.mut.Alloc(0, graph.KindInt, int64(rng.Intn(100)))
		if err != nil {
			return
		}
		r.mut.ExpandNode(a, []*graph.Vertex{n1, n2}, func() {
			n1.AddArg(n2.ID, graph.ReqVital)
			a.AddArg(n1.ID, graph.ReqKind(rng.Intn(3)))
		})
	case 3: // register a request along an existing live edge
		a := pick()
		a.Lock()
		var bid graph.VertexID
		if len(a.Args) > 0 {
			bid = a.Args[rng.Intn(len(a.Args))]
		}
		a.Unlock()
		if bid != graph.NilVertex {
			kinds := []graph.ReqKind{graph.ReqEager, graph.ReqVital}
			r.mut.RegisterRequest(a, r.store.Vertex(bid), kinds[rng.Intn(2)])
		}
	}
}

// buildRandomGraph wires n vertices with random edges from vs[0].
func buildRandomGraph(rng *rand.Rand, r *rig, n int) []*graph.Vertex {
	vs := make([]*graph.Vertex, n)
	for i := range vs {
		vs[i] = r.vertex(graph.KindApply)
	}
	for i := 0; i < n*2; i++ {
		a := vs[rng.Intn(n)]
		b := vs[rng.Intn(n)]
		r.edge(a, b, graph.ReqKind(rng.Intn(3)))
	}
	return vs
}

// TestTheorem1Containments is experiment E5: for arbitrary graphs and
// arbitrary mid-marking mutations,
//
//	GAR(t_b) ⊆ GAR'(t_c) ⊆ GAR(t_c)
//
// where GAR' is what the concurrent M_R identifies as garbage: all garbage
// present when marking began is found, and nothing is erroneously
// identified.
func TestTheorem1Containments(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, 1+int(seed%4), seed, true)
		vs := buildRandomGraph(rng, r, 8+rng.Intn(25))
		root := vs[0]

		// t_b: snapshot the garbage set as marking starts.
		resB := analysis.Analyze(r.store.Snapshot(), root.ID, nil)
		epochAtStart := r.marker.Epoch(graph.CtxR) + 1

		r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})
		steps, mutations := 0, 0
		for !r.marker.Done(graph.CtxR) {
			if mutations < 40 && rng.Intn(3) == 0 {
				randomMutation(rng, r, root.ID)
				mutations++
			}
			if !r.mach.Step() {
				break
			}
			steps++
			if steps > 500_000 {
				t.Fatalf("seed %d: marking did not terminate", seed)
			}
		}
		if !r.marker.Done(graph.CtxR) {
			t.Fatalf("seed %d: marking incomplete", seed)
		}

		// t_c: the marker's view of garbage (GAR' = V − R' − F, honoring
		// axiom 1 for fresh allocations) versus the oracle's.
		resC := analysis.Analyze(r.store.Snapshot(), root.ID, nil)
		epoch := r.marker.Epoch(graph.CtxR)
		if epoch != epochAtStart {
			t.Fatalf("seed %d: unexpected epoch churn", seed)
		}
		markerGar := make(map[graph.VertexID]bool)
		r.store.ForEach(func(v *graph.Vertex) {
			v.Lock()
			defer v.Unlock()
			if v.Kind == graph.KindFree || v.Red.AllocEpoch >= epoch {
				return
			}
			if v.RCtx.StateAt(epoch) == graph.Unmarked {
				markerGar[v.ID] = true
			}
		})

		for id := range resB.Gar {
			if !markerGar[id] {
				t.Errorf("seed %d: v%d garbage at t_b but not identified (left containment)", seed, id)
			}
		}
		for id := range markerGar {
			if !resC.Gar[id] {
				t.Errorf("seed %d: v%d identified as garbage but live at t_c (right containment)", seed, id)
			}
		}
		if n := r.marker.UnderflowCount(graph.CtxR); n != 0 {
			t.Fatalf("seed %d: underflows %d", seed, n)
		}
	}
}

// TestTheorem2Containments is experiment E6: with M_T executing before M_R,
//
//	DL_v(t_a) ⊆ DL'_v(t_c) ⊆ DL_v(t_c)
//
// deadlocked vertices present before M_T are found, and no vertex is
// erroneously reported deadlocked — even with live-region mutation churn
// during both marking phases.
func TestTheorem2Containments(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		r := newRig(t, 2, seed, true)
		root := r.vertex(graph.KindApply)

		// Deadlocked knot: root vitally depends on k1; k1 ↔ k2 vitally
		// depend on each other with mutual requests and no task activity.
		k1 := r.vertex(graph.KindApply)
		k2 := r.vertex(graph.KindApply)
		r.edge(root, k1, graph.ReqVital)
		r.edge(k1, k2, graph.ReqVital)
		r.edge(k2, k1, graph.ReqVital)
		r.request(root, k1, graph.ReqVital)
		r.request(k1, k2, graph.ReqVital)
		r.request(k2, k1, graph.ReqVital)

		// Live region with task activity and room for churn.
		live := make([]*graph.Vertex, 6)
		prev := root
		for i := range live {
			live[i] = r.vertex(graph.KindApply)
			r.edge(prev, live[i], graph.ReqVital)
			r.request(prev, live[i], graph.ReqVital)
			prev = live[i]
		}
		leafA := r.vertex(graph.KindInt)
		r.edge(prev, leafA, graph.ReqNone)

		r.mach.SetHandler(NewDispatcher(r.marker, parkReducer(r.mach)))
		r.mach.Spawn(task.Task{Kind: task.Demand, Src: prev.ID, Dst: leafA.ID, Req: graph.ReqVital})
		r.mach.Spawn(task.Task{Kind: task.Demand, Src: graph.NilVertex, Dst: root.ID, Req: graph.ReqVital})

		// t_a: oracle deadlock set as M_T begins.
		var poolTasks []task.Task
		for i := 0; i < r.mach.PEs(); i++ {
			r.mach.Pool(i).Each(func(tk task.Task) { poolTasks = append(poolTasks, tk) })
		}
		resA := analysis.Analyze(r.store.Snapshot(), root.ID, poolTasks)

		col := NewCollector(r.store, r.marker, r.mach, r.counters, CollectorConfig{
			Root:    root.ID,
			MTEvery: 1,
		})
		// Drive the cycle manually so mutations interleave with marking.
		col.mu.Lock()
		col.cycleN++
		col.mu.Unlock()
		roots := col.taskRoots()
		r.marker.StartCycle(graph.CtxT, roots)
		muts := 0
		for !r.marker.Done(graph.CtxT) {
			if muts < 20 && rng.Intn(4) == 0 {
				mutateLiveOnly(rng, r, live)
				muts++
			}
			if !r.mach.Step() {
				break
			}
		}
		col.mu.Lock()
		col.lastTEpoch = r.marker.Epoch(graph.CtxT)
		col.mu.Unlock()

		r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})
		muts = 0
		for !r.marker.Done(graph.CtxR) {
			if muts < 20 && rng.Intn(4) == 0 {
				mutateLiveOnly(rng, r, live)
				muts++
			}
			if !r.mach.Step() {
				break
			}
		}
		if !r.marker.Done(graph.CtxT) || !r.marker.Done(graph.CtxR) {
			t.Fatalf("seed %d: marking incomplete", seed)
		}

		rep := CycleReport{MTRan: true, Completed: true}
		col.restructure(&rep)

		// t_c oracle.
		poolTasks = poolTasks[:0]
		for i := 0; i < r.mach.PEs(); i++ {
			r.mach.Pool(i).Each(func(tk task.Task) { poolTasks = append(poolTasks, tk) })
		}
		resC := analysis.Analyze(r.store.Snapshot(), root.ID, poolTasks)

		reported := make(map[graph.VertexID]bool)
		for _, id := range rep.Deadlocked {
			reported[id] = true
		}
		for id := range resA.DLv {
			if !reported[id] {
				t.Errorf("seed %d: v%d deadlocked at t_a but not reported", seed, id)
			}
		}
		for id := range reported {
			if !resC.DLv[id] {
				t.Errorf("seed %d: v%d falsely reported deadlocked", seed, id)
			}
		}
		if !reported[k1.ID] || !reported[k2.ID] {
			t.Errorf("seed %d: knot not fully reported: %v", seed, rep.Deadlocked)
		}
	}
}

// mutateLiveOnly churns the live chain without touching the deadlocked knot
// (deadlocked regions are quiescent by definition).
func mutateLiveOnly(rng *rand.Rand, r *rig, live []*graph.Vertex) {
	a := live[rng.Intn(len(live))]
	switch rng.Intn(2) {
	case 0:
		n1, err := r.mut.Alloc(0, graph.KindInt, int64(rng.Intn(10)))
		if err != nil {
			return
		}
		r.mut.ExpandNode(a, []*graph.Vertex{n1}, func() {
			a.AddArg(n1.ID, graph.ReqNone)
		})
	case 1:
		a.Lock()
		var bid graph.VertexID
		for i := len(a.Args) - 1; i >= 0; i-- {
			if a.ReqKinds[i] == graph.ReqNone {
				bid = a.Args[i]
				break
			}
		}
		a.Unlock()
		if bid != graph.NilVertex {
			r.mut.DeleteReference(a, r.store.Vertex(bid))
		}
	}
}
