package core

import (
	"testing"

	"dgr/internal/graph"
)

func TestMarkLinearChain(t *testing.T) {
	r := newRig(t, 2, 1, false)
	root := r.vertex(graph.KindApply)
	a := r.vertex(graph.KindApply)
	b := r.vertex(graph.KindApply)
	c := r.vertex(graph.KindInt)
	r.edge(root, a, graph.ReqVital)
	r.edge(a, b, graph.ReqVital)
	r.edge(b, c, graph.ReqVital)
	orphan := r.vertex(graph.KindInt)

	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})

	r.assertMarked(graph.CtxR, root, a, b, c)
	r.assertUnmarked(graph.CtxR, orphan)
	r.assertNoViolations(graph.CtxR)
	if bad := CheckAllReachableMarked(r.store, r.marker, graph.CtxR, root.ID); len(bad) != 0 {
		t.Fatalf("reachable but unmarked: %v", bad)
	}
}

func TestMarkDiamondSharing(t *testing.T) {
	r := newRig(t, 4, 7, true)
	root := r.vertex(graph.KindApply)
	l := r.vertex(graph.KindApply)
	rt := r.vertex(graph.KindApply)
	shared := r.vertex(graph.KindInt)
	r.edge(root, l, graph.ReqVital)
	r.edge(root, rt, graph.ReqVital)
	r.edge(l, shared, graph.ReqVital)
	r.edge(rt, shared, graph.ReqVital)

	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
	r.assertMarked(graph.CtxR, root, l, rt, shared)
	r.assertNoViolations(graph.CtxR)
}

func TestMarkTerminatesOnCycles(t *testing.T) {
	r := newRig(t, 2, 3, false)
	root := r.vertex(graph.KindApply)
	a := r.vertex(graph.KindApply)
	b := r.vertex(graph.KindApply)
	selfy := r.vertex(graph.KindApply)
	// root → a → b → a (cycle), root → selfy → selfy (self-loop).
	r.edge(root, a, graph.ReqVital)
	r.edge(a, b, graph.ReqVital)
	r.edge(b, a, graph.ReqVital)
	r.edge(root, selfy, graph.ReqVital)
	r.edge(selfy, selfy, graph.ReqVital)

	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
	r.assertMarked(graph.CtxR, root, a, b, selfy)
	r.assertNoViolations(graph.CtxR)
}

func TestMarkPriorityMinPropagation(t *testing.T) {
	// R_e semantics: a vertex reached through a vital prefix and one eager
	// arc is eager (2) even if later arcs are vital.
	r := newRig(t, 2, 5, false)
	root := r.vertex(graph.KindApply)
	a := r.vertex(graph.KindApply) // root -eager→ a
	b := r.vertex(graph.KindApply) // a -vital→ b : still priority 2
	c := r.vertex(graph.KindApply) // b -none→ c : priority 1
	r.edge(root, a, graph.ReqEager)
	r.edge(a, b, graph.ReqVital)
	r.edge(b, c, graph.ReqNone)

	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})

	if got := r.priorOf(root); got != graph.PriorVital {
		t.Errorf("prior(root) = %d, want 3", got)
	}
	if got := r.priorOf(a); got != graph.PriorEager {
		t.Errorf("prior(a) = %d, want 2", got)
	}
	if got := r.priorOf(b); got != graph.PriorEager {
		t.Errorf("prior(b) = %d, want 2", got)
	}
	if got := r.priorOf(c); got != graph.PriorReserve {
		t.Errorf("prior(c) = %d, want 1", got)
	}
}

func TestMarkPriorityUpgrade(t *testing.T) {
	// shared is reachable via an eager path and a vital path; whichever is
	// traced first, the vital priority must prevail (the mark2 re-marking
	// path). Sweep seeds so both trace orders occur.
	for seed := int64(0); seed < 20; seed++ {
		r := newRig(t, 2, seed, true)
		root := r.vertex(graph.KindApply)
		e := r.vertex(graph.KindApply)
		v := r.vertex(graph.KindApply)
		shared := r.vertex(graph.KindApply)
		deep := r.vertex(graph.KindInt) // below shared: must also end vital
		r.edge(root, e, graph.ReqEager)
		r.edge(root, v, graph.ReqVital)
		r.edge(e, shared, graph.ReqVital)
		r.edge(v, shared, graph.ReqVital)
		r.edge(shared, deep, graph.ReqVital)

		r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})

		if got := r.priorOf(shared); got != graph.PriorVital {
			t.Fatalf("seed %d: prior(shared) = %d, want 3", seed, got)
		}
		if got := r.priorOf(deep); got != graph.PriorVital {
			t.Fatalf("seed %d: prior(deep) = %d, want 3 (re-marking must descend)", seed, got)
		}
		r.assertNoViolations(graph.CtxR)
	}
}

func TestMarkCtxTTracesTaskChildren(t *testing.T) {
	// M_T traces requested(v) ∪ (args(v) − req-args(v)).
	r := newRig(t, 2, 9, false)
	start := r.vertex(graph.KindApply)
	requested := r.vertex(graph.KindApply) // in args(start), vitally requested: NOT traced
	remainder := r.vertex(graph.KindApply) // in args(start), not requested: traced
	requester := r.vertex(graph.KindApply) // in requested(start): traced
	r.edge(start, requested, graph.ReqVital)
	r.edge(start, remainder, graph.ReqNone)
	r.request(requester, start, graph.ReqVital)

	r.runCycle(graph.CtxT, Root{ID: start.ID})

	r.assertMarked(graph.CtxT, start, remainder, requester)
	r.assertUnmarked(graph.CtxT, requested)
	r.assertNoViolations(graph.CtxT)
}

func TestMarkContextsIndependent(t *testing.T) {
	// Marking in R must not disturb T state and vice versa (§5.2: the
	// bookkeeping of M_T is distinct from M_R's).
	r := newRig(t, 1, 2, false)
	root := r.vertex(graph.KindApply)
	child := r.vertex(graph.KindInt)
	r.edge(root, child, graph.ReqNone)

	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
	r.assertMarked(graph.CtxR, root, child)
	r.assertUnmarked(graph.CtxT, root, child)

	r.runCycle(graph.CtxT, Root{ID: root.ID})
	r.assertMarked(graph.CtxT, root, child)
	r.assertMarked(graph.CtxR, root, child) // R cycle result preserved
}

func TestMarkEmptyRootsImmediatelyDone(t *testing.T) {
	r := newRig(t, 1, 1, false)
	done := r.marker.StartCycle(graph.CtxT, nil)
	select {
	case <-done:
	default:
		t.Fatal("empty cycle should be immediately done")
	}
	if !r.marker.Done(graph.CtxT) {
		t.Fatal("Done should report true")
	}
}

func TestMarkMultipleRoots(t *testing.T) {
	r := newRig(t, 2, 11, false)
	a := r.vertex(graph.KindApply)
	b := r.vertex(graph.KindApply)
	c := r.vertex(graph.KindInt)
	r.edge(a, c, graph.ReqNone)
	r.edge(b, c, graph.ReqNone)

	r.runCycle(graph.CtxT, Root{ID: a.ID}, Root{ID: b.ID})
	r.assertMarked(graph.CtxT, a, b, c)
}

func TestEpochAdvanceUnmarksEverything(t *testing.T) {
	r := newRig(t, 1, 1, false)
	root := r.vertex(graph.KindApply)
	child := r.vertex(graph.KindInt)
	r.edge(root, child, graph.ReqVital)

	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
	r.assertMarked(graph.CtxR, root, child)

	// A second cycle re-marks from scratch; between StartCycle and the
	// first task, everything is unmarked.
	r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})
	r.assertUnmarked(graph.CtxR, root, child)
	r.mach.RunUntil(func() bool { return r.marker.Done(graph.CtxR) }, 100000)
	r.assertMarked(graph.CtxR, root, child)
}

func TestStaleMarkingTasksDropped(t *testing.T) {
	r := newRig(t, 1, 1, false)
	root := r.vertex(graph.KindApply)

	// Start a cycle but do not pump it; then start the next cycle. The
	// first cycle's root mark is now stale and must be dropped without
	// corrupting the second cycle.
	r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})
	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
	r.assertMarked(graph.CtxR, root)
	if r.marker.StaleDropped(graph.CtxR) == 0 {
		t.Fatal("expected a stale task to be dropped")
	}
	if n := r.marker.UnderflowCount(graph.CtxR); n != 0 {
		t.Fatalf("underflows: %d", n)
	}
}

func TestMarkRequestTypeFunction(t *testing.T) {
	// request-type(c,v) of Figure 5-1 is realized by ReqKind.Priority.
	// Children of a vital root get exactly min(3, request-type).
	r := newRig(t, 1, 4, false)
	root := r.vertex(graph.KindApply)
	cv := r.vertex(graph.KindInt)
	ce := r.vertex(graph.KindInt)
	cr := r.vertex(graph.KindInt)
	r.edge(root, cv, graph.ReqVital)
	r.edge(root, ce, graph.ReqEager)
	r.edge(root, cr, graph.ReqNone)

	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})

	if got := r.priorOf(cv); got != 3 {
		t.Errorf("vital child prior = %d", got)
	}
	if got := r.priorOf(ce); got != 2 {
		t.Errorf("eager child prior = %d", got)
	}
	if got := r.priorOf(cr); got != 1 {
		t.Errorf("reserve child prior = %d", got)
	}
}

func TestInvariantsHoldAtEveryStep(t *testing.T) {
	// Pump a marking cycle one step at a time over a random-ish shared
	// graph; check I1–I3 after every step.
	for seed := int64(0); seed < 5; seed++ {
		r := newRig(t, 3, seed, true)
		var vs []*graph.Vertex
		for i := 0; i < 12; i++ {
			vs = append(vs, r.vertex(graph.KindApply))
		}
		// Deterministic pseudo-random wiring (depends only on indices).
		for i := range vs {
			for j := range vs {
				if (i*7+j*13+int(seed))%5 == 0 && i != j {
					r.edge(vs[i], vs[j], graph.ReqKind((i+j)%3))
				}
			}
		}
		r.marker.StartCycle(graph.CtxR, []Root{{ID: vs[0].ID, Prior: graph.PriorVital}})
		for !r.marker.Done(graph.CtxR) {
			if !r.mach.Step() {
				t.Fatalf("seed %d: machine quiesced before marking done", seed)
			}
			r.assertNoViolations(graph.CtxR)
		}
		if bad := CheckAllReachableMarked(r.store, r.marker, graph.CtxR, vs[0].ID); len(bad) != 0 {
			t.Fatalf("seed %d: reachable unmarked %v", seed, bad)
		}
	}
}
