package core

import (
	"testing"

	"dgr/internal/graph"
)

// TestCooperationIsLoadBearing is the ablation for the §4.2 argument: with
// the Figure 4-2 cooperation disabled, the add-reference/delete-reference
// race must actually lose c in at least one interleaving (it is not merely
// hypothetical), whereas with cooperation it never does (TestSection42Race).
func TestCooperationIsLoadBearing(t *testing.T) {
	lost := 0
	trials := 0
	for mutateAt := 0; mutateAt < 12; mutateAt++ {
		for seed := int64(0); seed < 8; seed++ {
			r := newRig(t, 2, seed, true)
			r.mut.SetCooperation(false)
			a := r.vertex(graph.KindApply)
			b := r.vertex(graph.KindApply)
			c := r.vertex(graph.KindApply)
			r.edge(a, b, graph.ReqVital)
			r.edge(b, c, graph.ReqVital)

			r.marker.StartCycle(graph.CtxR, []Root{{ID: a.ID, Prior: graph.PriorVital}})
			steps, mutated := 0, false
			for !r.marker.Done(graph.CtxR) {
				if steps == mutateAt && !mutated {
					r.mut.AddReference(a, b, c, graph.ReqVital)
					r.mut.DeleteReference(b, c)
					mutated = true
				}
				if !r.mach.Step() {
					break
				}
				steps++
			}
			if !mutated || !r.marker.Done(graph.CtxR) {
				continue
			}
			trials++
			if st := r.stateOf(c, graph.CtxR); st != graph.Marked {
				lost++
			}
		}
	}
	if trials == 0 {
		t.Skip("no interleaving reached the mutation point")
	}
	if lost == 0 {
		t.Fatalf("cooperation disabled across %d trials and c was never lost — the race scenario (or the ablation switch) is broken", trials)
	}
	t.Logf("without cooperation: c lost in %d/%d interleavings (with cooperation: 0, see TestSection42Race)", lost, trials)
}
