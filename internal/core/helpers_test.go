package core

import (
	"testing"

	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
)

// rig bundles a store, machine, marker and mutator for marking tests.
type rig struct {
	t        *testing.T
	store    *graph.Store
	mach     *sched.Machine
	marker   *Marker
	mut      *Mutator
	counters *metrics.Counters
}

// newRig builds a deterministic test rig.
func newRig(t *testing.T, pes int, seed int64, adversarial bool) *rig {
	t.Helper()
	store := graph.NewStore(graph.Config{Partitions: pes, Capacity: 64})
	counters := &metrics.Counters{}
	mach := sched.New(sched.Config{
		PEs:         pes,
		Mode:        sched.Deterministic,
		Seed:        seed,
		Adversarial: adversarial,
		PartOf:      store.PartitionOf,
		Counters:    counters,
	})
	marker := NewMarker(store, mach, counters)
	mach.SetHandler(NewDispatcher(marker, nil))
	mut := NewMutator(store, marker, mach, counters)
	return &rig{t: t, store: store, mach: mach, marker: marker, mut: mut, counters: counters}
}

// vertex allocates a vertex of the given kind.
func (r *rig) vertex(kind graph.Kind) *graph.Vertex {
	r.t.Helper()
	v, err := r.store.Alloc(0, kind, 0)
	if err != nil {
		r.t.Fatal(err)
	}
	return v
}

// edge wires parent→child with the given request kind (setup only: no
// marking cooperation).
func (r *rig) edge(parent, child *graph.Vertex, rk graph.ReqKind) {
	parent.Lock()
	parent.AddArg(child.ID, rk)
	parent.Unlock()
}

// request registers child ∈ requested(parent)... i.e. records that src
// requested dst's value (setup only).
func (r *rig) request(src, dst *graph.Vertex, rk graph.ReqKind) {
	dst.Lock()
	dst.AddRequester(src.ID, rk)
	dst.Unlock()
}

// runCycle starts a marking cycle for ctx from the given roots and pumps
// the deterministic machine until it completes, failing the test if it does
// not terminate within a generous bound.
func (r *rig) runCycle(ctx graph.Ctx, roots ...Root) {
	r.t.Helper()
	r.marker.StartCycle(ctx, roots)
	r.mach.RunUntil(func() bool { return r.marker.Done(ctx) }, 1_000_000)
	if !r.marker.Done(ctx) {
		r.t.Fatalf("marking ctx %v did not terminate", ctx)
	}
	if n := r.marker.UnderflowCount(ctx); n != 0 {
		r.t.Fatalf("mt-cnt underflows: %d", n)
	}
}

// stateOf returns the vertex's marking state in ctx at the current epoch.
func (r *rig) stateOf(v *graph.Vertex, ctx graph.Ctx) graph.MarkState {
	v.Lock()
	defer v.Unlock()
	return v.CtxOf(ctx).StateAt(r.marker.Epoch(ctx))
}

// priorOf returns the vertex's marked priority in ctx R.
func (r *rig) priorOf(v *graph.Vertex) uint8 {
	v.Lock()
	defer v.Unlock()
	return v.RCtx.PriorAt(r.marker.Epoch(graph.CtxR))
}

// assertMarked fails unless every vertex is Marked in ctx.
func (r *rig) assertMarked(ctx graph.Ctx, vs ...*graph.Vertex) {
	r.t.Helper()
	for _, v := range vs {
		if st := r.stateOf(v, ctx); st != graph.Marked {
			r.t.Errorf("v%d state = %v, want marked", v.ID, st)
		}
	}
}

// assertUnmarked fails unless every vertex is Unmarked in ctx.
func (r *rig) assertUnmarked(ctx graph.Ctx, vs ...*graph.Vertex) {
	r.t.Helper()
	for _, v := range vs {
		if st := r.stateOf(v, ctx); st != graph.Unmarked {
			r.t.Errorf("v%d state = %v, want unmarked", v.ID, st)
		}
	}
}

// assertNoViolations runs the invariant checker and fails on any violation.
func (r *rig) assertNoViolations(ctx graph.Ctx) {
	r.t.Helper()
	for _, err := range CheckInvariants(r.store, r.marker, r.mach, ctx) {
		r.t.Errorf("invariant violation: %v", err)
	}
}
