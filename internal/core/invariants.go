package core

import (
	"fmt"

	"dgr/internal/graph"
	"dgr/internal/sched"
	"dgr/internal/task"
)

// CheckInvariants validates the three marking invariants of §5.4.1 for one
// context against the current graph and task pools. It must be called at a
// point where no task is mid-execution (deterministic mode, between steps).
//
// The invariants checked, in their operationally precise (weakened) form:
//
//	I1: transient(v) ⇒ every context-child of v is transient/marked or has
//	    a queued mark task addressed to it.
//	I2: marked(v) ⇒ the same (the paper states "never points to an
//	    unmarked vertex"; with priority re-marking and add-reference a
//	    pending mark task is the equivalent guarantee).
//	I3: mt-cnt(v) equals the number of unreturned marks spawned from v:
//	    queued marks with parent v, plus queued returns addressed to v,
//	    plus transient vertices whose mt-par is v.
//
// It returns a list of violations (empty when all invariants hold).
func CheckInvariants(store *graph.Store, marker *Marker, mach *sched.Machine, ctx graph.Ctx) []error {
	epoch := marker.Epoch(ctx)

	marksByPar := make(map[graph.VertexID]int)
	marksByDst := make(map[graph.VertexID]int)
	returnsByDst := make(map[graph.VertexID]int)
	count := func(t task.Task) {
		if t.Ctx != ctx || t.Epoch != epoch {
			return
		}
		switch t.Kind {
		case task.Mark:
			marksByPar[t.Src]++
			marksByDst[t.Dst]++
		case task.Return:
			returnsByDst[t.Dst]++
		}
	}
	for i := 0; i < mach.PEs(); i++ {
		mach.Pool(i).Each(count)
	}
	// A mark or return in transit through the fabric is still pending — it
	// must be accounted exactly like a queued one or I1/I3 would report
	// false violations whenever a message is on the wire.
	mach.EachInTransit(count)

	transientBy := make(map[graph.VertexID]int)
	store.ForEach(func(v *graph.Vertex) {
		v.Lock()
		defer v.Unlock()
		mc := v.CtxOf(ctx)
		if mc.StateAt(epoch) == graph.Transient {
			transientBy[mc.MtPar]++
		}
	})

	var violations []error
	store.ForEach(func(v *graph.Vertex) {
		v.Lock()
		defer v.Unlock()
		if v.Kind == graph.KindFree {
			return
		}
		mc := v.CtxOf(ctx)
		st := mc.StateAt(epoch)

		if st != graph.Unmarked {
			want := marksByPar[v.ID] + returnsByDst[v.ID] + transientBy[v.ID]
			if int(mc.MtCnt) != want {
				violations = append(violations, fmt.Errorf(
					"I3: v%d (%s) mt-cnt=%d, accounted=%d (marks=%d returns=%d transient-children=%d)",
					v.ID, st, mc.MtCnt, want, marksByPar[v.ID], returnsByDst[v.ID], transientBy[v.ID]))
			}
		}
		if mc.MtCnt < 0 {
			violations = append(violations, fmt.Errorf("I3: v%d negative mt-cnt %d", v.ID, mc.MtCnt))
		}

		if st == graph.Transient || st == graph.Marked {
			var children []graph.VertexID
			if ctx == graph.CtxR {
				children = v.Args
			} else {
				children = v.TaskChildren(nil)
			}
			for _, cid := range children {
				c := store.Vertex(cid)
				if c == nil {
					continue
				}
				// Avoid self-deadlock on self-edges; the state read below
				// needs c's lock unless c == v.
				var cst graph.MarkState
				if c == v {
					cst = mc.StateAt(epoch)
				} else {
					c.Lock()
					cst = c.CtxOf(ctx).StateAt(epoch)
					c.Unlock()
				}
				if cst == graph.Unmarked && marksByDst[cid] == 0 {
					inv := "I1"
					if st == graph.Marked {
						inv = "I2"
					}
					violations = append(violations, fmt.Errorf(
						"%s: %s v%d has unmarked child v%d with no pending mark", inv, st, v.ID, cid))
				}
			}
		}
	})
	return violations
}

// CheckAllReachableMarked validates Lemma 2's conclusion for context R (and
// Lemma 4's for context T): after a completed cycle every vertex reachable
// from the given roots through the context's child relation is Marked. It
// returns the unmarked-but-reachable vertices.
func CheckAllReachableMarked(store *graph.Store, marker *Marker, ctx graph.Ctx, roots ...graph.VertexID) []graph.VertexID {
	epoch := marker.Epoch(ctx)
	seen := make(map[graph.VertexID]bool)
	var bad []graph.VertexID
	stack := append([]graph.VertexID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == graph.NilVertex || seen[id] {
			continue
		}
		seen[id] = true
		v := store.Vertex(id)
		if v == nil {
			continue
		}
		v.Lock()
		if v.CtxOf(ctx).StateAt(epoch) != graph.Marked {
			bad = append(bad, id)
		}
		var children []graph.VertexID
		if ctx == graph.CtxR {
			children = append(children, v.Args...)
		} else {
			children = v.TaskChildren(nil)
		}
		v.Unlock()
		stack = append(stack, children...)
	}
	return bad
}
