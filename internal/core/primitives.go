package core

import (
	"sort"

	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
)

// Mutator provides the cooperating mutator primitives of Figure 4-2
// (delete-reference, add-reference, expand-node) plus the task-structure
// mutations (request registration, value receipt, dereference) with their
// M_T cooperation. Every connectivity change the reduction process makes
// must go through a Mutator so the marking invariants hold:
//
//  1. for each transient vertex, at least one mark task is spawned on each
//     of its children (and mt-cnt reflects this);
//  2. a marked vertex never points to an unmarked vertex (weakened, as the
//     paper's re-marking also requires, to: ... unless a mark task for that
//     child is pending).
//
// Locking discipline: a primitive locks all vertices it manipulates in
// ascending ID order before reading any marking state, which makes it
// atomic with respect to marking tasks (which lock single vertices) and to
// other primitives. This realizes the paper's atomicity assumption (§4.1).
type Mutator struct {
	store    *graph.Store
	marker   *Marker
	mach     *sched.Machine
	counters *metrics.Counters
	// noCoop disables all marking cooperation — ONLY for the ablation
	// experiment that demonstrates the §4.2 race actually loses vertices
	// without it. Never set in a functioning system.
	noCoop bool
}

// NewMutator builds a mutator. counters may be nil.
func NewMutator(store *graph.Store, marker *Marker, mach *sched.Machine, counters *metrics.Counters) *Mutator {
	return &Mutator{store: store, marker: marker, mach: mach, counters: counters}
}

// SetCooperation enables or disables mutator/marker cooperation. Disabling
// it deliberately breaks the marking invariants; it exists so the ablation
// experiment can show the Figure 4-2 cooperation is load-bearing.
func (mu *Mutator) SetCooperation(enabled bool) { mu.noCoop = !enabled }

// Store returns the underlying vertex store.
func (mu *Mutator) Store() *graph.Store { return mu.store }

// Marker returns the marker this mutator cooperates with.
func (mu *Mutator) Marker() *Marker { return mu.marker }

// lockAll locks the given vertices in ascending ID order (duplicates are
// locked once) and returns the unlock function.
func lockAll(vs ...*graph.Vertex) func() {
	sorted := make([]*graph.Vertex, 0, len(vs))
	for _, v := range vs {
		if v != nil {
			sorted = append(sorted, v)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	uniq := sorted[:0]
	var last graph.VertexID
	for _, v := range sorted {
		if v.ID != last {
			uniq = append(uniq, v)
			last = v.ID
		}
	}
	for _, v := range uniq {
		v.Lock()
	}
	return func() {
		for i := len(uniq) - 1; i >= 0; i-- {
			uniq[i].Unlock()
		}
	}
}

// coopCount bumps the cooperating-mark counter.
func (mu *Mutator) coopCount() {
	if mu.counters != nil {
		mu.counters.CoopMarks.Add(1)
	}
}

// Alloc takes a vertex from the free list stamped with FreshAllocEpoch, so
// the restructuring sweep honors reduction axiom 1 (new vertices come only
// from F and are never garbage) throughout the allocation limbo. Stamping a
// real epoch here would race the sweep two ways: the stamp lands after the
// vertex is already labeled non-free, and the allocating goroutine can stall
// for whole cycles between Alloc and the splice that makes the vertex
// reachable — either way a sweep would reclaim the vertex before it is
// wired. The splice primitives (Rewrite, ExpandNode) record the real alloc
// epochs under the vertex locks at wiring time.
func (mu *Mutator) Alloc(part int, kind graph.Kind, val int64) (*graph.Vertex, error) {
	v, err := mu.store.AllocStamped(part, kind, val,
		graph.FreshAllocEpoch, graph.FreshAllocEpoch)
	if err != nil {
		return nil, err
	}
	if mu.counters != nil {
		mu.counters.Allocations.Add(1)
	}
	return v, nil
}

// DeleteReference is Figure 4-2's delete-reference(a,b): disconnect b from
// children(a). Deleting an edge can only create garbage, never hide live
// vertices, so no marking cooperation is required. It returns the request
// kind the edge carried and whether the edge existed.
func (mu *Mutator) DeleteReference(a, b *graph.Vertex) (graph.ReqKind, bool) {
	unlock := lockAll(a)
	defer unlock()
	return a.RemoveArg(b.ID)
}

// AddReference is Figure 4-2's add-reference(a,b,c), defined for three
// adjacent vertices with b ∈ children(a) and c ∈ children(b): connect c as
// a new child of a with request kind rk, cooperating with every active
// marking process so that invariants 1 and 2 are preserved.
func (mu *Mutator) AddReference(a, b, c *graph.Vertex, rk graph.ReqKind) {
	unlock := lockAll(a, b, c)
	defer unlock()
	for _, ctx := range []graph.Ctx{graph.CtxR, graph.CtxT} {
		if mu.marker.Active(ctx) {
			mu.coopAddRefLocked(ctx, a, b, c, rk)
		}
	}
	a.AddArg(c.ID, rk)
}

// coopAddRefLocked applies the marking cooperation of Figure 4-2's
// add-reference for one context. All three vertices are locked.
func (mu *Mutator) coopAddRefLocked(ctx graph.Ctx, a, b, c *graph.Vertex, rk graph.ReqKind) {
	if mu.noCoop {
		return
	}
	epoch := mu.marker.Epoch(ctx)
	sa := a.CtxOf(ctx).StateAt(epoch)
	sb := b.CtxOf(ctx).StateAt(epoch)
	switch {
	case sa == graph.Transient && sb == graph.Unmarked:
		// c may be untraced; spawn a mark from a and account for it.
		prior := min(a.CtxOf(ctx).Prior, rk.Priority())
		mu.marker.spawnMark(ctx, a.ID, c.ID, prior, epoch)
		a.CtxOf(ctx).MtCnt++
		mu.coopCount()
	case sa == graph.Marked && sb == graph.Transient:
		// a is marked, so c must be at least transient before the connect:
		// execute the mark on c now, counted against the transient b.
		prior := min(b.CtxOf(ctx).Prior, rk.Priority())
		b.CtxOf(ctx).MtCnt++
		mu.marker.executeMarkLocked(c, ctx, epoch, b.ID, prior)
		mu.coopCount()
	}
	// All other state combinations need no action: if b is transient or
	// marked, invariant 1/2 applied to b guarantees a mark reaches c; if a
	// is unmarked, the eventual mark of a will trace the new edge.
}

// ExpandNode is Figure 4-2's expand-node(a,g): splice a subgraph g of
// freshly allocated vertices below a. splice relabels a and rewires its
// children under a's lock; the fresh vertices may reference each other and
// existing descendants of a (reachable from a through a chain of
// at-least-transient vertices), exactly as the paper's splice-in-subgraph
// allows. Marking cooperation: if a is marked, the fresh vertices are
// marked (with a's priority); if a is transient, marks are spawned on all
// of a's post-splice children.
func (mu *Mutator) ExpandNode(a *graph.Vertex, fresh []*graph.Vertex, splice func()) {
	locks := make([]*graph.Vertex, 0, len(fresh)+1)
	locks = append(locks, a)
	locks = append(locks, fresh...)
	unlock := lockAll(locks...)
	defer unlock()

	type coopPlan struct {
		ctx   graph.Ctx
		epoch uint64
		state graph.MarkState
		prior uint8
	}
	// Re-stamp the fresh vertices at splice time so the restructuring sweep
	// and the deadlock detector treat them as allocated in the cycle that
	// actually sees them become reachable.
	for _, g := range fresh {
		g.Red.AllocEpoch = mu.marker.Epoch(graph.CtxR)
		g.Red.AllocEpochT = mu.marker.Epoch(graph.CtxT)
	}

	var plans []coopPlan
	for _, ctx := range []graph.Ctx{graph.CtxR, graph.CtxT} {
		if mu.noCoop || !mu.marker.Active(ctx) {
			continue
		}
		epoch := mu.marker.Epoch(ctx)
		mc := a.CtxOf(ctx)
		st := mc.StateAt(epoch)
		plans = append(plans, coopPlan{ctx: ctx, epoch: epoch, state: st, prior: mc.Prior})
		if st == graph.Marked {
			// "if marked(a) then mark(g)".
			for _, g := range fresh {
				gc := g.CtxOf(ctx)
				gc.Epoch = epoch
				gc.MtCnt = 0
				gc.State = graph.Marked
				gc.MtPar = a.ID
				gc.Prior = mc.Prior
			}
			mu.coopCount()
		}
		// "else unmark(g)": fresh vertices have stale epochs and are
		// already unmarked; nothing to do.
	}

	splice()

	for _, p := range plans {
		if p.state != graph.Transient {
			continue
		}
		// "if transient(a) then for each x ∈ children(a) spawn mark1(x,a)".
		mc := a.CtxOf(p.ctx)
		if p.ctx == graph.CtxR {
			for i, x := range a.Args {
				prior := min(p.prior, a.ReqKinds[i].Priority())
				mu.marker.spawnMark(p.ctx, a.ID, x, prior, p.epoch)
				mc.MtCnt++
			}
		} else {
			for _, x := range a.TaskChildren(nil) {
				mu.marker.spawnMark(p.ctx, a.ID, x, 0, p.epoch)
				mc.MtCnt++
			}
		}
		mu.coopCount()
	}
}

// RelabelLeaf rewrites a into a leaf of the given kind/value, deleting all
// outgoing edges (a pure contraction: no cooperation needed).
func (mu *Mutator) RelabelLeaf(a *graph.Vertex, kind graph.Kind, val int64) {
	unlock := lockAll(a)
	defer unlock()
	a.Kind = kind
	a.Val = val
	a.Args = a.Args[:0]
	a.ReqKinds = a.ReqKinds[:0]
}

// coopTaskEdgeLocked handles M_T cooperation when vertex p gains a new
// task-traceable child x (x entered C(p) = requested(p) ∪ (args(p) −
// req-args(p))). p and x are locked by the caller. If p is T-transient the
// mark is counted against p; if p is already T-marked the marker accounts
// for it as an extra cycle root (there is no transient vertex whose mt-cnt
// could carry it).
func (mu *Mutator) coopTaskEdgeLocked(p, x *graph.Vertex) {
	if mu.noCoop || !mu.marker.Active(graph.CtxT) {
		return
	}
	epoch := mu.marker.Epoch(graph.CtxT)
	pc := p.CtxOf(graph.CtxT)
	if x.CtxOf(graph.CtxT).StateAt(epoch) != graph.Unmarked {
		return
	}
	switch pc.StateAt(epoch) {
	case graph.Transient:
		mu.marker.spawnMark(graph.CtxT, p.ID, x.ID, 0, epoch)
		pc.MtCnt++
		mu.coopCount()
	case graph.Marked:
		if mu.marker.AddRootDuringCycle(graph.CtxT, x.ID, 0) {
			mu.coopCount()
		}
	}
}

// RegisterRequest records that x has requested y's value with kind rk
// (vital or eager): the edge x→y moves into req-args_v(x) or req-args_e(x)
// and x joins requested(y). It cooperates with M_T because x became
// task-reachable from y (y will eventually reply to x).
//
// It returns false if the edge x→y does not exist.
func (mu *Mutator) RegisterRequest(x, y *graph.Vertex, rk graph.ReqKind) bool {
	unlock := lockAll(x, y)
	defer unlock()
	if !x.SetReqKind(y.ID, rk) {
		return false
	}
	y.AddRequester(x.ID, rk)
	mu.coopTaskEdgeLocked(y, x)
	return true
}

// CompleteRequest records that y replied to x with its value: x leaves
// requested(y), and the edge x→y (if still present) returns to the
// unrequested remainder — the value has been received, so per reduction
// axiom 5's contrapositive the vertex is no longer "requested". Moving the
// edge back into args(x) − req-args(x) makes y task-traceable from x again,
// which requires M_T cooperation.
func (mu *Mutator) CompleteRequest(x, y *graph.Vertex) {
	unlock := lockAll(x, y)
	defer unlock()
	y.RemoveRequester(x.ID)
	ok := x.SetReqKind(y.ID, graph.ReqNone)
	if ok {
		mu.coopTaskEdgeLocked(x, y)
	}
}

// SetRequestKind records, on the requester's side, that x is about to
// request y's value with kind rk: the edge x→y (which must exist) moves
// into req-args_v(x)/req-args_e(x). Kinds only ever go up here (a vital
// request is never silently downgraded). Returns false if the edge is
// missing.
//
// M_R sees only a priority change (self-correcting next cycle, §5.3); for
// M_T the edge leaves C(x), a removal, so no cooperation is needed.
func (mu *Mutator) SetRequestKind(x, y *graph.Vertex, rk graph.ReqKind) bool {
	unlock := lockAll(x)
	defer unlock()
	i := x.ArgIndex(y.ID)
	if i < 0 {
		return false
	}
	if rk > x.ReqKinds[i] {
		x.ReqKinds[i] = rk
	}
	return true
}

// AddRequesterCoop records, on the destination's side, that x requested
// y's value ("the execution of a task <s,v> results in adding s to
// requested(v)"). Duplicate registrations upgrade the stored kind instead
// of adding a second entry. Adding x to requested(y) makes x
// task-reachable from y, requiring M_T cooperation.
func (mu *Mutator) AddRequesterCoop(y, x *graph.Vertex, rk graph.ReqKind) {
	unlock := lockAll(x, y)
	defer unlock()
	for i := range y.Requested {
		if y.Requested[i].Src == x.ID {
			if rk > y.Requested[i].Kind {
				y.Requested[i].Kind = rk
			}
			return
		}
	}
	y.AddRequester(x.ID, rk)
	mu.coopTaskEdgeLocked(y, x)
}

// CoopTaskSpawn cooperates with an active M_T cycle when a new reduction
// task <src,dst> is spawned mid-cycle. M_T's root set is a snapshot of the
// task pools taken at cycle start (§5.2), so a task spawned after the
// snapshot is invisible to it — and the act of demanding moves the target
// out of C(spawner) (the edge enters req-args), leaving the pending task
// itself as the only carrier of task-reachability. Without cooperation the
// task's endpoints can finish the cycle T-unmarked and be misreported as
// deadlocked; because deadlock is stable (reduction axiom 4), one such
// false positive condemns the whole run. Each endpoint that is still
// unmarked at the current epoch is registered as an extra cycle root — the
// same pendingRoots generalization of rootpar that add-reference uses from
// marked parents.
//
// Vertices allocated at or after the cycle's epoch are skipped: the
// deadlock criterion already exempts them (AllocEpochT < epochT), so
// marking them buys nothing and would let a busy reduction phase keep the
// cycle alive indefinitely.
func (mu *Mutator) CoopTaskSpawn(src, dst graph.VertexID) {
	if mu.noCoop || !mu.marker.Active(graph.CtxT) {
		return
	}
	epoch := mu.marker.Epoch(graph.CtxT)
	for _, id := range [2]graph.VertexID{src, dst} {
		if id == graph.NilVertex {
			continue
		}
		v := mu.store.Vertex(id)
		if v == nil {
			continue
		}
		v.Lock()
		needsRoot := v.Kind != graph.KindFree &&
			v.Red.AllocEpochT < epoch &&
			v.CtxOf(graph.CtxT).StateAt(epoch) == graph.Unmarked
		v.Unlock()
		if needsRoot {
		}
		if needsRoot && mu.marker.AddRootDuringCycle(graph.CtxT, id, 0) {
			mu.coopCount()
		}
	}
}

// Dereference implements §3.2's dereferencing of an eagerly requested
// vertex whose value turned out to be irrelevant: the reference is removed
// from req-args_e(x) (here: the edge is deleted outright, so y can become
// garbage) and x is removed from requested(y). Removals need no marking
// cooperation.
func (mu *Mutator) Dereference(x, y *graph.Vertex) {
	unlock := lockAll(x, y)
	defer unlock()
	x.RemoveArg(y.ID)
	y.RemoveRequester(x.ID)
}
