package core

import (
	"testing"

	"dgr/internal/graph"
)

// TestSection42Race reproduces the motivating race of §4.2: graph a→b→c,
// marking starts at a; mid-marking the mutator runs add-reference(a,b,c)
// then delete-reference(b,c), leaving b ← a → c. Without cooperation, c is
// never marked once marking has passed a. With the cooperating primitives,
// c must be marked at the end of the cycle for EVERY interleaving point.
func TestSection42Race(t *testing.T) {
	for mutateAt := 0; mutateAt < 12; mutateAt++ {
		for seed := int64(0); seed < 8; seed++ {
			r := newRig(t, 2, seed, true)
			a := r.vertex(graph.KindApply)
			b := r.vertex(graph.KindApply)
			c := r.vertex(graph.KindApply)
			r.edge(a, b, graph.ReqVital)
			r.edge(b, c, graph.ReqVital)

			r.marker.StartCycle(graph.CtxR, []Root{{ID: a.ID, Prior: graph.PriorVital}})

			mutated := false
			steps := 0
			for !r.marker.Done(graph.CtxR) {
				if steps == mutateAt && !mutated {
					r.mut.AddReference(a, b, c, graph.ReqVital)
					r.mut.DeleteReference(b, c)
					mutated = true
					r.assertNoViolations(graph.CtxR)
				}
				if !r.mach.Step() {
					break
				}
				steps++
				r.assertNoViolations(graph.CtxR)
			}
			if !mutated {
				// Marking finished before the mutation point; mutate after
				// completion (marking inactive: plain connectivity change).
				r.mut.AddReference(a, b, c, graph.ReqVital)
				r.mut.DeleteReference(b, c)
				continue
			}
			if !r.marker.Done(graph.CtxR) {
				t.Fatalf("mutateAt=%d seed=%d: marking did not terminate", mutateAt, seed)
			}
			if st := r.stateOf(c, graph.CtxR); st != graph.Marked {
				t.Fatalf("mutateAt=%d seed=%d: c lost by marking (state %v)", mutateAt, seed, st)
			}
			if n := r.marker.UnderflowCount(graph.CtxR); n != 0 {
				t.Fatalf("mutateAt=%d seed=%d: mt-cnt underflows %d", mutateAt, seed, n)
			}
		}
	}
}

func TestAddReferenceOutsideMarking(t *testing.T) {
	r := newRig(t, 1, 1, false)
	a := r.vertex(graph.KindApply)
	b := r.vertex(graph.KindApply)
	c := r.vertex(graph.KindInt)
	r.edge(a, b, graph.ReqVital)
	r.edge(b, c, graph.ReqVital)

	r.mut.AddReference(a, b, c, graph.ReqEager)
	a.Lock()
	if !a.HasArg(c.ID) || a.ReqKindOf(c.ID) != graph.ReqEager {
		t.Fatalf("edge a→c missing or wrong kind: %v/%v", a.Args, a.ReqKinds)
	}
	a.Unlock()
	if got := r.counters.CoopMarks.Load(); got != 0 {
		t.Fatalf("cooperation marks outside marking = %d, want 0", got)
	}
}

func TestDeleteReference(t *testing.T) {
	r := newRig(t, 1, 1, false)
	a := r.vertex(graph.KindApply)
	b := r.vertex(graph.KindInt)
	r.edge(a, b, graph.ReqVital)
	rk, ok := r.mut.DeleteReference(a, b)
	if !ok || rk != graph.ReqVital {
		t.Fatalf("DeleteReference = (%v,%v)", rk, ok)
	}
	if _, ok := r.mut.DeleteReference(a, b); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestExpandNodeUnderTransient(t *testing.T) {
	// Splice fresh vertices below a while a is transient: marks must be
	// spawned on a's new children and everything must end marked.
	for mutateAt := 0; mutateAt < 8; mutateAt++ {
		r := newRig(t, 2, int64(mutateAt), false)
		root := r.vertex(graph.KindApply)
		a := r.vertex(graph.KindApply)
		x := r.vertex(graph.KindInt) // existing descendant referenced by fresh node
		r.edge(root, a, graph.ReqVital)
		r.edge(a, x, graph.ReqVital)

		r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})

		var n1, n2 *graph.Vertex
		steps := 0
		done := false
		for !r.marker.Done(graph.CtxR) {
			if steps == mutateAt && n1 == nil {
				var err error
				n1, err = r.mut.Alloc(0, graph.KindApply, 0)
				if err != nil {
					t.Fatal(err)
				}
				n2, err = r.mut.Alloc(0, graph.KindInt, 7)
				if err != nil {
					t.Fatal(err)
				}
				// n1 references the fresh n2 and the existing descendant x.
				r.mut.ExpandNode(a, []*graph.Vertex{n1, n2}, func() {
					n1.AddArg(n2.ID, graph.ReqVital)
					n1.AddArg(x.ID, graph.ReqVital)
					a.Args = a.Args[:0]
					a.ReqKinds = a.ReqKinds[:0]
					a.AddArg(n1.ID, graph.ReqVital)
				})
				r.assertNoViolations(graph.CtxR)
			}
			if !r.mach.Step() {
				done = true
				break
			}
			steps++
			r.assertNoViolations(graph.CtxR)
		}
		_ = done
		if n1 == nil {
			continue // marking finished before splice point
		}
		if !r.marker.Done(graph.CtxR) {
			t.Fatalf("mutateAt=%d: marking did not terminate", mutateAt)
		}
		r.assertMarked(graph.CtxR, root, a, n1, n2, x)
	}
}

func TestExpandNodeUnderMarkedParent(t *testing.T) {
	// If a is already marked when the splice happens, the fresh subgraph is
	// marked synchronously ("if marked(a) then mark(g)").
	r := newRig(t, 1, 3, false)
	root := r.vertex(graph.KindApply)
	a := r.vertex(graph.KindApply)
	r.edge(root, a, graph.ReqVital)

	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})

	// Marking is done (inactive) — simulate the mid-cycle case by starting
	// a new cycle, finishing it, then... instead directly test the helper:
	// start a cycle over a 1-vertex graph so a is marked while active.
	big := r.vertex(graph.KindApply) // keeps the cycle alive: unreachable chain
	chain := a
	for i := 0; i < 6; i++ {
		nxt := r.vertex(graph.KindApply)
		r.edge(chain, nxt, graph.ReqVital)
		chain = nxt
	}
	_ = big

	r.marker.StartCycle(graph.CtxR, []Root{{ID: root.ID, Prior: graph.PriorVital}})
	// Pump until a is marked but the cycle is still active.
	for r.stateOf(a, graph.CtxR) != graph.Marked && r.mach.Step() {
	}
	if !r.marker.Active(graph.CtxR) && r.stateOf(a, graph.CtxR) != graph.Marked {
		t.Skip("could not catch a marked while cycle active")
	}
	if r.stateOf(a, graph.CtxR) == graph.Marked && r.marker.Active(graph.CtxR) {
		n1, err := r.mut.Alloc(0, graph.KindInt, 1)
		if err != nil {
			t.Fatal(err)
		}
		r.mut.ExpandNode(a, []*graph.Vertex{n1}, func() {
			a.AddArg(n1.ID, graph.ReqVital)
		})
		if st := r.stateOf(n1, graph.CtxR); st != graph.Marked {
			t.Fatalf("fresh vertex under marked parent: state %v, want marked", st)
		}
	}
	r.mach.RunUntil(func() bool { return r.marker.Done(graph.CtxR) }, 100000)
	r.assertNoViolations(graph.CtxR)
}

func TestRegisterAndCompleteRequest(t *testing.T) {
	r := newRig(t, 1, 1, false)
	x := r.vertex(graph.KindApply)
	y := r.vertex(graph.KindApply)
	r.edge(x, y, graph.ReqNone)

	if !r.mut.RegisterRequest(x, y, graph.ReqVital) {
		t.Fatal("RegisterRequest failed")
	}
	x.Lock()
	if x.ReqKindOf(y.ID) != graph.ReqVital {
		t.Fatal("edge not vital after register")
	}
	x.Unlock()
	y.Lock()
	if !y.HasRequester(x.ID) {
		t.Fatal("x not in requested(y)")
	}
	y.Unlock()

	r.mut.CompleteRequest(x, y)
	x.Lock()
	if x.ReqKindOf(y.ID) != graph.ReqNone {
		t.Fatal("edge not returned to remainder after completion")
	}
	x.Unlock()
	y.Lock()
	if y.HasRequester(x.ID) {
		t.Fatal("x still in requested(y) after completion")
	}
	y.Unlock()

	// Registering on a missing edge fails.
	z := r.vertex(graph.KindInt)
	if r.mut.RegisterRequest(x, z, graph.ReqVital) {
		t.Fatal("RegisterRequest on absent edge succeeded")
	}
}

func TestRegisterRequestCooperatesWithMT(t *testing.T) {
	// While M_T is marking, a new requester x of an already-T-marked y must
	// still end up T-marked (via the extra-root path), so it cannot be
	// falsely reported deadlocked.
	for mutateAt := 0; mutateAt < 8; mutateAt++ {
		r := newRig(t, 2, int64(mutateAt)+100, false)
		start := r.vertex(graph.KindApply)
		y := r.vertex(graph.KindApply)
		extra := r.vertex(graph.KindApply) // extends the cycle's runtime
		r.edge(start, y, graph.ReqNone)
		r.edge(y, extra, graph.ReqNone)
		chain := extra
		for i := 0; i < 5; i++ {
			nxt := r.vertex(graph.KindApply)
			r.edge(chain, nxt, graph.ReqNone)
			chain = nxt
		}
		x := r.vertex(graph.KindApply)
		r.edge(x, y, graph.ReqNone)

		r.marker.StartCycle(graph.CtxT, []Root{{ID: start.ID}})
		steps := 0
		mutated := false
		for !r.marker.Done(graph.CtxT) {
			if steps == mutateAt && !mutated {
				r.mut.RegisterRequest(x, y, graph.ReqVital)
				mutated = true
			}
			if !r.mach.Step() {
				break
			}
			steps++
		}
		if !mutated {
			continue
		}
		if !r.marker.Done(graph.CtxT) {
			t.Fatalf("mutateAt=%d: M_T did not terminate", mutateAt)
		}
		if st := r.stateOf(x, graph.CtxT); st != graph.Marked {
			t.Fatalf("mutateAt=%d: requester x not T-marked (state %v)", mutateAt, st)
		}
	}
}

func TestDereference(t *testing.T) {
	r := newRig(t, 1, 1, false)
	x := r.vertex(graph.KindApply)
	y := r.vertex(graph.KindApply)
	r.edge(x, y, graph.ReqEager)
	y.Lock()
	y.AddRequester(x.ID, graph.ReqEager)
	y.Unlock()

	r.mut.Dereference(x, y)
	x.Lock()
	if x.HasArg(y.ID) {
		t.Fatal("edge survived dereference")
	}
	x.Unlock()
	y.Lock()
	if y.HasRequester(x.ID) {
		t.Fatal("requester survived dereference")
	}
	y.Unlock()
}

func TestRelabelLeaf(t *testing.T) {
	r := newRig(t, 1, 1, false)
	v := r.vertex(graph.KindApply)
	c := r.vertex(graph.KindInt)
	r.edge(v, c, graph.ReqVital)
	r.mut.RelabelLeaf(v, graph.KindInt, 42)
	v.Lock()
	defer v.Unlock()
	if v.Kind != graph.KindInt || v.Val != 42 || len(v.Args) != 0 {
		t.Fatalf("after relabel: %+v", v)
	}
}

func TestMutatorAllocStampsEpochs(t *testing.T) {
	r := newRig(t, 1, 1, false)
	root := r.vertex(graph.KindApply)
	r.runCycle(graph.CtxR, Root{ID: root.ID, Prior: graph.PriorVital})
	r.runCycle(graph.CtxT, Root{ID: root.ID})

	// A freshly claimed vertex carries the FreshAllocEpoch sentinel — it is
	// sweep-immune during allocation limbo, before any splice wires it in.
	v, err := r.mut.Alloc(0, graph.KindInt, 1)
	if err != nil {
		t.Fatal(err)
	}
	v.Lock()
	if v.Red.AllocEpoch != graph.FreshAllocEpoch {
		t.Fatalf("AllocEpoch = %d, want FreshAllocEpoch", v.Red.AllocEpoch)
	}
	if v.Red.AllocEpochT != graph.FreshAllocEpoch {
		t.Fatalf("AllocEpochT = %d, want FreshAllocEpoch", v.Red.AllocEpochT)
	}
	v.Unlock()

	// The splice stamps the real epochs at wiring time.
	r.mut.ExpandNode(root, []*graph.Vertex{v}, func() {
		root.AddArg(v.ID, graph.ReqNone)
	})
	v.Lock()
	defer v.Unlock()
	if v.Red.AllocEpoch != r.marker.Epoch(graph.CtxR) {
		t.Fatalf("AllocEpoch = %d, want %d", v.Red.AllocEpoch, r.marker.Epoch(graph.CtxR))
	}
	if v.Red.AllocEpochT != r.marker.Epoch(graph.CtxT) {
		t.Fatalf("AllocEpochT = %d, want %d", v.Red.AllocEpochT, r.marker.Epoch(graph.CtxT))
	}
}
