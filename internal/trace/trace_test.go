package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"dgr/internal/graph"
)

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record("step", graph.VertexID(i), graph.VertexID(i+1), "")
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if evs[0].Seq != 2 || evs[2].Seq != 4 {
		t.Fatalf("wrong window: %v", evs)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
}

func TestTracerEventString(t *testing.T) {
	e := Event{Seq: 1, Kind: "mark", Src: 2, Dst: 3, Note: "x"}
	if got := e.String(); got != "#1 mark <2,3> x" {
		t.Fatalf("String = %q", got)
	}
	e2 := Event{Seq: 2, Kind: "mark", Src: 2, Dst: 3}
	if got := e2.String(); got != "#2 mark <2,3>" {
		t.Fatalf("String = %q", got)
	}
}

func TestWriteDOT(t *testing.T) {
	s := graph.NewStore(graph.Config{Partitions: 1, Capacity: 8})
	b := graph.NewBuilder(s, 0)
	one := b.Int(1)
	app := b.App(b.Prim(graph.PrimNeg), one)
	app.Lock()
	app.SetReqKind(one.ID, graph.ReqVital)
	app.Unlock()
	one.Lock()
	one.AddRequester(app.ID, graph.ReqVital)
	one.Unlock()

	var sb strings.Builder
	err := WriteDOT(&sb, s.Snapshot(), app.ID, DOTOptions{
		Highlight: map[graph.VertexID]string{one.ID: "red"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph computation",
		"doublecircle",      // the root
		"fillcolor=\"red\"", // highlight
		"style=dotted",      // requester arc
		"*v",                // vital edge label
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Free vertices hidden by default.
	if strings.Contains(out, "free") {
		t.Error("free vertices should be hidden")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record("fab.flush", 0, 1, "seq=1 n=3")
	tr.Record("fab.deliver", 0, 1, "")
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), sb.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "fab.flush" || e.Src != 0 || e.Dst != 1 || e.Note != "seq=1 n=3" {
		t.Fatalf("round-trip = %+v", e)
	}
	// The note field is omitted entirely when empty.
	if strings.Contains(lines[1], "note") {
		t.Fatalf("empty note not omitted: %s", lines[1])
	}
}
