package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"dgr/internal/graph"
)

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record("step", graph.VertexID(i), graph.VertexID(i+1), "")
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if evs[0].Seq != 2 || evs[2].Seq != 4 {
		t.Fatalf("wrong window: %v", evs)
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
}

func TestTracerDropped(t *testing.T) {
	tr := NewTracer(3)
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped on fresh tracer = %d, want 0", tr.Dropped())
	}
	for i := 0; i < 3; i++ {
		tr.Record("step", 0, 0, "")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped at exactly capacity = %d, want 0", tr.Dropped())
	}
	for i := 0; i < 4; i++ {
		tr.Record("step", 0, 0, "")
	}
	if tr.Dropped() != 4 {
		t.Fatalf("Dropped after wraparound = %d, want 4", tr.Dropped())
	}
	// Dropped + retained always equals Len.
	if got := tr.Dropped() + uint64(len(tr.Events())); got != tr.Len() {
		t.Fatalf("dropped+retained = %d, Len = %d", got, tr.Len())
	}
}

func TestTracerTimestamps(t *testing.T) {
	tr := NewTracer(4)
	tr.Record("a", 1, 2, "")
	tr.Record("b", 2, 3, "")
	evs := tr.Events()
	if evs[0].TS == 0 || evs[1].TS == 0 {
		t.Fatalf("events missing wall-clock stamps: %+v", evs)
	}
	if evs[1].TS < evs[0].TS {
		t.Fatalf("timestamps went backwards: %d then %d", evs[0].TS, evs[1].TS)
	}
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal([]byte(strings.SplitN(sb.String(), "\n", 2)[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.TS != evs[0].TS {
		t.Fatalf("JSONL ts = %d, want %d", e.TS, evs[0].TS)
	}
}

func TestTracerEventString(t *testing.T) {
	e := Event{Seq: 1, Kind: "mark", Src: 2, Dst: 3, Note: "x"}
	if got := e.String(); got != "#1 mark <2,3> x" {
		t.Fatalf("String = %q", got)
	}
	e2 := Event{Seq: 2, Kind: "mark", Src: 2, Dst: 3}
	if got := e2.String(); got != "#2 mark <2,3>" {
		t.Fatalf("String = %q", got)
	}
}

func TestWriteDOT(t *testing.T) {
	s := graph.NewStore(graph.Config{Partitions: 1, Capacity: 8})
	b := graph.NewBuilder(s, 0)
	one := b.Int(1)
	app := b.App(b.Prim(graph.PrimNeg), one)
	app.Lock()
	app.SetReqKind(one.ID, graph.ReqVital)
	app.Unlock()
	one.Lock()
	one.AddRequester(app.ID, graph.ReqVital)
	one.Unlock()

	var sb strings.Builder
	err := WriteDOT(&sb, s.Snapshot(), app.ID, DOTOptions{
		Highlight: map[graph.VertexID]string{one.ID: "red"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph computation",
		"doublecircle",      // the root
		"fillcolor=\"red\"", // highlight
		"style=dotted",      // requester arc
		"*v",                // vital edge label
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Free vertices hidden by default.
	if strings.Contains(out, "free") {
		t.Error("free vertices should be hidden")
	}
}

// TestWriteDOTGolden pins the exact DOT rendering of a small fixed graph:
// any drift in node attributes, edge styles, or emission order shows up as
// a diff here rather than as silently garbled graph dumps.
func TestWriteDOTGolden(t *testing.T) {
	s := graph.NewStore(graph.Config{Partitions: 1, Capacity: 8})
	b := graph.NewBuilder(s, 0)
	one := b.Int(1)
	two := b.Int(2)
	app := b.App(b.App(b.Prim(graph.PrimAdd), one), two)
	app.Lock()
	app.SetReqKind(two.ID, graph.ReqVital)
	app.Unlock()
	two.Lock()
	two.AddRequester(app.ID, graph.ReqVital)
	two.Unlock()

	var sb strings.Builder
	if err := WriteDOT(&sb, s.Snapshot(), app.ID, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	const golden = `digraph computation {
  rankdir=TB;
  node [shape=circle fontsize=10];
  v4 [label="@" penwidth=2 shape=doublecircle];
  v5 [label="@"];
  v6 [label="+"];
  v7 [label="2"];
  v8 [label="1"];
  v4 -> v5;
  v4 -> v7 [label="*v" penwidth=2];
  v5 -> v6;
  v5 -> v8;
  v4 -> v7 [style=dotted constraint=false];
}
`
	if got := sb.String(); got != golden {
		t.Fatalf("DOT output drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record("fab.flush", 0, 1, "seq=1 n=3")
	tr.Record("fab.deliver", 0, 1, "")
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), sb.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "fab.flush" || e.Src != 0 || e.Dst != 1 || e.Note != "seq=1 n=3" {
		t.Fatalf("round-trip = %+v", e)
	}
	// The note field is omitted entirely when empty.
	if strings.Contains(lines[1], "note") {
		t.Fatalf("empty note not omitted: %s", lines[1])
	}
}
