// Package trace provides a bounded event log and Graphviz (DOT) export of
// computation-graph snapshots, used by the dgr-trace tool and for
// debugging distributed runs.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"dgr/internal/graph"
)

// Event is one recorded occurrence.
type Event struct {
	Seq  uint64         `json:"seq"`
	TS   int64          `json:"ts,omitempty"` // wall-clock UnixNano at Record time
	Kind string         `json:"kind"`
	Src  graph.VertexID `json:"src"`
	Dst  graph.VertexID `json:"dst"`
	Note string         `json:"note,omitempty"`
}

// String renders the event.
func (e Event) String() string {
	if e.Note != "" {
		return fmt.Sprintf("#%d %s <%d,%d> %s", e.Seq, e.Kind, e.Src, e.Dst, e.Note)
	}
	return fmt.Sprintf("#%d %s <%d,%d>", e.Seq, e.Kind, e.Src, e.Dst)
}

// Tracer is a fixed-capacity ring buffer of events, safe for concurrent
// use. The zero value is unusable; use NewTracer.
type Tracer struct {
	mu   sync.Mutex
	ring []Event
	next uint64
}

// NewTracer builds a tracer retaining the last cap events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Record appends an event, stamping it with the current wall-clock time so
// exported timelines correlate with external logs.
func (t *Tracer) Record(kind string, src, dst graph.VertexID, note string) {
	now := time.Now().UnixNano()
	t.mu.Lock()
	t.ring[t.next%uint64(len(t.ring))] = Event{
		Seq: t.next, TS: now, Kind: kind, Src: src, Dst: dst, Note: note,
	}
	t.next++
	t.mu.Unlock()
}

// Events returns the retained events in order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	start := uint64(0)
	if t.next > n {
		start = t.next - n
	}
	out := make([]Event, 0, t.next-start)
	for i := start; i < t.next; i++ {
		out = append(out, t.ring[i%n])
	}
	return out
}

// WriteJSONL writes the retained events as JSON Lines — one event object
// per line, in sequence order — so message timelines (e.g. the fabric's
// fab.* events) are machine-readable.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the total number of events ever recorded.
func (t *Tracer) Len() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events have been overwritten by ring wraparound —
// the count no longer retrievable via Events. Lets consumers report "showing
// last N of M" honestly.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := uint64(len(t.ring)); t.next > n {
		return t.next - n
	}
	return 0
}

// DOTOptions controls snapshot rendering.
type DOTOptions struct {
	// Highlight colors specific vertices (e.g. deadlocked ones).
	Highlight map[graph.VertexID]string
	// ShowFree includes free-list vertices.
	ShowFree bool
	// Label overrides vertex labels.
	Label func(sv *graph.SnapVertex) string
}

// WriteDOT renders a graph snapshot as Graphviz DOT. Solid arcs are args
// edges (bold for vital, dashed-weight for eager); dotted arcs are
// requested(v) entries, drawn from the requester as in the paper's
// figures.
func WriteDOT(w io.Writer, snap *graph.Snapshot, root graph.VertexID, opts DOTOptions) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("digraph computation {\n  rankdir=TB;\n  node [shape=circle fontsize=10];\n")

	ids := make([]int, 0, snap.Len())
	for i := 1; i <= snap.Len(); i++ {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	for _, i := range ids {
		sv := snap.Vertex(graph.VertexID(i))
		if sv == nil {
			continue
		}
		if sv.Kind == graph.KindFree && !opts.ShowFree {
			continue
		}
		label := defaultLabel(sv)
		if opts.Label != nil {
			label = opts.Label(sv)
		}
		attrs := fmt.Sprintf("label=%q", label)
		if sv.ID == root {
			attrs += " penwidth=2 shape=doublecircle"
		}
		if color, ok := opts.Highlight[sv.ID]; ok {
			attrs += fmt.Sprintf(" style=filled fillcolor=%q", color)
		}
		p("  v%d [%s];\n", sv.ID, attrs)
	}
	for _, i := range ids {
		sv := snap.Vertex(graph.VertexID(i))
		if sv == nil || (sv.Kind == graph.KindFree && !opts.ShowFree) {
			continue
		}
		for j, c := range sv.Args {
			style := ""
			switch sv.ReqKinds[j] {
			case graph.ReqVital:
				style = ` [label="*v" penwidth=2]`
			case graph.ReqEager:
				style = ` [label="*e"]`
			}
			p("  v%d -> v%d%s;\n", sv.ID, c, style)
		}
		for _, r := range sv.Requested {
			p("  v%d -> v%d [style=dotted constraint=false];\n", r.Src, sv.ID)
		}
	}
	p("}\n")
	return err
}

func defaultLabel(sv *graph.SnapVertex) string {
	switch sv.Kind {
	case graph.KindInt:
		return fmt.Sprintf("%d", sv.Val)
	case graph.KindBool:
		if sv.Val != 0 {
			return "true"
		}
		return "false"
	case graph.KindComb:
		return graph.Comb(sv.Val).String()
	case graph.KindSuper:
		return fmt.Sprintf("$%d", sv.Val)
	case graph.KindPrim, graph.KindPrimApp:
		return graph.Prim(sv.Val).String()
	case graph.KindApply:
		return "@"
	case graph.KindInd:
		return "→"
	case graph.KindCons:
		return ":"
	case graph.KindNil:
		return "[]"
	default:
		return sv.Kind.String()
	}
}
