package workload

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ServeOutcome is the per-request summary the serveload harness consumes.
// It lives here rather than in internal/serve so the harness stays
// import-cycle-free (root-package tests import workload; serve imports the
// root package); serve's Server (in-process) and Client (HTTP) both
// produce it from their LoadEval methods.
type ServeOutcome struct {
	// OK: the evaluation completed with a result.
	OK bool `json:"ok"`
	// Rejected: admission control refused the request (structured, never a
	// hang); Code holds the cause.
	Rejected bool   `json:"rejected"`
	Code     string `json:"code,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	Rendered string `json:"rendered,omitempty"`
}

// ServeEvaler is what the serveload harness drives: the in-process
// *serve.Server and the HTTP *serve.Client both satisfy it.
type ServeEvaler interface {
	LoadEval(tenant, program string) (ServeOutcome, error)
}

// ServeLoadConfig shapes one load run: N tenants × M programs, each tenant
// submitting every program Rounds times from Concurrency parallel streams.
type ServeLoadConfig struct {
	// Tenants is the number of concurrent tenants (default 4), named
	// "tenant-0" … "tenant-N-1".
	Tenants int
	// Programs are the source texts each tenant submits; default
	// ServePrograms(8).
	Programs []string
	// Rounds is how many times each tenant evaluates the full program list
	// (default 2 — the second round exercises the warm memo cache).
	Rounds int
	// Concurrency is the number of parallel submission streams per tenant
	// (default 2).
	Concurrency int
}

func (c ServeLoadConfig) withDefaults() ServeLoadConfig {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if len(c.Programs) == 0 {
		c.Programs = ServePrograms(8)
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	return c
}

// ServeTenantRow is one tenant's share of a load report.
type ServeTenantRow struct {
	Tenant    string `json:"tenant"`
	OK        int64  `json:"ok"`
	Failed    int64  `json:"failed"`
	Rejected  int64  `json:"rejected"`
	CacheHits int64  `json:"cache_hits"`
}

// ServeLoadReport summarizes a load run. Latency quantiles are measured
// client-side over successful requests.
type ServeLoadReport struct {
	Tenants     int   `json:"tenants"`
	Programs    int   `json:"programs"`
	Rounds      int   `json:"rounds"`
	Concurrency int   `json:"concurrency"`
	Requests    int64 `json:"requests"`
	OK          int64 `json:"ok"`
	Failed      int64 `json:"failed"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cache_hits"`
	// Mismatches counts reruns whose rendered result was not byte-identical
	// to the first successful evaluation of the same program — the memo
	// cache's correctness criterion. Always 0 on a healthy server.
	Mismatches int64            `json:"mismatches"`
	ElapsedNs  int64            `json:"elapsed_ns"`
	ReqPerSec  float64          `json:"req_per_sec"`
	P50Ns      int64            `json:"p50_ns"`
	P95Ns      int64            `json:"p95_ns"`
	ByTenant   []ServeTenantRow `json:"by_tenant"`
}

// RunServeLoad drives cfg against ev and aggregates the outcome. Transport
// errors abort the run; rejections and evaluation failures are counted.
func RunServeLoad(cfg ServeLoadConfig, ev ServeEvaler) (ServeLoadReport, error) {
	cfg = cfg.withDefaults()
	rep := ServeLoadReport{
		Tenants: cfg.Tenants, Programs: len(cfg.Programs),
		Rounds: cfg.Rounds, Concurrency: cfg.Concurrency,
	}

	var mu sync.Mutex
	var firstErr error
	var latencies []int64
	canonical := make([]string, len(cfg.Programs)) // first rendered result per program
	rows := make([]ServeTenantRow, cfg.Tenants)

	// Each tenant round-robins its program list across Concurrency streams;
	// stream k takes programs k, k+C, k+2C, … each round, so every program
	// is submitted exactly Rounds times per tenant.
	var wg sync.WaitGroup
	start := time.Now()
	for ti := 0; ti < cfg.Tenants; ti++ {
		tenantName := fmt.Sprintf("tenant-%d", ti)
		rows[ti].Tenant = tenantName
		for stream := 0; stream < cfg.Concurrency; stream++ {
			wg.Add(1)
			go func(ti, stream int) {
				defer wg.Done()
				for round := 0; round < cfg.Rounds; round++ {
					for pi := stream; pi < len(cfg.Programs); pi += cfg.Concurrency {
						t0 := time.Now()
						out, err := ev.LoadEval(fmt.Sprintf("tenant-%d", ti), cfg.Programs[pi])
						lat := time.Since(t0)

						mu.Lock()
						rep.Requests++
						switch {
						case err != nil:
							if firstErr == nil {
								firstErr = err
							}
						case out.Rejected:
							rep.Rejected++
							rows[ti].Rejected++
						case !out.OK:
							rep.Failed++
							rows[ti].Failed++
						default:
							rep.OK++
							rows[ti].OK++
							if out.CacheHit {
								rep.CacheHits++
								rows[ti].CacheHits++
							}
							latencies = append(latencies, lat.Nanoseconds())
							if canonical[pi] == "" {
								canonical[pi] = out.Rendered
							} else if canonical[pi] != out.Rendered {
								rep.Mismatches++
							}
						}
						mu.Unlock()
						if err != nil {
							return
						}
					}
				}
			}(ti, stream)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.ElapsedNs = elapsed.Nanoseconds()
	if elapsed > 0 {
		rep.ReqPerSec = float64(rep.Requests) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50Ns = quantileNs(latencies, 0.50)
	rep.P95Ns = quantileNs(latencies, 0.95)
	rep.ByTenant = rows
	return rep, firstErr
}

// quantileNs reads the q-quantile from an ascending sample.
func quantileNs(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ServePrograms generates m distinct, quick-to-reduce programs for serving
// load tests: arithmetic folds with a varying constant so every program
// gets its own digest, plus small corpus classics for variety. All of them
// complete in well under a millisecond per evaluation on one PE.
func ServePrograms(m int) []string {
	base := []string{
		"let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 10",
		"let fac n = if n == 0 then 1 else n * fac (n - 1) in fac 8",
		`let upto a b = if a > b then [] else a : upto (a + 1) b;
		     sum xs = if isnil xs then 0 else head xs + sum (tail xs)
		 in sum (upto 1 12)`,
	}
	out := make([]string, 0, m)
	for i := 0; len(out) < m; i++ {
		if i < len(base) {
			out = append(out, base[i])
			continue
		}
		k := i - len(base)
		out = append(out, fmt.Sprintf(
			"let go n acc = if n == 0 then acc else go (n - 1) (acc + n * %d) in go 16 %d",
			k+2, k))
	}
	return out
}
