// Package workload provides the executable scenarios of the paper's
// figures, generators for randomized mutating graphs, and the benchmark
// program corpus.
package workload

import (
	"fmt"
	"math/rand"

	"dgr/internal/analysis"
	"dgr/internal/graph"
	"dgr/internal/task"
)

// Scenario is a hand-built graph state with in-flight tasks, matching one
// of the paper's worked figures.
type Scenario struct {
	Store *graph.Store
	Root  graph.VertexID
	// Tasks are the unexecuted reduction tasks of the scenario.
	Tasks []task.Task
	// Named gives stable names to the interesting vertices.
	Named map[string]graph.VertexID
	// ExpectClass maps task index → expected classification (Fig 3-2).
	ExpectClass map[int]analysis.Class
	// ExpectDeadlocked lists vertices that must be identified as
	// deadlocked (Fig 3-1).
	ExpectDeadlocked []graph.VertexID
}

// Fig31 builds the deadlocked computation of Figure 3-1: x = x + 1. The
// root vitally awaits x; x vitally awaits its own value; the only task in
// the system keeps an unrelated live region task-reachable.
func Fig31(parts int) *Scenario {
	s := graph.NewStore(graph.Config{Partitions: parts, Capacity: 16})
	b := graph.NewBuilder(s, 0)

	root := b.Hole() // the overall computation root
	x := b.Hole()    // the x = x+1 knot
	plus := b.Prim(graph.PrimAdd)
	one := b.Int(1)

	// x is a flattened (+ x 1) whose first operand is x itself, vitally
	// requested — exactly the figure: x ∈ args(x), marked requested.
	x.Lock()
	x.Kind = graph.KindPrimApp
	x.Val = int64(graph.PrimAdd)
	x.AddArg(x.ID, graph.ReqVital)
	x.AddArg(one.ID, graph.ReqNone)
	x.AddRequester(x.ID, graph.ReqVital)
	x.Unlock()
	_ = plus

	// root vitally depends on x and has requested it.
	root.Lock()
	root.Kind = graph.KindApply
	root.AddArg(x.ID, graph.ReqVital)
	root.Unlock()
	x.Lock()
	x.AddRequester(root.ID, graph.ReqVital)
	x.Unlock()

	// A live region with one queued task, so T is nonempty.
	live := b.App(b.Prim(graph.PrimNeg), b.Int(5))
	root.Lock()
	root.AddArg(live.ID, graph.ReqNone)
	root.Unlock()

	tasks := []task.Task{
		{Kind: task.Demand, Src: graph.NilVertex, Dst: root.ID, Req: graph.ReqVital},
		{Kind: task.Demand, Src: root.ID, Dst: live.ID, Req: graph.ReqVital},
	}
	return &Scenario{
		Store: s,
		Root:  root.ID,
		Tasks: tasks,
		Named: map[string]graph.VertexID{
			"root": root.ID, "x": x.ID, "live": live.ID,
		},
		ExpectDeadlocked: []graph.VertexID{x.ID},
	}
}

// Fig32 builds the task-type scenario of Figure 3-2 — the evaluation of
// "if p then d else c, where p = if true then (a+1) else (a+b+c)" — at the
// instant after the lower if has resolved its predicate and dereferenced
// its eagerly requested else branch. Four tasks exhibit the four types:
//
//	vital      <t1, a>: a is on the vital path (root →v p →v t1 →v a)
//	eager      <root, d>: d was eagerly requested by the top if
//	reserve    <t2, c>: t2 was dereferenced, but c is still reachable
//	           through the top if's unrequested else arc (R_r)
//	irrelevant <t2, b>: b is reachable only from the dereferenced t2 (GAR)
func Fig32(parts int) *Scenario {
	s := graph.NewStore(graph.Config{Partitions: parts, Capacity: 32})
	b := graph.NewBuilder(s, 0)

	a := b.Hole()  // shared leaf computation
	bb := b.Hole() // only in the dropped branch
	c := b.Hole()  // dropped branch AND top-level else
	d := b.Hole()  // top-level then, eagerly requested
	for _, h := range []*graph.Vertex{a, bb, c, d} {
		h.Lock()
		h.Kind = graph.KindApply
		h.Unlock()
	}
	one := b.Int(1)

	// t1 = (a + 1), vitally awaiting a.
	t1 := b.Hole()
	t1.Lock()
	t1.Kind = graph.KindPrimApp
	t1.Val = int64(graph.PrimAdd)
	t1.AddArg(a.ID, graph.ReqVital)
	t1.AddArg(one.ID, graph.ReqNone)
	t1.Unlock()
	a.Lock()
	a.AddRequester(t1.ID, graph.ReqVital)
	a.Unlock()

	// t2 = (a + b + c): already dereferenced from p, but its own edges
	// (eager requests it issued) are still live.
	t2 := b.Hole()
	t2.Lock()
	t2.Kind = graph.KindPrimApp
	t2.Val = int64(graph.PrimAdd)
	t2.AddArg(a.ID, graph.ReqNone)
	t2.AddArg(bb.ID, graph.ReqEager)
	t2.AddArg(c.ID, graph.ReqEager)
	t2.Unlock()
	bb.Lock()
	bb.AddRequester(t2.ID, graph.ReqEager)
	bb.Unlock()
	c.Lock()
	c.AddRequester(t2.ID, graph.ReqEager)
	c.Unlock()

	// p: the lower if, collapsed to an indirection to t1 after its
	// predicate resolved true; it vitally awaits t1.
	p := b.Hole()
	p.Lock()
	p.Kind = graph.KindInd
	p.AddArg(t1.ID, graph.ReqVital)
	p.Unlock()
	t1.Lock()
	t1.AddRequester(p.ID, graph.ReqVital)
	t1.Unlock()

	// root: the top if — vitally awaiting p, having eagerly requested d;
	// c is its unrequested else arc.
	root := b.Hole()
	root.Lock()
	root.Kind = graph.KindPrimApp
	root.Val = int64(graph.PrimIf)
	root.AddArg(p.ID, graph.ReqVital)
	root.AddArg(d.ID, graph.ReqEager)
	root.AddArg(c.ID, graph.ReqNone)
	root.Unlock()
	p.Lock()
	p.AddRequester(root.ID, graph.ReqVital)
	p.Unlock()
	d.Lock()
	d.AddRequester(root.ID, graph.ReqEager)
	d.Unlock()

	if err := b.Err(); err != nil {
		panic(fmt.Sprintf("workload: fig32 allocation: %v", err))
	}

	tasks := []task.Task{
		{Kind: task.Demand, Src: t1.ID, Dst: a.ID, Req: graph.ReqVital},   // vital
		{Kind: task.Demand, Src: root.ID, Dst: d.ID, Req: graph.ReqEager}, // eager
		{Kind: task.Demand, Src: t2.ID, Dst: c.ID, Req: graph.ReqEager},   // reserve
		{Kind: task.Demand, Src: t2.ID, Dst: bb.ID, Req: graph.ReqEager},  // irrelevant
	}
	return &Scenario{
		Store: s,
		Root:  root.ID,
		Tasks: tasks,
		Named: map[string]graph.VertexID{
			"root": root.ID, "p": p.ID, "t1": t1.ID, "t2": t2.ID,
			"a": a.ID, "b": bb.ID, "c": c.ID, "d": d.ID,
		},
		ExpectClass: map[int]analysis.Class{
			0: analysis.ClassVital,
			1: analysis.ClassEager,
			2: analysis.ClassReserve,
			3: analysis.ClassIrrelevant,
		},
	}
}

// RandomGraph wires n fresh vertices (allocated from store) into a random
// graph rooted at the returned vertex, with the given edge factor and a
// mix of request kinds.
func RandomGraph(rng *rand.Rand, store *graph.Store, n int, edgeFactor float64) (graph.VertexID, []*graph.Vertex, error) {
	vs := make([]*graph.Vertex, n)
	for i := range vs {
		v, err := store.Alloc(i%store.Partitions(), graph.KindApply, 0)
		if err != nil {
			return graph.NilVertex, nil, err
		}
		vs[i] = v
	}
	edges := int(float64(n) * edgeFactor)
	for i := 0; i < edges; i++ {
		a := vs[rng.Intn(n)]
		b := vs[rng.Intn(n)]
		a.Lock()
		a.AddArg(b.ID, graph.ReqKind(rng.Intn(3)))
		a.Unlock()
	}
	// Make a decent fraction reachable: chain the root into random picks.
	root := vs[0]
	for i := 0; i < n/4; i++ {
		b := vs[rng.Intn(n)]
		root.Lock()
		root.AddArg(b.ID, graph.ReqVital)
		root.Unlock()
	}
	return root.ID, vs, nil
}

// Programs is the benchmark corpus: named source programs with their
// expected integer results.
var Programs = map[string]struct {
	Src  string
	Want int64
}{
	"fib": {
		Src:  "let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 16",
		Want: 987,
	},
	"fac": {
		Src:  "let fac n = if n == 0 then 1 else n * fac (n - 1) in fac 12",
		Want: 479001600,
	},
	"sumsquares": {
		Src: `let map f xs = if isnil xs then [] else f (head xs) : map f (tail xs);
		          upto a b = if a > b then [] else a : upto (a + 1) b;
		          sum xs = if isnil xs then 0 else head xs + sum (tail xs)
		      in sum (map (\x. x * x) (upto 1 20))`,
		Want: 2870,
	},
	"primes": {
		Src: `let upfrom n = n : upfrom (n + 1);
		          take n xs = if n == 0 then [] else head xs : take (n - 1) (tail xs);
		          filter p xs = if isnil xs then []
		                        else if p (head xs) then head xs : filter p (tail xs)
		                        else filter p (tail xs);
		          sieve xs = head xs : sieve (filter (\x. x % head xs /= 0) (tail xs));
		          sum xs = if isnil xs then 0 else head xs + sum (tail xs)
		      in sum (take 10 (sieve (upfrom 2)))`,
		Want: 129, // 2+3+5+7+11+13+17+19+23+29
	},
	"tak": {
		Src: `let tak x y z = if y >= x then z
		                      else tak (tak (x-1) y z) (tak (y-1) z x) (tak (z-1) x y)
		      in tak 12 8 4`,
		Want: 5,
	},
	"parfib": {
		Src:  "let fib n = if n < 2 then n else par (fib (n-1)) (fib (n-2)) + fib (n-1) in fib 10",
		Want: 55,
	},
	"churn": {
		// Builds and discards list structure continuously: a GC stressor.
		Src: `let upto a b = if a > b then [] else a : upto (a + 1) b;
		          len xs = if isnil xs then 0 else 1 + len (tail xs);
		          go n acc = if n == 0 then acc else go (n - 1) (acc + len (upto 1 30))
		      in go 40 0`,
		Want: 1200,
	},
}
