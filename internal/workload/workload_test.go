package workload

import (
	"math/rand"
	"testing"

	"dgr/internal/analysis"
	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/lang"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/task"
)

// runScenario queues the scenario's tasks (parked) and runs one collector
// cycle with M_T, returning the cycle report.
func runScenario(t *testing.T, sc *Scenario) (core.CycleReport, *metrics.Counters) {
	t.Helper()
	counters := &metrics.Counters{}
	mach := sched.New(sched.Config{
		PEs: sc.Store.Partitions(), Mode: sched.Deterministic, Seed: 1,
		PartOf: sc.Store.PartitionOf, Counters: counters,
	})
	marker := core.NewMarker(sc.Store, mach, counters)
	mach.SetHandler(core.NewDispatcher(marker, sched.HandlerFunc(func(tk task.Task) {
		if tk.Kind == task.Demand {
			mach.Spawn(tk) // park reduction tasks
		}
	})))
	for _, tk := range sc.Tasks {
		mach.Spawn(tk)
	}
	col := core.NewCollector(sc.Store, marker, mach, counters, core.CollectorConfig{
		Root:    sc.Root,
		MTEvery: 1,
	})
	return col.RunCycle(), counters
}

func TestFig31OracleAndCollector(t *testing.T) {
	sc := Fig31(2)

	// Oracle: x is deadlocked, root and live are not.
	res := analysis.Analyze(sc.Store.Snapshot(), sc.Root, sc.Tasks)
	x := sc.Named["x"]
	if !res.DLv[x] {
		t.Fatal("oracle: x not deadlocked")
	}
	if res.DLv[sc.Named["live"]] || res.DLv[sc.Root] {
		t.Fatalf("oracle: false deadlocks %v", res.DLv)
	}
	if err := res.CheckVenn(sc.Store.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// Concurrent collector agrees.
	rep, _ := runScenario(t, sc)
	if !rep.MTRan || !rep.Completed {
		t.Fatalf("cycle: %+v", rep)
	}
	found := map[graph.VertexID]bool{}
	for _, id := range rep.Deadlocked {
		found[id] = true
	}
	for _, want := range sc.ExpectDeadlocked {
		if !found[want] {
			t.Fatalf("collector missed deadlocked v%d; got %v", want, rep.Deadlocked)
		}
	}
	if found[sc.Named["live"]] || found[sc.Root] {
		t.Fatalf("collector false deadlocks: %v", rep.Deadlocked)
	}
}

func TestFig32TaskClassification(t *testing.T) {
	sc := Fig32(2)
	res := analysis.Analyze(sc.Store.Snapshot(), sc.Root, sc.Tasks)
	if err := res.CheckVenn(sc.Store.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for i, want := range sc.ExpectClass {
		if got := res.Classify(sc.Tasks[i]); got != want {
			t.Errorf("task %d (%v): classified %v, want %v", i, sc.Tasks[i], got, want)
		}
	}
	// Spot-check the set memberships behind the classes.
	if !res.Rv[sc.Named["a"]] {
		t.Error("a should be in R_v")
	}
	if !res.Re[sc.Named["d"]] {
		t.Error("d should be in R_e")
	}
	if !res.Rr[sc.Named["c"]] {
		t.Error("c should be in R_r")
	}
	if !res.Gar[sc.Named["b"]] || !res.Gar[sc.Named["t2"]] {
		t.Error("b and t2 should be garbage")
	}
}

func TestFig32CollectorMatchesOracle(t *testing.T) {
	// The marker's priorities must classify the same way the oracle does,
	// and restructuring must expunge exactly the irrelevant task.
	sc := Fig32(2)
	rep, _ := runScenario(t, sc)
	if !rep.Completed {
		t.Fatal("cycle incomplete")
	}
	if rep.Expunged != 1 {
		t.Fatalf("expunged = %d, want 1 (the task to b)", rep.Expunged)
	}
	if rep.Reclaimed == 0 {
		t.Fatal("the dereferenced t2/b region should be reclaimed")
	}
	if !sc.Store.IsFree(sc.Named["b"]) || !sc.Store.IsFree(sc.Named["t2"]) {
		t.Fatal("b/t2 not reclaimed")
	}
	if sc.Store.IsFree(sc.Named["c"]) || sc.Store.IsFree(sc.Named["a"]) {
		t.Fatal("live shared vertices reclaimed")
	}
}

func TestFig32MarkerPriorities(t *testing.T) {
	sc := Fig32(2)
	counters := &metrics.Counters{}
	mach := sched.New(sched.Config{
		PEs: 2, Mode: sched.Deterministic, Seed: 3,
		PartOf: sc.Store.PartitionOf, Counters: counters,
	})
	marker := core.NewMarker(sc.Store, mach, counters)
	mach.SetHandler(core.NewDispatcher(marker, nil))
	marker.StartCycle(graph.CtxR, []core.Root{{ID: sc.Root, Prior: graph.PriorVital}})
	mach.RunUntil(func() bool { return marker.Done(graph.CtxR) }, 100000)

	epoch := marker.Epoch(graph.CtxR)
	prior := func(name string) uint8 {
		v := sc.Store.Vertex(sc.Named[name])
		v.Lock()
		defer v.Unlock()
		return v.RCtx.PriorAt(epoch)
	}
	if got := prior("a"); got != graph.PriorVital {
		t.Errorf("prior(a) = %d, want 3", got)
	}
	if got := prior("d"); got != graph.PriorEager {
		t.Errorf("prior(d) = %d, want 2", got)
	}
	if got := prior("c"); got != graph.PriorReserve {
		t.Errorf("prior(c) = %d, want 1", got)
	}
	if got := prior("b"); got != graph.PriorNone {
		t.Errorf("prior(b) = %d, want 0 (unmarked)", got)
	}
}

func TestRandomGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := graph.NewStore(graph.Config{Partitions: 4, Capacity: 64})
	root, vs, err := RandomGraph(rng, store, 50, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 50 || root == graph.NilVertex {
		t.Fatal("generator broken")
	}
	res := analysis.Analyze(store.Snapshot(), root, nil)
	if len(res.R) < 2 {
		t.Fatalf("random graph barely connected: |R| = %d", len(res.R))
	}
}

func TestProgramsCorpusParses(t *testing.T) {
	// Every corpus program must at least compile (full runs are in the
	// benchmark harness and dgr package tests).
	for name, p := range Programs {
		store := graph.NewStore(graph.Config{Partitions: 2, Capacity: 4096})
		if _, err := lang.CompileString(store, p.Src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
