// Package bench runs the machine's hot-path benchmarks outside `go test`
// and renders them as a machine-readable report. cmd/dgr-bench -json uses
// it to emit the JSON consumed by CI (and checked in as BENCH_0.json so
// perf regressions diff against a recorded baseline).
//
// The suite mirrors the root bench_test.go microbenchmarks: end-to-end
// reduction per corpus program on the deterministic 4-PE machine, the
// fib scaling sweep in parallel mode, and a single GC cycle over a live
// heap. Measurement follows the testing package's recipe — ramp the
// iteration count until the timed loop exceeds the target benchtime,
// with ns/op from wall time and allocs/op from runtime.MemStats deltas.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dgr"
	"dgr/internal/serve"
	"dgr/internal/workload"
)

// Result is one benchmark case.
type Result struct {
	// Name identifies the case, e.g. "reduce/fib" or "reduce-pes/fib/pes=8".
	Name string `json:"name"`
	// PEs is the machine width the case ran with.
	PEs int `json:"pes"`
	// Cpus is the GOMAXPROCS value the case ran under (the -cpu sweep runs
	// the suite once per value; rows from different values share a report).
	Cpus int `json:"cpus"`
	// Parallel reports whether the machine ran in parallel (true) or
	// deterministic (false) mode.
	Parallel bool `json:"parallel"`
	// Iterations is the measured loop's final iteration count.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// TasksPerOp is the mean number of tasks the scheduler executed per
	// operation (0 where the case does not run the scheduler).
	TasksPerOp float64 `json:"tasks_per_op,omitempty"`

	// StealCount and IdlePolls are the scheduler's work-stealing counters
	// summed over the measured loop: successful cross-PE steal batches and
	// times a PE found neither local nor stealable work. Parallel-mode
	// cases only.
	StealCount int64 `json:"steal_count,omitempty"`
	IdlePolls  int64 `json:"idle_polls,omitempty"`
	// ExecsPerPE is the per-PE task-execution totals over the measured
	// loop, and ExecBalance the min/max ratio of those totals (1.0 =
	// perfectly balanced, 0 = at least one PE executed nothing). Parallel
	// cases only: deterministic mode picks PEs from a seeded RNG, so
	// balance there measures the RNG, not the scheduler.
	ExecsPerPE  []int64 `json:"execs_per_pe,omitempty"`
	ExecBalance float64 `json:"exec_balance,omitempty"`

	// ReqPerSec, P50Ns, P95Ns and CacheHitRate are filled only by the
	// serve_throughput cases: end-to-end request rate through the serving
	// layer, client-observed latency quantiles, and the fraction of
	// successful requests answered from the memo cache.
	ReqPerSec    float64 `json:"req_per_sec,omitempty"`
	P50Ns        int64   `json:"p50_ns,omitempty"`
	P95Ns        int64   `json:"p95_ns,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}

// Report is the full suite output.
type Report struct {
	// Schema names the report format, for forward compatibility.
	Schema string `json:"schema"`
	// GoVersion, GOOS, GOARCH and NumCPU describe the machine the numbers
	// were measured on; comparisons across different machines are noise.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Quick reports whether the suite ran with shrunken iteration time.
	Quick bool `json:"quick"`
	// UnixTime is the report generation time (seconds since epoch).
	UnixTime int64 `json:"unix_time"`
	// Results holds one entry per case, in suite order.
	Results []Result `json:"results"`
}

const reportSchema = "dgr-bench/v1"

// caseAux accumulates auxiliary machine counters over a measured loop:
// tasks executed, the work-stealing counters, and per-PE execution totals.
type caseAux struct {
	tasks  int64
	steals int64
	idle   int64
	execs  []int64
}

// addMachine folds one finished machine's counters into the totals. Call
// before Close.
func (a *caseAux) addMachine(m *dgr.Machine) {
	st := m.Stats()
	a.tasks += st.TasksExecuted
	a.steals += st.Steals
	a.idle += st.IdlePolls
	for pe, n := range m.ExecsPerPE() {
		if pe >= len(a.execs) {
			a.execs = append(a.execs, make([]int64, pe+1-len(a.execs))...)
		}
		a.execs[pe] += int64(n)
	}
}

// caseFn runs n iterations of a case, folding auxiliary metric totals into
// aux.
type caseFn func(n int, aux *caseAux) error

// measurement is one timed pass.
type measurement struct {
	n       int
	elapsed time.Duration
	allocs  uint64
	bytes   uint64
	aux     caseAux
}

// measure times fn at exactly n iterations.
func measure(n int, fn caseFn) (measurement, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var aux caseAux
	start := time.Now()
	err := fn(n, &aux)
	elapsed := time.Since(start)
	if err != nil {
		return measurement{}, err
	}
	runtime.ReadMemStats(&after)
	return measurement{
		n:       n,
		elapsed: elapsed,
		allocs:  after.Mallocs - before.Mallocs,
		bytes:   after.TotalAlloc - before.TotalAlloc,
		aux:     aux,
	}, nil
}

// run ramps the iteration count until one timed pass meets benchtime,
// mirroring testing.B's launch loop (grow by measured rate ×1.2, capped
// at 100× per step).
func run(bt time.Duration, fn caseFn) (measurement, error) {
	n := 1
	for {
		m, err := measure(n, fn)
		if err != nil {
			return measurement{}, err
		}
		if m.elapsed >= bt || n >= 1e6 {
			return m, nil
		}
		goal := int(float64(n) * (float64(bt)/float64(m.elapsed+1) + 0.2))
		switch {
		case goal <= n:
			goal = n + 1
		case goal > n*100:
			goal = n * 100
		}
		n = goal
	}
}

// benchtime returns the minimum measuring time per case. Quick mode's
// tiny target makes every case run exactly one iteration — a smoke run.
func benchtime(quick bool) time.Duration {
	if quick {
		return time.Nanosecond
	}
	return time.Second
}

// Run executes the suite under the current GOMAXPROCS and returns the
// report. quick shrinks measuring time so CI smoke jobs finish in seconds.
// An error aborts the suite — benchmarks self-validate their program
// results, so an error means the machine computed a wrong answer, not that
// it was slow.
func Run(quick bool) (Report, error) {
	return RunSweep(quick, nil)
}

// RunSweep runs the suite once per GOMAXPROCS value in cpus (dgr-bench's
// -cpu flag), concatenating the rows into one report; each row records the
// value it ran under in its "cpus" field. A nil or empty sweep runs once
// under the ambient GOMAXPROCS. The previous GOMAXPROCS is restored on
// return.
func RunSweep(quick bool, cpus []int) (Report, error) {
	rep := Report{
		Schema:    reportSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
		UnixTime:  time.Now().Unix(),
	}
	if len(cpus) == 0 {
		cpus = []int{runtime.GOMAXPROCS(0)}
	} else {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	}
	for _, c := range cpus {
		if c > 0 {
			runtime.GOMAXPROCS(c)
		}
		results, err := runSuite(quick)
		for i := range results {
			results[i].Cpus = runtime.GOMAXPROCS(0)
		}
		rep.Results = append(rep.Results, results...)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runSuite executes one full pass of the suite under the current
// GOMAXPROCS.
func runSuite(quick bool) ([]Result, error) {
	var results []Result
	bt := benchtime(quick)

	// End-to-end reduction, deterministic machine, 4 PEs.
	for _, name := range []string{"fib", "fac", "sumsquares", "churn"} {
		name := name
		p := workload.Programs[name]
		m, err := run(bt, func(n int, aux *caseAux) error {
			for i := 0; i < n; i++ {
				mach := dgr.New(dgr.Options{PEs: 4, Seed: int64(i), Capacity: 1 << 16})
				v, err := mach.Eval(p.Src)
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				if v.Int != p.Want {
					return fmt.Errorf("%s = %v, want %d", name, v, p.Want)
				}
				aux.addMachine(mach)
				mach.Close()
			}
			return nil
		})
		if err != nil {
			return results, err
		}
		res := toResult("reduce/"+name, 4, false, m)
		res.TasksPerOp = float64(m.aux.tasks) / float64(m.n)
		results = append(results, res)
	}

	// fib across PE counts, parallel mode, both engines. fib is
	// deadlock-free and deterministic, so any failed iteration is a machine
	// bug and aborts the suite — the epoch-confirmed deadlock verdict
	// removed the spurious ErrDeadlock these runs used to retry around.
	// The rows carry the stealing counters and per-PE execution balance, so
	// a sweep shows where the parallel speedup comes from (or where it is
	// lost to idle polling on a core-starved host).
	p := workload.Programs["fib"]
	for _, engine := range []string{dgr.EngineInterp, dgr.EngineCompiled} {
		engine := engine
		prefix := "reduce-pes"
		if engine == dgr.EngineCompiled {
			prefix = "reduce_compiled-pes"
		}
		for _, pes := range []int{1, 2, 4, 8} {
			pes := pes
			m, err := run(bt, func(n int, aux *caseAux) error {
				for i := 0; i < n; i++ {
					mach := dgr.New(dgr.Options{
						PEs: pes, Parallel: true, Engine: engine, Capacity: 1 << 16,
					})
					v, err := mach.Eval(p.Src)
					aux.addMachine(mach)
					mach.Close()
					if err != nil {
						return fmt.Errorf("%s/fib/pes=%d: %w", prefix, pes, err)
					}
					if v.Int != p.Want {
						return fmt.Errorf("%s/fib/pes=%d = %v, want %d", prefix, pes, v, p.Want)
					}
				}
				return nil
			})
			if err != nil {
				return results, err
			}
			res := toResult(fmt.Sprintf("%s/fib/pes=%d", prefix, pes), pes, true, m)
			res.TasksPerOp = float64(m.aux.tasks) / float64(m.n)
			res.StealCount = m.aux.steals
			res.IdlePolls = m.aux.idle
			res.ExecsPerPE = m.aux.execs
			res.ExecBalance = execBalance(m.aux.execs)
			results = append(results, res)
		}
	}

	// Observability overhead: identical fib workloads with the obs layer
	// off, on, on with the lineage sink armed but sampling (almost) nothing
	// — the steady-state serving configuration, where every instrumentation
	// point is a zero test — and on with rate-1.0 tracing (every task
	// stamped, every exec recorded: the debugging worst case), in both
	// machine modes. The obs-off rows repeat the plain configuration so
	// each group is measured back to back under the same conditions; the
	// obs=on and trace=armed rows are expected to stay within ~5% of their
	// partner, while trace=on documents what full-rate tracing costs.
	for _, c := range []overheadConfig{
		{"obs-overhead/fib/det/obs=off", false, false, 0},
		{"obs-overhead/fib/det/obs=on", false, true, 0},
		{"obs-overhead/fib/det/trace=armed", false, true, armedRate},
		{"obs-overhead/fib/det/trace=on", false, true, 1},
		{"obs-overhead/fib/parallel/obs=off", true, false, 0},
		{"obs-overhead/fib/parallel/obs=on", true, true, 0},
		{"obs-overhead/fib/parallel/trace=armed", true, true, armedRate},
		{"obs-overhead/fib/parallel/trace=on", true, true, 1},
	} {
		c := c
		m, err := run(bt, overheadCase(c, p.Src, p.Want))
		if err != nil {
			return results, err
		}
		res := toResult(c.name, 4, c.parallel, m)
		res.TasksPerOp = float64(m.aux.tasks) / float64(m.n)
		results = append(results, res)
	}

	// Compiled-vs-interpreted A/B: the same corpus programs on the same
	// machine configuration, the two engines measured back to back so each
	// pair shares ambient conditions (the same discipline as the
	// obs-overhead pairs). The compiled rows are the acceptance numbers for
	// the supercombinator backend: one compiled body execution replaces a
	// chain of combinator rewrites, so ns/op and tasks/op both drop.
	for _, name := range []string{"fib", "fac", "sumsquares"} {
		name := name
		cp := workload.Programs[name]
		for _, engine := range []string{dgr.EngineInterp, dgr.EngineCompiled} {
			engine := engine
			m, err := run(bt, func(n int, aux *caseAux) error {
				for i := 0; i < n; i++ {
					mach := dgr.New(dgr.Options{
						PEs:      4,
						Seed:     int64(i),
						Engine:   engine,
						Capacity: 1 << 16,
					})
					v, err := mach.Eval(cp.Src)
					if err != nil {
						return fmt.Errorf("reduce_compiled/%s/engine=%s: %w", name, engine, err)
					}
					if v.Int != cp.Want {
						return fmt.Errorf("reduce_compiled/%s/engine=%s = %v, want %d", name, engine, v, cp.Want)
					}
					aux.addMachine(mach)
					mach.Close()
				}
				return nil
			})
			if err != nil {
				return results, err
			}
			res := toResult(fmt.Sprintf("reduce_compiled/%s/engine=%s", name, engine), 4, false, m)
			res.TasksPerOp = float64(m.aux.tasks) / float64(m.n)
			results = append(results, res)
		}
	}

	// Serving-layer throughput: 4 tenants × 2 streams driving the
	// in-process pool. The cold case evaluates every program once; the
	// warm case runs two rounds so the second is answered from the memo
	// cache — its hit rate and latency quantiles land in the report.
	for _, c := range []struct {
		name   string
		rounds int
	}{
		{"serve_throughput/cold", 1},
		{"serve_throughput/warm", 2},
	} {
		res, err := serveCase(c.name, c.rounds, quick)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}

	// One GC cycle over a live heap.
	mach := dgr.New(dgr.Options{PEs: 4, Seed: 1, Capacity: 1 << 16})
	defer mach.Close()
	if _, err := mach.Eval(workload.Programs["sumsquares"].Src); err != nil {
		return results, fmt.Errorf("gc-cycle: populate heap: %w", err)
	}
	m, err := run(bt, func(n int, _ *caseAux) error {
		for i := 0; i < n; i++ {
			if rep := mach.RunGC(); !rep.Completed {
				return fmt.Errorf("gc-cycle: cycle incomplete")
			}
		}
		return nil
	})
	if err != nil {
		return results, err
	}
	results = append(results, toResult("gc-cycle", 4, false, m))

	return results, nil
}

// execBalance is the min/max ratio of per-PE execution totals: 1.0 means
// every PE executed the same number of tasks, 0 means at least one PE sat
// fully idle. A single-PE machine is trivially balanced.
func execBalance(execs []int64) float64 {
	if len(execs) == 0 {
		return 0
	}
	min, max := execs[0], execs[0]
	for _, e := range execs[1:] {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if max == 0 {
		return 0
	}
	return float64(min) / float64(max)
}

// serveCase measures one serving-layer load pass and self-validates it:
// every request must succeed, reruns must be byte-identical, and the warm
// case must see memo-cache hits.
func serveCase(name string, rounds int, quick bool) (Result, error) {
	programs := 8
	if quick {
		programs = 4
	}
	s := serve.New(serve.Options{Workers: 2, PEs: 2, Capacity: 1 << 16})
	defer s.Close()
	rep, err := workload.RunServeLoad(workload.ServeLoadConfig{
		Tenants:     4,
		Programs:    workload.ServePrograms(programs),
		Rounds:      rounds,
		Concurrency: 2,
	}, s)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", name, err)
	}
	switch {
	case rep.OK != rep.Requests:
		return Result{}, fmt.Errorf("%s: %d of %d requests failed or were rejected",
			name, rep.Requests-rep.OK, rep.Requests)
	case rep.Mismatches > 0:
		return Result{}, fmt.Errorf("%s: %d rerun(s) returned non-identical results", name, rep.Mismatches)
	case rounds > 1 && rep.CacheHits == 0:
		return Result{}, fmt.Errorf("%s: warm rounds produced zero memo-cache hits", name)
	}
	res := Result{
		Name:       name,
		PEs:        2,
		Parallel:   false,
		Iterations: int(rep.Requests),
		NsPerOp:    rep.ElapsedNs / rep.Requests,
		ReqPerSec:  rep.ReqPerSec,
		P50Ns:      rep.P50Ns,
		P95Ns:      rep.P95Ns,
	}
	if rep.OK > 0 {
		res.CacheHitRate = float64(rep.CacheHits) / float64(rep.OK)
	}
	return res, nil
}

// toResult converts a measurement into a report row.
func toResult(name string, pes int, parallel bool, m measurement) Result {
	res := Result{
		Name:       name,
		PEs:        pes,
		Parallel:   parallel,
		Iterations: m.n,
	}
	if m.n > 0 {
		res.NsPerOp = m.elapsed.Nanoseconds() / int64(m.n)
		res.AllocsPerOp = int64(m.allocs) / int64(m.n)
		res.BytesPerOp = int64(m.bytes) / int64(m.n)
	}
	return res
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// --- Observability-overhead guard ------------------------------------------

// armedRate arms the lineage sink without (statistically ever) sampling:
// the deterministic accumulator needs ~1e12 decisions before the first
// trace, so every instrumentation point runs its untraced fast path — a
// zero test on the task's trace word — with the sink allocated. This is
// the steady-state serving configuration the ≤5% overhead budget covers.
const armedRate = 1e-12

// overheadConfig is one cell of the obs-overhead A/B family: a machine
// mode crossed with an instrumentation level.
type overheadConfig struct {
	name     string
	parallel bool
	obs      bool
	rate     float64 // lineage sampling rate (0 = no sink at all)
}

// overheadCase builds the measured loop for one cell: a fresh machine per
// iteration, self-validating the program result.
func overheadCase(c overheadConfig, src string, want int64) caseFn {
	return func(n int, aux *caseAux) error {
		for i := 0; i < n; i++ {
			mach := dgr.New(dgr.Options{
				PEs:       4,
				Seed:      int64(i),
				Parallel:  c.parallel,
				Capacity:  1 << 16,
				Obs:       c.obs,
				TraceRate: c.rate,
			})
			v, err := mach.Eval(src)
			aux.addMachine(mach)
			mach.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", c.name, err)
			}
			if v.Int != want {
				return fmt.Errorf("%s = %v, want %d", c.name, v, want)
			}
		}
		return nil
	}
}

// OverheadPair is one A/B verdict from ObsOverhead: the instrumented
// configuration against its uninstrumented partner, best (minimum) ratio
// over the repetitions. Minimum-of-reps is the right statistic here: noise
// on a shared box only ever inflates a ratio, so the smallest observed one
// is the closest to the true overhead.
type OverheadPair struct {
	Name    string  `json:"name"`    // instrumented cell, e.g. ".../trace=armed"
	BaseNs  int64   `json:"base_ns"` // partner obs=off ns/op (from the best rep)
	WithNs  int64   `json:"with_ns"` // instrumented ns/op (same rep)
	Ratio   float64 `json:"ratio"`   // min over reps of with/base
	Samples int     `json:"samples"` // repetitions measured
	// Gated configurations must stay under the overhead budget; ungated
	// ones (rate-1.0 tracing, a debugging mode that records a span per
	// task execution) are reported for the record only.
	Gated bool `json:"gated"`
}

// ObsOverhead measures the instrumentation overhead against the
// uninstrumented machine, interleaved A/B within one process (the same
// discipline as the -json suite's obs-overhead rows, which is what keeps
// the comparison meaningful on a noisy host). The gated cells are obs=on
// and trace=armed — the configurations a production machine actually runs
// — plus an ungated rate-1.0 row documenting full-tracing cost. reps
// repetitions per pair, minimum ratio wins. cmd/dgr-bench -obscheck gates
// CI on the result.
func ObsOverhead(reps int) ([]OverheadPair, error) {
	if reps < 1 {
		reps = 1
	}
	p := workload.Programs["fib"]
	bt := 500 * time.Millisecond
	var pairs []OverheadPair
	for _, mode := range []struct {
		tag      string
		parallel bool
	}{{"det", false}, {"parallel", true}} {
		base := overheadConfig{"obs-overhead/fib/" + mode.tag + "/obs=off", mode.parallel, false, 0}
		for _, cell := range []struct {
			cfg   overheadConfig
			gated bool
		}{
			{overheadConfig{"obs-overhead/fib/" + mode.tag + "/obs=on", mode.parallel, true, 0}, true},
			{overheadConfig{"obs-overhead/fib/" + mode.tag + "/trace=armed", mode.parallel, true, armedRate}, true},
			{overheadConfig{"obs-overhead/fib/" + mode.tag + "/trace=on", mode.parallel, true, 1}, false},
		} {
			pair := OverheadPair{Name: cell.cfg.name, Samples: reps, Gated: cell.gated}
			for rep := 0; rep < reps; rep++ {
				off, err := run(bt, overheadCase(base, p.Src, p.Want))
				if err != nil {
					return pairs, err
				}
				on, err := run(bt, overheadCase(cell.cfg, p.Src, p.Want))
				if err != nil {
					return pairs, err
				}
				offNs := off.elapsed.Nanoseconds() / int64(off.n)
				onNs := on.elapsed.Nanoseconds() / int64(on.n)
				ratio := float64(onNs) / float64(offNs)
				if rep == 0 || ratio < pair.Ratio {
					pair.Ratio, pair.BaseNs, pair.WithNs = ratio, offNs, onNs
				}
			}
			pairs = append(pairs, pair)
		}
	}
	return pairs, nil
}
