package analysis

import (
	"math/rand"
	"testing"

	"dgr/internal/graph"
	"dgr/internal/task"
)

// build constructs a store with n apply vertices and returns them.
func build(t *testing.T, n int) (*graph.Store, []*graph.Vertex) {
	t.Helper()
	s := graph.NewStore(graph.Config{Partitions: 2, Capacity: n})
	vs := make([]*graph.Vertex, n)
	for i := range vs {
		v, err := s.Alloc(i%2, graph.KindApply, 0)
		if err != nil {
			t.Fatal(err)
		}
		vs[i] = v
	}
	return s, vs
}

func edge(a, b *graph.Vertex, rk graph.ReqKind) {
	a.Lock()
	a.AddArg(b.ID, rk)
	a.Unlock()
}

func request(src, dst *graph.Vertex, rk graph.ReqKind) {
	dst.Lock()
	dst.AddRequester(src.ID, rk)
	dst.Unlock()
}

func TestAnalyzePriorities(t *testing.T) {
	s, vs := build(t, 6)
	root, a, b, c, d, orphan := vs[0], vs[1], vs[2], vs[3], vs[4], vs[5]
	edge(root, a, graph.ReqVital) // prior 3
	edge(root, b, graph.ReqEager) // prior 2
	edge(b, c, graph.ReqVital)    // min(2,3) = 2
	edge(c, d, graph.ReqNone)     // min(2,1) = 1
	_ = orphan                    // unreachable: garbage

	res := Analyze(s.Snapshot(), root.ID, nil)
	wantPrior := map[graph.VertexID]uint8{
		root.ID: 3, a.ID: 3, b.ID: 2, c.ID: 2, d.ID: 1,
	}
	for id, want := range wantPrior {
		if got := res.Prior[id]; got != want {
			t.Errorf("prior(v%d) = %d, want %d", id, got, want)
		}
	}
	if !res.Rv[root.ID] || !res.Rv[a.ID] || !res.Re[b.ID] || !res.Re[c.ID] || !res.Rr[d.ID] {
		t.Fatalf("set membership wrong: %+v", res.Prior)
	}
	if !res.Gar[orphan.ID] {
		t.Fatal("orphan not garbage")
	}
	if err := res.CheckVenn(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeMaxOverPaths(t *testing.T) {
	// shared reachable via eager and vital paths: prior = 3 (max of mins).
	s, vs := build(t, 4)
	root, e, v, shared := vs[0], vs[1], vs[2], vs[3]
	edge(root, e, graph.ReqEager)
	edge(root, v, graph.ReqVital)
	edge(e, shared, graph.ReqVital)
	edge(v, shared, graph.ReqVital)

	res := Analyze(s.Snapshot(), root.ID, nil)
	if got := res.Prior[shared.ID]; got != 3 {
		t.Fatalf("prior(shared) = %d, want 3", got)
	}
}

func TestAnalyzeT(t *testing.T) {
	s, vs := build(t, 6)
	a, b, c, d, e, f := vs[0], vs[1], vs[2], vs[3], vs[4], vs[5]
	// Task <a,b>. From b: requested(b) = {c}; args(b) − req-args = {d}.
	request(c, b, graph.ReqVital)
	edge(b, d, graph.ReqNone)
	edge(b, e, graph.ReqVital) // requested: NOT task-traceable
	_ = f                      // unrelated

	tasks := []task.Task{{Kind: task.Demand, Src: a.ID, Dst: b.ID, Req: graph.ReqVital}}
	res := Analyze(s.Snapshot(), a.ID, tasks)

	for _, want := range []*graph.Vertex{a, b, c, d} {
		if !res.T[want.ID] {
			t.Errorf("v%d should be in T", want.ID)
		}
	}
	for _, not := range []*graph.Vertex{e, f} {
		if res.T[not.ID] {
			t.Errorf("v%d should not be in T", not.ID)
		}
	}
}

func TestAnalyzeDeadlock(t *testing.T) {
	// Figure 3-1: x = x+1. root vitally depends on w, w on itself; no task
	// can reach w.
	s, vs := build(t, 4)
	root, w, live1, live2 := vs[0], vs[1], vs[2], vs[3]
	edge(root, w, graph.ReqVital)
	edge(w, w, graph.ReqVital)
	request(root, w, graph.ReqVital)
	request(w, w, graph.ReqVital)
	edge(root, live1, graph.ReqVital)
	edge(live1, live2, graph.ReqVital)
	request(live1, live2, graph.ReqVital)

	tasks := []task.Task{
		{Kind: task.Demand, Src: live1.ID, Dst: live2.ID, Req: graph.ReqVital},
		{Kind: task.Demand, Src: graph.NilVertex, Dst: root.ID, Req: graph.ReqVital},
	}
	res := Analyze(s.Snapshot(), root.ID, tasks)
	if !res.DLv[w.ID] {
		t.Fatal("w should be deadlocked")
	}
	if res.DLv[root.ID] || res.DLv[live1.ID] || res.DLv[live2.ID] {
		t.Fatalf("false deadlocks: %v", res.DLv)
	}
	if err := res.CheckVenn(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	s, vs := build(t, 5)
	root, v, e, r, g := vs[0], vs[1], vs[2], vs[3], vs[4]
	edge(root, v, graph.ReqVital)
	edge(root, e, graph.ReqEager)
	edge(root, r, graph.ReqNone)
	_ = g // garbage

	res := Analyze(s.Snapshot(), root.ID, nil)
	tests := []struct {
		dst  graph.VertexID
		want Class
	}{
		{v.ID, ClassVital},
		{e.ID, ClassEager},
		{r.ID, ClassReserve},
		{g.ID, ClassIrrelevant},
	}
	for _, tt := range tests {
		got := res.Classify(task.Task{Kind: task.Demand, Dst: tt.dst})
		if got != tt.want {
			t.Errorf("classify(dst=v%d) = %v, want %v", tt.dst, got, tt.want)
		}
	}

	all := res.ClassifyAll([]task.Task{
		{Kind: task.Demand, Dst: v.ID},
		{Kind: task.Demand, Dst: e.ID},
		{Kind: task.Demand, Dst: r.ID},
		{Kind: task.Demand, Dst: g.ID},
		{Kind: task.Mark, Dst: v.ID}, // marking tasks excluded
	})
	if len(all[ClassVital]) != 1 || len(all[ClassEager]) != 1 ||
		len(all[ClassReserve]) != 1 || len(all[ClassIrrelevant]) != 1 {
		t.Fatalf("ClassifyAll = %v", all)
	}
}

func TestClassString(t *testing.T) {
	if ClassVital.String() != "vital" || ClassIrrelevant.String() != "irrelevant" || Class(0).String() != "other" {
		t.Fatal("class names wrong")
	}
}

func TestFreeSetExcludedFromGarbage(t *testing.T) {
	s := graph.NewStore(graph.Config{Partitions: 1, Capacity: 5})
	root, err := s.Alloc(0, graph.KindApply, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(s.Snapshot(), root.ID, nil)
	// 4 vertices remain free; none may be garbage.
	if len(res.F) != 4 {
		t.Fatalf("|F| = %d, want 4", len(res.F))
	}
	if len(res.Gar) != 0 {
		t.Fatalf("|GAR| = %d, want 0", len(res.Gar))
	}
	if err := res.CheckVenn(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestVennHoldsOnRandomGraphs(t *testing.T) {
	// Property test: Figure 3-3's relationships hold for arbitrary graphs,
	// edge kinds, and task sets.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(30)
		s, vs := build(t, n)
		for i := 0; i < n*2; i++ {
			a := vs[rng.Intn(n)]
			b := vs[rng.Intn(n)]
			edge(a, b, graph.ReqKind(rng.Intn(3)))
		}
		for i := 0; i < n/2; i++ {
			request(vs[rng.Intn(n)], vs[rng.Intn(n)], graph.ReqVital)
		}
		var tasks []task.Task
		for i := 0; i < rng.Intn(5); i++ {
			tasks = append(tasks, task.Task{
				Kind: task.Demand,
				Src:  vs[rng.Intn(n)].ID,
				Dst:  vs[rng.Intn(n)].ID,
				Req:  graph.ReqVital,
			})
		}
		snap := s.Snapshot()
		res := Analyze(snap, vs[0].ID, tasks)
		if err := res.CheckVenn(snap); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r, rv, re, rr, _, gar, dl, f := res.Counts()
		if rv+re+rr != r {
			t.Fatalf("trial %d: R not partitioned: %d+%d+%d != %d", trial, rv, re, rr, r)
		}
		if r+gar+f != snap.Len() {
			t.Fatalf("trial %d: V not covered: %d+%d+%d != %d", trial, r, gar, f, snap.Len())
		}
		if dl > rv {
			t.Fatalf("trial %d: |DL|=%d > |R_v|=%d", trial, dl, rv)
		}
	}
}
