// Package analysis computes the paper's reachability sets — R, R_v, R_e,
// R_r, T, GAR, DL_v — and the task classification of Properties 3–6 from an
// immutable graph snapshot, sequentially and with the world stopped. It is
// the ground truth against which the concurrent marking algorithm is
// validated (exact equality in quiesced deterministic runs; the Theorem 1/2
// containments in concurrent runs).
package analysis

import (
	"fmt"

	"dgr/internal/graph"
	"dgr/internal/task"
)

// Class is a task classification per Properties 3–6.
type Class uint8

// Task classes. Other covers tasks whose destination is live but reached
// only through F-fresh vertices or that target free vertices mid-reuse.
const (
	ClassVital      Class = iota + 1 // d ∈ R_v
	ClassEager                       // d ∈ R_e − R_v
	ClassReserve                     // d ∈ R_r − R_e − R_v
	ClassIrrelevant                  // d ∈ GAR = V − R − F
	ClassOther
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassVital:
		return "vital"
	case ClassEager:
		return "eager"
	case ClassReserve:
		return "reserve"
	case ClassIrrelevant:
		return "irrelevant"
	default:
		return "other"
	}
}

// Result holds the computed sets. Set membership is represented as
// map[VertexID]bool; Prior mirrors mark2's priority labeling: 3 for R_v,
// 2 for R_e, 1 for R_r, 0 for unreachable.
//
// Following the operational semantics of mark2 (Figure 5-1), a vertex's
// priority is the maximum over all root paths of the minimum arc priority
// along the path (arcs: vital=3, eager=2, unrequested=1). R_v is the
// priority-3 set; R_e the priority-2 set (reachable through vital arcs plus
// at least one eager arc); R_r the priority-1 remainder of R.
type Result struct {
	Root  graph.VertexID
	Prior map[graph.VertexID]uint8
	R     map[graph.VertexID]bool
	Rv    map[graph.VertexID]bool
	Re    map[graph.VertexID]bool
	Rr    map[graph.VertexID]bool
	T     map[graph.VertexID]bool
	F     map[graph.VertexID]bool
	Gar   map[graph.VertexID]bool
	DLv   map[graph.VertexID]bool
}

// Analyze computes every set from the snapshot, the computation root, and
// the set of unexecuted reduction tasks (the union of the task pools).
func Analyze(snap *graph.Snapshot, root graph.VertexID, tasks []task.Task) *Result {
	res := &Result{
		Root:  root,
		Prior: make(map[graph.VertexID]uint8),
		R:     make(map[graph.VertexID]bool),
		Rv:    make(map[graph.VertexID]bool),
		Re:    make(map[graph.VertexID]bool),
		Rr:    make(map[graph.VertexID]bool),
		T:     make(map[graph.VertexID]bool),
		F:     make(map[graph.VertexID]bool),
		Gar:   make(map[graph.VertexID]bool),
		DLv:   make(map[graph.VertexID]bool),
	}

	// F: the free set.
	for i := 1; i < len(snap.Verts); i++ {
		sv := &snap.Verts[i]
		if sv.ID == graph.NilVertex {
			continue
		}
		if sv.Kind == graph.KindFree {
			res.F[sv.ID] = true
		}
	}

	res.propagatePriorities(snap)
	res.traceTasks(snap, tasks)

	// GAR = V − R − F (Property 1).
	for i := 1; i < len(snap.Verts); i++ {
		sv := &snap.Verts[i]
		if sv.ID == graph.NilVertex {
			continue
		}
		if !res.R[sv.ID] && !res.F[sv.ID] {
			res.Gar[sv.ID] = true
		}
	}
	// DL_v = R_v − T (Property 2′).
	for id := range res.Rv {
		if !res.T[id] {
			res.DLv[id] = true
		}
	}
	return res
}

// propagatePriorities is the sequential analogue of mark2: max-min priority
// propagation from the root over args edges.
func (res *Result) propagatePriorities(snap *graph.Snapshot) {
	if snap.Vertex(res.Root) == nil {
		return
	}
	res.Prior[res.Root] = graph.PriorVital
	work := []graph.VertexID{res.Root}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		sv := snap.Vertex(id)
		if sv == nil {
			continue
		}
		p := res.Prior[id]
		for i, c := range sv.Args {
			cp := min(p, sv.ReqKinds[i].Priority())
			if cp > res.Prior[c] {
				res.Prior[c] = cp
				work = append(work, c)
			}
		}
	}
	for id, p := range res.Prior {
		res.R[id] = true
		switch p {
		case graph.PriorVital:
			res.Rv[id] = true
		case graph.PriorEager:
			res.Re[id] = true
		case graph.PriorReserve:
			res.Rr[id] = true
		}
	}
}

// traceTasks computes T: closure over requested(v) ∪ (args(v) − req-args(v))
// from every task endpoint (both s and d, per the definition of T).
func (res *Result) traceTasks(snap *graph.Snapshot, tasks []task.Task) {
	var work []graph.VertexID
	seed := func(id graph.VertexID) {
		if id != graph.NilVertex && !res.T[id] {
			if snap.Vertex(id) != nil {
				res.T[id] = true
				work = append(work, id)
			}
		}
	}
	for _, t := range tasks {
		if !t.Kind.IsReduction() {
			continue
		}
		seed(t.Src)
		seed(t.Dst)
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		sv := snap.Vertex(id)
		if sv == nil {
			continue
		}
		for _, r := range sv.Requested {
			seed(r.Src)
		}
		for i, c := range sv.Args {
			if sv.ReqKinds[i] == graph.ReqNone {
				seed(c)
			}
		}
	}
}

// Classify labels one task per Properties 3–6.
func (res *Result) Classify(t task.Task) Class {
	switch {
	case res.Rv[t.Dst]:
		return ClassVital
	case res.Re[t.Dst]:
		return ClassEager
	case res.Rr[t.Dst]:
		return ClassReserve
	case res.Gar[t.Dst]:
		return ClassIrrelevant
	default:
		return ClassOther
	}
}

// ClassifyAll buckets a task list by class.
func (res *Result) ClassifyAll(tasks []task.Task) map[Class][]task.Task {
	out := make(map[Class][]task.Task)
	for _, t := range tasks {
		if !t.Kind.IsReduction() {
			continue
		}
		c := res.Classify(t)
		out[c] = append(out[c], t)
	}
	return out
}

// CheckVenn validates the set relationships summarized by Figure 3-3:
// R is partitioned by R_v, R_e, R_r; F, GAR and R are pairwise disjoint and
// cover V; DL_v ⊆ R_v. It returns nil when all hold.
func (res *Result) CheckVenn(snap *graph.Snapshot) error {
	for id := range res.R {
		n := 0
		if res.Rv[id] {
			n++
		}
		if res.Re[id] {
			n++
		}
		if res.Rr[id] {
			n++
		}
		if n != 1 {
			return fmt.Errorf("v%d in R belongs to %d of {R_v,R_e,R_r}, want exactly 1", id, n)
		}
	}
	for id := range res.Rv {
		if !res.R[id] {
			return fmt.Errorf("v%d in R_v but not R", id)
		}
	}
	for i := 1; i < len(snap.Verts); i++ {
		sv := &snap.Verts[i]
		if sv.ID == graph.NilVertex {
			continue
		}
		id := sv.ID
		n := 0
		if res.R[id] {
			n++
		}
		if res.F[id] {
			n++
		}
		if res.Gar[id] {
			n++
		}
		if n != 1 {
			return fmt.Errorf("v%d belongs to %d of {R,F,GAR}, want exactly 1", id, n)
		}
	}
	for id := range res.DLv {
		if !res.Rv[id] || res.T[id] {
			return fmt.Errorf("v%d in DL_v violates DL_v = R_v − T", id)
		}
	}
	return nil
}

// Counts reports the cardinalities of the principal sets.
func (res *Result) Counts() (r, rv, re, rr, t, gar, dl, f int) {
	return len(res.R), len(res.Rv), len(res.Re), len(res.Rr),
		len(res.T), len(res.Gar), len(res.DLv), len(res.F)
}
