package exp

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fabdrop", "fabric", "fig31", "fig32", "irrelevant", "mtfreq", "pause",
		"priority", "programs", "race", "refcount", "scale", "space", "thm1", "thm2", "venn",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry IDs = %v, want %v", got, want)
		}
	}
	if _, ok := Get("fig31"); !ok {
		t.Fatal("Get failed")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get returned unknown experiment")
	}
}

// TestAllExperimentsQuick runs every experiment in Quick mode; each one
// self-validates its own invariants (containments, classifications, no
// losses) and returns an error when the paper's property fails to hold.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(Config{Quick: true, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl == nil || len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			var sb strings.Builder
			tbl.Fprint(&sb)
			out := sb.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s: rendering broken:\n%s", e.ID, out)
			}
			t.Log("\n" + out)
		})
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "long column"},
	}
	tbl.AddRow(1, "v")
	tbl.AddRow("wide value", 2)
	tbl.Note("n=%d", 3)
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "long column", "wide value", "note: n=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
