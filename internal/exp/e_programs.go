package exp

import (
	"fmt"
	"sort"
	"time"

	"dgr"
	"dgr/internal/workload"
)

func init() {
	register(Experiment{ID: "programs", Title: "end-to-end corpus runs (reduce + concurrent GC)", Run: runPrograms})
}

// runPrograms evaluates the whole program corpus on a deterministic
// machine with the collector interleaved, reporting the distributed
// execution profile of each — the closest thing to an application-level
// evaluation the paper's model admits.
func runPrograms(cfg Config) (*Table, error) {
	peList := []int{1, 4}
	names := make([]string, 0, len(workload.Programs))
	for n := range workload.Programs {
		names = append(names, n)
	}
	sort.Strings(names)
	if cfg.Quick {
		names = []string{"fac", "sumsquares"}
	}

	t := &Table{
		ID:      "programs",
		Title:   "corpus programs: tasks, rewrites, GC work, message traffic",
		Columns: []string{"program", "PEs", "value", "time", "red. tasks", "rewrites", "GC cycles", "reclaimed", "remote msgs"},
	}
	for _, name := range names {
		p := workload.Programs[name]
		for _, pes := range peList {
			m := dgr.New(dgr.Options{
				PEs:      pes,
				Seed:     cfg.Seed,
				Capacity: 1 << 16,
			})
			start := time.Now()
			v, err := m.Eval(p.Src)
			dur := time.Since(start)
			s := m.Stats()
			m.Close()
			if err != nil {
				return t, fmt.Errorf("programs: %s on %d PEs: %v", name, pes, err)
			}
			if v.Int != p.Want {
				return t, fmt.Errorf("programs: %s = %d, want %d", name, v.Int, p.Want)
			}
			t.AddRow(name, pes, v.Int, dur.Round(time.Millisecond),
				s.ReductionTasks, s.Rewrites, s.Cycles, s.Reclaimed, s.RemoteMessages)
		}
	}
	t.Note("deterministic machine, seed %d; identical rewrite counts across PE counts show scheduling-independence of the reduction", cfg.Seed)
	return t, nil
}
