package exp

import (
	"fmt"
	"time"

	"dgr"
	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/refcount"
	"dgr/internal/sched"
	"dgr/internal/task"
	"dgr/internal/workload"
)

func init() {
	register(Experiment{ID: "refcount", Title: "marking vs reference counting (cyclic garbage, message overhead)", Run: runRefcount})
	register(Experiment{ID: "irrelevant", Title: "§3.2: irrelevant-task expungement on runaway speculation", Run: runIrrelevant})
	register(Experiment{ID: "priority", Title: "dynamic task reprioritization across GC cycles", Run: runPriority})
	register(Experiment{ID: "mtfreq", Title: "§6: M_T frequency ablation (deadlock latency vs overhead)", Run: runMTFreq})
}

// buildRCWorkload creates acyclic chains and cycles hanging off a root,
// then detaches all of them. Returns the store, root, and the detach
// actions' edge list for RC barriers.
func buildRCWorkload(parts, chains, chainLen, cycles, cycleLen int) (
	*graph.Store, *graph.Vertex, [][2]*graph.Vertex, int, int) {
	capacity := chains*chainLen + cycles*cycleLen + 8
	store := graph.NewStore(graph.Config{Partitions: parts, Capacity: capacity})
	b := graph.NewBuilder(store, -1)
	root := b.Hole()
	root.Lock()
	root.Kind = graph.KindApply
	root.Unlock()

	wire := func(p, c *graph.Vertex) {
		p.Lock()
		p.AddArg(c.ID, graph.ReqNone)
		p.Unlock()
	}
	var detach [][2]*graph.Vertex
	acyclicCount := 0
	for i := 0; i < chains; i++ {
		head := b.Hole()
		head.Lock()
		head.Kind = graph.KindApply
		head.Unlock()
		wire(root, head)
		prev := head
		for j := 1; j < chainLen; j++ {
			n := b.Hole()
			n.Lock()
			n.Kind = graph.KindApply
			n.Unlock()
			wire(prev, n)
			prev = n
		}
		detach = append(detach, [2]*graph.Vertex{root, head})
		acyclicCount += chainLen
	}
	cyclicCount := 0
	for i := 0; i < cycles; i++ {
		var ring []*graph.Vertex
		for j := 0; j < cycleLen; j++ {
			n := b.Hole()
			n.Lock()
			n.Kind = graph.KindApply
			n.Unlock()
			ring = append(ring, n)
		}
		for j := range ring {
			wire(ring[j], ring[(j+1)%len(ring)])
		}
		wire(root, ring[0])
		detach = append(detach, [2]*graph.Vertex{root, ring[0]})
		cyclicCount += cycleLen
	}
	return store, root, detach, acyclicCount, cyclicCount
}

func runRefcount(cfg Config) (*Table, error) {
	chains, chainLen, cycles, cycleLen := 50, 20, 50, 10
	if cfg.Quick {
		chains, cycles = 10, 10
	}
	t := &Table{
		ID:      "refcount",
		Title:   "reclamation after detaching chains and cycles",
		Columns: []string{"collector", "acyclic reclaimed", "cyclic reclaimed", "messages", "remote msgs"},
	}

	acyclicN, cyclicN := 0, 0

	// Half the chains stay attached (live structure both collectors must
	// preserve — and that marking must trace), half are detached together
	// with every cycle.
	partialDetach := func(detach [][2]*graph.Vertex) [][2]*graph.Vertex {
		kept := detach[:0]
		for i, d := range detach {
			if i < chains && i%2 == 0 {
				continue // live chain
			}
			kept = append(kept, d)
		}
		return kept
	}
	liveChains := (chains + 1) / 2
	detachedAcyclic := func() int { return (chains - liveChains) * chainLen }

	// Reference counting.
	{
		store, root, detach, _, _ := buildRCWorkload(4, chains, chainLen, cycles, cycleLen)
		acyclicN, cyclicN = detachedAcyclic(), cycles*cycleLen
		rc := refcount.New(store, nil)
		rc.Root(root.ID)
		rc.InitFromGraph()
		for _, d := range partialDetach(detach) {
			d[0].Lock()
			d[0].RemoveArg(d[1].ID)
			d[0].Unlock()
			rc.DropRef(d[0].ID, d[1].ID)
		}
		freed := rc.Process()
		msgs, remote, _ := rc.Stats()
		cyclicFreed := freed - min(freed, acyclicN)
		t.AddRow("reference counting", min(freed, acyclicN), cyclicFreed, msgs, remote)
		if cyclicFreed != 0 {
			return t, fmt.Errorf("refcount reclaimed cyclic garbage?!")
		}
	}

	// Concurrent marking.
	{
		store, root, detach, _, _ := buildRCWorkload(4, chains, chainLen, cycles, cycleLen)
		counters := &metrics.Counters{}
		mach := sched.New(sched.Config{
			PEs: 4, Mode: sched.Deterministic, Seed: cfg.Seed,
			PartOf: store.PartitionOf, Counters: counters,
		})
		marker := core.NewMarker(store, mach, counters)
		mach.SetHandler(core.NewDispatcher(marker, nil))
		mut := core.NewMutator(store, marker, mach, counters)
		for _, d := range partialDetach(detach) {
			mut.DeleteReference(d[0], d[1])
		}
		col := core.NewCollector(store, marker, mach, counters, core.CollectorConfig{Root: root.ID})
		rep := col.RunCycle()
		reclaimedCyclic := min(rep.Reclaimed, cyclicN)
		reclaimedAcyclic := rep.Reclaimed - reclaimedCyclic
		s := counters.Snapshot()
		t.AddRow("concurrent marking",
			reclaimedAcyclic, reclaimedCyclic,
			s.LocalMessages+s.RemoteMessages, s.RemoteMessages)
		if rep.Reclaimed != acyclicN+cyclicN {
			return t, fmt.Errorf("marking reclaimed %d, want %d", rep.Reclaimed, acyclicN+cyclicN)
		}
	}
	t.Note("RC pays one message per pointer mutation and leaks every cycle; marking reclaims all garbage with traffic proportional to live+garbage scan")
	return t, nil
}

func runIrrelevant(cfg Config) (*Table, error) {
	src := "let fac n = if n == 0 then 1 else n * fac (n - 1) in fac 8"
	budgets := []struct {
		name       string
		gcInterval int
		gc         bool
	}{
		{"no GC (runaway)", 4000, false},
		{"GC every 4000 steps", 4000, true},
		{"GC every 1000 steps", 1000, true},
	}
	t := &Table{
		ID:      "irrelevant",
		Title:   "speculative fac 8: wasted work with/without expungement",
		Columns: []string{"mode", "value", "total tasks", "expunged", "reclaimed", "drained"},
	}
	for _, b := range budgets {
		m := dgr.New(dgr.Options{
			PEs: 4, Seed: cfg.Seed, SpeculativeIf: true,
			GCInterval: b.gcInterval, Capacity: 1 << 17,
		})
		root, err := m.Compile(src)
		if err != nil {
			m.Close()
			return nil, err
		}
		var got dgr.Value
		if b.gc {
			got, err = m.EvalNode(root)
			if err != nil {
				m.Close()
				return t, fmt.Errorf("irrelevant (%s): %v", b.name, err)
			}
			// Drain leftover speculation with further cycles.
			drained := true
			for i := 0; i < 200 && !quiesced(m); i++ {
				m.RunGC()
				pump(m, 4000)
			}
			drained = quiesced(m)
			s := m.Stats()
			t.AddRow(b.name, got.Int, s.ReductionTasks, s.Expunged, s.Reclaimed, drained)
		} else {
			// No GC: pump a fixed budget; the speculation never drains.
			v, ok := evalNoGC(m, root, 300_000)
			s := m.Stats()
			val := "-"
			if ok {
				val = fmt.Sprint(v.Int)
			}
			t.AddRow(b.name, val, s.ReductionTasks, s.Expunged, s.Reclaimed, quiesced(m))
		}
		m.Close()
	}
	t.Note("without expunging, the dereferenced else-branch recurses on n-1 forever (fac(-1), fac(-2), ...)")
	return t, nil
}

func runPriority(cfg Config) (*Table, error) {
	// A long eager speculation whose value later becomes vital: the
	// restructure phase upgrades the queued demand tasks.
	trials := 6
	if cfg.Quick {
		trials = 2
	}
	t := &Table{
		ID:      "priority",
		Title:   "eager→vital upgrades via restructuring",
		Columns: []string{"seed", "value", "reprioritized", "cycles", "coop marks"},
	}
	src := `let slow n = if n == 0 then 7 else slow (n - 1)
	        in spec (slow 200) 0 + slow 220`
	for seed := int64(0); seed < int64(trials); seed++ {
		m := dgr.New(dgr.Options{
			PEs: 4, Seed: cfg.Seed + seed, SpeculativeIf: true,
			GCInterval: 500, Capacity: 1 << 16,
		})
		v, err := m.Eval(src)
		if err != nil {
			m.Close()
			return t, fmt.Errorf("priority seed %d: %v", seed, err)
		}
		s := m.Stats()
		t.AddRow(seed, v.Int, s.Reprioritized, s.Cycles, s.CoopMarks)
		m.Close()
		if v.Int != 7 {
			return t, fmt.Errorf("priority: value %d, want 7", v.Int)
		}
	}
	return t, nil
}

func runMTFreq(cfg Config) (*Table, error) {
	ks := []int{1, 2, 4, 8}
	t := &Table{
		ID:      "mtfreq",
		Title:   "deadlock-detection latency and marking overhead vs M_T cadence",
		Columns: []string{"MTEvery", "cycles to detect", "M_T runs", "mark tasks", "wall time"},
	}
	for _, k := range ks {
		counters2 := &metrics.Counters{}
		sc2 := workload.Fig31(2)
		mach := sched.New(sched.Config{
			PEs: 2, Mode: sched.Deterministic, Seed: cfg.Seed,
			PartOf: sc2.Store.PartitionOf, Counters: counters2,
		})
		marker := core.NewMarker(sc2.Store, mach, counters2)
		mach.SetHandler(core.NewDispatcher(marker, sched.HandlerFunc(func(tk task.Task) {
			if tk.Kind == task.Demand {
				mach.Spawn(tk)
			}
		})))
		for _, tk := range sc2.Tasks {
			mach.Spawn(tk)
		}
		col2 := core.NewCollector(sc2.Store, marker, mach, counters2, core.CollectorConfig{
			Root: sc2.Root, MTEvery: k,
		})
		start := time.Now()
		cycles := 0
		for cycles < 4*k+4 {
			rep := col2.RunCycle()
			cycles++
			if len(rep.Deadlocked) > 0 {
				break
			}
		}
		dur := time.Since(start)
		s := counters2.Snapshot()
		t.AddRow(k, cycles, s.MTRuns, s.MarkTasks, dur)
		if cycles != k {
			return t, fmt.Errorf("mtfreq: detection at cycle %d with MTEvery=%d", cycles, k)
		}
	}
	t.Note("detection waits for the first cycle that runs M_T; marking overhead per cycle shrinks as k grows")
	return t, nil
}

// pump runs up to n deterministic steps without GC.
func pump(m *dgr.Machine, n int) { m.Pump(n) }

// quiesced reports whether the machine has no queued work.
func quiesced(m *dgr.Machine) bool { return m.Quiescent() }

// evalNoGC pumps a fixed step budget with the collector disabled and
// reports whether a value arrived.
func evalNoGC(m *dgr.Machine, root dgr.NodeID, steps int) (dgr.Value, bool) {
	ch := m.DemandNode(root)
	for steps > 0 {
		chunk := min(steps, 4000)
		m.Pump(chunk)
		steps -= chunk
		select {
		case v := <-ch:
			return v, true
		default:
		}
	}
	return dgr.Value{}, false
}
