package exp

import (
	"fmt"
	"sync"
	"time"

	"dgr"
	"dgr/internal/fabric"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/task"
	"dgr/internal/workload"
)

func init() {
	register(Experiment{ID: "fabric", Title: "inter-PE fabric: batching throughput on a remote-spawn-heavy workload", Run: runFabricBatch})
	register(Experiment{ID: "fabdrop", Title: "inter-PE fabric: correctness and message overhead under injected loss", Run: runFabricDrop})
}

// runFabricBatch floods the fabric with remote task messages from every PE
// at once and measures end-to-end delivery throughput as the batch size
// grows, against a direct-dispatch baseline. Batching must beat
// one-task-per-message: the per-message overhead (timer, lock handshake,
// ack bookkeeping) is paid per batch, not per task.
func runFabricBatch(cfg Config) (*Table, error) {
	const pes = 4
	n := 200_000
	if cfg.Quick {
		n = 20_000
	}
	counters := &metrics.Counters{}

	// measure returns msgs/sec for one delivery regime. batch==0 means
	// direct dispatch (no fabric at all).
	measure := func(batch int) (rate float64, delta metrics.Snapshot) {
		var delivered sync.WaitGroup
		delivered.Add(n)
		sink := func(pe int, ts []task.Task) {
			for range ts {
				delivered.Done()
			}
		}
		before := counters.Snapshot()
		var f *fabric.Fabric
		if batch > 0 {
			f = fabric.New(fabric.Config{
				PEs: pes, Parallel: true, Seed: cfg.Seed,
				BatchSize: batch, FlushEvery: 200 * time.Microsecond,
				LinkLatency: 20 * time.Microsecond,
				Counters:    counters,
			})
			f.SetDeliver(sink)
			f.Start()
		}
		start := time.Now()
		var wg sync.WaitGroup
		for pe := 0; pe < pes; pe++ {
			wg.Add(1)
			go func(pe int) {
				defer wg.Done()
				for i := 0; i < n/pes; i++ {
					t := task.Task{Kind: task.Demand, Src: graph.VertexID(pe + 1),
						Dst: graph.VertexID(i + 1), Req: graph.ReqVital}
					to := (pe + 1 + i%(pes-1)) % pes
					if f != nil {
						f.Enqueue(pe, to, t)
					} else {
						sink(to, []task.Task{t})
					}
				}
			}(pe)
		}
		wg.Wait()
		if f != nil {
			delivered.Wait()
			f.Close()
		}
		elapsed := time.Since(start)
		return float64(n) / elapsed.Seconds(), counters.Snapshot().Sub(before)
	}

	tbl := &Table{
		ID:      "fabric",
		Title:   "delivery throughput vs batch size (4 PEs, all-to-all remote spawns)",
		Columns: []string{"mode", "msgs", "batches", "msgs/sec", "vs batch=1"},
	}
	directRate, _ := measure(0)
	tbl.AddRow("direct", n, "-", fmt.Sprintf("%.0f", directRate), "-")

	var unbatched, best float64
	for _, batch := range []int{1, 8, 64} {
		rate, d := measure(batch)
		if d.FabricDelivered != int64(n) {
			return tbl, fmt.Errorf("batch=%d: delivered %d of %d", batch, d.FabricDelivered, n)
		}
		if batch == 1 {
			unbatched = rate
		}
		if rate > best {
			best = rate
		}
		tbl.AddRow(fmt.Sprintf("fabric b=%d", batch), n, d.FabricBatches,
			fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", rate/unbatched))
	}
	tbl.Note("batching amortizes per-message latency scheduling and ack bookkeeping")
	if best <= unbatched {
		return tbl, fmt.Errorf("batching did not improve throughput: best=%.0f unbatched=%.0f", best, unbatched)
	}
	return tbl, nil
}

// runFabricDrop evaluates remote-heavy corpus programs over a fabric with
// increasing injected loss. Results must be bit-identical to the reference
// value at every drop rate — the at-least-once retry plus dedup hides the
// loss — while the message overhead (retries, duplicates) grows with it.
func runFabricDrop(cfg Config) (*Table, error) {
	programs := []string{"fib", "tak"}
	if cfg.Quick {
		programs = []string{"fib"}
	}
	tbl := &Table{
		ID:      "fabdrop",
		Title:   "evaluation over a lossy fabric (4 PEs, batch 8)",
		Columns: []string{"program", "drop", "value", "sent", "delivered", "batches", "dropped", "retried", "dup"},
	}
	for _, name := range programs {
		p := workload.Programs[name]
		for _, drop := range []float64{0, 0.05, 0.10} {
			m := dgr.New(dgr.Options{
				PEs: 4, Seed: cfg.Seed, Fabric: true,
				BatchSize: 8, FlushEvery: 20 * time.Microsecond,
				LinkLatency: 5 * time.Microsecond, Jitter: 3 * time.Microsecond,
				DropRate: drop, ReorderRate: 0.05,
			})
			v, err := m.Eval(p.Src)
			if err != nil {
				m.Close()
				return tbl, fmt.Errorf("%s at drop=%.2f: %v", name, drop, err)
			}
			if v.Int != p.Want {
				m.Close()
				return tbl, fmt.Errorf("%s at drop=%.2f = %d, want %d", name, drop, v.Int, p.Want)
			}
			s := m.Stats()
			m.Close()
			if s.FabricSent != s.FabricDelivered+s.FabricExpunged {
				return tbl, fmt.Errorf("%s at drop=%.2f: conservation violated (sent=%d delivered=%d expunged=%d)",
					name, drop, s.FabricSent, s.FabricDelivered, s.FabricExpunged)
			}
			tbl.AddRow(name, fmt.Sprintf("%.2f", drop), v.Int,
				s.FabricSent, s.FabricDelivered, s.FabricBatches,
				s.FabricDropped, s.FabricRetries, s.FabricDuplicates)
		}
	}
	tbl.Note("identical values at every drop rate: loss is invisible above the transport")
	return tbl, nil
}
