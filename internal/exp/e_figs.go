package exp

import (
	"fmt"
	"math/rand"

	"dgr/internal/analysis"
	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/task"
	"dgr/internal/workload"
)

func init() {
	register(Experiment{ID: "fig31", Title: "Figure 3-1: deadlocked computation x = x+1", Run: runFig31})
	register(Experiment{ID: "fig32", Title: "Figure 3-2: vital/eager/irrelevant/reserve tasks", Run: runFig32})
	register(Experiment{ID: "venn", Title: "Figure 3-3: reachability-set relationships on random graphs", Run: runVenn})
	register(Experiment{ID: "race", Title: "§4.2: mutator/marker race with cooperating primitives", Run: runRace})
}

// scenarioMachine wires a deterministic machine around a workload scenario
// with a parking reducer (tasks stay pooled, as a static instant demands).
func scenarioMachine(sc *workload.Scenario, seed int64) (*sched.Machine, *core.Marker, *core.Collector, *metrics.Counters) {
	counters := &metrics.Counters{}
	mach := sched.New(sched.Config{
		PEs: sc.Store.Partitions(), Mode: sched.Deterministic, Seed: seed,
		PartOf: sc.Store.PartitionOf, Counters: counters,
	})
	marker := core.NewMarker(sc.Store, mach, counters)
	mach.SetHandler(core.NewDispatcher(marker, sched.HandlerFunc(func(tk task.Task) {
		if tk.Kind == task.Demand {
			mach.Spawn(tk)
		}
	})))
	for _, tk := range sc.Tasks {
		mach.Spawn(tk)
	}
	col := core.NewCollector(sc.Store, marker, mach, counters, core.CollectorConfig{
		Root: sc.Root, MTEvery: 1,
	})
	return mach, marker, col, counters
}

func runFig31(cfg Config) (*Table, error) {
	sc := workload.Fig31(2)
	oracle := analysis.Analyze(sc.Store.Snapshot(), sc.Root, sc.Tasks)
	_, _, col, _ := scenarioMachine(sc, cfg.Seed)
	rep := col.RunCycle()

	detected := map[graph.VertexID]bool{}
	for _, id := range rep.Deadlocked {
		detected[id] = true
	}
	t := &Table{
		ID:      "fig31",
		Title:   "deadlock detection on x = x+1 (M_T before M_R)",
		Columns: []string{"vertex", "oracle DL_v", "collector DL'_v", "agree"},
	}
	for _, name := range []string{"root", "x", "live"} {
		id := sc.Named[name]
		t.AddRow(name, oracle.DLv[id], detected[id], oracle.DLv[id] == detected[id])
	}
	t.Note("cycle completed=%v, M_T ran=%v", rep.Completed, rep.MTRan)
	if !detected[sc.Named["x"]] {
		return t, fmt.Errorf("fig31: knot not detected")
	}
	return t, nil
}

func runFig32(cfg Config) (*Table, error) {
	sc := workload.Fig32(2)
	oracle := analysis.Analyze(sc.Store.Snapshot(), sc.Root, sc.Tasks)

	t := &Table{
		ID:      "fig32",
		Title:   "task classification at the Figure 3-2 instant",
		Columns: []string{"task", "expected", "oracle", "after restructure"},
	}
	// Run the cycle; then inspect what happened to each task.
	mach, _, col, _ := scenarioMachine(sc, cfg.Seed)
	rep := col.RunCycle()

	// Survivors and their (possibly reprioritized) request kinds.
	left := map[graph.VertexID]graph.ReqKind{}
	for i := 0; i < mach.PEs(); i++ {
		mach.Pool(i).Each(func(tk task.Task) {
			if tk.Kind == task.Demand {
				left[tk.Dst] = tk.Req
			}
		})
	}
	outcome := func(tk task.Task) string {
		if rk, ok := left[tk.Dst]; ok {
			return "kept as " + rk.String()
		}
		return "expunged"
	}
	names := []string{"<t1,a> (vital)", "<root,d> (eager)", "<t2,c> (reserve)", "<t2,b> (irrelevant)"}
	for i, tk := range sc.Tasks {
		t.AddRow(names[i], sc.ExpectClass[i], oracle.Classify(tk), outcome(tk))
	}
	t.Note("reclaimed=%d expunged=%d reprioritized=%d", rep.Reclaimed, rep.Expunged, rep.Reprioritized)
	for i, want := range sc.ExpectClass {
		if got := oracle.Classify(sc.Tasks[i]); got != want {
			return t, fmt.Errorf("fig32: task %d classified %v, want %v", i, got, want)
		}
	}
	return t, nil
}

func runVenn(cfg Config) (*Table, error) {
	trials := 200
	if cfg.Quick {
		trials = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:      "venn",
		Title:   "Figure 3-3 set relations over random graphs",
		Columns: []string{"trials", "|V| range", "violations", "avg |R|", "avg |GAR|", "avg |DL|"},
	}
	violations := 0
	var sumR, sumG, sumD, minV, maxV int
	minV = 1 << 30
	for i := 0; i < trials; i++ {
		n := 10 + rng.Intn(60)
		store := graph.NewStore(graph.Config{Partitions: 4, Capacity: n})
		root, vs, err := workload.RandomGraph(rng, store, n, 1.5+rng.Float64())
		if err != nil {
			return nil, err
		}
		var tasks []task.Task
		for j := 0; j < rng.Intn(6); j++ {
			tasks = append(tasks, task.Task{
				Kind: task.Demand,
				Src:  vs[rng.Intn(n)].ID,
				Dst:  vs[rng.Intn(n)].ID,
				Req:  graph.ReqVital,
			})
		}
		snap := store.Snapshot()
		res := analysis.Analyze(snap, root, tasks)
		if err := res.CheckVenn(snap); err != nil {
			violations++
		}
		r, _, _, _, _, gar, dl, _ := res.Counts()
		sumR += r
		sumG += gar
		sumD += dl
		if n < minV {
			minV = n
		}
		if n > maxV {
			maxV = n
		}
	}
	t.AddRow(trials, fmt.Sprintf("%d..%d", minV, maxV), violations,
		sumR/trials, sumG/trials, sumD/trials)
	if violations != 0 {
		return t, fmt.Errorf("venn: %d violations", violations)
	}
	return t, nil
}

func runRace(cfg Config) (*Table, error) {
	points := 12
	seeds := 10
	if cfg.Quick {
		points, seeds = 6, 4
	}
	t := &Table{
		ID:      "race",
		Title:   "a→b→c add/delete-reference race during marking (+ cooperation ablation)",
		Columns: []string{"cooperation", "interleaving points", "seeds", "trials", "c lost", "coop marks"},
	}
	sweep := func(cooperate bool) (trials, lost int, coop int64) {
		for mutateAt := 0; mutateAt < points; mutateAt++ {
			for seed := int64(0); seed < int64(seeds); seed++ {
				counters := &metrics.Counters{}
				store := graph.NewStore(graph.Config{Partitions: 2, Capacity: 8})
				mach := sched.New(sched.Config{
					PEs: 2, Mode: sched.Deterministic, Seed: cfg.Seed + seed,
					Adversarial: true, PartOf: store.PartitionOf, Counters: counters,
				})
				marker := core.NewMarker(store, mach, counters)
				mach.SetHandler(core.NewDispatcher(marker, nil))
				mut := core.NewMutator(store, marker, mach, counters)
				mut.SetCooperation(cooperate)

				a, _ := store.Alloc(0, graph.KindApply, 0)
				b, _ := store.Alloc(1, graph.KindApply, 0)
				c, _ := store.Alloc(0, graph.KindApply, 0)
				wire := func(p, ch *graph.Vertex) {
					p.Lock()
					p.AddArg(ch.ID, graph.ReqVital)
					p.Unlock()
				}
				wire(a, b)
				wire(b, c)

				marker.StartCycle(graph.CtxR, []core.Root{{ID: a.ID, Prior: graph.PriorVital}})
				steps, mutated := 0, false
				for !marker.Done(graph.CtxR) {
					if steps == mutateAt && !mutated {
						mut.AddReference(a, b, c, graph.ReqVital)
						mut.DeleteReference(b, c)
						mutated = true
					}
					if !mach.Step() {
						break
					}
					steps++
				}
				if !mutated {
					continue
				}
				trials++
				c.Lock()
				if c.RCtx.StateAt(marker.Epoch(graph.CtxR)) != graph.Marked {
					lost++
				}
				c.Unlock()
				coop += counters.CoopMarks.Load()
			}
		}
		return trials, lost, coop
	}

	trials, lost, coop := sweep(true)
	t.AddRow("enabled (Fig 4-2)", points, seeds, trials, lost, coop)
	trialsOff, lostOff, _ := sweep(false)
	t.AddRow("DISABLED (ablation)", points, seeds, trialsOff, lostOff, 0)

	if lost != 0 {
		return t, fmt.Errorf("race: c lost in %d trials with cooperation enabled", lost)
	}
	if trialsOff > 0 && lostOff == 0 {
		return t, fmt.Errorf("race ablation: disabling cooperation never lost c — scenario not exercising the race")
	}
	t.Note("the cooperation is load-bearing: without it the §4.2 race really does lose reachable vertices")
	return t, nil
}
