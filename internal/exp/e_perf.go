package exp

import (
	"fmt"
	"math/rand"
	"time"

	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/stopworld"
	"dgr/internal/task"
	"dgr/internal/workload"
)

func init() {
	register(Experiment{ID: "scale", Title: "marking throughput vs number of PEs (decentralization claim)", Run: runScale})
	register(Experiment{ID: "pause", Title: "concurrent marking vs stop-the-world pauses (minimal-interference claim)", Run: runPause})
}

// buildForMarking reconstructs the same random graph (same seed) in a
// fresh store for each machine configuration.
func buildForMarking(seed int64, pes, n int) (*graph.Store, graph.VertexID, error) {
	rng := rand.New(rand.NewSource(seed))
	store := graph.NewStore(graph.Config{Partitions: pes, Capacity: n})
	root, _, err := workload.RandomGraph(rng, store, n, 3.0)
	return store, root, err
}

func runScale(cfg Config) (*Table, error) {
	n := 300_000
	reps := 3
	if cfg.Quick {
		n, reps = 20_000, 1
	}
	peList := []int{1, 2, 4, 8, 16}
	t := &Table{
		ID:      "scale",
		Title:   fmt.Sprintf("one M_R cycle over a %d-vertex graph, parallel PEs", n),
		Columns: []string{"PEs", "best cycle time", "marks", "marks/sec", "speedup vs 1 PE"},
	}
	var base float64
	for _, pes := range peList {
		store, root, err := buildForMarking(cfg.Seed, pes, n)
		if err != nil {
			return nil, err
		}
		// No shared counters on the hot path: cross-PE atomic increments
		// on adjacent cache lines would measure false sharing, not the
		// algorithm. Marks are counted per PE in padded slots instead.
		mach := sched.New(sched.Config{
			PEs: pes, Mode: sched.Parallel, PartOf: store.PartitionOf,
		})
		marker := core.NewMarker(store, mach, nil)
		type padded struct {
			n int64
			_ [7]int64
		}
		perPE := make([]padded, pes)
		dispatch := core.NewDispatcher(marker, nil)
		mach.SetHandler(sched.HandlerFunc(func(tk task.Task) {
			if tk.Kind == task.Mark {
				perPE[store.PartitionOf(tk.Dst)].n++
			}
			dispatch.Handle(tk)
		}))
		mach.Start()

		best := time.Duration(1<<62 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			done := marker.StartCycle(graph.CtxR, []core.Root{{ID: root, Prior: graph.PriorVital}})
			<-done
			if d := time.Since(start); d < best {
				best = d
			}
		}
		mach.Stop()

		var marks int64
		for i := range perPE {
			marks += perPE[i].n
		}
		marks /= int64(reps)
		rate := float64(marks) / best.Seconds()
		if pes == 1 {
			base = best.Seconds()
		}
		t.AddRow(pes, best, marks, fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2fx", base/best.Seconds()))
	}
	t.Note("decentralized marking: no shared stack; work spreads over per-PE task pools")
	t.Note("per-task work is ~1µs, so pool handoff dominates — the fine-grained-communication cost the paper's §1/§2 explicitly sets out to avoid by coarsening partitions")
	return t, nil
}

// runPause measures what the mutator experiences during collection. A
// dedicated mutator goroutine continuously performs real graph mutations
// (cooperating expand-node splices on the live region) and records the
// longest gap between two consecutive operations:
//
//   - stop-the-world: the mutator must hold still for the entire
//     mark+sweep, so its maximum gap is the full collection pause;
//   - concurrent marking: the cycle runs on the PEs while the mutator
//     keeps mutating; it only ever waits for per-vertex locks, so its
//     maximum gap stays microscopic regardless of heap size.
func runPause(cfg Config) (*Table, error) {
	sizes := []int{10_000, 50_000, 100_000}
	if cfg.Quick {
		sizes = []int{5_000}
	}
	t := &Table{
		ID:      "pause",
		Title:   "max mutator pause: stop-the-world collect vs concurrent cycle",
		Columns: []string{"|V|", "STW pause (= mutator gap)", "concurrent cycle time", "mutator max gap", "mutator ops during cycle"},
	}
	for _, n := range sizes {
		// Stop-the-world baseline: the pause IS the mutator gap.
		store, root, err := buildForMarking(cfg.Seed, 4, n)
		if err != nil {
			return nil, err
		}
		res := stopworld.Collect(store, nil, root)

		// Concurrent: same heap, parallel PEs marking while a mutator
		// goroutine splices fresh vertices under the root.
		store2, root2, err := buildForMarking(cfg.Seed, 4, n)
		if err != nil {
			return nil, err
		}
		counters := &metrics.Counters{}
		mach := sched.New(sched.Config{
			PEs: 4, Mode: sched.Parallel, PartOf: store2.PartitionOf, Counters: counters,
		})
		marker := core.NewMarker(store2, mach, counters)
		mach.SetHandler(core.NewDispatcher(marker, nil))
		mut := core.NewMutator(store2, marker, mach, counters)
		mach.Start()

		// The mutator works under a dedicated child of the root. (Splicing
		// under the root itself while it is transient would re-spawn marks
		// on its entire fanout per splice, letting the mutator outrun the
		// marker indefinitely — a useful discovery about mutation hot
		// spots, noted in DESIGN.md, but not what this experiment
		// measures.)
		rootV := store2.Vertex(root2)
		mutZone, err := mut.Alloc(0, graph.KindApply, 0)
		if err != nil {
			return nil, err
		}
		mut.ExpandNode(rootV, []*graph.Vertex{mutZone}, func() {
			rootV.AddArg(mutZone.ID, graph.ReqNone)
		})
		stopMut := make(chan struct{})
		mutDone := make(chan struct{})
		var ops int64
		var maxGap time.Duration
		go func() {
			defer close(mutDone)
			last := time.Now()
			for {
				select {
				case <-stopMut:
					return
				default:
				}
				n1, err := mut.Alloc(0, graph.KindInt, ops)
				if err != nil {
					return
				}
				mut.ExpandNode(mutZone, []*graph.Vertex{n1}, func() {
					mutZone.AddArg(n1.ID, graph.ReqNone)
					if len(mutZone.Args) > 8 {
						// keep the mutation zone's fanout bounded
						mutZone.Args = mutZone.Args[1:]
						mutZone.ReqKinds = mutZone.ReqKinds[1:]
					}
				})
				now := time.Now()
				if gap := now.Sub(last); gap > maxGap {
					maxGap = gap
				}
				last = now
				ops++
				// Pace the mutator so the heap does not balloon while the
				// cycle runs; the gap measurement subtracts nothing — a
				// paced mutator blocked by a STW collector would still
				// observe the full pause.
				time.Sleep(100 * time.Microsecond)
				last = time.Now()
			}
		}()

		done := marker.StartCycle(graph.CtxR, []core.Root{{ID: root2, Prior: graph.PriorVital}})
		start := time.Now()
		<-done
		cycleDur := time.Since(start)
		close(stopMut)
		<-mutDone
		mach.Stop()

		t.AddRow(n, res.Pause, cycleDur, maxGap, ops)
		if maxGap > res.Pause && n >= 50_000 {
			return t, fmt.Errorf("pause: concurrent mutator gap %v exceeds STW pause %v", maxGap, res.Pause)
		}
	}
	t.Note("the concurrent mutator's worst gap is per-vertex lock contention + scheduling noise, independent of heap size; the STW pause grows linearly with the heap")
	return t, nil
}
