package exp

import (
	"fmt"
	"unsafe"

	"dgr/internal/graph"
)

func init() {
	register(Experiment{ID: "space", Title: "§6: per-vertex space overhead of the marking fields", Run: runSpace})
}

// runSpace quantifies the space cost §6 discusses: "each vertex requires
// space for mt-cnt, mt-par, and marking bits" — doubled here because M_R
// and M_T keep distinct bookkeeping (§5.2). The paper notes [6] can fold
// all mt-cnts and mt-pars into two words per PE; we keep them per-vertex,
// which §6 sanctions for systems with larger object granularity, and
// measure what that choice costs.
func runSpace(cfg Config) (*Table, error) {
	var v graph.Vertex
	var mc graph.MarkCtx

	vertexSize := unsafe.Sizeof(v)
	ctxSize := unsafe.Sizeof(mc)
	markBytes := 2 * ctxSize // RCtx + TCtx
	stampBytes := unsafe.Sizeof(v.Red.AllocEpoch) + unsafe.Sizeof(v.Red.AllocEpochT)

	t := &Table{
		ID:      "space",
		Title:   "marking-field overhead per vertex (this implementation)",
		Columns: []string{"component", "bytes", "% of vertex struct"},
	}
	pct := func(n uintptr) string {
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(vertexSize))
	}
	t.AddRow("Vertex struct (headers only, excl. slices)", vertexSize, "100%")
	t.AddRow("one MarkCtx (epoch, mt-cnt, mt-par, state, prior)", ctxSize, pct(ctxSize))
	t.AddRow("both contexts (M_R + M_T, §5.2)", markBytes, pct(markBytes))
	t.AddRow("allocation stamps (axiom-1 sweep guard)", stampBytes, pct(stampBytes))
	t.Note("the paper's space optimization [6] folds every mt-cnt and mt-par into two words per PE; kept per-vertex here (sanctioned by §6 for coarser granularity) and traded for O(1) epoch-based unmarking between cycles")

	// Sanity: the marking overhead must stay a bounded fraction.
	if float64(markBytes) > 0.8*float64(vertexSize) {
		return t, fmt.Errorf("space: marking fields dominate the vertex (%d of %d bytes)", markBytes, vertexSize)
	}
	return t, nil
}
