package exp

import (
	"fmt"
	"math/rand"

	"dgr/internal/analysis"
	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/task"
	"dgr/internal/workload"
)

func init() {
	register(Experiment{ID: "thm1", Title: "Theorem 1: GAR(t_b) ⊆ GAR' ⊆ GAR(t_c) under mutation", Run: runThm1})
	register(Experiment{ID: "thm2", Title: "Theorem 2: DL(t_a) ⊆ DL' ⊆ DL(t_c), M_T before M_R", Run: runThm2})
}

// markRig is a deterministic marking stack over a fresh store.
type markRig struct {
	store    *graph.Store
	mach     *sched.Machine
	marker   *core.Marker
	mut      *core.Mutator
	counters *metrics.Counters
}

func newMarkRig(pes int, capacity int, seed int64) *markRig {
	counters := &metrics.Counters{}
	store := graph.NewStore(graph.Config{Partitions: pes, Capacity: capacity})
	mach := sched.New(sched.Config{
		PEs: pes, Mode: sched.Deterministic, Seed: seed, Adversarial: true,
		PartOf: store.PartitionOf, Counters: counters,
	})
	marker := core.NewMarker(store, mach, counters)
	mach.SetHandler(core.NewDispatcher(marker, sched.HandlerFunc(func(tk task.Task) {
		if tk.Kind == task.Demand {
			mach.Spawn(tk)
		}
	})))
	mut := core.NewMutator(store, marker, mach, counters)
	return &markRig{store: store, mach: mach, marker: marker, mut: mut, counters: counters}
}

// liveMutation performs one random connectivity mutation on the live
// region through the cooperating primitives.
func (r *markRig) liveMutation(rng *rand.Rand, root graph.VertexID) {
	live := make([]graph.VertexID, 0, 64)
	seen := map[graph.VertexID]bool{}
	stack := []graph.VertexID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if id == graph.NilVertex || seen[id] {
			continue
		}
		seen[id] = true
		live = append(live, id)
		v := r.store.Vertex(id)
		if v == nil {
			continue
		}
		v.Lock()
		stack = append(stack, v.Args...)
		v.Unlock()
	}
	if len(live) == 0 {
		return
	}
	a := r.store.Vertex(live[rng.Intn(len(live))])
	switch rng.Intn(3) {
	case 0: // drop a random edge
		a.Lock()
		var b graph.VertexID
		if len(a.Args) > 0 {
			b = a.Args[rng.Intn(len(a.Args))]
		}
		a.Unlock()
		if b != graph.NilVertex {
			r.mut.DeleteReference(a, r.store.Vertex(b))
		}
	case 1: // add-reference over an adjacent triple
		a.Lock()
		var bid graph.VertexID
		if len(a.Args) > 0 {
			bid = a.Args[rng.Intn(len(a.Args))]
		}
		a.Unlock()
		if bid == graph.NilVertex {
			return
		}
		b := r.store.Vertex(bid)
		b.Lock()
		var cid graph.VertexID
		if len(b.Args) > 0 {
			cid = b.Args[rng.Intn(len(b.Args))]
		}
		b.Unlock()
		if cid != graph.NilVertex && cid != a.ID {
			r.mut.AddReference(a, b, r.store.Vertex(cid), graph.ReqKind(rng.Intn(3)))
		}
	case 2: // expand-node with a fresh pair
		n1, err := r.mut.Alloc(0, graph.KindApply, 0)
		if err != nil {
			return
		}
		n2, err := r.mut.Alloc(0, graph.KindInt, int64(rng.Intn(50)))
		if err != nil {
			return
		}
		r.mut.ExpandNode(a, []*graph.Vertex{n1, n2}, func() {
			n1.AddArg(n2.ID, graph.ReqVital)
			a.AddArg(n1.ID, graph.ReqKind(rng.Intn(3)))
		})
	}
}

func runThm1(cfg Config) (*Table, error) {
	sizes := []int{200, 1000, 4000}
	peList := []int{1, 4, 8}
	if cfg.Quick {
		sizes = []int{100}
		peList = []int{2}
	}
	t := &Table{
		ID:      "thm1",
		Title:   "garbage identification containments with concurrent mutation",
		Columns: []string{"|V|", "PEs", "mutations", "|GAR(t_b)|", "|GAR'|", "|GAR(t_c)|", "left ⊆", "right ⊆"},
	}
	for _, n := range sizes {
		for _, pes := range peList {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n+pes)))
			r := newMarkRig(pes, n+256, cfg.Seed)
			root, _, err := workload.RandomGraph(rng, r.store, n, 2.0)
			if err != nil {
				return nil, err
			}

			resB := analysis.Analyze(r.store.Snapshot(), root, nil)
			r.marker.StartCycle(graph.CtxR, []core.Root{{ID: root, Prior: graph.PriorVital}})
			muts := 0
			maxMuts := n / 10
			for !r.marker.Done(graph.CtxR) {
				if muts < maxMuts && rng.Intn(3) == 0 {
					r.liveMutation(rng, root)
					muts++
				}
				if !r.mach.Step() {
					break
				}
			}
			if !r.marker.Done(graph.CtxR) {
				return t, fmt.Errorf("thm1: marking incomplete at n=%d", n)
			}
			resC := analysis.Analyze(r.store.Snapshot(), root, nil)

			epoch := r.marker.Epoch(graph.CtxR)
			markerGar := map[graph.VertexID]bool{}
			r.store.ForEach(func(v *graph.Vertex) {
				v.Lock()
				defer v.Unlock()
				if v.Kind == graph.KindFree || v.Red.AllocEpoch >= epoch {
					return
				}
				if v.RCtx.StateAt(epoch) == graph.Unmarked {
					markerGar[v.ID] = true
				}
			})

			left, right := true, true
			for id := range resB.Gar {
				if !markerGar[id] {
					left = false
				}
			}
			for id := range markerGar {
				if !resC.Gar[id] {
					right = false
				}
			}
			t.AddRow(n, pes, muts, len(resB.Gar), len(markerGar), len(resC.Gar), left, right)
			if !left || !right {
				return t, fmt.Errorf("thm1: containment violated at n=%d pes=%d", n, pes)
			}
		}
	}
	t.Note("GAR' = V − R' − F honoring reduction axiom 1 for mid-cycle allocations")
	return t, nil
}

func runThm2(cfg Config) (*Table, error) {
	knots := []int{1, 3, 6}
	if cfg.Quick {
		knots = []int{2}
	}
	t := &Table{
		ID:      "thm2",
		Title:   "deadlock identification containments (M_T before M_R)",
		Columns: []string{"knots", "|DL(t_a)|", "reported", "|DL(t_c)|", "left ⊆", "right ⊆"},
	}
	for _, k := range knots {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
		r := newMarkRig(2, 512, cfg.Seed+int64(k))
		b := graph.NewBuilder(r.store, 0)

		root := b.Hole()
		root.Lock()
		root.Kind = graph.KindApply
		root.Unlock()

		// k deadlocked 2-knots hanging vitally off the root.
		var knotIDs []graph.VertexID
		for i := 0; i < k; i++ {
			k1, k2 := b.Hole(), b.Hole()
			for _, h := range []*graph.Vertex{k1, k2} {
				h.Lock()
				h.Kind = graph.KindApply
				h.Unlock()
			}
			link := func(x, y *graph.Vertex) {
				x.Lock()
				x.AddArg(y.ID, graph.ReqVital)
				x.Unlock()
				y.Lock()
				y.AddRequester(x.ID, graph.ReqVital)
				y.Unlock()
			}
			link(root, k1)
			link(k1, k2)
			link(k2, k1)
			knotIDs = append(knotIDs, k1.ID, k2.ID)
		}

		// Live chain with task activity.
		prev := root
		var liveChain []*graph.Vertex
		for i := 0; i < 8; i++ {
			nxt := b.Hole()
			nxt.Lock()
			nxt.Kind = graph.KindApply
			nxt.Unlock()
			prev.Lock()
			prev.AddArg(nxt.ID, graph.ReqVital)
			prev.Unlock()
			nxt.Lock()
			nxt.AddRequester(prev.ID, graph.ReqVital)
			nxt.Unlock()
			liveChain = append(liveChain, nxt)
			prev = nxt
		}
		leaf := b.Int(1)
		prev.Lock()
		prev.AddArg(leaf.ID, graph.ReqNone)
		prev.Unlock()
		if err := b.Err(); err != nil {
			return nil, err
		}
		r.mach.Spawn(task.Task{Kind: task.Demand, Src: prev.ID, Dst: leaf.ID, Req: graph.ReqVital})
		r.mach.Spawn(task.Task{Kind: task.Demand, Src: graph.NilVertex, Dst: root.ID, Req: graph.ReqVital})

		snapTasks := func() []task.Task {
			var ts []task.Task
			for i := 0; i < r.mach.PEs(); i++ {
				r.mach.Pool(i).Each(func(tk task.Task) { ts = append(ts, tk) })
			}
			return ts
		}
		resA := analysis.Analyze(r.store.Snapshot(), root.ID, snapTasks())

		col := core.NewCollector(r.store, r.marker, r.mach, r.counters, core.CollectorConfig{
			Root: root.ID, MTEvery: 1,
		})
		var reported []graph.VertexID
		colCfgRun := func() core.CycleReport { return col.RunCycle() }
		// Mutate the live chain mid-cycle by interleaving explicit steps:
		// RunCycle pumps internally, so mutations ride on the parked-task
		// respawns; for this experiment the churn matters less than the
		// ordering, so run the cycle directly.
		rep := colCfgRun()
		reported = append(reported, rep.Deadlocked...)
		_ = liveChain
		_ = rng

		resC := analysis.Analyze(r.store.Snapshot(), root.ID, snapTasks())

		repSet := map[graph.VertexID]bool{}
		for _, id := range reported {
			repSet[id] = true
		}
		left, right := true, true
		for id := range resA.DLv {
			if !repSet[id] {
				left = false
			}
		}
		for id := range repSet {
			if !resC.DLv[id] {
				right = false
			}
		}
		t.AddRow(k, len(resA.DLv), len(reported), len(resC.DLv), left, right)
		if !left || !right {
			return t, fmt.Errorf("thm2: containment violated at k=%d", k)
		}
		if len(reported) < 2*k {
			return t, fmt.Errorf("thm2: only %d of %d knot vertices reported", len(reported), 2*k)
		}
		_ = knotIDs
	}
	return t, nil
}
