// Package exp implements the experiment harness: one runnable experiment
// per figure/scenario of the paper plus the quantitative evaluation its
// claims imply (see DESIGN.md §3 and EXPERIMENTS.md). Each experiment
// produces a Table; cmd/dgr-bench prints them and the root bench_test.go
// wraps them as Go benchmarks.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Config parameterizes a run.
type Config struct {
	// Quick shrinks workloads for smoke tests and testing.B warmups.
	Quick bool
	// Seed drives all randomized workloads.
	Seed int64
}

// Experiment is one registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Table, error)
}

// registry of all experiments, keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the sorted experiment IDs.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}
