package reduce

import (
	"testing"

	"dgr/internal/core"
	"dgr/internal/graph"
)

func TestHeadOfNonPairFails(t *testing.T) {
	r := newERig(t, 1, 30, false)
	root := r.b.App(r.b.Prim(graph.PrimHead), r.b.Int(5))
	if _, ok := r.eval(root); ok {
		t.Fatal("head of int produced a value")
	}
	if len(r.engine.Errors()) == 0 {
		t.Fatal("expected a runtime error")
	}
}

func TestIsNilOfInt(t *testing.T) {
	r := newERig(t, 1, 31, false)
	root := r.b.App(r.b.Prim(graph.PrimIsNil), r.b.Int(5))
	r.evalBool(root, false) // isnil is a total predicate on WHNF values
}

func TestNotOfIntFails(t *testing.T) {
	r := newERig(t, 1, 32, false)
	root := r.b.App(r.b.Prim(graph.PrimNot), r.b.Int(5))
	if _, ok := r.eval(root); ok {
		t.Fatal("not of int produced a value")
	}
}

func TestOverApplicationFails(t *testing.T) {
	// (neg 1) 2: applying an integer result.
	r := newERig(t, 1, 33, false)
	root := r.b.App(r.b.App(r.b.Prim(graph.PrimNeg), r.b.Int(1)), r.b.Int(2))
	if _, ok := r.eval(root); ok {
		t.Fatal("over-application produced a value")
	}
	if len(r.engine.Errors()) == 0 {
		t.Fatal("expected a runtime error")
	}
}

func TestValueOfDangling(t *testing.T) {
	r := newERig(t, 1, 34, false)
	v := r.engine.ValueOf(graph.VertexID(9999))
	if v.Kind != graph.KindHole {
		t.Fatalf("dangling ValueOf = %v", v)
	}
}

func TestConsPartsOnNonCons(t *testing.T) {
	r := newERig(t, 1, 35, false)
	i := r.b.Int(1)
	if _, _, ok := r.engine.ConsParts(i.ID); ok {
		t.Fatal("ConsParts of int succeeded")
	}
}

func TestIndChainResolution(t *testing.T) {
	// Long but finite indirection chains resolve.
	r := newERig(t, 1, 36, false)
	target := r.b.Int(7)
	cur := target
	for i := 0; i < 50; i++ {
		cur = r.b.Ind(cur)
	}
	root := r.b.App(r.b.Prim(graph.PrimNeg), cur)
	r.evalInt(root, -7)
}

func TestBottomProbeDirect(t *testing.T) {
	// The probe machinery at the engine level: resolve via the deadlocked
	// set (the collector's path) without a full dgr machine.
	r := newERig(t, 2, 37, false)
	knotHole := r.b.Hole()
	knot := r.b.AppN(r.b.Prim(graph.PrimAdd), knotHole, r.b.Int(1))
	r.b.Knot(knotHole, knot)
	probe := r.b.App(r.b.Prim(graph.PrimIsBotOp), knot)
	root := r.b.AppN(r.b.Prim(graph.PrimIf), probe, r.b.Int(-1), knot)

	ch := r.engine.Demand(root.ID)
	r.mach.RunToQuiescence(1_000_000)
	select {
	case <-ch:
		t.Fatal("value before probe resolution")
	default:
	}

	col := core.NewCollector(r.store, r.marker, r.mach, r.counters, core.CollectorConfig{
		Root:    root.ID,
		MTEvery: 1,
		OnDeadlock: func(ids []graph.VertexID) {
			r.engine.ResolveBottomProbes(ids)
		},
	})
	// Two cycles: the first M_T pass nominates the knot, the second confirms
	// it (two-phase verdict) and fires OnDeadlock.
	col.RunCycle()
	col.RunCycle()
	r.mach.RunToQuiescence(1_000_000)
	select {
	case v := <-ch:
		if v.Kind != graph.KindInt || v.Int != -1 {
			t.Fatalf("recovered = %v, want -1", v)
		}
	default:
		t.Fatalf("probe did not resolve; deadlocked=%v", col.Deadlocked())
	}
}

func TestDuplicateDemandsHarmless(t *testing.T) {
	// Several root demands on the same vertex all get answered.
	r := newERig(t, 2, 38, false)
	root := r.b.AppN(r.b.Prim(graph.PrimMul), r.b.Int(6), r.b.Int(7))
	ch1 := r.engine.Demand(root.ID)
	ch2 := r.engine.Demand(root.ID)
	r.mach.RunToQuiescence(1_000_000)
	v1, v2 := <-ch1, <-ch2
	if v1.Int != 42 || v2.Int != 42 {
		t.Fatalf("v1=%v v2=%v", v1, v2)
	}
}

func TestDemandOnFreedVertexDropped(t *testing.T) {
	r := newERig(t, 1, 39, false)
	v := r.b.Int(3)
	r.store.Release(v)
	ch := r.engine.Demand(v.ID)
	r.mach.RunToQuiescence(1000)
	select {
	case got := <-ch:
		t.Fatalf("freed vertex produced %v", got)
	default: // correctly dropped
	}
}

func TestStrConstants(t *testing.T) {
	r := newERig(t, 1, 40, false)
	s := r.b.Str("hello")
	root := r.b.App(r.b.Comb(graph.CombI), s)
	v, ok := r.eval(root)
	if !ok || v.Kind != graph.KindStr || v.Str != "hello" {
		t.Fatalf("str value = %v (ok=%v)", v, ok)
	}
}
