package reduce

import (
	"testing"

	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
)

// erig is a full deterministic machine: store, scheduler, marker, mutator,
// engine, and builder.
type erig struct {
	t        *testing.T
	store    *graph.Store
	mach     *sched.Machine
	marker   *core.Marker
	mut      *core.Mutator
	engine   *Engine
	b        *graph.Builder
	counters *metrics.Counters
}

func newERig(t *testing.T, pes int, seed int64, speculative bool) *erig {
	t.Helper()
	store := graph.NewStore(graph.Config{Partitions: pes, Capacity: 512})
	counters := &metrics.Counters{}
	mach := sched.New(sched.Config{
		PEs:      pes,
		Mode:     sched.Deterministic,
		Seed:     seed,
		PartOf:   store.PartitionOf,
		Counters: counters,
	})
	marker := core.NewMarker(store, mach, counters)
	mut := core.NewMutator(store, marker, mach, counters)
	eng := New(store, mach, mut, Config{SpeculativeIf: speculative, Counters: counters})
	mach.SetHandler(core.NewDispatcher(marker, eng))
	return &erig{
		t: t, store: store, mach: mach, marker: marker, mut: mut,
		engine: eng, b: graph.NewBuilder(store, 0), counters: counters,
	}
}

// eval demands root, runs to quiescence, and returns the value if any.
func (r *erig) eval(root *graph.Vertex) (Value, bool) {
	r.t.Helper()
	if err := r.b.Err(); err != nil {
		r.t.Fatal(err)
	}
	ch := r.engine.Demand(root.ID)
	if _, ok := r.mach.RunToQuiescence(2_000_000); !ok {
		r.t.Fatal("machine did not quiesce")
	}
	select {
	case v := <-ch:
		return v, true
	default:
		return Value{}, false
	}
}

// evalInt asserts the root evaluates to the given integer.
func (r *erig) evalInt(root *graph.Vertex, want int64) {
	r.t.Helper()
	v, ok := r.eval(root)
	if errs := r.engine.Errors(); len(errs) != 0 {
		r.t.Fatalf("runtime errors: %v", errs)
	}
	if !ok {
		r.t.Fatal("no value produced")
	}
	if v.Kind != graph.KindInt || v.Int != want {
		r.t.Fatalf("value = %v, want %d", v, want)
	}
}

func (r *erig) evalBool(root *graph.Vertex, want bool) {
	r.t.Helper()
	v, ok := r.eval(root)
	if !ok {
		r.t.Fatal("no value produced")
	}
	if v.Kind != graph.KindBool || v.Bool != want {
		r.t.Fatalf("value = %v, want %t", v, want)
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name  string
		build func(b *graph.Builder) *graph.Vertex
		want  int64
	}{
		{"add", func(b *graph.Builder) *graph.Vertex {
			return b.AppN(b.Prim(graph.PrimAdd), b.Int(2), b.Int(3))
		}, 5},
		{"nested", func(b *graph.Builder) *graph.Vertex {
			mul := b.AppN(b.Prim(graph.PrimMul), b.Int(2), b.Int(3))
			sub := b.AppN(b.Prim(graph.PrimSub), b.Int(10), b.Int(4))
			return b.AppN(b.Prim(graph.PrimAdd), mul, sub)
		}, 12},
		{"div", func(b *graph.Builder) *graph.Vertex {
			return b.AppN(b.Prim(graph.PrimDiv), b.Int(17), b.Int(5))
		}, 3},
		{"mod", func(b *graph.Builder) *graph.Vertex {
			return b.AppN(b.Prim(graph.PrimMod), b.Int(17), b.Int(5))
		}, 2},
		{"neg", func(b *graph.Builder) *graph.Vertex {
			return b.App(b.Prim(graph.PrimNeg), b.Int(9))
		}, -9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := newERig(t, 2, 1, false)
			r.evalInt(tt.build(r.b), tt.want)
		})
	}
}

func TestComparisons(t *testing.T) {
	tests := []struct {
		p    graph.Prim
		x, y int64
		want bool
	}{
		{graph.PrimEq, 3, 3, true},
		{graph.PrimEq, 3, 4, false},
		{graph.PrimNe, 3, 4, true},
		{graph.PrimLt, 3, 4, true},
		{graph.PrimLe, 4, 4, true},
		{graph.PrimGt, 5, 4, true},
		{graph.PrimGe, 3, 4, false},
	}
	for _, tt := range tests {
		r := newERig(t, 1, 2, false)
		root := r.b.AppN(r.b.Prim(tt.p), r.b.Int(tt.x), r.b.Int(tt.y))
		r.evalBool(root, tt.want)
	}
}

func TestBooleanOps(t *testing.T) {
	r := newERig(t, 1, 3, false)
	root := r.b.AppN(r.b.Prim(graph.PrimAnd), r.b.Bool(true), r.b.Bool(false))
	r.evalBool(root, false)

	r2 := newERig(t, 1, 3, false)
	root2 := r2.b.AppN(r2.b.Prim(graph.PrimOr), r2.b.Bool(false), r2.b.Bool(true))
	r2.evalBool(root2, true)

	r3 := newERig(t, 1, 3, false)
	root3 := r3.b.App(r3.b.Prim(graph.PrimNot), r3.b.Bool(false))
	r3.evalBool(root3, true)
}

func TestDivisionByZero(t *testing.T) {
	r := newERig(t, 1, 4, false)
	root := r.b.AppN(r.b.Prim(graph.PrimDiv), r.b.Int(1), r.b.Int(0))
	_, ok := r.eval(root)
	if ok {
		t.Fatal("division by zero produced a value")
	}
	if errs := r.engine.Errors(); len(errs) == 0 {
		t.Fatal("expected a runtime error")
	}
}

func TestTypeError(t *testing.T) {
	r := newERig(t, 1, 5, false)
	root := r.b.AppN(r.b.Prim(graph.PrimAdd), r.b.Bool(true), r.b.Int(1))
	if _, ok := r.eval(root); ok {
		t.Fatal("type error produced a value")
	}
	if errs := r.engine.Errors(); len(errs) == 0 {
		t.Fatal("expected a runtime error")
	}
}

func TestApplyNonFunction(t *testing.T) {
	r := newERig(t, 1, 6, false)
	root := r.b.App(r.b.Int(3), r.b.Int(4))
	if _, ok := r.eval(root); ok {
		t.Fatal("applying an int produced a value")
	}
	if errs := r.engine.Errors(); len(errs) == 0 {
		t.Fatal("expected a runtime error")
	}
}

func TestCombinators(t *testing.T) {
	tests := []struct {
		name  string
		build func(b *graph.Builder) *graph.Vertex
		want  int64
	}{
		{"I", func(b *graph.Builder) *graph.Vertex {
			return b.App(b.Comb(graph.CombI), b.Int(42))
		}, 42},
		{"K", func(b *graph.Builder) *graph.Vertex {
			return b.AppN(b.Comb(graph.CombK), b.Int(1), b.Int(2))
		}, 1},
		{"SKK=I", func(b *graph.Builder) *graph.Vertex {
			skk := b.AppN(b.Comb(graph.CombS), b.Comb(graph.CombK), b.Comb(graph.CombK))
			return b.App(skk, b.Int(7))
		}, 7},
		{"B", func(b *graph.Builder) *graph.Vertex {
			// B neg neg 5 → neg (neg 5) = 5
			return b.AppN(b.Comb(graph.CombB),
				b.Prim(graph.PrimNeg), b.Prim(graph.PrimNeg), b.Int(5))
		}, 5},
		{"C", func(b *graph.Builder) *graph.Vertex {
			// C sub 1 5 → (sub 5) 1 = 4
			return b.AppN(b.Comb(graph.CombC),
				b.Prim(graph.PrimSub), b.Int(1), b.Int(5))
		}, 4},
		{"S", func(b *graph.Builder) *graph.Vertex {
			// S add I 7 → add (I 7) (I 7)... S f g x = (f x)(g x):
			// S add neg 7 = (add 7) (neg 7) = 0
			return b.AppN(b.Comb(graph.CombS),
				b.Prim(graph.PrimAdd), b.Prim(graph.PrimNeg), b.Int(7))
		}, 0},
		{"S'", func(b *graph.Builder) *graph.Vertex {
			// S' add I I 7 → add (I 7) (I 7) = 14
			return b.AppN(b.Comb(graph.CombSP),
				b.Prim(graph.PrimAdd), b.Comb(graph.CombI), b.Comb(graph.CombI), b.Int(7))
		}, 14},
		{"B'", func(b *graph.Builder) *graph.Vertex {
			// B' add 3 neg 9 → add 3 (neg 9) = -6
			return b.AppN(b.Comb(graph.CombBP),
				b.Prim(graph.PrimAdd), b.Int(3), b.Prim(graph.PrimNeg), b.Int(9))
		}, -6},
		{"C'", func(b *graph.Builder) *graph.Vertex {
			// C' add neg 5 9 → add (neg 9) 5 = -4
			return b.AppN(b.Comb(graph.CombCP),
				b.Prim(graph.PrimAdd), b.Prim(graph.PrimNeg), b.Int(5), b.Int(9))
		}, -4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := newERig(t, 2, 7, false)
			r.evalInt(tt.build(r.b), tt.want)
		})
	}
}

func TestYCombinator(t *testing.T) {
	// Y (K 42) → K 42 (Y (K 42)) → 42.
	r := newERig(t, 2, 8, false)
	root := r.b.App(r.b.Comb(graph.CombY), r.b.App(r.b.Comb(graph.CombK), r.b.Int(42)))
	r.evalInt(root, 42)
}

func TestIf(t *testing.T) {
	for _, spec := range []bool{false, true} {
		r := newERig(t, 2, 9, spec)
		root := r.b.AppN(r.b.Prim(graph.PrimIf), r.b.Bool(true), r.b.Int(1), r.b.Int(2))
		r.evalInt(root, 1)

		r2 := newERig(t, 2, 9, spec)
		root2 := r2.b.AppN(r2.b.Prim(graph.PrimIf), r2.b.Bool(false), r2.b.Int(1), r2.b.Int(2))
		r2.evalInt(root2, 2)
	}
}

func TestIfComputedPredicate(t *testing.T) {
	r := newERig(t, 2, 10, true)
	pred := r.b.AppN(r.b.Prim(graph.PrimLt), r.b.Int(3), r.b.Int(4))
	thenB := r.b.AppN(r.b.Prim(graph.PrimMul), r.b.Int(6), r.b.Int(7))
	elseB := r.b.AppN(r.b.Prim(graph.PrimAdd), r.b.Int(1), r.b.Int(1))
	root := r.b.AppN(r.b.Prim(graph.PrimIf), pred, thenB, elseB)
	r.evalInt(root, 42)
}

func TestLazinessConsWithBottom(t *testing.T) {
	// head (cons 1 ⊥) = 1: the pair's tail is never forced.
	r := newERig(t, 2, 11, false)
	pair := r.b.AppN(r.b.Prim(graph.PrimCons), r.b.Int(1), r.b.Prim(graph.PrimBottom))
	root := r.b.App(r.b.Prim(graph.PrimHead), pair)
	r.evalInt(root, 1)
}

func TestListOps(t *testing.T) {
	r := newERig(t, 2, 12, false)
	lst := r.b.List(r.b.Int(1), r.b.Int(2), r.b.Int(3))
	// head (tail lst) = 2
	root := r.b.App(r.b.Prim(graph.PrimHead), r.b.App(r.b.Prim(graph.PrimTail), lst))
	r.evalInt(root, 2)

	r2 := newERig(t, 2, 12, false)
	root2 := r2.b.App(r2.b.Prim(graph.PrimIsNil), r2.b.Nil())
	r2.evalBool(root2, true)

	r3 := newERig(t, 2, 12, false)
	lst3 := r3.b.List(r3.b.Int(1))
	root3 := r3.b.App(r3.b.Prim(graph.PrimIsPair), lst3)
	r3.evalBool(root3, true)
}

func TestSeq(t *testing.T) {
	r := newERig(t, 1, 13, false)
	root := r.b.AppN(r.b.Prim(graph.PrimSeq),
		r.b.AppN(r.b.Prim(graph.PrimAdd), r.b.Int(1), r.b.Int(1)), r.b.Int(9))
	r.evalInt(root, 9)
}

func TestSpecReturnsSecond(t *testing.T) {
	r := newERig(t, 2, 14, false)
	work := r.b.AppN(r.b.Prim(graph.PrimMul), r.b.Int(100), r.b.Int(100))
	root := r.b.AppN(r.b.Prim(graph.PrimSpec), work, r.b.Int(5))
	r.evalInt(root, 5)
}

func TestPar(t *testing.T) {
	r := newERig(t, 2, 15, false)
	a := r.b.AppN(r.b.Prim(graph.PrimAdd), r.b.Int(1), r.b.Int(2))
	bb := r.b.AppN(r.b.Prim(graph.PrimMul), r.b.Int(3), r.b.Int(4))
	root := r.b.AppN(r.b.Prim(graph.PrimPar), a, bb)
	r.evalInt(root, 12)
}

func TestPartialApplicationIsWHNF(t *testing.T) {
	r := newERig(t, 1, 16, false)
	root := r.b.App(r.b.Prim(graph.PrimAdd), r.b.Int(1))
	v, ok := r.eval(root)
	if !ok {
		t.Fatal("no value for partial application")
	}
	if v.Kind != graph.KindApply {
		t.Fatalf("value kind = %v, want apply (WHNF partial application)", v.Kind)
	}
	// And it can later be saturated.
	r2 := newERig(t, 1, 16, false)
	plus1 := r2.b.App(r2.b.Prim(graph.PrimAdd), r2.b.Int(1))
	root2 := r2.b.App(plus1, r2.b.Int(41))
	r2.evalInt(root2, 42)
}

func TestSharingEvaluatedOnce(t *testing.T) {
	// (+ s s) with s = (* 3 4): the shared redex s contracts exactly once.
	r := newERig(t, 2, 17, false)
	s := r.b.AppN(r.b.Prim(graph.PrimMul), r.b.Int(3), r.b.Int(4))
	root := r.b.AppN(r.b.Prim(graph.PrimAdd), s, s)
	r.evalInt(root, 24)

	// s flattens once and relabels once; a non-shared evaluation would
	// double that. Count: root flatten + root relabel + s flatten + s
	// relabel = 4 rewrites.
	if got := r.counters.Rewrites.Load(); got != 4 {
		t.Fatalf("rewrites = %d, want 4 (sharing must evaluate s once)", got)
	}
}

func TestDeadlockFig31(t *testing.T) {
	// Figure 3-1: x = x + 1. The demand quiesces without a value; the
	// collector (M_T before M_R) reports the knot as deadlocked.
	r := newERig(t, 2, 18, false)
	hole := r.b.Hole()
	expr := r.b.AppN(r.b.Prim(graph.PrimAdd), hole, r.b.Int(1))
	r.b.Knot(hole, expr) // x = x+1

	val, ok := r.eval(expr)
	if ok {
		t.Fatalf("deadlocked expression produced %v", val)
	}

	col := core.NewCollector(r.store, r.marker, r.mach, r.counters, core.CollectorConfig{
		Root:    expr.ID,
		MTEvery: 1,
	})
	rep := col.RunCycle()
	if !rep.MTRan || !rep.Completed {
		t.Fatalf("cycle: %+v", rep)
	}
	found := false
	for _, id := range rep.Deadlocked {
		if id == expr.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("x=x+1 knot not reported deadlocked; got %v", rep.Deadlocked)
	}
}

func TestIndirectionSelfLoopDeadlocks(t *testing.T) {
	// letrec x = x: an Ind self-loop must quiesce, not spin.
	r := newERig(t, 1, 19, false)
	hole := r.b.Hole()
	r.b.Knot(hole, hole)
	if _, ok := r.eval(hole); ok {
		t.Fatal("x = x produced a value")
	}
}

func TestDeepSpine(t *testing.T) {
	// K applied through a long I chain: I (I (I K)) 1 2 = 1.
	r := newERig(t, 2, 20, false)
	k := r.b.Comb(graph.CombK)
	f := r.b.App(r.b.Comb(graph.CombI), k)
	f = r.b.App(r.b.Comb(graph.CombI), f)
	f = r.b.App(r.b.Comb(graph.CombI), f)
	root := r.b.AppN(f, r.b.Int(1), r.b.Int(2))
	r.evalInt(root, 1)
}

func TestArithTreeManyPEs(t *testing.T) {
	// A balanced (+) tree of depth 6 over ones: value 64, across 8 PEs.
	r := newERig(t, 8, 21, false)
	var buildTree func(d int) *graph.Vertex
	buildTree = func(d int) *graph.Vertex {
		if d == 0 {
			return r.b.Int(1)
		}
		return r.b.AppN(r.b.Prim(graph.PrimAdd), buildTree(d-1), buildTree(d-1))
	}
	r.evalInt(buildTree(6), 64)
	if r.counters.RemoteMessages.Load() == 0 {
		t.Fatal("expected remote messages across 8 PEs")
	}
}

func TestValueOfAndConsParts(t *testing.T) {
	r := newERig(t, 1, 22, false)
	lst := r.b.Cons(r.b.Int(7), r.b.Nil())
	root := r.b.App(r.b.Comb(graph.CombI), lst)
	v, ok := r.eval(root)
	if !ok || v.Kind != graph.KindCons {
		t.Fatalf("value = %v, ok=%v", v, ok)
	}
	h, tl, ok := r.engine.ConsParts(root.ID)
	if !ok {
		t.Fatal("ConsParts failed")
	}
	if hv := r.engine.ValueOf(h); hv.Kind != graph.KindInt || hv.Int != 7 {
		t.Fatalf("head = %v", hv)
	}
	if tv := r.engine.ValueOf(tl); tv.Kind != graph.KindNil {
		t.Fatalf("tail = %v", tv)
	}
}

func TestEvaluationWithConcurrentGC(t *testing.T) {
	// Run GC cycles interleaved with reduction in deterministic mode: the
	// result must be unaffected and marking invariants must hold.
	for seed := int64(0); seed < 10; seed++ {
		r := newERig(t, 4, seed, true)
		// (if (< 3 4) (* 6 7) ⊥) + (K 8 ⊥)
		pred := r.b.AppN(r.b.Prim(graph.PrimLt), r.b.Int(3), r.b.Int(4))
		iff := r.b.AppN(r.b.Prim(graph.PrimIf), pred,
			r.b.AppN(r.b.Prim(graph.PrimMul), r.b.Int(6), r.b.Int(7)),
			r.b.Prim(graph.PrimBottom))
		k8 := r.b.AppN(r.b.Comb(graph.CombK), r.b.Int(8), r.b.Prim(graph.PrimBottom))
		root := r.b.AppN(r.b.Prim(graph.PrimAdd), iff, k8)
		if err := r.b.Err(); err != nil {
			t.Fatal(err)
		}

		col := core.NewCollector(r.store, r.marker, r.mach, r.counters, core.CollectorConfig{
			Root:    root.ID,
			MTEvery: 2,
		})
		ch := r.engine.Demand(root.ID)
		// Interleave: run a few reduction steps, then a whole GC cycle.
		for i := 0; i < 50; i++ {
			for j := 0; j < 5; j++ {
				if !r.mach.Step() {
					break
				}
			}
			col.RunCycle()
		}
		r.mach.RunToQuiescence(2_000_000)
		select {
		case v := <-ch:
			if v.Kind != graph.KindInt || v.Int != 50 {
				t.Fatalf("seed %d: value = %v, want 50", seed, v)
			}
		default:
			t.Fatalf("seed %d: no value (errors: %v)", seed, r.engine.Errors())
		}
	}
}
