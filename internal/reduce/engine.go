// Package reduce implements demand-driven, normal-order graph reduction
// over the distributed computation graph — the "reduction process" of the
// paper, whose tasks propagate between vertices and whose graph mutations
// all flow through internal/core's cooperating mutator primitives so that
// marking may proceed concurrently.
//
// The engine reduces Turner-style combinator graphs (S, K, I, B, C, S',
// B', C', Y) with strict arithmetic/comparison primitives, lazy pairs, and
// the speculative operators (eager if-branches, spec, par) that give rise
// to the paper's eager, reserve and irrelevant tasks.
package reduce

import (
	"fmt"
	"sync"

	"dgr/internal/core"
	"dgr/internal/gm"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/task"
)

// maxIndChain bounds indirection-chain resolution; a longer chain is
// treated as unresolvable (a cyclic knot such as letrec x = x), which
// leaves the demand quiescent so the deadlock detector can find it.
const maxIndChain = 10_000

// Config parameterizes the engine.
type Config struct {
	// SpeculativeIf eagerly requests both branches of every if while its
	// predicate is being computed (§3.2's source of eager — and, after the
	// predicate resolves, irrelevant — tasks).
	SpeculativeIf bool
	// Prog resolves KindSuper leaves to compiled supercombinator bodies
	// (the machine's gm.Program table). Required only when the graph
	// contains compiled supercombinators.
	Prog *gm.Program
	// Counters receives statistics; optional.
	Counters *metrics.Counters
	// Tracing enables causal-lineage propagation: tasks spawned by the
	// engine inherit the trace context stamped on the vertex they originate
	// from, and every executed traced task republishes its context on its
	// destination vertex. Off (the default), spawns pay one boolean test.
	Tracing bool
}

// Value is the WHNF result delivered for a demanded root.
type Value struct {
	ID   graph.VertexID
	Kind graph.Kind
	Int  int64
	Bool bool
	Str  string
}

// String renders the value.
func (v Value) String() string {
	switch v.Kind {
	case graph.KindInt:
		return fmt.Sprintf("%d", v.Int)
	case graph.KindBool:
		return fmt.Sprintf("%t", v.Bool)
	case graph.KindStr:
		return v.Str
	case graph.KindNil:
		return "[]"
	case graph.KindCons:
		return "(cons ...)"
	default:
		return fmt.Sprintf("<%s v%d>", v.Kind, v.ID)
	}
}

// Engine executes the reduction-process tasks (demand, result, reduce).
type Engine struct {
	store *graph.Store
	mach  *sched.Machine
	mut   *core.Mutator
	cfg   Config

	mu          sync.Mutex
	rootWaiters map[graph.VertexID][]chan Value
	errs        []error
	// probes maps pending is-bottom probe vertices to their operand; they
	// are resolved to true by ResolveBottomProbes when the deadlock
	// detector finds the probe itself deadlocked (footnote 5).
	probes map[graph.VertexID]graph.VertexID
}

var _ sched.Handler = (*Engine)(nil)

// New builds an engine.
func New(store *graph.Store, mach *sched.Machine, mut *core.Mutator, cfg Config) *Engine {
	return &Engine{
		store:       store,
		mach:        mach,
		mut:         mut,
		cfg:         cfg,
		rootWaiters: make(map[graph.VertexID][]chan Value),
		probes:      make(map[graph.VertexID]graph.VertexID),
	}
}

// ResolveBottomProbes implements footnote 5's is-bottom pseudo-function:
// given the vertices newly identified as deadlocked, every pending probe
// that is itself deadlocked (it vitally awaits a value that can never
// arrive) is resolved to true, un-sticking its requesters. The probe's
// operand edges are dropped, so an otherwise-unreachable deadlocked region
// becomes garbage and is reclaimed by the next cycle. It returns the
// resolved probe vertices.
//
// As the paper warns, is-bottom is non-monotonic: resolving a probe makes
// a "deadlocked" vertex produce a value after all, so callers must drop
// the resolved probes from any stable deadlock record.
func (e *Engine) ResolveBottomProbes(deadlocked []graph.VertexID) []graph.VertexID {
	if len(deadlocked) == 0 {
		return nil
	}
	dead := make(map[graph.VertexID]bool, len(deadlocked))
	for _, id := range deadlocked {
		dead[id] = true
	}
	e.mu.Lock()
	var hit []graph.VertexID
	for p := range e.probes {
		if dead[p] {
			hit = append(hit, p)
			delete(e.probes, p)
		}
	}
	e.mu.Unlock()

	var resolved []graph.VertexID
	for _, p := range hit {
		v := e.store.Vertex(p)
		if v == nil {
			continue
		}
		v.Lock()
		isProbe := v.Kind == graph.KindPrimApp && graph.Prim(v.Val) == graph.PrimIsBotOp
		v.Unlock()
		if !isProbe {
			continue
		}
		e.finishBool(v, true)
		resolved = append(resolved, p)
	}
	return resolved
}

// registerProbe records a pending is-bottom probe.
func (e *Engine) registerProbe(probe, operand graph.VertexID) {
	e.mu.Lock()
	e.probes[probe] = operand
	e.mu.Unlock()
}

// unregisterProbe drops a probe whose operand produced a value.
func (e *Engine) unregisterProbe(probe graph.VertexID) {
	e.mu.Lock()
	delete(e.probes, probe)
	e.mu.Unlock()
}

// Errors returns the runtime (type) errors encountered so far.
func (e *Engine) Errors() []error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]error(nil), e.errs...)
}

func (e *Engine) fail(v *graph.Vertex, format string, args ...any) {
	e.mu.Lock()
	e.errs = append(e.errs, fmt.Errorf("v%d: %s", v.ID, fmt.Sprintf(format, args...)))
	e.mu.Unlock()
}

// Demand requests the value of root (the initial <-,root> task). The
// returned channel receives the WHNF value once computed; it never fires
// for a deadlocked or nonterminating computation.
func (e *Engine) Demand(root graph.VertexID) <-chan Value {
	return e.DemandTraced(root, 0, 0)
}

// DemandTraced is Demand with an explicit causal-lineage context: the root
// demand — and, transitively, every task its reduction spawns — belongs to
// trace, with parent as the root demand's causal parent span (the serving
// layer's eval span). A zero trace is an ordinary untraced Demand.
func (e *Engine) DemandTraced(root graph.VertexID, trace uint64, parent uint32) <-chan Value {
	ch := make(chan Value, 1)
	e.mu.Lock()
	e.rootWaiters[root] = append(e.rootWaiters[root], ch)
	e.mu.Unlock()
	t := task.Task{Kind: task.Demand, Src: graph.NilVertex, Dst: root, Req: graph.ReqVital, Trace: trace}
	t.SetParentSpan(parent)
	e.spawn(t)
	return ch
}

// spawn enqueues a reduction task, then cooperates with any active M_T
// cycle: a task spawned after the cycle's pool snapshot is the sole carrier
// of task-reachability to its endpoints, so they must be registered as
// extra marking roots or the deadlock detector can misreport them. The
// push comes first: were cooperation checked before the push, a cycle
// beginning between the two (coop sees no active cycle, snapshot misses
// the not-yet-pushed task) would leave the task invisible to both views.
// Pushing first makes the pair airtight — a snapshot after the push sees
// the task queued, and a cycle activated before the push is active when
// the cooperation check runs.
func (e *Engine) spawn(t task.Task) {
	if e.cfg.Tracing && t.Trace == 0 {
		e.inheritTrace(&t)
	}
	e.mach.Spawn(t)
	e.mut.CoopTaskSpawn(t.Src, t.Dst)
}

// inheritTrace stamps a spawned task with the lineage context published on
// the vertex it causally originates from (Src; Dst for sourceless
// self-continuations). The reduction handlers release every vertex lock
// before spawning, so the brief acquisition here nests inside nothing.
func (e *Engine) inheritTrace(t *task.Task) {
	id := t.Src
	if id == graph.NilVertex {
		id = t.Dst
	}
	v := e.store.Vertex(id)
	if v == nil {
		return
	}
	v.Lock()
	if v.Kind != graph.KindFree && v.Red.Trace != 0 {
		t.Trace = v.Red.Trace
		t.SetParentSpan(v.Red.TraceSpan)
	}
	v.Unlock()
}

// publishTrace stamps the executing traced task's context on its
// destination vertex, making the task the causal parent of everything the
// reduction spawns from there. RedState is opaque to the marking machinery
// and zeroed on reclamation, so the stamp cannot outlive the vertex.
func (e *Engine) publishTrace(t task.Task) {
	v := e.store.Vertex(t.Dst)
	if v == nil {
		return
	}
	v.Lock()
	if v.Kind != graph.KindFree {
		v.Red.Trace = t.Trace
		v.Red.TraceSpan = t.Span()
	}
	v.Unlock()
}

// Handle implements sched.Handler for reduction tasks.
func (e *Engine) Handle(t task.Task) {
	if t.Trace != 0 {
		e.publishTrace(t)
	}
	switch t.Kind {
	case task.Demand:
		e.handleDemand(t)
	case task.Result, task.Reduce:
		e.step(t.Dst)
	}
}

// ---- demand handling ----

func (e *Engine) handleDemand(t task.Task) {
	v := e.store.Vertex(t.Dst)
	if v == nil {
		return
	}
	kind := t.Req
	if kind == graph.ReqNone {
		// Reprioritized reserve demands execute as eager requests.
		kind = graph.ReqEager
	}

	v.Lock()
	if v.Kind == graph.KindFree {
		// Destination reclaimed: the task was irrelevant.
		v.Unlock()
		return
	}
	whnf := e.whnfLocked(v)
	v.Unlock()

	if whnf {
		e.reply(v, t.Src)
		return
	}

	if t.Src == graph.NilVertex {
		// Root demand: the waiter was registered by Demand.
	} else if src := e.store.Vertex(t.Src); src != nil {
		// "The execution of a task <s,v> results in adding s to
		// requested(v)" — with M_T cooperation.
		e.mut.AddRequesterCoop(v, src, kind)
	}

	// Re-check: v may have reached WHNF between the first check and the
	// registration; complete() drains the just-added requester.
	v.Lock()
	if e.whnfLocked(v) {
		v.Unlock()
		e.complete(v)
		return
	}
	start := !v.Red.Evaluating
	if start {
		v.Red.Evaluating = true
		v.Red.SpineHint = t.Src
	}
	v.Unlock()
	if start {
		e.spawnReduce(v.ID)
	}
}

// reply sends v's (already WHNF) value to a single requester or root waiter.
func (e *Engine) reply(v *graph.Vertex, src graph.VertexID) {
	if src == graph.NilVertex {
		e.notifyRoot(v)
		return
	}
	e.spawn(task.Task{Kind: task.Result, Src: v.ID, Dst: src})
}

// complete finishes v's evaluation: replies to every requester (removing
// them from requested(v) and resetting their request edges, per reduction
// axiom 5's contrapositive) and notifies root waiters.
//
// The Result is spawned before CompleteRequest tears the backlink down:
// the requester's T-coverage may flow entirely through requested(v) (v's
// subtree holds the only live tasks), so removing it first would leave
// the requester task-unreachable until the spawn lands — an unbounded
// window under goroutine preemption, and a false-deadlock source. The
// queued Result (Dst = requester) covers it through the transition.
func (e *Engine) complete(v *graph.Vertex) {
	v.Lock()
	if !e.whnfLocked(v) {
		v.Unlock()
		return
	}
	v.Red.Evaluating = false
	v.Red.WHNF = true
	reqs := append([]graph.Requester(nil), v.Requested...)
	v.Unlock()

	for _, r := range reqs {
		src := e.store.Vertex(r.Src)
		if src == nil {
			continue
		}
		e.spawn(task.Task{Kind: task.Result, Src: v.ID, Dst: r.Src})
		e.mut.CompleteRequest(src, v)
	}
	e.notifyRoot(v)
}

func (e *Engine) notifyRoot(v *graph.Vertex) {
	e.mu.Lock()
	chans := e.rootWaiters[v.ID]
	delete(e.rootWaiters, v.ID)
	e.mu.Unlock()
	if len(chans) == 0 {
		return
	}
	val := e.ValueOf(v.ID)
	for _, ch := range chans {
		ch <- val
	}
}

func (e *Engine) spawnReduce(id graph.VertexID) {
	e.spawn(task.Task{Kind: task.Reduce, Dst: id})
}

// demandKind computes the urgency with which v should request its own
// operands: vital if anyone vitally awaits v (or it is a root), else eager.
func (e *Engine) demandKind(v *graph.Vertex) graph.ReqKind {
	v.Lock()
	kind := graph.ReqEager
	for _, r := range v.Requested {
		if r.Kind == graph.ReqVital {
			kind = graph.ReqVital
			break
		}
	}
	id := v.ID
	v.Unlock()
	if kind == graph.ReqVital {
		return kind
	}
	e.mu.Lock()
	if len(e.rootWaiters[id]) > 0 {
		kind = graph.ReqVital
	}
	e.mu.Unlock()
	return kind
}

// demandFrom spawns a demand from parent for child's value, then records
// the request kind on the parent's edge. The spawn MUST come first: the
// model's invariant is that "a task has been spawned on each element of
// req-args(v)", and moving the edge into req-args removes the child from
// C(parent) — M_T stops tracing it downward — so from that instant the
// demand task is the child's only carrier of task-reachability. Setting
// the edge first opens a window (unbounded, if this goroutine is
// preempted) in which the child is covered by neither the parent's edge
// nor any task, and the deadlock detector confirms it as a false
// positive. Spawning first only over-covers: until the edge moves, the
// child is traced both via C(parent) and via the queued task. If the edge
// vanished under a concurrent rewrite the spawned demand is moot but
// harmless (the handler tolerates it). Already-requested edges are not
// re-demanded unless the kind is being upgraded.
func (e *Engine) demandFrom(parent *graph.Vertex, childID graph.VertexID, kind graph.ReqKind) {
	child := e.store.Vertex(childID)
	if child == nil {
		return
	}
	parent.Lock()
	cur := parent.ReqKindOf(childID)
	parent.Unlock()
	if cur >= kind && cur != graph.ReqNone {
		return // already requested at sufficient urgency
	}
	e.spawn(task.Task{Kind: task.Demand, Src: parent.ID, Dst: childID, Req: kind})
	e.mut.SetRequestKind(parent, child, kind)
}

// demandOperand demands a strict operand of a compiled-super redex on
// behalf of v. The operand's arg edge may live on an inner spine vertex
// (owner) rather than on v itself; the request kind goes on the owning
// edge — the path the marker propagates priorities along — while the
// demand task names v as the requester, so completion re-steps the
// saturated apply. Inner spines can be shared between several saturated
// applications, so duplicate-demand suppression keys on the child's
// requester list (per requester), not on the owning edge.
func (e *Engine) demandOperand(v *graph.Vertex, ownerID, childID graph.VertexID, kind graph.ReqKind) {
	if ownerID == v.ID {
		e.demandFrom(v, childID, kind)
		return
	}
	owner := e.store.Vertex(ownerID)
	child := e.store.Vertex(childID)
	if owner == nil || child == nil {
		return
	}
	child.Lock()
	for _, r := range child.Requested {
		if r.Src == v.ID && r.Kind >= kind {
			child.Unlock()
			return // v already awaits this operand at sufficient urgency
		}
	}
	child.Unlock()
	// Spawn before annotating the owning edge, for the same reason as
	// demandFrom: once the edge enters req-args the task is the operand's
	// only task-reachability carrier, so it must already be queued. The
	// edge may have vanished under a concurrent rewrite of the spine; the
	// demand is still sound (v re-collects the spine when re-stepped).
	e.spawn(task.Task{Kind: task.Demand, Src: v.ID, Dst: childID, Req: kind})
	e.mut.SetRequestKind(owner, child, kind)
}

// ---- WHNF machinery ----

// whnfLocked reports whether v is in weak head normal form. Caller holds
// v's lock.
func (e *Engine) whnfLocked(v *graph.Vertex) bool {
	switch v.Kind {
	case graph.KindInt, graph.KindBool, graph.KindStr, graph.KindNil,
		graph.KindCons, graph.KindComb, graph.KindSuper:
		return true
	case graph.KindPrim:
		return graph.Prim(v.Val) != graph.PrimBottom
	case graph.KindApply, graph.KindPrimApp, graph.KindInd:
		return v.Red.WHNF
	default: // Hole, Free
		return false
	}
}

// resolveInd follows indirection chains to the first non-indirection
// vertex, or nil if the chain is cyclic/dangling.
func (e *Engine) resolveInd(id graph.VertexID) *graph.Vertex {
	for i := 0; i < maxIndChain; i++ {
		v := e.store.Vertex(id)
		if v == nil {
			return nil
		}
		v.Lock()
		if v.Kind != graph.KindInd {
			v.Unlock()
			return v
		}
		if len(v.Args) == 0 {
			v.Unlock()
			return nil
		}
		id = v.Args[0]
		v.Unlock()
	}
	return nil
}

// resolveWHNF follows indirections and reports the final vertex and
// whether it is in WHNF.
func (e *Engine) resolveWHNF(id graph.VertexID) (*graph.Vertex, bool) {
	v := e.resolveInd(id)
	if v == nil {
		return nil, false
	}
	v.Lock()
	defer v.Unlock()
	return v, e.whnfLocked(v)
}

// ---- the reduction step ----

// step makes progress on vertex id toward WHNF. It is invoked by Reduce
// and Result tasks and is idempotent: a step that cannot progress leaves
// the vertex quiescent until the awaited results arrive (or forever, in
// which case the vertex is deadlocked and M_T/M_R will say so).
func (e *Engine) step(id graph.VertexID) {
	v := e.store.Vertex(id)
	if v == nil {
		return
	}
	v.Lock()
	kind := v.Kind
	whnf := e.whnfLocked(v)
	v.Unlock()

	if whnf {
		e.complete(v)
		return
	}

	switch kind {
	case graph.KindFree, graph.KindHole:
		return // reclaimed, or a stuck placeholder (deadlock candidate)
	case graph.KindPrim:
		// Only ⊥ reaches here: tie the Figure 3-1 self-knot and go quiet.
		e.mut.MakeSelfKnot(v)
		return
	case graph.KindInd:
		e.stepInd(v)
	case graph.KindApply:
		e.stepApply(v)
	case graph.KindPrimApp:
		e.stepPrimApp(v)
	}
}

func (e *Engine) stepInd(v *graph.Vertex) {
	v.Lock()
	if v.Kind != graph.KindInd || len(v.Args) == 0 {
		v.Unlock()
		e.spawnReduce(v.ID)
		return
	}
	target := v.Args[0]
	v.Unlock()

	final, whnf := e.resolveWHNF(target)
	if whnf {
		v.Lock()
		v.Red.WHNF = true
		v.Unlock()
		e.complete(v)
		return
	}
	if final == nil {
		// Cyclic indirection knot (letrec x = x): stuck; deadlock detection
		// will report it. Leave a vital self-request so the shape matches
		// Figure 3-1.
		e.mut.MakeSelfKnot(v)
		return
	}
	e.demandFrom(v, target, e.demandKind(v))
}

// spine is a collected partial-application spine: the head leaf plus the
// operands in application order.
type spine struct {
	head *graph.Vertex
	ops  []graph.VertexID
	// owners[i] is the apply vertex whose operand edge holds ops[i]. A
	// strict-operand demand must record its request kind on that edge —
	// the marker propagates priorities along arg edges, so annotating the
	// saturated apply (which has no edge to an inner operand) would hide
	// the operand from deadlock detection.
	owners []graph.VertexID
}

// maxSpineLen bounds a partial-application spine walk. A legal spine is
// acyclic, so its length is bounded by the store's live vertex count; a
// longer walk means reclamation corruption (e.g. a skipped mark freeing a
// live vertex that was then re-allocated) spliced the spine into a cycle,
// and following it would never terminate.
const maxSpineLen = 1 << 20

// collectSpine walks a WHNF partial application down its function edges
// (through indirections), gathering operands. ok is false if the
// structure changed underfoot or an indirection dangles; cyclic is true
// if the walk exceeded maxSpineLen, which only a corrupted (cyclic)
// spine can do.
func (e *Engine) collectSpine(f *graph.Vertex) (sp spine, ok, cyclic bool) {
	cur := f
	for {
		if len(sp.ops) > maxSpineLen {
			return sp, false, true
		}
		cur.Lock()
		if cur.Kind != graph.KindApply {
			cur.Unlock()
			break
		}
		if len(cur.Args) != 2 {
			cur.Unlock()
			return sp, false, false
		}
		fun, arg := cur.Args[0], cur.Args[1]
		cur.Unlock()
		sp.ops = append(sp.ops, arg)
		sp.owners = append(sp.owners, cur.ID)
		next := e.resolveInd(fun)
		if next == nil {
			return sp, false, false
		}
		cur = next
	}
	// Operands were collected outermost-first; reverse to application order.
	for i, j := 0, len(sp.ops)-1; i < j; i, j = i+1, j-1 {
		sp.ops[i], sp.ops[j] = sp.ops[j], sp.ops[i]
		sp.owners[i], sp.owners[j] = sp.owners[j], sp.owners[i]
	}
	sp.head = cur
	return sp, true, false
}

func (e *Engine) stepApply(v *graph.Vertex) {
	v.Lock()
	if v.Kind != graph.KindApply {
		v.Unlock()
		e.spawnReduce(v.ID)
		return
	}
	if len(v.Args) != 2 {
		v.Unlock()
		e.fail(v, "apply vertex with %d args", len(v.Args))
		return
	}
	funID, argID := v.Args[0], v.Args[1]
	v.Unlock()

	f, whnf := e.resolveWHNF(funID)
	if f == nil {
		// Dangling or cyclic function position: stuck.
		e.mut.MakeSelfKnot(v)
		return
	}
	if !whnf {
		e.demandFrom(v, funID, e.demandKind(v))
		return
	}

	// f is a stable WHNF function value; collect its spine.
	f.Lock()
	fk := f.Kind
	f.Unlock()
	switch fk {
	case graph.KindApply:
		sp, ok, cyclic := e.collectSpine(f)
		if cyclic {
			// Permanent, not transient: respawning would walk the same
			// cycle every step. Surface it as an engine error instead.
			e.fail(v, "cyclic application spine at v%d", f.ID)
			return
		}
		if !ok {
			e.spawnReduce(v.ID)
			return
		}
		e.applySaturation(v, sp, argID)
	case graph.KindComb, graph.KindPrim, graph.KindSuper:
		e.applySaturation(v, spine{head: f}, argID)
	case graph.KindCons, graph.KindNil, graph.KindInt, graph.KindBool, graph.KindStr:
		e.fail(v, "cannot apply non-function %s", fk)
	default:
		e.fail(v, "cannot apply %s", fk)
	}
}

// applySaturation decides whether v (supplying one more operand to the
// WHNF function sp) saturates a redex, and contracts it if so.
func (e *Engine) applySaturation(v *graph.Vertex, sp spine, argID graph.VertexID) {
	ops := append(append([]graph.VertexID(nil), sp.ops...), argID)
	owners := append(append([]graph.VertexID(nil), sp.owners...), v.ID)
	head := sp.head
	head.Lock()
	hk, hv := head.Kind, head.Val
	head.Unlock()

	switch hk {
	case graph.KindComb:
		c := graph.Comb(hv)
		ar := c.Arity()
		if ar == 0 {
			e.fail(v, "combinator %v with arity 0", c)
			return
		}
		if len(ops) < ar {
			e.markPartial(v)
			return
		}
		e.contract(v, c, ops)
		if e.cfg.Counters != nil {
			e.cfg.Counters.Rewrites.Add(1)
		}
		e.spawnReduce(v.ID)
	case graph.KindPrim:
		p := graph.Prim(hv)
		ar := p.Arity()
		if ar == 0 {
			e.fail(v, "applying nullary primitive %v", p)
			return
		}
		if len(ops) < ar {
			e.markPartial(v)
			return
		}
		e.flattenPrim(v, p, ops)
		if e.cfg.Counters != nil {
			e.cfg.Counters.Rewrites.Add(1)
		}
		e.spawnReduce(v.ID)
	case graph.KindSuper:
		if e.cfg.Prog == nil {
			e.fail(v, "supercombinator $%d without a compiled program", hv)
			return
		}
		sup := e.cfg.Prog.Super(int(hv))
		if sup == nil {
			e.fail(v, "unknown supercombinator $%d", hv)
			return
		}
		if len(ops) < sup.Arity {
			e.markPartial(v)
			return
		}
		// Force strict operands first (the analysis guarantees the body
		// forces them anyway), so body execution sees known values and can
		// fold arithmetic and branch selection instead of building the
		// corresponding subgraphs. A cyclic operand proceeds unforced: the
		// built body exposes the knot to deadlock detection as usual.
		waiting := false
		var kind graph.ReqKind
		for i, strict := range sup.Strict {
			if !strict {
				continue
			}
			final, whnf := e.resolveWHNF(ops[i])
			if whnf || final == nil {
				continue
			}
			if !waiting {
				kind = e.demandKind(v)
			}
			e.demandOperand(v, owners[i], ops[i], kind)
			waiting = true
		}
		if waiting {
			return
		}
		done, value := e.execSuper(v, sup, ops)
		if !done {
			return
		}
		if e.cfg.Counters != nil {
			e.cfg.Counters.Rewrites.Add(1)
		}
		if value {
			// The body folded all the way to a literal root: v is already
			// WHNF; complete it without another scheduler round trip.
			v.Lock()
			v.Red.WHNF = true
			v.Unlock()
			e.complete(v)
			return
		}
		e.spawnReduce(v.ID)
	default:
		e.fail(v, "cannot apply %s", hk)
	}
}

// markPartial records that v is an under-applied (hence WHNF) application.
func (e *Engine) markPartial(v *graph.Vertex) {
	v.Lock()
	v.Red.WHNF = true
	v.Unlock()
	e.complete(v)
}

// vs resolves a list of IDs to vertices (for lock sets).
func (e *Engine) vs(ids ...graph.VertexID) []*graph.Vertex {
	out := make([]*graph.Vertex, 0, len(ids))
	for _, id := range ids {
		if w := e.store.Vertex(id); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// contract performs one combinator contraction, rewriting v in place.
func (e *Engine) contract(v *graph.Vertex, c graph.Comb, ops []graph.VertexID) {
	part := v.Part
	freshApply := func() *graph.Vertex {
		n, err := e.mut.Alloc(part, graph.KindApply, 0)
		if err != nil {
			e.fail(v, "out of free vertices: %v", err)
			return nil
		}
		return n
	}
	wire := func(n *graph.Vertex, fun, arg graph.VertexID) {
		n.Args = append(n.Args[:0], fun, arg)
		n.ReqKinds = append(n.ReqKinds[:0], graph.ReqNone, graph.ReqNone)
	}
	setV := func(fun, arg graph.VertexID) {
		v.Kind = graph.KindApply
		v.Val = 0
		v.Args = append(v.Args[:0], fun, arg)
		v.ReqKinds = append(v.ReqKinds[:0], graph.ReqNone, graph.ReqNone)
	}

	switch c {
	case graph.CombI: // I x → x
		if t := e.store.Vertex(ops[0]); t != nil {
			e.mut.CollapseToInd(v, t)
		}
	case graph.CombK: // K x y → x
		if t := e.store.Vertex(ops[0]); t != nil {
			e.mut.CollapseToInd(v, t)
		}
	case graph.CombS: // S f g x → (f x) (g x)
		n1, n2 := freshApply(), freshApply()
		if n1 == nil || n2 == nil {
			return
		}
		e.mut.Rewrite(v, []*graph.Vertex{n1, n2}, e.vs(ops...), func() {
			wire(n1, ops[0], ops[2])
			wire(n2, ops[1], ops[2])
			setV(n1.ID, n2.ID)
		})
	case graph.CombB: // B f g x → f (g x)
		n1 := freshApply()
		if n1 == nil {
			return
		}
		e.mut.Rewrite(v, []*graph.Vertex{n1}, e.vs(ops...), func() {
			wire(n1, ops[1], ops[2])
			setV(ops[0], n1.ID)
		})
	case graph.CombC: // C f g x → (f x) g
		n1 := freshApply()
		if n1 == nil {
			return
		}
		e.mut.Rewrite(v, []*graph.Vertex{n1}, e.vs(ops...), func() {
			wire(n1, ops[0], ops[2])
			setV(n1.ID, ops[1])
		})
	case graph.CombSP: // S' k f g x → k (f x) (g x)
		n1, n2, n3 := freshApply(), freshApply(), freshApply()
		if n1 == nil || n2 == nil || n3 == nil {
			return
		}
		e.mut.Rewrite(v, []*graph.Vertex{n1, n2, n3}, e.vs(ops...), func() {
			wire(n1, ops[1], ops[3])
			wire(n2, ops[2], ops[3])
			wire(n3, ops[0], n1.ID)
			setV(n3.ID, n2.ID)
		})
	case graph.CombBP: // B' k f g x → k f (g x)
		n1, n2 := freshApply(), freshApply()
		if n1 == nil || n2 == nil {
			return
		}
		e.mut.Rewrite(v, []*graph.Vertex{n1, n2}, e.vs(ops...), func() {
			wire(n1, ops[0], ops[1])
			wire(n2, ops[2], ops[3])
			setV(n1.ID, n2.ID)
		})
	case graph.CombCP: // C' k f g x → k (f x) g
		n1, n2 := freshApply(), freshApply()
		if n1 == nil || n2 == nil {
			return
		}
		e.mut.Rewrite(v, []*graph.Vertex{n1, n2}, e.vs(ops...), func() {
			wire(n2, ops[1], ops[3])
			wire(n1, ops[0], n2.ID)
			setV(n1.ID, ops[2])
		})
	case graph.CombY: // Y f → f (Y f), as a cyclic knot: v := f v
		e.mut.Rewrite(v, nil, e.vs(ops[0]), func() {
			setV(ops[0], v.ID)
		})
	default:
		e.fail(v, "unknown combinator %v", c)
	}
}

// flattenPrim rewrites the saturated prim redex v into the flat PrimApp
// form with the operands as direct children — making v's operand requests
// legal req-args(v) entries, as the model requires.
func (e *Engine) flattenPrim(v *graph.Vertex, p graph.Prim, ops []graph.VertexID) {
	e.mut.Rewrite(v, nil, e.vs(ops...), func() {
		v.Kind = graph.KindPrimApp
		v.Val = int64(p)
		v.Args = append(v.Args[:0], ops...)
		v.ReqKinds = v.ReqKinds[:0]
		for range ops {
			v.ReqKinds = append(v.ReqKinds, graph.ReqNone)
		}
	})
}
