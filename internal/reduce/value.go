package reduce

import (
	"dgr/internal/graph"
	"dgr/internal/task"
)

func taskDemandEager(src, dst graph.VertexID) task.Task {
	return task.Task{Kind: task.Demand, Src: src, Dst: dst, Req: graph.ReqEager}
}

// ValueOf resolves id through indirections and returns its current value.
// For vertices not yet in WHNF the Kind reflects the unevaluated form.
func (e *Engine) ValueOf(id graph.VertexID) Value {
	v := e.resolveInd(id)
	if v == nil {
		return Value{ID: id, Kind: graph.KindHole}
	}
	v.Lock()
	defer v.Unlock()
	val := Value{ID: v.ID, Kind: v.Kind, Int: v.Val}
	switch v.Kind {
	case graph.KindBool:
		val.Bool = v.Val != 0
	case graph.KindStr:
		val.Str = e.store.StringAt(v.Val)
	}
	return val
}

// ConsParts returns the head and tail vertex IDs of a WHNF cons value.
func (e *Engine) ConsParts(id graph.VertexID) (head, tail graph.VertexID, ok bool) {
	v := e.resolveInd(id)
	if v == nil {
		return 0, 0, false
	}
	v.Lock()
	defer v.Unlock()
	if v.Kind != graph.KindCons || len(v.Args) != 2 {
		return 0, 0, false
	}
	return v.Args[0], v.Args[1], true
}
