package reduce

import (
	"dgr/internal/graph"
)

// operand fetches the i-th operand edge of the PrimApp v.
func (e *Engine) operand(v *graph.Vertex, i int) (graph.VertexID, bool) {
	v.Lock()
	defer v.Unlock()
	if v.Kind != graph.KindPrimApp || i >= len(v.Args) {
		return graph.NilVertex, false
	}
	return v.Args[i], true
}

// needValue resolves operand i to a WHNF vertex, demanding it with the
// given kind if not yet available. Returns (vertex, true) when ready.
func (e *Engine) needValue(v *graph.Vertex, i int, kind graph.ReqKind) (*graph.Vertex, bool) {
	op, ok := e.operand(v, i)
	if !ok {
		return nil, false
	}
	final, whnf := e.resolveWHNF(op)
	if whnf {
		return final, true
	}
	if final == nil {
		// Cyclic operand: quiesce; deadlock detection reports it.
		return nil, false
	}
	e.demandFrom(v, op, kind)
	return nil, false
}

// intOf extracts an integer from a WHNF vertex.
func (e *Engine) intOf(v, w *graph.Vertex) (int64, bool) {
	w.Lock()
	defer w.Unlock()
	if w.Kind != graph.KindInt {
		e.failKind(v, w, "int")
		return 0, false
	}
	return w.Val, true
}

// boolOf extracts a boolean from a WHNF vertex.
func (e *Engine) boolOf(v, w *graph.Vertex) (bool, bool) {
	w.Lock()
	defer w.Unlock()
	if w.Kind != graph.KindBool {
		e.failKind(v, w, "bool")
		return false, false
	}
	return w.Val != 0, true
}

func (e *Engine) failKind(v, w *graph.Vertex, want string) {
	e.fail(v, "operand v%d has kind %s, want %s", w.ID, w.Kind, want)
}

// finishLeaf relabels v to a literal leaf and completes it.
func (e *Engine) finishLeaf(v *graph.Vertex, kind graph.Kind, val int64) {
	e.mut.RelabelLeaf(v, kind, val)
	v.Lock()
	v.Red.WHNF = true
	v.Unlock()
	if e.cfg.Counters != nil {
		e.cfg.Counters.Rewrites.Add(1)
	}
	e.complete(v)
}

// finishBool is finishLeaf for booleans.
func (e *Engine) finishBool(v *graph.Vertex, b bool) {
	var n int64
	if b {
		n = 1
	}
	e.finishLeaf(v, graph.KindBool, n)
}

// collapseTo rewrites v to an indirection to its direct child at operand
// index i and continues reduction.
func (e *Engine) collapseToOperand(v *graph.Vertex, i int) {
	op, ok := e.operand(v, i)
	if !ok {
		return
	}
	c := e.store.Vertex(op)
	if c == nil {
		return
	}
	e.mut.CollapseToIndDirect(v, c)
	if e.cfg.Counters != nil {
		e.cfg.Counters.Rewrites.Add(1)
	}
	e.spawnReduce(v.ID)
}

// stepPrimApp reduces a flattened primitive application.
func (e *Engine) stepPrimApp(v *graph.Vertex) {
	v.Lock()
	if v.Kind != graph.KindPrimApp {
		v.Unlock()
		e.spawnReduce(v.ID)
		return
	}
	p := graph.Prim(v.Val)
	v.Unlock()

	kind := e.demandKind(v)

	switch p {
	case graph.PrimAdd, graph.PrimSub, graph.PrimMul, graph.PrimDiv,
		graph.PrimMod, graph.PrimEq, graph.PrimNe, graph.PrimLt,
		graph.PrimLe, graph.PrimGt, graph.PrimGe:
		e.stepBinArith(v, p, kind)
	case graph.PrimNeg, graph.PrimNot:
		e.stepUnary(v, p, kind)
	case graph.PrimAnd, graph.PrimOr:
		e.stepBoolBin(v, p, kind)
	case graph.PrimIf:
		e.stepIf(v, kind)
	case graph.PrimCons:
		v.Lock()
		v.Kind = graph.KindCons
		v.Val = 0
		v.Red.WHNF = true
		v.Unlock()
		e.complete(v)
	case graph.PrimHead, graph.PrimTail:
		e.stepHeadTail(v, p, kind)
	case graph.PrimIsNil, graph.PrimIsPair:
		w, ok := e.needValue(v, 0, kind)
		if !ok {
			return
		}
		w.Lock()
		wk := w.Kind
		w.Unlock()
		if p == graph.PrimIsNil {
			e.finishBool(v, wk == graph.KindNil)
		} else {
			e.finishBool(v, wk == graph.KindCons)
		}
	case graph.PrimSeq:
		if _, ok := e.needValue(v, 0, kind); !ok {
			return
		}
		e.collapseToOperand(v, 1)
	case graph.PrimSpec:
		e.stepSpec(v)
	case graph.PrimPar:
		a, okA := e.needValue(v, 0, kind)
		b, okB := e.needValue(v, 1, kind)
		if !okA || !okB {
			return
		}
		_, _ = a, b
		e.collapseToOperand(v, 1)
	case graph.PrimIsBotOp:
		// Footnote 5's non-monotonic probe: the operand is demanded
		// vitally; if its value arrives the probe is false. If instead
		// the probe itself is later found deadlocked (its operand can
		// never return), ResolveBottomProbes relabels it true.
		op, okOp := e.operand(v, 0)
		if okOp {
			e.registerProbe(v.ID, op)
		}
		if _, ok := e.needValue(v, 0, graph.ReqVital); !ok {
			return
		}
		e.unregisterProbe(v.ID)
		e.finishBool(v, false)
	default:
		e.fail(v, "unknown primitive %v", p)
	}
}

func (e *Engine) stepBinArith(v *graph.Vertex, p graph.Prim, kind graph.ReqKind) {
	// Demand both before testing, so the operands evaluate in parallel.
	a, okA := e.needValue(v, 0, kind)
	b, okB := e.needValue(v, 1, kind)
	if !okA || !okB {
		return
	}
	x, ok := e.intOf(v, a)
	if !ok {
		return
	}
	y, ok := e.intOf(v, b)
	if !ok {
		return
	}
	switch p {
	case graph.PrimAdd:
		e.finishLeaf(v, graph.KindInt, x+y)
	case graph.PrimSub:
		e.finishLeaf(v, graph.KindInt, x-y)
	case graph.PrimMul:
		e.finishLeaf(v, graph.KindInt, x*y)
	case graph.PrimDiv:
		if y == 0 {
			e.fail(v, "division by zero")
			return
		}
		e.finishLeaf(v, graph.KindInt, x/y)
	case graph.PrimMod:
		if y == 0 {
			e.fail(v, "modulo by zero")
			return
		}
		e.finishLeaf(v, graph.KindInt, x%y)
	case graph.PrimEq:
		e.finishBool(v, x == y)
	case graph.PrimNe:
		e.finishBool(v, x != y)
	case graph.PrimLt:
		e.finishBool(v, x < y)
	case graph.PrimLe:
		e.finishBool(v, x <= y)
	case graph.PrimGt:
		e.finishBool(v, x > y)
	case graph.PrimGe:
		e.finishBool(v, x >= y)
	}
}

func (e *Engine) stepUnary(v *graph.Vertex, p graph.Prim, kind graph.ReqKind) {
	a, ok := e.needValue(v, 0, kind)
	if !ok {
		return
	}
	if p == graph.PrimNeg {
		x, ok := e.intOf(v, a)
		if !ok {
			return
		}
		e.finishLeaf(v, graph.KindInt, -x)
		return
	}
	bval, ok := e.boolOf(v, a)
	if !ok {
		return
	}
	e.finishBool(v, !bval)
}

func (e *Engine) stepBoolBin(v *graph.Vertex, p graph.Prim, kind graph.ReqKind) {
	a, okA := e.needValue(v, 0, kind)
	b, okB := e.needValue(v, 1, kind)
	if !okA || !okB {
		return
	}
	x, ok := e.boolOf(v, a)
	if !ok {
		return
	}
	y, ok := e.boolOf(v, b)
	if !ok {
		return
	}
	if p == graph.PrimAnd {
		e.finishBool(v, x && y)
	} else {
		e.finishBool(v, x || y)
	}
}

// stepIf implements the conditional. With SpeculativeIf, both branches are
// eagerly requested while the predicate computes (§3.2's eager tasks);
// once the predicate resolves, the dead branch is dereferenced — making
// any tasks already working on it irrelevant.
func (e *Engine) stepIf(v *graph.Vertex, kind graph.ReqKind) {
	if e.cfg.SpeculativeIf {
		for _, i := range []int{1, 2} {
			if op, ok := e.operand(v, i); ok {
				e.speculate(v, op)
			}
		}
	}
	c, ok := e.needValue(v, 0, kind)
	if !ok {
		return
	}
	cond, ok := e.boolOf(v, c)
	if !ok {
		return
	}
	thenOp, ok1 := e.operand(v, 1)
	elseOp, ok2 := e.operand(v, 2)
	if !ok1 || !ok2 {
		return
	}
	chosen, dead := thenOp, elseOp
	chosenIdx := 1
	if !cond {
		chosen, dead = elseOp, thenOp
		chosenIdx = 2
	}
	if dead != chosen {
		// Dereference the dead branch if it was speculatively requested:
		// remove it from req-args_e(v) and v from requested(dead). Its
		// in-flight tasks become irrelevant (Property 6).
		v.Lock()
		deadKind := v.ReqKindOf(dead)
		v.Unlock()
		if deadKind == graph.ReqEager {
			if dv := e.store.Vertex(dead); dv != nil {
				e.mut.Dereference(v, dv)
			}
		}
	}
	// The dereference may have shifted operand indexes; re-find chosen.
	v.Lock()
	hasChosen := v.HasArg(chosen)
	v.Unlock()
	if !hasChosen {
		e.fail(v, "if lost its chosen branch")
		return
	}
	_ = chosenIdx
	cv := e.store.Vertex(chosen)
	if cv == nil {
		return
	}
	e.mut.CollapseToIndDirect(v, cv)
	if e.cfg.Counters != nil {
		e.cfg.Counters.Rewrites.Add(1)
	}
	e.spawnReduce(v.ID)
}

// speculate eagerly requests child's value on v's behalf, registering both
// sides synchronously (so the registration survives even if v is rewritten
// before the demand executes) and spawning the eager demand.
func (e *Engine) speculate(v *graph.Vertex, childID graph.VertexID) {
	child := e.store.Vertex(childID)
	if child == nil || childID == v.ID {
		return
	}
	v.Lock()
	cur := v.ReqKindOf(childID)
	v.Unlock()
	if cur != graph.ReqNone {
		return // already requested
	}
	child.Lock()
	whnf := e.whnfLocked(child)
	child.Unlock()
	if whnf {
		return // nothing to speculate
	}
	if !e.mut.SetRequestKind(v, child, graph.ReqEager) {
		return
	}
	e.mut.AddRequesterCoop(child, v, graph.ReqEager)
	e.spawn(taskDemandEager(v.ID, childID))
}

func (e *Engine) stepSpec(v *graph.Vertex) {
	op0, ok := e.operand(v, 0)
	if !ok {
		return
	}
	e.speculate(v, op0)
	// Return the second operand immediately; the speculation's subgraph
	// becomes unreachable the moment v collapses, so its tasks are
	// irrelevant from then on — the paper's runaway-eager-work scenario.
	e.collapseToOperand(v, 1)
}

func (e *Engine) stepHeadTail(v *graph.Vertex, p graph.Prim, kind graph.ReqKind) {
	w, ok := e.needValue(v, 0, kind)
	if !ok {
		return
	}
	w.Lock()
	if w.Kind != graph.KindCons || len(w.Args) != 2 {
		wk := w.Kind
		w.Unlock()
		e.fail(v, "%v of non-pair %s", p, wk)
		return
	}
	idx := 0
	if p == graph.PrimTail {
		idx = 1
	}
	target := w.Args[idx]
	w.Unlock()

	tv := e.store.Vertex(target)
	if tv == nil {
		return
	}
	e.mut.CollapseToInd(v, tv)
	if e.cfg.Counters != nil {
		e.cfg.Counters.Rewrites.Add(1)
	}
	e.spawnReduce(v.ID)
}
