package reduce

import (
	"dgr/internal/gm"
	"dgr/internal/graph"
)

// Compiled supercombinator execution. One saturated redex runs its body's
// whole instruction sequence as a stack machine, allocating the fresh
// subgraph up front and splicing every edge — including the root update —
// inside a single cooperating Rewrite, so the marking invariants see one
// atomic contraction exactly as they do for an interpreted combinator
// step.
//
// Execution folds over known values: strict operands arrive in WHNF
// (applySaturation forces them first), literals are known by construction,
// and any primitive whose operands are all known computes immediately —
// pushing a value instead of building a primapp vertex. Branch selection
// folds the same way, and a literal never materializes a vertex at all
// unless an unfoldable consumer needs a real vertex ID. Folding uses
// exactly the semantics of stepPrimApp (division by zero, for instance,
// is not folded — the built primapp reproduces the runtime error path).

// slot is one stack entry: a vertex ID, a known literal value, or both.
// id == NilVertex means the literal has not been materialized.
type slot struct {
	id    graph.VertexID
	known bool
	kind  graph.Kind // valid when known: KindInt, KindBool, or KindNil
	val   int64
}

// wire is one planned labeling: vertex w becomes (kind, val, args).
type wire struct {
	w    *graph.Vertex
	kind graph.Kind
	val  int64
	args []graph.VertexID
}

// superExec is the per-invocation machine state.
type superExec struct {
	e      *Engine
	v      *graph.Vertex
	sup    *gm.Super
	ops    []graph.VertexID
	part   int
	stack  []slot
	locals []*graph.Vertex
	fresh  []*graph.Vertex
	wires  []wire
	bad    bool
}

// execSuper executes one compiled supercombinator body on the saturated
// redex v with operands ops. done reports whether v was rewritten; value
// additionally reports that the root became a WHNF literal (so the caller
// can complete v without another scheduler round trip).
func (e *Engine) execSuper(v *graph.Vertex, sup *gm.Super, ops []graph.VertexID) (done, value bool) {
	x := &superExec{
		e:     e,
		v:     v,
		sup:   sup,
		ops:   ops,
		part:  v.Part,
		stack: make([]slot, 0, sup.MaxHigh),
	}
	if sup.NLocals > 0 {
		x.locals = make([]*graph.Vertex, sup.NLocals)
	}

	// Operand value peek: a WHNF literal operand folds like a known
	// constant. Values are final once written, and the redex spine keeps
	// every operand reachable, so the read is stable for the whole
	// execution.
	opSlots := make([]slot, len(ops))
	for i, id := range ops {
		opSlots[i] = slot{id: id}
		if w := e.resolveInd(id); w != nil {
			w.Lock()
			switch w.Kind {
			case graph.KindInt, graph.KindBool, graph.KindNil:
				opSlots[i] = slot{id: id, known: true, kind: w.Kind, val: w.Val}
			}
			w.Unlock()
		}
	}

	var root wire
	haveRoot := false
	for _, in := range x.sup.Code {
		if x.bad {
			return false, false
		}
		switch in.Op {
		case gm.OpPushArg:
			if in.A < 0 || int(in.A) >= len(ops) {
				e.fail(v, "compiled body bad operand %d in %s", in.A, sup.Name)
				return false, false
			}
			x.push(opSlots[in.A])
		case gm.OpPushLocal:
			n := x.local(in.A)
			if n == nil {
				return false, false
			}
			x.push(slot{id: n.ID})
		case gm.OpPushSuper:
			x.pushFresh(graph.KindSuper, in.A)
		case gm.OpPushComb:
			x.pushFresh(graph.KindComb, in.A)
		case gm.OpPushPrim:
			x.pushFresh(graph.KindPrim, in.A)
		case gm.OpPushInt:
			x.push(slot{known: true, kind: graph.KindInt, val: in.A})
		case gm.OpPushBool:
			x.push(slot{known: true, kind: graph.KindBool, val: in.A})
		case gm.OpPushNil:
			x.push(slot{known: true, kind: graph.KindNil})
		case gm.OpMkApp:
			args := x.materializeN(2)
			if args == nil {
				return false, false
			}
			n := x.alloc(graph.KindApply, 0)
			if n == nil {
				return false, false
			}
			x.wires = append(x.wires, wire{w: n, kind: graph.KindApply, args: args})
			x.push(slot{id: n.ID})
		case gm.OpMkPrimApp:
			s, built, ok := x.primApp(in)
			if !ok {
				return false, false
			}
			if built != nil {
				n := x.alloc(graph.KindPrimApp, in.A)
				if n == nil {
					return false, false
				}
				x.wires = append(x.wires, wire{w: n, kind: graph.KindPrimApp, val: in.A, args: built})
				s = slot{id: n.ID}
			}
			x.push(s)
		case gm.OpMkHole:
			n := x.alloc(graph.KindHole, 0)
			if n == nil {
				return false, false
			}
			if in.A < 0 || int(in.A) >= len(x.locals) {
				e.fail(v, "compiled body bad local slot %d in %s", in.A, sup.Name)
				return false, false
			}
			x.locals[in.A] = n
		case gm.OpKnot:
			t := x.pop()
			h := x.local(in.A)
			if x.bad || h == nil {
				return false, false
			}
			if t.known && t.id == graph.NilVertex {
				x.wires = append(x.wires, wire{w: h, kind: t.kind, val: t.val})
			} else {
				x.wires = append(x.wires, wire{w: h, kind: graph.KindInd, args: []graph.VertexID{t.id}})
			}
		case gm.OpUpdate:
			t := x.pop()
			if x.bad {
				return false, false
			}
			root, haveRoot = x.rootFor(t), true
		case gm.OpUpdateApp:
			args := x.materializeN(2)
			if args == nil {
				return false, false
			}
			root, haveRoot = wire{w: v, kind: graph.KindApply, args: args}, true
		case gm.OpUpdatePrimApp:
			s, built, ok := x.primApp(in)
			if !ok {
				return false, false
			}
			if built != nil {
				root = wire{w: v, kind: graph.KindPrimApp, val: in.A, args: built}
			} else {
				root = x.rootFor(s)
			}
			haveRoot = true
		case gm.OpUpdateLeaf:
			root, haveRoot = wire{w: v, kind: graph.Kind(in.A), val: in.B}, true
		default:
			e.fail(v, "compiled body unknown opcode %v in %s", in.Op, sup.Name)
			return false, false
		}
	}
	if x.bad || !haveRoot {
		if !haveRoot {
			e.fail(v, "compiled body of %s has no terminal update", sup.Name)
		}
		return false, false
	}

	x.wires = append(x.wires, root)
	e.mut.Rewrite(v, x.fresh, e.vs(ops...), func() {
		for _, w := range x.wires {
			w.w.Kind = w.kind
			w.w.Val = w.val
			w.w.Args = append(w.w.Args[:0], w.args...)
			w.w.ReqKinds = w.w.ReqKinds[:0]
			for range w.args {
				w.w.ReqKinds = append(w.w.ReqKinds, graph.ReqNone)
			}
		}
	})
	switch root.kind {
	case graph.KindInt, graph.KindBool, graph.KindNil:
		return true, true
	}
	return true, false
}

// rootFor plans the terminal update from a result slot: a known literal
// writes the root as a leaf directly; anything else collapses the root to
// an indirection.
func (x *superExec) rootFor(t slot) wire {
	if t.known {
		return wire{w: x.v, kind: t.kind, val: t.val}
	}
	return wire{w: x.v, kind: graph.KindInd, args: []graph.VertexID{t.id}}
}

// primApp pops an OpMkPrimApp/OpUpdatePrimApp's operands: if every
// needed operand is known the primitive folds to a value slot
// (built == nil); otherwise the operands are materialized and returned
// for the caller to wire into a primapp vertex (fresh or the root).
func (x *superExec) primApp(in gm.Instr) (s slot, built []graph.VertexID, ok bool) {
	n := int(in.B)
	if len(x.stack) < n {
		x.e.fail(x.v, "compiled body stack underflow in %s", x.sup.Name)
		return slot{}, nil, false
	}
	args := x.stack[len(x.stack)-n:]
	if s, folded := foldPrim(graph.Prim(in.A), args); folded {
		x.stack = x.stack[:len(x.stack)-n]
		return s, nil, true
	}
	ids := x.materializeN(n)
	if ids == nil {
		return slot{}, nil, false
	}
	return slot{}, ids, true
}

// foldPrim computes a primitive over known operand slots, mirroring
// stepPrimApp exactly. ok is false when the operands are not all known,
// the primitive is not foldable, or folding would bypass a runtime error
// path (division by zero, operand type errors).
func foldPrim(p graph.Prim, args []slot) (slot, bool) {
	known := func(i int, k graph.Kind) (int64, bool) {
		if !args[i].known || args[i].kind != k {
			return 0, false
		}
		return args[i].val, true
	}
	intS := func(v int64) slot { return slot{known: true, kind: graph.KindInt, val: v} }
	boolS := func(b bool) slot {
		var v int64
		if b {
			v = 1
		}
		return slot{known: true, kind: graph.KindBool, val: v}
	}
	switch p {
	case graph.PrimAdd, graph.PrimSub, graph.PrimMul, graph.PrimDiv,
		graph.PrimMod, graph.PrimEq, graph.PrimNe, graph.PrimLt,
		graph.PrimLe, graph.PrimGt, graph.PrimGe:
		xv, okx := known(0, graph.KindInt)
		yv, oky := known(1, graph.KindInt)
		if !okx || !oky {
			return slot{}, false
		}
		switch p {
		case graph.PrimAdd:
			return intS(xv + yv), true
		case graph.PrimSub:
			return intS(xv - yv), true
		case graph.PrimMul:
			return intS(xv * yv), true
		case graph.PrimDiv:
			if yv == 0 {
				return slot{}, false
			}
			return intS(xv / yv), true
		case graph.PrimMod:
			if yv == 0 {
				return slot{}, false
			}
			return intS(xv % yv), true
		case graph.PrimEq:
			return boolS(xv == yv), true
		case graph.PrimNe:
			return boolS(xv != yv), true
		case graph.PrimLt:
			return boolS(xv < yv), true
		case graph.PrimLe:
			return boolS(xv <= yv), true
		default:
			if p == graph.PrimGt {
				return boolS(xv > yv), true
			}
			return boolS(xv >= yv), true
		}
	case graph.PrimNeg:
		xv, ok := known(0, graph.KindInt)
		if !ok {
			return slot{}, false
		}
		return intS(-xv), true
	case graph.PrimNot:
		xv, ok := known(0, graph.KindBool)
		if !ok {
			return slot{}, false
		}
		return boolS(xv == 0), true
	case graph.PrimAnd, graph.PrimOr:
		xv, okx := known(0, graph.KindBool)
		yv, oky := known(1, graph.KindBool)
		if !okx || !oky {
			return slot{}, false
		}
		if p == graph.PrimAnd {
			return boolS(xv != 0 && yv != 0), true
		}
		return boolS(xv != 0 || yv != 0), true
	case graph.PrimIsNil, graph.PrimIsPair:
		if !args[0].known {
			return slot{}, false
		}
		if p == graph.PrimIsNil {
			return boolS(args[0].kind == graph.KindNil), true
		}
		return boolS(false), true // known kinds are never cons
	case graph.PrimIf:
		cv, ok := known(0, graph.KindBool)
		if !ok {
			return slot{}, false
		}
		if cv != 0 {
			return args[1], true
		}
		return args[2], true
	case graph.PrimSeq:
		if !args[0].known {
			return slot{}, false
		}
		return args[1], true
	}
	return slot{}, false
}

// ---- stack machine helpers ----

func (x *superExec) push(s slot) { x.stack = append(x.stack, s) }

func (x *superExec) pop() slot {
	if len(x.stack) == 0 {
		x.e.fail(x.v, "compiled body stack underflow in %s", x.sup.Name)
		x.bad = true
		return slot{}
	}
	s := x.stack[len(x.stack)-1]
	x.stack = x.stack[:len(x.stack)-1]
	return s
}

// alloc allocates one fresh vertex into the invocation's fresh set.
func (x *superExec) alloc(kind graph.Kind, val int64) *graph.Vertex {
	n, err := x.e.mut.Alloc(x.part, kind, val)
	if err != nil {
		x.e.fail(x.v, "out of free vertices: %v", err)
		x.bad = true
		return nil
	}
	x.fresh = append(x.fresh, n)
	return n
}

func (x *superExec) pushFresh(kind graph.Kind, val int64) {
	if n := x.alloc(kind, val); n != nil {
		x.push(slot{id: n.ID})
	}
}

// materialize gives a slot a real vertex, allocating the deferred literal
// leaf if needed.
func (x *superExec) materialize(s *slot) bool {
	if s.id != graph.NilVertex {
		return true
	}
	n := x.alloc(s.kind, s.val)
	if n == nil {
		return false
	}
	s.id = n.ID
	return true
}

// materializeN pops n slots and returns their vertex IDs in stack order.
func (x *superExec) materializeN(n int) []graph.VertexID {
	if len(x.stack) < n {
		x.e.fail(x.v, "compiled body stack underflow in %s", x.sup.Name)
		x.bad = true
		return nil
	}
	ids := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		s := &x.stack[len(x.stack)-n+i]
		if !x.materialize(s) {
			return nil
		}
		ids[i] = s.id
	}
	x.stack = x.stack[:len(x.stack)-n]
	return ids
}

func (x *superExec) local(i int64) *graph.Vertex {
	if i < 0 || int(i) >= len(x.locals) || x.locals[i] == nil {
		x.e.fail(x.v, "compiled body bad local slot %d in %s", i, x.sup.Name)
		x.bad = true
		return nil
	}
	return x.locals[i]
}
