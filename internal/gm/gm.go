// Package gm is the compiled-reduction backend: a G-machine-style
// instruction set for supercombinator bodies. Programs in internal/lang
// are lambda-lifted (lang.Lift) into supercombinators whose bodies compile
// here to short instruction sequences; the reduction engine executes one
// whole sequence per saturated redex, building/updating the result
// subgraph in a single task execution instead of one combinator rewrite at
// a time.
//
// The instructions only ever construct standard graph vertices (apply,
// primapp, literal leaves, letrec knots) wired with the ordinary
// args/req-args discipline, so the collector's marking invariants, the
// deadlock detector, and the invariant checker all work unchanged on
// compiled runs. The engine applies the whole instruction sequence's
// wiring inside one cooperating core.Mutator.Rewrite.
package gm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"dgr/internal/graph"
)

// Op is an instruction opcode. The machine is a small stack machine over
// vertex IDs: Push* operands push one vertex (existing or freshly
// allocated), Mk* pop children and push a fresh interior vertex, and
// exactly one terminal Update* rewrites the redex root.
type Op uint8

// Opcodes.
const (
	OpPushArg       Op = iota + 1 // push operand A of the redex
	OpPushLocal                   // push local slot A (a letrec knot of this invocation)
	OpPushSuper                   // push a fresh supercombinator leaf for program index A
	OpPushComb                    // push a fresh combinator leaf (A holds the graph.Comb code)
	OpPushPrim                    // push a fresh primitive leaf (A holds the graph.Prim code)
	OpPushInt                     // push a fresh integer leaf with value A
	OpPushBool                    // push a fresh boolean leaf (A is 0 or 1)
	OpPushNil                     // push a fresh empty-list leaf
	OpMkApp                       // pop arg then fun, push a fresh apply(fun, arg)
	OpMkPrimApp                   // pop B operands, push a fresh flattened primapp of prim A
	OpMkHole                      // allocate a fresh hole into local slot A (no stack effect)
	OpKnot                        // pop target; local slot A's hole becomes an indirection to it
	OpUpdate                      // terminal: pop result; the root becomes an indirection to it
	OpUpdateApp                   // terminal: pop arg then fun; the root becomes apply(fun, arg)
	OpUpdatePrimApp               // terminal: pop B operands; the root becomes a primapp of prim A
	OpUpdateLeaf                  // terminal: the root becomes a leaf of kind A with value B
)

var opNames = [...]string{
	OpPushArg:       "pusharg",
	OpPushLocal:     "pushlocal",
	OpPushSuper:     "pushsuper",
	OpPushComb:      "pushcomb",
	OpPushPrim:      "pushprim",
	OpPushInt:       "pushint",
	OpPushBool:      "pushbool",
	OpPushNil:       "pushnil",
	OpMkApp:         "mkapp",
	OpMkPrimApp:     "mkprimapp",
	OpMkHole:        "mkhole",
	OpKnot:          "knot",
	OpUpdate:        "update",
	OpUpdateApp:     "updateapp",
	OpUpdatePrimApp: "updateprimapp",
	OpUpdateLeaf:    "updateleaf",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction. The meaning of A and B depends on the opcode.
type Instr struct {
	Op   Op
	A, B int64
}

// String renders the instruction for disassembly.
func (i Instr) String() string {
	switch i.Op {
	case OpPushNil, OpUpdate, OpUpdateApp:
		return i.Op.String()
	case OpMkPrimApp, OpUpdatePrimApp:
		return fmt.Sprintf("%s %s/%d", i.Op, graph.Prim(i.A), i.B)
	case OpPushPrim:
		return fmt.Sprintf("%s %s", i.Op, graph.Prim(i.A))
	case OpPushComb:
		return fmt.Sprintf("%s %s", i.Op, graph.Comb(i.A))
	case OpUpdateLeaf:
		return fmt.Sprintf("%s %s/%d", i.Op, graph.Kind(i.A), i.B)
	default:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	}
}

// Super is one compiled supercombinator.
type Super struct {
	Name    string
	Arity   int
	Code    []Instr
	NLocals int // letrec slots one invocation needs
	MaxHigh int // maximum stack height during execution
	// Strict marks parameters the body certainly forces on every path to
	// WHNF (Mycroft-style analysis over the lifted program). The engine
	// demands strict operands to WHNF before executing the body, which
	// lets execution constant-fold arithmetic, comparisons, and branch
	// selection over known operand values instead of building the
	// corresponding primapp subgraphs.
	Strict []bool
}

// Disassemble renders the supercombinator for debugging and tests.
func (s *Super) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%d:", s.Name, s.Arity)
	for _, in := range s.Code {
		fmt.Fprintf(&b, "\n\t%s", in)
	}
	return b.String()
}

// Program is a machine's supercombinator table. Compilation appends;
// KindSuper leaves reference entries by index, so indices are stable for
// the machine's lifetime. Reads are lock-free (the engine resolves supers
// on the reduction hot path, possibly from many PEs at once).
type Program struct {
	mu     sync.Mutex
	supers atomic.Value // []*Super, copy-on-write
}

// NewProgram returns an empty program table.
func NewProgram() *Program {
	p := &Program{}
	p.supers.Store([]*Super(nil))
	return p
}

// AddBatch appends a group of supercombinators atomically and returns the
// index of the first (the group occupies base..base+len-1, letting a
// compile resolve mutually recursive references before publishing).
func (p *Program) AddBatch(supers []*Super) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.supers.Load().([]*Super)
	base := len(cur)
	next := make([]*Super, 0, len(cur)+len(supers))
	next = append(next, cur...)
	next = append(next, supers...)
	p.supers.Store(next)
	return base
}

// Super resolves a table index, or nil when out of range.
func (p *Program) Super(i int) *Super {
	cur := p.supers.Load().([]*Super)
	if i < 0 || i >= len(cur) {
		return nil
	}
	return cur[i]
}

// Len reports the number of registered supercombinators.
func (p *Program) Len() int {
	return len(p.supers.Load().([]*Super))
}
