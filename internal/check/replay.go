package check

import (
	"fmt"

	"dgr/internal/core"
	"dgr/internal/sched"
	"dgr/internal/task"
)

// Replayer re-drives a deterministic machine from a recorded schedule. The
// replay machine must start from the same initial graph and task state as
// the recorded run (same program, same seed, same PE count) but runs in
// deterministic mode with no fabric: the log's serial order subsumes every
// delivery the fabric performed, so a task is always already in its
// destination pool when its exec event comes up (messages only ever arrive
// earlier, never later, than in the recorded run).
//
// Exec events are matched on the task's identity fields — Kind, Src, Dst,
// Ctx, Epoch, Prior — and deliberately not on Req: restructuring may
// reprioritize a queued Demand's request kind, and the recorded run's
// fabric may have applied that rewrite to a different copy than replay
// sees. The recorded task is executed verbatim either way, so the handler
// observes exactly the recorded inputs.
type Replayer struct {
	Mach *sched.Machine
	Coll *core.Collector
}

// Run replays the schedule, returning a descriptive error at the first
// divergence (an exec event whose task is not queued on the recorded PE).
// A clean replay of a recorded violation run drives the machine to the
// same failing step, where the caller's checker reports it again.
func (rp *Replayer) Run(events []Event) error {
	for i, e := range events {
		switch e.Ev {
		case EvMeta:
			// Informational only.
		case EvCycle:
			if rp.Coll == nil {
				return fmt.Errorf("check: replay event %d is a cycle start but no collector is wired", i)
			}
			roots := make([]core.Root, len(e.Roots))
			for j, r := range e.Roots {
				roots[j] = core.Root{ID: r.ID, Prior: r.Prior}
			}
			rp.Coll.ReplayCycleStart(e.Ctx, roots)
		case EvRestructure:
			if rp.Coll == nil {
				return fmt.Errorf("check: replay event %d is a restructure but no collector is wired", i)
			}
			rp.Coll.ReplayRestructure(e.MT, e.Sweep)
		case EvExec:
			want := e.Task()
			pred := func(q task.Task) bool { return sameTask(q, want) }
			ok := rp.Mach.ExecuteMatching(e.PE, pred, want)
			if !ok {
				// The recorded run may have stolen the task to the PE it
				// executed on; replay runs with no stealing, so the task sits
				// in its home partition's pool. Executing it there instead is
				// the same serialization — the event's PE is bookkeeping, the
				// task's effect is PE-independent.
				for pe := 0; pe < rp.Mach.PEs() && !ok; pe++ {
					if pe == e.PE {
						continue
					}
					ok = rp.Mach.ExecuteMatching(pe, pred, want)
				}
			}
			if !ok {
				return fmt.Errorf(
					"check: replay diverged at event %d: %s not queued on PE %d (pool holds %d tasks, machine inflight %d)",
					i, want, e.PE, rp.Mach.Pool(e.PE).Len(), rp.Mach.Inflight())
			}
		default:
			return fmt.Errorf("check: replay event %d has unknown kind %q", i, e.Ev)
		}
	}
	return nil
}

// sameTask matches a queued task against a recorded one on identity
// fields, ignoring Req (see Replayer) and the Band cache.
func sameTask(q, want task.Task) bool {
	return q.Kind == want.Kind && q.Src == want.Src && q.Dst == want.Dst &&
		q.Ctx == want.Ctx && q.Epoch == want.Epoch && q.Prior == want.Prior
}
