package check

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/task"
)

func partMod(n int) func(graph.VertexID) int {
	return func(id graph.VertexID) int { return int(id) % n }
}

func TestEventJSONLRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Meta("fib", "parallel", 42, 4, 3)
	r.OnExecute(0, 2, task.Task{Kind: task.Demand, Src: 1, Dst: 2, Req: graph.ReqVital})
	r.CycleStart(graph.CtxT, []core.Root{{ID: 5}, {ID: 9, Prior: graph.PriorVital}})
	r.OnExecute(1, 0, task.Task{Kind: task.Mark, Src: 0, Dst: 5, Ctx: graph.CtxT, Epoch: 7})
	r.RestructureStart(true, 0)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("read %d events, wrote %d", len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Ev != b.Ev || a.Task() != b.Task() || a.PE != b.PE || a.Seq != b.Seq ||
			a.MT != b.MT || len(a.Roots) != len(b.Roots) ||
			a.Program != b.Program || a.Config != b.Config || a.Seed != b.Seed {
			t.Fatalf("event %d: wrote %+v, read %+v", i, a, b)
		}
		for j := range a.Roots {
			if a.Roots[j] != b.Roots[j] {
				t.Fatalf("event %d root %d: %+v vs %+v", i, j, a.Roots[j], b.Roots[j])
			}
		}
	}
}

// fanout is a deterministic handler: each task below the limit spawns one
// follow-up. The spawn depends only on the executed task, so a parallel
// recording replays exactly.
type fanout struct {
	m     *sched.Machine
	limit graph.VertexID
	mu    sync.Mutex
	order []graph.VertexID
}

func (f *fanout) Handle(tk task.Task) {
	f.mu.Lock()
	f.order = append(f.order, tk.Dst)
	f.mu.Unlock()
	if tk.Dst < f.limit {
		f.m.Spawn(task.Task{Kind: task.Reduce, Src: tk.Dst, Dst: tk.Dst + 3})
	}
}

func TestRecordReplayDeterministic(t *testing.T) {
	rec := NewRecorder()
	m := sched.New(sched.Config{
		PEs: 3, Mode: sched.Deterministic, Seed: 9, Adversarial: true,
		PartOf: partMod(3), OnExecute: rec.OnExecute,
	})
	h := &fanout{m: m, limit: 60}
	m.SetHandler(h)
	for i := 1; i <= 3; i++ {
		m.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
	}
	m.RunToQuiescence(0)
	recorded := h.order

	// Replay on a fresh machine with a different seed: the log, not the
	// RNG, must dictate the order.
	m2 := sched.New(sched.Config{PEs: 3, Mode: sched.Deterministic, Seed: 777, PartOf: partMod(3)})
	h2 := &fanout{m: m2, limit: 60}
	m2.SetHandler(h2)
	for i := 1; i <= 3; i++ {
		m2.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
	}
	rp := &Replayer{Mach: m2}
	if err := rp.Run(rec.Events()); err != nil {
		t.Fatal(err)
	}
	if len(h2.order) != len(recorded) {
		t.Fatalf("replay executed %d tasks, recorded %d", len(h2.order), len(recorded))
	}
	for i := range recorded {
		if h2.order[i] != recorded[i] {
			t.Fatalf("replay order diverged at %d: %v vs %v", i, h2.order[:i+1], recorded[:i+1])
		}
	}
	if m2.Inflight() != 0 {
		t.Fatalf("replay left inflight = %d", m2.Inflight())
	}
}

func TestRecordReplayParallel(t *testing.T) {
	rec := NewRecorder()
	m := sched.New(sched.Config{
		PEs: 4, Mode: sched.Parallel, PartOf: partMod(4), OnExecute: rec.OnExecute,
	})
	h := &fanout{m: m, limit: 300}
	m.SetHandler(h)
	m.Start()
	for i := 1; i <= 4; i++ {
		m.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
	}
	m.WaitQuiescent()
	m.Stop()

	events := rec.Events()
	if len(events) != len(h.order) {
		t.Fatalf("recorded %d events for %d executions", len(events), len(h.order))
	}

	replayOrder := func() []graph.VertexID {
		m2 := sched.New(sched.Config{PEs: 4, Mode: sched.Deterministic, Seed: 1, PartOf: partMod(4)})
		h2 := &fanout{m: m2, limit: 300}
		m2.SetHandler(h2)
		for i := 1; i <= 4; i++ {
			m2.Spawn(task.Task{Kind: task.Reduce, Dst: graph.VertexID(i)})
		}
		rp := &Replayer{Mach: m2}
		if err := rp.Run(events); err != nil {
			t.Fatal(err)
		}
		return h2.order
	}

	a, b := replayOrder(), replayOrder()
	if len(a) != len(events) {
		t.Fatalf("replay executed %d, recorded %d", len(a), len(events))
	}
	// Replay-of-replay is bit-for-bit.
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two replays diverged at %d", i)
		}
	}
	// The replay is a serialization of the parallel run: log order.
	for i, e := range events {
		if a[i] != e.Dst {
			t.Fatalf("replay %d executed v%d, log says v%d", i, a[i], e.Dst)
		}
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	rec := NewRecorder()
	m := sched.New(sched.Config{PEs: 2, Mode: sched.Deterministic, Seed: 3,
		PartOf: partMod(2), OnExecute: rec.OnExecute})
	h := &fanout{m: m, limit: 20}
	m.SetHandler(h)
	m.Spawn(task.Task{Kind: task.Reduce, Dst: 1})
	m.RunToQuiescence(0)

	events := rec.Events()
	// Tamper with an event: a task that was never spawned.
	events[len(events)/2].Dst = 9999
	events[len(events)/2].PE = 1

	m2 := sched.New(sched.Config{PEs: 2, Mode: sched.Deterministic, Seed: 3, PartOf: partMod(2)})
	m2.SetHandler(&fanout{m: m2, limit: 20})
	m2.Spawn(task.Task{Kind: task.Reduce, Dst: 1})
	err := (&Replayer{Mach: m2}).Run(events)
	if err == nil {
		t.Fatal("tampered log replayed without divergence")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("error %q does not mention divergence", err)
	}
}

// newCheckRig builds a machine + marker + checker over an empty store.
func newCheckRig(t *testing.T, pes int) (*sched.Machine, *core.Marker, *Checker, *metrics.Counters) {
	t.Helper()
	store := graph.NewStore(graph.Config{Partitions: pes, Capacity: 64})
	var c metrics.Counters
	m := sched.New(sched.Config{
		PEs: pes, Mode: sched.Deterministic, Seed: 1,
		PartOf: store.PartitionOf, Counters: &c,
	})
	marker := core.NewMarker(store, m, &c)
	m.SetHandler(marker)
	chk := &Checker{Store: store, Marker: marker, Mach: m, Counters: &c, Every: 1}
	return m, marker, chk, &c
}

func TestCheckerCleanRun(t *testing.T) {
	m, marker, chk, c := newCheckRig(t, 2)
	// A marking cycle over missing vertices: marks return immediately.
	done := marker.StartCycle(graph.CtxR, []core.Root{{ID: 1, Prior: graph.PriorVital}, {ID: 2, Prior: graph.PriorVital}})
	m.RunUntil(func() bool { return marker.Done(graph.CtxR) }, 0)
	<-done
	chk.AtQuiescence()
	if err := chk.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v\n%v", err, chk.Violations())
	}
	if c.CheckRuns.Load() == 0 {
		t.Fatal("checker never ran")
	}
	if c.CheckViolations.Load() != 0 {
		t.Fatalf("violations = %d on a clean run", c.CheckViolations.Load())
	}
}

func TestCheckerCatchesSmuggledTask(t *testing.T) {
	m, _, chk, c := newCheckRig(t, 2)
	// Push into a pool behind the machine's back: pool count rises but
	// inflight does not — conservation must fail.
	m.Pool(0).Push(task.Task{Kind: task.Reduce, Dst: 2})
	chk.AtQuiescence()
	err := chk.Err()
	if err == nil {
		t.Fatal("smuggled task not caught")
	}
	if !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("error %q is not a conservation violation", err)
	}
	if c.CheckViolations.Load() == 0 {
		t.Fatal("violation counter not bumped")
	}
}

func TestCheckerCatchesLostReturns(t *testing.T) {
	m, marker, chk, _ := newCheckRig(t, 2)
	// Start a cycle, then expunge its mark tasks: the machine quiesces with
	// the cycle still active — the lost-marks signature.
	marker.StartCycle(graph.CtxR, []core.Root{{ID: 1, Prior: graph.PriorVital}})
	for pe := 0; pe < m.PEs(); pe++ {
		m.Expunge(pe, func(task.Task) bool { return true })
	}
	if m.Inflight() != 0 {
		t.Fatalf("inflight = %d after expunge", m.Inflight())
	}
	chk.AtQuiescence()
	err := chk.Err()
	if err == nil {
		t.Fatal("active-cycle-at-quiescence not caught")
	}
	if !strings.Contains(err.Error(), "still active") {
		t.Fatalf("error %q is not the lost-returns violation", err)
	}
}

func TestCheckerSkipsUnstableSample(t *testing.T) {
	m, _, chk, c := newCheckRig(t, 2)
	m.Spawn(task.Task{Kind: task.Reduce, Dst: 1})
	// Not quiescent: the sample must be skipped, not failed.
	chk.AtQuiescence()
	if err := chk.Err(); err != nil {
		t.Fatalf("non-quiescent sample reported violation: %v", err)
	}
	if c.CheckSkipped.Load() != 1 {
		t.Fatalf("skipped = %d, want 1", c.CheckSkipped.Load())
	}
}
