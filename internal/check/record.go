package check

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/task"
)

// Event kinds in a schedule log.
const (
	// EvMeta is an informational header: what ran, with which knobs.
	EvMeta = "meta"
	// EvExec is one task execution: (pe, task) in global execution order.
	EvExec = "exec"
	// EvCycle is a marking-phase start with its explicit root set.
	EvCycle = "cycle"
	// EvRestructure is a restructuring-phase run.
	EvRestructure = "restructure"
)

// Event is one entry of a recorded schedule. Log order is the replay
// order: the recorder's mutex linearizes concurrent callbacks, and because
// an execution is only recorded after its task was popped from a pool, a
// task's spawning execution always precedes its own in the log — so
// replaying the log serially is a legal serialization of the parallel run
// under the atomicity axiom of §4.1. All numeric fields use omitempty;
// JSON decoding restores absent fields to zero, which is their recorded
// value, so the compaction is lossless.
type Event struct {
	Ev string `json:"ev"`

	// Meta fields.
	Program string `json:"program,omitempty"`
	Config  string `json:"config,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	PEs     int    `json:"pes,omitempty"`
	MTEvery int    `json:"mtevery,omitempty"`

	// Exec fields. Seq is the scheduler's own sequence number, kept for
	// diagnostics; replay follows log order, which can differ from Seq
	// order when two PEs raced between sequence assignment and recording.
	Seq   uint64         `json:"seq,omitempty"`
	PE    int            `json:"pe,omitempty"`
	Kind  task.Kind      `json:"kind,omitempty"`
	Src   graph.VertexID `json:"src,omitempty"`
	Dst   graph.VertexID `json:"dst,omitempty"`
	Req   graph.ReqKind  `json:"req,omitempty"`
	Ctx   graph.Ctx      `json:"ctx,omitempty"`
	Prior uint8          `json:"prior,omitempty"`
	Epoch uint64         `json:"epoch,omitempty"`

	// Cycle fields (Ctx above selects the context).
	Roots []RootRec `json:"roots,omitempty"`

	// Restructure fields. Sweep is the recorded sweep scope: 0 (absent in
	// the JSON, including every log written before the field existed) means
	// a full-arena sweep; k+1 means an incremental sweep of partition k.
	MT    bool `json:"mt,omitempty"`
	Sweep int  `json:"sweep,omitempty"`
}

// RootRec is a recorded marking root.
type RootRec struct {
	ID    graph.VertexID `json:"id"`
	Prior uint8          `json:"prior,omitempty"`
}

// Task reconstructs the executed task from an exec event.
func (e Event) Task() task.Task {
	return task.Task{
		Kind: e.Kind, Src: e.Src, Dst: e.Dst, Req: e.Req,
		Ctx: e.Ctx, Prior: e.Prior, Epoch: e.Epoch,
	}
}

// Recorder captures a run's schedule. Wire OnExecute into
// sched.Config.OnExecute and the recorder itself into
// core.CollectorConfig.Recorder; it is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Meta appends an informational header event. Call it before the run.
func (r *Recorder) Meta(program, config string, seed int64, pes, mtEvery int) {
	r.append(Event{
		Ev: EvMeta, Program: program, Config: config,
		Seed: seed, PEs: pes, MTEvery: mtEvery,
	})
}

// OnExecute records one task execution (sched.Config.OnExecute hook).
func (r *Recorder) OnExecute(seq uint64, pe int, t task.Task) {
	r.append(Event{
		Ev: EvExec, Seq: seq, PE: pe,
		Kind: t.Kind, Src: t.Src, Dst: t.Dst, Req: t.Req,
		Ctx: t.Ctx, Prior: t.Prior, Epoch: t.Epoch,
	})
}

// CycleStart records a marking-phase start (core.CycleRecorder).
func (r *Recorder) CycleStart(ctx graph.Ctx, roots []core.Root) {
	rec := make([]RootRec, len(roots))
	for i, rt := range roots {
		rec[i] = RootRec{ID: rt.ID, Prior: rt.Prior}
	}
	r.append(Event{Ev: EvCycle, Ctx: ctx, Roots: rec})
}

// RestructureStart records a restructuring phase (core.CycleRecorder).
func (r *Recorder) RestructureStart(mtRan bool, sweep int) {
	r.append(Event{Ev: EvRestructure, MT: mtRan, Sweep: sweep})
}

func (r *Recorder) append(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded schedule.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteJSONL writes the recorded schedule as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a schedule log written by WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var events []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return events, nil
			}
			return events, fmt.Errorf("check: schedule log event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}
