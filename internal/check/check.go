// Package check provides the runtime correctness tooling for the machine:
// an always-on invariant checker that samples the paper's marking
// invariants (Figure 4-2 invariants 1 and 2, plus the mt-cnt accounting of
// §5.4.1) together with machine-level conservation laws, and a schedule
// recorder/replayer that captures a parallel run's execution order and
// re-drives it deterministically so any violation reproduces bit-for-bit.
//
// The checker distinguishes two classes of sample point:
//
//   - Deterministic safe points (between scheduler steps, cycle ends,
//     quiescence): no task is mid-execution, so whole-machine sweeps —
//     inflight conservation and core.CheckInvariants — are exact.
//   - Concurrent sample points (parallel mode): only checks that are sound
//     under concurrent mutation run — per-task band consistency, mt-cnt
//     underflow counters, and (at cycle ends) the marked-closure sweep,
//     which is stable because a completed cycle has no outstanding marking
//     work at its epoch.
//
// Marking-invariant sweeps are gated on an *active* cycle (or a just-
// completed one): between cycles the cooperating mutator legally attaches
// unmarked fresh vertices beneath marked parents, so an ungated sweep would
// report false violations.
package check

import (
	"fmt"
	"sync"

	"dgr/internal/analysis"
	"dgr/internal/core"
	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/sched"
	"dgr/internal/task"
	"dgr/internal/trace"
)

// maxViolations caps the retained violation list; once full the checker
// stops sampling (the run is already condemned, and an unbounded list would
// flood memory on a badly broken machine).
const maxViolations = 64

// Checker asserts machine invariants at sample points. All exported fields
// must be set before the machine executes its first task; the methods are
// safe for concurrent use afterwards.
type Checker struct {
	Store    *graph.Store
	Marker   *core.Marker
	Mach     *sched.Machine
	Counters *metrics.Counters // optional: check counters land here
	Tracer   *trace.Tracer     // optional: check.violation events land here
	// Coll, when set, enables the confirmed-verdict invariant: a vertex the
	// collector has CONFIRMED deadlocked (two-phase verdict) can never reduce
	// again, so it must not be freed, must not hold a value, and must not be
	// task-reachable per the internal/analysis oracle.
	Coll *core.Collector
	// Every samples every k-th task execution via AfterExecute; 0 disables
	// per-execution sampling (cycle-end and quiescence points still run).
	Every uint64
	// Parallel restricts every-execution and cycle-end samples to the
	// checks that are sound under concurrent mutation.
	Parallel bool
	// OnViolation, if set, fires once per report that found violations —
	// after they are recorded — so a flight recorder can dump its ring while
	// the failing state is still fresh. It must not call back into the
	// checker.
	OnViolation func()

	mu         sync.Mutex
	violations []string
}

var bothCtxs = [2]graph.Ctx{graph.CtxR, graph.CtxT}

// AfterExecute is the sched.Config.AfterExecute hook: it samples every
// Every-th task execution. In deterministic mode this point sits between
// scheduler steps, so full sweeps run; in parallel mode only the
// concurrency-safe checks do.
func (c *Checker) AfterExecute(seq uint64, pe int, t task.Task) {
	if c.Every == 0 || (seq+1)%c.Every != 0 || c.capped() {
		return
	}
	var errs []string
	errs = append(errs, c.bandErrs()...)
	errs = append(errs, c.underflowErrs()...)
	if !c.Parallel {
		errs = append(errs, c.conservationErrs()...)
		for _, ctx := range bothCtxs {
			if c.Marker.Active(ctx) {
				for _, e := range core.CheckInvariants(c.Store, c.Marker, c.Mach, ctx) {
					errs = append(errs, e.Error())
				}
			}
		}
	}
	c.report(fmt.Sprintf("execute#%d", seq), errs)
}

// AtCycleEnd is the core.CollectorConfig.AfterCycle hook: it runs after a
// mark/restructure cycle completes. The CtxR marked-closure sweep is sound
// in both modes here — a completed cycle has no outstanding marking work at
// its epoch, and between-cycle mutation only attaches fresh vertices
// (excluded by allocation epoch) or rewires already-marked ones. The CtxT
// closure is deliberately NOT swept here: M_T runs before the whole M_R
// phase of the same cycle, and the reduction tasks M_R's pump interleaves
// legally rewire task-reachability edges once T-cooperation has stopped —
// the T closure is only exact at its phase end (see AtPhaseEnd).
func (c *Checker) AtCycleEnd(rep core.CycleReport) {
	if c.capped() {
		return
	}
	var errs []string
	errs = append(errs, c.bandErrs()...)
	errs = append(errs, c.underflowErrs()...)
	if !c.Parallel {
		errs = append(errs, c.conservationErrs()...)
	}
	if rep.Completed {
		errs = append(errs, c.markedClosureErrs(graph.CtxR)...)
	}
	if !c.Parallel {
		// Deterministic cycle ends sit between scheduler steps, so the
		// oracle's snapshot-plus-taskset reading is exact; in parallel mode
		// the PEs are mutating under the sweep and the same invariant is
		// asserted at the Close-time quiescence point instead.
		errs = append(errs, c.confirmedDeadlockErrs()...)
	}
	c.report(fmt.Sprintf("cycle#%d", rep.Cycle), errs)
}

// AtPhaseEnd is the core.CollectorConfig.AfterPhase hook: it runs at the
// instant a marking phase completes, the one point where that context's
// marked closure is exact. In deterministic mode this sits between
// scheduler steps; in parallel mode the PEs are still mutating and the
// closure can already be legally stale, so the sweep is skipped.
func (c *Checker) AtPhaseEnd(ctx graph.Ctx) {
	if c.Parallel || c.capped() {
		return
	}
	var errs []string
	errs = append(errs, c.underflowErrs()...)
	errs = append(errs, c.markedClosureErrs(ctx)...)
	c.report(fmt.Sprintf("phase(%s)@epoch%d", ctx, c.Marker.Epoch(ctx)), errs)
}

// AtQuiescence samples at a claimed quiescent point. It verifies stability
// (inflight zero before and after the sweep — otherwise the sample is
// counted skipped, not failed), conservation, and that no marking cycle is
// still active: an active cycle has mark or return tasks outstanding by
// construction, so quiescence with an active cycle means returns were lost.
// In parallel mode the caller must have stopped the collector first, or a
// cycle legitimately starting mid-sample would be misreported.
func (c *Checker) AtQuiescence() {
	if c.capped() {
		return
	}
	if c.Mach.Inflight() != 0 {
		c.skip()
		return
	}
	var errs []string
	errs = append(errs, c.bandErrs()...)
	errs = append(errs, c.underflowErrs()...)
	errs = append(errs, c.conservationErrs()...)
	errs = append(errs, c.confirmedDeadlockErrs()...)
	for _, ctx := range bothCtxs {
		if c.Marker.Active(ctx) {
			errs = append(errs, fmt.Sprintf(
				"quiescent machine but %s marking cycle still active (marks or returns lost)", ctx))
		}
	}
	if c.Mach.Inflight() != 0 {
		// The machine moved under the sweep; nothing read above is
		// trustworthy.
		c.skip()
		return
	}
	c.report("quiescence", errs)
}

// conservationErrs asserts the inflight conservation law:
//
//	sum(Pool.Len) + fabric in-transit + |CurrentTasks| == Machine.Inflight
//
// Every spawned-but-unfinished task is in exactly one of the three places.
// Only meaningful when the machine is not concurrently executing (between
// deterministic steps, or at stable quiescence).
func (c *Checker) conservationErrs() []string {
	pools := 0
	for i := 0; i < c.Mach.PEs(); i++ {
		pools += c.Mach.Pool(i).Len()
	}
	transit := c.Mach.InTransit()
	current := int64(len(c.Mach.CurrentTasks()))
	inflight := c.Mach.Inflight()
	if int64(pools)+transit+current != inflight {
		return []string{fmt.Sprintf(
			"conservation: pools=%d + in-transit=%d + executing=%d != inflight=%d",
			pools, transit, current, inflight)}
	}
	return nil
}

// bandErrs asserts that every queued task's cached Band matches
// ComputeBand — a mismatch means a task was requeued without reclassifying
// it and will be scheduled at the wrong priority. Sound under concurrency:
// Each holds the pool lock and Band is only written under it.
func (c *Checker) bandErrs() []string {
	var errs []string
	for i := 0; i < c.Mach.PEs(); i++ {
		pe := i
		c.Mach.Pool(i).Each(func(t task.Task) {
			if len(errs) >= maxViolations {
				return
			}
			if t.Band != t.ComputeBand() {
				errs = append(errs, fmt.Sprintf(
					"band: PE %d queued %s with band %d, ComputeBand says %d",
					pe, t, t.Band, t.ComputeBand()))
			}
		})
	}
	return errs
}

// underflowErrs asserts the mt-cnt/pendingRoots counters never underflowed
// (an underflow means a return was double-delivered or mis-attributed).
func (c *Checker) underflowErrs() []string {
	var errs []string
	for _, ctx := range bothCtxs {
		if n := c.Marker.UnderflowCount(ctx); n > 0 {
			errs = append(errs, fmt.Sprintf("underflow: %s mt-cnt underflowed %d times", ctx, n))
		}
	}
	return errs
}

// markedClosureErrs asserts invariant 2 of Figure 4-2 over the completed
// cycle's marking: a vertex marked at the context's epoch never points to a
// vertex that is unmarked at that epoch (unless the child was allocated
// during or after the cycle — the cycle never saw it) and never to a freed
// vertex (a freed child of a marked parent is a live vertex the cycle
// failed to protect). It takes one vertex lock at a time, so it is safe
// concurrently with between-cycle mutation: rewires only connect marked or
// fresh vertices while no cycle is active.
func (c *Checker) markedClosureErrs(ctx graph.Ctx) []string {
	epoch := c.Marker.Epoch(ctx)
	var errs []string
	c.Store.ForEach(func(v *graph.Vertex) {
		if len(errs) >= maxViolations {
			return
		}
		v.Lock()
		if v.Kind == graph.KindFree || v.CtxOf(ctx).StateAt(epoch) != graph.Marked {
			v.Unlock()
			return
		}
		id := v.ID
		var children []graph.VertexID
		if ctx == graph.CtxR {
			children = append(children, v.Args...)
		} else {
			children = v.TaskChildren(nil)
		}
		v.Unlock()
		for _, cid := range children {
			if cid == graph.NilVertex || cid == id {
				continue
			}
			cv := c.Store.Vertex(cid)
			if cv == nil {
				continue
			}
			cv.Lock()
			free := cv.Kind == graph.KindFree
			st := cv.CtxOf(ctx).StateAt(epoch)
			allocEpoch := cv.Red.AllocEpoch
			if ctx == graph.CtxT {
				allocEpoch = cv.Red.AllocEpochT
			}
			cv.Unlock()
			switch {
			case free:
				errs = append(errs, fmt.Sprintf(
					"I2(%s): marked v%d points to freed v%d — live vertex reclaimed", ctx, id, cid))
			case st == graph.Unmarked && allocEpoch < epoch:
				errs = append(errs, fmt.Sprintf(
					"I2(%s): marked v%d has unmarked child v%d after completed cycle", ctx, id, cid))
			}
		}
	})
	return errs
}

// confirmedDeadlockErrs asserts the two-phase verdict's soundness against
// ground truth: a CONFIRMED deadlock verdict claims the vertex can never
// reduce again (reduction axiom 4 — deadlock is stable), so the vertex must
// not have been freed, must not hold a value (that would mean the impossible
// reduction happened), and — when unexecuted reduction tasks exist — must
// not be in the sequential oracle's task-reachable set T (DL'_v = R'_v − T'
// demands DL'_v ∩ T' = ∅). The value/freed legs carry the quiescent case,
// where T is vacuously empty; the oracle leg bites at deterministic cycle
// ends while tasks are still queued.
func (c *Checker) confirmedDeadlockErrs() []string {
	if c.Coll == nil {
		return nil
	}
	dead := c.Coll.Deadlocked()
	if len(dead) == 0 {
		return nil
	}
	var errs []string
	for _, id := range dead {
		v := c.Store.Vertex(id)
		if v == nil {
			continue
		}
		v.Lock()
		free := v.Kind == graph.KindFree
		valued := v.IsValueLocked()
		v.Unlock()
		switch {
		case free:
			errs = append(errs, fmt.Sprintf(
				"verdict: confirmed-deadlocked v%d was freed", id))
		case valued:
			errs = append(errs, fmt.Sprintf(
				"verdict: confirmed-deadlocked v%d holds a value — the impossible reduction happened", id))
		}
	}
	var tasks []task.Task
	keep := func(t task.Task) {
		if t.Kind.IsReduction() {
			tasks = append(tasks, t)
		}
	}
	for i := 0; i < c.Mach.PEs(); i++ {
		c.Mach.Pool(i).Each(keep)
	}
	c.Mach.EachInTransit(keep)
	for _, t := range c.Mach.CurrentTasks() {
		keep(t)
	}
	if len(tasks) > 0 {
		res := analysis.Analyze(c.Store.Snapshot(), c.Coll.Root(), tasks)
		for _, id := range dead {
			if res.T[id] {
				errs = append(errs, fmt.Sprintf(
					"verdict: confirmed-deadlocked v%d is task-reachable (DL'_v ⊄ R'_v − T')", id))
			}
		}
	}
	return errs
}

// report records one sample's outcome.
func (c *Checker) report(point string, errs []string) {
	if c.Counters != nil {
		c.Counters.CheckRuns.Add(1)
	}
	if len(errs) == 0 {
		return
	}
	if c.Counters != nil {
		c.Counters.CheckViolations.Add(int64(len(errs)))
	}
	c.mu.Lock()
	for _, e := range errs {
		if len(c.violations) >= maxViolations {
			break
		}
		c.violations = append(c.violations, point+": "+e)
	}
	c.mu.Unlock()
	if c.Tracer != nil {
		for _, e := range errs {
			c.Tracer.Record("check.violation", 0, 0, point+": "+e)
		}
	}
	if c.OnViolation != nil {
		c.OnViolation()
	}
}

func (c *Checker) skip() {
	if c.Counters != nil {
		c.Counters.CheckSkipped.Add(1)
	}
}

func (c *Checker) capped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.violations) >= maxViolations
}

// Violations returns the violations recorded so far.
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...)
}

// Err summarizes the recorded violations as a single error, nil when the
// run is clean.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s); first: %s",
		len(c.violations), c.violations[0])
}
