package fabric

import (
	"sync"
	"testing"
	"time"

	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/task"
	"dgr/internal/trace"
)

// sink collects deliveries per destination PE.
type sink struct {
	mu  sync.Mutex
	got map[int][]task.Task
}

func newSink() *sink { return &sink{got: make(map[int][]task.Task)} }

func (s *sink) deliver(pe int, ts []task.Task) {
	s.mu.Lock()
	s.got[pe] = append(s.got[pe], ts...)
	s.mu.Unlock()
}

func (s *sink) count(pe int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got[pe])
}

func (s *sink) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ts := range s.got {
		n += len(ts)
	}
	return n
}

func tk(src, dst graph.VertexID) task.Task {
	return task.Task{Kind: task.Demand, Src: src, Dst: dst, Req: graph.ReqVital}
}

// drain pumps the deterministic fabric until nothing is in transit.
func drain(t *testing.T, f *Fabric) {
	t.Helper()
	for i := 0; i < 1_000_000 && f.Pending() > 0; i++ {
		f.Tick()
		if !f.Advance() && f.Pending() > 0 {
			t.Fatalf("Advance stalled with %d pending", f.Pending())
		}
	}
	if f.Pending() != 0 {
		t.Fatalf("fabric did not drain: %d pending", f.Pending())
	}
}

func TestFlushByCount(t *testing.T) {
	s := newSink()
	f := New(Config{PEs: 2, Seed: 1, BatchSize: 3, FlushEvery: time.Hour})
	f.SetDeliver(s.deliver)
	f.Enqueue(0, 1, tk(1, 2))
	f.Enqueue(0, 1, tk(1, 2))
	if s.count(1) != 0 {
		t.Fatalf("delivered before batch full: %d", s.count(1))
	}
	// Third task fills the batch; zero latency delivers synchronously.
	f.Enqueue(0, 1, tk(1, 2))
	if s.count(1) != 3 {
		t.Fatalf("delivered = %d, want 3", s.count(1))
	}
	if f.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", f.Pending())
	}
}

func TestFlushByDeadline(t *testing.T) {
	s := newSink()
	f := New(Config{PEs: 2, Seed: 1, BatchSize: 100, FlushEvery: 5 * time.Microsecond})
	f.SetDeliver(s.deliver)
	f.Enqueue(0, 1, tk(1, 2))
	for i := 0; i < 4; i++ {
		f.Tick()
	}
	if s.count(1) != 0 {
		t.Fatalf("delivered before deadline: %d", s.count(1))
	}
	f.Tick() // tick 5 = deadline
	if s.count(1) != 1 {
		t.Fatalf("delivered = %d, want 1 after deadline", s.count(1))
	}
}

func TestAdvanceFastForwards(t *testing.T) {
	s := newSink()
	f := New(Config{PEs: 2, Seed: 1, BatchSize: 100, FlushEvery: time.Millisecond,
		LinkLatency: 50 * time.Microsecond})
	f.SetDeliver(s.deliver)
	f.Enqueue(0, 1, tk(1, 2))
	// No ticking: Advance alone must jump to the flush deadline and then the
	// arrival, without walking 1050 individual ticks.
	for i := 0; i < 4 && f.Pending() > 0; i++ {
		if !f.Advance() {
			t.Fatalf("Advance returned false with %d pending", f.Pending())
		}
	}
	if s.count(1) != 1 {
		t.Fatalf("delivered = %d, want 1", s.count(1))
	}
	if f.Advance() {
		t.Fatal("Advance should report false when idle")
	}
}

func TestExactlyOnceUnderLoss(t *testing.T) {
	for _, drop := range []float64{0.1, 0.3, 0.6} {
		c := &metrics.Counters{}
		s := newSink()
		f := New(Config{PEs: 4, Seed: 99, BatchSize: 4, FlushEvery: 10 * time.Microsecond,
			LinkLatency: 3 * time.Microsecond, Jitter: 2 * time.Microsecond,
			DropRate: drop, ReorderRate: 0.2, Counters: c})
		f.SetDeliver(s.deliver)
		const n = 500
		for i := 0; i < n; i++ {
			f.Enqueue(i%4, (i+1)%4, tk(graph.VertexID(i+1), graph.VertexID(i+2)))
		}
		drain(t, f)
		if got := s.total(); got != n {
			t.Fatalf("drop=%.1f: delivered %d tasks, want exactly %d", drop, got, n)
		}
		snap := c.Snapshot()
		if snap.FabricSent != n || snap.FabricDelivered != n {
			t.Fatalf("drop=%.1f: sent=%d delivered=%d, want %d/%d",
				drop, snap.FabricSent, snap.FabricDelivered, n, n)
		}
		if snap.FabricDropped == 0 || snap.FabricRetries == 0 {
			t.Fatalf("drop=%.1f: no loss/retry recorded (dropped=%d retries=%d)",
				drop, snap.FabricDropped, snap.FabricRetries)
		}
		if snap.FabricRetries < snap.FabricDropped {
			t.Fatalf("drop=%.1f: every dropped transmission needs a retry (dropped=%d retries=%d)",
				drop, snap.FabricDropped, snap.FabricRetries)
		}
		if snap.FabricLatency.Total() != snap.FabricBatches {
			t.Fatalf("latency samples %d != batches %d", snap.FabricLatency.Total(), snap.FabricBatches)
		}
	}
}

func TestDeterministicReproducibility(t *testing.T) {
	run := func() metrics.Snapshot {
		c := &metrics.Counters{}
		s := newSink()
		f := New(Config{PEs: 3, Seed: 7, BatchSize: 2, FlushEvery: 7 * time.Microsecond,
			LinkLatency: 5 * time.Microsecond, Jitter: 4 * time.Microsecond,
			DropRate: 0.25, ReorderRate: 0.3, Counters: c})
		f.SetDeliver(s.deliver)
		for i := 0; i < 300; i++ {
			f.Enqueue(i%3, (i+1)%3, tk(graph.VertexID(i+1), graph.VertexID(i+2)))
			f.Tick()
		}
		drain(t, f)
		return c.Snapshot()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
	if a.FabricDropped == 0 {
		t.Fatal("expected injected loss at 25% drop")
	}
}

func TestEachAndExpunge(t *testing.T) {
	c := &metrics.Counters{}
	s := newSink()
	f := New(Config{PEs: 2, Seed: 1, BatchSize: 2, FlushEvery: time.Hour,
		LinkLatency: time.Hour, Counters: c})
	f.SetDeliver(s.deliver)
	// One full batch in flight (latency=1h keeps it undelivered) plus one
	// task buffered in the outbox.
	f.Enqueue(0, 1, tk(1, 10))
	f.Enqueue(0, 1, tk(1, 11))
	f.Enqueue(0, 1, tk(1, 12))
	var seen []graph.VertexID
	f.Each(func(t task.Task) { seen = append(seen, t.Dst) })
	if len(seen) != 3 {
		t.Fatalf("Each saw %d tasks, want 3 (in-flight batch + outbox)", len(seen))
	}
	// Expunge the two tasks addressed to 10 and 12.
	n := f.Expunge(func(t task.Task) bool { return t.Dst == 10 || t.Dst == 12 })
	if n != 2 {
		t.Fatalf("expunged %d, want 2", n)
	}
	if f.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", f.Pending())
	}
	if got := c.FabricExpunged.Load(); got != 2 {
		t.Fatalf("FabricExpunged = %d, want 2", got)
	}
	f.Flush()
	if s.total() != 1 || s.got[1][0].Dst != 11 {
		t.Fatalf("surviving delivery = %+v, want one task to v11", s.got[1])
	}
}

func TestLinkStatsAndTrace(t *testing.T) {
	tr := trace.NewTracer(1024)
	s := newSink()
	f := New(Config{PEs: 2, Seed: 3, BatchSize: 2, FlushEvery: 5 * time.Microsecond,
		DropRate: 0.3, Tracer: tr})
	f.SetDeliver(s.deliver)
	for i := 0; i < 40; i++ {
		f.Enqueue(0, 1, tk(1, 2))
	}
	drain(t, f)
	st := f.LinkStats()
	if len(st) != 1 {
		t.Fatalf("LinkStats len = %d, want 1", len(st))
	}
	if st[0].From != 0 || st[0].To != 1 || st[0].Sent != 40 || st[0].Delivered != 40 {
		t.Fatalf("bad link stat: %+v", st[0])
	}
	if st[0].Dropped == 0 || st[0].Latency.Total() != st[0].Batches {
		t.Fatalf("missing loss or latency samples: %+v", st[0])
	}
	kinds := make(map[string]int)
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []string{"fab.flush", "fab.deliver", "fab.drop", "fab.retry"} {
		if kinds[k] == 0 {
			t.Errorf("no %s events recorded: %v", k, kinds)
		}
	}
}

func TestParallelDelivery(t *testing.T) {
	c := &metrics.Counters{}
	s := newSink()
	f := New(Config{PEs: 4, Parallel: true, Seed: 5, BatchSize: 8,
		FlushEvery: 100 * time.Microsecond, LinkLatency: 50 * time.Microsecond,
		Jitter: 30 * time.Microsecond, DropRate: 0.1, Counters: c})
	f.SetDeliver(s.deliver)
	f.Start()
	const n = 2000
	var wg sync.WaitGroup
	for pe := 0; pe < 4; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				f.Enqueue(pe, (pe+1)%4, tk(graph.VertexID(pe+1), graph.VertexID(i+1)))
			}
		}(pe)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for f.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if f.Pending() != 0 {
		t.Fatalf("pending = %d after deadline", f.Pending())
	}
	if got := s.total(); got != n {
		t.Fatalf("delivered %d, want exactly %d", got, n)
	}
	f.Close()
	if c.FabricDelivered.Load() != n {
		t.Fatalf("FabricDelivered = %d, want %d", c.FabricDelivered.Load(), n)
	}
}

func TestCloseDeliversDirectly(t *testing.T) {
	s := newSink()
	f := New(Config{PEs: 2, Seed: 1})
	f.SetDeliver(s.deliver)
	f.Close()
	f.Enqueue(0, 1, tk(1, 2))
	if s.count(1) != 1 {
		t.Fatal("post-close Enqueue must bypass the network")
	}
}
