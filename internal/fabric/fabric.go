// Package fabric simulates the inter-PE message network of the paper's
// model. The paper's PEs have only local store and communicate exclusively
// by propagating task messages <s,d> between adjacent vertices; before this
// package, the scheduler's Spawn pushed cross-partition tasks straight into
// the destination pool and merely counted them. The fabric makes the network
// real enough to measure and to break:
//
//   - Batching/coalescing: each ordered PE pair (a link) has an outbox;
//     cross-partition tasks buffer there and flush as a batch when the outbox
//     reaches BatchSize or its oldest task has waited FlushEvery. A batch
//     arrives at the destination pool in one PushBatch — one lock, one
//     wakeup — amortizing per-message dispatch overhead the way PELCR-style
//     aggregated message passing does.
//
//   - Fault injection: per-link latency, jitter, reorder, and drop
//     probability. Delivery is at-least-once: batches carry per-link
//     sequence numbers, the receiver acks, the sender retransmits unacked
//     batches after RetryEvery, and the receiver dedups by sequence number,
//     so every task is delivered into its pool exactly once even at 10%
//     drop.
//
//   - Observability: per-link sent/delivered/dropped/retried/batched
//     counters and an enqueue→delivery latency histogram, mirrored into the
//     shared metrics.Counters.
//
// The fabric runs in two modes matching the scheduler's. In deterministic
// mode time is virtual: one scheduler step is one tick (≈1µs), Tick advances
// the clock, and Advance fast-forwards to the next due event when every pool
// is empty, so a seeded run replays the identical loss schedule. In parallel
// mode a pump goroutine flushes deadline-expired outboxes and retransmits,
// and latency is realized with timers.
//
// Custody accounting: a task in the fabric (outbox or undelivered batch)
// still counts against the machine's inflight counter, so quiescence
// detection waits for in-transit messages; Each and Expunge expose those
// tasks to the collector's M_T snapshot and restructuring phase.
package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dgr/internal/graph"
	"dgr/internal/metrics"
	"dgr/internal/obs"
	"dgr/internal/task"
	"dgr/internal/trace"
)

// maxDropRate caps fault injection so retransmission always makes progress.
const maxDropRate = 0.95

// Config parameterizes a Fabric.
type Config struct {
	PEs      int
	Parallel bool // drive with the pump goroutine instead of Tick/Advance
	Seed     int64

	BatchSize   int           // flush an outbox at this many tasks (default 16)
	FlushEvery  time.Duration // flush an outbox when its oldest task is this old (default 100µs)
	LinkLatency time.Duration // fixed one-way latency per transmission
	Jitter      time.Duration // additional uniform random latency
	DropRate    float64       // per-transmission loss probability, clamped to 0.95
	ReorderRate float64       // probability a batch is held back behind later traffic
	RetryEvery  time.Duration // retransmit an unacked batch after this long
	// (default 2·FlushEvery + 4·(LinkLatency+Jitter), at least 1ms)

	Counters *metrics.Counters // optional shared counters
	Tracer   *trace.Tracer     // optional event log (fab.* events)
	// Obs, when non-nil, receives the fab.* events into the flight recorder
	// and a "fab-batch" span per delivered batch (flush to first delivery).
	// Nil-safe.
	Obs *obs.Obs
	// Trace, when non-nil, receives causal-lineage spans for traced tasks
	// crossing the fabric: one "fabric-hop" span per traced task per
	// delivered batch (flush to delivery, wall clock) and a "fabric-retry"
	// point span per retransmission carrying traced tasks.
	Trace *obs.TraceSink
}

func (c Config) withDefaults() Config {
	if c.PEs < 1 {
		c.PEs = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 100 * time.Microsecond
	}
	if c.RetryEvery <= 0 {
		c.RetryEvery = 2*c.FlushEvery + 4*(c.LinkLatency+c.Jitter)
		if c.RetryEvery < time.Millisecond {
			c.RetryEvery = time.Millisecond
		}
	}
	if c.DropRate < 0 {
		c.DropRate = 0
	}
	if c.DropRate > maxDropRate {
		c.DropRate = maxDropRate
	}
	if c.ReorderRate < 0 {
		c.ReorderRate = 0
	}
	if c.ReorderRate > 1 {
		c.ReorderRate = 1
	}
	return c
}

// Fabric is the inter-PE network: PEs*(PEs-1) independent links, each with
// an outbox, an unacked-batch window, and fault-injection state.
type Fabric struct {
	cfg     Config
	links   []*link // index from*PEs+to; nil on the diagonal
	deliver func(pe int, ts []task.Task)

	pending   atomic.Int64 // tasks in custody: outboxes + undelivered batches
	busyLinks atomic.Int64 // links with any outbox/unacked state
	tick      atomic.Int64 // deterministic virtual clock
	closed    atomic.Bool

	// Duration knobs converted to clock units: ticks in deterministic mode
	// (1 tick ≈ 1µs), nanoseconds in parallel mode.
	flushD, latD, jitD, retryD int64

	stop chan struct{}
	wg   sync.WaitGroup
}

type link struct {
	f        *Fabric
	from, to int
	busy     atomic.Bool // has outbox or unacked state (fast-path skip)

	mu         sync.Mutex
	rng        *rand.Rand
	outbox     []task.Task
	outboxBorn int64 // clock when the oldest outbox task was enqueued
	nextSeq    uint64
	unacked    map[uint64]*batch

	// Stats, guarded by mu except the histogram (internally atomic).
	sent, delivered, batches, dropped int64
	retries, dups, acksDropped, expng int64
	hist                              metrics.Histogram
}

// batch is a flushed group of tasks awaiting acknowledgement. The "wire"
// carries only (link, seq): task data stays sender-side until the arrival
// event reads it under the link lock, which makes expungement of in-transit
// tasks and receiver-side dedup trivial.
type batch struct {
	seq      uint64
	tasks    []task.Task
	born     int64 // clock when the oldest task entered the outbox
	obsBorn  int64 // obs monotonic clock at flush (0 when obs is disabled)
	wallBorn int64 // wall clock at flush (0 unless lineage tracing is on)
	attempts int
	inFlight bool  // a transmission is en route
	dueAt    int64 // deterministic mode: arrival tick of that transmission
	retryAt  int64 // when to retransmit if not in flight (0 = not scheduled)
	// delivered means the receiver has the tasks but the ack was lost; the
	// batch stays in the window so retransmissions can be re-acked, and the
	// receiver suppresses the duplicate.
	delivered bool
}

// New builds a fabric. SetDeliver must be called before the first Enqueue.
func New(cfg Config) *Fabric {
	cfg = cfg.withDefaults()
	f := &Fabric{cfg: cfg}
	f.flushD = f.delta(cfg.FlushEvery)
	f.latD = f.delta(cfg.LinkLatency)
	f.jitD = f.delta(cfg.Jitter)
	f.retryD = f.delta(cfg.RetryEvery)
	f.links = make([]*link, cfg.PEs*cfg.PEs)
	for s := 0; s < cfg.PEs; s++ {
		for d := 0; d < cfg.PEs; d++ {
			if s == d {
				continue
			}
			idx := s*cfg.PEs + d
			f.links[idx] = &link{
				f:       f,
				from:    s,
				to:      d,
				rng:     rand.New(rand.NewSource(cfg.Seed*7919 + int64(idx)*104729 + 1)),
				unacked: make(map[uint64]*batch),
			}
		}
	}
	return f
}

// SetDeliver installs the delivery sink: the scheduler's per-PE pool push.
func (f *Fabric) SetDeliver(fn func(pe int, ts []task.Task)) { f.deliver = fn }

// delta converts a duration knob to clock units.
func (f *Fabric) delta(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	if f.cfg.Parallel {
		return int64(d)
	}
	t := int64(d / time.Microsecond)
	if t < 1 {
		t = 1
	}
	return t
}

func (f *Fabric) now() int64 {
	if f.cfg.Parallel {
		return time.Now().UnixNano()
	}
	return f.tick.Load()
}

func (f *Fabric) link(from, to int) *link {
	if from < 0 || to < 0 || from >= f.cfg.PEs || to >= f.cfg.PEs || from == to {
		return nil
	}
	return f.links[from*f.cfg.PEs+to]
}

// Enqueue accepts a cross-partition task from PE `from` addressed to PE
// `to`. The task buffers in the link's outbox until a count or deadline
// flush. Degenerate routes (from == to, closing fabric) bypass the network
// and deliver directly so no task is ever lost.
func (f *Fabric) Enqueue(from, to int, t task.Task) {
	lk := f.link(from, to)
	if lk == nil || f.closed.Load() {
		f.deliver(to, []task.Task{t})
		return
	}
	now := f.now()
	lk.mu.Lock()
	if len(lk.outbox) == 0 {
		lk.outboxBorn = now
	}
	lk.outbox = append(lk.outbox, t)
	lk.sent++
	lk.markBusyLocked()
	f.pending.Add(1)
	if c := f.cfg.Counters; c != nil {
		c.FabricSent.Add(1)
	}
	if len(lk.outbox) >= f.cfg.BatchSize {
		if b := lk.flushLocked(); b != nil {
			lk.transmitLocked(b, now)
		}
	}
	lk.mu.Unlock()
}

// flushLocked seals the outbox into a sequence-numbered batch and places it
// in the unacked window. Caller holds lk.mu.
func (lk *link) flushLocked() *batch {
	if len(lk.outbox) == 0 {
		return nil
	}
	lk.nextSeq++
	b := &batch{seq: lk.nextSeq, tasks: lk.outbox, born: lk.outboxBorn,
		obsBorn: lk.f.cfg.Obs.Now()}
	if lk.f.cfg.Trace != nil {
		b.wallBorn = time.Now().UnixNano()
	}
	lk.outbox = nil
	lk.unacked[b.seq] = b
	lk.batches++
	if c := lk.f.cfg.Counters; c != nil {
		c.FabricBatches.Add(1)
	}
	lk.f.traceEvent("fab.flush", lk, fmt.Sprintf("seq=%d n=%d", b.seq, len(b.tasks)))
	return b
}

// transmitLocked puts one copy of the batch on the wire. Caller holds lk.mu.
func (lk *link) transmitLocked(b *batch, now int64) {
	f := lk.f
	b.attempts++
	b.retryAt = 0
	if b.attempts > 1 {
		lk.retries++
		if c := f.cfg.Counters; c != nil {
			c.FabricRetries.Add(1)
		}
		f.traceEvent("fab.retry", lk, fmt.Sprintf("seq=%d attempt=%d", b.seq, b.attempts))
		if s := f.cfg.Trace; s != nil {
			wall := time.Now().UnixNano()
			for _, t := range b.tasks {
				if t.Trace == 0 {
					continue
				}
				s.Record(obs.TraceSpan{Trace: t.Trace, Span: s.NewSpan(),
					Parent: t.Span(), Name: "fabric-retry", Cat: obs.CatFabric,
					PE: lk.to, Start: wall, End: wall, N: int64(b.attempts),
					Note: fmt.Sprintf("from=%d to=%d seq=%d", lk.from, lk.to, b.seq)})
			}
		}
	}
	delay := f.latD
	if f.jitD > 0 {
		delay += lk.rng.Int63n(f.jitD + 1)
	}
	if f.cfg.ReorderRate > 0 && lk.rng.Float64() < f.cfg.ReorderRate {
		// Reorder fault: hold this copy back a full latency+flush window so
		// batches flushed after it overtake it.
		delay += f.latD + f.flushD
	}
	b.inFlight = true
	if f.cfg.Parallel {
		if delay <= 0 {
			lk.arriveLocked(b, f.now())
			return
		}
		seq := b.seq
		time.AfterFunc(time.Duration(delay), func() { lk.arrive(seq) })
		return
	}
	b.dueAt = now + delay
	if b.dueAt <= now {
		lk.arriveLocked(b, now)
	}
}

// arrive realizes a parallel-mode transmission landing: the batch may have
// been acked or expunged in the meantime, in which case this is a no-op.
func (lk *link) arrive(seq uint64) {
	lk.mu.Lock()
	if b := lk.unacked[seq]; b != nil && b.inFlight {
		lk.arriveLocked(b, lk.f.now())
	}
	lk.syncBusyLocked()
	lk.mu.Unlock()
}

// arriveLocked is one transmission reaching the receiver: roll for drop,
// deliver (or suppress the duplicate), then roll for ack loss. Caller holds
// lk.mu; the delivery sink is invoked under it — pools are leaf locks.
func (lk *link) arriveLocked(b *batch, now int64) {
	f := lk.f
	b.inFlight = false
	b.dueAt = 0
	c := f.cfg.Counters
	if f.cfg.DropRate > 0 && lk.rng.Float64() < f.cfg.DropRate {
		lk.dropped++
		if c != nil {
			c.FabricDropped.Add(1)
		}
		f.traceEvent("fab.drop", lk, fmt.Sprintf("seq=%d attempt=%d", b.seq, b.attempts))
		b.retryAt = now + f.retryD
		return
	}
	if !b.delivered {
		b.delivered = true
		n := int64(len(b.tasks))
		lk.delivered += n
		f.pending.Add(-n)
		lat := now - b.born
		if f.cfg.Parallel {
			lat /= int64(time.Microsecond)
		}
		lk.hist.Observe(lat)
		if c != nil {
			c.FabricDelivered.Add(n)
			c.FabricLatency.Observe(lat)
		}
		f.traceEvent("fab.deliver", lk, fmt.Sprintf("seq=%d n=%d attempt=%d", b.seq, len(b.tasks), b.attempts))
		f.cfg.Obs.Span("fab-batch", "fabric", obs.TIDFabric, b.obsBorn, n)
		if s := f.cfg.Trace; s != nil {
			wall := time.Now().UnixNano()
			for _, t := range b.tasks {
				if t.Trace == 0 {
					continue
				}
				s.Record(obs.TraceSpan{Trace: t.Trace, Span: s.NewSpan(),
					Parent: t.Span(), Name: "fabric-hop", Cat: obs.CatFabric,
					PE: lk.to, Start: b.wallBorn, End: wall, N: int64(b.attempts),
					Note: fmt.Sprintf("from=%d to=%d seq=%d attempts=%d",
						lk.from, lk.to, b.seq, b.attempts)})
			}
		}
		if n > 0 {
			f.deliver(lk.to, b.tasks)
		}
	} else {
		// Receiver-side dedup: it has seen seq already; just re-ack.
		lk.dups++
		if c != nil {
			c.FabricDuplicates.Add(1)
		}
		f.traceEvent("fab.dup", lk, fmt.Sprintf("seq=%d", b.seq))
	}
	// The ack crosses the same lossy link.
	if f.cfg.DropRate > 0 && lk.rng.Float64() < f.cfg.DropRate {
		lk.acksDropped++
		if c != nil {
			c.FabricAcksDropped.Add(1)
		}
		f.traceEvent("fab.ackdrop", lk, fmt.Sprintf("seq=%d", b.seq))
		b.retryAt = now + f.retryD
		return
	}
	delete(lk.unacked, b.seq)
}

func (lk *link) markBusyLocked() {
	if !lk.busy.Load() {
		lk.busy.Store(true)
		lk.f.busyLinks.Add(1)
	}
}

func (lk *link) syncBusyLocked() {
	idle := len(lk.outbox) == 0 && len(lk.unacked) == 0
	if idle && lk.busy.Load() {
		lk.busy.Store(false)
		lk.f.busyLinks.Add(-1)
	}
}

// Tick advances the deterministic virtual clock by one tick (the scheduler
// calls it once per Step) and runs every due flush, arrival, and retry.
func (f *Fabric) Tick() {
	if f.cfg.Parallel {
		return
	}
	now := f.tick.Add(1)
	if f.busyLinks.Load() == 0 {
		return
	}
	for _, lk := range f.links {
		if lk == nil || !lk.busy.Load() {
			continue
		}
		lk.runDue(now)
	}
}

// runDue executes every event on the link due at or before now. Events run
// in deterministic order (arrivals by due tick then sequence, retries by
// retry tick then sequence) so the seeded rng stream replays identically.
func (lk *link) runDue(now int64) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if len(lk.outbox) > 0 && now >= lk.outboxBorn+lk.f.flushD {
		if b := lk.flushLocked(); b != nil {
			lk.transmitLocked(b, now)
		}
	}
	var due, retry []*batch
	for _, b := range lk.unacked {
		switch {
		case b.inFlight && b.dueAt > 0 && now >= b.dueAt:
			due = append(due, b)
		case !b.inFlight && b.retryAt > 0 && now >= b.retryAt:
			retry = append(retry, b)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].dueAt != due[j].dueAt {
			return due[i].dueAt < due[j].dueAt
		}
		return due[i].seq < due[j].seq
	})
	sort.Slice(retry, func(i, j int) bool {
		if retry[i].retryAt != retry[j].retryAt {
			return retry[i].retryAt < retry[j].retryAt
		}
		return retry[i].seq < retry[j].seq
	})
	for _, b := range due {
		lk.arriveLocked(b, now)
	}
	for _, b := range retry {
		if lk.unacked[b.seq] != nil { // may have been acked by an earlier arrival
			lk.transmitLocked(b, now)
		}
	}
	lk.syncBusyLocked()
}

// Advance fast-forwards the deterministic clock to the next due fabric
// event and runs it. It returns false when no tasks are in transit — the
// scheduler calls it only when every pool is empty, so false there means
// quiescence. Each call makes progress: the clock jumps straight to the
// earliest flush deadline, arrival, or retry.
func (f *Fabric) Advance() bool {
	if f.cfg.Parallel || f.pending.Load() == 0 {
		return false
	}
	now := f.tick.Load()
	next := int64(math.MaxInt64)
	for _, lk := range f.links {
		if lk == nil || !lk.busy.Load() {
			continue
		}
		lk.mu.Lock()
		if len(lk.outbox) > 0 {
			if d := lk.outboxBorn + f.flushD; d < next {
				next = d
			}
		}
		for _, b := range lk.unacked {
			switch {
			case b.inFlight && b.dueAt > 0 && b.dueAt < next:
				next = b.dueAt
			case !b.inFlight && b.retryAt > 0 && b.retryAt < next:
				next = b.retryAt
			}
		}
		lk.mu.Unlock()
	}
	if next == math.MaxInt64 {
		return false
	}
	if next < now {
		next = now
	}
	f.tick.Store(next)
	for _, lk := range f.links {
		if lk == nil || !lk.busy.Load() {
			continue
		}
		lk.runDue(next)
	}
	return true
}

// Start launches the parallel-mode pump goroutine that flushes
// deadline-expired outboxes and retransmits unacked batches. No-op in
// deterministic mode.
func (f *Fabric) Start() {
	if !f.cfg.Parallel || f.closed.Load() {
		return
	}
	f.stop = make(chan struct{})
	f.wg.Add(1)
	go f.pump()
}

func (f *Fabric) pump() {
	defer f.wg.Done()
	period := f.cfg.FlushEvery
	if period < 50*time.Microsecond {
		period = 50 * time.Microsecond
	}
	tk := time.NewTicker(period)
	defer tk.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tk.C:
			now := time.Now().UnixNano()
			for _, lk := range f.links {
				if lk == nil || !lk.busy.Load() {
					continue
				}
				lk.runDuePar(now)
			}
		}
	}
}

// runDuePar is the parallel-mode pump pass: deadline flushes and retries.
// Arrivals happen on their own timers.
func (lk *link) runDuePar(now int64) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if len(lk.outbox) > 0 && now >= lk.outboxBorn+lk.f.flushD {
		if b := lk.flushLocked(); b != nil {
			lk.transmitLocked(b, now)
		}
	}
	var retry []*batch
	for _, b := range lk.unacked {
		if !b.inFlight && b.retryAt > 0 && now >= b.retryAt {
			retry = append(retry, b)
		}
	}
	sort.Slice(retry, func(i, j int) bool { return retry[i].seq < retry[j].seq })
	for _, b := range retry {
		if lk.unacked[b.seq] != nil {
			lk.transmitLocked(b, now)
		}
	}
	lk.syncBusyLocked()
}

// Flush force-flushes every outbox immediately (deadline be damned) and, in
// deterministic mode, pumps until nothing is in transit. Used by tests and
// by drains that cannot wait for deadlines.
func (f *Fabric) Flush() {
	now := f.now()
	for _, lk := range f.links {
		if lk == nil || !lk.busy.Load() {
			continue
		}
		lk.mu.Lock()
		if b := lk.flushLocked(); b != nil {
			lk.transmitLocked(b, now)
		}
		lk.syncBusyLocked()
		lk.mu.Unlock()
	}
	if !f.cfg.Parallel {
		for f.Advance() {
		}
	}
}

// Close stops the pump (parallel mode) and routes subsequent Enqueues
// directly to the delivery sink. In-flight timer arrivals still complete,
// so no task in custody is lost.
func (f *Fabric) Close() {
	if f.closed.Swap(true) {
		return
	}
	if f.cfg.Parallel && f.stop != nil {
		close(f.stop)
		f.wg.Wait()
	}
}

// Pending returns the number of tasks in fabric custody: buffered in an
// outbox or sealed in an undelivered batch.
func (f *Fabric) Pending() int64 { return f.pending.Load() }

// Each calls fn for every task in fabric custody. This is the in-transit
// half of the M_T taskpool snapshot: combined with Pool.Each, every live
// task is observable to the collector.
func (f *Fabric) Each(fn func(task.Task)) {
	for _, lk := range f.links {
		if lk == nil || !lk.busy.Load() {
			continue
		}
		lk.mu.Lock()
		for _, t := range lk.outbox {
			fn(t)
		}
		for _, b := range lk.unacked {
			if b.delivered {
				continue
			}
			for _, t := range b.tasks {
				fn(t)
			}
		}
		lk.mu.Unlock()
	}
}

// Expunge removes every in-custody task for which pred returns true —
// restructuring's deletion of irrelevant tasks extended to messages on the
// wire. Already-delivered batches are untouched (their tasks are in pools
// and get expunged there). An in-flight batch whose tasks are all expunged
// is dropped from the window, turning its arrival into a no-op.
func (f *Fabric) Expunge(pred func(task.Task) bool) int {
	removed := 0
	for _, lk := range f.links {
		if lk == nil || !lk.busy.Load() {
			continue
		}
		lk.mu.Lock()
		kept := lk.outbox[:0]
		for _, t := range lk.outbox {
			if pred(t) {
				removed++
				lk.expng++
				continue
			}
			kept = append(kept, t)
		}
		lk.outbox = kept
		for seq, b := range lk.unacked {
			if b.delivered {
				continue
			}
			bk := b.tasks[:0]
			for _, t := range b.tasks {
				if pred(t) {
					removed++
					lk.expng++
					continue
				}
				bk = append(bk, t)
			}
			b.tasks = bk
			if len(b.tasks) == 0 {
				delete(lk.unacked, seq)
			}
		}
		lk.syncBusyLocked()
		lk.mu.Unlock()
	}
	if removed > 0 {
		f.pending.Add(int64(-removed))
		if c := f.cfg.Counters; c != nil {
			c.FabricExpunged.Add(int64(removed))
		}
	}
	return removed
}

// LinkStat is a per-link traffic summary.
type LinkStat struct {
	From, To    int
	Sent        int64 // tasks enqueued
	Delivered   int64 // tasks delivered to the destination pool
	Batches     int64 // batches flushed
	Dropped     int64 // transmissions lost
	Retries     int64 // retransmissions
	Duplicates  int64 // duplicate deliveries suppressed
	AcksDropped int64 // acks lost
	Expunged    int64 // in-transit tasks expunged
	InTransit   int   // tasks currently in custody
	Latency     metrics.HistSnapshot
}

// LinkStats returns stats for every link that has carried traffic, ordered
// by (from, to).
func (f *Fabric) LinkStats() []LinkStat {
	var out []LinkStat
	for _, lk := range f.links {
		if lk == nil {
			continue
		}
		lk.mu.Lock()
		if lk.sent == 0 {
			lk.mu.Unlock()
			continue
		}
		st := LinkStat{
			From: lk.from, To: lk.to,
			Sent: lk.sent, Delivered: lk.delivered, Batches: lk.batches,
			Dropped: lk.dropped, Retries: lk.retries, Duplicates: lk.dups,
			AcksDropped: lk.acksDropped, Expunged: lk.expng,
			Latency: lk.hist.Snapshot(),
		}
		st.InTransit = len(lk.outbox)
		for _, b := range lk.unacked {
			if !b.delivered {
				st.InTransit += len(b.tasks)
			}
		}
		lk.mu.Unlock()
		out = append(out, st)
	}
	return out
}

func (f *Fabric) traceEvent(kind string, lk *link, note string) {
	if f.cfg.Tracer != nil {
		f.cfg.Tracer.Record(kind, graph.VertexID(lk.from), graph.VertexID(lk.to), note)
	}
	f.cfg.Obs.Event(obs.TIDFabric, kind, uint64(lk.from), uint64(lk.to), note)
}
