package serve

import (
	"dgr/internal/metrics"
	"dgr/internal/task"
)

// TenantLimits configures one tenant's admission quotas and scheduling
// class. The zero value means "use the server defaults".
type TenantLimits struct {
	// MaxInflight bounds the tenant's queued-plus-running requests;
	// admission beyond it is rejected with CodeTenantInflight.
	MaxInflight int
	// VertexQuota bounds the sum of graph vertices charged to the tenant's
	// in-flight requests (each request is charged its predicted footprint,
	// settled against the store's FreeCount delta when it finishes);
	// admission beyond it is rejected with CodeTenantQuota.
	VertexQuota int
	// Band maps the tenant onto one of the machine's existing scheduling
	// bands — task.BandVital, task.BandEager (default), or task.BandReserve.
	// Higher bands get proportionally more dispatcher credits.
	Band uint8
	// Weight is the tenant's within-band weighted-round-robin share
	// (default 1): a weight-3 tenant may dequeue three jobs per ring visit.
	Weight int
}

func (l TenantLimits) withDefaults(o Options) TenantLimits {
	if l.MaxInflight <= 0 {
		l.MaxInflight = o.DefaultLimits.MaxInflight
	}
	if l.VertexQuota <= 0 {
		l.VertexQuota = o.DefaultLimits.VertexQuota
	}
	if l.Band != task.BandReserve && l.Band != task.BandVital {
		l.Band = task.BandEager
	}
	if l.Weight <= 0 {
		l.Weight = 1
	}
	return l
}

// tenantStats are the per-tenant counters the exposition renders. All
// fields except the latency histogram are guarded by the server mutex.
type tenantStats struct {
	Requests         int64
	Admitted         int64
	Completed        int64
	Failed           int64
	RejectedQueue    int64
	RejectedInflight int64
	RejectedQuota    int64
	CacheHits        int64
	CacheMisses      int64
	latency          metrics.Histogram // completed-request latency, µs
}

// tenant is the server-side state for one tenant. Guarded by the server
// mutex.
type tenant struct {
	name     string
	limits   TenantLimits
	queue    []*Job
	inflight int // queued + running jobs
	charged  int // vertices charged to in-flight jobs
	// estimate is the EWMA of observed per-request vertex footprints; it
	// prices the next admission's quota charge.
	estimate float64
	// deficit is the tenant's remaining within-band WRR credit for the
	// current ring visit.
	deficit int
	inRing  bool
	stats   tenantStats
	// Lineage exemplar: the slowest traced request seen so far, exposed
	// next to the tenant's latency quantiles so an operator can jump from
	// a latency regression straight to a concrete trace.
	slowestTrace uint64
	slowestUs    int64
}

// observeTrace updates the tenant's slowest-traced-request exemplar from a
// finished job. Guarded by the server mutex like the rest of the stats.
func (t *tenant) observeTrace(j *Job) {
	if j.trace == 0 {
		return
	}
	us := j.finished.Sub(j.submitted).Microseconds()
	if us > t.slowestUs || t.slowestTrace == 0 {
		t.slowestTrace, t.slowestUs = j.trace, us
	}
}

// charge prices one request against the vertex quota.
func (t *tenant) chargeCost(o Options) int {
	c := int(t.estimate)
	if c <= 0 {
		c = o.EstimateVertices
	}
	if c > t.limits.VertexQuota {
		// A footprint estimate above the whole quota would wedge the tenant
		// permanently; clamp so exactly one such request runs at a time.
		c = t.limits.VertexQuota
	}
	return c
}

// observe folds a finished request's measured vertex footprint into the
// estimate (EWMA, 30% new observation).
func (t *tenant) observe(used int) {
	if used < 1 {
		used = 1
	}
	if t.estimate <= 0 {
		t.estimate = float64(used)
		return
	}
	t.estimate = 0.7*t.estimate + 0.3*float64(used)
}

// bandWeight is the dispatcher credit each band receives per refill:
// vital tenants get four dequeues for every one a reserve tenant gets,
// mirroring the machine's own band priorities without ever starving a
// band that has work (credits refill whenever every queued band is dry).
func bandWeight(band uint8) int {
	switch band {
	case task.BandVital:
		return 4
	case task.BandEager:
		return 2
	default:
		return 1
	}
}
