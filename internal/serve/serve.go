// Package serve is the multi-tenant serving layer: a long-running pool of
// dgr.Machine workers fronted by admission control (bounded queue,
// per-tenant in-flight and vertex quotas), weighted-round-robin fair
// scheduling across tenants mapped onto the machine's priority bands, and
// a normal-form memo cache keyed by canonical program digest so repeated
// hot queries skip reduction entirely. cmd/dgr-serve exposes it over
// HTTP/JSON; internal/workload's serveload harness load-tests it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"dgr"
	"dgr/internal/lang"
	"dgr/internal/metrics"
	"dgr/internal/obs"
)

// Structured rejection and failure codes. Admission rejections (queue,
// in-flight, quota) are the contract the load harness and clients key on:
// an over-limit request gets a code, never a hang.
const (
	CodeParse          = "parse_error"
	CodeQueueFull      = "queue_full"
	CodeTenantInflight = "tenant_inflight"
	CodeTenantQuota    = "tenant_quota"
	CodeClosed         = "server_closed"
	CodeDeadlock       = "deadlock"
	CodeStuck          = "stuck"
	CodeBudget         = "budget_exhausted"
	CodeNotFound       = "not_found"
	CodeBadRequest     = "bad_request"
)

// Error is the structured error every rejection and failure surfaces.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Tenant  string `json:"tenant,omitempty"`
	Limit   int    `json:"limit,omitempty"`
	Current int    `json:"current,omitempty"`
}

func (e *Error) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("serve: %s (tenant %q): %s", e.Code, e.Tenant, e.Message)
	}
	return fmt.Sprintf("serve: %s: %s", e.Code, e.Message)
}

// IsRejection reports whether e is an admission rejection (retryable by
// the client later) rather than an evaluation failure.
func (e *Error) IsRejection() bool {
	switch e.Code {
	case CodeQueueFull, CodeTenantInflight, CodeTenantQuota, CodeClosed:
		return true
	}
	return false
}

// Options configures a Server. The zero value is usable: two deterministic
// 2-PE workers, a 256-deep admission queue, and a 1024-entry memo cache.
type Options struct {
	// Workers is the machine-pool size (default 2).
	Workers int
	// PEs, Parallel, Seed, Capacity, MaxSteps, Timeout, Check, and Obs
	// configure each pooled dgr.Machine (defaults: 2 PEs, deterministic,
	// seed 1, 1<<16 vertices, machine defaults for the budgets).
	PEs      int
	Parallel bool
	Seed     int64
	Capacity int
	MaxSteps int
	Timeout  time.Duration
	Check    bool
	Obs      bool
	// Engine selects the reduction back end for every pooled machine
	// (dgr.EngineInterp or dgr.EngineCompiled; default interpreted).
	Engine string

	// QueueDepth bounds the total queued (not yet running) jobs across all
	// tenants (default 256); admission beyond it is CodeQueueFull.
	QueueDepth int
	// CacheEntries bounds the normal-form memo cache (default 1024).
	CacheEntries int
	// DefaultLimits applies to tenants not configured via SetTenant
	// (defaults: MaxInflight 8, VertexQuota Capacity/2, BandEager, weight 1).
	DefaultLimits TenantLimits
	// EstimateVertices prices a tenant's first request against its vertex
	// quota before any footprint has been observed (default 2048).
	EstimateVertices int
	// JobHistory bounds how many finished jobs remain queryable by ID
	// (default 4096; oldest evicted first).
	JobHistory int

	// TraceRate enables causal task-lineage tracing: each submission is
	// head-sampled at this rate, and a sampled request's full causal
	// history — admission, queue wait, memo probe, dispatch, the machine's
	// spawn/steal/fabric lineage, settle — is recorded into one shared
	// trace sink across the whole pool, assembled (with critical-path
	// blame) at /debug/traces.json. 0 disables tracing.
	TraceRate float64
	// TraceCapacity bounds the shared sink's span ring (default 1<<17).
	TraceCapacity int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.PEs <= 0 {
		o.PEs = 2
	}
	if o.Capacity <= 0 {
		o.Capacity = 1 << 16
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.DefaultLimits.MaxInflight <= 0 {
		o.DefaultLimits.MaxInflight = 8
	}
	if o.DefaultLimits.VertexQuota <= 0 {
		o.DefaultLimits.VertexQuota = o.Capacity / 2
	}
	if o.EstimateVertices <= 0 {
		o.EstimateVertices = 2048
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 4096
	}
	if o.TraceCapacity <= 0 {
		o.TraceCapacity = 1 << 17
	}
	return o
}

// Request is one evaluation submission.
type Request struct {
	// Tenant names the submitting tenant ("" is the anonymous tenant).
	Tenant string `json:"tenant"`
	// Program is the source text to evaluate.
	Program string `json:"program"`
	// List forces every element of a list-valued program (EvalList);
	// otherwise the program is reduced to WHNF (Eval).
	List bool `json:"list,omitempty"`
}

// Result is a serialized normal form — what the memo cache stores and the
// API returns. Rendered is the canonical text form; warm-cache reruns
// return it byte-identical to the cold evaluation that populated the entry.
type Result struct {
	Kind     string   `json:"kind"`
	Rendered string   `json:"rendered"`
	Elems    []string `json:"elems,omitempty"`
}

// Job states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Job is one admitted evaluation. All fields are guarded by the server
// mutex; read them through View/Wait.
type Job struct {
	s *Server

	id       string
	tenant   *tenant
	req      Request
	digest   string
	cost     int
	status   string
	cacheHit bool
	result   *Result
	err      *Error

	submitted time.Time
	started   time.Time
	evalDone  time.Time
	finished  time.Time
	done      chan struct{}

	// Lineage: nonzero when this request was head-sampled at admission.
	// rootSpan is the "request" envelope span every other span of the
	// trace — serve phases and the machine's task lineage — hangs off.
	trace    uint64
	rootSpan uint32
}

// JobView is an immutable snapshot of a Job. TraceID, when non-empty, is
// the lineage trace this request was sampled into (look it up in
// /debug/traces.json or `dgr-trace analyze`).
type JobView struct {
	ID        string  `json:"id"`
	Tenant    string  `json:"tenant"`
	Status    string  `json:"status"`
	Digest    string  `json:"digest"`
	CacheHit  bool    `json:"cache_hit"`
	Result    *Result `json:"result,omitempty"`
	Err       *Error  `json:"error,omitempty"`
	ElapsedUs int64   `json:"elapsed_us"`
	TraceID   string  `json:"trace_id,omitempty"`
}

// ID returns the job's identifier (stable, safe without the lock).
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// View snapshots the job.
func (j *Job) View() JobView {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.viewLocked()
}

func (j *Job) viewLocked() JobView {
	v := JobView{
		ID: j.id, Tenant: j.tenant.name, Status: j.status,
		Digest: j.digest, CacheHit: j.cacheHit, Result: j.result, Err: j.err,
	}
	if j.trace != 0 {
		v.TraceID = fmt.Sprintf("%x", j.trace)
	}
	switch j.status {
	case StatusDone, StatusFailed:
		v.ElapsedUs = j.finished.Sub(j.submitted).Microseconds()
	default:
		v.ElapsedUs = time.Since(j.submitted).Microseconds()
	}
	return v
}

// Wait blocks until the job finishes or ctx is done, returning the final
// (or, on ctx expiry, current) snapshot.
func (j *Job) Wait(ctx context.Context) (JobView, error) {
	select {
	case <-j.done:
		return j.View(), nil
	case <-ctx.Done():
		return j.View(), ctx.Err()
	}
}

// worker owns one pooled machine. The machine pointer is guarded by the
// server mutex (the owning goroutine swaps it on recycle; exposition
// endpoints read it), but only the worker goroutine ever calls Eval on it.
type worker struct {
	id int
	m  *dgr.Machine
}

// Server is the multi-tenant serving layer.
type Server struct {
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	tenants map[string]*tenant
	jobs    map[string]*Job
	history []string // finished job IDs, oldest first
	queued  int      // jobs admitted but not yet dispatched
	running int
	nextID  uint64

	// rings hold, per scheduling band, the tenants that currently have
	// queued jobs; credits implement the weighted round-robin across bands.
	rings   [3][]*tenant
	cursor  [3]int
	credits [3]int

	workers    []*worker
	wg         sync.WaitGroup
	recycles   int64
	violations []string // from recycled (closed) machines, capped

	cache *memoCache
	// trace is the pool-wide lineage sink (nil when tracing is off): one
	// ring shared by the serving layer and every pooled machine, so a
	// request's spans assemble into one trace no matter which machine —
	// or, after a recycle, which machine generation — served it.
	trace *obs.TraceSink
}

// New builds and starts a server (its worker goroutines idle until jobs
// arrive). Close must be called to stop them.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		tenants: make(map[string]*tenant),
		jobs:    make(map[string]*Job),
		cache:   newMemoCache(opts.CacheEntries),
	}
	if opts.TraceRate > 0 {
		s.trace = obs.NewTraceSink(opts.TraceCapacity, opts.TraceRate)
	}
	s.cond = sync.NewCond(&s.mu)
	for b := range s.credits {
		s.credits[b] = bandWeight(uint8(b))
	}
	for i := 0; i < opts.Workers; i++ {
		w := &worker{id: i, m: s.newMachine(i)}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go s.workerLoop(w)
	}
	return s
}

func (s *Server) newMachine(id int) *dgr.Machine {
	return dgr.New(dgr.Options{
		PEs:      s.opts.PEs,
		Parallel: s.opts.Parallel,
		Seed:     s.opts.Seed + int64(id),
		Capacity: s.opts.Capacity,
		MaxSteps: s.opts.MaxSteps,
		Timeout:  s.opts.Timeout,
		Check:    s.opts.Check,
		Obs:      s.opts.Obs,
		Engine:   s.opts.Engine,
		// Shared sink with rate 0 at the machine level: sampling is the
		// server's admission-time decision, carried in via EvalTraced.
		TraceSink: s.trace,
	})
}

// SetTenant configures a tenant's limits and scheduling class. Unknown
// tenants get Options.DefaultLimits on first contact.
func (s *Server) SetTenant(name string, lim TenantLimits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(name)
	wasBand := t.limits.Band
	t.limits = lim.withDefaults(s.opts)
	if t.inRing && t.limits.Band != wasBand {
		s.ringRemoveLocked(t, wasBand)
		s.ringAddLocked(t)
	}
}

func (s *Server) tenantLocked(name string) *tenant {
	if name == "" {
		name = "anonymous"
	}
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{name: name, limits: TenantLimits{}.withDefaults(s.opts)}
		s.tenants[name] = t
	}
	return t
}

// Submit admits one evaluation. It returns a structured *Error (as error)
// on parse failure or admission rejection; otherwise the returned job is
// queued — or, on a memo-cache hit, already done — and never blocks on
// machine availability. A hit is served at admission: it consumes no queue
// slot, no quota charge, and no machine time.
func (s *Server) Submit(req Request) (*Job, error) {
	digest, derr := lang.DigestString(req.Program)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &Error{Code: CodeClosed, Message: "server is shutting down"}
	}
	t := s.tenantLocked(req.Tenant)
	t.stats.Requests++
	if derr != nil {
		t.stats.Failed++
		return nil, &Error{Code: CodeParse, Message: derr.Error(), Tenant: t.name}
	}

	// Head-sampling decision: made once at admission, before the outcome
	// is known, so rejected and failed requests are as likely to carry a
	// trace as successful ones (and always, once the sink is forced).
	var trID uint64
	var rootSpan uint32
	if s.trace.Sample() {
		trID = s.trace.NewTrace()
		rootSpan = s.trace.NewSpan()
	}

	// Memo-cache fast path: a known normal form short-circuits admission.
	if res, ok := s.cacheGetLocked(digest, req.List); ok {
		t.stats.CacheHits++
		t.stats.Admitted++
		t.stats.Completed++
		j := s.newJobLocked(t, req, digest)
		j.trace, j.rootSpan = trID, rootSpan
		j.status = StatusDone
		j.cacheHit = true
		j.result = res
		j.started = j.submitted
		j.finished = time.Now()
		t.inflight-- // newJobLocked charged it; a hit never occupies a slot
		t.stats.latency.Observe(j.finished.Sub(j.submitted).Microseconds())
		if j.trace != 0 {
			s.trace.Record(obs.TraceSpan{Trace: j.trace, Span: s.trace.NewSpan(),
				Parent: j.rootSpan, Name: "memo", Cat: obs.CatServe, PE: obs.TIDEval,
				Start: j.submitted.UnixNano(), End: j.finished.UnixNano(), Note: "hit"})
			s.traceRequestLocked(j)
		}
		t.observeTrace(j)
		close(j.done)
		s.retireLocked(j)
		return j, nil
	}

	// Admission control: global queue bound, then per-tenant quotas.
	if s.queued >= s.opts.QueueDepth {
		t.stats.RejectedQueue++
		return nil, &Error{
			Code: CodeQueueFull, Message: "admission queue is full",
			Tenant: t.name, Limit: s.opts.QueueDepth, Current: s.queued,
		}
	}
	if t.inflight >= t.limits.MaxInflight {
		t.stats.RejectedInflight++
		return nil, &Error{
			Code: CodeTenantInflight, Message: "tenant in-flight limit reached",
			Tenant: t.name, Limit: t.limits.MaxInflight, Current: t.inflight,
		}
	}
	cost := t.chargeCost(s.opts)
	if t.charged+cost > t.limits.VertexQuota {
		t.stats.RejectedQuota++
		return nil, &Error{
			Code: CodeTenantQuota, Message: "tenant graph-vertex quota reached",
			Tenant: t.name, Limit: t.limits.VertexQuota, Current: t.charged,
		}
	}

	t.stats.Admitted++
	t.stats.CacheMisses++
	j := s.newJobLocked(t, req, digest)
	j.trace, j.rootSpan = trID, rootSpan
	j.cost = cost
	t.charged += cost
	t.queue = append(t.queue, j)
	s.queued++
	s.ringAddLocked(t)
	if j.trace != 0 {
		s.trace.Record(obs.TraceSpan{Trace: j.trace, Span: s.trace.NewSpan(),
			Parent: j.rootSpan, Name: "admission", Cat: obs.CatServe, PE: obs.TIDEval,
			Start: j.submitted.UnixNano(), End: time.Now().UnixNano(),
			Note: fmt.Sprintf("tenant=%s cost=%d", t.name, cost)})
	}
	s.cond.Signal()
	return j, nil
}

// traceRequestLocked closes out a traced job's root "request" span; called
// exactly once, with the server lock held, when the job reaches a terminal
// state.
func (s *Server) traceRequestLocked(j *Job) {
	note := fmt.Sprintf("tenant=%s job=%s status=%s", j.tenant.name, j.id, j.status)
	if j.err != nil {
		note += " code=" + j.err.Code
	}
	s.trace.Record(obs.TraceSpan{Trace: j.trace, Span: j.rootSpan,
		Name: "request", Cat: obs.CatServe, PE: obs.TIDEval,
		Start: j.submitted.UnixNano(), End: j.finished.UnixNano(), Note: note})
}

// newJobLocked registers a fresh job and counts it against the tenant's
// in-flight slots.
func (s *Server) newJobLocked(t *tenant, req Request, digest string) *Job {
	s.nextID++
	j := &Job{
		s: s, id: fmt.Sprintf("j-%06d", s.nextID), tenant: t, req: req,
		digest: digest, status: StatusQueued, submitted: time.Now(),
		done: make(chan struct{}),
	}
	s.jobs[j.id] = j
	t.inflight++
	return j
}

// cacheGetLocked looks up the memo cache, refusing a scalar entry for a
// list request (and vice versa) — the two evaluation modes produce
// different normal forms for the same program text.
func (s *Server) cacheGetLocked(digest string, list bool) (*Result, bool) {
	res, ok := s.cache.Get(cacheKey(digest, list))
	return res, ok
}

func cacheKey(digest string, list bool) string {
	if list {
		return digest + "/list"
	}
	return digest
}

// Job returns the job with the given ID, if it is still tracked.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ringAddLocked makes the tenant eligible for dispatch in its band.
func (s *Server) ringAddLocked(t *tenant) {
	if t.inRing || len(t.queue) == 0 {
		return
	}
	b := bandIndex(t.limits.Band)
	s.rings[b] = append(s.rings[b], t)
	t.inRing = true
}

func (s *Server) ringRemoveLocked(t *tenant, band uint8) {
	b := bandIndex(band)
	for i, rt := range s.rings[b] {
		if rt == t {
			s.rings[b] = append(s.rings[b][:i], s.rings[b][i+1:]...)
			if s.cursor[b] > i {
				s.cursor[b]--
			}
			break
		}
	}
	t.inRing = false
	t.deficit = 0
}

func bandIndex(band uint8) int {
	if band > 2 {
		return 2
	}
	return int(band)
}

// nextJobLocked implements the weighted round-robin dequeue: bands are
// visited highest-first while they hold credits (vital 4 : eager 2 :
// reserve 1, refilled when every non-empty band is out), and within a band
// tenants take turns, each granted its Weight in consecutive dequeues.
// One hot tenant can exhaust neither its band (the ring rotates) nor the
// lower bands (credits bound each band's share per refill round).
func (s *Server) nextJobLocked() *Job {
	for attempt := 0; attempt < 2; attempt++ {
		for b := 2; b >= 0; b-- {
			if len(s.rings[b]) == 0 || s.credits[b] <= 0 {
				continue
			}
			s.credits[b]--
			ring := s.rings[b]
			s.cursor[b] %= len(ring)
			t := ring[s.cursor[b]]
			if t.deficit <= 0 {
				t.deficit = t.limits.Weight
			}
			j := t.queue[0]
			t.queue[0] = nil
			t.queue = t.queue[1:]
			t.deficit--
			if len(t.queue) == 0 {
				s.ringRemoveLocked(t, t.limits.Band)
			} else if t.deficit <= 0 {
				s.cursor[b]++
			}
			s.queued--
			return j
		}
		// Credits exhausted for every band that has work: refill and retry.
		for b := range s.credits {
			s.credits[b] = bandWeight(uint8(b))
		}
	}
	return nil
}

func (s *Server) workerLoop(w *worker) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *Job
		for {
			if j = s.nextJobLocked(); j != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		if j == nil { // closed and drained
			m := w.m
			w.m = nil
			s.collectViolationsLocked(m)
			s.mu.Unlock()
			m.Close()
			return
		}
		j.status = StatusRunning
		j.started = time.Now()
		s.running++
		s.mu.Unlock()

		s.execute(w, j)
	}
}

// execute runs one job on the worker's machine. The digest may have been
// cached between admission and dispatch (two cold submissions of the same
// program), so the cache is consulted once more before reducing.
func (s *Server) execute(w *worker, j *Job) {
	if j.trace != 0 {
		// The queue-wait span covers admission→dispatch; CatQueue routes
		// it into the critical path's queue blame bucket.
		s.trace.Record(obs.TraceSpan{Trace: j.trace, Span: s.trace.NewSpan(),
			Parent: j.rootSpan, Name: "queue-wait", Cat: obs.CatQueue, PE: obs.TIDEval,
			Start: j.submitted.UnixNano(), End: j.started.UnixNano(),
			Note: fmt.Sprintf("worker=%d", w.id)})
	}
	probe := time.Now()
	res, ok := s.cache.Get(cacheKey(j.digest, j.req.List))
	if j.trace != 0 {
		note := "miss"
		if ok {
			note = "hit"
		}
		s.trace.Record(obs.TraceSpan{Trace: j.trace, Span: s.trace.NewSpan(),
			Parent: j.rootSpan, Name: "memo", Cat: obs.CatServe, PE: obs.TIDEval,
			Start: probe.UnixNano(), End: time.Now().UnixNano(), Note: note})
	}
	if ok {
		s.finish(j, res, true, 0, nil)
		return
	}
	m := w.m
	// Settle the quota charge against real free-list movement: footprint =
	// how far the sharded store's FreeCount dropped across the evaluation.
	// Deterministic machines reclaim the previous request's garbage first
	// so one job's leavings aren't billed to the next.
	if !s.opts.Parallel && m.FreeVertices() < s.opts.Capacity/4 {
		m.RunGC()
	}
	free0 := m.FreeVertices()

	var evalErr error
	if j.req.List {
		var vs []dgr.Value
		vs, evalErr = m.EvalListTraced(j.req.Program, j.trace, j.rootSpan)
		if evalErr == nil {
			res = listResult(vs)
		}
	} else {
		var v dgr.Value
		v, evalErr = m.EvalTraced(j.req.Program, j.trace, j.rootSpan)
		if evalErr == nil {
			res = valueResult(v)
		}
	}
	j.evalDone = time.Now()
	used := free0 - m.FreeVertices()
	if used < 0 {
		used = 0
	}

	if evalErr != nil {
		s.fail(j, evalError(j.tenant.name, evalErr), used)
		s.recycle(w)
		return
	}
	s.cache.Put(cacheKey(j.digest, j.req.List), res)
	s.finish(j, res, false, used, m)
}

// finish completes a job successfully and releases its admission charges.
func (s *Server) finish(j *Job, res *Result, hit bool, used int, m *dgr.Machine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := j.tenant
	j.status = StatusDone
	j.result = res
	j.cacheHit = hit
	j.finished = time.Now()
	s.running--
	t.inflight--
	t.charged -= j.cost
	if hit {
		t.stats.CacheHits++
		t.stats.CacheMisses-- // admission pre-counted a miss
	} else {
		t.observe(used)
	}
	t.stats.Completed++
	t.stats.latency.Observe(j.finished.Sub(j.submitted).Microseconds())
	s.traceSettleLocked(j)
	t.observeTrace(j)
	close(j.done)
	s.retireLocked(j)
}

// fail completes a job with a structured error.
func (s *Server) fail(j *Job, e *Error, used int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := j.tenant
	j.status = StatusFailed
	j.err = e
	j.finished = time.Now()
	s.running--
	t.inflight--
	t.charged -= j.cost
	if used > 0 {
		t.observe(used)
	}
	t.stats.Failed++
	t.stats.latency.Observe(j.finished.Sub(j.submitted).Microseconds())
	s.traceSettleLocked(j)
	t.observeTrace(j)
	close(j.done)
	s.retireLocked(j)
}

// traceSettleLocked records a traced job's "settle" span (evaluation end →
// charges released) and closes out its root request span.
func (s *Server) traceSettleLocked(j *Job) {
	if j.trace == 0 {
		return
	}
	settleStart := j.evalDone
	if settleStart.IsZero() {
		settleStart = j.finished
	}
	s.trace.Record(obs.TraceSpan{Trace: j.trace, Span: s.trace.NewSpan(),
		Parent: j.rootSpan, Name: "settle", Cat: obs.CatServe, PE: obs.TIDEval,
		Start: settleStart.UnixNano(), End: j.finished.UnixNano()})
	s.traceRequestLocked(j)
}

// retireLocked bounds the finished-job history.
func (s *Server) retireLocked(j *Job) {
	s.history = append(s.history, j.id)
	for len(s.history) > s.opts.JobHistory {
		delete(s.jobs, s.history[0])
		s.history = s.history[1:]
	}
}

// recycle replaces a worker's machine after a failed evaluation: a
// deadlocked, stuck, or budget-exhausted run can leave deadlock records,
// runtime errors, or (in parallel mode) still-live tasks behind, and a
// fresh machine is cheaper than proving the old one clean. Check
// violations are harvested before the close so they stay reportable.
func (s *Server) recycle(w *worker) {
	fresh := s.newMachine(w.id)
	s.mu.Lock()
	old := w.m
	w.m = fresh
	s.recycles++
	s.collectViolationsLocked(old)
	s.mu.Unlock()
	old.Close()
}

func (s *Server) collectViolationsLocked(m *dgr.Machine) {
	if m == nil {
		return
	}
	for _, v := range m.CheckViolations() {
		if len(s.violations) >= 64 {
			return
		}
		s.violations = append(s.violations, v)
	}
}

// evalError maps machine errors onto structured codes.
func evalError(tenant string, err error) *Error {
	code := CodeStuck
	switch {
	case errors.Is(err, dgr.ErrDeadlock):
		code = CodeDeadlock
	case errors.Is(err, dgr.ErrBudget):
		code = CodeBudget
	case errors.Is(err, dgr.ErrClosed):
		code = CodeClosed
	}
	return &Error{Code: code, Message: err.Error(), Tenant: tenant}
}

func valueResult(v dgr.Value) *Result {
	return &Result{Kind: v.Kind.String(), Rendered: v.String()}
}

func listResult(vs []dgr.Value) *Result {
	elems := make([]string, len(vs))
	for i, v := range vs {
		elems[i] = v.String()
	}
	return &Result{
		Kind:     "list",
		Rendered: "[" + strings.Join(elems, ", ") + "]",
		Elems:    elems,
	}
}

// Close stops the workers (after their current jobs), fails everything
// still queued with CodeClosed, and closes the pooled machines. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var orphans []*Job
	for j := s.nextJobLocked(); j != nil; j = s.nextJobLocked() {
		orphans = append(orphans, j)
	}
	for _, j := range orphans {
		t := j.tenant
		j.status = StatusFailed
		j.err = &Error{Code: CodeClosed, Message: "server closed before dispatch", Tenant: t.name}
		j.finished = time.Now()
		t.inflight--
		t.charged -= j.cost
		t.stats.Failed++
		close(j.done)
		s.retireLocked(j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// CacheStats summarizes the memo cache; hit/miss totals are per request
// (summed across tenants), not per internal lookup.
func (s *Server) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheStatsLocked()
}

func (s *Server) cacheStatsLocked() CacheStats {
	cs := s.cache.Stats()
	for _, t := range s.tenants {
		cs.Hits += t.stats.CacheHits
		cs.Misses += t.stats.CacheMisses
	}
	return cs
}

// Violations returns every invariant violation observed across the pool —
// live machines and recycled ones — capped at 64 entries.
func (s *Server) Violations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.violations...)
	for _, w := range s.workers {
		if w.m != nil {
			out = append(out, w.m.CheckViolations()...)
		}
	}
	return out
}

// TenantProms renders every tenant's serving metrics for the Prometheus
// exposition, sorted by name.
func (s *Server) TenantProms() []obs.TenantProm {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]obs.TenantProm, 0, len(names))
	for _, name := range names {
		t := s.tenants[name]
		lat := t.stats.latency.Snapshot()
		slowest := ""
		if t.slowestTrace != 0 {
			slowest = fmt.Sprintf("%x", t.slowestTrace)
		}
		out = append(out, obs.TenantProm{
			Name:             name,
			Requests:         t.stats.Requests,
			Admitted:         t.stats.Admitted,
			Completed:        t.stats.Completed,
			Failed:           t.stats.Failed,
			RejectedQueue:    t.stats.RejectedQueue,
			RejectedInflight: t.stats.RejectedInflight,
			RejectedQuota:    t.stats.RejectedQuota,
			CacheHits:        t.stats.CacheHits,
			CacheMisses:      t.stats.CacheMisses,
			Inflight:         int64(t.inflight),
			ChargedVertices:  int64(t.charged),
			VertexQuota:      int64(t.limits.VertexQuota),
			LatencyP50Us:     lat.Quantile(0.50),
			LatencyP95Us:     lat.Quantile(0.95),
			SlowestTraceID:   slowest,
			SlowestUs:        t.slowestUs,
		})
	}
	return out
}

// TraceSink returns the pool-wide lineage sink, or nil when tracing is off
// (Options.TraceRate 0).
func (s *Server) TraceSink() *obs.TraceSink { return s.trace }

// WriteTracesJSON writes every retained lineage trace — assembled into its
// spawn DAG, with critical-path analysis and per-category blame — as an
// obs.TraceDoc. It errors unless Options.TraceRate is set.
func (s *Server) WriteTracesJSON(w io.Writer) error {
	if s.trace == nil {
		return errors.New("serve: lineage tracing disabled (set Options.TraceRate)")
	}
	return obs.WriteTracesJSON(w, s.trace)
}

// PoolStats is a point-in-time summary of the server.
type PoolStats struct {
	Workers    int              `json:"workers"`
	PEs        int              `json:"pes"`
	Parallel   bool             `json:"parallel"`
	Queued     int              `json:"queued"`
	Running    int              `json:"running"`
	QueueDepth int              `json:"queue_depth"`
	Tenants    int              `json:"tenants"`
	Jobs       int              `json:"jobs_tracked"`
	Recycles   int64            `json:"machine_recycles"`
	Violations int              `json:"check_violations"`
	Cache      CacheStats       `json:"cache"`
	Machine    metrics.Snapshot `json:"machine_totals"`
}

// Stats snapshots the server, summing the pooled machines' counters.
func (s *Server) Stats() PoolStats {
	viol := len(s.Violations())
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := PoolStats{
		Workers: len(s.workers), PEs: s.opts.PEs, Parallel: s.opts.Parallel,
		Queued: s.queued, Running: s.running, QueueDepth: s.opts.QueueDepth,
		Tenants: len(s.tenants), Jobs: len(s.jobs), Recycles: s.recycles,
		Violations: viol, Cache: s.cacheStatsLocked(),
	}
	for _, w := range s.workers {
		if w.m != nil {
			ps.Machine = ps.Machine.Add(w.m.Stats())
		}
	}
	return ps
}
