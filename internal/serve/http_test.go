package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postEval(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/eval: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, data
}

func TestHTTPSyncEval(t *testing.T) {
	_, ts := newHTTPServer(t)
	resp, data := postEval(t, ts, `{"tenant":"alice","program":"6 * 7"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if view.Status != StatusDone || view.Result == nil || view.Result.Rendered != "42" {
		t.Fatalf("view = %+v, want done/42", view)
	}
}

func TestHTTPParseError(t *testing.T) {
	_, ts := newHTTPServer(t)
	resp, data := postEval(t, ts, `{"program":"let ("}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error == nil || eb.Error.Code != CodeParse {
		t.Fatalf("body = %s, want error envelope with %s", data, CodeParse)
	}
}

func TestHTTPRejectionStatus(t *testing.T) {
	s, ts := newHTTPServer(t)
	s.mu.Lock()
	s.queued = s.opts.QueueDepth // manufacture a full queue
	s.mu.Unlock()
	resp, data := postEval(t, ts, `{"tenant":"alice","program":"1 + 1"}`)
	s.mu.Lock()
	s.queued = 0
	s.mu.Unlock()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error == nil || eb.Error.Code != CodeQueueFull {
		t.Fatalf("body = %s, want %s envelope", data, CodeQueueFull)
	}
}

func TestHTTPAsyncAndJobPoll(t *testing.T) {
	_, ts := newHTTPServer(t)
	resp, data := postEval(t, ts, `{"tenant":"alice","program":"2 + 2","async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202; body %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil || view.ID == "" {
		t.Fatalf("async body = %s", data)
	}
	// Poll until done.
	for i := 0; ; i++ {
		jr, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var jv JobView
		err = json.NewDecoder(jr.Body).Decode(&jv)
		jr.Body.Close()
		if err != nil {
			t.Fatalf("decode job: %v", err)
		}
		if jv.Status == StatusDone {
			if jv.Result.Rendered != "4" {
				t.Fatalf("job result = %+v, want 4", jv.Result)
			}
			break
		}
		if i > 500 {
			t.Fatalf("job still %s after polling", jv.Status)
		}
	}

	// Unknown job → 404 envelope.
	jr, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatalf("GET unknown job: %v", err)
	}
	defer jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", jr.StatusCode)
	}
}

func TestHTTPStream(t *testing.T) {
	_, ts := newHTTPServer(t)
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json",
		strings.NewReader(`{"tenant":"alice","program":"3 * 3","stream":true}`))
	if err != nil {
		t.Fatalf("POST stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Fatalf("content type = %s", ct)
	}
	var last JobView
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v (%s)", lines, err, sc.Text())
		}
		lines++
	}
	if lines < 1 || last.Status != StatusDone || last.Result.Rendered != "9" {
		t.Fatalf("stream ended with %+v after %d lines, want done/9", last, lines)
	}
}

func TestHTTPMetricsAndDebug(t *testing.T) {
	_, ts := newHTTPServer(t)
	// Generate some per-tenant traffic first.
	postEval(t, ts, `{"tenant":"alice","program":"1 + 2"}`)
	postEval(t, ts, `{"tenant":"alice","program":"1 + 2"}`) // warm hit

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mdata, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	text := string(mdata)
	for _, want := range []string{
		`dgr_tenant_requests_total{tenant="alice"} 2`,
		`dgr_tenant_cache_hits_total{tenant="alice"} 1`,
		"dgr_pes",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	dr, err := http.Get(ts.URL + "/debug/serve.json")
	if err != nil {
		t.Fatalf("GET /debug/serve.json: %v", err)
	}
	defer dr.Body.Close()
	var state debugState
	if err := json.NewDecoder(dr.Body).Decode(&state); err != nil {
		t.Fatalf("decode debug: %v", err)
	}
	if state.Pool.Workers != 1 || len(state.Tenants) == 0 || state.Violations == nil {
		t.Fatalf("debug state = %+v", state)
	}
}

// TestHTTPClientRoundTrip drives the serve.Client against a live handler —
// the same path the -load smoke uses.
func TestHTTPClientRoundTrip(t *testing.T) {
	_, ts := newHTTPServer(t)
	c := NewClient(ts.URL)
	if err := c.WaitHealthy(2 * time.Second); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	out, err := c.LoadEval("alice", "10 - 3")
	if err != nil {
		t.Fatalf("LoadEval: %v", err)
	}
	if !out.OK || out.Rendered != "7" {
		t.Fatalf("outcome = %+v, want OK/7", out)
	}
	// A parse failure comes back as data, not a transport error.
	bad, err := c.LoadEval("alice", "((")
	if err != nil {
		t.Fatalf("LoadEval parse: %v", err)
	}
	if bad.OK || bad.Code != CodeParse {
		t.Fatalf("parse outcome = %+v, want code %s", bad, CodeParse)
	}
	pool, viol, err := c.ServerState()
	if err != nil {
		t.Fatalf("ServerState: %v", err)
	}
	if pool.Workers != 1 || len(viol) != 0 {
		t.Fatalf("pool = %+v viol = %v", pool, viol)
	}
}
