package serve

// End-to-end lineage tracing through the serving layer: a request sampled
// at admission must come back with a trace ID, assemble into the
// request → admission/queue-wait/memo/eval/settle phase DAG at
// /debug/traces.json, carry exact per-category blame, and surface as the
// tenant's slowest-trace exemplar on /metrics.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dgr/internal/obs"
)

func TestServeRequestProducesTrace(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, TraceRate: 1})

	j, err := s.Submit(Request{Tenant: "alice", Program: fibSrc})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	view, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if view.Status != StatusDone {
		t.Fatalf("status = %s, want done", view.Status)
	}
	if view.TraceID == "" {
		t.Fatal("rate-1.0 request came back without a trace_id")
	}

	spans, _ := s.TraceSink().Spans()
	traces, globals := obs.AssembleTraces(spans)
	tr := findTrace(t, traces, view.TraceID)
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "request" {
		t.Fatalf("roots = %+v, want the request envelope", tr.Roots)
	}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		names[sp.Name]++
	}
	for _, phase := range []string{"request", "admission", "queue-wait", "memo", "eval", "settle"} {
		if names[phase] == 0 {
			t.Fatalf("trace missing %q phase span; got %v", phase, names)
		}
	}
	// The eval envelope must contain real task executions from the machine.
	execs := 0
	for _, sp := range tr.Spans {
		if sp.Cat == obs.CatExec {
			execs++
		}
	}
	if execs == 0 {
		t.Fatalf("trace has no task exec spans under the eval envelope; got %v", names)
	}

	rep := obs.CriticalPath(tr, globals)
	var blamed int64
	for _, ns := range rep.Blame {
		blamed += ns
	}
	if blamed != rep.TotalNs {
		t.Fatalf("blame sums to %d, want TotalNs %d", blamed, rep.TotalNs)
	}

	// The traced request becomes the tenant's slowest-trace exemplar.
	for _, tp := range s.TenantProms() {
		if tp.Name != "alice" {
			continue
		}
		if tp.SlowestTraceID != view.TraceID || tp.SlowestUs <= 0 {
			t.Fatalf("exemplar = %q/%dus, want %q with positive latency",
				tp.SlowestTraceID, tp.SlowestUs, view.TraceID)
		}
		return
	}
	t.Fatal("tenant alice missing from TenantProms")
}

// findTrace resolves the hex trace_id a JobView carries back to its
// assembled trace.
func findTrace(t *testing.T, traces []*obs.TraceAssembly, hexID string) *obs.TraceAssembly {
	t.Helper()
	var id uint64
	if _, err := fmt.Sscanf(hexID, "%x", &id); err != nil {
		t.Fatalf("trace_id %q not hex: %v", hexID, err)
	}
	for _, tr := range traces {
		if tr.ID == id {
			return tr
		}
	}
	t.Fatalf("trace %q not among %d assembled traces", hexID, len(traces))
	return nil
}

func TestServeMemoHitTraced(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, TraceRate: 1})
	jc, err := s.Submit(Request{Tenant: "a", Program: "6 * 7"})
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	if _, err := jc.Wait(context.Background()); err != nil {
		t.Fatalf("cold wait: %v", err)
	}
	jw, err := s.Submit(Request{Tenant: "a", Program: "6 * 7"})
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	view, err := jw.Wait(context.Background())
	if err != nil {
		t.Fatalf("warm wait: %v", err)
	}
	if view.TraceID == "" {
		t.Fatal("traced server returned no trace_id for the warm hit")
	}
	spans, _ := s.TraceSink().Spans()
	traces, _ := obs.AssembleTraces(spans)
	tr := findTrace(t, traces, view.TraceID)
	// A memo hit short-circuits in Submit: the trace is just the request
	// envelope plus the memo span annotated "hit" — no queue-wait or eval.
	var memo *obs.TraceSpan
	for i := range tr.Spans {
		if tr.Spans[i].Name == "memo" {
			memo = &tr.Spans[i]
		}
	}
	if memo == nil || !strings.Contains(memo.Note, "hit") {
		t.Fatalf("warm trace missing a memo-hit span: %+v", tr.Spans)
	}
	for _, sp := range tr.Spans {
		if sp.Name == "eval" || sp.Name == "queue-wait" {
			t.Fatalf("memo hit should not carry an %s span; spans %+v", sp.Name, tr.Spans)
		}
	}
}

func TestHTTPTracesEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, TraceRate: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, data := postEval(t, ts, `{"tenant":"bob","program":"2 + 3"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval status = %d, body %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	if view.TraceID == "" {
		t.Fatal("HTTP eval on a traced server returned no trace_id")
	}

	tr, err := http.Get(ts.URL + "/debug/traces.json")
	if err != nil {
		t.Fatalf("GET /debug/traces.json: %v", err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("traces status = %d", tr.StatusCode)
	}
	var doc obs.TraceDoc
	if err := json.NewDecoder(tr.Body).Decode(&doc); err != nil {
		t.Fatalf("decode doc: %v", err)
	}
	if len(doc.Traces) == 0 {
		t.Fatal("traces doc empty after a traced request")
	}
	found := false
	for _, rep := range doc.Traces {
		if fmt.Sprintf("%x", rep.ID) == view.TraceID {
			found = true
			if len(rep.Crit.Path) == 0 || rep.TotalNs <= 0 {
				t.Fatalf("trace %q has no critical-path analysis: %+v", view.TraceID, rep.Crit)
			}
		}
	}
	if !found {
		t.Fatalf("trace %q not in /debug/traces.json", view.TraceID)
	}

	// The slowest-trace exemplar gauge ties /metrics back to the trace ID.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mdata, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	metric := fmt.Sprintf(`dgr_tenant_slowest_trace_us{tenant="bob",trace=%q}`, view.TraceID)
	if !strings.Contains(string(mdata), metric) {
		t.Fatalf("/metrics missing exemplar %s in:\n%s", metric, mdata)
	}
}

func TestHTTPTracesDisabled(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1}) // no TraceRate
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/debug/traces.json")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 when tracing is off", resp.StatusCode)
	}
}
