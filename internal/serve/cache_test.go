package serve

import (
	"fmt"
	"testing"
)

func TestMemoCacheLRUEviction(t *testing.T) {
	c := newMemoCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("d%d", i), &Result{Rendered: fmt.Sprint(i)})
	}
	// Touch d0 so d1 becomes the LRU, then overflow.
	if _, ok := c.Get("d0"); !ok {
		t.Fatal("d0 missing before eviction")
	}
	c.Put("d3", &Result{Rendered: "3"})

	if _, ok := c.Get("d1"); ok {
		t.Fatal("d1 survived eviction; LRU order ignores Get recency")
	}
	for _, k := range []string{"d0", "d2", "d3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want it retained", k)
		}
	}
	if st := c.Stats(); st.Entries != 3 || st.Capacity != 3 {
		t.Fatalf("stats = %+v, want 3/3", st)
	}
}

func TestMemoCachePutRefreshes(t *testing.T) {
	c := newMemoCache(2)
	c.Put("d", &Result{Rendered: "old"})
	c.Put("d", &Result{Rendered: "new"})
	res, ok := c.Get("d")
	if !ok || res.Rendered != "new" {
		t.Fatalf("got %+v, want refreshed entry", res)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("re-Put duplicated the entry: %+v", st)
	}
}
