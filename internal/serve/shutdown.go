package serve

import (
	"context"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns a context cancelled on SIGINT/SIGTERM — the shared
// shutdown trigger for dgr-serve and dgr-run's -http mode. The returned
// stop func releases the signal handler (a second signal then kills the
// process the default way).
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, syscall.SIGINT, syscall.SIGTERM)
}

// StartHTTP serves h on ln in the background and returns a stop function
// that gracefully drains in-flight requests (bounded by grace). Serve
// errors no longer vanish: any listener failure other than the shutdown's
// own ErrServerClosed is reported through errf.
func StartHTTP(ln net.Listener, h http.Handler, errf func(error)) (stop func(grace time.Duration)) {
	srv := &http.Server{Handler: h}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if errf != nil {
				errf(err)
			}
		}
	}()
	return func(grace time.Duration) {
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && errf != nil {
			errf(err)
		}
	}
}
