package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"dgr/internal/workload"
)

// Outcome aliases the harness-facing per-request summary (defined in
// internal/workload to keep the import graph acyclic): both *Server
// (in-process) and *Client (HTTP) produce it from LoadEval, so the same
// harness drives either transport.
type Outcome = workload.ServeOutcome

// LoadEval submits synchronously and folds the job's fate into an Outcome.
// Admission rejections and evaluation failures are data, not errors; the
// error return is reserved for transport/infrastructure trouble.
func (s *Server) LoadEval(tenant, program string) (Outcome, error) {
	j, err := s.Submit(Request{Tenant: tenant, Program: program})
	if err != nil {
		if se, ok := err.(*Error); ok {
			return Outcome{Rejected: se.IsRejection(), Code: se.Code}, nil
		}
		return Outcome{}, err
	}
	view, err := j.Wait(context.Background())
	if err != nil {
		return Outcome{}, err
	}
	return viewOutcome(view), nil
}

func viewOutcome(v JobView) Outcome {
	o := Outcome{CacheHit: v.CacheHit}
	switch v.Status {
	case StatusDone:
		o.OK = true
		if v.Result != nil {
			o.Rendered = v.Result.Rendered
		}
	case StatusFailed:
		if v.Err != nil {
			o.Code = v.Err.Code
			o.Rejected = v.Err.IsRejection()
		}
	default:
		o.Code = v.Status
	}
	return o
}

// Client drives a remote dgr-serve over HTTP, mirroring the in-process
// LoadEval/Stats surface.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets base (e.g. "http://127.0.0.1:8091").
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: 2 * time.Minute}}
}

// LoadEval posts one synchronous evaluation.
func (c *Client) LoadEval(tenant, program string) (Outcome, error) {
	body, err := json.Marshal(evalRequest{Tenant: tenant, Program: program})
	if err != nil {
		return Outcome{}, err
	}
	resp, err := c.http.Post(c.base+"/v1/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		return Outcome{}, err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		var view JobView
		if err := dec.Decode(&view); err != nil {
			return Outcome{}, fmt.Errorf("serve client: decoding result: %w", err)
		}
		return viewOutcome(view), nil
	}
	// Non-200: either a structured rejection envelope or a failed JobView
	// (eval errors return the full snapshot with an embedded *Error).
	var raw struct {
		Error *Error `json:"error"`
		JobView
	}
	if err := dec.Decode(&raw); err != nil {
		return Outcome{}, fmt.Errorf("serve client: HTTP %d with undecodable body: %w",
			resp.StatusCode, err)
	}
	if raw.Error != nil {
		return Outcome{Rejected: raw.Error.IsRejection(), Code: raw.Error.Code}, nil
	}
	if raw.Err != nil {
		return viewOutcome(raw.JobView), nil
	}
	return Outcome{}, fmt.Errorf("serve client: HTTP %d without structured error", resp.StatusCode)
}

// ServerState fetches the /debug/serve.json digest (pool stats, tenant
// rows, invariant violations).
func (c *Client) ServerState() (PoolStats, []string, error) {
	resp, err := c.http.Get(c.base + "/debug/serve.json")
	if err != nil {
		return PoolStats{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return PoolStats{}, nil, fmt.Errorf("serve client: /debug/serve.json: HTTP %d", resp.StatusCode)
	}
	var state struct {
		Pool       PoolStats `json:"pool"`
		Violations []string  `json:"violations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		return PoolStats{}, nil, err
	}
	return state.Pool, state.Violations, nil
}

// WaitHealthy polls /healthz until the server answers or the deadline
// passes — the serve smoke job's startup barrier.
func (c *Client) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := c.http.Get(c.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("serve client: server not healthy after %s: %w", timeout, err)
			}
			return fmt.Errorf("serve client: server not healthy after %s", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
