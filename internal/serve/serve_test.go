package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dgr"
	"dgr/internal/task"
	"dgr/internal/workload"
)

const fibSrc = "let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 12"

// newTestServer builds a small checked server and registers its Close.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.Capacity == 0 {
		opts.Capacity = 1 << 14
	}
	opts.Check = true
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

// newIdleServer builds a server with NO worker goroutines, so queued jobs
// stay queued — the deterministic way to probe admission and dispatch order.
func newIdleServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		tenants: make(map[string]*tenant),
		jobs:    make(map[string]*Job),
		cache:   newMemoCache(opts.CacheEntries),
	}
	s.cond = sync.NewCond(&s.mu)
	for b := range s.credits {
		s.credits[b] = bandWeight(uint8(b))
	}
	return s
}

func TestEvalAndMemoCache(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})

	j, err := s.Submit(Request{Tenant: "alice", Program: fibSrc})
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	cold, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("cold wait: %v", err)
	}
	if cold.Status != StatusDone || cold.Result == nil {
		t.Fatalf("cold job = %+v, want done with result", cold)
	}
	if cold.CacheHit {
		t.Fatal("cold eval reported a cache hit")
	}
	if cold.Result.Rendered != "144" {
		t.Fatalf("fib 12 = %q, want 144", cold.Result.Rendered)
	}

	// Warm rerun, different layout, same canonical digest: served from the
	// cache, byte-identical to the cold result.
	warm, err := s.Submit(Request{
		Tenant:  "bob",
		Program: "let fib n =\n  if n < 2 then n -- memoized\n  else fib (n-1) + fib (n-2)\nin fib 12",
	})
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	wv, err := warm.Wait(context.Background())
	if err != nil {
		t.Fatalf("warm wait: %v", err)
	}
	if !wv.CacheHit {
		t.Fatalf("warm job = %+v, want cache hit", wv)
	}
	if wv.Digest != cold.Digest {
		t.Fatalf("digest mismatch: cold %s warm %s", cold.Digest, wv.Digest)
	}
	if wv.Result.Rendered != cold.Result.Rendered {
		t.Fatalf("warm result %q != cold %q", wv.Result.Rendered, cold.Result.Rendered)
	}
	cs := s.CacheStats()
	if cs.Hits < 1 || cs.Misses < 1 || cs.Entries < 1 {
		t.Fatalf("cache stats = %+v, want >=1 hit, miss, entry", cs)
	}
}

// A compiled-engine pool serves the same results as the interpreted one,
// and a warm rerun (layout-changed, digest-identical source) still comes
// from the memo cache rather than a fresh compile.
func TestEvalCompiledEngineWarmRerun(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, Engine: dgr.EngineCompiled})

	j, err := s.Submit(Request{Tenant: "alice", Program: fibSrc})
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	cold, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("cold wait: %v", err)
	}
	if cold.Status != StatusDone || cold.Result == nil {
		t.Fatalf("cold job = %+v, want done with result", cold)
	}
	if cold.Result.Rendered != "144" {
		t.Fatalf("compiled fib 12 = %q, want 144", cold.Result.Rendered)
	}

	warm, err := s.Submit(Request{
		Tenant:  "bob",
		Program: "let fib n =\n  if n < 2 then n -- compiled, memoized\n  else fib (n-1) + fib (n-2)\nin fib 12",
	})
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	wv, err := warm.Wait(context.Background())
	if err != nil {
		t.Fatalf("warm wait: %v", err)
	}
	if !wv.CacheHit {
		t.Fatalf("warm job = %+v, want cache hit", wv)
	}
	if wv.Digest != cold.Digest || wv.Result.Rendered != cold.Result.Rendered {
		t.Fatalf("warm = %q/%s, cold = %q/%s: want identical",
			wv.Result.Rendered, wv.Digest, cold.Result.Rendered, cold.Digest)
	}
}

func TestEvalListMode(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	const src = "let upto a b = if a > b then [] else a : upto (a + 1) b in upto 1 4"

	j, err := s.Submit(Request{Tenant: "alice", Program: src, List: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, _ := j.Wait(context.Background())
	if v.Status != StatusDone {
		t.Fatalf("list job = %+v", v)
	}
	if v.Result.Rendered != "[1, 2, 3, 4]" || len(v.Result.Elems) != 4 {
		t.Fatalf("list result = %+v", v.Result)
	}

	// The scalar cache entry for the same digest must not satisfy a list
	// request, and vice versa: the key is mode-qualified.
	j2, err := s.Submit(Request{Tenant: "alice", Program: src})
	if err != nil {
		t.Fatalf("scalar submit: %v", err)
	}
	v2, _ := j2.Wait(context.Background())
	if v2.CacheHit {
		t.Fatal("scalar request hit the list-mode cache entry")
	}
}

func TestParseErrorIsStructured(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	_, err := s.Submit(Request{Tenant: "alice", Program: "let let let"})
	se, ok := err.(*Error)
	if !ok || se.Code != CodeParse {
		t.Fatalf("err = %v, want *Error{%s}", err, CodeParse)
	}
	if se.IsRejection() {
		t.Fatal("parse error classified as admission rejection")
	}
}

// TestAdmissionRejections manufactures each over-limit state and checks the
// rejection is a structured error with the right code — never a hang.
func TestAdmissionRejections(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	s.SetTenant("alice", TenantLimits{MaxInflight: 2, VertexQuota: 4096})

	// Tenant in-flight limit.
	s.mu.Lock()
	al := s.tenantLocked("alice")
	al.inflight = al.limits.MaxInflight
	s.mu.Unlock()
	_, err := s.Submit(Request{Tenant: "alice", Program: fibSrc})
	if se, ok := err.(*Error); !ok || se.Code != CodeTenantInflight || !se.IsRejection() {
		t.Fatalf("inflight: err = %v, want rejection %s", err, CodeTenantInflight)
	}
	s.mu.Lock()
	al.inflight = 0
	s.mu.Unlock()

	// Tenant vertex quota: everything already charged.
	s.mu.Lock()
	al.charged = al.limits.VertexQuota
	s.mu.Unlock()
	_, err = s.Submit(Request{Tenant: "alice", Program: fibSrc})
	if se, ok := err.(*Error); !ok || se.Code != CodeTenantQuota || !se.IsRejection() {
		t.Fatalf("quota: err = %v, want rejection %s", err, CodeTenantQuota)
	}
	s.mu.Lock()
	al.charged = 0
	s.mu.Unlock()

	// Global queue bound.
	s.mu.Lock()
	s.queued = s.opts.QueueDepth
	s.mu.Unlock()
	_, err = s.Submit(Request{Tenant: "alice", Program: fibSrc})
	if se, ok := err.(*Error); !ok || se.Code != CodeQueueFull || !se.IsRejection() {
		t.Fatalf("queue: err = %v, want rejection %s", err, CodeQueueFull)
	}
	s.mu.Lock()
	s.queued = 0
	s.mu.Unlock()

	// The tenant rejection counters made it into the exposition rows.
	for _, tp := range s.TenantProms() {
		if tp.Name != "alice" {
			continue
		}
		if tp.RejectedInflight != 1 || tp.RejectedQuota != 1 || tp.RejectedQueue != 1 {
			t.Fatalf("alice prom row = %+v, want one rejection of each kind", tp)
		}
	}
}

// TestQuotaClampAdmitsOversizedEstimate: an EWMA estimate above the whole
// quota must not wedge the tenant — the charge clamps to the quota so
// exactly one such request runs at a time.
func TestQuotaClampAdmitsOversizedEstimate(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	s.SetTenant("alice", TenantLimits{VertexQuota: 64}) // far below EstimateVertices

	j, err := s.Submit(Request{Tenant: "alice", Program: fibSrc})
	if err != nil {
		t.Fatalf("submit with clamped charge: %v", err)
	}
	v, _ := j.Wait(context.Background())
	if v.Status != StatusDone {
		t.Fatalf("job = %+v, want done", v)
	}
}

// TestWRRDispatchOrder drives nextJobLocked directly on an idle server:
// vital tenants must get ~4 dequeues per reserve dequeue, and within a band
// a weight-2 tenant must dequeue twice per ring visit.
func TestWRRDispatchOrder(t *testing.T) {
	s := newIdleServer(Options{QueueDepth: 128})
	s.SetTenant("vip", TenantLimits{Band: task.BandVital, MaxInflight: 64})
	s.SetTenant("std", TenantLimits{Band: task.BandEager, MaxInflight: 64})
	s.SetTenant("bulk", TenantLimits{Band: task.BandReserve, MaxInflight: 64})

	for i := 0; i < 8; i++ {
		for _, tn := range []string{"vip", "std", "bulk"} {
			prog := fmt.Sprintf("%d + %d", i, len(tn)) // distinct digests
			if _, err := s.Submit(Request{Tenant: tn, Program: prog}); err != nil {
				t.Fatalf("submit %s/%d: %v", tn, i, err)
			}
		}
	}

	counts := map[string]int{}
	s.mu.Lock()
	for i := 0; i < 14; i++ { // two full credit rounds (4+2+1)
		j := s.nextJobLocked()
		if j == nil {
			break
		}
		counts[j.tenant.name]++
	}
	s.mu.Unlock()
	if counts["vip"] != 8 || counts["std"] != 4 || counts["bulk"] != 2 {
		t.Fatalf("dispatch counts = %v, want vip:8 std:4 bulk:2 (4:2:1 credits)", counts)
	}

	// Within one band, Weight grants consecutive dequeues.
	s2 := newIdleServer(Options{QueueDepth: 128})
	s2.SetTenant("heavy", TenantLimits{Band: task.BandEager, Weight: 2, MaxInflight: 64})
	s2.SetTenant("light", TenantLimits{Band: task.BandEager, Weight: 1, MaxInflight: 64})
	for i := 0; i < 4; i++ {
		for _, tn := range []string{"heavy", "light"} {
			prog := fmt.Sprintf("%d * %d", i, len(tn))
			if _, err := s2.Submit(Request{Tenant: tn, Program: prog}); err != nil {
				t.Fatalf("submit %s/%d: %v", tn, i, err)
			}
		}
	}
	var order []string
	s2.mu.Lock()
	for i := 0; i < 6; i++ {
		if j := s2.nextJobLocked(); j != nil {
			order = append(order, j.tenant.name)
		}
	}
	s2.mu.Unlock()
	want := []string{"heavy", "heavy", "light", "heavy", "heavy", "light"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("within-band order = %v, want %v", order, want)
	}
}

// TestEvalFailureRecycles: a stuck program must fail with a structured code
// and cause the worker to swap in a fresh machine; the pool keeps serving.
func TestEvalFailureRecycles(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})

	j, err := s.Submit(Request{Tenant: "alice", Program: "if 1 then 2 else 3"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	v, _ := j.Wait(context.Background())
	if v.Status != StatusFailed || v.Err == nil || v.Err.Code != CodeStuck {
		t.Fatalf("stuck job = %+v, want failed/%s", v, CodeStuck)
	}
	// The job completes before the worker swaps machines; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Recycles != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("recycles = %d, want 1", s.Stats().Recycles)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The recycled pool still evaluates.
	j2, err := s.Submit(Request{Tenant: "alice", Program: "2 + 3"})
	if err != nil {
		t.Fatalf("post-recycle submit: %v", err)
	}
	v2, _ := j2.Wait(context.Background())
	if v2.Status != StatusDone || v2.Result.Rendered != "5" {
		t.Fatalf("post-recycle job = %+v, want 5", v2)
	}
}

func TestCloseFailsQueuedJobs(t *testing.T) {
	s := newIdleServer(Options{})
	j, err := s.Submit(Request{Tenant: "alice", Program: "1 + 1"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s.Close()
	v := j.View()
	if v.Status != StatusFailed || v.Err == nil || v.Err.Code != CodeClosed {
		t.Fatalf("job after close = %+v, want failed/%s", v, CodeClosed)
	}
	if _, err := s.Submit(Request{Tenant: "alice", Program: "2 + 2"}); err == nil {
		t.Fatal("submit after close succeeded")
	}
	s.Close() // idempotent
}

// TestServeLoadInProcess runs the acceptance scenario end to end without
// HTTP: 4 concurrent tenants, two rounds, warm-cache hits, byte-identical
// reruns, zero checker violations.
func TestServeLoadInProcess(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	rep, err := workload.RunServeLoad(workload.ServeLoadConfig{
		Tenants: 4, Programs: workload.ServePrograms(6), Rounds: 2, Concurrency: 2,
	}, s)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.OK == 0 {
		t.Fatalf("no request succeeded: %+v", rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d rerun mismatches", rep.Mismatches)
	}
	if rep.CacheHits == 0 {
		t.Fatal("two rounds produced zero cache hits")
	}
	if viol := s.Violations(); len(viol) != 0 {
		t.Fatalf("checker violations: %v", viol)
	}
	if len(rep.ByTenant) != 4 {
		t.Fatalf("tenant rows = %d, want 4", len(rep.ByTenant))
	}
}

func TestJobWaitContext(t *testing.T) {
	s := newIdleServer(Options{}) // nothing will run the job
	j, err := s.Submit(Request{Tenant: "alice", Program: "1 + 1"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	v, werr := j.Wait(ctx)
	if werr == nil {
		t.Fatal("Wait returned without the job finishing")
	}
	if v.Status != StatusQueued {
		t.Fatalf("status = %s, want queued", v.Status)
	}
	s.Close()
}
