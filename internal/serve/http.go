package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"dgr/internal/obs"
)

// evalRequest is the POST /v1/eval body.
type evalRequest struct {
	Tenant  string `json:"tenant,omitempty"`
	Program string `json:"program"`
	List    bool   `json:"list,omitempty"`
	// Async returns a job handle immediately instead of waiting for the
	// result; poll GET /v1/jobs/<id>.
	Async bool `json:"async,omitempty"`
	// Stream responds with JSON Lines: status snapshots while the job is
	// queued/running, then the final snapshot.
	Stream bool `json:"stream,omitempty"`
}

// errorBody is the JSON envelope every structured failure uses.
type errorBody struct {
	Error *Error `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/eval           evaluate (sync by default; async/stream opt-in)
//	GET  /v1/jobs/<id>      job status and result
//	GET  /metrics           Prometheus exposition (pool + per-tenant series)
//	GET  /debug/serve.json  pool/cache/tenant digest incl. check violations
//	GET  /debug/traces.json assembled lineage traces with critical paths
//	GET  /healthz           liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/eval", s.handleEval)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/serve.json", s.handleDebug)
	mux.HandleFunc("/debug/traces.json", s.handleTraces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to recover
}

// errorStatus maps structured codes onto HTTP statuses: admission
// rejections are 429 (retryable), parse errors 400, shutdown 503,
// evaluation failures 422.
func errorStatus(e *Error) int {
	switch e.Code {
	case CodeQueueFull, CodeTenantInflight, CodeTenantQuota:
		return http.StatusTooManyRequests
	case CodeParse, CodeBadRequest:
		return http.StatusBadRequest
	case CodeClosed:
		return http.StatusServiceUnavailable
	case CodeNotFound:
		return http.StatusNotFound
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{&Error{
			Code: CodeBadRequest, Message: "POST required"}})
		return
	}
	var req evalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{&Error{
			Code: CodeBadRequest, Message: "invalid JSON body: " + err.Error()}})
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-DGR-Tenant")
	}
	j, err := s.Submit(Request{Tenant: req.Tenant, Program: req.Program, List: req.List})
	if err != nil {
		var se *Error
		if errors.As(err, &se) {
			writeJSON(w, errorStatus(se), errorBody{se})
		} else {
			writeJSON(w, http.StatusInternalServerError, errorBody{&Error{
				Code: CodeBadRequest, Message: err.Error()}})
		}
		return
	}
	switch {
	case req.Stream:
		s.streamJob(w, r, j)
	case req.Async:
		writeJSON(w, http.StatusAccepted, j.View())
	default:
		view, _ := j.Wait(r.Context())
		writeJSON(w, viewStatus(view), view)
	}
}

func viewStatus(v JobView) int {
	if v.Status == StatusFailed && v.Err != nil {
		return errorStatus(v.Err)
	}
	return http.StatusOK
}

// streamJob writes JSON Lines: one snapshot immediately, one whenever the
// job is still unfinished after each heartbeat interval, and the final
// snapshot when it completes.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v JobView) {
		enc.Encode(v) //nolint:errcheck // client went away; nothing to recover
		if fl != nil {
			fl.Flush()
		}
	}
	emit(j.View())
	heartbeat := time.NewTicker(250 * time.Millisecond)
	defer heartbeat.Stop()
	for {
		select {
		case <-j.Done():
			emit(j.View())
			return
		case <-heartbeat.C:
			emit(j.View())
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{&Error{
			Code: CodeNotFound, Message: fmt.Sprintf("unknown job %q", id)}})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := obs.WritePrometheus(w, s.promData()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// promData aggregates the pooled machines into one exposition: counters
// and occupancy sum across workers, and the serving layer contributes the
// tenant-labeled series.
func (s *Server) promData() obs.PromData {
	d := obs.PromData{Tenants: s.TenantProms()}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range s.workers {
		if w.m == nil {
			continue
		}
		d.Stats = d.Stats.Add(w.m.Stats())
		d.PEs += s.opts.PEs
		d.Heap += w.m.TotalVertices()
		d.Free += w.m.FreeVertices()
		d.Inflight += w.m.InflightTasks()
		d.Deadlocked += len(w.m.Deadlocked())
	}
	return d
}

// handleTraces serves the assembled lineage traces (an obs.TraceDoc). 404
// when tracing is off so probes can distinguish "no traces yet" from
// "not tracing".
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.trace == nil {
		writeJSON(w, http.StatusNotFound, errorBody{&Error{
			Code: CodeNotFound, Message: "lineage tracing disabled (set -trace-rate)"}})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.WriteTracesJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// debugState is the GET /debug/serve.json document.
type debugState struct {
	Pool       PoolStats        `json:"pool"`
	Tenants    []obs.TenantProm `json:"tenants"`
	Violations []string         `json:"violations"`
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	viol := s.Violations()
	if viol == nil {
		viol = []string{}
	}
	writeJSON(w, http.StatusOK, debugState{
		Pool:       s.Stats(),
		Tenants:    s.TenantProms(),
		Violations: viol,
	})
}
