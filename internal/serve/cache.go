package serve

import (
	"container/list"
	"sync"
)

// memoCache is a size-bounded LRU of normal forms keyed by canonical
// program digest (lang.Digest). A hit returns the cached Result — the
// serialized normal form — so repeated hot queries skip compilation and
// reduction entirely. Results are immutable once inserted; callers must
// not mutate what Get returns.
type memoCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type memoEntry struct {
	digest string
	res    *Result
}

func newMemoCache(capacity int) *memoCache {
	return &memoCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached normal form for digest, bumping its recency.
// Hit/miss accounting lives in the server's per-tenant stats (one count
// per request, not per lookup — a job is probed at admission and again at
// dispatch).
func (c *memoCache) Get(digest string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[digest]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*memoEntry).res, true
}

// Put inserts (or refreshes) a normal form, evicting the least recently
// used entry when the cache is full.
func (c *memoCache) Put(digest string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[digest]; ok {
		el.Value.(*memoEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[digest] = c.ll.PushFront(&memoEntry{digest: digest, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*memoEntry).digest)
	}
}

// CacheStats is a point-in-time summary of the memo cache.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// Stats reports occupancy; the server fills in the request-level hit and
// miss totals from its tenant accounting.
func (c *memoCache) Stats() CacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{Entries: n, Capacity: c.cap}
}
