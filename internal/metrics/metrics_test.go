package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(10)
	c.ReductionTasks.Add(6)
	c.MarkTasks.Add(3)
	c.ReturnTasks.Add(1)
	c.RemoteMessages.Add(2)
	c.Reclaimed.Add(5)
	c.Cycles.Add(1)

	s := c.Snapshot()
	if s.TasksExecuted != 10 || s.ReductionTasks != 6 || s.MarkTasks != 3 ||
		s.ReturnTasks != 1 || s.RemoteMessages != 2 || s.Reclaimed != 5 || s.Cycles != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(10)
	before := c.Snapshot()
	c.TasksExecuted.Add(7)
	c.Expunged.Add(2)
	diff := c.Snapshot().Sub(before)
	if diff.TasksExecuted != 7 || diff.Expunged != 2 {
		t.Fatalf("diff = %+v", diff)
	}
}

func TestObservePause(t *testing.T) {
	var c Counters
	c.ObservePause(100)
	c.ObservePause(50)
	c.ObservePause(200)
	if got := c.MaxPauseNs.Load(); got != 200 {
		t.Fatalf("max pause = %d, want 200", got)
	}
	if got := c.TotalPauseNs.Load(); got != 350 {
		t.Fatalf("total pause = %d, want 350", got)
	}
}

func TestObservePauseConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < 100; j++ {
				c.ObservePause(base + j)
			}
		}(int64(i * 1000))
	}
	wg.Wait()
	if got := c.MaxPauseNs.Load(); got != 7099 {
		t.Fatalf("max pause = %d, want 7099", got)
	}
}

func TestSnapshotString(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(5)
	c.Reclaimed.Add(2)
	s := c.Snapshot().String()
	for _, want := range []string{"tasks=5", "reclaimed=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestObservePauseMaxQuick(t *testing.T) {
	// Property: max is always ≥ each observed value, total is the sum.
	f := func(vals []uint16) bool {
		var c Counters
		var sum, max int64
		for _, v := range vals {
			n := int64(v)
			c.ObservePause(n)
			sum += n
			if n > max {
				max = n
			}
		}
		return c.TotalPauseNs.Load() == sum && c.MaxPauseNs.Load() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
