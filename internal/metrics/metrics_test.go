package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(10)
	c.ReductionTasks.Add(6)
	c.MarkTasks.Add(3)
	c.ReturnTasks.Add(1)
	c.RemoteMessages.Add(2)
	c.Reclaimed.Add(5)
	c.Cycles.Add(1)

	s := c.Snapshot()
	if s.TasksExecuted != 10 || s.ReductionTasks != 6 || s.MarkTasks != 3 ||
		s.ReturnTasks != 1 || s.RemoteMessages != 2 || s.Reclaimed != 5 || s.Cycles != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(10)
	before := c.Snapshot()
	c.TasksExecuted.Add(7)
	c.Expunged.Add(2)
	diff := c.Snapshot().Sub(before)
	if diff.TasksExecuted != 7 || diff.Expunged != 2 {
		t.Fatalf("diff = %+v", diff)
	}
}

func TestObservePause(t *testing.T) {
	var c Counters
	c.ObservePause(100)
	c.ObservePause(50)
	c.ObservePause(200)
	if got := c.MaxPauseNs.Load(); got != 200 {
		t.Fatalf("max pause = %d, want 200", got)
	}
	if got := c.TotalPauseNs.Load(); got != 350 {
		t.Fatalf("total pause = %d, want 350", got)
	}
}

func TestObservePauseConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < 100; j++ {
				c.ObservePause(base + j)
			}
		}(int64(i * 1000))
	}
	wg.Wait()
	if got := c.MaxPauseNs.Load(); got != 7099 {
		t.Fatalf("max pause = %d, want 7099", got)
	}
}

func TestSnapshotString(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(5)
	c.Reclaimed.Add(2)
	s := c.Snapshot().String()
	for _, want := range []string{"tasks=5", "reclaimed=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestObservePauseMaxQuick(t *testing.T) {
	// Property: max is always ≥ each observed value, total is the sum.
	f := func(vals []uint16) bool {
		var c Counters
		var sum, max int64
		for _, v := range vals {
			n := int64(v)
			c.ObservePause(n)
			sum += n
			if n > max {
				max = n
			}
		}
		return c.TotalPauseNs.Load() == sum && c.MaxPauseNs.Load() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket b = bits.Len64(v) holds values with v < 2^b.
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	h.Observe(1 << 40) // beyond the top bucket: clamped into the last
	s := h.Snapshot()
	if s.Total() != 6 {
		t.Fatalf("total = %d, want 6", s.Total())
	}
	if s[0] != 1 { // 0
		t.Fatalf("bucket 0 = %d, want 1", s[0])
	}
	if s[1] != 1 { // 1
		t.Fatalf("bucket 1 = %d, want 1", s[1])
	}
	if s[2] != 2 { // 2 and 3
		t.Fatalf("bucket 2 = %d, want 2", s[2])
	}
	if s[3] != 1 { // 4
		t.Fatalf("bucket 3 = %d, want 1", s[3])
	}
	if s[HistBuckets-1] != 1 {
		t.Fatalf("top bucket = %d, want 1 (clamped)", s[HistBuckets-1])
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	// Quantiles report the bucket's exclusive upper bound: 1 → "< 2".
	if q := s.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %d, want 2", q)
	}
	// p99 falls in the bucket holding 1000 (2^9 < 1000 <= 2^10).
	if q := s.Quantile(0.99); q != 1024 {
		t.Fatalf("p99 = %d, want 1024", q)
	}
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	if got := empty.String(); got != "-" {
		t.Fatalf("empty String = %q, want -", got)
	}
	if got := s.String(); !strings.Contains(got, "n=100") || !strings.Contains(got, "p50<2") {
		t.Fatalf("String = %q", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	// Empty histogram: any q returns 0.
	var empty HistSnapshot
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	var h Histogram
	h.Observe(0)
	h.Observe(3)
	h.Observe(1000)
	s := h.Snapshot()
	// q=0 clamps the target to 1 observation: the first non-empty bucket's
	// upper edge (0 lives in bucket 0, upper edge 2^0 = 1).
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %d, want 1", got)
	}
	// q=1 must reach the last observation's bucket (1000 → bucket 10, < 1024).
	if got := s.Quantile(1); got != 1024 {
		t.Fatalf("Quantile(1) = %d, want 1024", got)
	}
	// Values clamped into the top bucket are still reachable at q=1.
	var top Histogram
	top.Observe(1 << 62)
	if got := top.Snapshot().Quantile(1); got != int64(1)<<(HistBuckets-1) {
		t.Fatalf("top-bucket Quantile(1) = %d, want %d", got, int64(1)<<(HistBuckets-1))
	}
}

func TestSnapshotCheckFields(t *testing.T) {
	var c Counters
	c.CheckRuns.Add(5)
	c.CheckViolations.Add(1)
	c.CheckSkipped.Add(2)
	before := c.Snapshot()
	if before.CheckRuns != 5 || before.CheckViolations != 1 || before.CheckSkipped != 2 {
		t.Fatalf("snapshot = %+v", before)
	}
	c.CheckRuns.Add(3)
	diff := c.Snapshot().Sub(before)
	if diff.CheckRuns != 3 || diff.CheckViolations != 0 {
		t.Fatalf("diff = %+v", diff)
	}
	s := c.Snapshot().String()
	for _, want := range []string{"check(", "runs=8", "violations=1", "skipped=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	var quiet Counters
	quiet.TasksExecuted.Add(1)
	if s := quiet.Snapshot().String(); strings.Contains(s, "check(") {
		t.Fatalf("String() = %q should omit check section when runs=0", s)
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(5)
	before := h.Snapshot()
	h.Observe(5)
	h.Observe(700)
	d := h.Snapshot().Sub(before)
	if d.Total() != 2 {
		t.Fatalf("delta total = %d, want 2", d.Total())
	}
}

func TestCountersDiff(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(10)
	c.FabricLatency.Observe(5)
	prev := c.Snapshot()
	c.TasksExecuted.Add(4)
	c.Reclaimed.Add(2)
	c.FabricLatency.Observe(5)
	c.FabricLatency.Observe(9000)
	d := c.Diff(prev)
	if d.TasksExecuted != 4 || d.Reclaimed != 2 {
		t.Fatalf("Diff = %+v", d)
	}
	if d.FabricLatency.Total() != 2 {
		t.Fatalf("Diff latency total = %d, want 2", d.FabricLatency.Total())
	}
	// Diff against a fresh snapshot of itself is zero everywhere.
	if z := c.Diff(c.Snapshot()); z.TasksExecuted != 0 || z.FabricLatency.Total() != 0 {
		t.Fatalf("self-diff = %+v", z)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(100)
	b.Observe(1)
	b.Observe(1)
	b.Observe(5000)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Total() != 5 {
		t.Fatalf("merged total = %d, want 5", m.Total())
	}
	// Bucket contents add exactly: value 1 lives in bucket 1.
	if m[1] != 3 {
		t.Fatalf("merged bucket 1 = %d, want 3", m[1])
	}
	// Merge is commutative and the identity is the zero snapshot.
	if b.Snapshot().Merge(a.Snapshot()) != m {
		t.Fatal("merge not commutative")
	}
	var zero HistSnapshot
	if m.Merge(zero) != m {
		t.Fatal("zero is not the merge identity")
	}
	// Quantiles over the merged set see both populations.
	if q := m.Quantile(1); q < 5000 {
		t.Fatalf("merged p100 = %d, want ≥ 5000's bucket bound", q)
	}
}

func TestSnapshotFabricFields(t *testing.T) {
	var c Counters
	c.FabricSent.Add(9)
	c.FabricDelivered.Add(7)
	c.FabricBatches.Add(3)
	c.FabricDropped.Add(2)
	c.FabricRetries.Add(2)
	c.FabricDuplicates.Add(1)
	c.FabricAcksDropped.Add(1)
	c.FabricExpunged.Add(2)
	c.FabricLatency.Observe(4)
	before := c.Snapshot()
	if before.FabricSent != 9 || before.FabricDelivered != 7 || before.FabricBatches != 3 ||
		before.FabricDropped != 2 || before.FabricRetries != 2 || before.FabricDuplicates != 1 ||
		before.FabricAcksDropped != 1 || before.FabricExpunged != 2 {
		t.Fatalf("snapshot = %+v", before)
	}
	if before.FabricLatency.Total() != 1 {
		t.Fatalf("latency total = %d, want 1", before.FabricLatency.Total())
	}
	c.FabricSent.Add(11)
	c.FabricLatency.Observe(4)
	c.FabricLatency.Observe(4)
	diff := c.Snapshot().Sub(before)
	if diff.FabricSent != 11 || diff.FabricDelivered != 0 {
		t.Fatalf("diff = %+v", diff)
	}
	if diff.FabricLatency.Total() != 2 {
		t.Fatalf("latency delta = %d, want 2", diff.FabricLatency.Total())
	}
	s := c.Snapshot().String()
	for _, want := range []string{"fabric(", "sent=20", "delivered=7", "dropped=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSnapshotStringOmitsFabricWhenUnused(t *testing.T) {
	var c Counters
	c.TasksExecuted.Add(1)
	if s := c.Snapshot().String(); strings.Contains(s, "fabric(") {
		t.Fatalf("String() = %q should omit fabric section when sent=0", s)
	}
}
