// Package metrics collects the counters the experiment harness reports:
// task executions, message traffic between partitions, marking work, and
// reclamation results.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters aggregates run statistics. All fields are safe for concurrent
// update. The zero value is ready to use.
type Counters struct {
	TasksExecuted   atomic.Int64 // all task executions
	ReductionTasks  atomic.Int64 // demand/result/reduce executions
	MarkTasks       atomic.Int64 // mark task executions
	ReturnTasks     atomic.Int64 // return task executions
	RemoteMessages  atomic.Int64 // tasks spawned across partitions
	LocalMessages   atomic.Int64 // tasks spawned within a partition
	Rewrites        atomic.Int64 // combinator/primitive graph rewrites
	Allocations     atomic.Int64 // vertices taken from F
	Reclaimed       atomic.Int64 // vertices returned to F by restructuring
	Cycles          atomic.Int64 // completed mark/restructure cycles
	MTRuns          atomic.Int64 // cycles that included an M_T phase
	Expunged        atomic.Int64 // irrelevant tasks deleted
	Reprioritized   atomic.Int64 // tasks whose band changed in restructuring
	DeadlockedFound atomic.Int64 // vertices reported deadlocked
	CoopMarks       atomic.Int64 // marks spawned by cooperating mutator primitives
	MaxPauseNs      atomic.Int64 // longest single mutator pause (stop-the-world baseline)
	TotalPauseNs    atomic.Int64 // cumulative mutator pause time
}

// ObservePause records a mutator pause, updating both the total and the max.
func (c *Counters) ObservePause(ns int64) {
	c.TotalPauseNs.Add(ns)
	for {
		cur := c.MaxPauseNs.Load()
		if ns <= cur || c.MaxPauseNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	TasksExecuted   int64
	ReductionTasks  int64
	MarkTasks       int64
	ReturnTasks     int64
	RemoteMessages  int64
	LocalMessages   int64
	Rewrites        int64
	Allocations     int64
	Reclaimed       int64
	Cycles          int64
	MTRuns          int64
	Expunged        int64
	Reprioritized   int64
	DeadlockedFound int64
	CoopMarks       int64
	MaxPauseNs      int64
	TotalPauseNs    int64
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		TasksExecuted:   c.TasksExecuted.Load(),
		ReductionTasks:  c.ReductionTasks.Load(),
		MarkTasks:       c.MarkTasks.Load(),
		ReturnTasks:     c.ReturnTasks.Load(),
		RemoteMessages:  c.RemoteMessages.Load(),
		LocalMessages:   c.LocalMessages.Load(),
		Rewrites:        c.Rewrites.Load(),
		Allocations:     c.Allocations.Load(),
		Reclaimed:       c.Reclaimed.Load(),
		Cycles:          c.Cycles.Load(),
		MTRuns:          c.MTRuns.Load(),
		Expunged:        c.Expunged.Load(),
		Reprioritized:   c.Reprioritized.Load(),
		DeadlockedFound: c.DeadlockedFound.Load(),
		CoopMarks:       c.CoopMarks.Load(),
		MaxPauseNs:      c.MaxPauseNs.Load(),
		TotalPauseNs:    c.TotalPauseNs.Load(),
	}
}

// String renders the snapshot as a one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"tasks=%d (red=%d mark=%d ret=%d) msgs(remote=%d local=%d) rewrites=%d alloc=%d reclaimed=%d cycles=%d expunged=%d deadlocked=%d",
		s.TasksExecuted, s.ReductionTasks, s.MarkTasks, s.ReturnTasks,
		s.RemoteMessages, s.LocalMessages, s.Rewrites, s.Allocations,
		s.Reclaimed, s.Cycles, s.Expunged, s.DeadlockedFound)
}

// Sub returns s - o field-wise, for measuring an interval.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		TasksExecuted:   s.TasksExecuted - o.TasksExecuted,
		ReductionTasks:  s.ReductionTasks - o.ReductionTasks,
		MarkTasks:       s.MarkTasks - o.MarkTasks,
		ReturnTasks:     s.ReturnTasks - o.ReturnTasks,
		RemoteMessages:  s.RemoteMessages - o.RemoteMessages,
		LocalMessages:   s.LocalMessages - o.LocalMessages,
		Rewrites:        s.Rewrites - o.Rewrites,
		Allocations:     s.Allocations - o.Allocations,
		Reclaimed:       s.Reclaimed - o.Reclaimed,
		Cycles:          s.Cycles - o.Cycles,
		MTRuns:          s.MTRuns - o.MTRuns,
		Expunged:        s.Expunged - o.Expunged,
		Reprioritized:   s.Reprioritized - o.Reprioritized,
		DeadlockedFound: s.DeadlockedFound - o.DeadlockedFound,
		CoopMarks:       s.CoopMarks - o.CoopMarks,
		MaxPauseNs:      s.MaxPauseNs,
		TotalPauseNs:    s.TotalPauseNs - o.TotalPauseNs,
	}
}
