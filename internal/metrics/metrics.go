// Package metrics collects the counters the experiment harness reports:
// task executions, message traffic between partitions, marking work, and
// reclamation results.
package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Counters aggregates run statistics. All fields are safe for concurrent
// update. The zero value is ready to use.
type Counters struct {
	TasksExecuted   atomic.Int64 // all task executions
	ReductionTasks  atomic.Int64 // demand/result/reduce executions
	MarkTasks       atomic.Int64 // mark task executions
	ReturnTasks     atomic.Int64 // return task executions
	RemoteMessages  atomic.Int64 // tasks spawned across partitions
	LocalMessages   atomic.Int64 // tasks spawned within a partition
	Rewrites        atomic.Int64 // combinator/primitive graph rewrites
	Allocations     atomic.Int64 // vertices taken from F
	Reclaimed       atomic.Int64 // vertices returned to F by restructuring
	Cycles          atomic.Int64 // completed mark/restructure cycles
	MTRuns          atomic.Int64 // cycles that included an M_T phase
	Expunged        atomic.Int64 // irrelevant tasks deleted
	Reprioritized   atomic.Int64 // tasks whose band changed in restructuring
	DeadlockedFound   atomic.Int64 // vertices with a confirmed deadlock verdict
	DeadlockRetracted atomic.Int64 // candidate verdicts retracted before confirmation
	CoopMarks         atomic.Int64 // marks spawned by cooperating mutator primitives
	MaxPauseNs      atomic.Int64 // longest single mutator pause (stop-the-world baseline)
	TotalPauseNs    atomic.Int64 // cumulative mutator pause time

	// Work-stealing activity (zero unless sched.Config.Steal is on).
	Steals      atomic.Int64 // successful steal operations (batches taken)
	StolenTasks atomic.Int64 // tasks moved between PE pools by stealing
	IdlePolls   atomic.Int64 // times a PE found no work (own pool and peers empty)

	// Invariant checker activity (zero unless internal/check is wired in).
	CheckRuns       atomic.Int64 // sample points where a check actually ran
	CheckViolations atomic.Int64 // invariant violations reported
	CheckSkipped    atomic.Int64 // sample points skipped as unsafe (unstable state)

	// Inter-PE fabric traffic (zero unless a fabric is wired in).
	FabricSent        atomic.Int64 // tasks handed to the fabric for remote delivery
	FabricDelivered   atomic.Int64 // tasks delivered into destination pools
	FabricBatches     atomic.Int64 // batches flushed onto links
	FabricDropped     atomic.Int64 // batch transmissions lost to fault injection
	FabricRetries     atomic.Int64 // batch retransmissions after loss
	FabricDuplicates  atomic.Int64 // duplicate deliveries suppressed by dedup
	FabricAcksDropped atomic.Int64 // acknowledgements lost to fault injection
	FabricExpunged    atomic.Int64 // in-transit tasks deleted by restructuring
	FabricLatency     Histogram    // enqueue→delivery latency in µs
}

// HistBuckets is the number of log2 buckets in a Histogram. Bucket b counts
// observations v with 2^(b-1) <= v < 2^b (bucket 0 counts v == 0), so the
// top bucket absorbs everything >= 2^(HistBuckets-2).
const HistBuckets = 16

// Histogram is a lock-free log2-bucketed histogram of non-negative values.
// The zero value is ready to use.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram's buckets.
type HistSnapshot [HistBuckets]int64

// Total returns the number of observations.
func (s HistSnapshot) Total() int64 {
	var n int64
	for _, c := range s {
		n += c
	}
	return n
}

// Sub returns s - o bucket-wise, for measuring an interval.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s {
		d[i] = s[i] - o[i]
	}
	return d
}

// Merge returns s + o bucket-wise: the histogram of the union of both
// observation sets (log2 buckets make merging exact). The sampler uses it
// to combine per-link histograms into one exposition series.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	var m HistSnapshot
	for i := range s {
		m[i] = s[i] + o[i]
	}
	return m
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]): the
// exclusive upper edge of the first bucket whose cumulative count reaches
// q·Total. Returns 0 on an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b, c := range s {
		cum += c
		if cum >= target {
			return int64(1) << b // bucket b holds v < 2^b
		}
	}
	return int64(1) << (HistBuckets - 1)
}

// String renders the snapshot as approximate quantiles.
func (s HistSnapshot) String() string {
	total := s.Total()
	if total == 0 {
		return "-"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d p50<%d p95<%d p99<%d",
		total, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99))
	return sb.String()
}

// ObservePause records a mutator pause, updating both the total and the max.
func (c *Counters) ObservePause(ns int64) {
	c.TotalPauseNs.Add(ns)
	for {
		cur := c.MaxPauseNs.Load()
		if ns <= cur || c.MaxPauseNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	TasksExecuted   int64
	ReductionTasks  int64
	MarkTasks       int64
	ReturnTasks     int64
	RemoteMessages  int64
	LocalMessages   int64
	Rewrites        int64
	Allocations     int64
	Reclaimed       int64
	Cycles          int64
	MTRuns          int64
	Expunged          int64
	Reprioritized     int64
	DeadlockedFound   int64
	DeadlockRetracted int64
	CoopMarks         int64
	MaxPauseNs        int64
	TotalPauseNs      int64

	Steals      int64
	StolenTasks int64
	IdlePolls   int64

	CheckRuns       int64
	CheckViolations int64
	CheckSkipped    int64

	FabricSent        int64
	FabricDelivered   int64
	FabricBatches     int64
	FabricDropped     int64
	FabricRetries     int64
	FabricDuplicates  int64
	FabricAcksDropped int64
	FabricExpunged    int64
	FabricLatency     HistSnapshot
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		TasksExecuted:   c.TasksExecuted.Load(),
		ReductionTasks:  c.ReductionTasks.Load(),
		MarkTasks:       c.MarkTasks.Load(),
		ReturnTasks:     c.ReturnTasks.Load(),
		RemoteMessages:  c.RemoteMessages.Load(),
		LocalMessages:   c.LocalMessages.Load(),
		Rewrites:        c.Rewrites.Load(),
		Allocations:     c.Allocations.Load(),
		Reclaimed:       c.Reclaimed.Load(),
		Cycles:          c.Cycles.Load(),
		MTRuns:          c.MTRuns.Load(),
		Expunged:        c.Expunged.Load(),
		Reprioritized:   c.Reprioritized.Load(),
		DeadlockedFound:   c.DeadlockedFound.Load(),
		DeadlockRetracted: c.DeadlockRetracted.Load(),
		CoopMarks:         c.CoopMarks.Load(),
		MaxPauseNs:        c.MaxPauseNs.Load(),
		TotalPauseNs:      c.TotalPauseNs.Load(),

		Steals:      c.Steals.Load(),
		StolenTasks: c.StolenTasks.Load(),
		IdlePolls:   c.IdlePolls.Load(),

		CheckRuns:       c.CheckRuns.Load(),
		CheckViolations: c.CheckViolations.Load(),
		CheckSkipped:    c.CheckSkipped.Load(),

		FabricSent:        c.FabricSent.Load(),
		FabricDelivered:   c.FabricDelivered.Load(),
		FabricBatches:     c.FabricBatches.Load(),
		FabricDropped:     c.FabricDropped.Load(),
		FabricRetries:     c.FabricRetries.Load(),
		FabricDuplicates:  c.FabricDuplicates.Load(),
		FabricAcksDropped: c.FabricAcksDropped.Load(),
		FabricExpunged:    c.FabricExpunged.Load(),
		FabricLatency:     c.FabricLatency.Snapshot(),
	}
}

// Diff snapshots the current counters and returns the delta against a
// previous snapshot — the value-type interval helper the time-series
// sampler and the exposition endpoints use (equivalent to
// c.Snapshot().Sub(prev), in one call).
func (c *Counters) Diff(prev Snapshot) Snapshot {
	return c.Snapshot().Sub(prev)
}

// Add returns the field-wise sum of two snapshots — the aggregation the
// serving layer uses to report a machine pool as one counter set.
// MaxPauseNs takes the maximum (a pool's worst pause, not a sum of pauses).
func (s Snapshot) Add(o Snapshot) Snapshot {
	out := Snapshot{
		TasksExecuted:   s.TasksExecuted + o.TasksExecuted,
		ReductionTasks:  s.ReductionTasks + o.ReductionTasks,
		MarkTasks:       s.MarkTasks + o.MarkTasks,
		ReturnTasks:     s.ReturnTasks + o.ReturnTasks,
		RemoteMessages:  s.RemoteMessages + o.RemoteMessages,
		LocalMessages:   s.LocalMessages + o.LocalMessages,
		Rewrites:        s.Rewrites + o.Rewrites,
		Allocations:     s.Allocations + o.Allocations,
		Reclaimed:       s.Reclaimed + o.Reclaimed,
		Cycles:          s.Cycles + o.Cycles,
		MTRuns:          s.MTRuns + o.MTRuns,
		Expunged:        s.Expunged + o.Expunged,
		Reprioritized:   s.Reprioritized + o.Reprioritized,
		DeadlockedFound:   s.DeadlockedFound + o.DeadlockedFound,
		DeadlockRetracted: s.DeadlockRetracted + o.DeadlockRetracted,
		CoopMarks:         s.CoopMarks + o.CoopMarks,
		MaxPauseNs:        s.MaxPauseNs,
		TotalPauseNs:      s.TotalPauseNs + o.TotalPauseNs,

		Steals:      s.Steals + o.Steals,
		StolenTasks: s.StolenTasks + o.StolenTasks,
		IdlePolls:   s.IdlePolls + o.IdlePolls,

		CheckRuns:       s.CheckRuns + o.CheckRuns,
		CheckViolations: s.CheckViolations + o.CheckViolations,
		CheckSkipped:    s.CheckSkipped + o.CheckSkipped,

		FabricSent:        s.FabricSent + o.FabricSent,
		FabricDelivered:   s.FabricDelivered + o.FabricDelivered,
		FabricBatches:     s.FabricBatches + o.FabricBatches,
		FabricDropped:     s.FabricDropped + o.FabricDropped,
		FabricRetries:     s.FabricRetries + o.FabricRetries,
		FabricDuplicates:  s.FabricDuplicates + o.FabricDuplicates,
		FabricAcksDropped: s.FabricAcksDropped + o.FabricAcksDropped,
		FabricExpunged:    s.FabricExpunged + o.FabricExpunged,
	}
	if o.MaxPauseNs > out.MaxPauseNs {
		out.MaxPauseNs = o.MaxPauseNs
	}
	for i := range out.FabricLatency {
		out.FabricLatency[i] = s.FabricLatency[i] + o.FabricLatency[i]
	}
	return out
}

// String renders the snapshot as a one-line summary. Fabric traffic is
// appended only when a fabric carried messages.
func (s Snapshot) String() string {
	out := fmt.Sprintf(
		"tasks=%d (red=%d mark=%d ret=%d) msgs(remote=%d local=%d) rewrites=%d alloc=%d reclaimed=%d cycles=%d expunged=%d deadlocked=%d",
		s.TasksExecuted, s.ReductionTasks, s.MarkTasks, s.ReturnTasks,
		s.RemoteMessages, s.LocalMessages, s.Rewrites, s.Allocations,
		s.Reclaimed, s.Cycles, s.Expunged, s.DeadlockedFound)
	if s.FabricSent > 0 {
		out += fmt.Sprintf(
			" fabric(sent=%d delivered=%d batches=%d dropped=%d retried=%d dup=%d lat[µs]=%s)",
			s.FabricSent, s.FabricDelivered, s.FabricBatches, s.FabricDropped,
			s.FabricRetries, s.FabricDuplicates, s.FabricLatency)
	}
	if s.Steals > 0 || s.IdlePolls > 0 {
		out += fmt.Sprintf(" steal(ops=%d tasks=%d idle=%d)",
			s.Steals, s.StolenTasks, s.IdlePolls)
	}
	if s.CheckRuns > 0 {
		out += fmt.Sprintf(" check(runs=%d violations=%d skipped=%d)",
			s.CheckRuns, s.CheckViolations, s.CheckSkipped)
	}
	return out
}

// Sub returns s - o field-wise, for measuring an interval.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		TasksExecuted:   s.TasksExecuted - o.TasksExecuted,
		ReductionTasks:  s.ReductionTasks - o.ReductionTasks,
		MarkTasks:       s.MarkTasks - o.MarkTasks,
		ReturnTasks:     s.ReturnTasks - o.ReturnTasks,
		RemoteMessages:  s.RemoteMessages - o.RemoteMessages,
		LocalMessages:   s.LocalMessages - o.LocalMessages,
		Rewrites:        s.Rewrites - o.Rewrites,
		Allocations:     s.Allocations - o.Allocations,
		Reclaimed:       s.Reclaimed - o.Reclaimed,
		Cycles:          s.Cycles - o.Cycles,
		MTRuns:          s.MTRuns - o.MTRuns,
		Expunged:        s.Expunged - o.Expunged,
		Reprioritized:   s.Reprioritized - o.Reprioritized,
		DeadlockedFound:   s.DeadlockedFound - o.DeadlockedFound,
		DeadlockRetracted: s.DeadlockRetracted - o.DeadlockRetracted,
		CoopMarks:         s.CoopMarks - o.CoopMarks,
		MaxPauseNs:        s.MaxPauseNs,
		TotalPauseNs:      s.TotalPauseNs - o.TotalPauseNs,

		Steals:      s.Steals - o.Steals,
		StolenTasks: s.StolenTasks - o.StolenTasks,
		IdlePolls:   s.IdlePolls - o.IdlePolls,

		CheckRuns:       s.CheckRuns - o.CheckRuns,
		CheckViolations: s.CheckViolations - o.CheckViolations,
		CheckSkipped:    s.CheckSkipped - o.CheckSkipped,

		FabricSent:        s.FabricSent - o.FabricSent,
		FabricDelivered:   s.FabricDelivered - o.FabricDelivered,
		FabricBatches:     s.FabricBatches - o.FabricBatches,
		FabricDropped:     s.FabricDropped - o.FabricDropped,
		FabricRetries:     s.FabricRetries - o.FabricRetries,
		FabricDuplicates:  s.FabricDuplicates - o.FabricDuplicates,
		FabricAcksDropped: s.FabricAcksDropped - o.FabricAcksDropped,
		FabricExpunged:    s.FabricExpunged - o.FabricExpunged,
		FabricLatency:     s.FabricLatency.Sub(o.FabricLatency),
	}
}
