package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrNoFreeVertices is returned by Alloc when the free set F is exhausted
// and the store was configured not to grow.
var ErrNoFreeVertices = errors.New("graph: free list exhausted")

// Config parameterizes a Store.
type Config struct {
	// Partitions is the number of subgraph partitions (one per PE). Must be
	// at least 1.
	Partitions int
	// Capacity is the initial number of vertices pre-allocated into the
	// free lists (spread round-robin across partitions).
	Capacity int
	// FixedSize, when true, makes Alloc fail with ErrNoFreeVertices instead
	// of growing the vertex arena when F is empty. The paper's model has a
	// fixed finite V; benchmarks that study reclamation use FixedSize.
	FixedSize bool
}

// Arena segmentation: vertex lookups are the hottest operation in the
// whole system (every task execution does several), so the arena is a
// lock-free two-level table — an atomically published slice of fixed-size
// segments. Readers never take a lock; the grow mutex guards only appends.
const (
	segBits = 12
	segSize = 1 << segBits
	segMask = segSize - 1
)

// segment is one arena block: vertices are embedded by value, so growing
// the arena costs one allocation per segSize vertices instead of one per
// vertex (a Machine pre-allocates tens of thousands of free vertices at
// construction — vertex-at-a-time heap allocation dominated its profile).
// Vertex pointers into a segment stay stable for the life of the store.
type segment [segSize]Vertex

// freeShard is one partition's slice of the free set F: its own lock, its
// own id stack. PEs allocate and release on their own partition, so under
// partition-local workloads no two PEs ever contend on the same shard
// lock. The padding keeps adjacent shards on separate cache lines.
type freeShard struct {
	mu  sync.Mutex
	ids []VertexID
	_   [32]byte // pad to one cache line: adjacent shards must not false-share
}

// Store owns every vertex in the computation graph, the per-partition free
// lists (the paper's set F), and an interned string table for KindStr
// literals. Vertex field access is guarded by per-vertex locks; free-list
// access is sharded per partition, so Alloc/Release on different PEs never
// touch a shared lock (the slow path steals from a sibling shard in
// batches). Arena growth alone is funneled through one mutex, and both the
// vertex table and the string table are read lock-free via atomically
// published copy-on-write structures.
type Store struct {
	segs atomic.Pointer[[]*segment]
	n    atomic.Int64 // number of vertices allocated into the arena (excludes NilVertex)

	growMu sync.Mutex // guards arena growth (segment appends); not taken by Alloc fast paths

	shards []freeShard
	freeN  atomic.Int64 // |F|, exact: updated only when a vertex enters or leaves F
	fixed  bool

	strMu  sync.Mutex               // guards interning (writers)
	strTab atomic.Pointer[[]string] // published table; readers never lock
	strIdx map[string]int64

	parts int
}

// NewStore builds a store with cfg.Capacity free vertices distributed over
// cfg.Partitions partitions.
func NewStore(cfg Config) *Store {
	if cfg.Partitions < 1 {
		cfg.Partitions = 1
	}
	s := &Store{
		shards: make([]freeShard, cfg.Partitions),
		fixed:  cfg.FixedSize,
		parts:  cfg.Partitions,
		strIdx: make(map[string]int64),
	}
	empty := make([]*segment, 0)
	s.segs.Store(&empty)
	emptyStr := make([]string, 0)
	s.strTab.Store(&emptyStr)
	for i := 0; i < cfg.Capacity; i++ {
		part := i % cfg.Partitions
		id := s.growOne(part)
		sh := &s.shards[part]
		sh.mu.Lock()
		sh.ids = append(sh.ids, id)
		sh.mu.Unlock()
		s.freeN.Add(1)
	}
	return s
}

// growOne extends the arena by one vertex owned by part and returns its id.
// The new vertex is NOT added to any free list; the caller decides whether
// it enters F or is handed out directly.
func (s *Store) growOne(part int) VertexID {
	s.growMu.Lock()
	id := VertexID(s.n.Load() + 1) // slot 0 is NilVertex

	segs := *s.segs.Load()
	segIdx := int(id) >> segBits
	if segIdx >= len(segs) {
		// Publish a copy with the new segment appended; readers holding
		// the old slice simply don't see the new (not yet referenced)
		// vertices.
		grown := make([]*segment, len(segs)+1)
		copy(grown, segs)
		grown[len(segs)] = new(segment)
		s.segs.Store(&grown)
		segs = grown
	}
	v := &segs[segIdx][int(id)&segMask]
	v.ID = id
	v.Part = part
	v.Kind = KindFree
	// The vertex fields are fully written before n is published; readers
	// only dereference ids at or below a loaded n.
	s.n.Add(1)
	s.growMu.Unlock()
	return id
}

// Partitions returns the number of partitions.
func (s *Store) Partitions() int { return s.parts }

// Len returns the number of vertices in V (allocated arena size, free or
// not), excluding the nil slot.
func (s *Store) Len() int { return int(s.n.Load()) }

// FreeCount returns |F|. It is exact: the counter moves only when a vertex
// actually enters or leaves the free set (cross-partition batch transfers
// keep their vertices in F throughout).
func (s *Store) FreeCount() int {
	return int(s.freeN.Load())
}

// FreeCountOf returns the free-vertex count of one partition's shard, or 0
// for an out-of-range partition. Takes that shard's lock only.
func (s *Store) FreeCountOf(part int) int {
	if part < 0 || part >= len(s.shards) {
		return 0
	}
	sh := &s.shards[part]
	sh.mu.Lock()
	n := len(sh.ids)
	sh.mu.Unlock()
	return n
}

// Vertex returns the vertex with the given ID, or nil for NilVertex or an
// out-of-range ID. The returned pointer is stable for the life of the
// store. Lock-free.
func (s *Store) Vertex(id VertexID) *Vertex {
	if id == NilVertex || int64(id) > s.n.Load() {
		return nil
	}
	segs := *s.segs.Load()
	segIdx := int(id) >> segBits
	if segIdx >= len(segs) {
		return nil
	}
	return &segs[segIdx][int(id)&segMask]
}

// MustVertex is Vertex but panics on an invalid ID; for internal callers
// that hold a structurally guaranteed ID.
func (s *Store) MustVertex(id VertexID) *Vertex {
	v := s.Vertex(id)
	if v == nil {
		panic(fmt.Sprintf("graph: no vertex %d", id))
	}
	return v
}

// Alloc takes a vertex from the free list of the given partition, stealing
// from other partitions if the local list is empty, and growing the arena if
// allowed. The vertex is returned labeled with the given kind/value, with no
// edges, ready for the caller to wire and splice in.
//
// part must be a valid partition. A caller that passes an out-of-range
// partition is misrouting an allocation — silently clamping it to 0 would
// put the vertex on the wrong PE and mask the bug — so Alloc panics,
// naming the offending value (the same philosophy as sched.Machine.PartOf).
//
// Alloc stamps AllocEpoch/AllocEpochT to zero, which is only safe while no
// concurrent sweep runs (graph construction, tests). Mutators racing a
// collector must use AllocStamped.
func (s *Store) Alloc(part int, kind Kind, val int64) (*Vertex, error) {
	return s.AllocStamped(part, kind, val, 0, 0)
}

// AllocStamped is Alloc with the vertex's alloc epochs written inside the
// same critical section that labels it non-free. The restructuring sweep
// runs concurrently with allocation; if the vertex became non-free with a
// stale epoch even briefly, a sweep scanning that window would see an
// unmarked, unprotected vertex and reclaim it before the caller wires it
// into the graph. Concurrent mutators pass FreshAllocEpoch for both stamps
// and let the splice primitive record the real epochs at wiring time.
func (s *Store) AllocStamped(part int, kind Kind, val int64, epochR, epochT uint64) (*Vertex, error) {
	if part < 0 || part >= s.parts {
		panic(fmt.Sprintf("graph: Alloc partition %d out of range [0,%d)", part, s.parts))
	}
	var id VertexID
	for {
		var ok bool
		id, ok = s.popLocal(part)
		if !ok {
			id, ok = s.steal(part)
		}
		if ok {
			break
		}
		if !s.fixed {
			id = s.growOne(part)
			break
		}
		// FixedSize and the sweep found nothing. Vertices never leave F
		// except when claimed (freeN is decremented exactly then), so
		// freeN == 0 means F really is empty. A nonzero freeN means a
		// concurrent Release landed after we passed its shard — retry.
		if s.freeN.Load() == 0 {
			return nil, ErrNoFreeVertices
		}
	}
	v := s.Vertex(id)

	v.Lock()
	v.Kind = kind
	v.Val = val
	v.Red = RedState{AllocEpoch: epochR, AllocEpochT: epochT}
	v.Unlock()
	return v, nil
}

// popLocal takes the most recently freed vertex of part's own shard.
// This is the allocation fast path: one uncontended per-partition lock.
func (s *Store) popLocal(part int) (VertexID, bool) {
	sh := &s.shards[part]
	sh.mu.Lock()
	n := len(sh.ids)
	if n == 0 {
		sh.mu.Unlock()
		return NilVertex, false
	}
	id := sh.ids[n-1]
	sh.ids = sh.ids[:n-1]
	sh.mu.Unlock()
	s.freeN.Add(-1)
	return id, true
}

// steal claims one free vertex from a sibling partition's shard. It is the
// deliberate slow path: it runs only when part's own shard is empty, and it
// probes victims in ring order from part — the exact order (and therefore
// the exact id sequence) of the pre-sharding allocator, which the
// deterministic scheduler's schedule-identity guarantee depends on. Only
// one shard lock is held at a time, so steals can never deadlock against
// each other or against Release.
func (s *Store) steal(part int) (VertexID, bool) {
	for off := 1; off < s.parts; off++ {
		vs := &s.shards[(part+off)%s.parts]
		vs.mu.Lock()
		if n := len(vs.ids); n > 0 {
			id := vs.ids[n-1]
			vs.ids = vs.ids[:n-1]
			vs.mu.Unlock()
			s.freeN.Add(-1)
			return id, true
		}
		vs.mu.Unlock()
	}
	return NilVertex, false
}

// Release returns a vertex to F (the restructuring phase's "adding elements
// of GAR to F"). The caller must guarantee the vertex is unreachable; its
// edges and reduction state are cleared. Only the owning partition's shard
// lock is taken, so concurrent releases on different PEs never contend.
func (s *Store) Release(v *Vertex) {
	v.Lock()
	v.ResetFree()
	part := v.Part
	v.Unlock()

	sh := &s.shards[part]
	sh.mu.Lock()
	sh.ids = append(sh.ids, v.ID)
	sh.mu.Unlock()
	s.freeN.Add(1)
}

// ReleaseBatch returns a whole batch of vertices to F, refilling each
// partition's free cache with a single lock acquisition per partition —
// the restructuring phase reclaims garbage by the thousand, and paying a
// shard lock per vertex would make the collector the one writer that
// serializes against every PE's allocation fast path. Append order within
// a partition matches vertex order in vs, so the id sequence handed back
// out by Alloc is identical to len(vs) individual Release calls.
func (s *Store) ReleaseBatch(vs []*Vertex) {
	if len(vs) == 0 {
		return
	}
	for _, v := range vs {
		v.Lock()
		v.ResetFree()
		v.Unlock()
	}
	// One pass per distinct partition in the batch; each pass appends all
	// of that partition's vertices (in batch order) under a single lock
	// hold.
	released := make([]bool, s.parts)
	for _, first := range vs {
		part := first.Part
		if released[part] {
			continue
		}
		released[part] = true
		sh := &s.shards[part]
		n := 0
		sh.mu.Lock()
		for _, v := range vs {
			if v.Part == part {
				sh.ids = append(sh.ids, v.ID)
				n++
			}
		}
		sh.mu.Unlock()
		s.freeN.Add(int64(n))
	}
}

// IsFree reports whether id is currently in F.
func (s *Store) IsFree(id VertexID) bool {
	v := s.Vertex(id)
	if v == nil {
		return false
	}
	v.Lock()
	defer v.Unlock()
	return v.Kind == KindFree
}

// ForEach calls fn for every vertex ID in the arena. It snapshots the
// arena length first; vertices allocated during iteration may be missed,
// which is the semantics restructuring wants (new vertices come from F and
// are never garbage in the current cycle by reduction axiom 1).
func (s *Store) ForEach(fn func(*Vertex)) {
	n := s.n.Load()
	segs := *s.segs.Load()
	for i := int64(1); i <= n; i++ {
		fn(&segs[int(i)>>segBits][int(i)&segMask])
	}
}

// ForEachInPartition calls fn for every vertex owned by part.
func (s *Store) ForEachInPartition(part int, fn func(*Vertex)) {
	s.ForEach(func(v *Vertex) {
		if v.Part == part {
			fn(v)
		}
	})
}

// InternString interns a string and returns its table index for use as a
// KindStr vertex value. Interning copies and republishes the table, which
// keeps StringAt lock-free; interning happens at compile time, reading on
// the reduction hot path, so the copy is on the right side.
func (s *Store) InternString(str string) int64 {
	s.strMu.Lock()
	defer s.strMu.Unlock()
	if i, ok := s.strIdx[str]; ok {
		return i
	}
	old := *s.strTab.Load()
	tab := make([]string, len(old)+1)
	copy(tab, old)
	tab[len(old)] = str
	i := int64(len(old))
	s.strIdx[str] = i
	s.strTab.Store(&tab)
	return i
}

// StringAt returns the interned string at index i ("" if out of range).
// Lock-free: it reads the atomically published copy-on-write table.
func (s *Store) StringAt(i int64) string {
	tab := *s.strTab.Load()
	if i < 0 || int(i) >= len(tab) {
		return ""
	}
	return tab[i]
}

// PartitionOf returns the partition that owns id (0 for invalid IDs).
func (s *Store) PartitionOf(id VertexID) int {
	v := s.Vertex(id)
	if v == nil {
		return 0
	}
	return v.Part
}

// Snapshot returns a consistent copy of the graph's connectivity for
// offline analysis. The world should be quiescent (or deterministically
// paused) when it is taken; each vertex is copied under its own lock.
func (s *Store) Snapshot() *Snapshot {
	n := int(s.n.Load())
	snap := &Snapshot{
		Verts: make([]SnapVertex, n+1),
		Parts: s.parts,
	}
	s.ForEach(func(v *Vertex) {
		v.Lock()
		sv := SnapVertex{
			ID:   v.ID,
			Part: v.Part,
			Kind: v.Kind,
			Val:  v.Val,
		}
		sv.Args = append(sv.Args, v.Args...)
		sv.ReqKinds = append(sv.ReqKinds, v.ReqKinds...)
		sv.Requested = append(sv.Requested, v.Requested...)
		v.Unlock()
		snap.Verts[sv.ID] = sv
	})
	return snap
}

// SnapVertex is an immutable copy of a vertex's connectivity.
type SnapVertex struct {
	ID        VertexID
	Part      int
	Kind      Kind
	Val       int64
	Args      []VertexID
	ReqKinds  []ReqKind
	Requested []Requester
}

// Snapshot is an immutable copy of the whole graph, used by the
// stop-the-world reachability oracle in internal/analysis.
type Snapshot struct {
	Verts []SnapVertex
	Parts int
}

// Vertex returns the snapshot of id, or nil.
func (s *Snapshot) Vertex(id VertexID) *SnapVertex {
	if id == NilVertex || int(id) >= len(s.Verts) {
		return nil
	}
	sv := &s.Verts[id]
	if sv.ID == NilVertex {
		return nil
	}
	return sv
}

// Len returns the number of vertices in the snapshot (excluding slot 0).
func (s *Snapshot) Len() int { return len(s.Verts) - 1 }
