package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrNoFreeVertices is returned by Alloc when the free set F is exhausted
// and the store was configured not to grow.
var ErrNoFreeVertices = errors.New("graph: free list exhausted")

// Config parameterizes a Store.
type Config struct {
	// Partitions is the number of subgraph partitions (one per PE). Must be
	// at least 1.
	Partitions int
	// Capacity is the initial number of vertices pre-allocated into the
	// free lists (spread round-robin across partitions).
	Capacity int
	// FixedSize, when true, makes Alloc fail with ErrNoFreeVertices instead
	// of growing the vertex arena when F is empty. The paper's model has a
	// fixed finite V; benchmarks that study reclamation use FixedSize.
	FixedSize bool
}

// Arena segmentation: vertex lookups are the hottest operation in the
// whole system (every task execution does several), so the arena is a
// lock-free two-level table — an atomically published slice of fixed-size
// segments. Readers never take a lock; the store mutex guards only
// appends and the free lists.
const (
	segBits = 12
	segSize = 1 << segBits
	segMask = segSize - 1
)

type segment [segSize]*Vertex

// Store owns every vertex in the computation graph, the per-partition free
// lists (the paper's set F), and an interned string table for KindStr
// literals. Vertex field access is guarded by per-vertex locks; the store's
// own lock guards only arena growth and free lists.
type Store struct {
	segs atomic.Pointer[[]*segment]
	n    atomic.Int64 // number of vertices allocated into the arena (excludes NilVertex)

	mu    sync.Mutex
	free  [][]VertexID
	freeN int
	fixed bool

	strMu   sync.Mutex
	strings []string
	strIdx  map[string]int64

	parts int
}

// NewStore builds a store with cfg.Capacity free vertices distributed over
// cfg.Partitions partitions.
func NewStore(cfg Config) *Store {
	if cfg.Partitions < 1 {
		cfg.Partitions = 1
	}
	s := &Store{
		free:   make([][]VertexID, cfg.Partitions),
		fixed:  cfg.FixedSize,
		parts:  cfg.Partitions,
		strIdx: make(map[string]int64),
	}
	empty := make([]*segment, 0)
	s.segs.Store(&empty)
	s.mu.Lock()
	for i := 0; i < cfg.Capacity; i++ {
		s.appendFreeLocked(i % cfg.Partitions)
	}
	s.mu.Unlock()
	return s
}

// appendFreeLocked grows the arena by one free vertex on the given
// partition. Caller holds s.mu.
func (s *Store) appendFreeLocked(part int) {
	id := VertexID(s.n.Load() + 1) // slot 0 is NilVertex
	v := &Vertex{ID: id, Part: part, Kind: KindFree}

	segs := *s.segs.Load()
	segIdx := int(id) >> segBits
	if segIdx >= len(segs) {
		// Publish a copy with the new segment appended; readers holding
		// the old slice simply don't see the new (not yet referenced)
		// vertices.
		grown := make([]*segment, len(segs)+1)
		copy(grown, segs)
		grown[len(segs)] = new(segment)
		s.segs.Store(&grown)
		segs = grown
	}
	segs[segIdx][int(id)&segMask] = v
	s.n.Add(1)
	s.free[part] = append(s.free[part], id)
	s.freeN++
}

// Partitions returns the number of partitions.
func (s *Store) Partitions() int { return s.parts }

// Len returns the number of vertices in V (allocated arena size, free or
// not), excluding the nil slot.
func (s *Store) Len() int { return int(s.n.Load()) }

// FreeCount returns |F|.
func (s *Store) FreeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeN
}

// Vertex returns the vertex with the given ID, or nil for NilVertex or an
// out-of-range ID. The returned pointer is stable for the life of the
// store. Lock-free.
func (s *Store) Vertex(id VertexID) *Vertex {
	if id == NilVertex || int64(id) > s.n.Load() {
		return nil
	}
	segs := *s.segs.Load()
	segIdx := int(id) >> segBits
	if segIdx >= len(segs) {
		return nil
	}
	return segs[segIdx][int(id)&segMask]
}

// MustVertex is Vertex but panics on an invalid ID; for internal callers
// that hold a structurally guaranteed ID.
func (s *Store) MustVertex(id VertexID) *Vertex {
	v := s.Vertex(id)
	if v == nil {
		panic(fmt.Sprintf("graph: no vertex %d", id))
	}
	return v
}

// Alloc takes a vertex from the free list of the given partition, stealing
// from other partitions if the local list is empty, and growing the arena if
// allowed. The vertex is returned labeled with the given kind/value, with no
// edges, ready for the caller to wire and splice in.
func (s *Store) Alloc(part int, kind Kind, val int64) (*Vertex, error) {
	if part < 0 || part >= s.parts {
		part = 0
	}
	s.mu.Lock()
	id, ok := s.popFreeLocked(part)
	if !ok {
		if s.fixed {
			s.mu.Unlock()
			return nil, ErrNoFreeVertices
		}
		s.appendFreeLocked(part)
		id, _ = s.popFreeLocked(part)
	}
	s.mu.Unlock()
	v := s.Vertex(id)

	v.Lock()
	v.Kind = kind
	v.Val = val
	v.Red = RedState{}
	v.Unlock()
	return v, nil
}

func (s *Store) popFreeLocked(part int) (VertexID, bool) {
	for i := 0; i < s.parts; i++ {
		p := (part + i) % s.parts
		if n := len(s.free[p]); n > 0 {
			id := s.free[p][n-1]
			s.free[p] = s.free[p][:n-1]
			s.freeN--
			return id, true
		}
	}
	return NilVertex, false
}

// Release returns a vertex to F (the restructuring phase's "adding elements
// of GAR to F"). The caller must guarantee the vertex is unreachable; its
// edges and reduction state are cleared.
func (s *Store) Release(v *Vertex) {
	v.Lock()
	v.ResetFree()
	part := v.Part
	v.Unlock()

	s.mu.Lock()
	s.free[part] = append(s.free[part], v.ID)
	s.freeN++
	s.mu.Unlock()
}

// IsFree reports whether id is currently in F.
func (s *Store) IsFree(id VertexID) bool {
	v := s.Vertex(id)
	if v == nil {
		return false
	}
	v.Lock()
	defer v.Unlock()
	return v.Kind == KindFree
}

// ForEach calls fn for every vertex ID in the arena. It snapshots the
// arena length first; vertices allocated during iteration may be missed,
// which is the semantics restructuring wants (new vertices come from F and
// are never garbage in the current cycle by reduction axiom 1).
func (s *Store) ForEach(fn func(*Vertex)) {
	n := s.n.Load()
	segs := *s.segs.Load()
	for i := int64(1); i <= n; i++ {
		v := segs[int(i)>>segBits][int(i)&segMask]
		if v != nil {
			fn(v)
		}
	}
}

// ForEachInPartition calls fn for every vertex owned by part.
func (s *Store) ForEachInPartition(part int, fn func(*Vertex)) {
	s.ForEach(func(v *Vertex) {
		if v.Part == part {
			fn(v)
		}
	})
}

// InternString interns a string and returns its table index for use as a
// KindStr vertex value.
func (s *Store) InternString(str string) int64 {
	s.strMu.Lock()
	defer s.strMu.Unlock()
	if i, ok := s.strIdx[str]; ok {
		return i
	}
	i := int64(len(s.strings))
	s.strings = append(s.strings, str)
	s.strIdx[str] = i
	return i
}

// StringAt returns the interned string at index i ("" if out of range).
func (s *Store) StringAt(i int64) string {
	s.strMu.Lock()
	defer s.strMu.Unlock()
	if i < 0 || int(i) >= len(s.strings) {
		return ""
	}
	return s.strings[int(i)]
}

// PartitionOf returns the partition that owns id (0 for invalid IDs).
func (s *Store) PartitionOf(id VertexID) int {
	v := s.Vertex(id)
	if v == nil {
		return 0
	}
	return v.Part
}

// Snapshot returns a consistent copy of the graph's connectivity for
// offline analysis. The world should be quiescent (or deterministically
// paused) when it is taken; each vertex is copied under its own lock.
func (s *Store) Snapshot() *Snapshot {
	n := int(s.n.Load())
	snap := &Snapshot{
		Verts: make([]SnapVertex, n+1),
		Parts: s.parts,
	}
	s.ForEach(func(v *Vertex) {
		v.Lock()
		sv := SnapVertex{
			ID:   v.ID,
			Part: v.Part,
			Kind: v.Kind,
			Val:  v.Val,
		}
		sv.Args = append(sv.Args, v.Args...)
		sv.ReqKinds = append(sv.ReqKinds, v.ReqKinds...)
		sv.Requested = append(sv.Requested, v.Requested...)
		v.Unlock()
		snap.Verts[sv.ID] = sv
	})
	return snap
}

// SnapVertex is an immutable copy of a vertex's connectivity.
type SnapVertex struct {
	ID        VertexID
	Part      int
	Kind      Kind
	Val       int64
	Args      []VertexID
	ReqKinds  []ReqKind
	Requested []Requester
}

// Snapshot is an immutable copy of the whole graph, used by the
// stop-the-world reachability oracle in internal/analysis.
type Snapshot struct {
	Verts []SnapVertex
	Parts int
}

// Vertex returns the snapshot of id, or nil.
func (s *Snapshot) Vertex(id VertexID) *SnapVertex {
	if id == NilVertex || int(id) >= len(s.Verts) {
		return nil
	}
	sv := &s.Verts[id]
	if sv.ID == NilVertex {
		return nil
	}
	return sv
}

// Len returns the number of vertices in the snapshot (excluding slot 0).
func (s *Snapshot) Len() int { return len(s.Verts) - 1 }
