package graph

// Builder constructs combinator graphs for the reduction engine: apply
// spines, literals, combinator and primitive leaves. It is used by the
// language compiler and by tests; construction happens before (or outside)
// marking, so edges are wired directly with ReqNone.
type Builder struct {
	store *Store
	part  int
	err   error
}

// NewBuilder returns a builder allocating on the given partition (vertices
// rotate across partitions when part is negative).
func NewBuilder(store *Store, part int) *Builder {
	return &Builder{store: store, part: part}
}

// Err returns the first allocation error encountered (nil if none).
func (b *Builder) Err() error { return b.err }

func (b *Builder) alloc(kind Kind, val int64) *Vertex {
	part := b.part
	if part < 0 {
		part = int(val) % b.store.Partitions()
		if part < 0 {
			part = 0
		}
	}
	v, err := b.store.Alloc(part, kind, val)
	if err != nil {
		if b.err == nil {
			b.err = err
		}
		// Return a throwaway unregistered vertex so callers can proceed;
		// Err() surfaces the failure.
		return &Vertex{Kind: kind, Val: val}
	}
	return v
}

// Int builds an integer literal vertex.
func (b *Builder) Int(n int64) *Vertex { return b.alloc(KindInt, n) }

// Bool builds a boolean literal vertex.
func (b *Builder) Bool(v bool) *Vertex {
	var n int64
	if v {
		n = 1
	}
	return b.alloc(KindBool, n)
}

// Str builds an interned string literal vertex.
func (b *Builder) Str(s string) *Vertex {
	return b.alloc(KindStr, b.store.InternString(s))
}

// Nil builds the empty-list vertex.
func (b *Builder) Nil() *Vertex { return b.alloc(KindNil, 0) }

// Comb builds a combinator leaf.
func (b *Builder) Comb(c Comb) *Vertex { return b.alloc(KindComb, int64(c)) }

// Prim builds a primitive-operator leaf.
func (b *Builder) Prim(p Prim) *Vertex { return b.alloc(KindPrim, int64(p)) }

// Super builds a compiled-supercombinator leaf whose Val indexes the
// machine's gm.Program table.
func (b *Builder) Super(idx int) *Vertex { return b.alloc(KindSuper, int64(idx)) }

// Hole builds a placeholder vertex (letrec knots).
func (b *Builder) Hole() *Vertex { return b.alloc(KindHole, 0) }

// App builds an application vertex fun·arg.
func (b *Builder) App(fun, arg *Vertex) *Vertex {
	v := b.alloc(KindApply, 0)
	v.Lock()
	v.AddArg(fun.ID, ReqNone)
	v.AddArg(arg.ID, ReqNone)
	v.Unlock()
	return v
}

// AppN left-folds applications: AppN(f, a, b, c) = ((f·a)·b)·c.
func (b *Builder) AppN(fun *Vertex, args ...*Vertex) *Vertex {
	v := fun
	for _, a := range args {
		v = b.App(v, a)
	}
	return v
}

// PrimApp builds a saturated (flattened) primitive application.
func (b *Builder) PrimApp(p Prim, args ...*Vertex) *Vertex {
	v := b.alloc(KindPrimApp, int64(p))
	v.Lock()
	for _, a := range args {
		v.AddArg(a.ID, ReqNone)
	}
	v.Unlock()
	return v
}

// Cons builds a pair cell (already in WHNF).
func (b *Builder) Cons(h, t *Vertex) *Vertex {
	v := b.alloc(KindCons, 0)
	v.Lock()
	v.AddArg(h.ID, ReqNone)
	v.AddArg(t.ID, ReqNone)
	v.Unlock()
	return v
}

// Ind builds an indirection to target.
func (b *Builder) Ind(target *Vertex) *Vertex {
	v := b.alloc(KindInd, 0)
	v.Lock()
	v.AddArg(target.ID, ReqNone)
	v.Unlock()
	return v
}

// Knot back-patches a Hole vertex to become an indirection to target,
// closing a letrec cycle.
func (b *Builder) Knot(hole, target *Vertex) {
	hole.Lock()
	hole.Kind = KindInd
	hole.Args = append(hole.Args[:0], target.ID)
	hole.ReqKinds = append(hole.ReqKinds[:0], ReqNone)
	hole.Unlock()
}

// List builds a cons-list of the given elements.
func (b *Builder) List(elems ...*Vertex) *Vertex {
	v := b.Nil()
	for i := len(elems) - 1; i >= 0; i-- {
		v = b.Cons(elems[i], v)
	}
	return v
}
