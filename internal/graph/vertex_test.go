package graph

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindFree, "free"},
		{KindApply, "apply"},
		{KindComb, "comb"},
		{KindInt, "int"},
		{KindInd, "ind"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestReqKindPriority(t *testing.T) {
	if got := ReqVital.Priority(); got != PriorVital {
		t.Errorf("vital priority = %d, want %d", got, PriorVital)
	}
	if got := ReqEager.Priority(); got != PriorEager {
		t.Errorf("eager priority = %d, want %d", got, PriorEager)
	}
	if got := ReqNone.Priority(); got != PriorReserve {
		t.Errorf("none priority = %d, want %d", got, PriorReserve)
	}
	// Priority order must match the paper's 3 > 2 > 1.
	if !(ReqVital.Priority() > ReqEager.Priority() && ReqEager.Priority() > ReqNone.Priority()) {
		t.Error("priority ordering violated")
	}
}

func TestMarkCtxEpochs(t *testing.T) {
	var c MarkCtx
	if got := c.StateAt(1); got != Unmarked {
		t.Fatalf("fresh ctx at epoch 1 = %v, want unmarked", got)
	}
	c.Touch(1, 7, PriorVital)
	if got := c.StateAt(1); got != Transient {
		t.Fatalf("after touch = %v, want transient", got)
	}
	if got := c.PriorAt(1); got != PriorVital {
		t.Fatalf("prior = %d, want %d", got, PriorVital)
	}
	c.State = Marked
	if got := c.StateAt(1); got != Marked {
		t.Fatalf("state = %v, want marked", got)
	}
	// Advancing the epoch implicitly unmarks.
	if got := c.StateAt(2); got != Unmarked {
		t.Fatalf("stale epoch state = %v, want unmarked", got)
	}
	if got := c.PriorAt(2); got != PriorNone {
		t.Fatalf("stale epoch prior = %d, want none", got)
	}
	// Touching at the new epoch resets mt-cnt.
	c.MtCnt = 5
	c.Touch(2, 9, PriorEager)
	if c.MtCnt != 0 {
		t.Fatalf("mt-cnt after new-epoch touch = %d, want 0", c.MtCnt)
	}
	if c.MtPar != 9 || c.Prior != PriorEager {
		t.Fatalf("ctx after touch = %+v", c)
	}
	// Touching within the same epoch (re-marking at higher priority)
	// preserves the accumulated count.
	c.MtCnt = 3
	c.Touch(2, 11, PriorVital)
	if c.MtCnt != 3 {
		t.Fatalf("mt-cnt after same-epoch touch = %d, want 3", c.MtCnt)
	}
}

func TestVertexArgEdgeOps(t *testing.T) {
	v := &Vertex{ID: 1, Kind: KindApply}
	v.AddArg(2, ReqNone)
	v.AddArg(3, ReqVital)
	v.AddArg(4, ReqEager)

	if !v.HasArg(3) || v.HasArg(9) {
		t.Fatal("HasArg wrong")
	}
	if got := v.ArgIndex(4); got != 2 {
		t.Fatalf("ArgIndex(4) = %d, want 2", got)
	}
	if got := v.ReqKindOf(3); got != ReqVital {
		t.Fatalf("ReqKindOf(3) = %v, want vital", got)
	}
	if got := v.ReqKindOf(9); got != ReqNone {
		t.Fatalf("ReqKindOf(missing) = %v, want none", got)
	}

	if !v.SetReqKind(2, ReqEager) {
		t.Fatal("SetReqKind on present edge failed")
	}
	if v.SetReqKind(9, ReqVital) {
		t.Fatal("SetReqKind on absent edge succeeded")
	}
	if got := v.ReqKindOf(2); got != ReqEager {
		t.Fatalf("ReqKindOf(2) = %v, want eager", got)
	}

	rk, ok := v.RemoveArg(3)
	if !ok || rk != ReqVital {
		t.Fatalf("RemoveArg(3) = (%v, %v)", rk, ok)
	}
	// Order of remaining args preserved.
	if len(v.Args) != 2 || v.Args[0] != 2 || v.Args[1] != 4 {
		t.Fatalf("args after remove = %v", v.Args)
	}
	if len(v.ReqKinds) != 2 || v.ReqKinds[0] != ReqEager || v.ReqKinds[1] != ReqEager {
		t.Fatalf("reqkinds after remove = %v", v.ReqKinds)
	}
	if _, ok := v.RemoveArg(3); ok {
		t.Fatal("RemoveArg of absent edge succeeded")
	}
}

func TestVertexDuplicateArgs(t *testing.T) {
	// x = x + x style sharing: duplicate children must be representable and
	// RemoveArg must delete exactly one occurrence.
	v := &Vertex{ID: 1, Kind: KindApply}
	v.AddArg(5, ReqVital)
	v.AddArg(5, ReqEager)
	if got := v.ArgIndex(5); got != 0 {
		t.Fatalf("ArgIndex = %d, want first occurrence 0", got)
	}
	rk, ok := v.RemoveArg(5)
	if !ok || rk != ReqVital {
		t.Fatalf("RemoveArg = (%v,%v), want (vital,true)", rk, ok)
	}
	if len(v.Args) != 1 || v.ReqKinds[0] != ReqEager {
		t.Fatalf("remaining = %v/%v", v.Args, v.ReqKinds)
	}
}

func TestRequesterOps(t *testing.T) {
	v := &Vertex{ID: 1}
	v.AddRequester(10, ReqVital)
	v.AddRequester(11, ReqEager)
	if !v.HasRequester(10) || v.HasRequester(12) {
		t.Fatal("HasRequester wrong")
	}
	if !v.RemoveRequester(10) {
		t.Fatal("RemoveRequester(10) failed")
	}
	if v.RemoveRequester(10) {
		t.Fatal("double RemoveRequester succeeded")
	}
	if len(v.Requested) != 1 || v.Requested[0].Src != 11 {
		t.Fatalf("requested = %v", v.Requested)
	}
}

func TestTaskChildren(t *testing.T) {
	// mark3 traces through requested(v) ∪ (args(v) − req-args(v)).
	v := &Vertex{ID: 1}
	v.AddArg(2, ReqVital) // requested: excluded
	v.AddArg(3, ReqNone)  // not requested: included
	v.AddArg(4, ReqEager) // requested: excluded
	v.AddRequester(7, ReqVital)
	v.AddRequester(8, ReqEager)

	got := v.TaskChildren(nil)
	want := map[VertexID]bool{7: true, 8: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("TaskChildren = %v, want keys %v", got, want)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected child %d in %v", id, got)
		}
	}
}

func TestResetFree(t *testing.T) {
	v := &Vertex{ID: 1, Kind: KindApply, Val: 42}
	v.AddArg(2, ReqVital)
	v.AddRequester(3, ReqEager)
	v.Red.Pending = 2
	v.RCtx.Touch(5, 9, PriorVital)

	v.ResetFree()
	if v.Kind != KindFree || v.Val != 0 || len(v.Args) != 0 || len(v.Requested) != 0 {
		t.Fatalf("after ResetFree: %+v", v)
	}
	if v.Red.Pending != 0 {
		t.Fatal("reduction state not cleared")
	}
	// Marking epochs are preserved: a stale epoch is already "unmarked".
	if v.RCtx.Epoch != 5 {
		t.Fatal("epoch should be preserved")
	}
}

func TestMarkCtxTouchQuick(t *testing.T) {
	// Property: after Touch(e, p, pr), state at e is Transient with the
	// given parent and priority, and state at e+1 is Unmarked.
	f := func(epoch uint64, par uint32, prior uint8) bool {
		prior = prior%3 + 1
		var c MarkCtx
		c.Touch(epoch, VertexID(par), prior)
		return c.StateAt(epoch) == Transient &&
			c.MtPar == VertexID(par) &&
			c.PriorAt(epoch) == prior &&
			c.StateAt(epoch+1) == Unmarked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
