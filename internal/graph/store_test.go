package graph

import (
	"errors"
	"sync"
	"testing"
)

func TestStoreAllocRelease(t *testing.T) {
	s := NewStore(Config{Partitions: 2, Capacity: 4})
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.FreeCount(); got != 4 {
		t.Fatalf("FreeCount = %d, want 4", got)
	}

	v, err := s.Alloc(1, KindInt, 42)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindInt || v.Val != 42 {
		t.Fatalf("allocated vertex = %+v", v)
	}
	if got := s.FreeCount(); got != 3 {
		t.Fatalf("FreeCount after alloc = %d, want 3", got)
	}
	if s.IsFree(v.ID) {
		t.Fatal("allocated vertex reported free")
	}

	s.Release(v)
	if got := s.FreeCount(); got != 4 {
		t.Fatalf("FreeCount after release = %d, want 4", got)
	}
	if !s.IsFree(v.ID) {
		t.Fatal("released vertex not reported free")
	}
}

func TestStoreAllocPartitionAffinity(t *testing.T) {
	s := NewStore(Config{Partitions: 4, Capacity: 8})
	v, err := s.Alloc(2, KindHole, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Part != 2 {
		t.Fatalf("Part = %d, want 2", v.Part)
	}
}

func TestStoreAllocSteals(t *testing.T) {
	// Partition 0 has all the free vertices; allocating on partition 1 must
	// steal rather than fail.
	s := NewStore(Config{Partitions: 2, Capacity: 0, FixedSize: false})
	// Grow only partition 0's free list by allocating+releasing there.
	v0, err := s.Alloc(0, KindHole, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(v0)

	s2 := NewStore(Config{Partitions: 2, Capacity: 1, FixedSize: true})
	// capacity 1 landed on partition 0 (round robin); alloc on 1 steals it.
	v, err := s2.Alloc(1, KindInt, 1)
	if err != nil {
		t.Fatalf("steal failed: %v", err)
	}
	if v.Part != 0 {
		t.Fatalf("stolen vertex partition = %d, want 0", v.Part)
	}
}

func TestStoreFixedSizeExhaustion(t *testing.T) {
	s := NewStore(Config{Partitions: 1, Capacity: 2, FixedSize: true})
	if _, err := s.Alloc(0, KindInt, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(0, KindInt, 2); err != nil {
		t.Fatal(err)
	}
	_, err := s.Alloc(0, KindInt, 3)
	if !errors.Is(err, ErrNoFreeVertices) {
		t.Fatalf("err = %v, want ErrNoFreeVertices", err)
	}
}

func TestStoreGrowsWhenNotFixed(t *testing.T) {
	s := NewStore(Config{Partitions: 1, Capacity: 1})
	for i := 0; i < 10; i++ {
		if _, err := s.Alloc(0, KindInt, int64(i)); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
}

func TestStoreVertexLookup(t *testing.T) {
	s := NewStore(Config{Partitions: 1, Capacity: 2})
	if s.Vertex(NilVertex) != nil {
		t.Fatal("NilVertex lookup should be nil")
	}
	if s.Vertex(999) != nil {
		t.Fatal("out-of-range lookup should be nil")
	}
	v, _ := s.Alloc(0, KindInt, 5)
	if got := s.Vertex(v.ID); got != v {
		t.Fatal("Vertex did not return stable pointer")
	}
	if got := s.PartitionOf(v.ID); got != 0 {
		t.Fatalf("PartitionOf = %d", got)
	}
}

func TestStoreConcurrentAllocRelease(t *testing.T) {
	s := NewStore(Config{Partitions: 4, Capacity: 64})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v, err := s.Alloc(part, KindInt, int64(i))
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				s.Release(v)
			}
		}(p)
	}
	wg.Wait()
	if got := s.FreeCount(); got != s.Len() {
		t.Fatalf("FreeCount = %d, Len = %d; all should be free", got, s.Len())
	}
}

func TestStoreAllocPanicsOnBadPartition(t *testing.T) {
	s := NewStore(Config{Partitions: 2, Capacity: 2})
	for _, part := range []int{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Alloc(%d) did not panic", part)
				}
			}()
			_, _ = s.Alloc(part, KindInt, 0)
		}()
	}
}

// TestStoreConcurrentStealConservation hammers the steal path: every free
// vertex starts on partition 0, while all allocators run on other
// partitions, so every allocation must cross shards. Checks: no id is
// handed out twice, FixedSize never fails while F is non-empty, and |F| is
// conserved exactly once the dust settles.
func TestStoreConcurrentStealConservation(t *testing.T) {
	const parts = 4
	const perG = 300
	// Capacity lands round-robin, so build a store where partition 0 owns
	// everything: allocate all, then release — releases go to the owning
	// partition's shard.
	s := NewStore(Config{Partitions: parts, Capacity: 0})
	var seed []*Vertex
	for i := 0; i < parts*perG; i++ {
		v, err := s.Alloc(0, KindInt, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		seed = append(seed, v)
	}
	s.ReleaseBatch(seed)
	if got := s.FreeCount(); got != parts*perG {
		t.Fatalf("seeded FreeCount = %d, want %d", got, parts*perG)
	}

	var mu sync.Mutex
	held := make(map[VertexID]int)
	var wg sync.WaitGroup
	for p := 1; p < parts; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v, err := s.Alloc(part, KindInt, int64(i))
				if err != nil {
					t.Errorf("alloc on part %d: %v", part, err)
					return
				}
				mu.Lock()
				held[v.ID]++
				mu.Unlock()
				if i%3 == 0 {
					s.Release(v)
					mu.Lock()
					held[v.ID]--
					mu.Unlock()
				}
			}
		}(p)
	}
	wg.Wait()
	live := 0
	for id, n := range held {
		if n < 0 || n > 1 {
			t.Fatalf("vertex %d held %d times (double allocation)", id, n)
		}
		live += n
	}
	if got := s.FreeCount(); got != s.Len()-live {
		t.Fatalf("FreeCount = %d, want Len-live = %d-%d", got, s.Len(), live)
	}
}

// TestStoreFixedSizeExhaustionExact asserts the FixedSize contract:
// ErrNoFreeVertices exactly when freeN == 0, including when the last free
// vertices live on a different partition than the allocator.
func TestStoreFixedSizeExhaustionExact(t *testing.T) {
	s := NewStore(Config{Partitions: 3, Capacity: 6, FixedSize: true})
	var got []*Vertex
	// Drain entirely from partition 2: 2 local, 4 stolen.
	for i := 0; i < 6; i++ {
		if want := 6 - i; s.FreeCount() != want {
			t.Fatalf("FreeCount before alloc %d = %d, want %d", i, s.FreeCount(), want)
		}
		v, err := s.Alloc(2, KindInt, int64(i))
		if err != nil {
			t.Fatalf("alloc %d with freeN=%d: %v", i, s.FreeCount(), err)
		}
		got = append(got, v)
	}
	if _, err := s.Alloc(0, KindInt, 9); !errors.Is(err, ErrNoFreeVertices) {
		t.Fatalf("err = %v, want ErrNoFreeVertices at freeN==0", err)
	}
	// One release on any partition makes exactly one Alloc succeed again.
	s.Release(got[3])
	if _, err := s.Alloc(1, KindInt, 9); err != nil {
		t.Fatalf("alloc after release: %v", err)
	}
	if _, err := s.Alloc(1, KindInt, 9); !errors.Is(err, ErrNoFreeVertices) {
		t.Fatalf("err = %v, want ErrNoFreeVertices", err)
	}
}

// TestStoreConcurrentFixedChurn runs FixedSize alloc/release churn across
// partitions under the race detector: allocations may transiently fail only
// while other goroutines hold vertices, and the free count must balance.
func TestStoreConcurrentFixedChurn(t *testing.T) {
	const parts = 4
	s := NewStore(Config{Partitions: parts, Capacity: parts * 2, FixedSize: true})
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v, err := s.Alloc(part, KindInt, int64(i))
				if err != nil {
					// Legal only because siblings hold vertices; F must
					// really have been exhaustible.
					continue
				}
				s.Release(v)
			}
		}(p)
	}
	wg.Wait()
	if got := s.FreeCount(); got != s.Len() {
		t.Fatalf("FreeCount = %d, want %d (all released)", got, s.Len())
	}
	if got := s.Len(); got != parts*2 {
		t.Fatalf("Len = %d, want %d (FixedSize must not grow)", got, parts*2)
	}
}

func TestReleaseBatch(t *testing.T) {
	s := NewStore(Config{Partitions: 3, Capacity: 9})
	// Allocate everything, interleaving partitions.
	var vs []*Vertex
	for i := 0; i < 9; i++ {
		v, err := s.Alloc(i%3, KindInt, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	if got := s.FreeCount(); got != 0 {
		t.Fatalf("FreeCount = %d, want 0", got)
	}
	// Release a non-contiguous mix (partitions interleaved: exercises the
	// one-pass-per-partition logic against double releases).
	batch := []*Vertex{vs[0], vs[1], vs[3], vs[2], vs[6], vs[4]}
	s.ReleaseBatch(batch)
	if got := s.FreeCount(); got != len(batch) {
		t.Fatalf("FreeCount = %d, want %d", got, len(batch))
	}
	seen := make(map[VertexID]bool)
	for i := 0; i < len(batch); i++ {
		v, err := s.Alloc(i%3, KindHole, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[v.ID] {
			t.Fatalf("vertex %d allocated twice: double release", v.ID)
		}
		seen[v.ID] = true
	}
	if got := s.FreeCount(); got != 0 {
		t.Fatalf("FreeCount = %d, want 0 after re-allocating batch", got)
	}
	s.ReleaseBatch(nil) // no-op
}

func TestInternString(t *testing.T) {
	s := NewStore(Config{Partitions: 1, Capacity: 1})
	a := s.InternString("hello")
	b := s.InternString("world")
	if a == b {
		t.Fatal("distinct strings interned to same index")
	}
	if got := s.InternString("hello"); got != a {
		t.Fatal("re-interning changed index")
	}
	if got := s.StringAt(a); got != "hello" {
		t.Fatalf("StringAt = %q", got)
	}
	if got := s.StringAt(99); got != "" {
		t.Fatalf("StringAt(out of range) = %q", got)
	}
}

func TestSnapshot(t *testing.T) {
	s := NewStore(Config{Partitions: 2, Capacity: 4})
	a, _ := s.Alloc(0, KindApply, 0)
	b, _ := s.Alloc(1, KindInt, 7)
	a.Lock()
	a.AddArg(b.ID, ReqVital)
	a.AddRequester(b.ID, ReqEager)
	a.Unlock()

	snap := s.Snapshot()
	sa := snap.Vertex(a.ID)
	if sa == nil {
		t.Fatal("snapshot missing vertex")
	}
	if sa.Kind != KindApply || len(sa.Args) != 1 || sa.Args[0] != b.ID {
		t.Fatalf("snapshot vertex = %+v", sa)
	}
	if len(sa.Requested) != 1 || sa.Requested[0].Src != b.ID {
		t.Fatalf("snapshot requested = %v", sa.Requested)
	}
	if snap.Vertex(NilVertex) != nil {
		t.Fatal("snapshot of NilVertex should be nil")
	}
	if snap.Len() != s.Len() {
		t.Fatalf("snapshot len = %d, store len = %d", snap.Len(), s.Len())
	}

	// Snapshot must be a deep copy: mutating the live graph must not change it.
	a.Lock()
	a.RemoveArg(b.ID)
	a.Unlock()
	if len(snap.Vertex(a.ID).Args) != 1 {
		t.Fatal("snapshot aliased live edge list")
	}
}

func TestForEachInPartition(t *testing.T) {
	s := NewStore(Config{Partitions: 3, Capacity: 9})
	count := 0
	s.ForEachInPartition(1, func(v *Vertex) {
		if v.Part != 1 {
			t.Errorf("vertex %d in wrong partition %d", v.ID, v.Part)
		}
		count++
	})
	if count != 3 {
		t.Fatalf("partition 1 has %d vertices, want 3", count)
	}
}

func TestCombPrimMetadata(t *testing.T) {
	if CombS.Arity() != 3 || CombK.Arity() != 2 || CombI.Arity() != 1 || CombSP.Arity() != 4 {
		t.Fatal("combinator arity wrong")
	}
	if CombS.String() != "S" || CombSP.String() != "S'" {
		t.Fatal("combinator names wrong")
	}
	if PrimIf.Arity() != 3 || PrimAdd.Arity() != 2 || PrimNot.Arity() != 1 {
		t.Fatal("prim arity wrong")
	}
	if got := PrimIf.StrictArgs(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("if strict args = %v", got)
	}
	if got := PrimAdd.StrictArgs(); len(got) != 2 {
		t.Fatalf("add strict args = %v", got)
	}
	if got := PrimCons.StrictArgs(); got != nil {
		t.Fatalf("cons strict args = %v, want nil", got)
	}
	if PrimIf.String() != "if" || PrimAdd.String() != "+" {
		t.Fatal("prim names wrong")
	}
}
