// Package graph implements the distributed computation graph of Hudak's
// PODC'83 model: vertices labeled with operators and values, the edge sets
// args(v), req-args_v(v), req-args_e(v) and requested(v), a per-partition
// free list, and the two per-vertex marking contexts (one for the M_R
// process marking from the root, one for the M_T process marking from
// tasks).
//
// The package provides only the raw, single-vertex state and the low-level
// connect/disconnect operations. The cooperating mutator primitives of the
// paper's Figure 4-2 (delete-reference, add-reference, expand-node), which
// must preserve the marking invariants, live in internal/core.
package graph

import (
	"fmt"
	"sync"
)

// VertexID identifies a vertex in a Store. The zero value is NilVertex and
// never names a real vertex.
type VertexID uint32

// NilVertex is the absent vertex. It is used for "no parent" in marking
// trees and for unset references.
const NilVertex VertexID = 0

// Kind labels a vertex with its operator or value class, mirroring the
// paper's "vertices are labeled with primitive operators and values".
type Kind uint8

// Vertex kinds. KindFree marks members of the free set F.
const (
	KindFree    Kind = iota + 1 // member of the free list F
	KindApply                   // application node: args[0] = function, args[1] = argument
	KindComb                    // combinator leaf (S, K, I, B, C, Y, ...); Val holds the Comb code
	KindInt                     // integer literal; Val holds the value
	KindBool                    // boolean literal; Val is 0 or 1
	KindStr                     // interned string literal; Val indexes the store's string table
	KindPrim                    // strict primitive operator leaf (+, -, if, cons, ...); Val holds the Prim code
	KindPrimApp                 // saturated (flattened) primitive application; Val holds the Prim code, Args the operands
	KindCons                    // pair cell: args[0] = head, args[1] = tail
	KindNil                     // empty list
	KindInd                     // indirection: args[0] is the real value
	KindHole                    // placeholder vertex (letrec knots, roots under construction)
	KindSuper                   // compiled supercombinator leaf; Val indexes the gm.Program table
)

var kindNames = [...]string{
	KindFree:    "free",
	KindApply:   "apply",
	KindComb:    "comb",
	KindInt:     "int",
	KindBool:    "bool",
	KindStr:     "str",
	KindPrim:    "prim",
	KindPrimApp: "primapp",
	KindCons:    "cons",
	KindNil:     "nil",
	KindInd:     "ind",
	KindHole:    "hole",
	KindSuper:   "super",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ReqKind records, per outgoing args edge, how (and whether) the child's
// value has been requested. It realizes the paper's partition of args(x)
// into req-args_v(x), req-args_e(x) and the remaining req-args_r(x).
type ReqKind uint8

// Request kinds, ordered so that numeric comparison matches the paper's
// priority order (vital=3 > eager=2 > reserve=1). ReqNone means the edge is
// a plain data dependency whose value has not been demanded.
const (
	ReqNone  ReqKind = iota // in args(x) − req-args(x): the "reserve" remainder
	ReqEager                // in req-args_e(x)
	ReqVital                // in req-args_v(x)
)

// Priority returns the paper's integer priority for values requested through
// an edge of this kind: vital=3, eager=2, otherwise 1. This is the
// request-type(c,v) function of Figure 5-1.
func (rk ReqKind) Priority() uint8 {
	switch rk {
	case ReqVital:
		return PriorVital
	case ReqEager:
		return PriorEager
	default:
		return PriorReserve
	}
}

// String returns a short name for the request kind.
func (rk ReqKind) String() string {
	switch rk {
	case ReqEager:
		return "eager"
	case ReqVital:
		return "vital"
	default:
		return "none"
	}
}

// Marking priorities used by the M_R process (Figure 5-1).
const (
	PriorNone    uint8 = 0
	PriorReserve uint8 = 1
	PriorEager   uint8 = 2
	PriorVital   uint8 = 3
)

// MarkState is the per-context marking state of a vertex: the paper's
// unmarked / transient / marked triple (analogous to, but as §4.1 notes
// subtly different from, Dijkstra's white/gray/black).
type MarkState uint8

// Marking states. A vertex whose context epoch is stale is Unmarked
// regardless of the stored state.
const (
	Unmarked MarkState = iota
	Transient
	Marked
)

// String returns the lower-case name of the marking state.
func (s MarkState) String() string {
	switch s {
	case Transient:
		return "transient"
	case Marked:
		return "marked"
	default:
		return "unmarked"
	}
}

// MarkCtx is one marking context: the per-vertex fields the marking
// algorithm needs (mt-cnt, mt-par, the marking bits, and for M_R the
// priority). Each vertex carries two independent contexts, one for M_R and
// one for M_T, as §5.2 requires. The epoch implements O(1) global unmarking
// between the endless mark/restructure cycles: state is meaningful only when
// Epoch equals the collector's current epoch for that context.
type MarkCtx struct {
	Epoch uint64
	MtCnt int32
	MtPar VertexID
	State MarkState
	Prior uint8
}

// StateAt returns the effective marking state at the given epoch.
func (c *MarkCtx) StateAt(epoch uint64) MarkState {
	if c.Epoch != epoch {
		return Unmarked
	}
	return c.State
}

// PriorAt returns the effective priority at the given epoch (PriorNone when
// the context is stale or unmarked).
func (c *MarkCtx) PriorAt(epoch uint64) uint8 {
	if c.Epoch != epoch || c.State == Unmarked {
		return PriorNone
	}
	return c.Prior
}

// Touch moves the context to Transient at the given epoch with the given
// marking-tree parent and priority, resetting mt-cnt if the epoch is new.
// It is the paper's touch(v) plus the bookkeeping of modify(v,par,prior).
func (c *MarkCtx) Touch(epoch uint64, par VertexID, prior uint8) {
	if c.Epoch != epoch {
		c.Epoch = epoch
		c.MtCnt = 0
	}
	c.State = Transient
	c.MtPar = par
	c.Prior = prior
}

// Ctx selects a marking context on a vertex.
type Ctx uint8

// The two marking contexts of §5: CtxR for process M_R (marking from the
// root), CtxT for process M_T (marking from tasks).
const (
	CtxR Ctx = iota
	CtxT
)

// String names the context.
func (c Ctx) String() string {
	if c == CtxT {
		return "T"
	}
	return "R"
}

// Requester is one element of requested(v): a vertex awaiting v's value,
// together with the kind of the request (needed to route the eventual reply
// and to restore the requester's bookkeeping).
type Requester struct {
	Src  VertexID
	Kind ReqKind
}

// Vertex is a computation-graph node. All fields except ID and Part are
// guarded by mu; tasks execute atomically with respect to the vertices they
// manipulate by holding the vertex locks (see internal/core for the lock
// ordering discipline).
type Vertex struct {
	mu sync.Mutex

	// ID and Part are immutable after allocation.
	ID   VertexID
	Part int // owning partition / processing element

	Kind Kind
	Val  int64 // literal value, combinator code, or primitive code

	// Args is the ordered args(v) edge list; ReqKinds is parallel to it and
	// classifies each edge as vital / eager / not-requested.
	Args     []VertexID
	ReqKinds []ReqKind

	// Requested is the paper's requested(v): vertices that asked for v's
	// value and have not been replied to.
	Requested []Requester

	// RCtx and TCtx are the marking contexts for M_R and M_T.
	RCtx MarkCtx
	TCtx MarkCtx

	// Red holds the reduction engine's per-vertex bookkeeping. It is
	// opaque to the marking machinery.
	Red RedState
}

// RedState is the reduction engine's per-vertex scratch state. It lives on
// the vertex because in the paper's model a vertex carries the local status
// of its own evaluation.
type RedState struct {
	// Evaluating is true while a reduction task is driving v toward WHNF,
	// so duplicate demands only register as requesters.
	Evaluating bool
	// Pending counts argument values v is waiting for.
	Pending int
	// WHNF records that v has been determined to be in weak head normal
	// form (set for under-applied applications and completed
	// indirections, whose WHNF-ness is not derivable from the kind alone).
	WHNF bool
	// SpineHint caches the vertex that demanded v (for diagnostics).
	SpineHint VertexID
	// AllocEpoch records the M_R epoch at which the vertex left the free
	// list; the restructuring sweep skips vertices allocated during the
	// cycle being swept (reduction axiom 1: R expands only from F).
	// Vertices claimed through Store.AllocStamped carry FreshAllocEpoch
	// until a splice primitive stamps the real epoch at wiring time.
	AllocEpoch uint64
	// AllocEpochT records the M_T epoch at allocation time; the deadlock
	// detector only inspects vertices that predate the cycle's M_T run
	// (vertices allocated later are trivially T-unmarked without being
	// deadlocked).
	AllocEpochT uint64
	// Trace and TraceSpan carry the causal-lineage context of the traced
	// task currently driving this vertex (0 = untraced): tasks the engine
	// spawns from here inherit Trace and point at TraceSpan as their
	// causal parent. Like the rest of RedState the fields are opaque to
	// the marking machinery, and ResetFree zeroes them with the struct, so
	// a reclaimed-and-reallocated vertex can never leak a stale context.
	Trace     uint64
	TraceSpan uint32
}

// FreshAllocEpoch is the alloc-epoch sentinel carried by a vertex from the
// moment it leaves the free list until a splice primitive (Rewrite,
// ExpandNode) stamps the real epochs at wiring time. It compares greater
// than every real epoch, so reduction axiom 1 shields the vertex from the
// restructuring sweep during the whole allocation limbo: a concurrently
// scanning sweep would otherwise observe a non-free, unmarked vertex with a
// stale epoch and reclaim it before the mutator ever wires it in.
const FreshAllocEpoch = ^uint64(0)

// IsValueLocked reports whether the vertex already holds its ultimate
// value (weak head normal form). Such a vertex awaits nothing, so it can
// never be deadlocked — the paper's deadlock is a subgraph "in which task
// activity has ceased, yet the subgraph's value is being awaited". The
// caller must hold the vertex lock.
func (v *Vertex) IsValueLocked() bool {
	switch v.Kind {
	case KindInt, KindBool, KindStr, KindNil, KindCons, KindComb, KindPrim,
		KindSuper:
		return true
	case KindApply, KindPrimApp, KindInd:
		return v.Red.WHNF
	default:
		return false
	}
}

// Lock acquires the vertex lock. Callers that lock multiple vertices must
// do so in ascending ID order (see core.lockAll).
func (v *Vertex) Lock() { v.mu.Lock() }

// Unlock releases the vertex lock.
func (v *Vertex) Unlock() { v.mu.Unlock() }

// CtxOf returns the requested marking context. The caller must hold the
// vertex lock (or otherwise guarantee exclusion) to mutate it.
func (v *Vertex) CtxOf(c Ctx) *MarkCtx {
	if c == CtxT {
		return &v.TCtx
	}
	return &v.RCtx
}

// ArgIndex returns the first index of c in Args, or -1.
func (v *Vertex) ArgIndex(c VertexID) int {
	for i, a := range v.Args {
		if a == c {
			return i
		}
	}
	return -1
}

// HasArg reports whether c ∈ args(v).
func (v *Vertex) HasArg(c VertexID) bool { return v.ArgIndex(c) >= 0 }

// AddArg appends c to args(v) with the given request kind.
func (v *Vertex) AddArg(c VertexID, rk ReqKind) {
	v.Args = append(v.Args, c)
	v.ReqKinds = append(v.ReqKinds, rk)
}

// RemoveArg removes the first occurrence of c from args(v), returning the
// request kind it had and whether it was present. Order of remaining args is
// preserved (argument order is significant for apply nodes).
func (v *Vertex) RemoveArg(c VertexID) (ReqKind, bool) {
	i := v.ArgIndex(c)
	if i < 0 {
		return ReqNone, false
	}
	rk := v.ReqKinds[i]
	v.Args = append(v.Args[:i], v.Args[i+1:]...)
	v.ReqKinds = append(v.ReqKinds[:i], v.ReqKinds[i+1:]...)
	return rk, true
}

// SetReqKind reclassifies the edge v→c (first occurrence), reporting whether
// the edge exists.
func (v *Vertex) SetReqKind(c VertexID, rk ReqKind) bool {
	i := v.ArgIndex(c)
	if i < 0 {
		return false
	}
	v.ReqKinds[i] = rk
	return true
}

// ReqKindOf returns the request kind of edge v→c, or ReqNone if absent.
func (v *Vertex) ReqKindOf(c VertexID) ReqKind {
	i := v.ArgIndex(c)
	if i < 0 {
		return ReqNone
	}
	return v.ReqKinds[i]
}

// AddRequester records that src requested v's value.
func (v *Vertex) AddRequester(src VertexID, rk ReqKind) {
	v.Requested = append(v.Requested, Requester{Src: src, Kind: rk})
}

// RemoveRequester removes the first request by src, reporting whether one
// was present. This is the "dereference" half of §3.2: removing x from
// requested(y).
func (v *Vertex) RemoveRequester(src VertexID) bool {
	for i, r := range v.Requested {
		if r.Src == src {
			v.Requested = append(v.Requested[:i], v.Requested[i+1:]...)
			return true
		}
	}
	return false
}

// HasRequester reports whether src ∈ requested(v).
func (v *Vertex) HasRequester(src VertexID) bool {
	for _, r := range v.Requested {
		if r.Src == src {
			return true
		}
	}
	return false
}

// TaskChildren appends to dst the vertices M_T traces through from v:
// requested(v) ∪ (args(v) − req-args(v)), per Figure 5-3.
func (v *Vertex) TaskChildren(dst []VertexID) []VertexID {
	for _, r := range v.Requested {
		dst = append(dst, r.Src)
	}
	for i, a := range v.Args {
		if v.ReqKinds[i] == ReqNone {
			dst = append(dst, a)
		}
	}
	return dst
}

// ResetFree reinitializes the vertex as a member of F, clearing edges and
// reduction state but preserving marking context epochs (a stale epoch is
// equivalent to unmarked).
func (v *Vertex) ResetFree() {
	v.Kind = KindFree
	v.Val = 0
	v.Args = v.Args[:0]
	v.ReqKinds = v.ReqKinds[:0]
	v.Requested = v.Requested[:0]
	v.Red = RedState{}
}

// String renders a compact description for diagnostics.
func (v *Vertex) String() string {
	return fmt.Sprintf("v%d[%s part=%d val=%d args=%v]", v.ID, v.Kind, v.Part, v.Val, v.Args)
}
