package graph

import "testing"

func newBuildStore(t *testing.T, capacity int) *Store {
	t.Helper()
	return NewStore(Config{Partitions: 2, Capacity: capacity})
}

func TestBuilderLeaves(t *testing.T) {
	s := newBuildStore(t, 16)
	b := NewBuilder(s, 0)

	i := b.Int(42)
	if i.Kind != KindInt || i.Val != 42 {
		t.Fatalf("Int: %+v", i)
	}
	bt := b.Bool(true)
	bf := b.Bool(false)
	if bt.Val != 1 || bf.Val != 0 || bt.Kind != KindBool {
		t.Fatal("Bool wrong")
	}
	n := b.Nil()
	if n.Kind != KindNil {
		t.Fatal("Nil wrong")
	}
	c := b.Comb(CombS)
	if c.Kind != KindComb || Comb(c.Val) != CombS {
		t.Fatal("Comb wrong")
	}
	p := b.Prim(PrimAdd)
	if p.Kind != KindPrim || Prim(p.Val) != PrimAdd {
		t.Fatal("Prim wrong")
	}
	st := b.Str("hi")
	if st.Kind != KindStr || s.StringAt(st.Val) != "hi" {
		t.Fatal("Str wrong")
	}
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
}

func TestBuilderApp(t *testing.T) {
	s := newBuildStore(t, 16)
	b := NewBuilder(s, 0)
	f := b.Prim(PrimAdd)
	x := b.Int(1)
	y := b.Int(2)
	app := b.AppN(f, x, y)
	// ((+ 1) 2): outer apply's fun is the inner apply.
	if app.Kind != KindApply || len(app.Args) != 2 || app.Args[1] != y.ID {
		t.Fatalf("AppN: %+v", app)
	}
	inner := s.Vertex(app.Args[0])
	if inner.Kind != KindApply || inner.Args[0] != f.ID || inner.Args[1] != x.ID {
		t.Fatalf("inner: %+v", inner)
	}
}

func TestBuilderListAndCons(t *testing.T) {
	s := newBuildStore(t, 16)
	b := NewBuilder(s, 0)
	lst := b.List(b.Int(1), b.Int(2))
	if lst.Kind != KindCons {
		t.Fatalf("List head: %v", lst.Kind)
	}
	tail := s.Vertex(lst.Args[1])
	if tail.Kind != KindCons {
		t.Fatalf("List tail: %v", tail.Kind)
	}
	end := s.Vertex(tail.Args[1])
	if end.Kind != KindNil {
		t.Fatalf("List end: %v", end.Kind)
	}
	empty := b.List()
	if empty.Kind != KindNil {
		t.Fatal("empty list should be nil")
	}
}

func TestBuilderKnot(t *testing.T) {
	s := newBuildStore(t, 8)
	b := NewBuilder(s, 0)
	h := b.Hole()
	target := b.Int(9)
	b.Knot(h, target)
	if h.Kind != KindInd || len(h.Args) != 1 || h.Args[0] != target.ID {
		t.Fatalf("Knot: %+v", h)
	}
	ind := b.Ind(target)
	if ind.Kind != KindInd || ind.Args[0] != target.ID {
		t.Fatalf("Ind: %+v", ind)
	}
}

func TestBuilderExhaustion(t *testing.T) {
	s := NewStore(Config{Partitions: 1, Capacity: 1, FixedSize: true})
	b := NewBuilder(s, 0)
	b.Int(1)
	v := b.Int(2) // exhausted: throwaway vertex, error recorded
	if b.Err() == nil {
		t.Fatal("exhaustion not reported")
	}
	if v == nil {
		t.Fatal("builder must still return a usable placeholder")
	}
}

func TestBuilderRotatingPartition(t *testing.T) {
	s := newBuildStore(t, 8)
	b := NewBuilder(s, -1)
	v := b.Int(3)
	if v.Part != 1 { // val 3 % 2 partitions
		t.Fatalf("rotating partition = %d", v.Part)
	}
}

func TestIsValueLocked(t *testing.T) {
	tests := []struct {
		kind Kind
		whnf bool
		want bool
	}{
		{KindInt, false, true},
		{KindCons, false, true},
		{KindComb, false, true},
		{KindApply, false, false},
		{KindApply, true, true},
		{KindPrimApp, true, true},
		{KindInd, false, false},
		{KindInd, true, true},
		{KindHole, false, false},
		{KindFree, false, false},
	}
	for _, tt := range tests {
		v := &Vertex{Kind: tt.kind}
		v.Red.WHNF = tt.whnf
		v.Lock()
		got := v.IsValueLocked()
		v.Unlock()
		if got != tt.want {
			t.Errorf("IsValue(%v, whnf=%v) = %v, want %v", tt.kind, tt.whnf, got, tt.want)
		}
	}
}
