package graph

import "fmt"

// Comb enumerates the combinators used by the reduction engine. The lang
// compiler performs Turner-style bracket abstraction into this basis; the
// reduce package implements one graph-rewrite rule per combinator, each
// expressed through the cooperating mutator primitives.
type Comb int64

// The combinator basis. S' (SP), B' (BP) and C' (CP) are Turner's optimized
// three-argument director combinators; Y builds cyclic recursion knots.
const (
	CombS Comb = iota + 1
	CombK
	CombI
	CombB
	CombC
	CombSP // S' f g x y -> (f (g y)) (x y) applied under a shared head
	CombBP // B' f g x y -> f g (x y)
	CombCP // C' f g x y -> f (g y) x
	CombY  // Y f -> f (Y f), implemented as a cyclic knot
)

var combNames = [...]string{
	CombS:  "S",
	CombK:  "K",
	CombI:  "I",
	CombB:  "B",
	CombC:  "C",
	CombSP: "S'",
	CombBP: "B'",
	CombCP: "C'",
	CombY:  "Y",
}

// String returns the conventional combinator name.
func (c Comb) String() string {
	if c > 0 && int(c) < len(combNames) {
		return combNames[c]
	}
	return fmt.Sprintf("comb(%d)", int64(c))
}

// Arity returns the number of arguments the combinator consumes.
func (c Comb) Arity() int {
	switch c {
	case CombI, CombY:
		return 1
	case CombK:
		return 2
	case CombB, CombC, CombS:
		return 3
	case CombSP, CombBP, CombCP:
		return 4
	default:
		return 0
	}
}

// Prim enumerates the strict primitive operators. Each is reduced by the
// engine after demanding the values of its strict arguments; If additionally
// supports eager (speculative) evaluation of its branches.
type Prim int64

// Primitive operator codes.
const (
	PrimAdd Prim = iota + 1
	PrimSub
	PrimMul
	PrimDiv
	PrimMod
	PrimNeg
	PrimEq
	PrimNe
	PrimLt
	PrimLe
	PrimGt
	PrimGe
	PrimAnd // strict boolean and
	PrimOr  // strict boolean or
	PrimNot
	PrimIf      // if c t e: strict in c only; t and e may be eagerly requested
	PrimCons    // lazy pair constructor
	PrimHead    // strict in its pair argument
	PrimTail    // strict in its pair argument
	PrimIsNil   // strict list test
	PrimIsPair  // strict pair test
	PrimSeq     // seq a b: force a, return b
	PrimSpec    // spec a b: eagerly (speculatively) request a, return b
	PrimPar     // par a b: eagerly request a AND b vitally in parallel, return b after both
	PrimBottom  // ⊥: a vertex whose demand never returns (self-dependency)
	PrimIsBotOp // is-bottom probe from footnote 5 (diagnostic; resolved by the deadlock detector)
)

var primNames = map[Prim]string{
	PrimAdd: "+", PrimSub: "-", PrimMul: "*", PrimDiv: "/", PrimMod: "%",
	PrimNeg: "neg", PrimEq: "=", PrimNe: "/=", PrimLt: "<", PrimLe: "<=",
	PrimGt: ">", PrimGe: ">=", PrimAnd: "and", PrimOr: "or", PrimNot: "not",
	PrimIf: "if", PrimCons: "cons", PrimHead: "head", PrimTail: "tail",
	PrimIsNil: "nil?", PrimIsPair: "pair?", PrimSeq: "seq", PrimSpec: "spec",
	PrimPar: "par", PrimBottom: "bottom", PrimIsBotOp: "is-bottom",
}

// String returns the surface-syntax name of the primitive.
func (p Prim) String() string {
	if s, ok := primNames[p]; ok {
		return s
	}
	return fmt.Sprintf("prim(%d)", int64(p))
}

// Arity returns the number of arguments the primitive consumes.
func (p Prim) Arity() int {
	switch p {
	case PrimNeg, PrimNot, PrimHead, PrimTail, PrimIsNil, PrimIsPair, PrimIsBotOp:
		return 1
	case PrimIf:
		return 3
	case PrimBottom:
		return 0
	default:
		return 2
	}
}

// StrictArgs returns the indexes (into the fully applied argument list) the
// primitive is strict in — the arguments whose values must be vitally
// requested before the primitive can reduce.
func (p Prim) StrictArgs() []int {
	switch p {
	case PrimIf:
		return []int{0}
	case PrimCons:
		return nil
	case PrimSeq, PrimSpec:
		return []int{0}
	case PrimPar:
		return []int{0, 1}
	case PrimBottom:
		return nil
	default:
		n := p.Arity()
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
}
