package dgr_test

// Seed-determinism regression tests: a deterministic machine with a fixed
// seed must execute the identical task sequence run after run — and, more
// importantly, across refactors of the data structures underneath the
// scheduler (the free-list allocator, the task-pool rings). The schedule
// recorder from the invariant-checker PR gives us the exact (pe, task)
// execution order; hashing it yields a digest that is stable across runs
// and brittle across any semantic change to scheduling, allocation order,
// or pool FIFO/band behavior. The golden digests below were recorded
// against the pre-rewrite append/re-slice pools and single-lock allocator;
// the sharded-allocator + ring-buffer implementation must reproduce them
// exactly.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"dgr"
)

// scheduleDigest evaluates src on a fresh deterministic machine and returns
// an FNV-64a digest of the recorded execution schedule (every exec, cycle,
// and restructure event, in log order).
func scheduleDigest(t *testing.T, seed int64, pes int, src string, want int64) string {
	t.Helper()
	return engineScheduleDigest(t, seed, pes, "", src, want)
}

// engineScheduleDigest is scheduleDigest with an explicit engine selection
// (the compiled backend executes a different — but equally deterministic —
// task sequence, so it pins its own goldens).
func engineScheduleDigest(t *testing.T, seed int64, pes int, engine, src string, want int64) string {
	t.Helper()
	m := dgr.New(dgr.Options{
		PEs:            pes,
		Seed:           seed,
		Engine:         engine,
		Capacity:       1 << 14,
		RecordSchedule: true,
	})
	defer m.Close()
	return digestEval(t, m, src, want)
}

// digestEval evaluates src on a schedule-recording machine and digests the
// recorded schedule (shared with the obs integration tests, which assert
// instrumentation does not perturb it).
func digestEval(t *testing.T, m *dgr.Machine, src string, want int64) string {
	t.Helper()
	v, err := m.Eval(src)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if v.Int != want {
		t.Fatalf("eval = %v, want %d", v, want)
	}
	evs, err := m.ScheduleEvents()
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, e := range evs {
		fmt.Fprintf(h, "%s|%d|%d|%d|%d|%d|%d|%d|%d|%d|%v|%v\n",
			e.Ev, e.Seq, e.PE, e.Kind, e.Src, e.Dst, e.Req, e.Ctx, e.Prior, e.Epoch, e.Roots, e.MT)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

const detFib = `let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 12`

// goldenSchedules pins the exact schedule digest for a handful of
// (seed, pes) configurations. Regenerate (only when a change is *supposed*
// to alter scheduling semantics) by running this test and copying the
// reported digests.
var goldenSchedules = map[string]string{
	"seed=42/pes=1": "2c0f16ab1f92c60a",
	"seed=42/pes=4": "61dbc67fc60e465b",
	"seed=7/pes=3":  "8a33f4748811e6fd",
}

// TestScheduleDeterminismGolden asserts that fixed-seed deterministic runs
// execute exactly the recorded golden task sequence.
func TestScheduleDeterminismGolden(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		pes  int
	}{
		{"seed=42/pes=1", 42, 1},
		{"seed=42/pes=4", 42, 4},
		{"seed=7/pes=3", 7, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := scheduleDigest(t, tc.seed, tc.pes, detFib, 144)
			want := goldenSchedules[tc.name]
			if want == "" {
				t.Fatalf("no golden digest recorded; got %s", got)
			}
			if got != want {
				t.Errorf("schedule digest = %s, want %s (the deterministic task sequence changed)", got, want)
			}
		})
	}
}

// goldenCompiledSchedules pins the compiled engine's schedule digests for
// the same configurations. The compiled backend reduces fib in far fewer,
// coarser task executions (one supercombinator body per task), so these
// digests differ from the interpreted goldens by design — but they are
// just as brittle against any change to scheduling, allocation order, or
// the compiler's instruction selection.
var goldenCompiledSchedules = map[string]string{
	"seed=42/pes=1": "311ff46fddd489e7",
	"seed=42/pes=4": "ae9b782d3d2bb2c4",
	"seed=7/pes=3":  "2f426320f12cb357",
}

// TestScheduleDeterminismCompiledGolden pins the compiled engine's
// deterministic task sequence exactly as the interpreted goldens do.
func TestScheduleDeterminismCompiledGolden(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		pes  int
	}{
		{"seed=42/pes=1", 42, 1},
		{"seed=42/pes=4", 42, 4},
		{"seed=7/pes=3", 7, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := engineScheduleDigest(t, tc.seed, tc.pes, dgr.EngineCompiled, detFib, 144)
			want := goldenCompiledSchedules[tc.name]
			if want == "" {
				t.Fatalf("no golden digest recorded; got %s", got)
			}
			if got != want {
				t.Errorf("compiled schedule digest = %s, want %s (the deterministic task sequence changed)", got, want)
			}
		})
	}
}

// TestScheduleDeterminismRepeatable asserts run-to-run stability (two fresh
// machines, same seed, identical schedules) independent of the goldens.
func TestScheduleDeterminismRepeatable(t *testing.T) {
	a := scheduleDigest(t, 1234, 4, detFib, 144)
	b := scheduleDigest(t, 1234, 4, detFib, 144)
	if a != b {
		t.Fatalf("same seed produced different schedules: %s vs %s", a, b)
	}
}
