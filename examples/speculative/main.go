// Speculative evaluation: eager tasks, their promotion to vital, and the
// expungement of irrelevant tasks — §3.2 of the paper, live.
//
// With SpeculativeIf enabled, every conditional eagerly evaluates both
// branches while its predicate is still being computed. When the predicate
// resolves, the losing branch is dereferenced: its in-flight tasks are now
// *irrelevant* and may "distribute through the system generating an
// arbitrarily large (and irrelevant) parallel workload; indeed, the
// subcomputation may be non-terminating" — exactly what happens to a
// recursive else branch at n = 0 (it speculates fac(-1), fac(-2), ...).
// Only the collector's restructure phase, deleting tasks whose destination
// is garbage (Property 6), keeps the machine sane.
package main

import (
	"fmt"
	"log"

	"dgr"
)

func main() {
	src := `let fac n = if n == 0 then 1 else n * fac (n - 1) in fac 10`

	// Without GC, this program would never drain: the dead else branch at
	// the recursion's base keeps speculating below zero. Eval interleaves
	// collector cycles, so the irrelevant workload is repeatedly expunged.
	m := dgr.New(dgr.Options{
		PEs:           4,
		Seed:          7,
		SpeculativeIf: true,
		GCInterval:    4000, // collect aggressively: speculation is hungry
		Capacity:      1 << 17,
	})
	defer m.Close()

	v, err := m.Eval(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("speculative fac 10 =", v)

	// The answer is out, but speculative tasks spawned along the way are
	// still in the pools — all of them now irrelevant. Keep alternating
	// execution and GC cycles: each restructure phase deletes the tasks
	// whose destinations became garbage, until the machine drains. Without
	// this, the else-branch speculation below n = 0 runs forever.
	rounds := 0
	for !m.Quiescent() && rounds < 500 {
		m.Pump(4000)
		m.RunGC()
		rounds++
	}
	fmt.Printf("drained after %d extra GC rounds (quiescent=%v)\n", rounds, m.Quiescent())

	s := m.Stats()
	fmt.Printf("\nGC cycles:        %d\n", s.Cycles)
	fmt.Printf("tasks expunged:   %d   <- irrelevant speculative work deleted\n", s.Expunged)
	fmt.Printf("vertices freed:   %d   <- dereferenced branches reclaimed\n", s.Reclaimed)
	fmt.Printf("reprioritized:    %d   <- eager demands re-banded from marked priorities\n", s.Reprioritized)
	fmt.Printf("coop marks:       %d   <- mutator/marker cooperation events\n", s.CoopMarks)

	// Compare against the sequential (non-speculative) run.
	m2 := dgr.New(dgr.Options{PEs: 4, Seed: 7})
	defer m2.Close()
	if _, err := m2.Eval(src); err != nil {
		log.Fatal(err)
	}
	s2 := m2.Stats()
	fmt.Printf("\nreduction tasks:  %d speculative vs %d demand-only\n",
		s.ReductionTasks, s2.ReductionTasks)
	fmt.Println("(speculation trades extra — partly wasted — work for parallelism;")
	fmt.Println(" the collector bounds the waste to one GC period)")
}
