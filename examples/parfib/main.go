// Parallel reduction: the same program on 1 versus 8 goroutine-backed
// processing elements, with `par` exposing parallelism to the reducer.
//
// The computation graph is partitioned across PEs; tasks whose destination
// lives on another partition are remote messages, exactly as in the
// paper's model of autonomous PEs with only local store.
package main

import (
	"fmt"
	"log"
	"time"

	"dgr"
)

const src = `
let fib n = if n < 2 then n
            else let a = fib (n - 1);          -- shared subexpression: one vertex,
                     b = fib (n - 2)           -- evaluated once however many demand it
                 in par a b + a                -- par demands both halves in parallel
in fib 19`

func run(pes int) (dgr.Value, time.Duration, dgr.Stats) {
	m := dgr.New(dgr.Options{
		PEs:      pes,
		Parallel: true,
		Timeout:  2 * time.Minute,
		Capacity: 1 << 18,
	})
	defer m.Close()
	start := time.Now()
	v, err := m.Eval(src)
	if err != nil {
		log.Fatalf("pes=%d: %v", pes, err)
	}
	return v, time.Since(start), m.Stats()
}

func main() {
	for _, pes := range []int{1, 2, 4, 8} {
		v, dur, s := run(pes)
		fmt.Printf("PEs=%d  fib 19 = %s  in %-12s  tasks=%-8d remote=%-7d rewrites=%d reclaimed=%d\n",
			pes, v, dur.Round(time.Millisecond), s.TasksExecuted, s.RemoteMessages, s.Rewrites, s.Reclaimed)
	}
	fmt.Println("\n(remote messages grow with PE count as the partitioned graph")
	fmt.Println(" spreads; the collector runs concurrently on the same PEs)")
}
