// Deadlock detection: Figure 3-1's x = x + 1, found by running the M_T
// marking process (from the task pools) before M_R (from the root) and
// reporting DL_v = R_v − T.
//
// Note the paper's remark (§6): "a deadlocked system generally does no
// harm, it just never does any good" — and footnote 5's multi-user point:
// one deadlocked computation must not take the machine down. This example
// shows a deadlocked program being diagnosed while the same machine keeps
// serving healthy programs.
package main

import (
	"errors"
	"fmt"
	"log"

	"dgr"
)

func main() {
	m := dgr.New(dgr.Options{
		PEs:     2,
		Seed:    3,
		MTEvery: 1, // run deadlock detection every GC cycle
	})
	defer m.Close()

	// The knot: x depends vitally on its own value.
	_, err := m.Eval("let x = x + 1 in x")
	switch {
	case errors.Is(err, dgr.ErrDeadlock):
		fmt.Println("deadlock detected, as it must be:")
		fmt.Printf("  deadlocked vertices: %v\n", m.Deadlocked())
	case err == nil:
		log.Fatal("x = x+1 produced a value?!")
	default:
		log.Fatal(err)
	}

	// Mutual deadlock: two values each awaiting the other.
	_, err = m.Eval("let a = b + 1; b = a + 1 in a")
	if !errors.Is(err, dgr.ErrDeadlock) {
		log.Fatalf("mutual knot: expected deadlock, got %v", err)
	}
	fmt.Printf("mutual knot also detected (total deadlocked so far: %d)\n",
		len(m.Deadlocked()))

	// The machine is unharmed: healthy programs still run to completion.
	v, err := m.Eval("let fac n = if n == 0 then 1 else n * fac (n-1) in fac 6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine still healthy: fac 6 =", v)

	s := m.Stats()
	fmt.Printf("\nM_T runs: %d of %d GC cycles; deadlocked vertices found: %d\n",
		s.MTRuns, s.Cycles, s.DeadlockedFound)
}
