// Deadlock recovery via is-bottom (footnote 5 of the paper): "it may be
// desirable to introduce a predicate is-bottom to facilitate recovery from
// deadlocked subcomputations. Such a non-monotonic function may introduce
// semantic irregularities ... Nevertheless, the use of such
// 'pseudo-functions' is likely, especially in a multi-user environment."
//
// The probe demands its operand vitally. If the operand delivers a value,
// the probe is false. If instead the deadlock detector (M_T before M_R)
// finds the probe itself in DL_v — it awaits a value that can never arrive
// — the collector resolves the probe to true, the program takes the
// recovery branch, and the dead subgraph is reclaimed as garbage.
package main

import (
	"fmt"
	"log"

	"dgr"
)

func main() {
	m := dgr.New(dgr.Options{
		PEs:     2,
		Seed:    5,
		MTEvery: 1, // probe resolution needs the deadlock detector
	})
	defer m.Close()

	// A computation guarded by a probe: x = x+1 can never produce a value.
	v, err := m.Eval(`
		let x = x + 1                  -- Figure 3-1's knot
		in if isbottom x
		   then 0 - 1                  -- recovery branch
		   else x`)
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	fmt.Println("guarded deadlocked computation =", v, "(recovered)")

	// A healthy computation behind the same guard is unaffected.
	v, err = m.Eval(`
		let y = 6 * 7
		in if isbottom y then 0 - 1 else y`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("guarded healthy computation   =", v)

	s := m.Stats()
	fmt.Printf("\ndeadlocked vertices found: %d (probe itself included, then forgotten)\n",
		s.DeadlockedFound)
	fmt.Printf("M_T runs: %d; reclaimed: %d vertices (the dead knot's region)\n",
		s.MTRuns, s.Reclaimed)
	fmt.Println("\nnote the paper's caveat: is-bottom is non-monotonic — the probe's")
	fmt.Println("answer depends on when the detector runs, so least fixed points are")
	fmt.Println("not guaranteed; dgr therefore resolves probes only from the stable")
	fmt.Println("DL_v = R_v − T set, never speculatively.")
}
