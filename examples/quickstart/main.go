// Quickstart: compile a functional program to a combinator graph, reduce
// it across four processing elements, and watch the concurrent collector
// reclaim garbage while the program runs.
package main

import (
	"fmt"
	"log"

	"dgr"
)

func main() {
	// A machine with 4 PEs. Deterministic mode: reproducible scheduling,
	// collector cycles interleaved with reduction by Eval.
	m := dgr.New(dgr.Options{PEs: 4, Seed: 42})
	defer m.Close()

	// Plain expression.
	v, err := m.Eval("2 + 3 * 4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2 + 3 * 4 =", v)

	// Recursion via letrec (compiled to a cyclic combinator graph — the
	// collector reclaims cycles, so this is safe to churn).
	v, err = m.Eval(`let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 20`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fib 20 =", v)

	// Lazy infinite structures work because reduction is demand-driven.
	vals, err := m.EvalList(`
		let nats = let from n = n : from (n + 1) in from 0;
		    take n xs = if n == 0 then [] else head xs : take (n - 1) (tail xs)
		in take 8 (tail nats)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("tail of naturals: ")
	for _, x := range vals {
		fmt.Print(x, " ")
	}
	fmt.Println()

	// The machine's counters show the distributed execution and the
	// endless mark/restructure cycles at work.
	s := m.Stats()
	fmt.Printf("\ntasks executed:     %d (reduction %d, marking %d)\n",
		s.TasksExecuted, s.ReductionTasks, s.MarkTasks+s.ReturnTasks)
	fmt.Printf("messages:           %d remote, %d local\n", s.RemoteMessages, s.LocalMessages)
	fmt.Printf("graph rewrites:     %d\n", s.Rewrites)
	fmt.Printf("GC cycles:          %d (reclaimed %d vertices)\n", s.Cycles, s.Reclaimed)
	fmt.Printf("heap:               %d vertices, %d free\n", m.TotalVertices(), m.FreeVertices())
}
