package dgr

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"dgr/internal/workload"
)

// lossyFabricOpts is the standard "hostile network" configuration used by
// the integration tests: every cross-partition spawn rides a batched link
// with 10% transmission loss, latency, jitter, and reordering.
func lossyFabricOpts(seed int64) Options {
	return Options{
		PEs:         4,
		Seed:        seed,
		Fabric:      true,
		BatchSize:   8,
		FlushEvery:  20 * time.Microsecond,
		LinkLatency: 5 * time.Microsecond,
		Jitter:      3 * time.Microsecond,
		DropRate:    0.10,
		ReorderRate: 0.10,
	}
}

// TestFabricCorpus is the tentpole acceptance check: with the fabric
// enabled at a 10% drop rate, every seed program must still evaluate to
// exactly its reference value — the at-least-once retry plus receiver
// dedup makes the lossy network semantically invisible.
func TestFabricCorpus(t *testing.T) {
	var sent, delivered, expunged, dropped int64
	for name, p := range workload.Programs {
		t.Run(name, func(t *testing.T) {
			m := New(lossyFabricOpts(11))
			defer m.Close()
			v, err := m.Eval(p.Src)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int != p.Want {
				t.Fatalf("%s = %v, want %d", name, v, p.Want)
			}
			if !m.Quiescent() {
				t.Fatal("machine not quiescent after Eval")
			}
			s := m.Stats()
			// Conservation: every task handed to the fabric was either
			// delivered to a pool or expunged as irrelevant — none lost.
			if s.FabricSent != s.FabricDelivered+s.FabricExpunged {
				t.Fatalf("fabric lost tasks: sent=%d delivered=%d expunged=%d",
					s.FabricSent, s.FabricDelivered, s.FabricExpunged)
			}
			sent += s.FabricSent
			delivered += s.FabricDelivered
			expunged += s.FabricExpunged
			dropped += s.FabricDropped
		})
	}
	if sent == 0 {
		t.Fatal("corpus produced no cross-partition traffic")
	}
	if dropped == 0 {
		t.Fatal("10% drop rate injected no loss across the corpus")
	}
	t.Logf("corpus fabric traffic: sent=%d delivered=%d expunged=%d dropped=%d",
		sent, delivered, expunged, dropped)
}

// TestFabricDeterministicReproducible: the fabric's latency, jitter, loss,
// and reordering all come from seeded RNGs, so two deterministic runs with
// the same seed must produce byte-identical counter snapshots.
func TestFabricDeterministicReproducible(t *testing.T) {
	run := func() Stats {
		m := New(lossyFabricOpts(23))
		defer m.Close()
		v, err := m.Eval(workload.Programs["fib"].Src)
		if err != nil {
			t.Fatal(err)
		}
		if v.Int != workload.Programs["fib"].Want {
			t.Fatalf("fib = %v", v)
		}
		return m.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged under fabric:\n a=%+v\n b=%+v", a, b)
	}
	if a.FabricDropped == 0 {
		t.Fatal("expected injected loss at 10% drop")
	}
}

// TestFabricParallelEval runs the full parallel machine — PE goroutines,
// background collector, and the fabric's own pump — under 5% loss.
func TestFabricParallelEval(t *testing.T) {
	m := New(Options{
		PEs:         4,
		Parallel:    true,
		Fabric:      true,
		BatchSize:   8,
		FlushEvery:  100 * time.Microsecond,
		LinkLatency: 20 * time.Microsecond,
		DropRate:    0.05,
		Timeout:     2 * time.Minute,
	})
	defer m.Close()
	p := workload.Programs["fib"]
	v, err := m.Eval(p.Src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != p.Want {
		t.Fatalf("fib = %v, want %d", v, p.Want)
	}
	// Eval returns as soon as the value is ready; stragglers may still be
	// in flight. Close flushes and closes the fabric, after which the
	// conservation law must hold exactly.
	m.Close()
	s := m.Stats()
	if s.FabricSent == 0 {
		t.Fatal("parallel eval produced no fabric traffic")
	}
	if s.FabricSent != s.FabricDelivered+s.FabricExpunged {
		t.Fatalf("fabric lost tasks: sent=%d delivered=%d expunged=%d",
			s.FabricSent, s.FabricDelivered, s.FabricExpunged)
	}
}

// TestFabricLinkStats checks the per-link observability surface: stats
// rows ordered by (from,to) and restricted to links that carried traffic,
// latency histograms populated for every link that delivered a batch, and
// per-link sums agreeing with the global counters.
func TestFabricLinkStats(t *testing.T) {
	m := New(lossyFabricOpts(5))
	defer m.Close()
	if _, err := m.Eval(workload.Programs["fib"].Src); err != nil {
		t.Fatal(err)
	}
	st := m.FabricStats()
	if len(st) == 0 || len(st) > 4*3 {
		t.Fatalf("LinkStats rows = %d, want 1..12 for 4 PEs", len(st))
	}
	var sent, delivered int64
	for i, ls := range st {
		if i > 0 {
			prev := st[i-1]
			if ls.From < prev.From || (ls.From == prev.From && ls.To <= prev.To) {
				t.Fatalf("LinkStats not ordered by (from,to): %+v after %+v", ls, prev)
			}
		}
		if ls.Batches > 0 && ls.Latency.Total() != ls.Batches {
			t.Fatalf("link %d->%d: %d latency samples for %d batches",
				ls.From, ls.To, ls.Latency.Total(), ls.Batches)
		}
		sent += ls.Sent
		delivered += ls.Delivered
	}
	s := m.Stats()
	if sent != s.FabricSent || delivered != s.FabricDelivered {
		t.Fatalf("per-link sums (sent=%d delivered=%d) disagree with counters (%d/%d)",
			sent, delivered, s.FabricSent, s.FabricDelivered)
	}
	if m.FabricStats() == nil {
		t.Fatal("FabricStats nil with fabric on")
	}
	m2 := New(Options{PEs: 2})
	defer m2.Close()
	if m2.FabricStats() != nil {
		t.Fatal("FabricStats non-nil with fabric off")
	}
}

// TestFabricTraceJSONL evaluates under a lossy fabric with tracing on and
// checks the JSONL export is well-formed and includes the fabric message
// lifecycle.
func TestFabricTraceJSONL(t *testing.T) {
	opts := lossyFabricOpts(9)
	opts.TraceCapacity = 1 << 16
	m := New(opts)
	defer m.Close()
	if _, err := m.Eval(workload.Programs["tak"].Src); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds[e.Kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"fab.flush", "fab.deliver", "fab.drop"} {
		if kinds[k] == 0 {
			t.Errorf("no %s events in trace: %v", k, kinds)
		}
	}

	m2 := New(Options{PEs: 2})
	defer m2.Close()
	if err := m2.WriteTraceJSONL(&buf); err == nil {
		t.Fatal("WriteTraceJSONL should error without TraceCapacity")
	}
}
