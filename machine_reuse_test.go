package dgr

import (
	"testing"
	"time"

	"dgr/internal/workload"
)

// TestMachineReuseDeterministic evaluates many programs back-to-back on ONE
// deterministic machine — the serving layer's pooled-worker usage pattern.
// Every eval must see a clean machine: results identical to a fresh-machine
// run, and the heap fully reclaimed between evals (no leak accumulating
// across requests).
func TestMachineReuseDeterministic(t *testing.T) {
	m := New(Options{PEs: 2, Capacity: 1 << 14})
	defer m.Close()

	progs := []string{"fib", "fac", "sumsquares"}
	baseline := -1 // live residue after the first round (last root stays pinned)
	for round := 0; round < 4; round++ {
		for _, name := range progs {
			p := workload.Programs[name]
			v, err := m.Eval(p.Src)
			if err != nil {
				t.Fatalf("round %d %s: %v", round, name, err)
			}
			if v.Int != p.Want {
				t.Fatalf("round %d %s = %v, want %d", round, name, v, p.Want)
			}
		}
		m.RunGC()
		// The collector keeps the last eval's root pinned, so a small
		// constant residue survives GC; what must NOT happen is the residue
		// growing round over round — that would mean evals leak roots.
		live := m.TotalVertices() - m.FreeVertices()
		if baseline < 0 {
			baseline = live
		} else if live > baseline {
			t.Fatalf("round %d: %d live vertices after GC, was %d after round 0 — reuse leaks",
				round, live, baseline)
		}
	}
}

// TestMachineReuseList interleaves Eval and EvalList on one machine; list
// forcing walks spine cells that scalar evals never touch, so this catches
// per-mode state bleeding across requests.
func TestMachineReuseList(t *testing.T) {
	m := New(Options{PEs: 2, Capacity: 1 << 14})
	defer m.Close()

	const listSrc = `let upto a b = if a > b then [] else a : upto (a + 1) b in upto 1 5`
	for round := 0; round < 3; round++ {
		vals, err := m.EvalList(listSrc)
		if err != nil {
			t.Fatalf("round %d list: %v", round, err)
		}
		if len(vals) != 5 {
			t.Fatalf("round %d list: got %d elems, want 5", round, len(vals))
		}
		for i, v := range vals {
			if v.Int != int64(i+1) {
				t.Fatalf("round %d list[%d] = %v, want %d", round, i, v, i+1)
			}
		}
		p := workload.Programs["fac"]
		v, err := m.Eval(p.Src)
		if err != nil {
			t.Fatalf("round %d fac: %v", round, err)
		}
		if v.Int != p.Want {
			t.Fatalf("round %d fac = %v, want %d", round, v, p.Want)
		}
	}
}

// TestMachineReuseParallel is the same reuse pattern on a live parallel
// machine: PE goroutines and the background collector stay up across evals.
// Parallel runs can hit the known rare race (ROADMAP.md), and a failed eval
// can leave residue behind — so, exactly like the serving layer's pool, a
// failed eval recycles to a fresh machine (bounded) instead of retrying on
// the dirty one. A *successful* eval returning the wrong answer is always a
// hard failure.
func TestMachineReuseParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel reuse stress")
	}
	fresh := func() *Machine {
		return New(Options{PEs: 4, Parallel: true, Capacity: 1 << 16, Timeout: 2 * time.Minute})
	}
	m := fresh()
	defer func() { m.Close() }()

	const maxRecycles = 5
	recycles := 0
	progs := []string{"fib", "fac", "sumsquares"}
	for round := 0; round < 3; round++ {
		for _, name := range progs {
			p := workload.Programs[name]
			for {
				v, err := m.Eval(p.Src)
				if err == nil {
					if v.Int != p.Want {
						t.Fatalf("round %d %s = %v, want %d", round, name, v, p.Want)
					}
					break
				}
				recycles++
				if recycles > maxRecycles {
					t.Fatalf("round %d %s: %d recycles, last error: %v", round, name, recycles, err)
				}
				t.Logf("round %d %s: recycling after %v (known parallel race)", round, name, err)
				m.Close()
				m = fresh()
			}
		}
	}
}
