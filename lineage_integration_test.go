package dgr_test

// Integration tests for causal task-lineage tracing through the public
// facade: tracing at rate 1.0 must not perturb the deterministic schedule
// (the golden digest is byte-identical), a traced eval must assemble back
// into a spawn DAG whose critical-path blame sums exactly to the measured
// latency, and the JSON exposition document must round-trip. The parallel
// variant runs with stealing and the fabric on, so steal/fabric annotation
// spans ride the same trace.

import (
	"bytes"
	"encoding/json"
	"testing"

	"dgr"
	"dgr/internal/obs"
)

// TestTracingScheduleUnchanged asserts the tentpole's zero-perturbation
// property: a machine with obs AND lineage tracing at rate 1.0 reproduces
// the exact golden schedule digest of an uninstrumented run. Trace stamps
// ride fields the digest does not hash, and span recording happens outside
// the scheduling decisions.
func TestTracingScheduleUnchanged(t *testing.T) {
	m := dgr.New(dgr.Options{
		PEs:            4,
		Seed:           42,
		Capacity:       1 << 14,
		RecordSchedule: true,
		Obs:            true,
		TraceRate:      1,
	})
	defer m.Close()
	got := digestEval(t, m, detFib, 144)
	if want := goldenSchedules["seed=42/pes=4"]; got != want {
		t.Fatalf("schedule digest with tracing on = %s, want golden %s", got, want)
	}
	// The run must actually have traced: an eval envelope plus task execs.
	spans, _ := m.TraceSink().Spans()
	if len(spans) < 2 {
		t.Fatalf("traced run recorded %d spans, want an eval envelope + execs", len(spans))
	}
}

// TestTraceAssemblesDeterministic evaluates on a deterministic traced
// machine and checks the end-to-end pipeline: spans → AssembleTraces →
// CriticalPath, with the blame categories summing exactly to the trace's
// measured latency (the partition property the CI smoke also guards).
func TestTraceAssemblesDeterministic(t *testing.T) {
	m := dgr.New(dgr.Options{
		PEs:       2,
		Seed:      42,
		Capacity:  1 << 14,
		MTEvery:   1,
		TraceRate: 1,
	})
	defer m.Close()
	v, err := m.Eval(detFib)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if v.Int != 144 {
		t.Fatalf("eval = %v, want 144", v)
	}

	spans, dropped := m.TraceSink().Spans()
	if dropped != 0 {
		t.Fatalf("ring evicted %d spans of a single small eval", dropped)
	}
	traces, globals := obs.AssembleTraces(spans)
	if len(traces) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Orphans != 0 {
		t.Fatalf("%d orphaned spans with no eviction", tr.Orphans)
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "eval" {
		t.Fatalf("roots = %+v, want the single eval envelope", tr.Roots)
	}
	cats := map[string]int{}
	for _, sp := range tr.Spans {
		cats[sp.Cat]++
	}
	if cats[obs.CatEval] != 1 || cats[obs.CatExec] == 0 {
		t.Fatalf("span categories %v, want one eval envelope and task execs", cats)
	}

	rep := obs.CriticalPath(tr, globals)
	if rep.TotalNs <= 0 {
		t.Fatalf("TotalNs = %d, want positive", rep.TotalNs)
	}
	var blamed int64
	for _, ns := range rep.Blame {
		blamed += ns
	}
	if blamed != rep.TotalNs {
		t.Fatalf("blame sums to %d, want exactly TotalNs %d (path must partition the trace)",
			blamed, rep.TotalNs)
	}
	if len(rep.Path) < 2 {
		t.Fatalf("critical path has %d segments, want the walk to descend into task execs", len(rep.Path))
	}
}

// TestTraceParallelStealsFabric runs the traced pipeline in the full
// parallel configuration — per-PE goroutines, work stealing on (the
// default), and the simulated fabric between PEs — and asserts the same
// partition property holds on whatever interleaving this run produced.
func TestTraceParallelStealsFabric(t *testing.T) {
	m := dgr.New(dgr.Options{
		PEs:       4,
		Seed:      42,
		Capacity:  1 << 15,
		Parallel:  true,
		Fabric:    true,
		TraceRate: 1,
	})
	defer m.Close()

	// The parallel scheduler has a known rare flake (see ROADMAP.md);
	// retry a couple of times rather than let it fail this test.
	var v dgr.Value
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if v, err = m.Eval(detFib); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("parallel eval: %v", err)
	}
	if v.Int != 144 {
		t.Fatalf("eval = %v, want 144", v)
	}

	spans, _ := m.TraceSink().Spans()
	traces, globals := obs.AssembleTraces(spans)
	if len(traces) == 0 {
		t.Fatal("no traces assembled from a rate-1.0 parallel run")
	}
	cats := map[string]int{}
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			cats[sp.Cat]++
		}
	}
	if cats[obs.CatExec] == 0 {
		t.Fatalf("span categories %v, want task exec spans", cats)
	}
	t.Logf("parallel span categories: %v (steals=%d fabric=%d)",
		cats, cats[obs.CatSteal], cats[obs.CatFabric])
	for _, tr := range traces {
		rep := obs.CriticalPath(tr, globals)
		var blamed int64
		for _, ns := range rep.Blame {
			blamed += ns
		}
		if blamed != rep.TotalNs {
			t.Fatalf("trace %x: blame sums to %d, want TotalNs %d", tr.ID, blamed, rep.TotalNs)
		}
	}
}

// TestWriteTracesJSON round-trips the exposition document the serving layer
// mounts at /debug/traces.json and `dgr-trace -analyze` consumes.
func TestWriteTracesJSON(t *testing.T) {
	m := dgr.New(dgr.Options{
		PEs:       2,
		Seed:      7,
		Capacity:  1 << 14,
		TraceRate: 1,
	})
	defer m.Close()
	if _, err := m.Eval(detFib); err != nil {
		t.Fatalf("eval: %v", err)
	}
	var buf bytes.Buffer
	if err := m.WriteTracesJSON(&buf); err != nil {
		t.Fatalf("WriteTracesJSON: %v", err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode trace doc: %v", err)
	}
	if len(doc.Traces) != 1 {
		t.Fatalf("doc has %d traces, want 1", len(doc.Traces))
	}
	rep := doc.Traces[0]
	if rep.TotalNs <= 0 || len(rep.Spans) == 0 || len(rep.Crit.Path) == 0 {
		t.Fatalf("doc trace incomplete: total=%d spans=%d path=%d",
			rep.TotalNs, len(rep.Spans), len(rep.Crit.Path))
	}

	// Tracing disabled → the writer refuses rather than emitting an empty doc.
	m2 := dgr.New(dgr.Options{PEs: 1, Capacity: 1 << 12})
	defer m2.Close()
	if err := m2.WriteTracesJSON(&buf); err == nil {
		t.Fatal("WriteTracesJSON on an untraced machine must error")
	}
}
