package dgr_test

// Integration tests for the observability layer through the public facade:
// collector-phase spans land in the chrome trace export, the exposition
// endpoints render non-empty, an ErrDeadlock auto-dumps the flight recorder,
// and — critically — enabling obs does not perturb the deterministic
// schedule.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dgr"
)

func TestObsSpansAndExposition(t *testing.T) {
	m := dgr.New(dgr.Options{
		PEs:        2,
		Seed:       42,
		Capacity:   1 << 14,
		MTEvery:    1,
		GCInterval: 500, // force collector cycles to interleave with the eval
		Obs:        true,
	})
	defer m.Close()
	v, err := m.Eval(`let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 10`)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if v.Int != 55 {
		t.Fatalf("fib 10 = %v, want 55", v)
	}

	var spans bytes.Buffer
	if err := m.WriteSpansJSONL(&spans); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(&spans)
	for sc.Scan() {
		var ev struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("span line not JSON: %v", err)
		}
		if ev.Ph != "X" {
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		seen[ev.Name] = true
	}
	for _, want := range []string{"M_R", "M_T", "restructure", "sweep", "cycle", "pe-batch"} {
		if !seen[want] {
			t.Errorf("no %q span in trace export; saw %v", want, seen)
		}
	}

	var prom bytes.Buffer
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dgr_tasks_executed_total",
		"dgr_gc_cycles_total",
		`dgr_pe_queue_depth{pe="1",band="marking"}`,
		"dgr_heap_vertices",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	var snap bytes.Buffer
	if err := m.WriteSnapshotJSON(&snap); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Heap       int     `json:"heap"`
		Cycles     int64   `json:"cycles"`
		Executions uint64  `json:"executions"`
		ExecsPerPE []int64 `json:"execs_per_pe"`
		Series     *struct {
			Mach []json.RawMessage `json:"mach"`
		} `json:"series"`
	}
	if err := json.Unmarshal(snap.Bytes(), &got); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if got.Heap == 0 || got.Cycles == 0 || got.Executions == 0 {
		t.Fatalf("snapshot looks empty: %+v", got)
	}
	var execs int64
	for _, n := range got.ExecsPerPE {
		execs += n
	}
	if uint64(execs) != got.Executions {
		t.Errorf("per-PE execs sum %d != machine executions %d", execs, got.Executions)
	}
	// Deterministic machines sample at each cycle end.
	if got.Series == nil || len(got.Series.Mach) == 0 {
		t.Error("no time-series samples after collector cycles")
	}

	var flight bytes.Buffer
	if err := m.WriteFlightJSONL(&flight); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(flight.String(), `"kind":"cycle.start"`) ||
		!strings.Contains(flight.String(), `"kind":"demand"`) {
		t.Error("flight recorder missing collector or execution events")
	}

	var dot bytes.Buffer
	if err := m.WriteGraphDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph computation") {
		t.Error("graph DOT export empty")
	}
}

// TestObsScheduleUnchanged asserts that turning the observability layer on
// reproduces the exact golden schedule digest of an uninstrumented run: the
// instrumentation observes the machine without steering it.
func TestObsScheduleUnchanged(t *testing.T) {
	m := dgr.New(dgr.Options{
		PEs:            4,
		Seed:           42,
		Capacity:       1 << 14,
		RecordSchedule: true,
		Obs:            true,
	})
	defer m.Close()
	got := digestEval(t, m, detFib, 144)
	if want := goldenSchedules["seed=42/pes=4"]; got != want {
		t.Fatalf("schedule digest with obs on = %s, want golden %s", got, want)
	}
}

func TestObsFlightDumpOnDeadlock(t *testing.T) {
	dir := t.TempDir()
	m := dgr.New(dgr.Options{
		PEs:          2,
		Seed:         1,
		Capacity:     1 << 12,
		MTEvery:      1,
		ObsFlightDir: dir, // implies Obs
	})
	defer m.Close()
	_, err := m.Eval(`let x = x + 1 in x`)
	if !errors.Is(err, dgr.ErrDeadlock) {
		t.Fatalf("eval err = %v, want ErrDeadlock", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "dgr-flight-deadlock-*.jsonl"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("flight dump files = %v (err %v), want exactly one", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"cycle.start"`) {
		t.Errorf("dump missing collector events:\n%.400s", data)
	}
	if !strings.Contains(string(data), `"kind":"demand"`) {
		t.Errorf("dump missing scheduler execution events:\n%.400s", data)
	}
}

func TestObsParallelSmoke(t *testing.T) {
	m := dgr.New(dgr.Options{
		PEs:      4,
		Parallel: true,
		Fabric:   true,
		Obs:      true,
	})
	defer m.Close()
	v, err := m.Eval(`let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 15`)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if v.Int != 610 {
		t.Fatalf("fib 15 = %v, want 610", v)
	}
	var snap bytes.Buffer
	if err := m.WriteSnapshotJSON(&snap); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Executions uint64 `json:"executions"`
	}
	if err := json.Unmarshal(snap.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Executions == 0 {
		t.Fatal("parallel machine reported zero executions")
	}
}

func TestObsDisabledSurface(t *testing.T) {
	m := dgr.New(dgr.Options{PEs: 1})
	defer m.Close()
	if _, err := m.Eval(`1 + 1`); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for name, fn := range map[string]func() error{
		"spans":  func() error { return m.WriteSpansJSONL(&buf) },
		"flight": func() error { return m.WriteFlightJSONL(&buf) },
		"prom":   func() error { return m.WritePrometheus(&buf) },
		"snap":   func() error { return m.WriteSnapshotJSON(&buf) },
	} {
		if err := fn(); err == nil {
			t.Errorf("%s: no error with obs disabled", name)
		}
	}
	if m.ObsSeries() != nil {
		t.Error("ObsSeries non-nil with obs disabled")
	}
	// The graph DOT export does not need the obs layer.
	if err := m.WriteGraphDOT(&buf); err != nil {
		t.Errorf("WriteGraphDOT: %v", err)
	}
}
