// Command dgr-run evaluates a program on the distributed graph-reduction
// machine and prints the result and run statistics.
//
// Usage:
//
//	dgr-run [flags] -e 'let fib n = ... in fib 20'
//	dgr-run [flags] program.dgr
//	dgr-run -list                  # show the builtin program corpus
//	dgr-run -name fib              # run a corpus program
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dgr"
	"dgr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dgr-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pes      = flag.Int("pes", 4, "number of processing elements")
		parallel = flag.Bool("parallel", false, "run PEs as goroutines (default: deterministic)")
		seed     = flag.Int64("seed", 1, "deterministic scheduling seed")
		spec     = flag.Bool("spec", false, "speculatively evaluate if branches")
		mtEvery  = flag.Int("mtevery", 4, "run deadlock detection every k-th GC cycle (0 = never)")
		expr     = flag.String("e", "", "program text to evaluate")
		name     = flag.String("name", "", "run a named corpus program")
		list     = flag.Bool("list", false, "list corpus programs")
		stats    = flag.Bool("stats", true, "print run statistics")
		timeout  = flag.Duration("timeout", 30*time.Second, "parallel evaluation timeout")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(workload.Programs))
		for n := range workload.Programs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-12s => %d\n", n, workload.Programs[n].Want)
		}
		return nil
	}

	src := *expr
	switch {
	case src != "":
	case *name != "":
		p, ok := workload.Programs[*name]
		if !ok {
			return fmt.Errorf("unknown corpus program %q (try -list)", *name)
		}
		src = p.Src
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("nothing to run: use -e, -name, or a file argument")
	}

	mtCfg := *mtEvery
	if mtCfg == 0 {
		mtCfg = -1 // Options treats 0 as "default"; negative disables
	}
	m := dgr.New(dgr.Options{
		PEs:           *pes,
		Parallel:      *parallel,
		Seed:          *seed,
		SpeculativeIf: *spec,
		MTEvery:       mtCfg,
		Timeout:       *timeout,
	})
	defer m.Close()

	start := time.Now()
	v, err := m.Eval(src)
	elapsed := time.Since(start)
	if err != nil {
		if dead := m.Deadlocked(); len(dead) > 0 {
			fmt.Printf("deadlocked vertices: %v\n", dead)
		}
		return err
	}
	fmt.Printf("result: %s\n", v)
	if *stats {
		s := m.Stats()
		fmt.Printf("elapsed: %s\n", elapsed)
		fmt.Printf("stats: %s\n", s)
		fmt.Printf("heap: %d vertices, %d free\n", m.TotalVertices(), m.FreeVertices())
	}
	return nil
}
