// Command dgr-run evaluates a program on the distributed graph-reduction
// machine and prints the result and run statistics.
//
// Usage:
//
//	dgr-run [flags] -e 'let fib n = ... in fib 20'
//	dgr-run [flags] program.dgr
//	dgr-run -list                  # show the builtin program corpus
//	dgr-run -name fib              # run a corpus program
//
// With -http the machine's observability layer is exposed live:
//
//	dgr-run -parallel -http :8080 -linger 30s -name fib
//	curl localhost:8080/metrics              # Prometheus text exposition
//	curl localhost:8080/debug/snapshot.json  # machine digest + time-series
//	curl localhost:8080/debug/graph.dot      # computation graph (Graphviz)
//	curl localhost:8080/debug/spans.jsonl    # chrome://tracing span export
//	curl localhost:8080/debug/flight.jsonl   # flight-recorder ring
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"dgr"
	"dgr/internal/serve"
	"dgr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dgr-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pes       = flag.Int("pes", 4, "number of processing elements")
		parallel  = flag.Bool("parallel", false, "run PEs as goroutines (default: deterministic)")
		engine    = flag.String("engine", dgr.EngineInterp, "reduction engine: interp or compiled")
		seed      = flag.Int64("seed", 1, "deterministic scheduling seed")
		spec      = flag.Bool("spec", false, "speculatively evaluate if branches")
		mtEvery   = flag.Int("mtevery", 4, "run deadlock detection every k-th GC cycle (0 = never)")
		expr      = flag.String("e", "", "program text to evaluate")
		name      = flag.String("name", "", "run a named corpus program")
		list      = flag.Bool("list", false, "list corpus programs")
		stats     = flag.Bool("stats", true, "print run statistics")
		timeout   = flag.Duration("timeout", 30*time.Second, "parallel evaluation timeout")
		obsOn     = flag.Bool("obs", false, "enable the observability layer")
		httpAddr  = flag.String("http", "", "serve /metrics and /debug/* on this address (implies -obs)")
		linger    = flag.Duration("linger", 0, "keep serving -http for this long after the eval finishes")
		spansOut  = flag.String("spans", "", "write chrome://tracing span JSONL to this file (implies -obs)")
		flightDir = flag.String("flightdir", "", "auto-dump the flight recorder here on deadlock/violation (implies -obs)")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(workload.Programs))
		for n := range workload.Programs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-12s => %d\n", n, workload.Programs[n].Want)
		}
		return nil
	}

	src := *expr
	switch {
	case src != "":
	case *name != "":
		p, ok := workload.Programs[*name]
		if !ok {
			return fmt.Errorf("unknown corpus program %q (try -list)", *name)
		}
		src = p.Src
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	default:
		return fmt.Errorf("nothing to run: use -e, -name, or a file argument")
	}

	mtCfg := *mtEvery
	if mtCfg == 0 {
		mtCfg = -1 // Options treats 0 as "default"; negative disables
	}
	m := dgr.New(dgr.Options{
		PEs:           *pes,
		Parallel:      *parallel,
		Engine:        *engine,
		Seed:          *seed,
		SpeculativeIf: *spec,
		MTEvery:       mtCfg,
		Timeout:       *timeout,
		Obs:           *obsOn || *httpAddr != "" || *spansOut != "",
		ObsFlightDir:  *flightDir,
	})
	defer m.Close()

	ctx, stopSignals := serve.SignalContext(context.Background())
	defer stopSignals()
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("-http: %w", err)
		}
		fmt.Printf("serving observability on http://%s\n", ln.Addr())
		stopHTTP := serve.StartHTTP(ln, obsMux(m), func(err error) {
			fmt.Fprintln(os.Stderr, "dgr-run: -http:", err)
		})
		defer stopHTTP(2 * time.Second)
	}

	start := time.Now()
	v, err := m.Eval(src)
	elapsed := time.Since(start)
	if werr := writeSpans(m, *spansOut); werr != nil {
		fmt.Fprintln(os.Stderr, "dgr-run: -spans:", werr)
	}
	if *httpAddr != "" && *linger > 0 {
		fmt.Printf("lingering %s for scrapes (SIGINT to stop early)...\n", *linger)
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
			fmt.Println("interrupted; shutting down")
		}
	}
	if err != nil {
		if dead := m.Deadlocked(); len(dead) > 0 {
			fmt.Printf("deadlocked vertices: %v\n", dead)
		}
		return err
	}
	fmt.Printf("result: %s\n", v)
	if *stats {
		s := m.Stats()
		fmt.Printf("elapsed: %s\n", elapsed)
		fmt.Printf("stats: %s\n", s)
		fmt.Printf("heap: %d vertices, %d free\n", m.TotalVertices(), m.FreeVertices())
	}
	return nil
}

// obsMux routes the live exposition endpoints. Every handler renders from
// the machine's current state at request time.
func obsMux(m *dgr.Machine) *http.ServeMux {
	mux := http.NewServeMux()
	serve := func(path, contentType string, fn func(w http.ResponseWriter) error) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", contentType)
			if err := fn(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	serve("/metrics", "text/plain; version=0.0.4",
		func(w http.ResponseWriter) error { return m.WritePrometheus(w) })
	serve("/debug/snapshot.json", "application/json",
		func(w http.ResponseWriter) error { return m.WriteSnapshotJSON(w) })
	serve("/debug/graph.dot", "text/vnd.graphviz",
		func(w http.ResponseWriter) error { return m.WriteGraphDOT(w) })
	serve("/debug/spans.jsonl", "application/jsonl",
		func(w http.ResponseWriter) error { return m.WriteSpansJSONL(w) })
	serve("/debug/flight.jsonl", "application/jsonl",
		func(w http.ResponseWriter) error { return m.WriteFlightJSONL(w) })
	return mux
}

func writeSpans(m *dgr.Machine, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.WriteSpansJSONL(f)
}
