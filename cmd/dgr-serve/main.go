// Command dgr-serve runs the multi-tenant serving layer: a pool of
// graph-reduction machines behind an HTTP/JSON API with admission control,
// per-tenant quotas, weighted fair scheduling, and a normal-form memo
// cache. It doubles as the load-test client for that API (-load), which is
// how CI smoke-tests a running server.
//
// Serve:
//
//	dgr-serve -addr :8091 -workers 2 -pes 2 -check
//	curl -s localhost:8091/v1/eval -d '{"tenant":"alice","program":"1+2"}'
//	curl -s localhost:8091/metrics          # pool + per-tenant Prometheus
//	curl -s localhost:8091/debug/serve.json # pool/cache/tenant digest
//
// Load-test a running server (N tenants × M programs, warm rerun):
//
//	dgr-serve -load -url http://127.0.0.1:8091 -tenants 4 -programs 8 \
//	          -rounds 2 -out serve-report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"dgr"
	"dgr/internal/serve"
	"dgr/internal/task"
	"dgr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dgr-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8091", "listen address")
		workers  = flag.Int("workers", 2, "machine-pool size")
		pes      = flag.Int("pes", 2, "processing elements per pooled machine")
		parallel = flag.Bool("parallel", false, "run pooled machines in parallel mode")
		seed     = flag.Int64("seed", 1, "base scheduling seed (worker i uses seed+i)")
		capacity = flag.Int("capacity", 1<<16, "vertex capacity per pooled machine")
		maxSteps = flag.Int("maxsteps", 0, "deterministic step budget per eval (0 = machine default)")
		timeout  = flag.Duration("timeout", 0, "parallel eval timeout (0 = machine default)")
		queue    = flag.Int("queue", 256, "admission queue depth (all tenants)")
		cacheN   = flag.Int("cache", 1024, "memo-cache entries")
		inflight = flag.Int("inflight", 8, "default per-tenant in-flight limit")
		quota    = flag.Int("quota", 0, "default per-tenant vertex quota (0 = capacity/2)")
		check    = flag.Bool("check", true, "run pooled machines with the invariant checker")
		engine   = flag.String("engine", dgr.EngineInterp, "reduction engine for pooled machines: interp or compiled")
		obsOn    = flag.Bool("obs", false, "enable the observability layer on pooled machines")
		traceR   = flag.Float64("trace-rate", 0, "lineage-trace head-sampling rate (0 disables; 1.0 traces every request)")
		grace    = flag.Duration("grace", 5*time.Second, "drain timeout on shutdown")

		load   = flag.Bool("load", false, "run as load-test client against -url instead of serving")
		url    = flag.String("url", "http://127.0.0.1:8091", "server base URL for -load")
		nTen   = flag.Int("tenants", 4, "-load: concurrent tenants")
		nProg  = flag.Int("programs", 8, "-load: distinct programs per tenant")
		rounds = flag.Int("rounds", 2, "-load: passes over the program list (>1 exercises the warm cache)")
		conc   = flag.Int("concurrency", 2, "-load: parallel streams per tenant")
		out    = flag.String("out", "", "-load: also write the JSON report to this file")
	)
	tenantCfgs := map[string]serve.TenantLimits{}
	flag.Func("tenant",
		"configure a tenant as name=band[:weight] (band: vital|eager|reserve); repeatable",
		func(v string) error {
			name, lim, err := parseTenantFlag(v)
			if err != nil {
				return err
			}
			tenantCfgs[name] = lim
			return nil
		})
	flag.Parse()

	if *load {
		return runLoad(*url, *nTen, *nProg, *rounds, *conc, *out)
	}

	s := serve.New(serve.Options{
		Workers: *workers, PEs: *pes, Parallel: *parallel, Seed: *seed,
		Capacity: *capacity, MaxSteps: *maxSteps, Timeout: *timeout,
		Check: *check, Obs: *obsOn, Engine: *engine,
		QueueDepth: *queue, CacheEntries: *cacheN, TraceRate: *traceR,
		DefaultLimits: serve.TenantLimits{MaxInflight: *inflight, VertexQuota: *quota},
	})
	defer s.Close()
	for name, lim := range tenantCfgs {
		s.SetTenant(name, lim)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()
	stopHTTP := serve.StartHTTP(ln, s.Handler(), func(err error) {
		fmt.Fprintln(os.Stderr, "dgr-serve: http:", err)
	})
	fmt.Printf("dgr-serve: %d workers × %d PEs on http://%s (SIGINT to stop)\n",
		*workers, *pes, ln.Addr())

	<-ctx.Done()
	fmt.Println("dgr-serve: shutting down")
	stopHTTP(*grace)
	return nil
}

// parseTenantFlag parses name=band[:weight].
func parseTenantFlag(v string) (string, serve.TenantLimits, error) {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return "", serve.TenantLimits{}, fmt.Errorf("want name=band[:weight], got %q", v)
	}
	bandName, weightStr, hasWeight := strings.Cut(spec, ":")
	lim := serve.TenantLimits{}
	switch bandName {
	case "vital":
		lim.Band = task.BandVital
	case "eager":
		lim.Band = task.BandEager
	case "reserve":
		lim.Band = task.BandReserve
	default:
		return "", lim, fmt.Errorf("unknown band %q (vital|eager|reserve)", bandName)
	}
	if hasWeight {
		w, err := strconv.Atoi(weightStr)
		if err != nil || w < 1 {
			return "", lim, fmt.Errorf("bad weight %q", weightStr)
		}
		lim.Weight = w
	}
	return name, lim, nil
}

// loadReport is the -load output document.
type loadReport struct {
	workload.ServeLoadReport
	Server     serve.PoolStats `json:"server"`
	Violations []string        `json:"violations"`
}

// runLoad drives the serveload harness over HTTP and enforces the smoke
// criteria: no transport failures, byte-identical reruns, warm-cache hits
// when rounds > 1, and zero invariant violations server-side.
func runLoad(url string, tenants, programs, rounds, conc int, out string) error {
	c := serve.NewClient(url)
	if err := c.WaitHealthy(15 * time.Second); err != nil {
		return err
	}
	rep, err := workload.RunServeLoad(workload.ServeLoadConfig{
		Tenants:     tenants,
		Programs:    workload.ServePrograms(programs),
		Rounds:      rounds,
		Concurrency: conc,
	}, c)
	if err != nil {
		return fmt.Errorf("load run: %w", err)
	}
	pool, violations, err := c.ServerState()
	if err != nil {
		return fmt.Errorf("fetching server state: %w", err)
	}
	if violations == nil {
		violations = []string{}
	}
	full := loadReport{ServeLoadReport: rep, Server: pool, Violations: violations}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(full); err != nil {
		return err
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		fenc := json.NewEncoder(f)
		fenc.SetIndent("", "  ")
		werr := fenc.Encode(full)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}

	switch {
	case rep.OK == 0:
		return fmt.Errorf("no request succeeded (%d failed, %d rejected)", rep.Failed, rep.Rejected)
	case rep.Mismatches > 0:
		return fmt.Errorf("%d rerun(s) returned non-identical results", rep.Mismatches)
	case rounds > 1 && rep.CacheHits == 0:
		return fmt.Errorf("warm rounds produced zero memo-cache hits")
	case len(violations) > 0:
		return fmt.Errorf("server reported %d invariant violation(s): %s", len(violations), violations[0])
	}
	fmt.Fprintf(os.Stderr,
		"dgr-serve: load ok — %d requests, %.0f req/s, %d cache hits, 0 violations\n",
		rep.Requests, rep.ReqPerSec, rep.CacheHits)
	return nil
}
