// Command dgr-check sweeps adversarial seeds through the machine with the
// invariant checker armed, across scheduling configurations: deterministic,
// parallel, fabric, and lossy fabric. Every run records its schedule; on the
// first violation (or wrong result) the schedule is written as a JSONL
// replay log and the sweep fails.
//
// Usage:
//
//	dgr-check                        # 64 seeds x {det,parallel,fabric,fabdrop}
//	dgr-check -seeds 8 -configs det  # quick local sweep
//	dgr-check -inject 3 -seeds 4     # validate the checker: inject mark
//	                                 # faults, require they are caught and
//	                                 # that the recording replays to the
//	                                 # same violation
//	dgr-check -replay dgr-check-fail-churn-parallel-seed7.jsonl
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dgr"
	"dgr/internal/check"
	"dgr/internal/lang"
	"dgr/internal/workload"
)

type sweepProgram struct {
	Name string
	Src  string
	Want int64
}

// sweepPrograms is the sweep corpus: scaled-down versions of the benchmark
// programs, small enough that a 64-seed x 4-config sweep stays in seconds
// while still exercising reduction, list churn (GC pressure), and
// speculation-free recursion. -gen appends property-generated programs.
var sweepPrograms = []sweepProgram{
	{
		Name: "fib",
		Src:  "let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 11",
		Want: 89,
	},
	{
		Name: "churn",
		Src: `let upto a b = if a > b then [] else a : upto (a + 1) b;
		          len xs = if isnil xs then 0 else 1 + len (tail xs);
		          go n acc = if n == 0 then acc else go (n - 1) (acc + len (upto 1 12))
		      in go 10 0`,
		Want: 120,
	},
	{
		Name: "sumsquares",
		Src: `let map f xs = if isnil xs then [] else f (head xs) : map f (tail xs);
		          upto a b = if a > b then [] else a : upto (a + 1) b;
		          sum xs = if isnil xs then 0 else head xs + sum (tail xs)
		      in sum (map (\x. x * x) (upto 1 10))`,
		Want: 385,
	},
}

var allConfigs = []string{"det", "parallel", "fabric", "fabdrop"}

type flags struct {
	seeds      int
	pes        int
	checkEvery int
	gcInterval int
	mtEvery    int
	configs    string
	engines    string
	programs   string
	gen        int
	genSeed    int64
	inject     int64
	out        string
	timeout    time.Duration
	replay     string
	steal      bool
	verbose    bool
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dgr-check:", err)
		os.Exit(1)
	}
}

func run() error {
	var f flags
	flag.IntVar(&f.seeds, "seeds", 64, "seeds per (program, config) cell")
	flag.IntVar(&f.pes, "pes", 4, "number of processing elements")
	flag.IntVar(&f.checkEvery, "checkevery", 1024, "sample every k-th task execution")
	flag.IntVar(&f.gcInterval, "gcinterval", 300, "deterministic steps between GC cycles")
	flag.IntVar(&f.mtEvery, "mtevery", 2, "run M_T every k-th cycle")
	flag.StringVar(&f.configs, "configs", strings.Join(allConfigs, ","), "comma-separated configs to sweep")
	flag.StringVar(&f.engines, "engines", dgr.EngineInterp, "comma-separated reduction engines to sweep (interp,compiled)")
	flag.StringVar(&f.programs, "programs", "", "comma-separated sweep programs (default: all)")
	flag.IntVar(&f.gen, "gen", 0, "append n property-generated programs to the sweep corpus")
	flag.Int64Var(&f.genSeed, "genseed", 20260808, "seed for the program generator (-gen)")
	flag.Int64Var(&f.inject, "inject", 0, "arm the mark-skip fault injector (1/n of marks dropped); the sweep then must catch it")
	flag.StringVar(&f.out, "out", ".", "directory for replay logs written on failure")
	flag.DurationVar(&f.timeout, "timeout", 5*time.Second, "parallel evaluation timeout")
	flag.StringVar(&f.replay, "replay", "", "replay a recorded schedule log instead of sweeping")
	flag.BoolVar(&f.steal, "steal", true, "cross-PE work stealing (parallel config; -steal=false sweeps with stealing off)")
	flag.BoolVar(&f.verbose, "v", false, "log every run")
	flag.Parse()

	if f.gen > 0 {
		genPrograms = generatePrograms(f.gen, f.genSeed)
	}
	if f.replay != "" {
		return replayLog(f)
	}
	if f.inject > 0 {
		return injectSweep(f)
	}
	return sweep(f)
}

// genPrograms holds the property-generated tail of the sweep corpus
// (-gen n -genseed s). Generation is deterministic in the seed, so a
// failure in genK replays by rerunning with the same -gen/-genseed flags.
var genPrograms []sweepProgram

// generatePrograms draws n closed integer programs from the property
// generator. Each comes with its reference value (the generator validates
// against the lang interpreter), so the sweep checks them like any
// hand-written corpus entry.
func generatePrograms(n int, seed int64) []sweepProgram {
	g := lang.NewGen(seed, lang.GenConfig{})
	out := make([]sweepProgram, 0, n)
	for i := 1; i <= n; i++ {
		_, src, want := g.Program()
		out = append(out, sweepProgram{
			Name: fmt.Sprintf("gen%d", i),
			Src:  src,
			Want: want,
		})
	}
	return out
}

// engineList parses -engines into validated dgr engine names.
func engineList(f flags) ([]string, error) {
	var out []string
	for _, e := range strings.Split(f.engines, ",") {
		e = strings.TrimSpace(e)
		switch e {
		case "":
		case dgr.EngineInterp, dgr.EngineCompiled:
			out = append(out, e)
		default:
			return nil, fmt.Errorf("unknown engine %q (have %s,%s)", e, dgr.EngineInterp, dgr.EngineCompiled)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no engines selected")
	}
	return out, nil
}

// cellName renders a (config, engine) cell for logs and artifact names;
// the plain interpreter keeps the historical bare-config form.
func cellName(config, engine string) string {
	if engine == dgr.EngineInterp {
		return config
	}
	return config + "+" + engine
}

func optionsFor(f flags, config string, seed int64, record bool) (dgr.Options, error) {
	o := dgr.Options{
		PEs:        f.pes,
		Seed:       seed,
		MTEvery:    f.mtEvery,
		GCInterval: f.gcInterval,
		Capacity:   1 << 12,
		// The sweep corpus finishes in well under a million deterministic
		// steps; a tight budget keeps deliberately corrupted runs (-inject)
		// from grinding through the facade's 200M-step default before
		// reporting the violations they already recorded.
		MaxSteps:   4_000_000,
		Timeout:    f.timeout,
		Check:      true,
		CheckEvery: f.checkEvery,

		RecordSchedule: record,
		FaultSkipMark:  f.inject,
		DisableSteal:   !f.steal,
	}
	switch config {
	case "det":
		o.Adversarial = true
	case "parallel":
		o.Parallel = true
	case "fabric":
		o.Adversarial = true
		o.Fabric = true
	case "fabdrop":
		o.Adversarial = true
		o.Fabric = true
		o.DropRate = 0.3
	default:
		return o, fmt.Errorf("unknown config %q (have %s)", config, strings.Join(allConfigs, ","))
	}
	return o, nil
}

// sweep runs the clean matrix: every cell must produce the right value with
// zero violations — there are no retries. The sweep corpus is deadlock-free,
// so an ErrDeadlock from any config is a detector bug (the epoch-confirmed
// verdict protocol exists precisely so this can be a hard failure rather
// than a counted flake), and it fails the sweep like any other wrong answer,
// after writing the replay log and flight dump. Every run arms the flight
// recorder with the output directory, so a failing machine auto-dumps its
// last scheduler/collector/fabric events next to the replay log.
func sweep(f flags) error {
	configs, programs, err := selections(f)
	if err != nil {
		return err
	}
	engines, err := engineList(f)
	if err != nil {
		return err
	}
	runs := 0
	start := time.Now()
	for _, p := range programs {
		for _, config := range configs {
			for _, eng := range engines {
				cell := cellName(config, eng)
				for seed := int64(1); seed <= int64(f.seeds); seed++ {
					runs++
					o := mustOptions(f, config, seed, true)
					o.Engine = eng
					o.ObsFlightDir = f.out // auto-dump flight evidence on failure
					m := dgr.New(o)
					v, evalErr := m.Eval(p.Src)
					m.Close()
					bad := ""
					switch {
					case m.CheckErr() != nil:
						bad = fmt.Sprintf("invariant violations:\n  %s",
							strings.Join(m.CheckViolations(), "\n  "))
					case errors.Is(evalErr, dgr.ErrDeadlock):
						bad = fmt.Sprintf("spurious deadlock verdict on a deadlock-free program: %v", evalErr)
					case evalErr != nil:
						bad = fmt.Sprintf("eval error: %v", evalErr)
					case v.Int != p.Want:
						bad = fmt.Sprintf("wrong result: got %d, want %d", v.Int, p.Want)
					}
					if bad != "" {
						path, werr := writeReplayLog(f, m, p.Name, cell, seed)
						if werr != nil {
							path = fmt.Sprintf("(log write failed: %v)", werr)
						}
						flight := persistFlightDump(f, m,
							fmt.Sprintf("dgr-check-fail-%s-%s-seed%d.flight.jsonl", p.Name, cell, seed))
						return fmt.Errorf("%s/%s seed %d FAILED: %s\nreplay log: %s\nflight dump: %s",
							p.Name, cell, seed, bad, path, flight)
					}
					if f.verbose {
						st := m.Stats()
						fmt.Printf("ok %s/%s seed %d: tasks=%d cycles=%d checks=%d retracted=%d\n",
							p.Name, cell, seed, st.TasksExecuted, st.Cycles, st.CheckRuns, st.DeadlockRetracted)
					}
				}
			}
		}
	}
	fmt.Printf("dgr-check: %d runs clean (%d seeds x %d configs x %d engines x %d programs, 0 false-deadlock retries — retries are gone) in %v\n",
		runs, f.seeds, len(configs), len(engines), len(programs), time.Since(start).Round(time.Millisecond))
	return nil
}

// persistFlightDump renames a machine's auto-dumped flight artifact to a
// stable name derived from the failing cell, so it sits next to the replay
// log under a name that identifies the run. Returns the final path, or
// "(none)" when the machine never dumped.
func persistFlightDump(f flags, m *dgr.Machine, name string) string {
	src := m.FlightDumpPath()
	if src == "" {
		return "(none)"
	}
	dst := filepath.Join(f.out, name)
	if err := os.Rename(src, dst); err != nil {
		return src // keep the timestamped original rather than lose it
	}
	return dst
}

// injectSweep validates the checker itself: with the mark-skip fault armed,
// at least one run per program must be caught, and the first caught
// recording must replay on a fresh deterministic machine to a reproduced
// violation.
func injectSweep(f flags) error {
	configs, programs, err := selections(f)
	if err != nil {
		return err
	}
	for _, p := range programs {
		caught := 0
		replayed := false
		for _, config := range configs {
			for seed := int64(1); seed <= int64(f.seeds); seed++ {
				m := dgr.New(mustOptions(f, config, seed, true))
				m.Eval(p.Src) // outcome irrelevant: the run is deliberately corrupted
				m.Close()
				if m.CheckErr() == nil {
					continue
				}
				caught++
				if f.verbose {
					fmt.Printf("caught %s/%s seed %d: %v\n", p.Name, config, seed, m.CheckErr())
				}
				if !replayed {
					if err := replayReproduces(f, m, p.Src, seed); err != nil {
						return fmt.Errorf("%s/%s seed %d: %w", p.Name, config, seed, err)
					}
					replayed = true
				}
			}
		}
		if caught == 0 {
			return fmt.Errorf("%s: injected fault (1/%d marks dropped) never caught in %d runs — checker asleep",
				p.Name, f.inject, len(configs)*f.seeds)
		}
		fmt.Printf("dgr-check: %s: injected fault caught in %d runs, first recording replayed to the violation\n",
			p.Name, caught)
	}
	return nil
}

// replayReproduces re-drives a violating recording on a fresh deterministic
// machine (same seed, PEs, and content-addressed fault) and requires the
// violation to come back. Divergence after the violation is tolerated: a
// corrupted machine recycles vertices unpredictably once restructuring has
// raced its mutators.
func replayReproduces(f flags, m *dgr.Machine, src string, seed int64) error {
	events, err := m.ScheduleEvents()
	if err != nil {
		return err
	}
	o, err := optionsFor(f, "det", seed, false)
	if err != nil {
		return err
	}
	o.Adversarial = false // replay ignores pop policy; keep the machine plain
	m2 := dgr.New(o)
	defer m2.Close()
	root, err := m2.Compile(src)
	if err != nil {
		return err
	}
	rerr := m2.ReplaySchedule(root, events)
	if m2.CheckErr() == nil {
		return fmt.Errorf("replay did not reproduce the violation (replay err: %v)", rerr)
	}
	return nil
}

// replayLog re-drives a recorded schedule from disk and reports what the
// checker sees.
func replayLog(f flags) error {
	file, err := os.Open(f.replay)
	if err != nil {
		return err
	}
	events, err := check.ReadJSONL(file)
	file.Close()
	if err != nil {
		return err
	}
	if len(events) == 0 || events[0].Ev != check.EvMeta {
		return fmt.Errorf("%s: no meta header; cannot reconstruct the run", f.replay)
	}
	meta := events[0]
	src, ok := sourceFor(meta.Program)
	if !ok {
		return fmt.Errorf("unknown program %q in meta header", meta.Program)
	}
	fmt.Printf("replaying %s: program=%s config=%s seed=%d pes=%d events=%d\n",
		f.replay, meta.Program, meta.Config, meta.Seed, meta.PEs, len(events)-1)
	o, err := optionsFor(f, "det", meta.Seed, false)
	if err != nil {
		return err
	}
	o.Adversarial = false
	o.PEs = meta.PEs
	o.MTEvery = meta.MTEvery
	// The engine is part of the recorded cell name: a compiled-engine
	// schedule only replays on a compiled-engine machine.
	if strings.HasSuffix(meta.Config, "+"+dgr.EngineCompiled) {
		o.Engine = dgr.EngineCompiled
	}
	m := dgr.New(o)
	defer m.Close()
	root, err := m.Compile(src)
	if err != nil {
		return err
	}
	rerr := m.ReplaySchedule(root, events)
	for _, v := range m.CheckViolations() {
		fmt.Println("violation:", v)
	}
	if rerr != nil {
		return fmt.Errorf("replay: %w", rerr)
	}
	if cerr := m.CheckErr(); cerr != nil {
		return cerr
	}
	fmt.Println("replay clean")
	return nil
}

// writeReplayLog dumps a failed run's schedule, prefixed with a meta header
// so -replay can reconstruct the machine.
func writeReplayLog(f flags, m *dgr.Machine, program, config string, seed int64) (string, error) {
	path := filepath.Join(f.out, fmt.Sprintf("dgr-check-fail-%s-%s-seed%d.jsonl", program, config, seed))
	file, err := os.Create(path)
	if err != nil {
		return path, err
	}
	defer file.Close()
	header := check.NewRecorder()
	header.Meta(program, config, seed, f.pes, f.mtEvery)
	if err := header.WriteJSONL(file); err != nil {
		return path, err
	}
	if err := m.WriteScheduleJSONL(file); err != nil {
		return path, err
	}
	return path, nil
}

func selections(f flags) (configs []string, programs []sweepProgram, err error) {
	for _, c := range strings.Split(f.configs, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if _, err := optionsFor(f, c, 1, false); err != nil {
			return nil, nil, err
		}
		configs = append(configs, c)
	}
	if len(configs) == 0 {
		return nil, nil, fmt.Errorf("no configs selected")
	}
	want := map[string]bool{}
	for _, p := range strings.Split(f.programs, ",") {
		if p = strings.TrimSpace(p); p != "" {
			want[p] = true
		}
	}
	all := len(want) == 0
	for _, p := range sweepPrograms {
		if all || want[p.Name] {
			programs = append(programs, p)
			delete(want, p.Name)
		}
	}
	for _, p := range genPrograms {
		if all || want[p.Name] {
			programs = append(programs, p)
			delete(want, p.Name)
		}
	}
	for p := range want {
		return nil, nil, fmt.Errorf("unknown sweep program %q", p)
	}
	return configs, programs, nil
}

func mustOptions(f flags, config string, seed int64, record bool) dgr.Options {
	o, err := optionsFor(f, config, seed, record)
	if err != nil {
		panic(err) // config was validated by selections
	}
	return o
}

// sourceFor resolves a program name recorded in a meta header: the sweep
// corpus first (including any -gen tail regenerated from -genseed), then
// the full benchmark corpus.
func sourceFor(name string) (string, bool) {
	for _, p := range sweepPrograms {
		if p.Name == name {
			return p.Src, true
		}
	}
	for _, p := range genPrograms {
		if p.Name == name {
			return p.Src, true
		}
	}
	if p, ok := workload.Programs[name]; ok {
		return p.Src, true
	}
	return "", false
}
