// Command dgr-trace runs a program (or a builtin scenario) and emits a
// Graphviz DOT rendering of the computation graph, with deadlocked
// vertices highlighted — the tool for visually reproducing the paper's
// figures. With -jsonl it instead emits the machine's event trace
// (including the fabric message lifecycle) as JSON Lines.
//
// With -analyze it switches to lineage mode: read an assembled trace
// document (a /debug/traces.json URL, a file, or "-" for stdin), rebuild
// each trace's spawn DAG from its raw spans, and print the critical path
// with per-category blame (exec / queue / steal / fabric / gc / serve).
// With -lineage it runs the given program under full head sampling and
// analyzes the resulting traces directly.
//
// Usage:
//
//	dgr-trace -e 'let x = x + 1 in x' > graph.dot
//	dgr-trace -scenario fig32 > fig32.dot
//	dgr-trace -e '1+2' -phase before > before.dot
//	dgr-trace -e 'fib...' -fabric -drop 0.1 -jsonl > events.jsonl
//	dgr-trace -analyze http://127.0.0.1:8091/debug/traces.json
//	dgr-trace -e 'fib...' -pes 4 -lineage
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dgr"
	"dgr/internal/analysis"
	"dgr/internal/graph"
	"dgr/internal/obs"
	"dgr/internal/trace"
	"dgr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dgr-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expr     = flag.String("e", "", "program text")
		scenario = flag.String("scenario", "", "builtin scenario: fig31 or fig32")
		phase    = flag.String("phase", "after", "snapshot point: before | after evaluation")
		pes      = flag.Int("pes", 2, "processing elements")
		seed     = flag.Int64("seed", 1, "scheduling seed")
		spec     = flag.Bool("spec", false, "speculative if branches")
		jsonl    = flag.Bool("jsonl", false, "emit the event trace as JSON Lines instead of DOT")
		fab      = flag.Bool("fabric", false, "route cross-PE spawns through the simulated fabric")
		batch    = flag.Int("batch", 0, "fabric batch size (0 = default)")
		drop     = flag.Float64("drop", 0, "fabric per-transmission drop rate")
		latency  = flag.Duration("latency", 0, "fabric link latency")
		analyze  = flag.String("analyze", "", "analyze an assembled trace document: URL, file path, or - for stdin")
		lineage  = flag.Bool("lineage", false, "run -e under full lineage sampling and analyze its traces")
		asJSON   = flag.Bool("json", false, "with -analyze/-lineage: emit the recomputed TraceDoc as JSON")
		parallel = flag.Bool("parallel", false, "with -lineage: run the machine in parallel mode")
	)
	flag.Parse()

	switch {
	case *analyze != "":
		return analyzeDoc(*analyze, *asJSON)
	case *lineage:
		if *expr == "" {
			return fmt.Errorf("-lineage requires -e")
		}
		return runLineage(*expr, dgr.Options{
			PEs: *pes, Seed: *seed, SpeculativeIf: *spec, MTEvery: 1, Capacity: 1 << 14,
			Parallel: *parallel, Fabric: *fab, BatchSize: *batch, DropRate: *drop,
			LinkLatency: *latency, TraceRate: 1,
		}, *asJSON)
	case *scenario != "":
		return dumpScenario(*scenario)
	case *expr != "":
		opts := dgr.Options{
			PEs: *pes, Seed: *seed, SpeculativeIf: *spec, MTEvery: 1, Capacity: 1 << 14,
			Fabric: *fab, BatchSize: *batch, DropRate: *drop, LinkLatency: *latency,
		}
		if *jsonl {
			opts.TraceCapacity = 1 << 18
			return dumpJSONL(*expr, opts)
		}
		return dumpProgram(*expr, *phase, opts)
	default:
		return fmt.Errorf("use -e or -scenario")
	}
}

func dumpScenario(name string) error {
	var sc *workload.Scenario
	switch name {
	case "fig31":
		sc = workload.Fig31(2)
	case "fig32":
		sc = workload.Fig32(2)
	default:
		return fmt.Errorf("unknown scenario %q (fig31, fig32)", name)
	}
	res := analysis.Analyze(sc.Store.Snapshot(), sc.Root, sc.Tasks)
	hl := map[graph.VertexID]string{}
	for id := range res.DLv {
		hl[id] = "salmon"
	}
	for id := range res.Gar {
		hl[id] = "gray80"
	}
	fmt.Fprintf(os.Stderr, "scenario %s: |R|=%d |T|=%d |GAR|=%d |DL|=%d\n",
		name, len(res.R), len(res.T), len(res.Gar), len(res.DLv))
	return trace.WriteDOT(os.Stdout, sc.Store.Snapshot(), sc.Root, trace.DOTOptions{Highlight: hl})
}

func dumpProgram(src, phase string, opts dgr.Options) error {
	m := dgr.New(opts)
	defer m.Close()
	root, err := m.Compile(src)
	if err != nil {
		return err
	}
	if phase == "before" {
		return trace.WriteDOT(os.Stdout, m.Snapshot(), root, trace.DOTOptions{})
	}
	v, evalErr := m.EvalNode(root)
	if evalErr != nil {
		fmt.Fprintf(os.Stderr, "evaluation: %v\n", evalErr)
	} else {
		fmt.Fprintf(os.Stderr, "result: %s\n", v)
	}
	hl := map[graph.VertexID]string{}
	for _, id := range m.Deadlocked() {
		hl[id] = "salmon"
	}
	return trace.WriteDOT(os.Stdout, m.Snapshot(), root, trace.DOTOptions{Highlight: hl})
}

func dumpJSONL(src string, opts dgr.Options) error {
	m := dgr.New(opts)
	defer m.Close()
	v, evalErr := m.Eval(src)
	if evalErr != nil {
		fmt.Fprintf(os.Stderr, "evaluation: %v\n", evalErr)
	} else {
		fmt.Fprintf(os.Stderr, "result: %s\n", v)
	}
	if opts.Fabric {
		for _, ls := range m.FabricStats() {
			fmt.Fprintf(os.Stderr, "link %d->%d: sent=%d delivered=%d batches=%d dropped=%d retries=%d dup=%d lat[µs]=%s\n",
				ls.From, ls.To, ls.Sent, ls.Delivered, ls.Batches,
				ls.Dropped, ls.Retries, ls.Duplicates, ls.Latency)
		}
	}
	return m.WriteTraceJSONL(os.Stdout)
}

// analyzeDoc loads an obs.TraceDoc (URL, file, or stdin), reassembles every
// trace from its raw spans, and prints the critical-path analysis.
func analyzeDoc(src string, asJSON bool) error {
	var r io.ReadCloser
	switch {
	case src == "-":
		r = os.Stdin
	case strings.HasPrefix(src, "http://"), strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		r = resp.Body
	default:
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		r = f
	}
	defer r.Close()
	var doc obs.TraceDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("decoding trace document: %w", err)
	}
	// Reassemble from the raw spans rather than trusting the document's
	// precomputed analysis: the tool then works on any span dump.
	var spans []obs.TraceSpan
	for _, tr := range doc.Traces {
		spans = append(spans, tr.Spans...)
	}
	spans = append(spans, doc.Globals...)
	return report(spans, doc.Dropped, asJSON)
}

// runLineage evaluates src under full head sampling and analyzes the
// machine's own trace sink.
func runLineage(src string, opts dgr.Options, asJSON bool) error {
	m := dgr.New(opts)
	defer m.Close()
	v, err := m.Eval(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaluation: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "result: %s\n", v)
	}
	spans, dropped := m.TraceSink().Spans()
	return report(spans, dropped, asJSON)
}

// report assembles spans into traces and prints each critical path with
// per-category blame, or re-emits the recomputed document as JSON.
func report(spans []obs.TraceSpan, dropped uint64, asJSON bool) error {
	traces, globals := obs.AssembleTraces(spans)
	if asJSON {
		doc := obs.TraceDoc{Globals: globals, Dropped: dropped}
		for _, tr := range traces {
			crit := obs.CriticalPath(tr, globals)
			doc.Traces = append(doc.Traces, obs.TraceReport{
				ID: tr.ID, Start: tr.Start, End: tr.End, TotalNs: crit.TotalNs,
				Orphans: tr.Orphans, Spans: tr.Spans, Crit: crit,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	if len(traces) == 0 {
		fmt.Println("no traces")
		return nil
	}
	for _, tr := range traces {
		crit := obs.CriticalPath(tr, globals)
		fmt.Printf("trace %x: total %s, %d spans", tr.ID, time.Duration(crit.TotalNs), len(tr.Spans))
		if tr.Orphans > 0 {
			fmt.Printf(" (%d orphaned)", tr.Orphans)
		}
		fmt.Println()
		type kv struct {
			cat string
			ns  int64
		}
		var blame []kv
		for cat, ns := range crit.Blame {
			blame = append(blame, kv{cat, ns})
		}
		sort.Slice(blame, func(i, j int) bool { return blame[i].ns > blame[j].ns })
		for _, b := range blame {
			pct := 0.0
			if crit.TotalNs > 0 {
				pct = 100 * float64(b.ns) / float64(crit.TotalNs)
			}
			fmt.Printf("  %-8s %12s  %5.1f%%\n", b.cat, time.Duration(b.ns), pct)
		}
		fmt.Printf("  critical path (%d segments):\n", len(crit.Path))
		for _, sg := range crit.Path {
			fmt.Printf("    %-8s %-12s pe=%-3d %12s\n",
				sg.Cat, sg.Name, sg.PE, time.Duration(sg.End-sg.Start))
		}
	}
	if dropped > 0 {
		fmt.Printf("(%d spans evicted from the ring before assembly)\n", dropped)
	}
	return nil
}
