// Command dgr-trace runs a program (or a builtin scenario) and emits a
// Graphviz DOT rendering of the computation graph, with deadlocked
// vertices highlighted — the tool for visually reproducing the paper's
// figures. With -jsonl it instead emits the machine's event trace
// (including the fabric message lifecycle) as JSON Lines.
//
// Usage:
//
//	dgr-trace -e 'let x = x + 1 in x' > graph.dot
//	dgr-trace -scenario fig32 > fig32.dot
//	dgr-trace -e '1+2' -phase before > before.dot
//	dgr-trace -e 'fib...' -fabric -drop 0.1 -jsonl > events.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"dgr"
	"dgr/internal/analysis"
	"dgr/internal/graph"
	"dgr/internal/trace"
	"dgr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dgr-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expr     = flag.String("e", "", "program text")
		scenario = flag.String("scenario", "", "builtin scenario: fig31 or fig32")
		phase    = flag.String("phase", "after", "snapshot point: before | after evaluation")
		pes      = flag.Int("pes", 2, "processing elements")
		seed     = flag.Int64("seed", 1, "scheduling seed")
		spec     = flag.Bool("spec", false, "speculative if branches")
		jsonl    = flag.Bool("jsonl", false, "emit the event trace as JSON Lines instead of DOT")
		fab      = flag.Bool("fabric", false, "route cross-PE spawns through the simulated fabric")
		batch    = flag.Int("batch", 0, "fabric batch size (0 = default)")
		drop     = flag.Float64("drop", 0, "fabric per-transmission drop rate")
		latency  = flag.Duration("latency", 0, "fabric link latency")
	)
	flag.Parse()

	switch {
	case *scenario != "":
		return dumpScenario(*scenario)
	case *expr != "":
		opts := dgr.Options{
			PEs: *pes, Seed: *seed, SpeculativeIf: *spec, MTEvery: 1, Capacity: 1 << 14,
			Fabric: *fab, BatchSize: *batch, DropRate: *drop, LinkLatency: *latency,
		}
		if *jsonl {
			opts.TraceCapacity = 1 << 18
			return dumpJSONL(*expr, opts)
		}
		return dumpProgram(*expr, *phase, opts)
	default:
		return fmt.Errorf("use -e or -scenario")
	}
}

func dumpScenario(name string) error {
	var sc *workload.Scenario
	switch name {
	case "fig31":
		sc = workload.Fig31(2)
	case "fig32":
		sc = workload.Fig32(2)
	default:
		return fmt.Errorf("unknown scenario %q (fig31, fig32)", name)
	}
	res := analysis.Analyze(sc.Store.Snapshot(), sc.Root, sc.Tasks)
	hl := map[graph.VertexID]string{}
	for id := range res.DLv {
		hl[id] = "salmon"
	}
	for id := range res.Gar {
		hl[id] = "gray80"
	}
	fmt.Fprintf(os.Stderr, "scenario %s: |R|=%d |T|=%d |GAR|=%d |DL|=%d\n",
		name, len(res.R), len(res.T), len(res.Gar), len(res.DLv))
	return trace.WriteDOT(os.Stdout, sc.Store.Snapshot(), sc.Root, trace.DOTOptions{Highlight: hl})
}

func dumpProgram(src, phase string, opts dgr.Options) error {
	m := dgr.New(opts)
	defer m.Close()
	root, err := m.Compile(src)
	if err != nil {
		return err
	}
	if phase == "before" {
		return trace.WriteDOT(os.Stdout, m.Snapshot(), root, trace.DOTOptions{})
	}
	v, evalErr := m.EvalNode(root)
	if evalErr != nil {
		fmt.Fprintf(os.Stderr, "evaluation: %v\n", evalErr)
	} else {
		fmt.Fprintf(os.Stderr, "result: %s\n", v)
	}
	hl := map[graph.VertexID]string{}
	for _, id := range m.Deadlocked() {
		hl[id] = "salmon"
	}
	return trace.WriteDOT(os.Stdout, m.Snapshot(), root, trace.DOTOptions{Highlight: hl})
}

func dumpJSONL(src string, opts dgr.Options) error {
	m := dgr.New(opts)
	defer m.Close()
	v, evalErr := m.Eval(src)
	if evalErr != nil {
		fmt.Fprintf(os.Stderr, "evaluation: %v\n", evalErr)
	} else {
		fmt.Fprintf(os.Stderr, "result: %s\n", v)
	}
	if opts.Fabric {
		for _, ls := range m.FabricStats() {
			fmt.Fprintf(os.Stderr, "link %d->%d: sent=%d delivered=%d batches=%d dropped=%d retries=%d dup=%d lat[µs]=%s\n",
				ls.From, ls.To, ls.Sent, ls.Delivered, ls.Batches,
				ls.Dropped, ls.Retries, ls.Duplicates, ls.Latency)
		}
	}
	return m.WriteTraceJSONL(os.Stdout)
}
