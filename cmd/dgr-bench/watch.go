package main

// -watch: a live terminal dashboard. A parallel machine with the
// observability layer enabled evaluates one corpus program in a loop while
// the terminal redraws a per-PE utilization/queue-depth/free-vertex table
// every refresh interval, fed from the obs time-series rings.

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"dgr"
	"dgr/internal/obs"
	"dgr/internal/workload"
)

// watchRun drives the dashboard until the duration elapses (0 = until
// interrupted), an eval fails, or the user hits Ctrl-C.
func watchRun(name string, pes int, interval, duration time.Duration) error {
	p, ok := workload.Programs[name]
	if !ok {
		return fmt.Errorf("unknown corpus program %q (try dgr-run -list)", name)
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	sample := interval / 4
	if sample < time.Millisecond {
		sample = time.Millisecond
	}
	m := dgr.New(dgr.Options{
		PEs:            pes,
		Parallel:       true,
		Fabric:         true,
		Obs:            true,
		ObsSampleEvery: sample,
	})
	defer m.Close()

	var evals, flakes atomic.Int64
	var lastFlake atomic.Value
	stop := make(chan struct{})
	evalDone := make(chan struct{})
	go func() {
		defer close(evalDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, err := m.Eval(p.Src)
			switch {
			case err != nil:
				// Known rare parallel-mode race (see ROADMAP.md): spurious
				// deadlock or a corrupted run. The corpus is deadlock-free
				// and deterministic, so count it and keep the dashboard up.
				flakes.Add(1)
				lastFlake.Store(err.Error())
			case v.Int != p.Want:
				flakes.Add(1)
				lastFlake.Store(fmt.Sprintf("%s = %v, want %d", name, v, p.Want))
			default:
				evals.Add(1)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var deadline <-chan time.Time
	if duration > 0 {
		t := time.NewTimer(duration)
		defer t.Stop()
		deadline = t.C
	}

	start := time.Now()
	for running := true; running; {
		select {
		case <-tick.C:
		case <-sig:
			running = false
		case <-deadline:
			running = false
		}
		renderWatch(os.Stdout, m, name, pes, start,
			evals.Load(), flakes.Load(), loadErrString(&lastFlake))
	}
	close(stop)
	<-evalDone
	fmt.Printf("\nwatch done: %d evals of %s in %s (%d flaked, known parallel race)\n",
		evals.Load(), name, time.Since(start).Round(time.Millisecond), flakes.Load())
	return nil
}

// balanceBar renders one PE's share of total executions as a fixed-width
// gauge, e.g. "[#####     ] 25.0%". An even split across N PEs fills 1/N.
func balanceBar(execs []uint64, pe int, total uint64) string {
	const width = 10
	if pe >= len(execs) || total == 0 {
		return fmt.Sprintf("[%s]   - ", strings.Repeat(" ", width))
	}
	frac := float64(execs[pe]) / float64(total)
	filled := int(frac*width + 0.5)
	if filled > width {
		filled = width
	}
	return fmt.Sprintf("[%s%s] %4.1f%%",
		strings.Repeat("#", filled), strings.Repeat(" ", width-filled), 100*frac)
}

func loadErrString(v *atomic.Value) string {
	if s, ok := v.Load().(string); ok {
		return s
	}
	return ""
}

// renderWatch redraws one dashboard frame: clear screen, machine digest
// line, then one row per PE with instantaneous and windowed utilization,
// queue depth per priority band, partition free count, and executions.
func renderWatch(w *os.File, m *dgr.Machine, name string, pes int,
	start time.Time, evals, flakes int64, errMsg string) {
	var b strings.Builder
	b.WriteString("\x1b[H\x1b[2J") // cursor home + clear screen
	fmt.Fprintf(&b, "dgr-bench -watch   %s on %d PEs (parallel)   up %s   %d evals",
		name, pes, time.Since(start).Round(time.Second), evals)
	if flakes > 0 {
		fmt.Fprintf(&b, "   %d flakes", flakes)
	}
	s := m.Stats()
	fmt.Fprintf(&b, "\nheap %d vertices (%d free)   executed %d   gc cycles %d   reclaimed %d\n",
		m.TotalVertices(), m.FreeVertices(), s.TasksExecuted, s.Cycles, s.Reclaimed)
	fmt.Fprintf(&b, "steals %d (%d tasks moved)   idle polls %d\n\n",
		s.Steals, s.StolenTasks, s.IdlePolls)

	// Exec balance: each PE's share of all executions, as a bar — with
	// stealing on, heavily skewed bars mean the thieves never got traction.
	execsByPE := m.ExecsPerPE()
	var totalExecs uint64
	for _, n := range execsByPE {
		totalExecs += n
	}

	fmt.Fprintf(&b, "PE    util  u-p50  u-p95")
	for _, bn := range obs.BandNames {
		fmt.Fprintf(&b, "  %8s", bn)
	}
	fmt.Fprintf(&b, "  %8s  %10s  %s\n", "free", "execs", "balance")
	if snap := m.ObsSeries(); snap != nil {
		for pe := range snap.Summary {
			sum := snap.Summary[pe]
			var last obs.PEPoint
			if n := len(snap.PE[pe]); n > 0 {
				last = snap.PE[pe][n-1]
			}
			fmt.Fprintf(&b, "%2d   %5.2f  %5.2f  %5.2f", pe, last.Util, sum.UtilP50, sum.UtilP95)
			for _, d := range last.Bands {
				fmt.Fprintf(&b, "  %8d", d)
			}
			fmt.Fprintf(&b, "  %8d  %10d  %s\n", last.Free, last.Execs,
				balanceBar(execsByPE, pe, totalExecs))
		}
	}
	if errMsg != "" {
		fmt.Fprintf(&b, "\nlast flake: %s\n", errMsg)
	}
	b.WriteString("\nCtrl-C to stop\n")
	w.WriteString(b.String()) //nolint:errcheck // best-effort terminal paint
}
