// Command dgr-bench regenerates the experiment tables of EXPERIMENTS.md:
// one per figure/scenario of the paper plus the quantitative evaluation of
// its claims.
//
// Usage:
//
//	dgr-bench                 # run everything
//	dgr-bench -exp thm1,race  # run a subset
//	dgr-bench -quick          # small workloads (smoke test)
//	dgr-bench -list           # list experiment IDs
//	dgr-bench -json           # hot-path benchmark suite as JSON
//	dgr-bench -json -quick    # same, one iteration per case (CI smoke)
//	dgr-bench -watch          # live per-PE dashboard (parallel machine + obs)
//	dgr-bench -watch -name churn -pes 8 -interval 500ms -for 30s
//	dgr-bench -obscheck       # gate obs/tracing overhead at -obslimit (CI guard)
//
// -json replaces the experiment tables with the internal/bench hot-path
// suite (end-to-end reduction, PE scaling sweep, GC cycle) and emits a
// machine-readable report on stdout; BENCH_0.json at the repo root is a
// checked-in baseline in this format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dgr/internal/bench"
	"dgr/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dgr-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick    = flag.Bool("quick", false, "shrink workloads")
		seed     = flag.Int64("seed", 7, "workload seed")
		list     = flag.Bool("list", false, "list experiment IDs")
		jsonR    = flag.Bool("json", false, "run the hot-path benchmark suite, emit JSON report")
		cpus     = flag.String("cpu", "", "comma-separated GOMAXPROCS values to sweep the -json suite over (e.g. 1,2,4)")
		obscheck = flag.Bool("obscheck", false, "A/B-gate the obs + tracing overhead against the uninstrumented machine")
		obslimit = flag.Float64("obslimit", 1.05, "maximum instrumented/base ns-per-op ratio for -obscheck")
		obsreps  = flag.Int("obsreps", 3, "A/B repetitions per -obscheck pair (minimum ratio wins)")
		watch    = flag.Bool("watch", false, "live terminal dashboard: loop a corpus program on a parallel machine")
		wName    = flag.String("name", "fib", "corpus program for -watch")
		wPEs     = flag.Int("pes", 4, "machine width for -watch")
		interval = flag.Duration("interval", 250*time.Millisecond, "refresh interval for -watch")
		wFor     = flag.Duration("for", 0, "stop -watch after this long (0 = until Ctrl-C)")
	)
	flag.Parse()

	if *watch {
		return watchRun(*wName, *wPEs, *interval, *wFor)
	}

	if *obscheck {
		return obsCheck(*obsreps, *obslimit)
	}

	if *jsonR {
		var sweep []int
		if *cpus != "" {
			for _, s := range strings.Split(*cpus, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || v < 1 {
					return fmt.Errorf("bad -cpu value %q", s)
				}
				sweep = append(sweep, v)
			}
		}
		rep, err := bench.RunSweep(*quick, sweep)
		if err != nil {
			return err
		}
		return rep.WriteJSON(os.Stdout)
	}
	if *cpus != "" {
		return fmt.Errorf("-cpu only applies to the -json suite")
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-11s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []exp.Experiment
	if *which == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*which, ",") {
			e, ok := exp.Get(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (ids: %s)",
					id, strings.Join(exp.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}

	cfg := exp.Config{Quick: *quick, Seed: *seed}
	failures := 0
	for _, e := range selected {
		tbl, err := e.Run(cfg)
		if tbl != nil {
			tbl.Fprint(os.Stdout)
		}
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "EXPERIMENT FAILED %s: %v\n", e.ID, err)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}

// obsCheck is the CI overhead guard: interleaved A/B pairs of the
// uninstrumented machine against obs-on and tracing-on (rate 1.0), minimum
// ratio over reps repetitions. Exits nonzero when any instrumented
// configuration costs more than limit× its uninstrumented partner.
func obsCheck(reps int, limit float64) error {
	pairs, err := bench.ObsOverhead(reps)
	if err != nil {
		return err
	}
	over := 0
	for _, p := range pairs {
		verdict := "info only"
		if p.Gated {
			verdict = "ok"
			if p.Ratio > limit {
				verdict = "OVER LIMIT"
				over++
			}
		}
		fmt.Printf("%-40s base %8.3fms  instrumented %8.3fms  ratio %.3f (best of %d)  %s\n",
			p.Name, float64(p.BaseNs)/1e6, float64(p.WithNs)/1e6, p.Ratio, p.Samples, verdict)
	}
	if over > 0 {
		return fmt.Errorf("%d configuration(s) exceed the %.0f%% overhead budget",
			over, (limit-1)*100)
	}
	return nil
}
