// Command dgr-bench regenerates the experiment tables of EXPERIMENTS.md:
// one per figure/scenario of the paper plus the quantitative evaluation of
// its claims.
//
// Usage:
//
//	dgr-bench                 # run everything
//	dgr-bench -exp thm1,race  # run a subset
//	dgr-bench -quick          # small workloads (smoke test)
//	dgr-bench -list           # list experiment IDs
//	dgr-bench -json           # hot-path benchmark suite as JSON
//	dgr-bench -json -quick    # same, one iteration per case (CI smoke)
//	dgr-bench -watch          # live per-PE dashboard (parallel machine + obs)
//	dgr-bench -watch -name churn -pes 8 -interval 500ms -for 30s
//
// -json replaces the experiment tables with the internal/bench hot-path
// suite (end-to-end reduction, PE scaling sweep, GC cycle) and emits a
// machine-readable report on stdout; BENCH_0.json at the repo root is a
// checked-in baseline in this format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dgr/internal/bench"
	"dgr/internal/exp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dgr-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick    = flag.Bool("quick", false, "shrink workloads")
		seed     = flag.Int64("seed", 7, "workload seed")
		list     = flag.Bool("list", false, "list experiment IDs")
		jsonR    = flag.Bool("json", false, "run the hot-path benchmark suite, emit JSON report")
		cpus     = flag.String("cpu", "", "comma-separated GOMAXPROCS values to sweep the -json suite over (e.g. 1,2,4)")
		watch    = flag.Bool("watch", false, "live terminal dashboard: loop a corpus program on a parallel machine")
		wName    = flag.String("name", "fib", "corpus program for -watch")
		wPEs     = flag.Int("pes", 4, "machine width for -watch")
		interval = flag.Duration("interval", 250*time.Millisecond, "refresh interval for -watch")
		wFor     = flag.Duration("for", 0, "stop -watch after this long (0 = until Ctrl-C)")
	)
	flag.Parse()

	if *watch {
		return watchRun(*wName, *wPEs, *interval, *wFor)
	}

	if *jsonR {
		var sweep []int
		if *cpus != "" {
			for _, s := range strings.Split(*cpus, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || v < 1 {
					return fmt.Errorf("bad -cpu value %q", s)
				}
				sweep = append(sweep, v)
			}
		}
		rep, err := bench.RunSweep(*quick, sweep)
		if err != nil {
			return err
		}
		return rep.WriteJSON(os.Stdout)
	}
	if *cpus != "" {
		return fmt.Errorf("-cpu only applies to the -json suite")
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-11s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []exp.Experiment
	if *which == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*which, ",") {
			e, ok := exp.Get(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (ids: %s)",
					id, strings.Join(exp.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}

	cfg := exp.Config{Quick: *quick, Seed: *seed}
	failures := 0
	for _, e := range selected {
		tbl, err := e.Run(cfg)
		if tbl != nil {
			tbl.Fprint(os.Stdout)
		}
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "EXPERIMENT FAILED %s: %v\n", e.ID, err)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
