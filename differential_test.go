package dgr_test

// Cross-engine differential harness: the proof obligation of the compiled
// supercombinator backend. Every corpus program — the lang digest corpus,
// the example programs, the benchmark corpus, and seeded randomly
// generated well-typed terms — runs through both reduction engines
// (interpreted Turner combinators and compiled supercombinators) across
// the four scheduling configurations (det, parallel, fabric, fabdrop).
// The tree-walking lang.Interp is the shared reference oracle:
//
//   - a reference integer/bool/nil value  → both engines produce it
//   - a reference cons/function value     → both engines produce a value
//     of the corresponding shape (exact graph kinds differ by design:
//     the interpreter leaves combinator spines, the compiled engine
//     supercombinator leaves)
//   - reference bottom (self-dependency)  → both engines report
//     ErrDeadlock
//
// Every run must additionally leave the invariant checker clean, and
// deterministic value runs must satisfy the internal/analysis reachability
// invariants on the final quiescent graph, engine-independently.

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"dgr"
	"dgr/internal/analysis"
	"dgr/internal/graph"
	"dgr/internal/lang"
	"dgr/internal/workload"
)

// diffMode is one scheduling configuration of the differential matrix,
// mirroring the dgr-check sweep configs.
var diffModes = []string{"det", "parallel", "fabric", "fabdrop"}

func diffOptions(mode, engine string, seed int64) dgr.Options {
	o := dgr.Options{
		PEs:        4,
		Seed:       seed,
		Engine:     engine,
		Capacity:   1 << 14,
		GCInterval: 300,
		MTEvery:    2,
		MaxSteps:   8_000_000,
		Check:      true,
		CheckEvery: 256,
	}
	switch mode {
	case "det":
		o.Adversarial = true
	case "parallel":
		o.Parallel = true
	case "fabric":
		o.Adversarial = true
		o.Fabric = true
	case "fabdrop":
		o.Adversarial = true
		o.Fabric = true
		o.DropRate = 0.3
	}
	return o
}

// refOutcome classifies a program by the reference interpreter.
type refOutcome int

const (
	refInt refOutcome = iota
	refBool
	refNil
	refCons
	refFunc
	refDeadlock
	refUnknown // out of fuel: excluded from the matrix
)

type diffCase struct {
	name    string
	src     string
	outcome refOutcome
	// wantInt / wantBool hold the reference value for refInt / refBool.
	wantInt  int64
	wantBool bool
}

// classify runs the reference interpreter on src.
func classify(name, src string) diffCase {
	c := diffCase{name: name, src: src}
	e, err := lang.Parse(src)
	if err != nil {
		c.outcome = refUnknown
		return c
	}
	v, err := lang.NewInterp(2_000_000).Eval(e)
	switch {
	case errors.Is(err, lang.ErrBottom):
		c.outcome = refDeadlock
	case err != nil:
		c.outcome = refUnknown
	default:
		switch val := v.(type) {
		case lang.IInt:
			c.outcome, c.wantInt = refInt, int64(val)
		case lang.IBool:
			c.outcome, c.wantBool = refBool, bool(val)
		case lang.INil:
			c.outcome = refNil
		case lang.ICons:
			c.outcome = refCons
		default:
			c.outcome = refFunc
		}
	}
	return c
}

// digestCorpus loads the programs of the lang digest golden file.
func digestCorpus(t *testing.T) []diffCase {
	t.Helper()
	f, err := os.Open("internal/lang/testdata/digest.golden")
	if err != nil {
		t.Fatalf("digest corpus: %v", err)
	}
	defer f.Close()
	var cases []diffCase
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "  ", 2)
		if len(parts) != 2 {
			continue
		}
		src := strings.TrimSpace(parts[1])
		cases = append(cases, classify(fmt.Sprintf("digest/%s", parts[0][:8]), src))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("digest corpus: %v", err)
	}
	return cases
}

// exampleCorpus holds the example programs (examples/*/main.go), with the
// quickstart fib scaled down so the full matrix stays fast.
var exampleCorpus = []struct{ name, src string }{
	{"examples/arith", "2 + 3 * 4"},
	{"examples/fib", "let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 12"},
	{"examples/fac", "let fac n = if n == 0 then 1 else n * fac (n-1) in fac 6"},
	{"examples/selfloop", "let x = x + 1 in x"},
	{"examples/mutual-deadlock", "let a = b + 1; b = a + 1 in a"},
	{"examples/seq", "seq (1 + 2) (3 + 4)"},
	{"examples/knot-deadlock-under-call", "let f = \\a. a + 1 in let x = f x in x"},
	{"examples/shared-knot", "let y = 6 * 7 in y + y"},
}

// diffCorpus assembles the full differential corpus.
func diffCorpus(t *testing.T) []diffCase {
	var cases []diffCase
	cases = append(cases, digestCorpus(t)...)
	for _, p := range exampleCorpus {
		cases = append(cases, classify(p.name, p.src))
	}
	n := 12
	if testing.Short() {
		n = 4
	}
	g := lang.NewGen(20260808, lang.GenConfig{})
	for i := 0; i < n; i++ {
		_, src, want := g.Program()
		cases = append(cases, diffCase{
			name:    fmt.Sprintf("gen/%d", i),
			src:     src,
			outcome: refInt,
			wantInt: want,
		})
	}
	return cases
}

// diffRun evaluates one (program, mode, engine) cell and asserts the
// checker stayed clean. It returns the value and evaluation error.
func diffRun(t *testing.T, c diffCase, mode, engine string) (dgr.Value, error) {
	t.Helper()
	m := dgr.New(diffOptions(mode, engine, 1))
	defer m.Close()
	v, err := m.Eval(c.src)
	if cerr := m.CheckErr(); cerr != nil {
		t.Errorf("%s [%s/%s]: invariant violations: %v", c.name, mode, engine, cerr)
	}
	if mode == "det" && err == nil {
		assertAnalysisInvariants(t, m, c, engine)
	}
	return v, err
}

// assertAnalysisInvariants checks the paper's reachability-set identities
// on the final quiescent graph: the root is vitally reachable, the
// priority strata partition R, and R is disjoint from both the free set
// and the garbage set. Both engines' final graphs must satisfy the same
// identities — the compiled backend builds different interior structure,
// but never structure the analysis cannot account for.
func assertAnalysisInvariants(t *testing.T, m *dgr.Machine, c diffCase, engine string) {
	t.Helper()
	res := analysis.Analyze(m.Snapshot(), m.Root(), nil)
	tag := fmt.Sprintf("%s [det/%s]", c.name, engine)
	if !res.Rv[m.Root()] {
		t.Errorf("%s: root not vitally reachable in final graph", tag)
	}
	for id := range res.R {
		if res.F[id] {
			t.Errorf("%s: vertex %d both reachable and free", tag, id)
		}
		if res.Gar[id] {
			t.Errorf("%s: vertex %d both reachable and garbage", tag, id)
		}
		n := 0
		for _, set := range []map[graph.VertexID]bool{res.Rv, res.Re, res.Rr} {
			if set[id] {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%s: vertex %d in %d priority strata, want exactly 1", tag, id, n)
		}
	}
}

// assertAgainstReference checks one engine's outcome against the oracle.
func assertAgainstReference(t *testing.T, c diffCase, mode, engine string, v dgr.Value, err error) {
	t.Helper()
	tag := fmt.Sprintf("%s [%s/%s]", c.name, mode, engine)
	if c.outcome == refDeadlock {
		if !errors.Is(err, dgr.ErrDeadlock) {
			t.Errorf("%s: want ErrDeadlock, got (%v, %v)", tag, v, err)
		}
		return
	}
	if err != nil {
		t.Errorf("%s: eval: %v", tag, err)
		return
	}
	switch c.outcome {
	case refInt:
		if v.Kind != graph.KindInt || v.Int != c.wantInt {
			t.Errorf("%s: got %v, want int %d", tag, v, c.wantInt)
		}
	case refBool:
		if v.Kind != graph.KindBool || v.Bool != c.wantBool {
			t.Errorf("%s: got %v, want bool %v", tag, v, c.wantBool)
		}
	case refNil:
		if v.Kind != graph.KindNil {
			t.Errorf("%s: got %v, want nil", tag, v)
		}
	case refCons:
		if v.Kind != graph.KindCons {
			t.Errorf("%s: got %v, want cons", tag, v)
		}
	case refFunc:
		// Functional results have engine-specific WHNF shapes; reaching a
		// value without error is the cross-engine contract.
	}
}

// TestDifferentialEngines is the matrix: every corpus program through both
// engines in every mode, each cell checked against the reference oracle —
// so the two engines also agree with each other.
func TestDifferentialEngines(t *testing.T) {
	for _, c := range diffCorpus(t) {
		if c.outcome == refUnknown {
			t.Logf("%s: excluded (reference interpreter could not classify)", c.name)
			continue
		}
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range diffModes {
				for _, engine := range []string{dgr.EngineInterp, dgr.EngineCompiled} {
					v, err := diffRun(t, c, mode, engine)
					assertAgainstReference(t, c, mode, engine, v, err)
				}
			}
		})
	}
}

// TestDifferentialWorkloadCorpus runs the real benchmark corpus (fib 16,
// primes, tak, parfib, churn, ...) through both engines in det and
// parallel modes — bigger programs, narrower matrix.
func TestDifferentialWorkloadCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("workload corpus differential skipped in short mode")
	}
	names := make([]string, 0, len(workload.Programs))
	for name := range workload.Programs {
		names = append(names, name)
	}
	for _, name := range names {
		name := name
		p := workload.Programs[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := diffCase{name: "workload/" + name, src: p.Src, outcome: refInt, wantInt: p.Want}
			for _, mode := range []string{"det", "parallel"} {
				for _, engine := range []string{dgr.EngineInterp, dgr.EngineCompiled} {
					v, err := diffRun(t, c, mode, engine)
					assertAgainstReference(t, c, mode, engine, v, err)
				}
			}
		})
	}
}

// TestDifferentialGeneratedShrinks: the generator's shrinker must be
// usable as a counterexample minimizer against a cross-engine property.
// The property here is healthy (no mismatch exists), so the shrink loop
// must simply terminate and report no failure — this pins the harness
// plumbing the CI sweep relies on when a mismatch does appear.
func TestDifferentialGeneratedShrinks(t *testing.T) {
	g := lang.NewGen(4242, lang.GenConfig{MaxDepth: 4})
	e, _, _ := g.Program()
	mismatch := func(cand lang.Expr) bool {
		want, ok := lang.RefValue(cand, 400_000)
		if !ok {
			return false
		}
		for _, engine := range []string{dgr.EngineInterp, dgr.EngineCompiled} {
			m := dgr.New(diffOptions("det", engine, 1))
			v, err := m.Eval(cand.String())
			m.Close()
			if err != nil || v.Int != want {
				return true
			}
		}
		return false
	}
	if mismatch(e) {
		min := lang.ShrinkWhile(e, 200, mismatch)
		t.Fatalf("cross-engine mismatch; minimized counterexample:\n%s", min)
	}
}
