package dgr

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dgr/internal/check"
	"dgr/internal/workload"
)

// TestCheckedEvalDeterministic runs corpus programs under the invariant
// checker at an aggressive sample rate: results must still be correct and
// every sample clean.
func TestCheckedEvalDeterministic(t *testing.T) {
	for _, name := range []string{"fib", "churn", "sumsquares"} {
		p := workload.Programs[name]
		// A small arena keeps the checker's whole-store sweeps cheap; the
		// arena still grows on demand if the program needs more.
		m := New(Options{PEs: 4, Seed: 7, Check: true, CheckEvery: 2048,
			GCInterval: 2000, Capacity: 1 << 12})
		v, err := m.Eval(p.Src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v.Int != p.Want {
			t.Fatalf("%s = %d, want %d", name, v.Int, p.Want)
		}
		if cerr := m.CheckErr(); cerr != nil {
			t.Fatalf("%s: %v\n%s", name, cerr, strings.Join(m.CheckViolations(), "\n"))
		}
		st := m.Stats()
		if st.CheckRuns == 0 {
			t.Fatalf("%s: checker never sampled", name)
		}
		if st.CheckViolations != 0 {
			t.Fatalf("%s: CheckViolations = %d with nil CheckErr", name, st.CheckViolations)
		}
		m.Close()
	}
}

// TestCheckedEvalParallel runs the checker's concurrency-safe subset during
// a parallel evaluation, including the quiescence sweep at Close.
func TestCheckedEvalParallel(t *testing.T) {
	p := workload.Programs["fib"]
	m := New(Options{PEs: 4, Parallel: true, Check: true, CheckEvery: 512, Capacity: 1 << 12})
	v, err := m.Eval(p.Src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != p.Want {
		t.Fatalf("fib = %d, want %d", v.Int, p.Want)
	}
	m.Close()
	if cerr := m.CheckErr(); cerr != nil {
		t.Fatalf("%v\n%s", cerr, strings.Join(m.CheckViolations(), "\n"))
	}
	if m.Stats().CheckRuns == 0 {
		t.Fatal("checker never sampled")
	}
}

// TestCheckedEvalFabric covers the conservation law's fabric term: tasks in
// transit (including lossy redelivery) must still balance the books.
func TestCheckedEvalFabric(t *testing.T) {
	p := workload.Programs["fib"]
	m := New(Options{
		PEs: 4, Seed: 3, Check: true, CheckEvery: 2048, GCInterval: 2000,
		Capacity: 1 << 12, Fabric: true, DropRate: 0.2,
	})
	defer m.Close()
	v, err := m.Eval(p.Src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != p.Want {
		t.Fatalf("fib = %d, want %d", v.Int, p.Want)
	}
	if cerr := m.CheckErr(); cerr != nil {
		t.Fatalf("%v\n%s", cerr, strings.Join(m.CheckViolations(), "\n"))
	}
}

// TestFaultSkipMarkCaught validates the checker end to end: dropping a
// deterministic fraction of child marks must surface as a marking-invariant
// violation (invariant 2: a marked vertex with an unprotected child).
func TestFaultSkipMarkCaught(t *testing.T) {
	p := workload.Programs["churn"]
	m := New(Options{
		PEs: 4, Seed: 7, Check: true, CheckEvery: 1 << 30, GCInterval: 500,
		Capacity: 1 << 12, FaultSkipMark: 3,
	})
	defer m.Close()
	m.Eval(p.Src) // outcome irrelevant: the run is deliberately corrupted
	if m.CheckErr() == nil {
		t.Fatal("injected mark-skip fault not caught")
	}
	if first := firstI2(m.CheckViolations()); first == "" {
		t.Fatalf("no I2 violation among: %s", strings.Join(m.CheckViolations(), "\n"))
	}
}

// TestRecordReplayEval records a clean deterministic run and re-drives a
// fresh machine from the log: same execution count, no divergence, clean
// checker, and the replayed graph reduces to the same value.
func TestRecordReplayEval(t *testing.T) {
	// Small enough that the full schedule (marking tasks included) fits a
	// test-sized log, with GCInterval low enough to put cycles in it.
	src := "let fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 10"
	const want = 55
	m := New(Options{
		PEs: 3, Seed: 5, Check: true, CheckEvery: 512, GCInterval: 500,
		Capacity: 1 << 12, RecordSchedule: true,
	})
	defer m.Close()
	v, err := m.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	events, err := m.ScheduleEvents()
	if err != nil {
		t.Fatal(err)
	}
	execs := 0
	for _, e := range events {
		if e.Ev == check.EvExec {
			execs++
		}
	}
	if int64(execs) != m.Stats().TasksExecuted {
		t.Fatalf("recorded %d exec events, machine executed %d", execs, m.Stats().TasksExecuted)
	}

	// The JSONL round trip is part of the contract: replay from the decoded
	// form, as dgr-check does.
	var buf bytes.Buffer
	if err := m.WriteScheduleJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := check.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}

	m2 := New(Options{PEs: 3, Seed: 999, Check: true, CheckEvery: 512, GCInterval: 500,
		Capacity: 1 << 12})
	defer m2.Close()
	root, err := m2.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.ReplaySchedule(root, decoded); err != nil {
		t.Fatal(err)
	}
	if got := m2.Stats().TasksExecuted; got != int64(execs) {
		t.Fatalf("replay executed %d tasks, log has %d", got, execs)
	}
	if cerr := m2.CheckErr(); cerr != nil {
		t.Fatalf("replay violations: %v\n%s", cerr, strings.Join(m2.CheckViolations(), "\n"))
	}
	// The replayed graph holds the finished computation: evaluating the same
	// root again must yield the recorded run's value without further ado.
	v2, err := m2.EvalNode(root)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Int != v.Int || v2.Int != want {
		t.Fatalf("replayed graph evaluates to %d, recorded run got %d, want %d", v2.Int, v.Int, want)
	}
}

// TestParallelFaultReplaysToSameViolation is the full pipeline the tooling
// exists for: a parallel run with an injected marking fault is caught by the
// checker, its recorded schedule is replayed on a fresh deterministic
// machine with the same (content-addressed) fault, and the replay reproduces
// the same first violation at the same cycle.
func TestParallelFaultReplaysToSameViolation(t *testing.T) {
	p := workload.Programs["churn"]
	var m *Machine
	var want string
	// Parallel timing decides how much work a cycle sees; scan a few seeds
	// for a run whose corruption is caught (in practice the first hits).
	for seed := int64(1); seed <= 5; seed++ {
		m = New(Options{
			PEs: 4, Seed: seed, Parallel: true, Check: true, CheckEvery: 1 << 30,
			Capacity: 1 << 12, RecordSchedule: true, FaultSkipMark: 3,
			Timeout: 3 * time.Second,
		})
		m.Eval(p.Src) // outcome irrelevant: the run is deliberately corrupted
		m.Close()
		if want = firstI2(m.CheckViolations()); want != "" {
			break
		}
	}
	if want == "" {
		t.Fatalf("no seed produced an I2 violation; last run: %s",
			strings.Join(m.CheckViolations(), "\n"))
	}
	events, err := m.ScheduleEvents()
	if err != nil {
		t.Fatal(err)
	}

	m2 := New(Options{
		PEs: 4, Seed: 1, Check: true, CheckEvery: 1 << 30, Capacity: 1 << 12,
		FaultSkipMark: 3,
	})
	defer m2.Close()
	root, err := m2.Compile(p.Src)
	if err != nil {
		t.Fatal(err)
	}
	// Replay up to (at least) the failing step. Divergence after the
	// violation is reproduced can happen — the recorded run's restructure
	// raced its mutators, and a corrupted machine recycles vertices
	// unpredictably — but the violation itself must come back identically.
	rerr := m2.ReplaySchedule(root, events)
	got := firstI2(m2.CheckViolations())
	if got == "" {
		t.Fatalf("replay reproduced no I2 violation (replay err: %v); violations: %s",
			rerr, strings.Join(m2.CheckViolations(), "\n"))
	}
	if got != want {
		t.Fatalf("replayed violation differs:\nrecorded: %s\nreplayed: %s", want, got)
	}
}

// firstI2 returns the first recorded marking-invariant-2 violation.
func firstI2(violations []string) string {
	for _, v := range violations {
		if strings.Contains(v, "I2(") {
			return v
		}
	}
	return ""
}
