module dgr

go 1.23
